package hetbench_test

// One benchmark per paper artifact: each regenerates the corresponding
// table or figure's data at the small scale and reports headline values
// as custom metrics, so `go test -bench=. -benchmem` doubles as a full
// reproduction sweep. The `hetbench` CLI renders the same artifacts as
// tables (use -scale paper for the paper's sizes).

import (
	"context"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"hetbench/internal/analysis"
	"hetbench/internal/fault"
	"hetbench/internal/harness"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/sloc"
	"hetbench/internal/trace"
)

// hotCost is the kernel shape every hot-path guard launches: large
// enough to exercise the full timing model, identical across the guards
// so their ns/op compare.
// bmust unwraps a (value, error) Data-sweep pair inside a benchmark; the
// context is never canceled, so an error is a setup failure worth a panic.
func bmust[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

var hotCost = timing.KernelCost{
	Items: 1 << 16, SPFlops: 32, LoadBytes: 24, StoreBytes: 8,
	Instrs: 48, MissRate: 0.2, Coalesce: 0.9,
}

// BenchmarkTable1Characteristics measures the Table I workload
// characterization (LLC miss rates from cache-simulator trace replay, IPC
// and boundedness from the timing model).
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bmust(harness.Table1Data(context.Background(), harness.ScaleSmall))
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MissRate, "missrate/"+r.App)
			}
		}
	}
}

// BenchmarkTable4SLOC runs the SLOC counter over this repository's app
// implementations (Table IV methodology).
func BenchmarkTable4SLOC(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		n, _, err := sloc.CountDir("internal/apps", ".go")
		if err != nil {
			b.Fatal(err)
		}
		total = n
	}
	b.ReportMetric(float64(total), "app-sloc")
}

// BenchmarkFig7FrequencySweep regenerates the five frequency-sensitivity
// sub-figures (72 clock points each, replayed from one functional run).
func BenchmarkFig7FrequencySweep(b *testing.B) {
	for _, app := range harness.AppNames {
		b.Run(app, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				series, err := harness.Fig7Data(harness.ScaleSmall, app)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					last := series[len(series)-1]
					b.ReportMetric(last.Y[len(last.Y)-1], "peak-norm-perf")
				}
			}
		})
	}
}

func benchSpeedups(b *testing.B, mk func() *sim.Machine) {
	for i := 0; i < b.N; i++ {
		cells := bmust(harness.SpeedupData(context.Background(), harness.ScaleSmall, mk))
		if i == 0 {
			for _, c := range cells {
				if c.Precision == timing.Double && c.Model == modelapi.OpenCL {
					b.ReportMetric(c.Speedup, "dp-speedup/"+c.App)
				}
			}
		}
	}
}

// BenchmarkFig8APU regenerates the APU speedup figure (5 apps × 3 models
// × 2 precisions vs the OpenMP baseline).
func BenchmarkFig8APU(b *testing.B) { benchSpeedups(b, sim.NewAPU) }

// BenchmarkFig9DGPU regenerates the discrete-GPU speedup figure.
func BenchmarkFig9DGPU(b *testing.B) { benchSpeedups(b, sim.NewDGPU) }

// BenchmarkFig10Productivity regenerates the Eq. 1 productivity figure on
// both machines.
func BenchmarkFig10Productivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		apu := bmust(harness.ProductivityData(context.Background(), harness.ScaleSmall, sim.NewAPU))
		dgpu := bmust(harness.ProductivityData(context.Background(), harness.ScaleSmall, sim.NewDGPU))
		if i == 0 {
			_, amp, _ := harness.HarmonicMeans(apu)
			cl, _, _ := harness.HarmonicMeans(dgpu)
			b.ReportMetric(amp, "apu-hm-amp")
			b.ReportMetric(cl, "dgpu-hm-opencl")
		}
	}
}

// BenchmarkAblationHC regenerates the Section VII Heterogeneous Compute
// comparison (async transfer overlap on XSBench).
func BenchmarkAblationHC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := bmust(harness.AblationHCData(context.Background(), harness.ScaleSmall))
		if i == 0 {
			for _, c := range cells {
				if c.Model == modelapi.HC {
					b.ReportMetric(c.ElapsedMs, "hc-ms/"+c.App)
				}
			}
		}
	}
}

// BenchmarkAblationTiling regenerates the Section VI-C CoMD tiling claim.
func BenchmarkAblationTiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		flat, tiled, err := harness.AblationTilesData(context.Background(), harness.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(flat/tiled, "tiling-speedup")
		}
	}
}

// BenchmarkAblationGridType regenerates the XSBench grid-structure
// comparison (unionized vs per-nuclide search).
func BenchmarkAblationGridType(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := bmust(harness.AblationGridTypeData(context.Background(), harness.ScaleSmall))
		if i == 0 && len(cells) == 2 {
			b.ReportMetric(cells[0].ElapsedMs/cells[1].ElapsedMs, "union/nuclide-ratio")
		}
	}
}

// BenchmarkAblationDataRegion regenerates the Section III-B data-directive
// ablation (miniFE OpenACC with vs without the data region).
func BenchmarkAblationDataRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		withMs, withoutMs, _, _, err := harness.AblationDataRegionData(context.Background(), harness.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(withoutMs/withMs, "dataregion-penalty")
		}
	}
}

// BenchmarkScalingMPIX regenerates the MPI+X strong-scaling extension
// (LULESH slabs over a simulated InfiniBand cluster).
func BenchmarkScalingMPIX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := bmust(harness.ScalingData(context.Background(), harness.ScaleSmall))
		if i == 0 && len(results) > 0 {
			last := results[len(results)-1]
			b.ReportMetric(last.Efficiency(results[0]), "efficiency-at-32")
		}
	}
}

// Leaf hot-path bodies, shared between the Benchmark* guards below and
// the BENCH_hotpath.json writer (TestWriteBenchHotpath): each measures
// one launch-path configuration with allocation reporting on.

func benchLaunchUntraced(b *testing.B) {
	m := sim.NewDGPU()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LaunchKernel(sim.OnAccelerator, "bench", hotCost)
	}
}

func benchLaunchTraced(b *testing.B) {
	m := sim.NewDGPU()
	m.SetTracer(trace.New())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&8191 == 8191 {
			// Bound span-slice growth so the benchmark measures the
			// emission path, not an ever-growing append target.
			b.StopTimer()
			m.SetTracer(trace.New())
			b.StartTimer()
		}
		m.LaunchKernel(sim.OnAccelerator, "bench", hotCost)
	}
}

func benchLaunchCheckedOff(b *testing.B) {
	m := sim.NewDGPU()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LaunchKernelChecked(sim.OnAccelerator, "bench", hotCost)
	}
}

func benchLaunchCheckedOn(b *testing.B) {
	m := sim.NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 1, LaunchFailRate: 0.01}), fault.DefaultPolicy())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LaunchKernelChecked(sim.OnAccelerator, "bench", hotCost)
	}
}

func benchSplitOff(b *testing.B) {
	m := sim.NewDGPU()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.LaunchKernelSplit("bench", hotCost, hotCost); !ok {
			m.LaunchKernelChecked(sim.OnAccelerator, "bench", hotCost)
		}
	}
}

func benchSplitOn(b *testing.B) {
	m := sim.NewDGPU()
	m.SetCoexec(sched.New(sched.Config{Policy: sched.Dynamic}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LaunchKernelSplit("bench", hotCost, hotCost)
	}
}

// hetlintLoad memoizes the module load for BenchmarkHetlint: parsing and
// type-checking are setup, not the measured phase — the benchmark times
// the nine-analyzer parallel driver itself.
var hetlintLoad struct {
	once sync.Once
	pkgs []*analysis.Package
	err  error
}

func benchHetlintModule(b *testing.B) {
	hetlintLoad.once.Do(func() {
		loader, err := analysis.NewLoader(".")
		if err != nil {
			hetlintLoad.err = err
			return
		}
		hetlintLoad.pkgs, hetlintLoad.err = loader.Load(".", []string{"./..."})
	})
	if hetlintLoad.err != nil {
		b.Fatal(hetlintLoad.err)
	}
	analyzers := analysis.Analyzers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := analysis.RunAnalyzersParallel(hetlintLoad.pkgs, analyzers, runtime.GOMAXPROCS(0)); len(findings) != 0 {
			b.Fatalf("module is not hetlint-clean: %v", findings)
		}
	}
}

func benchHistObserve(b *testing.B) {
	reg := &trace.Registry{}
	reg.Observe(trace.HistKernelNs, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Observe(trace.HistKernelNs, float64(i+1))
	}
}

// BenchmarkFaultOverhead measures the checked kernel-launch path with
// fault injection disabled (the default: one nil check before delegating
// to the plain launch) against the same path with an injector attached.
// The "off" case is the regression gate: detaching the injector must
// restore the pre-fault-layer launch cost.
func BenchmarkFaultOverhead(b *testing.B) {
	b.Run("off", benchLaunchCheckedOff)
	b.Run("on", benchLaunchCheckedOn)
}

// BenchmarkSchedulerOverhead measures the split-launch path with no
// co-execution planner attached (the default: one nil check, then the
// caller falls back to the single-device launch — exactly the routing the
// runtimes perform under WithCoexec) against the same path with a dynamic
// scheduler splitting every launch. The "off" case is the regression gate:
// an unattached scheduler must cost nothing beyond the nil check.
func BenchmarkSchedulerOverhead(b *testing.B) {
	b.Run("off", benchSplitOff)
	b.Run("on", benchSplitOn)
}

// BenchmarkTraceOverhead measures the kernel-launch path with tracing
// disabled (the default: one nil check under the already-held machine
// mutex) against the same path with a tracer attached — which now also
// feeds the hist.kernel.ns histogram on every launch. The "off" case is
// the regression gate: it must match the pre-trace-layer launch cost.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("off", benchLaunchUntraced)
	b.Run("on", benchLaunchTraced)
}

// BenchmarkHistObserve measures the steady-state histogram observation
// path (bucket index + counter bump under the registry lock), the cost
// every traced launch now pays per distribution sample.
func BenchmarkHistObserve(b *testing.B) {
	b.Run("observe", benchHistObserve)
}

// BenchmarkHetlint measures the nine-analyzer parallel driver over the
// already-loaded module — the cost every CI run and pre-commit hook pays,
// tracked in the BENCH trajectory alongside the simulator hot paths.
func BenchmarkHetlint(b *testing.B) {
	b.Run("module", benchHetlintModule)
}

// TestLaunchHotPathAllocs is the allocation gate on the histograms-off
// hot path: with no tracer attached, a kernel launch must not allocate —
// the histogram layer may only spend memory when a tracer is installed.
func TestLaunchHotPathAllocs(t *testing.T) {
	m := sim.NewDGPU()
	m.LaunchKernel(sim.OnAccelerator, "warmup", hotCost)
	if avg := testing.AllocsPerRun(200, func() {
		m.LaunchKernel(sim.OnAccelerator, "bench", hotCost)
	}); avg != 0 {
		t.Errorf("untraced LaunchKernel allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		m.LaunchKernelChecked(sim.OnAccelerator, "bench", hotCost)
	}); avg != 0 {
		t.Errorf("untraced LaunchKernelChecked allocates %.1f/op, want 0", avg)
	}
}

// TestWriteBenchHotpath regenerates BENCH_hotpath.json. It is gated
// behind the HETBENCH_BENCH_OUT environment variable (the file path to
// write) because it runs real benchmarks: CI and `make`-style local
// regeneration set it; plain `go test ./...` skips.
func TestWriteBenchHotpath(t *testing.T) {
	out := os.Getenv("HETBENCH_BENCH_OUT")
	if out == "" {
		t.Skip("set HETBENCH_BENCH_OUT=<path> to regenerate BENCH_hotpath.json")
	}
	commit := os.Getenv("HETBENCH_COMMIT")
	if commit == "" {
		commit = os.Getenv("GITHUB_SHA")
	}
	f := &report.BenchFile{
		Suite:  "hotpath",
		Commit: commit,
		Date:   time.Now().UTC().Format(time.RFC3339), //hetlint:allow detnondet BENCH metadata timestamps the snapshot, never experiment output
		Go:     runtime.Version(),
	}
	leaves := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"launch/untraced", benchLaunchUntraced},
		{"launch/traced", benchLaunchTraced},
		{"launch/checked-off", benchLaunchCheckedOff},
		{"launch/checked-on", benchLaunchCheckedOn},
		{"split/off", benchSplitOff},
		{"split/on", benchSplitOn},
		{"hist/observe", benchHistObserve},
		{"hetlint/module", benchHetlintModule},
	}
	for _, leaf := range leaves {
		r := testing.Benchmark(leaf.fn)
		if r.N == 0 {
			t.Fatalf("%s did not run", leaf.name)
		}
		f.Entries = append(f.Entries, report.BenchEntry{
			Name:        leaf.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
			Count:       int64(r.N),
		})
	}
	if err := report.WriteBenchFile(out, f); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d entries)", out, len(f.Entries))
}

// BenchmarkRunnerSpeedup measures the experiment runner's worker-pool win
// on the figure sweep: the same SpeedupData cells serially and on every
// CPU. The ns/op ratio between the sub-benchmarks is the observed speedup;
// the merged results are byte-identical either way (see TestGolden).
func BenchmarkRunnerSpeedup(b *testing.B) {
	bench := func(jobs int) func(*testing.B) {
		return func(b *testing.B) {
			old := runner.Jobs()
			runner.SetJobs(jobs)
			defer runner.SetJobs(old)
			runner.ResetStats()
			for i := 0; i < b.N; i++ {
				cells := bmust(harness.SpeedupData(context.Background(), harness.ScaleSmall, sim.NewDGPU))
				if len(cells) == 0 {
					b.Fatal("empty sweep")
				}
			}
			st := runner.TotalStats()
			b.ReportMetric(st.Speedup(), "pool-speedup")
		}
	}
	b.Run("jobs-1", bench(1))
	b.Run("jobs-ncpu", bench(runtime.NumCPU()))
}
