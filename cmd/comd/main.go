// Command comd runs the CoMD molecular-dynamics proxy application under
// every programming model, mirroring the paper's `./CoMD -x 60 -y 60 -z 60`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/apps/comd"
	"hetbench/internal/harness"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
)

func main() {
	x := flag.Int("x", 12, "unit cells in x (paper: 60)")
	y := flag.Int("y", 12, "unit cells in y (paper: 60)")
	z := flag.Int("z", 12, "unit cells in z (paper: 60)")
	iters := flag.Int("i", 10, "timesteps (paper: 100)")
	fn := flag.Int("functional", 2, "functional iterations (0 = all)")
	device := flag.String("device", "both", "apu | dgpu | both")
	precFlag := flag.String("precision", "double", "single | double")
	flag.Parse()

	prec, err := harness.ParsePrecision(*precFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	machines, err := harness.Machines(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := comd.NewProblem(comd.Config{Nx: *x, Ny: *y, Nz: *z, Iters: *iters, FunctionalIters: *fn}, prec)
	err = harness.RunApp(context.Background(), os.Stdout, comd.AppName, machines,
		func(m *sim.Machine, model modelapi.Name) appcore.Result { return p.Run(m, model) })
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
