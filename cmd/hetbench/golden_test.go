package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetbench/internal/harness"
)

var update = flag.Bool("update", false, "rewrite the golden experiment outputs under testdata/golden/")

// firstDiff locates the first line where two renderings diverge.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("length (%d vs %d lines)", len(g), len(w))
}

// TestGolden is the regression suite: every experiment runs at smoke scale
// under seed 1 twice — serially and on eight workers — and must produce
// byte-identical output, which is then diffed against the checked-in
// golden file. Regenerate after an intentional model change with
//
//	go test ./cmd/hetbench -run TestGolden -update
//
// table4 counts repository source lines, which move with any code edit, so
// it is held to the jobs-equality contract but not byte-pinned.
func TestGolden(t *testing.T) {
	for _, id := range harness.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			render := func(jobs string) string {
				var stdout, stderr bytes.Buffer
				args := []string{"-exp", id, "-scale", "smoke", "-seed", "1", "-jobs", jobs}
				if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
					t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
				}
				return stdout.String()
			}
			serial := render("1")
			if parallel := render("8"); parallel != serial {
				t.Fatalf("-jobs 8 output differs from -jobs 1 at %s", firstDiff(parallel, serial))
			}

			if id == "table4" {
				return // SLOC table churns with the codebase; jobs-equality above is its contract
			}
			golden := filepath.Join("testdata", "golden", id+".txt")
			if *update {
				if err := os.WriteFile(golden, []byte(serial), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if serial != string(want) {
				t.Errorf("output diverged from %s at %s\nregenerate with -update if the change is intentional",
					golden, firstDiff(serial, string(want)))
			}
		})
	}
}
