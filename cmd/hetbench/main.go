// Command hetbench regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	hetbench -list
//	hetbench -exp fig8 [-scale small|default|paper]
//	hetbench -exp all  [-scale default]
//	hetbench -exp fig9 -trace out.json   # capture a Chrome/Perfetto trace
//
// Experiment ids: table1 table2 table3 table4 fig7 fig8 fig9 fig10 fig11
// hc tiles dataregion gridtype scaling profile roofline energy trace, or
// "all".
package main

import (
	"flag"
	"fmt"
	"os"

	"hetbench/internal/harness"
	"hetbench/internal/sim"
	"hetbench/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	scaleFlag := flag.String("scale", "default", "problem scale: small | default | paper")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (open in Perfetto)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	reg := harness.Registry()
	if *list {
		for _, id := range harness.IDs() {
			e := reg[id]
			fmt.Printf("%-11s %s\n            %s\n", e.ID, e.Title, e.Description)
		}
		return
	}

	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// With -trace, every machine the experiment constructs attaches to one
	// shared tracer; the combined span set is written on exit.
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New()
		sim.SetDefaultTracer(tracer)
		defer sim.SetDefaultTracer(nil)
	}

	run := func() error {
		if *exp == "all" {
			return harness.RunAll(scale, os.Stdout)
		}
		e, ok := reg[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
		fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
		return e.Run(scale, os.Stdout)
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.WriteChrome(f, tracer); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d spans, %d machines) — open at https://ui.perfetto.dev\n",
			*traceOut, tracer.Len(), len(tracer.Processes()))
	}
}
