// Command hetbench regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	hetbench -list
//	hetbench -exp fig8 [-scale smoke|small|default|paper]
//	hetbench -exp all  [-scale default]
//	hetbench -exp fig9 -trace out.json     # capture a Chrome/Perfetto trace
//	hetbench -exp faults -seed 7           # seeded fault-injection sweep
//	hetbench -exp coexec -seed 1           # CPU+accelerator co-execution sweep
//	hetbench -exp fig8 -jobs 8 -v          # parallel cells + runner stats
//
// Experiment ids: table1 table2 table3 table4 fig7 fig8 fig9 fig10 fig11
// hc tiles dataregion gridtype scaling profile roofline energy trace
// faults coexec, or "all". "-exp list" is an alias for -list.
//
// Experiments run their independent cells on a bounded worker pool
// (-jobs, default GOMAXPROCS) and merge results in deterministic cell
// order: the output is byte-identical at any -jobs under the same -seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hetbench/internal/harness"
	"hetbench/internal/harness/runner"
	"hetbench/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: it parses args, executes, and returns the
// process exit code (0 ok, 1 runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hetbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id (see -list) or 'all'")
	scaleFlag := fs.String("scale", "default", "problem scale: smoke | small | default | paper")
	traceOut := fs.String("trace", "", "write a Chrome trace_event JSON of the run to this file (open in Perfetto)")
	seed := fs.Int64("seed", 1, "run-wide PRNG seed (fault injection); equal seeds give bit-identical runs")
	jobsFlag := fs.Int("jobs", 0, "experiment cells run concurrently (0 = GOMAXPROCS); output is identical at any -jobs")
	verbose := fs.Bool("v", false, "print runner statistics (cells, wall vs serial-estimate time) to stderr")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "unexpected arguments %q; hetbench takes flags only\n", fs.Args())
		return 2
	}
	if *jobsFlag < 0 {
		fmt.Fprintf(stderr, "invalid -jobs %d: the worker count must not be negative\n", *jobsFlag)
		return 2
	}

	reg := harness.Registry()
	if *exp == "list" {
		// "list" is not an experiment id; treat -exp list as -list.
		*list = true
	}
	if *list {
		if *traceOut != "" {
			fmt.Fprintln(stderr, "-list cannot be combined with -trace")
			return 2
		}
		for _, id := range harness.IDs() {
			e := reg[id]
			fmt.Fprintf(stdout, "%-11s %s\n            %s\n", e.ID, e.Title, e.Description)
		}
		return 0
	}

	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *seed <= 0 {
		fmt.Fprintf(stderr, "invalid -seed %d: the seed must be a positive integer\n", *seed)
		return 2
	}
	harness.SetSeed(*seed)
	runner.SetJobs(*jobsFlag) // 0 restores the default (HETBENCH_JOBS or GOMAXPROCS)
	runner.ResetStats()

	// With -trace, every cell records into a private tracer that folds
	// into this capture in deterministic cell order; the combined span set
	// is written on exit and is identical at any -jobs.
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New()
		runner.SetCapture(tracer)
		defer runner.SetCapture(nil)
	}

	if *exp == "all" {
		err = harness.RunAll(scale, stdout)
	} else {
		e, ok := reg[*exp]
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q; try -list\n", *exp)
			return 2
		}
		fmt.Fprintf(stdout, "=== %s — %s ===\n", e.ID, e.Title)
		err = e.Run(scale, stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *verbose {
		// Stats go to stderr so stdout stays byte-comparable across runs.
		fmt.Fprintln(stderr, runner.TotalStats())
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := trace.WriteChrome(f, tracer); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d spans, %d machines) — open at https://ui.perfetto.dev\n",
			*traceOut, tracer.Len(), len(tracer.Processes()))
	}
	return 0
}
