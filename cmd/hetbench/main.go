// Command hetbench regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	hetbench -list
//	hetbench -exp fig8 [-scale smoke|small|default|paper]
//	hetbench -exp all  [-scale default]
//	hetbench -exp fig9 -trace out.json     # capture a Chrome/Perfetto trace
//	hetbench -exp faults -seed 7           # seeded fault-injection sweep
//	hetbench -exp coexec -seed 1           # CPU+accelerator co-execution sweep
//	hetbench -exp dag -seed 1              # declarative DAG workload sweep
//	hetbench -exp fleet -seed 1            # cluster-scale fleet simulation sweep
//	hetbench -exp fig8 -jobs 8 -v          # parallel cells + runner stats
//	hetbench -exp all -progress            # live one-line progress on stderr
//	hetbench -exp fig9 -metrics m.csv      # counters + histogram quantiles as CSV
//	hetbench -exp perfbaseline -bench-out BENCH_runner.json
//	hetbench -bench-delta old.json,new.json -bench-threshold 0.2
//
// Experiment ids: table1 table2 table3 table4 fig7 fig8 fig9 fig10 fig11
// hc tiles dataregion gridtype scaling profile roofline energy trace
// faults coexec dag perfbaseline fleet, or "all". "-exp list" is an
// alias for -list.
//
// Experiments run their independent cells on a bounded worker pool
// (-jobs, default GOMAXPROCS) and merge results in deterministic cell
// order: the output is byte-identical at any -jobs under the same -seed.
// Progress output (-progress, -progress-log) and BENCH snapshots
// (-bench-out) carry wall-clock durations and go to stderr or dedicated
// files, so stdout keeps that guarantee.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hetbench/internal/harness"
	"hetbench/internal/harness/runner"
	"hetbench/internal/report"
	"hetbench/internal/trace"
)

func main() {
	// SIGINT/SIGTERM cancel the run context: in-flight cells finish, the
	// runner skips the rest, and the progress log still flushes below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: it parses args, executes, and returns the
// process exit code (0 ok, 1 runtime failure, 2 usage error).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("hetbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id (see -list) or 'all'")
	scaleFlag := fs.String("scale", "default", "problem scale: smoke | small | default | paper")
	traceOut := fs.String("trace", "", "write a Chrome trace_event JSON of the run to this file (open in Perfetto)")
	seed := fs.Int64("seed", 1, "run-wide PRNG seed (fault injection); equal seeds give bit-identical runs")
	jobsFlag := fs.Int("jobs", 0, "experiment cells run concurrently (0 = GOMAXPROCS); output is identical at any -jobs")
	verbose := fs.Bool("v", false, "print runner statistics (cells, wall vs serial-estimate time) to stderr")
	list := fs.Bool("list", false, "list experiments and exit")
	progress := fs.Bool("progress", false, "render live cell progress (done/running/failed, cell quantiles, ETA) as one stderr line")
	progressLog := fs.String("progress-log", "", "append progress events as JSON lines to this file")
	metricsOut := fs.String("metrics", "", "write the run's counters and histogram quantiles as CSV to this file")
	benchOut := fs.String("bench-out", "", "write the runner's wall-clock stats as a BENCH_*.json snapshot to this file")
	benchDelta := fs.String("bench-delta", "", "compare two BENCH_*.json snapshots (OLD,NEW) and exit; nonzero on regression")
	benchThreshold := fs.Float64("bench-threshold", 0.2, "tolerated fractional ns/op growth for -bench-delta (0 disables the time gate)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *benchDelta != "" {
		return runBenchDelta(*benchDelta, *benchThreshold, stdout, stderr)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "unexpected arguments %q; hetbench takes flags only\n", fs.Args())
		return 2
	}
	if *jobsFlag < 0 {
		fmt.Fprintf(stderr, "invalid -jobs %d: the worker count must not be negative\n", *jobsFlag)
		return 2
	}

	reg := harness.Registry()
	if *exp == "list" {
		// "list" is not an experiment id; treat -exp list as -list.
		*list = true
	}
	if *list {
		if *traceOut != "" {
			fmt.Fprintln(stderr, "-list cannot be combined with -trace")
			return 2
		}
		for _, id := range harness.IDs() {
			e := reg[id]
			fmt.Fprintf(stdout, "%-11s %s\n            %s\n", e.ID, e.Title, e.Description)
		}
		return 0
	}

	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *seed <= 0 {
		fmt.Fprintf(stderr, "invalid -seed %d: the seed must be a positive integer\n", *seed)
		return 2
	}
	harness.SetSeed(*seed)
	runner.SetJobs(*jobsFlag) // 0 restores the default (HETBENCH_JOBS or GOMAXPROCS)
	runner.ResetStats()

	// With -trace or -metrics, every cell records into a private tracer
	// that folds into this capture in deterministic cell order; the
	// combined span set (and merged counter/histogram registry) is
	// written on exit and is identical at any -jobs.
	var tracer *trace.Tracer
	if *traceOut != "" || *metricsOut != "" {
		tracer = trace.New()
		runner.SetCapture(tracer)
		defer runner.SetCapture(nil)
	}

	// Progress sinks watch the pool live; they carry wall-clock numbers
	// and write to stderr or a dedicated log, never stdout.
	var sinks runner.MultiSink
	if *progress {
		sinks = append(sinks, &runner.TTYSink{W: stderr})
	}
	if *progressLog != "" {
		f, err := os.Create(*progressLog)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		// Flush and close on every exit path — error and early returns
		// included — so a killed or failed run still leaves a complete
		// JSONL file behind. The deferred SetProgress(nil) below runs
		// first (LIFO), so no sink writes race the close. A close failure
		// on an otherwise-clean run flips the exit code: silently dropped
		// progress records would defeat the log's purpose.
		defer func() {
			ferr := f.Sync()
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
			if ferr != nil {
				fmt.Fprintf(stderr, "progress-log %s: %v\n", *progressLog, ferr)
				if code == 0 {
					code = 1
				}
			}
		}()
		sinks = append(sinks, &runner.JSONLSink{W: f})
	}
	if len(sinks) > 0 {
		runner.SetProgress(sinks)
		defer runner.SetProgress(nil)
	}

	if *exp == "all" {
		err = harness.RunAll(ctx, scale, stdout)
	} else {
		e, ok := reg[*exp]
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q; try -list\n", *exp)
			return 2
		}
		fmt.Fprintf(stdout, "=== %s — %s ===\n", e.ID, e.Title)
		err = e.Run(ctx, scale, stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *verbose {
		// Stats go to stderr so stdout stays byte-comparable across runs.
		fmt.Fprintln(stderr, runner.TotalStats())
	}

	if tracer != nil && *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := trace.WriteChrome(f, tracer); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d spans, %d machines) — open at https://ui.perfetto.dev\n",
			*traceOut, tracer.Len(), len(tracer.Processes()))
	}
	if tracer != nil && *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := trace.WriteMetricsCSV(f, tracer); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d counters, %d histograms)\n",
			*metricsOut, len(tracer.Metrics().Names()), len(tracer.Metrics().HistNames()))
	}
	if *benchOut != "" {
		if err := writeRunnerBench(*benchOut); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s (runner suite)\n", *benchOut)
	}
	return 0
}

// writeRunnerBench snapshots the accumulated runner stats as the
// "runner" BENCH suite. Commit metadata comes from HETBENCH_COMMIT (CI
// passes GITHUB_SHA); the numbers are wall-clock, so the snapshot is a
// trajectory point, not a deterministic artifact.
func writeRunnerBench(path string) error {
	s := runner.TotalStats()
	if s.Cells == 0 {
		return fmt.Errorf("bench-out: no runner cells executed")
	}
	commit := os.Getenv("HETBENCH_COMMIT")
	if commit == "" {
		commit = os.Getenv("GITHUB_SHA")
	}
	f := &report.BenchFile{
		Suite:  "runner",
		Commit: commit,
		Date:   time.Now().UTC().Format(time.RFC3339), //hetlint:allow detnondet BENCH metadata timestamps the snapshot, never experiment output
		Go:     runtime.Version(),
		Jobs:   s.Jobs,
		Entries: []report.BenchEntry{
			{Name: "runner/wall", NsPerOp: float64(s.Wall), AllocsPerOp: -1, Count: 1},
			{Name: "runner/serial-estimate", NsPerOp: float64(s.Serial), AllocsPerOp: -1, Count: 1},
			{
				Name:        "runner/cell",
				NsPerOp:     float64(s.Serial) / float64(s.Cells),
				AllocsPerOp: -1,
				Count:       int64(s.Cells),
				P50Ns:       s.CellNs.Quantile(0.50),
				P95Ns:       s.CellNs.Quantile(0.95),
				P99Ns:       s.CellNs.Quantile(0.99),
				MaxNs:       s.CellNs.Max(),
			},
		},
	}
	return report.WriteBenchFile(path, f)
}

// runBenchDelta is the -bench-delta mode: compare OLD,NEW snapshots,
// print the delta table, and return 1 when anything regressed beyond
// the threshold.
func runBenchDelta(spec string, threshold float64, stdout, stderr io.Writer) int {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		fmt.Fprintln(stderr, "-bench-delta wants two files: OLD,NEW")
		return 2
	}
	old, err := report.ReadBenchFile(parts[0])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	cur, err := report.ReadBenchFile(parts[1])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if old.Suite != cur.Suite {
		fmt.Fprintf(stderr, "suite mismatch: %s has %q, %s has %q\n", parts[0], old.Suite, parts[1], cur.Suite)
		return 1
	}
	rep := report.PerfDelta(old, cur, threshold)
	if _, err := rep.Table().WriteTo(stdout); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if regs := rep.Regressions(); len(regs) > 0 {
		fmt.Fprintf(stderr, "perf regression in %s\n", strings.Join(regs, ", "))
		return 1
	}
	return 0
}
