// Command hetbench regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	hetbench -list
//	hetbench -exp fig8 [-scale small|default|paper]
//	hetbench -exp all  [-scale default]
//
// Experiment ids: table1 table2 table3 table4 fig7 fig8 fig9 fig10 fig11
// hc tiles dataregion, or "all".
package main

import (
	"flag"
	"fmt"
	"os"

	"hetbench/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	scaleFlag := flag.String("scale", "default", "problem scale: small | default | paper")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	reg := harness.Registry()
	if *list {
		for _, id := range harness.IDs() {
			e := reg[id]
			fmt.Printf("%-11s %s\n            %s\n", e.ID, e.Title, e.Description)
		}
		return
	}

	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *exp == "all" {
		if err := harness.RunAll(scale, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	e, ok := reg[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
	if err := e.Run(scale, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
