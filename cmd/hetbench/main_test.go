package main

import (
	"bytes"
	"strings"
	"testing"
)

// Usage errors must exit non-zero with a one-line message on stderr.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"unknown experiment", []string{"-exp", "fig99", "-scale", "smoke"}, "unknown experiment"},
		{"bad scale", []string{"-exp", "table2", "-scale", "huge"}, "smoke|small|default|paper"},
		{"bad seed", []string{"-exp", "faults", "-scale", "smoke", "-seed", "0"}, "invalid -seed"},
		{"negative seed", []string{"-exp", "faults", "-scale", "smoke", "-seed", "-3"}, "invalid -seed"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional args", []string{"table2"}, "unexpected arguments"},
		{"list with trace", []string{"-list", "-trace", "out.json"}, "cannot be combined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("run(%v) = %d, want exit code 2", tc.args, code)
			}
			// The error itself is one line (flag parse errors append the
			// usage text below it).
			firstLine, _, _ := strings.Cut(stderr.String(), "\n")
			if !strings.Contains(firstLine, tc.want) {
				t.Fatalf("stderr first line %q does not mention %q", firstLine, tc.want)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, stderr.String())
	}
	for _, id := range []string{"table1", "fig8", "faults"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output missing experiment %q", id)
		}
	}
}

func TestRunExperimentSucceeds(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "table2", "-scale", "smoke"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(table2) = %d, stderr: %s", code, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatal("experiment produced no output")
	}
}

// The satellite CI check in code form: the same seed gives bit-identical
// fault-sweep output; a different seed diverges.
func TestRunFaultsSeedDeterminism(t *testing.T) {
	render := func(seed string) string {
		var stdout, stderr bytes.Buffer
		args := []string{"-exp", "faults", "-scale", "smoke", "-seed", seed}
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
		}
		return stdout.String()
	}
	a, b := render("1"), render("1")
	if a != b {
		t.Fatal("two -seed 1 runs produced different output")
	}
	if render("2") == a {
		t.Fatal("-seed 2 reproduced -seed 1's output exactly")
	}
}
