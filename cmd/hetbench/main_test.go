package main

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"testing"
)

// Usage errors must exit non-zero with a one-line message on stderr.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"unknown experiment", []string{"-exp", "fig99", "-scale", "smoke"}, "unknown experiment"},
		{"bad scale", []string{"-exp", "table2", "-scale", "huge"}, "smoke|small|default|paper"},
		{"bad seed", []string{"-exp", "faults", "-scale", "smoke", "-seed", "0"}, "invalid -seed"},
		{"negative seed", []string{"-exp", "faults", "-scale", "smoke", "-seed", "-3"}, "invalid -seed"},
		{"negative jobs", []string{"-exp", "table2", "-scale", "smoke", "-jobs", "-2"}, "invalid -jobs"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional args", []string{"table2"}, "unexpected arguments"},
		{"list with trace", []string{"-list", "-trace", "out.json"}, "cannot be combined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(context.Background(), tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("run(%v) = %d, want exit code 2", tc.args, code)
			}
			// The error itself is one line (flag parse errors append the
			// usage text below it).
			firstLine, _, _ := strings.Cut(stderr.String(), "\n")
			if !strings.Contains(firstLine, tc.want) {
				t.Fatalf("stderr first line %q does not mention %q", firstLine, tc.want)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, stderr.String())
	}
	for _, id := range []string{"table1", "fig8", "faults", "coexec"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output missing experiment %q", id)
		}
	}
}

// -exp list (an alias for -list) prints the experiment ids in sorted
// order, stably across invocations, and includes the coexec extension.
func TestRunExpListSortedAndStable(t *testing.T) {
	render := func() string {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), []string{"-exp", "list"}, &stdout, &stderr); code != 0 {
			t.Fatalf("run(-exp list) = %d, stderr: %s", code, stderr.String())
		}
		return stdout.String()
	}
	a := render()
	if a != render() {
		t.Fatal("two -exp list invocations produced different output")
	}
	var ids []string
	for _, line := range strings.Split(a, "\n") {
		// Id lines start at column 0; description lines are indented.
		if line == "" || strings.HasPrefix(line, " ") {
			continue
		}
		ids = append(ids, strings.Fields(line)[0])
	}
	if len(ids) == 0 {
		t.Fatalf("-exp list printed no experiment ids:\n%s", a)
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("-exp list ids not sorted: %v", ids)
	}
	for _, want := range []string{"coexec", "fleet"} {
		found := false
		for _, id := range ids {
			found = found || id == want
		}
		if !found {
			t.Errorf("-exp list ids missing %s: %v", want, ids)
		}
	}
}

func TestRunExperimentSucceeds(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "table2", "-scale", "smoke"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(table2) = %d, stderr: %s", code, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatal("experiment produced no output")
	}
}

// The satellite CI check in code form: the same seed gives bit-identical
// fault-sweep output; a different seed diverges.
func TestRunFaultsSeedDeterminism(t *testing.T) {
	render := func(seed string) string {
		var stdout, stderr bytes.Buffer
		args := []string{"-exp", "faults", "-scale", "smoke", "-seed", seed}
		if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
		}
		return stdout.String()
	}
	a, b := render("1"), render("1")
	if a != b {
		t.Fatal("two -seed 1 runs produced different output")
	}
	if render("2") == a {
		t.Fatal("-seed 2 reproduced -seed 1's output exactly")
	}
}

// The coexec determinism contract end to end: the partitioners draw no
// randomness, so two same-seed runs are bit-identical (CI diffs the same
// pair of invocations).
func TestRunCoexecSeedDeterminism(t *testing.T) {
	render := func() string {
		var stdout, stderr bytes.Buffer
		args := []string{"-exp", "coexec", "-scale", "smoke", "-seed", "1"}
		if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
		}
		return stdout.String()
	}
	if render() != render() {
		t.Fatal("two -seed 1 coexec runs produced different output")
	}
}

// The fleet sweep's determinism contract: arrival traces, placement and
// fault streams all derive from -seed, so equal seeds give bit-identical
// output and different seeds diverge (CI diffs the same pair of runs).
func TestRunFleetSeedDeterminism(t *testing.T) {
	render := func(seed string) string {
		var stdout, stderr bytes.Buffer
		args := []string{"-exp", "fleet", "-scale", "smoke", "-seed", seed}
		if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
		}
		return stdout.String()
	}
	a, b := render("1"), render("1")
	if a != b {
		t.Fatal("two -seed 1 fleet runs produced different output")
	}
	if render("3") == a {
		t.Fatal("-seed 3 reproduced -seed 1's output exactly")
	}
}
