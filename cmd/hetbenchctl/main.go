// Command hetbenchctl is hetbenchd's client: submit one experiment run
// (with retries, backoff and Retry-After honored), generate load with
// optional chaos cancellations, or dump the daemon's metrics.
//
// Usage:
//
//	hetbenchctl -addr http://localhost:8080 -exp table1 -scale small [-seed 1] [-timeout-ms 0]
//	hetbenchctl -addr ... -loadgen [-n 40] [-c 4] [-exps table1,table2] [-chaos-cancel 0.2]
//	hetbenchctl -addr ... -metricz
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"hetbench/internal/service"
	"hetbench/internal/service/client"

	"flag"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hetbenchctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://localhost:8080", "hetbenchd base URL")
	exp := fs.String("exp", "table2", "experiment id for a single run")
	scale := fs.String("scale", "smoke", "scale (smoke|small|default|paper)")
	seed := fs.Int64("seed", 1, "run seed")
	timeoutMs := fs.Int64("timeout-ms", 0, "server-side run budget (0 = none)")
	attempts := fs.Int("attempts", 4, "max attempts per request")
	loadgen := fs.Bool("loadgen", false, "load-generator mode")
	n := fs.Int("n", 40, "loadgen: total requests")
	c := fs.Int("c", 4, "loadgen: concurrent workers")
	exps := fs.String("exps", "", "loadgen: comma-separated experiment ids (default: -exp)")
	chaosCancel := fs.Float64("chaos-cancel", 0, "loadgen: fraction of requests canceled mid-run")
	chaosAfter := fs.Duration("chaos-after", time.Millisecond, "loadgen: chaos requests' lifetime")
	metricz := fs.Bool("metricz", false, "print the daemon's /metricz counters as 'name value' lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *metricz {
		return dumpMetricz(ctx, *addr, stdout, stderr)
	}

	cl := client.New(*addr, client.Config{MaxAttempts: *attempts, Seed: *seed})
	if *loadgen {
		mix := buildMix(*exps, *exp, *scale, *seed)
		rep, err := cl.Loadgen(ctx, client.LoadgenOptions{
			Requests:       *n,
			Concurrency:    *c,
			Mix:            mix,
			CancelFraction: *chaosCancel,
			CancelAfter:    *chaosAfter,
			Seed:           *seed,
		})
		if rep != nil {
			if _, werr := rep.WriteTo(stdout); werr != nil {
				fmt.Fprintln(stderr, werr)
				return 1
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if rep.Errors > 0 {
			fmt.Fprintf(stderr, "hetbenchctl: %d requests failed\n", rep.Errors)
			return 1
		}
		return 0
	}

	res, err := cl.Run(ctx, service.RunRequest{
		Experiment: *exp, Scale: *scale, Seed: *seed, TimeoutMs: *timeoutMs,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "key=%s cached=%v\n", res.Key, res.Cached)
	fmt.Fprint(stdout, res.Output)
	return 0
}

// buildMix expands -exps into the loadgen request pool.
func buildMix(exps, exp, scale string, seed int64) []service.RunRequest {
	ids := []string{exp}
	if exps != "" {
		ids = strings.Split(exps, ",")
	}
	mix := make([]service.RunRequest, 0, len(ids))
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		mix = append(mix, service.RunRequest{Experiment: id, Scale: scale, Seed: seed})
	}
	return mix
}

// dumpMetricz flattens /metricz to greppable "name value" lines.
func dumpMetricz(ctx context.Context, addr string, stdout, stderr io.Writer) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metricz", nil)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer resp.Body.Close()
	var m service.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	names := make([]string, 0, len(m.Counters))
	for k := range m.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(stdout, "%s %g\n", k, m.Counters[k])
	}
	qs := make([]string, 0, len(m.RequestNs))
	for k := range m.RequestNs {
		qs = append(qs, k)
	}
	sort.Strings(qs)
	for _, k := range qs {
		fmt.Fprintf(stdout, "request.ns.%s %g\n", k, m.RequestNs[k])
	}
	fmt.Fprintf(stdout, "goroutines %d\n", m.Goroutines)
	fmt.Fprintf(stdout, "cache.len %d\n", m.CacheLen)
	return 0
}
