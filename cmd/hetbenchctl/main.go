// Command hetbenchctl is hetbenchd's client: submit one experiment run
// (with retries, backoff and Retry-After honored), generate load with
// optional chaos cancellations, or dump the daemon's metrics.
//
// Usage:
//
//	hetbenchctl -addr http://localhost:8080 -exp table1 -scale small [-seed 1] [-timeout-ms 0]
//	hetbenchctl -addr ... -loadgen [-n 40] [-c 4] [-exps table1,table2] [-chaos-cancel 0.2]
//	hetbenchctl -addr ... -loadgen -arrivals poisson -rate 50 [-bench-out BENCH_service.json]
//	hetbenchctl -addr ... -metricz
//
// -arrivals replays a seeded fleet arrival trace (poisson or bursty)
// against the live daemon: the same generator that drives `hetbench
// -exp fleet` paces the requests open-loop, so simulated and measured
// tail latency come from identical workloads. -bench-out snapshots the
// hit/miss latency distributions as the "service" BENCH suite.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"hetbench/internal/fleet"
	"hetbench/internal/report"
	"hetbench/internal/service"
	"hetbench/internal/service/client"
	"hetbench/internal/trace"

	"flag"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hetbenchctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://localhost:8080", "hetbenchd base URL")
	exp := fs.String("exp", "table2", "experiment id for a single run")
	scale := fs.String("scale", "smoke", "scale (smoke|small|default|paper)")
	seed := fs.Int64("seed", 1, "run seed")
	timeoutMs := fs.Int64("timeout-ms", 0, "server-side run budget (0 = none)")
	attempts := fs.Int("attempts", 4, "max attempts per request")
	loadgen := fs.Bool("loadgen", false, "load-generator mode")
	n := fs.Int("n", 40, "loadgen: total requests")
	c := fs.Int("c", 4, "loadgen: concurrent workers")
	exps := fs.String("exps", "", "loadgen: comma-separated experiment ids (default: -exp)")
	chaosCancel := fs.Float64("chaos-cancel", 0, "loadgen: fraction of requests canceled mid-run")
	chaosAfter := fs.Duration("chaos-after", time.Millisecond, "loadgen: chaos requests' lifetime")
	arrivals := fs.String("arrivals", "none", "loadgen: open-loop arrival trace (none|poisson|bursty), seeded by -seed")
	rate := fs.Float64("rate", 50, "loadgen: mean arrival rate in requests/sec for -arrivals")
	benchOut := fs.String("bench-out", "", "loadgen: write hit/miss latency stats as a BENCH_*.json snapshot to this file")
	metricz := fs.Bool("metricz", false, "print the daemon's /metricz counters as 'name value' lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *metricz {
		return dumpMetricz(ctx, *addr, stdout, stderr)
	}

	cl := client.New(*addr, client.Config{MaxAttempts: *attempts, Seed: *seed})
	if *loadgen {
		offsets, err := buildArrivals(*arrivals, *n, *rate, *seed)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		mix := buildMix(*exps, *exp, *scale, *seed)
		rep, err := cl.Loadgen(ctx, client.LoadgenOptions{
			Requests:       *n,
			Concurrency:    *c,
			Mix:            mix,
			CancelFraction: *chaosCancel,
			CancelAfter:    *chaosAfter,
			Seed:           *seed,
			Arrivals:       offsets,
		})
		if rep != nil {
			if _, werr := rep.WriteTo(stdout); werr != nil {
				fmt.Fprintln(stderr, werr)
				return 1
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if rep.Errors > 0 {
			fmt.Fprintf(stderr, "hetbenchctl: %d requests failed\n", rep.Errors)
			return 1
		}
		if *benchOut != "" {
			if err := writeServiceBench(*benchOut, rep); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stderr, "wrote %s (service suite)\n", *benchOut)
		}
		return 0
	}

	res, err := cl.Run(ctx, service.RunRequest{
		Experiment: *exp, Scale: *scale, Seed: *seed, TimeoutMs: *timeoutMs,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "key=%s cached=%v\n", res.Key, res.Cached)
	fmt.Fprint(stdout, res.Output)
	return 0
}

// buildArrivals turns -arrivals/-rate into open-loop dispatch offsets
// using the fleet trace generator, so the live daemon sees the same
// seeded arrival process the cluster simulator does. "none" keeps the
// classic closed-loop worker pool.
func buildArrivals(shape string, n int, rate float64, seed int64) ([]time.Duration, error) {
	if shape == "" || shape == "none" {
		return nil, nil
	}
	sh, err := fleet.ParseShape(shape)
	if err != nil {
		return nil, fmt.Errorf("-arrivals: %w", err)
	}
	spec := fleet.TraceSpec{Shape: sh, Jobs: n, RatePerSec: rate, Seed: seed}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("-arrivals: %w", err)
	}
	return fleet.ArrivalOffsets(spec), nil
}

// writeServiceBench snapshots a loadgen report as the "service" BENCH
// suite: one entry per outcome class (hit, miss) carrying the measured
// latency distribution. Commit metadata comes from HETBENCH_COMMIT (CI
// passes GITHUB_SHA); the numbers are wall-clock, so the snapshot is a
// trajectory point, not a deterministic artifact.
func writeServiceBench(path string, rep *client.LoadgenReport) error {
	commit := os.Getenv("HETBENCH_COMMIT")
	if commit == "" {
		commit = os.Getenv("GITHUB_SHA")
	}
	f := &report.BenchFile{
		Suite:  "service",
		Commit: commit,
		Date:   time.Now().UTC().Format(time.RFC3339), //hetlint:allow detnondet BENCH metadata timestamps the snapshot, never experiment output
		Go:     runtime.Version(),
	}
	for _, c := range []struct {
		name  string
		count int
		hist  *trace.Histogram
	}{{"service/hit", rep.Hits, rep.HitNs}, {"service/miss", rep.Misses, rep.MissNs}} {
		if c.count == 0 || c.hist.Count() == 0 {
			continue
		}
		f.Entries = append(f.Entries, report.BenchEntry{
			Name:        c.name,
			NsPerOp:     c.hist.Mean(),
			AllocsPerOp: -1,
			Count:       int64(c.count),
			P50Ns:       c.hist.Quantile(0.50),
			P95Ns:       c.hist.Quantile(0.95),
			P99Ns:       c.hist.Quantile(0.99),
			MaxNs:       c.hist.Max(),
		})
	}
	if len(f.Entries) == 0 {
		return fmt.Errorf("bench-out: loadgen produced no latency samples")
	}
	return report.WriteBenchFile(path, f)
}

// buildMix expands -exps into the loadgen request pool.
func buildMix(exps, exp, scale string, seed int64) []service.RunRequest {
	ids := []string{exp}
	if exps != "" {
		ids = strings.Split(exps, ",")
	}
	mix := make([]service.RunRequest, 0, len(ids))
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		mix = append(mix, service.RunRequest{Experiment: id, Scale: scale, Seed: seed})
	}
	return mix
}

// dumpMetricz flattens /metricz to greppable "name value" lines.
func dumpMetricz(ctx context.Context, addr string, stdout, stderr io.Writer) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metricz", nil)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer resp.Body.Close()
	var m service.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	names := make([]string, 0, len(m.Counters))
	for k := range m.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(stdout, "%s %g\n", k, m.Counters[k])
	}
	qs := make([]string, 0, len(m.RequestNs))
	for k := range m.RequestNs {
		qs = append(qs, k)
	}
	sort.Strings(qs)
	for _, k := range qs {
		fmt.Fprintf(stdout, "request.ns.%s %g\n", k, m.RequestNs[k])
	}
	fmt.Fprintf(stdout, "goroutines %d\n", m.Goroutines)
	fmt.Fprintf(stdout, "cache.len %d\n", m.CacheLen)
	return 0
}
