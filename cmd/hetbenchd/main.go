// Command hetbenchd serves hetbench experiments over HTTP/JSON: a
// content-addressed result cache in front of the parallel runner, with
// singleflight dedup, bounded admission, end-to-end cancellation and a
// drain-on-signal shutdown. See internal/service for the API.
//
// Usage:
//
//	hetbenchd [-addr :8080] [-max-concurrent 2] [-max-queue 8]
//	          [-cache-mb 64] [-drain-timeout 30s] [-jobs N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hetbench/internal/harness/runner"
	"hetbench/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hetbenchd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxConcurrent := fs.Int("max-concurrent", 2, "in-flight experiment runs")
	maxQueue := fs.Int("max-queue", 8, "queued requests before shedding 429s")
	cacheMB := fs.Int64("cache-mb", 64, "result cache budget in MiB")
	drain := fs.Duration("drain-timeout", 30*time.Second, "grace for in-flight runs at shutdown")
	jobs := fs.Int("jobs", 0, "runner workers per experiment (0 = leave default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jobs > 0 {
		runner.SetJobs(*jobs)
	}

	svc := service.New(service.Options{
		MaxConcurrent: *maxConcurrent,
		MaxQueued:     *maxQueue,
		CacheBytes:    *cacheMB << 20,
	})
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("hetbenchd listening on %s (max-concurrent=%d max-queue=%d cache=%dMiB)",
		*addr, *maxConcurrent, *maxQueue, *cacheMB)

	select {
	case err := <-errc:
		log.Printf("hetbenchd: serve: %v", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: stop accepting, give in-flight runs the grace period, then
	// cancel what remains and wait for it to unwind.
	log.Printf("hetbenchd: draining (up to %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	srvErr := srv.Shutdown(shutCtx)
	svcErr := svc.Close(shutCtx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("hetbenchd: serve: %v", err)
		return 1
	}
	if srvErr != nil || svcErr != nil {
		log.Printf("hetbenchd: forced drain (server: %v, service: %v)", srvErr, svcErr)
		fmt.Fprintln(os.Stderr, "hetbenchd: drain deadline exceeded; in-flight runs were canceled")
		return 1
	}
	log.Printf("hetbenchd: drained cleanly")
	return 0
}
