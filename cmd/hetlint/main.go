// Command hetlint runs hetbench's domain static analyzers over the
// module: detnondet (jobs-determinism hazards), spanleak (unbalanced
// trace spans), launchcheck (mishandled fault events), counterkey
// (malformed counter names), ctxflow (severed cancellation in service
// packages), seedflow (seeds not derived from fault.SubSeed or a seed
// parameter, checked interprocedurally), wallclock (wall-clock taint
// reaching result paths through package-internal helpers), goroexit
// (go statements without join accounting) and lockbalance (mutexes that
// can exit locked). See internal/analysis for the rules and the
// //hetlint:allow suppression directive.
//
// Usage:
//
//	hetlint [-list] [-only analyzer[,analyzer]] [-format text|json|sarif] [-jobs n] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Packages are analyzed on a bounded worker pool (-jobs, default
// GOMAXPROCS) with a deterministic merge: the finding list is
// bit-identical at any worker count.
//
// Output formats: text (default) prints one finding per line as
// "file:line: [analyzer] message", go vet-style, with paths relative to
// the working directory; json prints a flat array of finding objects;
// sarif prints a SARIF 2.1.0 log with module-root-relative paths for
// code-scanning upload.
//
// Exit status: 0 when no findings survive suppression, 1 when findings
// are reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"hetbench/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("hetlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "packages analyzed in parallel (findings are identical at any value)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: hetlint [-list] [-only analyzer[,analyzer]] [-format text|json|sarif] [-jobs n] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(stderr, "hetlint: unknown format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if *only != "" {
		var err error
		if analyzers, err = selectAnalyzers(analyzers, *only); err != nil {
			fmt.Fprintf(stderr, "hetlint: %v\n", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "hetlint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "hetlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "hetlint: %v\n", err)
		return 2
	}

	findings := analysis.RunAnalyzersParallel(pkgs, analyzers, *jobs)
	// SARIF artifact URIs must be repository-relative for code-scanning
	// annotation; text and json stay relative to where hetlint ran.
	base := cwd
	if *format == "sarif" {
		base = loader.ModuleRoot()
	}
	for i := range findings {
		findings[i].Pos.Filename = relPath(base, findings[i].Pos.Filename)
	}

	var werr error
	switch *format {
	case "text":
		werr = analysis.WriteText(stdout, findings)
	case "json":
		werr = analysis.WriteJSON(stdout, findings)
	case "sarif":
		werr = analysis.WriteSARIF(stdout, findings, analyzers)
	}
	if werr != nil {
		fmt.Fprintf(stderr, "hetlint: %v\n", werr)
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only subset by name.
func selectAnalyzers(all []*analysis.Analyzer, only string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// relPath shortens file paths to base-relative form when that is cleaner.
func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
