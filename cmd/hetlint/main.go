// Command hetlint runs hetbench's domain static analyzers over the
// module: detnondet (jobs-determinism hazards), spanleak (unbalanced
// trace spans), launchcheck (mishandled fault events) and counterkey
// (malformed counter names). See internal/analysis for the rules and the
// //hetlint:allow suppression directive.
//
// Usage:
//
//	hetlint [-list] [-only analyzer[,analyzer]] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Findings print one per line as "file:line: [analyzer] message", go
// vet-style; the exit status is 1 when anything is found, 2 on usage or
// load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hetbench/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("hetlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: hetlint [-list] [-only analyzer[,analyzer]] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var err error
		if analyzers, err = selectAnalyzers(analyzers, *only); err != nil {
			fmt.Fprintf(stderr, "hetlint: %v\n", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "hetlint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "hetlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "hetlint: %v\n", err)
		return 2
	}

	findings := analysis.RunAnalyzers(pkgs, analyzers)
	for _, f := range findings {
		f.Pos.Filename = relPath(cwd, f.Pos.Filename)
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only subset by name.
func selectAnalyzers(all []*analysis.Analyzer, only string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// relPath shortens file paths to cwd-relative form when that is cleaner.
func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
