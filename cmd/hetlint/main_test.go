package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// TestRepoIsClean is the acceptance gate in test form: hetlint over the
// whole module must exit 0 with no output. Any new violation of the
// determinism, span, fault or counter invariants fails this test before
// it ever reaches CI's dedicated hetlint step.
func TestRepoIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"../../..."}); code != 0 {
		t.Fatalf("hetlint on the module exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestFindingOutputFormat runs hetlint over a fixture that must produce
// findings and pins the "file:line: [analyzer] message" line format and
// the exit status 1 contract CI relies on.
func TestFindingOutputFormat(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(&out, &errb, []string{"-only", "counterkey", "../../internal/analysis/testdata/src/counterkey"})
	if code != 1 {
		t.Fatalf("expected exit 1 on findings, got %d\nstderr:\n%s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 findings, got %d:\n%s", len(lines), out.String())
	}
	lineRE := regexp.MustCompile(`^.+\.go:\d+: \[counterkey\] .+$`)
	for _, l := range lines {
		if !lineRE.MatchString(l) {
			t.Errorf("malformed finding line: %q", l)
		}
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"detnondet", "spanleak", "launchcheck", "counterkey"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-only", "nosuch", "../../..."}); code != 2 {
		t.Fatalf("expected exit 2 for unknown analyzer, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %q", errb.String())
	}
}
