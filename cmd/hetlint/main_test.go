package main

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// TestRepoIsClean is the acceptance gate in test form: hetlint over the
// whole module must exit 0 with no output. Any new violation of the
// determinism, span, fault or counter invariants fails this test before
// it ever reaches CI's dedicated hetlint step.
func TestRepoIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"../../..."}); code != 0 {
		t.Fatalf("hetlint on the module exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestFindingOutputFormat runs hetlint over a fixture that must produce
// findings and pins the "file:line: [analyzer] message" line format and
// the exit status 1 contract CI relies on.
func TestFindingOutputFormat(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(&out, &errb, []string{"-only", "counterkey", "../../internal/analysis/testdata/src/counterkey"})
	if code != 1 {
		t.Fatalf("expected exit 1 on findings, got %d\nstderr:\n%s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 findings, got %d:\n%s", len(lines), out.String())
	}
	lineRE := regexp.MustCompile(`^.+\.go:\d+: \[counterkey\] .+$`)
	for _, l := range lines {
		if !lineRE.MatchString(l) {
			t.Errorf("malformed finding line: %q", l)
		}
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{
		"detnondet", "spanleak", "launchcheck", "counterkey", "ctxflow",
		"seedflow", "wallclock", "goroexit", "lockbalance",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-only", "nosuch", "../../..."}); code != 2 {
		t.Fatalf("expected exit 2 for unknown analyzer, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %q", errb.String())
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-format", "xml", "../../..."}); code != 2 {
		t.Fatalf("expected exit 2 for unknown format, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown format") {
		t.Errorf("stderr missing diagnostic: %q", errb.String())
	}
}

// TestJSONFormat pins the -format json element shape over a fixture with
// known findings.
func TestJSONFormat(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(&out, &errb, []string{"-only", "counterkey", "-format", "json", "../../internal/analysis/testdata/src/counterkey"})
	if code != 1 {
		t.Fatalf("expected exit 1 on findings, got %d\nstderr:\n%s", code, errb.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-format json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 6 {
		t.Fatalf("expected 6 findings, got %d", len(findings))
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer != "counterkey" ||
			f.Severity != "error" || f.Message == "" {
			t.Errorf("malformed json finding: %+v", f)
		}
	}
}

// TestSARIFFormat validates the -format sarif document: SARIF 2.1.0, one
// run, a rule per analyzer, results with module-root-relative slash
// paths — the contract the CI code-scanning upload relies on.
func TestSARIFFormat(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(&out, &errb, []string{"-only", "counterkey", "-format", "sarif", "../../internal/analysis/testdata/src/counterkey"})
	if code != 1 {
		t.Fatalf("expected exit 1 on findings, got %d\nstderr:\n%s", code, errb.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("-format sarif output is not valid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("not a SARIF 2.1.0 log: version=%q schema=%q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("expected 1 run, got %d", len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "hetlint" {
		t.Errorf("driver name = %q, want hetlint", run0.Tool.Driver.Name)
	}
	// -only counterkey: one analyzer rule plus the directive pseudo-rule.
	if len(run0.Tool.Driver.Rules) != 2 {
		t.Errorf("expected 2 rules, got %d", len(run0.Tool.Driver.Rules))
	}
	if len(run0.Results) != 6 {
		t.Fatalf("expected 6 results, got %d", len(run0.Results))
	}
	for _, r := range run0.Results {
		if r.RuleID != "counterkey" || r.Level != "error" || r.Message.Text == "" {
			t.Errorf("malformed result: %+v", r)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("expected 1 location, got %d", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		uri := loc.ArtifactLocation.URI
		if !strings.HasPrefix(uri, "internal/analysis/testdata/src/counterkey/") {
			t.Errorf("artifact URI %q is not module-root-relative", uri)
		}
		if strings.Contains(uri, "\\") {
			t.Errorf("artifact URI %q is not slash-separated", uri)
		}
		if loc.Region.StartLine == 0 {
			t.Errorf("result missing startLine: %+v", r)
		}
	}
}

// TestFindingsDeterministicAcrossJobs is the parallel driver's contract
// test: the rendered finding list over the full fixture tree (every
// analyzer, plus directive diagnostics) must be byte-identical at one
// worker and at eight. Run under -race in CI, this also shakes out data
// races in the worker pool.
func TestFindingsDeterministicAcrossJobs(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, jobs := range []string{"1", "8"} {
		var out, errb bytes.Buffer
		code := run(&out, &errb, []string{"-jobs", jobs, "../../internal/analysis/testdata/src/..."})
		if code != 1 {
			t.Fatalf("expected exit 1 over the fixture tree at -jobs %s, got %d\nstderr:\n%s", jobs, code, errb.String())
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Errorf("findings differ between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", outputs[0], outputs[1])
	}
	if strings.Count(outputs[0], "\n") == 0 {
		t.Error("fixture tree produced no findings; determinism test is vacuous")
	}
}
