// Command lulesh runs the LULESH shock-hydrodynamics proxy application
// under every programming model on the simulated machines, mirroring the
// paper's `./LULESH -s 100 -i 100`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/apps/lulesh"
	"hetbench/internal/harness"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
)

func main() {
	s := flag.Int("s", 48, "mesh edge in elements (paper: 100)")
	iters := flag.Int("i", 20, "timesteps (paper: 100)")
	fn := flag.Int("functional", 2, "functional iterations (0 = all; rest replay measured costs)")
	device := flag.String("device", "both", "apu | dgpu | both")
	precFlag := flag.String("precision", "double", "single | double")
	flag.Parse()

	prec, err := harness.ParsePrecision(*precFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	machines, err := harness.Machines(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := lulesh.NewProblem(lulesh.Config{S: *s, Iters: *iters, FunctionalIters: *fn}, prec)
	err = harness.RunApp(context.Background(), os.Stdout, lulesh.AppName, machines,
		func(m *sim.Machine, model modelapi.Name) appcore.Result { return p.Run(m, model) })
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
