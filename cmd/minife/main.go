// Command minife runs the miniFE finite-element proxy application under
// every programming model, mirroring `./miniFE -nx 100 -ny 100 -nz 100`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/apps/minife"
	"hetbench/internal/harness"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
)

func main() {
	nx := flag.Int("nx", 48, "elements in x (paper: 100)")
	ny := flag.Int("ny", 48, "elements in y (paper: 100)")
	nz := flag.Int("nz", 48, "elements in z (paper: 100)")
	iters := flag.Int("i", 60, "max CG iterations (paper: 200)")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance (0 = fixed iterations)")
	fn := flag.Int("functional", 0, "functional CG iterations (0 = all)")
	device := flag.String("device", "both", "apu | dgpu | both")
	precFlag := flag.String("precision", "double", "single | double")
	flag.Parse()

	prec, err := harness.ParsePrecision(*precFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	machines, err := harness.Machines(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := minife.NewProblem(minife.Config{Nx: *nx, Ny: *ny, Nz: *nz, MaxIters: *iters, Tol: *tol, FunctionalIters: *fn}, prec)
	fmt.Printf("system: %d unknowns, %d nonzeros\n\n", p.A.NumRows, p.A.NNZ())
	err = harness.RunApp(context.Background(), os.Stdout, minife.AppName, machines,
		func(m *sim.Machine, model modelapi.Name) appcore.Result {
			r := p.Run(m, model)
			return r.Result
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
