// Command readmem runs the paper's read-memory micro-benchmark (block
// sums of 64 contiguous elements) under every programming model.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/apps/readmem"
	"hetbench/internal/harness"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
)

func main() {
	blocks := flag.Int("blocks", 1<<17, "output blocks (input = blocks × 64 elements)")
	device := flag.String("device", "both", "apu | dgpu | both")
	precFlag := flag.String("precision", "double", "single | double")
	flag.Parse()

	prec, err := harness.ParsePrecision(*precFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	machines, err := harness.Machines(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := readmem.NewProblem(readmem.Config{Blocks: *blocks, Precision: prec})
	err = harness.RunApp(context.Background(), os.Stdout, readmem.AppName, machines,
		func(m *sim.Machine, model modelapi.Name) appcore.Result { return p.Run(m, model) })
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
