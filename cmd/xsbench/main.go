// Command xsbench runs the XSBench cross-section-lookup proxy application
// under every programming model, mirroring the paper's `./XSBench -s small`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/apps/xsbench"
	"hetbench/internal/harness"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
)

func main() {
	size := flag.String("s", "scaled", "data-set size: small (paper: 240 MB table, 15M lookups) | scaled")
	lookups := flag.Int("l", 400_000, "lookups (scaled size only)")
	grid := flag.String("grid", "unionized", "lookup structure: unionized | nuclide")
	device := flag.String("device", "both", "apu | dgpu | both")
	precFlag := flag.String("precision", "double", "single | double")
	flag.Parse()

	prec, err := harness.ParsePrecision(*precFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	machines, err := harness.Machines(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var cfg xsbench.Config
	switch *size {
	case "small":
		cfg = xsbench.PaperSmall()
	case "scaled":
		cfg = xsbench.Config{Nuclides: 48, GridPoints: 4096, Lookups: *lookups}
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q (small|scaled)\n", *size)
		os.Exit(2)
	}
	switch *grid {
	case "unionized":
		cfg.Grid = xsbench.UnionizedGrid
	case "nuclide":
		cfg.Grid = xsbench.NuclideGridOnly
	default:
		fmt.Fprintf(os.Stderr, "unknown grid %q (unionized|nuclide)\n", *grid)
		os.Exit(2)
	}
	p := xsbench.NewProblem(cfg, prec)
	fmt.Printf("lookup table: %.0f MB\n\n", float64(cfg.TableBytes(prec))/(1<<20))
	err = harness.RunApp(context.Background(), os.Stdout, xsbench.AppName, machines,
		func(m *sim.Machine, model modelapi.Name) appcore.Result { return p.Run(m, model) })
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
