// Package hetbench reproduces "Exploring Parallel Programming Models for
// Heterogeneous Computing Systems" (Daga, Tschirhart, Freitag; IISWC 2015)
// as a pure-Go simulation study: a functional+analytic heterogeneous-
// system simulator (APU and discrete GPU), four programming-model runtimes
// (OpenCL-, C++ AMP-, OpenACC- and OpenMP-style) over one execution
// engine, the paper's five workloads, and a harness that regenerates every
// table and figure. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
package hetbench
