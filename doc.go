// Package hetbench reproduces "Exploring Parallel Programming Models for
// Heterogeneous Computing Systems" (Daga, Tschirhart, Freitag; IISWC 2015)
// as a pure-Go simulation study: a functional+analytic heterogeneous-
// system simulator (APU and discrete GPU), four programming-model runtimes
// (OpenCL-, C++ AMP-, OpenACC- and OpenMP-style) over one execution
// engine, the paper's five workloads, and a harness that regenerates every
// table and figure. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
//
// Package map:
//
//	internal/sim      simulated platform: devices, caches, DRAM, PCIe,
//	                  roofline timing, NDRange executor, power model
//	internal/models   the programming-model runtimes over one machine API
//	internal/apps     the five workloads under every model
//	internal/sloc     logical-SLOC counting behind Table IV / Eq. 1
//	internal/trace    spans, counter registry, hist.* latency histograms,
//	                  Chrome-trace and CSV exporters
//	internal/fault    deterministic fault injector + recovery layers
//	internal/sched    CPU+accelerator co-execution scheduler and the
//	                  DAG-aware planner over per-device virtual queues
//	internal/workload declarative multi-kernel workload specs: strict
//	                  JSON parser/validator (dataflow edges, cycle
//	                  rejection, deterministic topo order) plus the
//	                  interpreter running specs through sim.Machine
//	                  under every model's transfer strategy
//	internal/fleet    cluster-scale simulation: mixed APU/dGPU node
//	                  fleets under seeded arrival traces (poisson,
//	                  bursty), static/dynamic/hguided placement,
//	                  device-loss migration, tail-latency histograms
//	internal/harness  one Experiment per table/figure/ablation/extension
//	internal/harness/runner
//	                  bounded worker pool: cell-order-deterministic merge,
//	                  Stats with per-cell quantiles, ProgressSink events
//	internal/report   ASCII tables, series, CSV, and the hetbench-bench/v1
//	                  BENCH_*.json schema with the PerfDelta gate
//	internal/service  hetbenchd's core: content-addressed result cache,
//	                  singleflight dedup, bounded admission with load
//	                  shedding, end-to-end cancellation, drain on Close
//	internal/service/client
//	                  retrying client (backoff + Retry-After) and the
//	                  loadgen mode with hit/miss latency quantiles
//	internal/service/chaostest
//	                  failure-injection harness: gated/panicking runs,
//	                  goroutine-leak checker, slow reader
//	internal/analysis hetlint's domain analyzers (detnondet, spanleak,
//	                  launchcheck, counterkey, ctxflow, seedflow,
//	                  wallclock, goroexit, lockbalance) and the parallel
//	                  driver with text/json/sarif renderers
//	cmd/hetbench      the experiment driver (-exp, -jobs, -trace, -metrics,
//	                  -progress, -bench-out, -bench-delta)
//	cmd/hetbenchd     the HTTP/JSON simulation daemon
//	cmd/hetbenchctl   its client: single runs, -loadgen (closed-loop or
//	                  fleet-trace -arrivals replay), -metricz
//	cmd/hetlint       the static-analysis driver
//	specs/            shipped workload specs (sobel, canny, 3mm, mlp),
//	                  embedded as hetbench.SpecFS for the dag experiment
//
// Perf baselines BENCH_hotpath.json, BENCH_runner.json and
// BENCH_service.json live at the repo root; bench_test.go regenerates
// the hotpath suite when HETBENCH_BENCH_OUT is set, and the service
// suite comes from `hetbenchctl -loadgen -arrivals poisson -bench-out`.
package hetbench
