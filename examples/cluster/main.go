// Cluster: the full MPI+X stack. The paper studies the X (OpenCL, C++ AMP,
// OpenACC) on one node and notes that "MPI has been universally chosen in
// HPC to manage inter-node communication"; this example strong-scales the
// LULESH Sedov problem across a simulated InfiniBand cluster of R9 280X
// nodes — slab decomposition, per-step halo exchanges, and a global
// minimum-dt allreduce.
package main

import (
	"fmt"

	"hetbench/internal/apps/lulesh"
	"hetbench/internal/models/mpix"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func main() {
	p := lulesh.NewProblem(lulesh.Config{S: 64, Iters: 20, FunctionalIters: 1}, timing.Double)
	ranks := []int{1, 2, 4, 8, 16}
	results := p.StrongScaling(ranks, sim.NewDGPU, mpix.DefaultFabric())
	speedups := lulesh.Speedups(results)

	fmt.Printf("LULESH -s %d, %d steps, MPI+OpenCL over %s\n\n", p.Cfg.S, p.Cfg.Iters, mpix.DefaultFabric().Name)
	fmt.Printf("%6s  %12s  %8s  %10s  %10s\n", "ranks", "time (ms)", "speedup", "efficiency", "comm share")
	for i, r := range results {
		fmt.Printf("%6d  %12.3f  %7.2fx  %9.0f%%  %9.1f%%\n",
			r.Ranks, r.ElapsedNs/1e6, speedups[i], r.Efficiency(results[0])*100, r.CommFraction()*100)
	}
	fmt.Println("\nThe halo surface does not shrink with the slab count, so the")
	fmt.Println("communication share climbs and strong scaling rolls off — the")
	fmt.Println("surface-to-volume wall every MPI+X code meets.")
}
