// Frequency: a Figure 7-style sensitivity study. Sweep the discrete GPU's
// core and memory clocks for a memory-bound and a compute-bound workload
// and watch the boundedness flip which axis matters — including the
// paper's low-core-clock flattening, where too few outstanding requests
// starve the memory system.
package main

import (
	"fmt"

	"hetbench/internal/harness"
)

func main() {
	for _, app := range []string{"read-benchmark", "CoMD"} {
		series, err := harness.Fig7Data(harness.ScaleSmall, app)
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s: performance normalized to (200 MHz core, 480 MHz mem) ==\n", app)
		fmt.Printf("%-10s", "core MHz")
		for _, s := range series {
			fmt.Printf("  %8s", s.Name)
		}
		fmt.Println()
		for i := range series[0].X {
			fmt.Printf("%-10.0f", series[0].X[i])
			for _, s := range series {
				fmt.Printf("  %8.2f", s.Y[i])
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("read-benchmark climbs with the memory clock (right columns) but only")
	fmt.Println("once the core clock is high enough to keep requests in flight;")
	fmt.Println("CoMD climbs with the core clock and ignores memory frequency.")
}
