// Portability: the paper's performance-portability claim — the same
// C++ AMP miniFE code, untouched, moved from the APU to the discrete GPU,
// scales with the better memory system, while the OpenCL version would
// need retuned staging code.
package main

import (
	"fmt"

	"hetbench/internal/apps/minife"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func main() {
	problem := minife.NewProblem(minife.Config{
		Nx: 48, Ny: 48, Nz: 48,
		MaxIters: 40, Tol: 0, FunctionalIters: 3,
	}, timing.Double)
	fmt.Printf("miniFE: %d unknowns, %d nonzeros, CG with CSR-Adaptive SpMV\n\n",
		problem.A.NumRows, problem.A.NNZ())

	apu := problem.RunCppAMP(sim.NewAPU())
	dgpu := problem.RunCppAMP(sim.NewDGPU())

	fmt.Printf("C++ AMP on %-18s: %8.3f ms (kernel %8.3f ms)\n", "the APU", apu.ElapsedNs/1e6, apu.KernelNs/1e6)
	fmt.Printf("C++ AMP on %-18s: %8.3f ms (kernel %8.3f ms)\n", "the R9 280X", dgpu.ElapsedNs/1e6, dgpu.KernelNs/1e6)
	fmt.Printf("\nkernel-time scaling from moving the SAME code: %.2f×\n", apu.KernelNs/dgpu.KernelNs)
	fmt.Println("(miniFE is bandwidth-bound; the dGPU has ~8× the memory bandwidth.")
	fmt.Println(" No source change was needed — the paper's portability argument.)")
}
