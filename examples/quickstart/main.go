// Quickstart: run one kernel — the paper's read-memory block sum — under
// OpenCL, C++ AMP and OpenACC on both simulated machines, and print where
// the time goes. This is the smallest end-to-end use of the hetbench
// public surface: build a machine, pick a runtime, launch work, read the
// virtual clock.
package main

import (
	"fmt"

	"hetbench/internal/apps/readmem"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func main() {
	problem := readmem.NewProblem(readmem.Config{
		Blocks:    1 << 16, // 64k blocks × 64 elements = 32 MB in doubles
		Precision: timing.Double,
	})

	for _, machine := range []func() *sim.Machine{sim.NewAPU, sim.NewDGPU} {
		m := machine()
		fmt.Printf("== %s ==\n", m.Name())
		base := problem.RunOpenMP(machine())
		fmt.Printf("  %-8s %8.3f ms (the 4-core baseline)\n", "OpenMP", base.ElapsedNs/1e6)
		for _, model := range modelapi.All() {
			r := problem.Run(machine(), model)
			fmt.Printf("  %-8s %8.3f ms  kernel %7.3f ms  transfers %7.3f ms  speedup %5.2f×\n",
				model, r.ElapsedNs/1e6, r.KernelNs/1e6, r.TransferNs/1e6, r.SpeedupOver(base))
		}
		fmt.Println()
	}
	fmt.Println("Note how the APU runs pay zero transfer time while the discrete GPU")
	fmt.Println("buries its faster kernels under PCIe copies — the paper's Section VI-A.")
}
