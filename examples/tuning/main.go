// Tuning: the optimization surface of Section VI-C. Two experiments on
// the discrete GPU:
//
//  1. CoMD force kernel with and without LDS tiling (the "almost 3×"
//     C++ AMP observation — only OpenCL and C++ AMP can express tiles,
//     Figure 11).
//  2. An explicitly unrolled OpenCL kernel vs the plain one (OpenCL-only
//     knob per Figure 11).
package main

import (
	"fmt"

	"hetbench/internal/apps/comd"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/models/opencl"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

func main() {
	// 1. Tiling.
	p := comd.NewProblem(comd.Config{Nx: 16, Ny: 16, Nz: 16, Iters: 3, FunctionalIters: 1}, timing.Single)
	flat := p.RunOpenCLFlat(sim.NewDGPU())
	tiled := p.RunOpenCL(sim.NewDGPU())
	fmt.Printf("CoMD force kernel on the R9 280X (%d atoms):\n", p.Cfg.NumAtoms())
	fmt.Printf("  flat gather     : %8.3f ms\n", flat.KernelNs/1e6)
	fmt.Printf("  LDS-tiled       : %8.3f ms   (%.2f× — paper: ≈3×)\n\n",
		tiled.KernelNs/1e6, flat.KernelNs/tiled.KernelNs)

	// 2. Explicit unrolling.
	ctx := opencl.NewContext(sim.NewDGPU())
	q := ctx.NewQueue()
	spec := modelapi.KernelSpec{Name: "axpy-like", Class: modelapi.Regular, MissRate: 0.05, Coalesce: 1}
	body := func(w *exec.WorkItem) {
		w.Tally(exec.Counters{SPFlops: 8, LoadBytes: 16, StoreBytes: 8, Instrs: 64})
	}
	plain := ctx.CreateKernel(spec, body)
	unrolled := ctx.CreateKernel(spec, body)
	unrolled.Unroll = true
	tPlain := q.EnqueueNDRange(plain, 1<<20, 64).TimeNs
	tUnrolled := q.EnqueueNDRange(unrolled, 1<<20, 64).TimeNs
	fmt.Println("Issue-bound OpenCL kernel, hand-unrolled (#pragma unroll equivalent):")
	fmt.Printf("  plain    : %8.3f ms\n", tPlain/1e6)
	fmt.Printf("  unrolled : %8.3f ms   (%.2f×)\n", tUnrolled/1e6, tPlain/tUnrolled)
	fmt.Println("\nOpenACC exposes neither knob (Figure 11) — its CoMD force loop also")
	fmt.Println("falls back to mostly-scalar code, the paper's worst result.")
}
