// Workload: write a multi-kernel pipeline as a declarative JSON spec and
// let the DAG-aware scheduler overlap its independent kernels across both
// devices of a machine. The spec below is a tiny stereo-matching sketch —
// two independent per-camera filters feed a joining cost kernel — written
// inline so this file is the whole tutorial; the shipped specs under
// specs/ follow exactly the same schema.
package main

import (
	"fmt"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
	"hetbench/internal/workload"
)

// A spec names its buffers (with sizes), then its kernels: per-item
// operation counts, a kernel class for the compiler profiles, a
// wavefront_hint to round launches to, and reads/writes buffer lists.
// The dependency DAG is *derived* from those lists (filter_left and
// filter_right touch disjoint buffers, so they are independent; cost
// reads both outputs, so it runs last) — there is no explicit edge
// syntax unless an ordering has no dataflow, in which case "after"
// names the predecessor. "device" pins a kernel ("host"/"accel");
// unpinned kernels go wherever the planner books them.
const spec = `{
  "name": "stereo",
  "title": "two camera filters feeding a matching-cost kernel",
  "iterations": 2,
  "buffers": [
    {"name": "left", "bytes": 4194304},
    {"name": "right", "bytes": 4194304},
    {"name": "left_f", "bytes": 4194304},
    {"name": "right_f", "bytes": 4194304},
    {"name": "cost", "bytes": 4194304}
  ],
  "kernels": [
    {
      "name": "filter_left", "class": "streaming",
      "items": 1048576, "wavefront_hint": 64,
      "sp_flops": 18, "load_bytes": 36, "store_bytes": 4, "miss_rate": 0.9,
      "reads": ["left"], "writes": ["left_f"]
    },
    {
      "name": "filter_right", "class": "streaming",
      "items": 1048576, "wavefront_hint": 64,
      "sp_flops": 18, "load_bytes": 36, "store_bytes": 4, "miss_rate": 0.9,
      "reads": ["right"], "writes": ["right_f"]
    },
    {
      "name": "cost", "class": "streaming",
      "items": 1048576, "wavefront_hint": 64,
      "sp_flops": 12, "load_bytes": 8, "store_bytes": 4, "miss_rate": 0.9,
      "reads": ["left_f", "right_f"], "writes": ["cost"]
    }
  ]
}`

func main() {
	s, err := workload.Parse([]byte(spec))
	if err != nil {
		panic(err) // the parser is strict: cycles, typos and unknown
		//             buffers all fail here, with positions
	}
	prog, err := s.Compile()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d kernels, %d dependency edges, topo order %v\n\n",
		s.Name, len(s.Kernels), prog.Edges, prog.Order)

	for _, machine := range []func() *sim.Machine{sim.NewAPU, sim.NewDGPU} {
		m := machine()
		fmt.Printf("== %s ==\n", m.Name())
		for _, model := range modelapi.All() {
			// Serial baseline: every kernel on one device in topo order.
			base := workload.Execute(machine(), prog, workload.Options{Model: model})
			// The DAG planner books ready kernels on whichever device
			// finishes them earliest; the two filters overlap.
			planner := sched.NewDag(sched.Config{Policy: sched.Dynamic})
			dag := workload.Execute(machine(), prog, workload.Options{Model: model, Planner: planner})
			fmt.Printf("  %-8s serial %7.3f ms  dag %7.3f ms  (%d host / %d accel kernels, %d copies)  speedup %4.2f×\n",
				model, base.ElapsedNs/1e6, dag.ElapsedNs/1e6,
				dag.HostKernels, dag.AccelKernels, dag.Transfers,
				base.ElapsedNs/dag.ElapsedNs)
		}
		fmt.Println()
	}
	fmt.Println("The fork in the graph is the whole story: with two independent filters")
	fmt.Println("the planner keeps both devices busy, while a straight chain (try deleting")
	fmt.Println("one filter) schedules exactly like the serial baseline.")
}
