module hetbench

go 1.22
