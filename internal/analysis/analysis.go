// Package analysis is hetlint's stdlib-only static-analysis driver. It
// loads every package in the module (go/parser + go/types, no external
// dependencies) and runs nine domain analyzers that turn the repo's
// load-bearing conventions into mechanically-checked rules:
//
//   - detnondet:   no wall-clock or global-PRNG nondeterminism in
//     result-producing code (the TestGolden jobs-determinism contract);
//   - spanleak:    every sim.ActiveSpan opened by StartSpan/StartRun/
//     StartIteration is closed on all control-flow paths;
//   - launchcheck: fault events from LaunchKernelChecked are never
//     discarded, and fault-participating packages never bypass the
//     injector with a bare accelerator LaunchKernel;
//   - counterkey:  trace counter names are lowercase dotted string
//     constants in the established namespaces, never formatted at
//     runtime on the launch hot path;
//   - ctxflow:     request-handling code in service packages never
//     conjures a fresh context.Background()/context.TODO() — contexts
//     derive from the request so disconnects and deadlines propagate;
//   - seedflow:    every rand.NewSource/NewPCG seed in the result
//     packages flows from fault.SubSeed or an explicit seed parameter,
//     never wall clock, global rand, or an ad-hoc literal — checked
//     interprocedurally through package-internal seed parameters;
//   - wallclock:   a package-internal helper whose return value derives
//     from time.Now/time.Since taints every caller in a result package
//     (the call-graph deepening of detnondet's per-function rule);
//   - goroexit:    every go statement in the service and runner
//     packages is join-accounted: WaitGroup Add/Done pairing with Done
//     on all paths, a ctx.Done() select, or a channel handoff the
//     spawner receives;
//   - lockbalance: every sync.Mutex/RWMutex Lock in the service and
//     fleet packages reaches its Unlock on all control-flow paths.
//
// Intentional violations are annotated in source with
//
//	//hetlint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The driver reports
// misspelled and unused directives itself, so a suppression cannot
// silently outlive the code it excused.
//
// RunAnalyzersParallel analyzes packages on a bounded worker pool with a
// deterministic merge, so the finding list is bit-identical at any
// worker count — the same ethos as the experiment runner.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Severity levels, mapped onto SARIF's level vocabulary by WriteSARIF.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Finding is one diagnostic: an invariant violation, or a problem with a
// suppression directive (Analyzer == DirectiveName).
type Finding struct {
	Pos      token.Position
	Analyzer string
	Severity string
	Message  string
}

// String renders the go vet-style one-line form "file:line: [analyzer] msg".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named rule run over each loaded package.
type Analyzer struct {
	Name     string
	Doc      string
	Severity string
	Run      func(*Pass)
}

// Pass carries one (package, analyzer) run; analyzers report through it.
type Pass struct {
	Pkg    *Package
	report func(pos token.Pos, msg string)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Analyzers returns hetlint's rule set in its fixed presentation order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetNonDet, SpanLeak, LaunchCheck, CounterKey, CtxFlow,
		SeedFlow, WallClock, GoroExit, LockBalance,
	}
}

// DirectiveName is the pseudo-analyzer findings about the //hetlint:allow
// directives themselves are attributed to. It is not suppressible.
const DirectiveName = "directive"

// RunAnalyzers runs the analyzers over each package serially. It is
// RunAnalyzersParallel at one worker; see there for the semantics.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunAnalyzersParallel(pkgs, analyzers, 1)
}

// RunAnalyzersParallel runs the analyzers over the packages on a bounded
// pool of workers, applies the //hetlint:allow directives, and returns
// the surviving findings sorted by position. Directive problems (unknown
// analyzer, missing reason, unused suppression) are reported as
// DirectiveName findings.
//
// Determinism contract: each package is analyzed independently (loaded
// type information is read-only by the time this runs), per-package
// findings land in a slot indexed by package order, and the final merge
// sorts by position — so the result is bit-identical at any worker
// count, exactly like the experiment runner's cell merge.
//
// Directive validity is judged against the full registry plus the passed
// analyzers, so running a subset with -only does not misreport the other
// analyzers' suppressions as misspelled; the unused-directive check
// applies only to directives naming an analyzer that actually ran.
func RunAnalyzersParallel(pkgs []*Package, analyzers []*Analyzer, workers int) []Finding {
	if workers < 1 {
		workers = 1
	}
	known := make(map[string]bool, len(analyzers))
	running := make(map[string]bool, len(analyzers))
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
		running[a.Name] = true
	}

	perPkg := make([][]Finding, len(pkgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i] = analyzePackage(pkg, analyzers, known, running)
		}(i, pkg)
	}
	wg.Wait()

	var out []Finding
	for _, fs := range perPkg {
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// analyzePackage runs every analyzer over one package and resolves its
// suppression directives; it touches no shared state, so packages can be
// analyzed concurrently.
func analyzePackage(pkg *Package, analyzers []*Analyzer, known, running map[string]bool) []Finding {
	var out []Finding
	dirs := parseDirectives(pkg, known, &out)
	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{Pkg: pkg}
		name, sev := a.Name, a.Severity
		pass.report = func(pos token.Pos, msg string) {
			raw = append(raw, Finding{Pos: pkg.Fset.Position(pos), Analyzer: name, Severity: sev, Message: msg})
		}
		a.Run(pass)
	}
	for _, f := range raw {
		if d := matchDirective(dirs, f); d != nil {
			d.used = true
			continue
		}
		out = append(out, f)
	}
	for _, d := range dirs {
		if !d.used && running[d.analyzer] {
			out = append(out, Finding{
				Pos:      token.Position{Filename: d.file, Line: d.line},
				Analyzer: DirectiveName,
				Severity: SeverityWarning,
				Message: fmt.Sprintf("unused //hetlint:allow %s directive: no %s finding on this or the next line",
					d.analyzer, d.analyzer),
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Shared type/AST helpers for the analyzers.

// calleeObj resolves a call's callee to its types.Object (function or
// method), or nil for builtins, conversions and indirect calls.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath string, names ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isMethodOn reports whether obj is a method with the given name on a
// (possibly pointer-to) named type with the given type name. Matching is
// by name so the testdata fixture stubs exercise the analyzers exactly
// like the real sim/trace packages do.
func isMethodOn(obj types.Object, typeName string, methods ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || namedTypeName(sig.Recv().Type()) != typeName {
		return false
	}
	for _, m := range methods {
		if fn.Name() == m {
			return true
		}
	}
	return false
}

// namedTypeName returns the name of t's (pointer-dereferenced) named
// type, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// buildParents maps every node under root to its enclosing node.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFunc returns the innermost function (FuncDecl body or FuncLit
// body) containing n, using a parents map.
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for cur := n; cur != nil; cur = parents[cur] {
		switch f := cur.(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// inspectSkipFuncLits walks n calling fn, without descending into nested
// function literals (their control flow is not the enclosing function's).
func inspectSkipFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}
