package analysis_test

import (
	"go/token"
	"path/filepath"
	"testing"

	"hetbench/internal/analysis"
	"hetbench/internal/analysis/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// TestAnalyzerFixtures runs each analyzer over its fixture package and
// asserts the exact `// want` diagnostics (position and message) plus
// the surviving-finding count, so a silently dead rule fails loudly.
func TestAnalyzerFixtures(t *testing.T) {
	tests := []struct {
		fixture string
		run     []*analysis.Analyzer
		want    int
	}{
		{"detnondet", []*analysis.Analyzer{analysis.DetNonDet}, 6},
		{"spanleak", []*analysis.Analyzer{analysis.SpanLeak}, 5},
		{"launchcheck", []*analysis.Analyzer{analysis.LaunchCheck}, 3},
		{"launchcheckcorr", []*analysis.Analyzer{analysis.LaunchCheck}, 1},
		{"launchcheckfree", []*analysis.Analyzer{analysis.LaunchCheck}, 0},
		{"counterkey", []*analysis.Analyzer{analysis.CounterKey}, 6},
		{"counterkeyfleet", []*analysis.Analyzer{analysis.CounterKey}, 6},
		{"counterkeydag", []*analysis.Analyzer{analysis.CounterKey}, 6},
		{"histkey", []*analysis.Analyzer{analysis.CounterKey}, 6},
		{"service", []*analysis.Analyzer{analysis.CtxFlow}, 2},
		{"ctxflowfree", []*analysis.Analyzer{analysis.CtxFlow}, 0},
		{"seedflow", []*analysis.Analyzer{analysis.SeedFlow}, 8},
		{"wallclock", []*analysis.Analyzer{analysis.WallClock}, 5},
		{"goroexit", []*analysis.Analyzer{analysis.GoroExit}, 3},
		{"lockbalance", []*analysis.Analyzer{analysis.LockBalance}, 3},
	}
	for _, tc := range tests {
		t.Run(tc.fixture, func(t *testing.T) {
			findings := analysistest.Run(t, fixture(tc.fixture), tc.run)
			if len(findings) != tc.want {
				t.Errorf("got %d findings, want %d:\n%v", len(findings), tc.want, findings)
			}
		})
	}
}

// TestDirectiveDiagnostics is the negative test for the suppression
// grammar: unused, misspelled, verbless and reasonless //hetlint
// directives are themselves reported, attributed to the "directive"
// pseudo-analyzer, while the one valid directive suppresses silently.
func TestDirectiveDiagnostics(t *testing.T) {
	findings := analysistest.Run(t, fixture("directives"), analysis.Analyzers())
	for _, f := range findings {
		if f.Analyzer != analysis.DirectiveName {
			t.Errorf("non-directive finding leaked through: %s", f)
		}
	}
	if len(findings) != 4 {
		t.Errorf("got %d directive findings, want 4:\n%v", len(findings), findings)
	}
	analysistest.MustContain(t, findings, `unused //hetlint:allow counterkey`)
	analysistest.MustContain(t, findings, `unknown analyzer "detnodnet"`)
	analysistest.MustContain(t, findings, `//hetlint:allow spanleak has no reason`)
	analysistest.MustContain(t, findings, `unknown hetlint directive "forbid"`)
}

// TestFindingString pins the one-line rendering CI greps for.
func TestFindingString(t *testing.T) {
	f := analysis.Finding{
		Pos:      token.Position{Filename: "internal/sim/machine.go", Line: 42},
		Analyzer: "spanleak",
		Message:  "span sp from StartSpan is not closed on every path",
	}
	got := f.String()
	want := "internal/sim/machine.go:42: [spanleak] span sp from StartSpan is not closed on every path"
	if got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

// TestAnalyzersOrder pins the registry: nine rules, fixed names.
func TestAnalyzersOrder(t *testing.T) {
	var names []string
	for _, a := range analysis.Analyzers() {
		names = append(names, a.Name)
	}
	want := []string{
		"detnondet", "spanleak", "launchcheck", "counterkey", "ctxflow",
		"seedflow", "wallclock", "goroexit", "lockbalance",
	}
	if len(names) != len(want) {
		t.Fatalf("Analyzers() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Analyzers()[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}
