// Package analysistest is the shared expectation-driven harness for
// hetlint's analyzers: it loads a fixture package from testdata, runs a
// set of analyzers over it, and diffs the findings against `// want`
// comments in the fixture source.
//
// Expectation grammar, modeled on golang.org/x/tools' analysistest:
//
//	code() // want "regexp" `second regexp`
//
// Each quoted pattern must match one finding on that line, rendered as
// "[analyzer] message"; every finding must be matched by a pattern and
// every pattern by a finding. A `// want+` comment attaches its patterns
// to the following line instead — for findings reported on lines that
// are themselves comments (e.g. a bad //hetlint:allow directive). A
// `// want` marker may also trail another comment on the same line.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hetbench/internal/analysis"
)

// wantRE captures the expectation marker and its pattern list.
var wantRE = regexp.MustCompile(`// want(\+)? (.*)$`)

// patternRE captures one double-quoted or backquoted pattern.
var patternRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one `// want` pattern anchored to a fixture line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package in dir, runs the analyzers, and reports
// any mismatch between findings and `// want` expectations through t.
// It returns the findings for additional assertions.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer) []analysis.Finding {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", dir, err)
	}
	pkgs, err := loader.Load(dir, []string{"."})
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	expects := parseExpectations(t, pkgs)
	findings := analysis.RunAnalyzers(pkgs, analyzers)

	for _, f := range findings {
		rendered := fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
		if !claim(expects, f.Pos.Filename, f.Pos.Line, rendered) {
			t.Errorf("%s:%d: unexpected finding: %s", f.Pos.Filename, f.Pos.Line, rendered)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no finding matched `// want %s`", e.file, e.line, e.pattern)
		}
	}
	return findings
}

// claim marks the first unmatched expectation on (file, line) whose
// pattern matches rendered.
func claim(expects []*expectation, file string, line int, rendered string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(rendered) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseExpectations walks every fixture comment for want markers.
func parseExpectations(t *testing.T, pkgs []*analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					line := pos.Line
					if m[1] == "+" {
						line++
					}
					for _, pm := range patternRE.FindAllStringSubmatch(m[2], -1) {
						text := pm[2]
						if pm[1] != "" || text == "" {
							unq, err := strconv.Unquote(`"` + pm[1] + `"`)
							if err != nil {
								t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, line, pm[1], err)
							}
							text = unq
						}
						re, err := regexp.Compile(text)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, line, text, err)
						}
						out = append(out, &expectation{file: pos.Filename, line: line, pattern: re})
					}
				}
			}
		}
	}
	return out
}

// MustContain asserts that some finding's rendered form matches pattern —
// for driver-level tests that assert a finding class without pinning its
// fixture position.
func MustContain(t *testing.T, findings []analysis.Finding, pattern string) {
	t.Helper()
	re := regexp.MustCompile(pattern)
	for _, f := range findings {
		if re.MatchString(fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)) {
			return
		}
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	t.Errorf("no finding matched %q; findings:\n%s", pattern, strings.Join(got, "\n"))
}
