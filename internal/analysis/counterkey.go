package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
	"sort"
	"strings"
)

// CounterKey enforces the counter-registry naming discipline: every name
// passed to trace.Registry.Add / SetGauge must be a lowercase dotted
// string constant whose first segment is one of the established
// namespaces, and every name passed to trace.Registry.Observe must be a
// lowercase dotted string constant in the "hist." namespace (see the
// Hist* constants). Names assembled at runtime — fmt.Sprintf on the
// launch hot path, string variables — defeat grep, fragment dashboards,
// and spend allocations inside the simulator's innermost loop. The one
// sanctioned dynamic form is a constant dotted prefix concatenated with
// a kind ("fault." + string(kind)), which the machine's fault path uses.
var CounterKey = &Analyzer{
	Name:     "counterkey",
	Doc:      "requires trace counter and histogram names to be lowercase dotted constants in the established namespaces",
	Severity: SeverityError,
	Run:      runCounterKey,
}

// counterNamespaces are the registry's established top-level segments
// (see the Ctr* constants in internal/trace/metrics.go). A new subsystem
// earns its namespace by adding it here in the same PR that introduces
// its counters.
var counterNamespaces = map[string]bool{
	"kernel": true, "transfer": true, "dram": true, "llc": true,
	"lds": true, "flops": true, "instrs": true, "energy": true,
	"fault": true, "resilience": true, "sched": true, "service": true,
	"fleet": true, "workload": true,
}

// counterNameRE admits lowercase dotted names; hyphens may join words
// inside a segment ("fault.transfer-corrupt") but never lead or trail.
var counterNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z0-9]+(-[a-z0-9]+)*)*$`)

func runCounterKey(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			if len(call.Args) >= 1 && isMethodOn(obj, "Registry", "Observe") {
				checkHistName(p, call.Args[0])
				return true
			}
			if !isMethodOn(obj, "Registry", "Add", "SetGauge") || len(call.Args) < 1 {
				return true
			}
			checkCounterName(p, call.Args[0])
			return true
		})
	}
}

// checkCounterName validates one name argument.
func checkCounterName(p *Pass, arg ast.Expr) {
	info := p.Pkg.Info
	if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		name := constant.StringVal(tv.Value)
		if !counterNameRE.MatchString(name) {
			p.Reportf(arg.Pos(), "counter name %q is not lowercase dotted (want e.g. %q)", name, "sched.host.ns")
			return
		}
		if seg, _, _ := strings.Cut(name, "."); !counterNamespaces[seg] {
			p.Reportf(arg.Pos(), "counter name %q is outside the established namespaces (%s)", name, namespaceList())
		}
		return
	}
	// Non-constant: the only sanctioned form is <constant dotted
	// prefix> + <dynamic suffix>, e.g. trace.CtrFaultPrefix + string(kind).
	if bin, ok := ast.Unparen(arg).(*ast.BinaryExpr); ok && bin.Op.String() == "+" {
		if tv, ok := info.Types[bin.X]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			prefix := constant.StringVal(tv.Value)
			base, hasDot := strings.CutSuffix(prefix, ".")
			if hasDot && counterNameRE.MatchString(base) {
				if seg, _, _ := strings.Cut(base, "."); counterNamespaces[seg] {
					return
				}
				p.Reportf(arg.Pos(), "counter prefix %q is outside the established namespaces (%s)", prefix, namespaceList())
				return
			}
			p.Reportf(arg.Pos(), "counter prefix %q is not a lowercase dotted namespace prefix ending in %q", prefix, ".")
			return
		}
	}
	if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
		if isPkgFunc(calleeObj(info, call), "fmt", "Sprintf", "Sprint", "Sprintln") {
			p.Reportf(arg.Pos(), "counter name built with fmt.%s on the hot path; use a dotted string constant (or a constant prefix + suffix)", calleeObj(info, call).Name())
			return
		}
	}
	p.Reportf(arg.Pos(), "counter name is not a string constant; registry keys must be greppable dotted constants")
}

// checkHistName validates one Observe name argument: histograms live in
// their own "hist." namespace, distinct from the counter namespaces, so
// a distribution can never shadow a counter on a dashboard.
func checkHistName(p *Pass, arg ast.Expr) {
	info := p.Pkg.Info
	if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		name := constant.StringVal(tv.Value)
		if !counterNameRE.MatchString(name) {
			p.Reportf(arg.Pos(), "histogram name %q is not lowercase dotted (want e.g. %q)", name, "hist.kernel.ns")
			return
		}
		if !strings.HasPrefix(name, "hist.") {
			p.Reportf(arg.Pos(), "histogram name %q must start with %q (see the trace.Hist* constants)", name, "hist.")
		}
		return
	}
	// Non-constant: the sanctioned form mirrors the counter rule — a
	// constant dotted "hist." prefix plus a dynamic suffix.
	if bin, ok := ast.Unparen(arg).(*ast.BinaryExpr); ok && bin.Op.String() == "+" {
		if tv, ok := info.Types[bin.X]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			prefix := constant.StringVal(tv.Value)
			base, hasDot := strings.CutSuffix(prefix, ".")
			if hasDot && counterNameRE.MatchString(base) {
				if base == "hist" || strings.HasPrefix(base, "hist.") {
					return
				}
				p.Reportf(arg.Pos(), "histogram prefix %q must start with %q", prefix, "hist.")
				return
			}
			p.Reportf(arg.Pos(), "histogram prefix %q is not a lowercase dotted prefix ending in %q", prefix, ".")
			return
		}
	}
	if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
		if isPkgFunc(calleeObj(info, call), "fmt", "Sprintf", "Sprint", "Sprintln") {
			p.Reportf(arg.Pos(), "histogram name built with fmt.%s on the hot path; use a dotted string constant (or a constant prefix + suffix)", calleeObj(info, call).Name())
			return
		}
	}
	p.Reportf(arg.Pos(), "histogram name is not a string constant; registry keys must be greppable dotted constants")
}

// namespaceList renders the allowed namespaces for diagnostics.
func namespaceList() string {
	names := make([]string, 0, len(counterNamespaces))
	for n := range counterNamespaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
