package analysis

import (
	"go/ast"
	"strings"
)

// CtxFlow guards hetbenchd's cancellation plumbing: inside a service
// package (any import-path segment equal to "service"), request-handling
// code must thread the caller's context — a fresh context.Background()
// or context.TODO() silently severs the chain that lets client
// disconnects and per-request deadlines cancel in-flight simulation
// work. Code that deliberately outlives one request (a run shared by
// several deduplicated requests, a daemon-lifetime root) derives from
// the request via context.WithoutCancel, or carries a
// //hetlint:allow ctxflow directive naming why.
var CtxFlow = &Analyzer{
	Name:     "ctxflow",
	Doc:      "flags context.Background()/context.TODO() in service request-handling packages",
	Severity: SeverityError,
	Run:      runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if !scopedTo(p.Pkg.Path, "ctxflow", "service") {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			if isPkgFunc(obj, "context", "Background", "TODO") {
				p.Reportf(call.Pos(), "context.%s() severs cancellation from the request; thread the caller's ctx (or derive a detached one with context.WithoutCancel)", obj.Name())
			}
			return true
		})
	}
}

// scopedTo reports whether the package at path is inside a scoped
// analyzer's territory: either some "/"-separated segment of the import
// path equals one of the scope segments (internal/service and its
// subpackages match "service"), or the package is an analysis fixture
// directory named exactly after the analyzer (testdata/src/<analyzer>),
// so fixture packages exercise scoped rules without masquerading as real
// package paths. Fixtures with other names (ctxflowfree,
// launchcheckfree, …) stay out of scope, which is how the out-of-scope
// negative fixtures work.
func scopedTo(path, analyzer string, segments ...string) bool {
	segs := strings.Split(path, "/")
	if strings.Contains(path, "/testdata/src/") && segs[len(segs)-1] == analyzer {
		return true
	}
	for _, seg := range segs {
		for _, want := range segments {
			if seg == want {
				return true
			}
		}
	}
	return false
}
