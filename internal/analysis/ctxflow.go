package analysis

import (
	"go/ast"
	"strings"
)

// CtxFlow guards hetbenchd's cancellation plumbing: inside a service
// package (any import-path segment equal to "service"), request-handling
// code must thread the caller's context — a fresh context.Background()
// or context.TODO() silently severs the chain that lets client
// disconnects and per-request deadlines cancel in-flight simulation
// work. Code that deliberately outlives one request (a run shared by
// several deduplicated requests, a daemon-lifetime root) derives from
// the request via context.WithoutCancel, or carries a
// //hetlint:allow ctxflow directive naming why.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Background()/context.TODO() in service request-handling packages",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if !inServiceScope(p.Pkg.Path) {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			if isPkgFunc(obj, "context", "Background", "TODO") {
				p.Reportf(call.Pos(), "context.%s() severs cancellation from the request; thread the caller's ctx (or derive a detached one with context.WithoutCancel)", obj.Name())
			}
			return true
		})
	}
}

// inServiceScope reports whether an import path names a service package:
// any "/"-separated segment equal to "service" (internal/service and its
// subpackages, plus the testdata fixture).
func inServiceScope(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "service" {
			return true
		}
	}
	return false
}
