package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetNonDet flags the nondeterminism hazards that would break the golden
// suite's jobs-determinism contract (byte-identical output at any -jobs
// under a fixed -seed):
//
//   - wall-clock reads (time.Now, time.Since) in result-producing code —
//     virtual-time experiments must derive every timestamp from the
//     simulated clocks;
//   - the global math/rand source (rand.Intn, rand.Float64, ...) — its
//     process-wide state makes draws depend on goroutine interleaving;
//     randomness must flow from rand.New(rand.NewSource(seed));
//   - ranging over a map while feeding an ordered writer (fmt output,
//     strings.Builder/bytes.Buffer writes, or appends to a slice that is
//     never sorted) — map iteration order differs run to run.
var DetNonDet = &Analyzer{
	Name:     "detnondet",
	Doc:      "flags wall-clock, global-PRNG and map-order nondeterminism in result-producing code",
	Severity: SeverityError,
	Run:      runDetNonDet,
}

// globalRandFuncs are the math/rand package-level functions that draw
// from the process-wide source. Constructors (New, NewSource, NewZipf)
// are fine: they are how seeded determinism is built.
var globalRandFuncs = []string{
	"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
	"Uint32", "Uint64", "Float32", "Float64",
	"ExpFloat64", "NormFloat64", "Perm", "Shuffle", "Read", "Seed",
}

// orderedWriterMethods are method names that serialize into an ordered
// sink (strings.Builder, bytes.Buffer, any io.Writer wrapper).
var orderedWriterMethods = map[string]bool{
	"WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runDetNonDet(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := calleeObj(info, n)
				if isPkgFunc(obj, "time", "Now", "Since") {
					p.Reportf(n.Pos(), "time.%s reads the wall clock; results must be a function of the seed and the virtual clocks", obj.Name())
				}
				if isPkgFunc(obj, "math/rand", globalRandFuncs...) || isPkgFunc(obj, "math/rand/v2", globalRandFuncs...) {
					p.Reportf(n.Pos(), "rand.%s draws from the global math/rand source; use a rand.New(rand.NewSource(seed)) owned by the run", obj.Name())
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRangeWriters(p, n.Body)
				}
			}
			return true
		})
	}
}

// checkMapRangeWriters flags range-over-map loops in fn whose body feeds
// an ordered writer. Appends are exempt when the destination slice is
// also passed to a sort/slices call somewhere in the same function — the
// collect-then-sort idiom is the fix this rule points at.
func checkMapRangeWriters(p *Pass, fn *ast.BlockStmt) {
	info := p.Pkg.Info
	sorted := sortedObjects(info, fn)
	ast.Inspect(fn, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if name, ok := orderedWriteCall(info, m); ok {
					p.Reportf(m.Pos(), "%s inside range over map writes in nondeterministic order; collect the keys and sort first", name)
				}
			case *ast.AssignStmt:
				reportUnsortedAppend(p, m, rng, sorted)
			}
			return true
		})
		return true
	})
}

// orderedWriteCall reports whether call writes to an ordered sink, and
// names the sink for the diagnostic.
func orderedWriteCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := calleeObj(info, call)
	if obj == nil {
		return "", false
	}
	if isPkgFunc(obj, "fmt", "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println") {
		return "fmt." + obj.Name(), true
	}
	if isPkgFunc(obj, "io", "WriteString") {
		return "io.WriteString", true
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig := fn.Type().(*types.Signature); sig.Recv() != nil && orderedWriterMethods[fn.Name()] {
			return namedTypeName(sig.Recv().Type()) + "." + fn.Name(), true
		}
	}
	return "", false
}

// reportUnsortedAppend flags `dst = append(dst, ...)` inside a map range
// when dst is declared outside the loop and never sorted in the function.
func reportUnsortedAppend(p *Pass, as *ast.AssignStmt, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return
	}
	if b, ok := p.Pkg.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := p.Pkg.Info.Uses[dst]
	if obj == nil {
		obj = p.Pkg.Info.Defs[dst]
	}
	if obj == nil || sorted[obj] {
		return
	}
	// Only slices accumulated across iterations matter: a destination
	// declared inside the loop body is per-iteration scratch.
	if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
		return
	}
	p.Reportf(as.Pos(), "append to %s in map-iteration order is nondeterministic; sort the keys first or sort %s afterwards", dst.Name, dst.Name)
}

// sortedObjects collects every object passed to a sorting call within
// fn: anything in the sort or slices packages, plus local helpers whose
// name starts with "sort" (the repo's sortInt32-style wrappers).
func sortedObjects(info *types.Info, fn *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(info, call)
		fnObj, ok := obj.(*types.Func)
		if !ok || fnObj.Pkg() == nil {
			return true
		}
		path := fnObj.Pkg().Path()
		if path != "sort" && path != "slices" &&
			!strings.HasPrefix(strings.ToLower(fnObj.Name()), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if o := info.Uses[id]; o != nil {
					out[o] = true
				}
			}
		}
		return true
	})
	return out
}
