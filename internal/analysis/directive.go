package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// directivePrefix starts every hetlint source directive.
const directivePrefix = "hetlint:"

// directive is one parsed //hetlint:allow comment.
type directive struct {
	file     string
	line     int
	analyzer string
	used     bool
}

// ParseAllowDirective parses the text of one source comment against the
// //hetlint:allow grammar:
//
//	//hetlint:allow <analyzer> <reason>
//
// ok reports whether the comment is a hetlint directive at all (the
// "//hetlint:" prefix); non-directive comments return ok=false and zero
// values. For directives, problem carries the grammar diagnostic for an
// unknown verb, and is empty otherwise; analyzer is the first
// space-separated token after the verb (possibly empty) and reason the
// space-trimmed remainder. Whether the analyzer name is real and the
// reason non-empty is the caller's judgment: the parser has no analyzer
// registry.
func ParseAllowDirective(comment string) (analyzer, reason string, ok bool, problem string) {
	text, ok := strings.CutPrefix(comment, "//"+directivePrefix)
	if !ok {
		return "", "", false, ""
	}
	verb, rest, _ := strings.Cut(text, " ")
	if verb != "allow" {
		return "", "", true,
			fmt.Sprintf("unknown hetlint directive %q: only //hetlint:allow <analyzer> <reason> is defined", verb)
	}
	analyzer, reason, _ = strings.Cut(strings.TrimSpace(rest), " ")
	return analyzer, strings.TrimSpace(reason), true, ""
}

// parseDirectives extracts the package's //hetlint: comments, reporting
// malformed ones into out and returning the well-formed suppressions.
func parseDirectives(pkg *Package, known map[string]bool, out *[]Finding) []*directive {
	var dirs []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, isDir, problem := ParseAllowDirective(c.Text)
				if !isDir {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case problem != "":
					*out = append(*out, directiveFinding(pos, problem))
				case !known[name]:
					*out = append(*out, directiveFinding(pos,
						fmt.Sprintf("//hetlint:allow names unknown analyzer %q", name)))
				case reason == "":
					*out = append(*out, directiveFinding(pos,
						fmt.Sprintf("//hetlint:allow %s has no reason; the directive grammar is //hetlint:allow <analyzer> <reason>", name)))
				default:
					dirs = append(dirs, &directive{file: pos.Filename, line: pos.Line, analyzer: name})
				}
			}
		}
	}
	return dirs
}

// directiveFinding builds one DirectiveName finding at pos.
func directiveFinding(pos token.Position, msg string) Finding {
	return Finding{Pos: pos, Analyzer: DirectiveName, Severity: SeverityWarning, Message: msg}
}

// matchDirective returns the directive suppressing f, if any: same
// analyzer, same file, on the finding's line or the line directly above.
func matchDirective(dirs []*directive, f Finding) *directive {
	for _, d := range dirs {
		if d.analyzer == f.Analyzer && d.file == f.Pos.Filename &&
			(d.line == f.Pos.Line || d.line == f.Pos.Line-1) {
			return d
		}
	}
	return nil
}
