package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the shared "closed on all paths" machinery behind
// spanleak, lockbalance and goroexit: a resource is opened at one
// statement (a span started, a mutex locked, a goroutine obligated to
// call Done) and some closing call must be reached on every control-flow
// path out of the region — either via defer, which covers every exit, or
// via explicit calls that structurally dominate each return, loop wrap
// and fall-off-the-end.
//
// The analysis is a block-structured dominator approximation over the
// AST, not a real CFG: goto and fallthrough fail closed, panic paths are
// exempt (the invariant is moot on a crash), and nested function
// literals are opaque (their control flow is not the enclosing
// function's).

// closer reports whether one call closes the tracked resource.
type closer func(*ast.CallExpr) bool

// pathCheck runs the dominator approximation for one resource.
type pathCheck struct {
	info   *types.Info
	closes closer
}

// flowResult summarizes what the open-resource paths through a region of
// the function can do.
type flowResult struct {
	falls bool // a path reaches the region's end with the resource open
	brk   bool // a path breaks from the nearest loop/switch, still open
	cont  bool // a path continues the nearest loop, still open
	bad   bool // a path leaks: exits the function, or wraps the loop
	//            iteration that opened the resource, without closing
}

// open reports whether any path is still carrying the open resource.
func (r flowResult) open() bool { return r.bad || r.falls || r.brk || r.cont }

// deferredClose reports whether fnBody defers a closing call, directly
// or inside a deferred closure. Nested function literals other than the
// deferred one are skipped: their defers run at closure exit, not
// function exit.
func (pc *pathCheck) deferredClose(fnBody *ast.BlockStmt) bool {
	found := false
	inspectSkipFuncLits(fnBody, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if pc.closes(d.Call) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && pc.closes(c) {
					found = true
					return false
				}
				return true
			})
		}
		return !found
	})
	return found
}

// leaksFrom runs the structural dominator check for a resource opened at
// openStmt inside fnBody. It descends from the function body along the
// chain of nodes enclosing the opening statement, then tracks the
// open-resource paths forward to every exit.
func (pc *pathCheck) leaksFrom(parents map[ast.Node]ast.Node, fnBody *ast.BlockStmt, openStmt ast.Stmt) bool {
	chain := make(map[ast.Node]bool)
	for n := ast.Node(openStmt); n != nil && n != ast.Node(fnBody); n = parents[n] {
		chain[n] = true
	}
	// Any open path still live at the function body's end — falling off
	// the end (an implicit return) or a stray break/continue — is a leak.
	return pc.analyzeFrom(fnBody.List, chain, openStmt).open()
}

// closedOnBody reports whether a resource open at body's entry (e.g. the
// Done obligation of a goroutine) is closed on every path out of body:
// a deferred close covers everything, otherwise explicit closes must
// dominate each exit.
func (pc *pathCheck) closedOnBody(body *ast.BlockStmt) bool {
	if pc.deferredClose(body) {
		return true
	}
	return !pc.analyzeList(body.List).open()
}

// analyzeFrom analyzes a statement list that contains (a node on the
// chain to) the opening statement: the resource opens partway through
// the list, and the suffix after it must close every open path.
func (pc *pathCheck) analyzeFrom(stmts []ast.Stmt, chain map[ast.Node]bool, openStmt ast.Stmt) flowResult {
	res := flowResult{}
	started, open := false, false
	for _, s := range stmts {
		if !started {
			if chain[s] || ast.Node(s) == ast.Node(openStmt) {
				started = true
				r := pc.analyzeEntry(s, chain, openStmt)
				res.bad = res.bad || r.bad
				res.brk = res.brk || r.brk
				res.cont = res.cont || r.cont
				open = r.falls
			}
			continue
		}
		if !open {
			break
		}
		r := pc.analyzeStmt(s)
		res.bad = res.bad || r.bad
		res.brk = res.brk || r.brk
		res.cont = res.cont || r.cont
		open = r.falls
	}
	res.falls = started && open
	return res
}

// analyzeEntry analyzes the chain statement through which control
// reaches the opening statement, returning the open paths that emerge.
func (pc *pathCheck) analyzeEntry(stmt ast.Stmt, chain map[ast.Node]bool, openStmt ast.Stmt) flowResult {
	if ast.Node(stmt) == ast.Node(openStmt) {
		return flowResult{falls: true} // the resource has just opened
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return pc.analyzeFrom(s.List, chain, openStmt)
	case *ast.LabeledStmt:
		return pc.analyzeEntry(s.Stmt, chain, openStmt)
	case *ast.IfStmt:
		if ast.Node(s.Init) == ast.Node(openStmt) {
			// if sp := open(); cond { … }: open in both branches.
			t := pc.analyzeList(s.Body.List)
			e := flowResult{falls: true}
			if s.Else != nil {
				e = pc.analyzeStmt(s.Else)
			}
			return mergeBranches(t, e)
		}
		if chain[s.Body] {
			return pc.analyzeFrom(s.Body.List, chain, openStmt)
		}
		if s.Else != nil && chain[s.Else] {
			return pc.analyzeEntry(s.Else, chain, openStmt)
		}
	case *ast.ForStmt:
		if chain[s.Body] {
			return loopEntry(pc.analyzeFrom(s.Body.List, chain, openStmt))
		}
	case *ast.RangeStmt:
		if chain[s.Body] {
			return loopEntry(pc.analyzeFrom(s.Body.List, chain, openStmt))
		}
	case *ast.SwitchStmt:
		return pc.clauseEntry(s.Body, chain, openStmt)
	case *ast.TypeSwitchStmt:
		return pc.clauseEntry(s.Body, chain, openStmt)
	case *ast.SelectStmt:
		return pc.clauseEntry(s.Body, chain, openStmt)
	}
	// Unhandled shape (an opening inside an expression statement's
	// closure never reaches here; enclosingFunc scopes to the literal).
	// Fail open on the entry statement and let the suffix check decide.
	return flowResult{falls: true}
}

// loopEntry folds a loop body's outcome when the resource was opened
// inside that body: wrapping the iteration (falling off the body or
// continue) leaks the resource opened this iteration; break carries it
// out to the statements after the loop.
func loopEntry(body flowResult) flowResult {
	return flowResult{
		falls: body.brk,
		bad:   body.bad || body.falls || body.cont,
	}
}

// clauseEntry descends into the switch/select clause on the chain; a
// break inside the clause exits the construct, i.e. falls onward.
func (pc *pathCheck) clauseEntry(body *ast.BlockStmt, chain map[ast.Node]bool, openStmt ast.Stmt) flowResult {
	for _, clause := range body.List {
		if !chain[clause] {
			continue
		}
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		r := pc.analyzeFrom(stmts, chain, openStmt)
		return flowResult{falls: r.falls || r.brk, cont: r.cont, bad: r.bad}
	}
	return flowResult{falls: true}
}

// analyzeList walks one statement list with the resource open on entry,
// tracking whether an open path survives each statement.
func (pc *pathCheck) analyzeList(stmts []ast.Stmt) flowResult {
	res := flowResult{}
	open := true
	for _, s := range stmts {
		if !open {
			break
		}
		r := pc.analyzeStmt(s)
		res.bad = res.bad || r.bad
		res.brk = res.brk || r.brk
		res.cont = res.cont || r.cont
		open = r.falls
	}
	res.falls = open
	return res
}

// analyzeStmt analyzes one statement executed with the resource open.
// falls means an open path continues to the next statement.
func (pc *pathCheck) analyzeStmt(stmt ast.Stmt) flowResult {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if pc.closes(call) {
				return flowResult{} // resource closed; path is now fine
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pc.info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return flowResult{} // crash path; the invariant is moot
				}
			}
		}
		return flowResult{falls: true}
	case *ast.DeferStmt:
		if pc.closes(s.Call) {
			return flowResult{} // deferred close covers every later exit
		}
		return flowResult{falls: true}
	case *ast.ReturnStmt:
		return flowResult{bad: true}
	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			return flowResult{brk: true}
		case "continue":
			return flowResult{cont: true}
		default: // goto, fallthrough: fail closed rather than model them
			return flowResult{bad: true}
		}
	case *ast.BlockStmt:
		return pc.analyzeList(s.List)
	case *ast.LabeledStmt:
		return pc.analyzeStmt(s.Stmt)
	case *ast.IfStmt:
		t := pc.analyzeList(s.Body.List)
		e := flowResult{falls: true} // no else: the condition may skip the body
		if s.Else != nil {
			e = pc.analyzeStmt(s.Else)
		}
		return mergeBranches(t, e)
	case *ast.ForStmt:
		return loopOver(pc.analyzeList(s.Body.List))
	case *ast.RangeStmt:
		return loopOver(pc.analyzeList(s.Body.List))
	case *ast.SwitchStmt:
		return pc.switchOver(s.Body, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		return pc.switchOver(s.Body, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		// Every executed path runs exactly one clause; with no default
		// the select blocks until one fires.
		return pc.switchOver(s.Body, true)
	}
	return flowResult{falls: true}
}

// mergeBranches combines two alternative branch outcomes.
func mergeBranches(a, b flowResult) flowResult {
	return flowResult{
		falls: a.falls || b.falls,
		brk:   a.brk || b.brk,
		cont:  a.cont || b.cont,
		bad:   a.bad || b.bad,
	}
}

// loopOver folds a loop body's outcome when the resource predates the
// loop: the body may run zero times, and break/continue stay within the
// loop, so the resource stays open (falls) unless a path inside leaks
// outright. A close inside the body cannot cover the zero-iteration path.
func loopOver(body flowResult) flowResult {
	return flowResult{falls: true, bad: body.bad}
}

// switchOver folds the clause outcomes of a switch/select body entered
// with the resource open; break inside a clause exits the construct.
func (pc *pathCheck) switchOver(body *ast.BlockStmt, exhaustive bool) flowResult {
	res := flowResult{falls: !exhaustive}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		r := pc.analyzeList(stmts)
		res.falls = res.falls || r.falls || r.brk
		res.cont = res.cont || r.cont
		res.bad = res.bad || r.bad
	}
	return res
}

// hasDefaultClause reports whether a switch body has a default case.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}
