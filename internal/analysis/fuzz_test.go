package analysis_test

import (
	"strings"
	"testing"

	"hetbench/internal/analysis"
)

// FuzzAllowDirective hammers the //hetlint:allow parser with arbitrary
// comment text: whatever the input, parsing must be total (no panics),
// deterministic, and hold the grammar's invariants — non-directives
// return pure zero values, a problem diagnostic excludes a parsed
// analyzer, the analyzer token never contains spaces, and the reason is
// space-trimmed.
func FuzzAllowDirective(f *testing.F) {
	for _, seed := range []string{
		"//hetlint:allow detnondet pool wall-clock stats are reported, never part of results",
		"//hetlint:allow spanleak",
		"//hetlint:allow spanleak ",
		"//hetlint:allow detnodnet misspelled analyzer",
		"//hetlint:allow",
		"//hetlint:",
		"//hetlint:forbid detnondet no such verb",
		"//hetlint:allow counterkey  double  spaced  reason",
		"// an ordinary comment",
		"//hetlint:allow seedflow причина по-русски",
		"//hetlint:allow wallclock 理由",
		"//hetlint:allow lockbalance reason\twith\ttabs",
		"/*hetlint:allow goroexit block comment*/",
		"//hetlint:allow nbsp weirdness",
		"//HETLINT:ALLOW detnondet case matters",
		"//hetlint:allow ctxflow \x00 nul byte",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, comment string) {
		analyzer, reason, ok, problem := analysis.ParseAllowDirective(comment)
		analyzer2, reason2, ok2, problem2 := analysis.ParseAllowDirective(comment)
		if analyzer != analyzer2 || reason != reason2 || ok != ok2 || problem != problem2 {
			t.Fatalf("non-deterministic parse of %q", comment)
		}
		if !ok {
			if analyzer != "" || reason != "" || problem != "" {
				t.Fatalf("non-directive %q returned non-zero values (%q, %q, %q)", comment, analyzer, reason, problem)
			}
			if strings.HasPrefix(comment, "//hetlint:") {
				t.Fatalf("directive-prefixed comment %q not recognized as a directive", comment)
			}
			return
		}
		if !strings.HasPrefix(comment, "//hetlint:") {
			t.Fatalf("non-prefixed comment %q parsed as a directive", comment)
		}
		if problem != "" {
			if analyzer != "" || reason != "" {
				t.Fatalf("problem parse of %q still yielded analyzer %q / reason %q", comment, analyzer, reason)
			}
			return
		}
		if strings.Contains(analyzer, " ") {
			t.Fatalf("analyzer token %q from %q contains a space", analyzer, comment)
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("reason %q from %q is not space-trimmed", reason, comment)
		}
	})
}
