package analysis

import (
	"go/ast"
	"go/types"
)

// GoroExit enforces join accounting for every go statement in the service
// and runner packages (any import-path segment equal to "service" or
// "runner"): a goroutine the daemon spawns must be observable at shutdown,
// or Close hangs forever on a lost worker — the failure mode the
// chaos suite exists to catch. A go statement is accounted when one of
// three disciplines holds:
//
//   - WaitGroup pairing: some wg.Add(…) on the same WaitGroup precedes the
//     go statement in the spawning function, and the goroutine body calls
//     that WaitGroup's Done() on every control-flow path (defer, or
//     explicit calls dominating each exit — the spanleak machinery);
//   - context bounding: the goroutine body receives from a context's
//     Done() channel, so cancellation reaches it;
//   - channel handoff: the body closes or sends on a channel the spawning
//     function receives from.
//
// A WaitGroup pairing that is merely attempted — Done on some paths but
// not all — is reported as broken rather than falling back to the other
// disciplines: a skippable Done is exactly the bug that deadlocks
// wg.Wait.
var GoroExit = &Analyzer{
	Name:     "goroexit",
	Doc:      "requires go statements in service/runner packages to be join-accounted (WaitGroup pairing, ctx.Done select, or channel handoff)",
	Severity: SeverityError,
	Run:      runGoroExit,
}

func runGoroExit(p *Pass) {
	if !scopedTo(p.Pkg.Path, "goroexit", "service", "runner") {
		return
	}
	info := p.Pkg.Info
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range p.Pkg.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(p, parents, decls, g)
			}
			return true
		})
	}
}

func checkGoStmt(p *Pass, parents map[ast.Node]ast.Node, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) {
	info := p.Pkg.Info
	spawner := enclosingFunc(parents, g)
	if spawner == nil {
		return
	}
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn, ok := calleeObj(info, g.Call).(*types.Func); ok {
		if decl := decls[fn]; decl != nil {
			body = decl.Body
		}
	}
	if body == nil {
		p.Reportf(g.Pos(), "goroutine body is not visible to hetlint (external or dynamic callee); wrap it in a func literal that is join-accounted")
		return
	}

	// Discipline 1: WaitGroup pairing. Collect the receivers of Add calls
	// preceding the go statement in the spawning function, then look for a
	// matching Done in the body.
	adds := waitGroupAddsBefore(info, spawner, g)
	if done := findWaitGroupDone(info, body, adds); done != "" {
		pc := &pathCheck{info: info, closes: closesWaitGroupDone(info, done)}
		if !pc.closedOnBody(body) {
			p.Reportf(g.Pos(), "goroutine's %s.Done() is not reached on every path; defer it so the Add before this go statement is always balanced", done)
		}
		return
	}

	// Discipline 2: the body selects/receives on a context Done channel.
	if receivesCtxDone(info, body) {
		return
	}

	// Discipline 3: the body closes or sends on a channel the spawner
	// receives from outside the go statement.
	if handoff := bodyChannelSignals(info, body); len(handoff) > 0 {
		if spawnerReceivesFrom(spawner, g, handoff) {
			return
		}
	}

	p.Reportf(g.Pos(), "go statement is not join-accounted: pair it with WaitGroup Add/Done, select on a context's Done(), or hand off on a channel the spawner receives")
}

// waitGroupAddsBefore collects the rendered receivers ("wg", "s.inflight")
// of WaitGroup.Add calls textually preceding the go statement in the
// spawning function.
func waitGroupAddsBefore(info *types.Info, spawner *ast.BlockStmt, g *ast.GoStmt) map[string]bool {
	adds := make(map[string]bool)
	inspectSkipFuncLits(spawner, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		if isMethodOn(calleeObj(info, call), "WaitGroup", "Add") {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				adds[types.ExprString(sel.X)] = true
			}
		}
		return true
	})
	return adds
}

// findWaitGroupDone returns the rendered receiver of a Done call in the
// goroutine body matching one of the spawner's Adds, or "". For a named
// function's body the receiver spelling differs from the spawner's, so
// any WaitGroup Done counts when no rendering matches but adds exist.
func findWaitGroupDone(info *types.Info, body *ast.BlockStmt, adds map[string]bool) string {
	var any string
	var matched string
	inspectSkipFuncLits(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			// Deferred closures still account: the Done inside runs at exit.
			if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				if m := findWaitGroupDone(info, lit.Body, adds); m != "" {
					if adds[m] {
						matched = m
					} else if any == "" {
						any = m
					}
				}
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isMethodOn(calleeObj(info, call), "WaitGroup", "Done") {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				r := types.ExprString(sel.X)
				if adds[r] {
					matched = r
				} else if any == "" {
					any = r
				}
			}
		}
		return true
	})
	if matched != "" {
		return matched
	}
	if len(adds) > 0 && any != "" {
		return any // named-callee body: receiver spelled differently
	}
	return ""
}

// closesWaitGroupDone matches `<render>.Done()` calls for the path check.
func closesWaitGroupDone(info *types.Info, render string) closer {
	return func(call *ast.CallExpr) bool {
		if !isMethodOn(calleeObj(info, call), "WaitGroup", "Done") {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return ok && types.ExprString(sel.X) == render
	}
}

// receivesCtxDone reports whether body contains a receive from a context
// Done() channel (`<-ctx.Done()` — directly or as a select comm).
func receivesCtxDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op.String() != "<-" {
			return true
		}
		call, ok := ast.Unparen(u.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := calleeObj(info, call).(*types.Func); ok &&
			fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			found = true
		}
		return !found
	})
	return found
}

// bodyChannelSignals collects rendered channels the goroutine body closes
// or sends on.
func bodyChannelSignals(info *types.Info, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					out[types.ExprString(n.Args[0])] = true
				}
			}
		case *ast.SendStmt:
			out[types.ExprString(n.Chan)] = true
		}
		return true
	})
	return out
}

// spawnerReceivesFrom reports whether the spawning function, outside the
// go statement itself, receives from or ranges over one of the handoff
// channels.
func spawnerReceivesFrom(spawner *ast.BlockStmt, g *ast.GoStmt, handoff map[string]bool) bool {
	found := false
	ast.Inspect(spawner, func(n ast.Node) bool {
		if found || n == ast.Node(g) {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && handoff[types.ExprString(n.X)] {
				found = true
			}
		case *ast.RangeStmt:
			if handoff[types.ExprString(n.X)] {
				found = true
			}
		}
		return !found
	})
	return found
}
