package analysis

import (
	"go/ast"
	"go/types"
)

// LaunchCheck enforces the fault-handling contract around kernel
// launches:
//
//   - the *fault.Event second return of Machine.LaunchKernelChecked may
//     never be discarded — an unobserved fault event means an injected
//     failure silently vanished instead of being retried, killed, or
//     routed to a corruptor;
//   - a package that participates in fault injection (it calls
//     SetFaultInjector or LaunchKernelChecked, or wires a
//     fault.Corruptor) may not issue a bare accelerator LaunchKernel,
//     which bypasses the injector entirely. Host-targeted launches are
//     exempt: the injector only perturbs the accelerator.
var LaunchCheck = &Analyzer{
	Name:     "launchcheck",
	Doc:      "forbids discarding LaunchKernelChecked fault events and bare accelerator launches in fault-participating packages",
	Severity: SeverityError,
	Run:      runLaunchCheck,
}

func runLaunchCheck(p *Pass) {
	info := p.Pkg.Info
	participating := packageParticipates(p.Pkg)
	for _, f := range p.Pkg.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			if isMethodOn(obj, "Machine", "LaunchKernelChecked") {
				checkEventUse(p, parents, call)
			}
			if participating && isMethodOn(obj, "Machine", "LaunchKernel") {
				checkBareLaunch(p, call)
			}
			return true
		})
	}
}

// packageParticipates reports whether the package opts into fault
// injection anywhere: once it does, every accelerator launch in it must
// go through the checked path.
func packageParticipates(pkg *Package) bool {
	info := pkg.Info
	for _, f := range pkg.Files {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := calleeObj(info, n)
				if isMethodOn(obj, "Machine", "SetFaultInjector", "LaunchKernelChecked") {
					found = true
				}
			case *ast.Ident:
				if tn, ok := info.Uses[n].(*types.TypeName); ok &&
					tn.Name() == "Corruptor" && tn.Pkg() != nil && tn.Pkg().Name() == "fault" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// checkEventUse flags LaunchKernelChecked calls whose fault.Event result
// is discarded: as a bare expression statement, or assigned to blank.
func checkEventUse(p *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	switch parent := parents[call].(type) {
	case *ast.ExprStmt:
		p.Reportf(call.Pos(), "LaunchKernelChecked result discarded; the *fault.Event must be handled (retry, watchdog, fallback, or corruptor)")
	case *ast.AssignStmt:
		if len(parent.Rhs) != 1 || parent.Rhs[0] != ast.Expr(call) || len(parent.Lhs) != 2 {
			return
		}
		if id, ok := parent.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
			p.Reportf(call.Pos(), "fault.Event from LaunchKernelChecked assigned to _; an injected fault would vanish unhandled")
		}
	}
}

// checkBareLaunch flags LaunchKernel calls in a participating package
// unless the target is provably the host (constant OnHost, value 0).
func checkBareLaunch(p *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if tv, ok := p.Pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil {
		if tv.Value.ExactString() == "0" { // Target is an iota enum; OnHost == 0
			return
		}
	}
	p.Reportf(call.Pos(), "bare LaunchKernel in a fault-participating package bypasses the injector; use LaunchKernelChecked for accelerator launches")
}
