package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit every analyzer
// runs over. Test files (_test.go) are excluded — the invariants hetlint
// enforces protect result-producing production paths, and tests exercise
// those invariants deliberately, including by violating them.
type Package struct {
	Dir   string // absolute directory
	Path  string // import path ("hetbench/internal/sim")
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages using only the standard library:
// go/parser for syntax and go/types for checking, so hetlint adds no
// dependency to go.mod. Imports inside the module (including testdata
// fixture stubs, which `go build` never sees) are resolved by the loader
// itself from the module root; everything else falls back to the source
// importer, which reads the standard library from GOROOT/src.
type Loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module enclosing dir. Packages
// are cached across Load/LoadDir calls, so loading the whole module
// type-checks each package once.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Fset returns the loader's file set (shared by all loaded packages).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleRoot returns the absolute directory of the enclosing module —
// the base SARIF output resolves artifact URIs against, so code-scanning
// annotations land on repository-relative paths regardless of where
// hetlint ran from.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// Import resolves one import path for the type checker: module-internal
// paths load (recursively) through the loader, the rest through the
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test Go files of one directory
// as the package with the given import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFilesIn(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	loaded := &Package{Dir: abs, Path: importPath, Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.cache[importPath] = loaded
	return loaded, nil
}

// Load resolves go-style package patterns relative to root (the module
// root or any directory inside it) and loads each matched package.
// Supported patterns: "./...", "dir/...", plain directory paths, and
// absolute directories.
func (l *Loader) Load(root string, patterns []string) ([]*Package, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	dirs := make(map[string]bool)
	resolve := func(p string) string {
		if filepath.IsAbs(p) {
			return filepath.Clean(p)
		}
		return filepath.Join(absRoot, p)
	}
	for _, pat := range patterns {
		switch {
		case pat == "all" || pat == "./...":
			if err := walkPackageDirs(absRoot, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := resolve(strings.TrimSuffix(pat, "/..."))
			if err := walkPackageDirs(base, dirs); err != nil {
				return nil, err
			}
		default:
			dirs[resolve(pat)] = true
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.modPath
		if rel != "." {
			importPath = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// walkPackageDirs records every directory under base that holds at least
// one non-test Go file, skipping testdata, vendor and hidden trees.
func walkPackageDirs(base string, dirs map[string]bool) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs[path] = true
		}
		return nil
	})
}

// goFilesIn lists the directory's non-test Go files in sorted order.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
