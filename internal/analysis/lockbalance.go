package analysis

import (
	"go/ast"
	"go/types"
)

// LockBalance requires every sync.Mutex / sync.RWMutex acquisition in the
// service and fleet packages (any import-path segment equal to "service"
// or "fleet") to reach its matching release on all control-flow paths out
// of the acquiring function: a deferred unlock, or explicit unlocks
// dominating each return, break-out and fall-through — the same
// structural dominator analysis spanleak uses for spans. A Lock that can
// exit without Unlock is a deadlock the chaos suite only finds when the
// rare path fires; this makes it a compile-time finding.
//
// Lock/Unlock pairs are matched by the receiver's source rendering
// ("s.mu", "c.mu"), RLock pairs with RUnlock, and panic paths are exempt
// (the flow machinery's usual rules).
var LockBalance = &Analyzer{
	Name:     "lockbalance",
	Doc:      "requires Mutex/RWMutex Lock in service/fleet packages to reach Unlock on all control-flow paths",
	Severity: SeverityError,
	Run:      runLockBalance,
}

// lockPairs maps acquisition method to its release.
var lockPairs = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func runLockBalance(p *Pass) {
	if !scopedTo(p.Pkg.Path, "lockbalance", "service", "fleet") {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			if !isMethodOn(obj, "Mutex", "Lock") && !isMethodOn(obj, "RWMutex", "Lock", "RLock") {
				return true
			}
			unlock := lockPairs[obj.Name()]
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			stmt, ok := parents[call].(*ast.ExprStmt)
			if !ok {
				return true // not a statement-level acquisition
			}
			fnBody := enclosingFunc(parents, stmt)
			if fnBody == nil {
				return true
			}
			recv := types.ExprString(sel.X)
			pc := &pathCheck{info: info, closes: closesUnlock(info, recv, unlock)}
			if pc.deferredClose(fnBody) {
				return true
			}
			if pc.leaksFrom(parents, fnBody, stmt) {
				p.Reportf(call.Pos(), "%s.%s() does not reach %s.%s() on every path; defer the unlock or release before each exit",
					recv, obj.Name(), recv, unlock)
			}
			return true
		})
	}
}

// closesUnlock matches `<recv>.<unlock>()` calls on Mutex or RWMutex.
func closesUnlock(info *types.Info, recv, unlock string) closer {
	return func(call *ast.CallExpr) bool {
		obj := calleeObj(info, call)
		if !isMethodOn(obj, "Mutex", unlock) && !isMethodOn(obj, "RWMutex", unlock) {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return ok && types.ExprString(sel.X) == recv
	}
}
