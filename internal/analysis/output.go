package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// This file renders a finding list in the driver's three output formats:
//
//   - text:  the go vet-style "file:line: [analyzer] message" lines CI greps;
//   - json:  a flat array of finding objects for tooling;
//   - sarif: SARIF 2.1.0 for code-scanning upload, one run with one rule
//     per analyzer and one result per finding.
//
// All three write findings in the order given, which RunAnalyzersParallel
// guarantees is position-sorted and bit-identical at any worker count.

// WriteText renders findings one per line, go vet-style.
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the -format json element shape.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as a flat JSON array (never null: an empty
// run emits []).
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Severity: severityOrDefault(f.Severity),
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 minimal document shapes.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log: the analyzers (plus
// the directive pseudo-rule) become the driver's rules, severities map
// onto SARIF levels, and file paths are emitted slash-separated as given
// (the caller makes them repository-relative for code-scanning upload).
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               DirectiveName,
		ShortDescription: sarifMessage{Text: "problems with //hetlint:allow suppression directives"},
	})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   severityOrDefault(f.Severity),
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "hetlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// severityOrDefault maps a finding severity onto the SARIF level
// vocabulary, defaulting to warning.
func severityOrDefault(s string) string {
	if s == "" {
		return SeverityWarning
	}
	return s
}
