package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow enforces the seed-derivation discipline in the result-producing
// packages (any import-path segment equal to sim, fleet, fault, workload or
// sched): every seed handed to a PRNG constructor (rand.NewSource,
// rand/v2's NewPCG, NewChaCha8) and every parent handed to fault.SubSeed
// must flow from a recognized seed source —
//
//   - a fault.SubSeed derivation,
//   - a seed-named field, constant or package variable (cfg.Seed,
//     spec.Seed, defaultSeed, …), or
//   - a function parameter, in which case the obligation moves to every
//     in-package caller of that parameter (the interprocedural step: a
//     helper taking `seed int64` is innocent, its caller passing
//     time.Now().UnixNano() is not).
//
// Wall-clock reads, global math/rand draws, PRNG draws and ad-hoc literals
// are rejected: a literal seed silently pins a stream the harness believes
// it controls, and a clock seed breaks replay outright. Parameters of
// exported functions whose callers live outside the package are trusted at
// the boundary, as are function-literal parameters.
var SeedFlow = &Analyzer{
	Name:     "seedflow",
	Doc:      "requires PRNG seeds and fault.SubSeed parents in result packages to flow from SubSeed, seed-named sources, or seed parameters (checked interprocedurally)",
	Severity: SeverityError,
	Run:      runSeedFlow,
}

// Seed taint ranks. Dirty dominates literal and blessed; blessed absorbs
// literal (seed + stream-offset literal arithmetic is the SubSeed idiom's
// moral equivalent and stays blessed).
const (
	seedBlessed = iota // flows from a recognized seed source
	seedLiteral        // an ad-hoc constant
	seedDirty          // wall clock, global rand, or untraceable
)

// seedClass is the classification of one expression: its rank, a
// diagnostic phrase for the tainting source, and — for blessed
// expressions — the parameters the blessing rests on, which become
// call-site obligations.
type seedClass struct {
	rank   int
	why    string
	params []types.Object
}

// seedFn is the per-function-declaration dataflow context.
type seedFn struct {
	decl    *ast.FuncDecl
	params  map[types.Object]bool       // declared parameters (incl. receiver and nested literals')
	assigns map[types.Object][]ast.Expr // local object -> every assigned RHS
}

// seedParamRef locates a top-level declaration's parameter for call-site
// propagation.
type seedParamRef struct {
	owner *types.Func
	index int
}

// seedCall is one call expression with its enclosing declaration.
type seedCall struct {
	call *ast.CallExpr
	fn   *seedFn
}

type seedScan struct {
	pass     *Pass
	info     *types.Info
	calls    []seedCall // every call in the package, file order
	paramAt  map[types.Object]seedParamRef
	demanded map[types.Object]bool
	queue    []types.Object
}

func runSeedFlow(p *Pass) {
	if !scopedTo(p.Pkg.Path, "seedflow", "sim", "fleet", "fault", "workload", "sched") {
		return
	}
	s := &seedScan{
		pass:     p,
		info:     p.Pkg.Info,
		paramAt:  make(map[types.Object]seedParamRef),
		demanded: make(map[types.Object]bool),
	}
	s.collect()
	s.checkDemandSites()
	s.propagate()
}

// collect builds the per-declaration dataflow contexts and the package's
// call list in deterministic file order.
func (s *seedScan) collect() {
	for _, f := range s.pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sf := &seedFn{
				decl:    fd,
				params:  make(map[types.Object]bool),
				assigns: make(map[types.Object][]ast.Expr),
			}
			s.addFields(sf, fd.Recv)
			s.addFields(sf, fd.Type.Params)
			if fnObj, ok := s.info.Defs[fd.Name].(*types.Func); ok {
				s.indexParams(fnObj, fd.Type.Params)
			}
			record := func(lhs ast.Expr, rhs ast.Expr) {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					return
				}
				obj := s.info.Defs[id]
				if obj == nil {
					obj = s.info.Uses[id]
				}
				if obj != nil {
					sf.assigns[obj] = append(sf.assigns[obj], rhs)
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					// Literal parameters are trusted at the boundary: the
					// values flowing in are classified where the literal
					// is called or handed off.
					s.addFields(sf, n.Type.Params)
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i, lhs := range n.Lhs {
							record(lhs, n.Rhs[i])
						}
					} else {
						for _, lhs := range n.Lhs {
							for _, rhs := range n.Rhs {
								record(lhs, rhs)
							}
						}
					}
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if len(n.Values) == len(n.Names) {
							record(name, n.Values[i])
						} else {
							for _, v := range n.Values {
								record(name, v)
							}
						}
					}
				case *ast.CallExpr:
					s.calls = append(s.calls, seedCall{n, sf})
				}
				return true
			})
		}
	}
}

func (s *seedScan) addFields(sf *seedFn, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		for _, name := range f.Names {
			if obj := s.info.Defs[name]; obj != nil {
				sf.params[obj] = true
			}
		}
	}
}

// indexParams records the positional index of each named top-level
// parameter, so a blessing resting on it can be re-checked at call sites.
func (s *seedScan) indexParams(owner *types.Func, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	i := 0
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, name := range f.Names {
			if obj := s.info.Defs[name]; obj != nil {
				s.paramAt[obj] = seedParamRef{owner: owner, index: i}
			}
			i++
		}
	}
}

// seedCtorArgIndexes returns the seed-argument positions of a PRNG
// constructor call, or nil.
func seedCtorArgIndexes(obj types.Object) []int {
	switch {
	case isPkgFunc(obj, "math/rand", "NewSource"):
		return []int{0}
	case isPkgFunc(obj, "math/rand/v2", "NewPCG"):
		return []int{0, 1}
	case isPkgFunc(obj, "math/rand/v2", "NewChaCha8"):
		return []int{0}
	}
	return nil
}

// isFuncNamed matches a package-level function by package *name* rather
// than import path, so the testdata fault stub stands in for the real
// internal/fault exactly like isMethodOn's name matching does.
func isFuncNamed(obj types.Object, pkgName, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != pkgName {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return fn.Name() == name
}

// seedish reports whether a name marks a seed by convention.
func seedish(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// checkDemandSites classifies every direct seed consumer: PRNG
// constructor seed arguments and fault.SubSeed parent arguments.
func (s *seedScan) checkDemandSites() {
	for _, sc := range s.calls {
		obj := calleeObj(s.info, sc.call)
		if idxs := seedCtorArgIndexes(obj); idxs != nil {
			for _, i := range idxs {
				if i < len(sc.call.Args) {
					s.demandAt(sc.call.Args[i], sc.fn, fmt.Sprintf("%s seed", obj.Name()))
				}
			}
			continue
		}
		if isFuncNamed(obj, "fault", "SubSeed") && len(sc.call.Args) >= 1 {
			s.demandAt(sc.call.Args[0], sc.fn, "fault.SubSeed parent")
		}
	}
}

// demandAt classifies one seed-position expression and reports or
// propagates accordingly.
func (s *seedScan) demandAt(e ast.Expr, fn *seedFn, what string) {
	c := s.classify(e, fn, make(map[types.Object]bool))
	switch c.rank {
	case seedDirty:
		s.pass.Reportf(e.Pos(), "%s derives from %s; seeds must flow from fault.SubSeed or an explicit seed parameter", what, c.why)
	case seedLiteral:
		why := c.why
		if why == "" {
			why = "an ad-hoc literal"
		}
		s.pass.Reportf(e.Pos(), "%s is %s; derive it with fault.SubSeed(parent, stream) or accept a seed parameter", what, why)
	default:
		for _, p := range c.params {
			s.addDemand(p)
		}
	}
}

// addDemand queues a parameter whose value must itself be a flowed seed.
func (s *seedScan) addDemand(obj types.Object) {
	if s.demanded[obj] {
		return
	}
	s.demanded[obj] = true
	s.queue = append(s.queue, obj)
}

// propagate is the interprocedural fixpoint: for every demanded
// parameter, each in-package call site's corresponding argument is
// classified like a direct seed, possibly demanding further parameters.
func (s *seedScan) propagate() {
	for len(s.queue) > 0 {
		obj := s.queue[0]
		s.queue = s.queue[1:]
		ref, ok := s.paramAt[obj]
		if !ok {
			continue // function-literal parameter: trusted boundary
		}
		for _, sc := range s.calls {
			if calleeObj(s.info, sc.call) != types.Object(ref.owner) || ref.index >= len(sc.call.Args) {
				continue
			}
			s.demandAt(sc.call.Args[ref.index], sc.fn,
				fmt.Sprintf("seed parameter %q of %s", obj.Name(), ref.owner.Name()))
		}
	}
}

// classify ranks one expression's fitness as a seed.
func (s *seedScan) classify(e ast.Expr, fn *seedFn, visiting map[types.Object]bool) seedClass {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return seedClass{rank: seedLiteral, why: fmt.Sprintf("the ad-hoc literal %s", e.Value)}
	case *ast.UnaryExpr:
		return s.classify(e.X, fn, visiting)
	case *ast.BinaryExpr:
		return combineSeed(s.classify(e.X, fn, visiting), s.classify(e.Y, fn, visiting))
	case *ast.CallExpr:
		return s.classifyCall(e, fn, visiting)
	case *ast.Ident:
		return s.classifyIdent(e, fn, visiting)
	case *ast.SelectorExpr:
		return s.classifySelector(e)
	case *ast.IndexExpr:
		return s.classify(e.X, fn, visiting)
	}
	return seedClass{rank: seedDirty, why: "an expression hetlint cannot trace to a seed source"}
}

func (s *seedScan) classifyIdent(e *ast.Ident, fn *seedFn, visiting map[types.Object]bool) seedClass {
	obj := s.info.Uses[e]
	if obj == nil {
		obj = s.info.Defs[e]
	}
	if obj == nil {
		return seedClass{rank: seedDirty, why: fmt.Sprintf("the untraceable identifier %s", e.Name)}
	}
	switch o := obj.(type) {
	case *types.Const:
		if seedish(o.Name()) {
			return seedClass{rank: seedBlessed}
		}
		return seedClass{rank: seedLiteral, why: fmt.Sprintf("the ad-hoc constant %s", o.Name())}
	case *types.Var:
		if fn.params[o] {
			return seedClass{rank: seedBlessed, params: []types.Object{o}}
		}
		if seedish(o.Name()) && o.Parent() == s.pass.Pkg.Pkg.Scope() {
			return seedClass{rank: seedBlessed}
		}
		rhs := fn.assigns[o]
		if len(rhs) == 0 {
			return seedClass{rank: seedDirty, why: fmt.Sprintf("%s, which hetlint cannot trace to a seed source", o.Name())}
		}
		if visiting[o] {
			// Self-referential assignment (seed = seed + 1): neutral, the
			// other assignments decide.
			return seedClass{rank: seedLiteral}
		}
		visiting[o] = true
		c := s.classify(rhs[0], fn, visiting)
		for _, r := range rhs[1:] {
			c = combineSeed(c, s.classify(r, fn, visiting))
		}
		delete(visiting, o)
		return c
	}
	return seedClass{rank: seedDirty, why: fmt.Sprintf("%s, which is not a value", e.Name)}
}

func (s *seedScan) classifySelector(e *ast.SelectorExpr) seedClass {
	obj := s.info.Uses[e.Sel]
	if c, ok := obj.(*types.Const); ok {
		if seedish(c.Name()) {
			return seedClass{rank: seedBlessed}
		}
		return seedClass{rank: seedLiteral, why: fmt.Sprintf("the ad-hoc constant %s", c.Name())}
	}
	if seedish(e.Sel.Name) {
		return seedClass{rank: seedBlessed} // cfg.Seed, spec.Seed, …
	}
	return seedClass{rank: seedDirty, why: fmt.Sprintf("%s, which is not a seed-named source", types.ExprString(e))}
}

func (s *seedScan) classifyCall(call *ast.CallExpr, fn *seedFn, visiting map[types.Object]bool) seedClass {
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return s.classify(call.Args[0], fn, visiting) // conversion: int64(x)
	}
	obj := calleeObj(s.info, call)
	if obj == nil {
		return seedClass{rank: seedDirty, why: "an untraceable call"}
	}
	if isPkgFunc(obj, "time", "Now", "Since") {
		return seedClass{rank: seedDirty, why: fmt.Sprintf("the wall clock (time.%s)", obj.Name())}
	}
	if isPkgFunc(obj, "math/rand", globalRandFuncs...) || isPkgFunc(obj, "math/rand/v2", globalRandFuncs...) {
		return seedClass{rank: seedDirty, why: fmt.Sprintf("the global math/rand source (rand.%s)", obj.Name())}
	}
	if isFuncNamed(obj, "fault", "SubSeed") {
		// The parent argument is checked at the SubSeed call itself
		// (checkDemandSites), so the derived value is clean here.
		return seedClass{rank: seedBlessed}
	}
	if fnT, ok := obj.(*types.Func); ok {
		if sig, ok := fnT.Type().(*types.Signature); ok && sig.Recv() != nil {
			switch namedTypeName(sig.Recv().Type()) {
			case "Time":
				if c := s.classifyTimeRecv(call, fn, visiting); c.rank == seedDirty {
					return c
				}
				return seedClass{rank: seedDirty, why: "a time.Time value"}
			case "Rand", "PCG", "ChaCha8", "Source":
				return seedClass{rank: seedDirty, why: "a PRNG draw; derive child seeds with fault.SubSeed, not by drawing from a generator"}
			}
		}
	}
	if seedish(obj.Name()) {
		return seedClass{rank: seedBlessed} // a seed-derivation helper; its own consumers are checked where they sit
	}
	return seedClass{rank: seedDirty, why: fmt.Sprintf("the result of %s, which is not a recognized seed derivation", obj.Name())}
}

// classifyTimeRecv ranks the receiver of a time.Time method call, so
// time.Now().UnixNano() names the wall clock rather than the generic
// "a time.Time value".
func (s *seedScan) classifyTimeRecv(call *ast.CallExpr, fn *seedFn, visiting map[types.Object]bool) seedClass {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return s.classify(sel.X, fn, visiting)
	}
	return seedClass{rank: seedBlessed}
}

// combineSeed folds two operand classifications: dirty dominates,
// blessed absorbs literal (blessings' parameter obligations merge).
func combineSeed(a, b seedClass) seedClass {
	if a.rank == seedDirty {
		return a
	}
	if b.rank == seedDirty {
		return b
	}
	if a.rank == seedBlessed && b.rank == seedBlessed {
		return seedClass{rank: seedBlessed, params: append(append([]types.Object{}, a.params...), b.params...)}
	}
	if a.rank == seedBlessed {
		return a
	}
	if b.rank == seedBlessed {
		return b
	}
	if a.why == "" {
		return b
	}
	return a
}
