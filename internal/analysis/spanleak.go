package analysis

import (
	"go/ast"
	"go/types"
)

// SpanLeak enforces the trace layer's balance invariant: every
// sim.ActiveSpan opened by Machine.StartSpan/StartRun/StartIteration must
// reach End on all control-flow paths, either via defer (covers every
// exit) or via explicit End calls that structurally dominate each
// return. A span that never ends is silently dropped by the tracer —
// the hierarchy under it reparents wrongly and the Chrome export lies.
//
// The check is a block-structured dominator approximation over the AST:
// a discarded result is always a leak; an assigned span must End before
// the enclosing function can return or fall off its end, and before a
// loop iteration that opened it can wrap around. Paths that panic are
// exempt (the trace is moot on a crash). Spans that escape the local
// scope (returned, stored, passed along) are the caller's responsibility
// and are skipped.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc:  "checks StartSpan/StartRun/StartIteration results reach End on all control-flow paths",
	Run:  runSpanLeak,
}

var spanStartMethods = []string{"StartSpan", "StartRun", "StartIteration"}

func runSpanLeak(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			if !isMethodOn(obj, "Machine", spanStartMethods...) {
				return true
			}
			if tv, ok := info.Types[call]; !ok || namedTypeName(tv.Type) != "ActiveSpan" {
				return true
			}
			checkSpanUse(p, parents, call, obj.Name())
			return true
		})
	}
}

// checkSpanUse classifies the context of one Start* call and runs the
// path check for locally-assigned spans.
func checkSpanUse(p *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr, method string) {
	switch parent := parents[call].(type) {
	case *ast.ExprStmt:
		p.Reportf(call.Pos(), "result of %s discarded; the span can never End", method)
	case *ast.AssignStmt:
		if len(parent.Lhs) != 1 || len(parent.Rhs) != 1 || parent.Rhs[0] != ast.Expr(call) {
			return
		}
		id, ok := parent.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		if id.Name == "_" {
			p.Reportf(call.Pos(), "result of %s discarded; the span can never End", method)
			return
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		fnBody := enclosingFunc(parents, parent)
		if fnBody == nil {
			return
		}
		if hasDeferredEnd(p.Pkg.Info, fnBody, obj) {
			return
		}
		if leaks(p.Pkg.Info, parents, fnBody, parent, obj) {
			p.Reportf(call.Pos(), "span %s from %s is not closed on every path; defer %s.End() or End before each return", id.Name, method, id.Name)
		}
	}
}

// hasDeferredEnd reports whether fnBody defers obj.End(), directly or
// inside a deferred closure. Nested function literals other than the
// deferred one are skipped: their defers run at closure exit, not
// function exit.
func hasDeferredEnd(info *types.Info, fnBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	inspectSkipFuncLits(fnBody, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isEndCall(info, d.Call, obj) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isEndCall(info, c, obj) {
					found = true
					return false
				}
				return true
			})
		}
		return !found
	})
	return found
}

// isEndCall reports whether call is obj.End(...).
func isEndCall(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// flowResult summarizes what the open-span paths through a region of the
// function can do.
type flowResult struct {
	falls bool // a path reaches the region's end with the span open
	brk   bool // a path breaks from the nearest loop/switch, span open
	cont  bool // a path continues the nearest loop, span open
	bad   bool // a path leaks: exits the function, or wraps the loop
	//            iteration that opened the span, without End
}

// leaks runs the structural dominator check. It descends from the
// function body along the chain of nodes enclosing the assignment, then
// tracks the open-span paths forward to every exit.
func leaks(info *types.Info, parents map[ast.Node]ast.Node, fnBody *ast.BlockStmt, assign ast.Stmt, obj types.Object) bool {
	chain := make(map[ast.Node]bool)
	for n := ast.Node(assign); n != nil && n != ast.Node(fnBody); n = parents[n] {
		chain[n] = true
	}
	r := analyzeFrom(info, fnBody.List, chain, assign, obj)
	// Any open path still live at the function body's end — falling off
	// the end (an implicit return) or a stray break/continue — is a leak.
	return r.bad || r.falls || r.brk || r.cont
}

// analyzeFrom analyzes a statement list that contains (a node on the
// chain to) the assignment: the span opens partway through the list, and
// the suffix after it must close every open path.
func analyzeFrom(info *types.Info, stmts []ast.Stmt, chain map[ast.Node]bool, assign ast.Stmt, obj types.Object) flowResult {
	res := flowResult{}
	started, open := false, false
	for _, s := range stmts {
		if !started {
			if chain[s] || ast.Node(s) == ast.Node(assign) {
				started = true
				r := analyzeEntry(info, s, chain, assign, obj)
				res.bad = res.bad || r.bad
				res.brk = res.brk || r.brk
				res.cont = res.cont || r.cont
				open = r.falls
			}
			continue
		}
		if !open {
			break
		}
		r := analyzeStmt(info, s, obj)
		res.bad = res.bad || r.bad
		res.brk = res.brk || r.brk
		res.cont = res.cont || r.cont
		open = r.falls
	}
	res.falls = started && open
	return res
}

// analyzeEntry analyzes the chain statement through which control reaches
// the assignment, returning the open-span paths that emerge from it.
func analyzeEntry(info *types.Info, stmt ast.Stmt, chain map[ast.Node]bool, assign ast.Stmt, obj types.Object) flowResult {
	if ast.Node(stmt) == ast.Node(assign) {
		return flowResult{falls: true} // the span has just opened
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return analyzeFrom(info, s.List, chain, assign, obj)
	case *ast.LabeledStmt:
		return analyzeEntry(info, s.Stmt, chain, assign, obj)
	case *ast.IfStmt:
		if ast.Node(s.Init) == ast.Node(assign) {
			// if sp := m.StartSpan(...); cond { … }: open in both branches.
			t := analyzeList(info, s.Body.List, obj)
			e := flowResult{falls: true}
			if s.Else != nil {
				e = analyzeStmt(info, s.Else, obj)
			}
			return mergeBranches(t, e)
		}
		if chain[s.Body] {
			return analyzeFrom(info, s.Body.List, chain, assign, obj)
		}
		if s.Else != nil && chain[s.Else] {
			return analyzeEntry(info, s.Else, chain, assign, obj)
		}
	case *ast.ForStmt:
		if chain[s.Body] {
			return loopEntry(analyzeFrom(info, s.Body.List, chain, assign, obj))
		}
	case *ast.RangeStmt:
		if chain[s.Body] {
			return loopEntry(analyzeFrom(info, s.Body.List, chain, assign, obj))
		}
	case *ast.SwitchStmt:
		return clauseEntry(info, s.Body, chain, assign, obj)
	case *ast.TypeSwitchStmt:
		return clauseEntry(info, s.Body, chain, assign, obj)
	case *ast.SelectStmt:
		return clauseEntry(info, s.Body, chain, assign, obj)
	}
	// Unhandled shape (assignment inside an expression statement's
	// closure never reaches here; enclosingFunc scopes to the literal).
	// Fail open on the entry statement and let the suffix check decide.
	return flowResult{falls: true}
}

// loopEntry folds a loop body's outcome when the span was opened inside
// that body: wrapping the iteration (falling off the body or continue)
// leaks the span opened this iteration; break carries it out to the
// statements after the loop.
func loopEntry(body flowResult) flowResult {
	return flowResult{
		falls: body.brk,
		bad:   body.bad || body.falls || body.cont,
	}
}

// clauseEntry descends into the switch/select clause on the chain; a
// break inside the clause exits the construct, i.e. falls onward.
func clauseEntry(info *types.Info, body *ast.BlockStmt, chain map[ast.Node]bool, assign ast.Stmt, obj types.Object) flowResult {
	for _, clause := range body.List {
		if !chain[clause] {
			continue
		}
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		r := analyzeFrom(info, stmts, chain, assign, obj)
		return flowResult{falls: r.falls || r.brk, cont: r.cont, bad: r.bad}
	}
	return flowResult{falls: true}
}

// analyzeList walks one statement list with the span open on entry,
// tracking whether an open-span path survives each statement.
func analyzeList(info *types.Info, stmts []ast.Stmt, obj types.Object) flowResult {
	res := flowResult{}
	open := true
	for _, s := range stmts {
		if !open {
			break
		}
		r := analyzeStmt(info, s, obj)
		res.bad = res.bad || r.bad
		res.brk = res.brk || r.brk
		res.cont = res.cont || r.cont
		open = r.falls
	}
	res.falls = open
	return res
}

// analyzeStmt analyzes one statement executed with the span open. falls
// means an open-span path continues to the next statement.
func analyzeStmt(info *types.Info, stmt ast.Stmt, obj types.Object) flowResult {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isEndCall(info, call, obj) {
				return flowResult{} // span closed; path is now fine
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return flowResult{} // crash path; trace correctness is moot
				}
			}
		}
		return flowResult{falls: true}
	case *ast.DeferStmt:
		if isEndCall(info, s.Call, obj) {
			return flowResult{} // deferred End covers every later exit
		}
		return flowResult{falls: true}
	case *ast.ReturnStmt:
		return flowResult{bad: true}
	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			return flowResult{brk: true}
		case "continue":
			return flowResult{cont: true}
		default: // goto, fallthrough: fail closed rather than model them
			return flowResult{bad: true}
		}
	case *ast.BlockStmt:
		return analyzeList(info, s.List, obj)
	case *ast.LabeledStmt:
		return analyzeStmt(info, s.Stmt, obj)
	case *ast.IfStmt:
		t := analyzeList(info, s.Body.List, obj)
		e := flowResult{falls: true} // no else: the condition may skip the body
		if s.Else != nil {
			e = analyzeStmt(info, s.Else, obj)
		}
		return mergeBranches(t, e)
	case *ast.ForStmt:
		return loopOver(analyzeList(info, s.Body.List, obj))
	case *ast.RangeStmt:
		return loopOver(analyzeList(info, s.Body.List, obj))
	case *ast.SwitchStmt:
		return switchOver(info, s.Body, obj, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		return switchOver(info, s.Body, obj, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		// Every executed path runs exactly one clause; with no default
		// the select blocks until one fires.
		return switchOver(info, s.Body, obj, true)
	}
	return flowResult{falls: true}
}

// mergeBranches combines two alternative branch outcomes.
func mergeBranches(a, b flowResult) flowResult {
	return flowResult{
		falls: a.falls || b.falls,
		brk:   a.brk || b.brk,
		cont:  a.cont || b.cont,
		bad:   a.bad || b.bad,
	}
}

// loopOver folds a loop body's outcome when the span predates the loop:
// the body may run zero times, and break/continue stay within the loop,
// so the span stays open (falls) unless a path inside leaks outright.
// An End inside the body cannot close the zero-iteration path.
func loopOver(body flowResult) flowResult {
	return flowResult{falls: true, bad: body.bad}
}

// switchOver folds the clause outcomes of a switch/select body entered
// with the span open; break inside a clause exits the construct.
func switchOver(info *types.Info, body *ast.BlockStmt, obj types.Object, exhaustive bool) flowResult {
	res := flowResult{falls: !exhaustive}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		r := analyzeList(info, stmts, obj)
		res.falls = res.falls || r.falls || r.brk
		res.cont = res.cont || r.cont
		res.bad = res.bad || r.bad
	}
	return res
}

// hasDefaultClause reports whether a switch body has a default case.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}
