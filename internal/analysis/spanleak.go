package analysis

import (
	"go/ast"
	"go/types"
)

// SpanLeak enforces the trace layer's balance invariant: every
// sim.ActiveSpan opened by Machine.StartSpan/StartRun/StartIteration must
// reach End on all control-flow paths, either via defer (covers every
// exit) or via explicit End calls that structurally dominate each
// return. A span that never ends is silently dropped by the tracer —
// the hierarchy under it reparents wrongly and the Chrome export lies.
//
// The path check is the shared block-structured dominator approximation
// in flow.go: a discarded result is always a leak; an assigned span must
// End before the enclosing function can return or fall off its end, and
// before a loop iteration that opened it can wrap around. Paths that
// panic are exempt (the trace is moot on a crash). Spans that escape the
// local scope (returned, stored, passed along) are the caller's
// responsibility and are skipped.
var SpanLeak = &Analyzer{
	Name:     "spanleak",
	Doc:      "checks StartSpan/StartRun/StartIteration results reach End on all control-flow paths",
	Severity: SeverityError,
	Run:      runSpanLeak,
}

var spanStartMethods = []string{"StartSpan", "StartRun", "StartIteration"}

func runSpanLeak(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			if !isMethodOn(obj, "Machine", spanStartMethods...) {
				return true
			}
			if tv, ok := info.Types[call]; !ok || namedTypeName(tv.Type) != "ActiveSpan" {
				return true
			}
			checkSpanUse(p, parents, call, obj.Name())
			return true
		})
	}
}

// checkSpanUse classifies the context of one Start* call and runs the
// path check for locally-assigned spans.
func checkSpanUse(p *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr, method string) {
	switch parent := parents[call].(type) {
	case *ast.ExprStmt:
		p.Reportf(call.Pos(), "result of %s discarded; the span can never End", method)
	case *ast.AssignStmt:
		if len(parent.Lhs) != 1 || len(parent.Rhs) != 1 || parent.Rhs[0] != ast.Expr(call) {
			return
		}
		id, ok := parent.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		if id.Name == "_" {
			p.Reportf(call.Pos(), "result of %s discarded; the span can never End", method)
			return
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		fnBody := enclosingFunc(parents, parent)
		if fnBody == nil {
			return
		}
		pc := &pathCheck{info: p.Pkg.Info, closes: closesMethodOn(p.Pkg.Info, obj, "End")}
		if pc.deferredClose(fnBody) {
			return
		}
		if pc.leaksFrom(parents, fnBody, parent) {
			p.Reportf(call.Pos(), "span %s from %s is not closed on every path; defer %s.End() or End before each return", id.Name, method, id.Name)
		}
	}
}

// closesMethodOn builds a closer matching obj.<method>(...), where obj is
// the specific local object holding the resource.
func closesMethodOn(info *types.Info, obj types.Object, method string) closer {
	return func(call *ast.CallExpr) bool {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
}
