// Package counterkey is the fixture for hetlint's counter-naming
// analyzer: registry keys must be lowercase dotted constants inside the
// established namespaces; the one dynamic form is constant-prefix+suffix.
package counterkey

import (
	"fmt"

	"hetbench/internal/analysis/testdata/src/fault"
	"hetbench/internal/analysis/testdata/src/trace"
)

const ctrSchedSteal = "sched.steal-count"

func good(r *trace.Registry, kind fault.Kind) {
	r.Add(trace.CtrKernelNs, 1)
	r.Add(ctrSchedSteal, 1)
	r.SetGauge("resilience.overhead", 0.5)
	r.Add(trace.CtrFaultPrefix+string(kind), 1)
}

func bad(r *trace.Registry, name string, i int) {
	r.Add(fmt.Sprintf("kernel.%d.ns", i), 1) // want `counter name built with fmt.Sprintf on the hot path`
	r.Add("Kernel.NS", 1)                    // want `counter name "Kernel.NS" is not lowercase dotted`
	r.Add("widget.count", 1)                 // want `counter name "widget.count" is outside the established namespaces`
	r.Add(name, 1)                           // want `counter name is not a string constant`
	r.Add("widget."+name, 1)                 // want `counter prefix "widget." is outside the established namespaces`
	r.Add("kernel"+name, 1)                  // want `counter prefix "kernel" is not a lowercase dotted namespace prefix`
}

// allowedLegacy carries a suppression: no finding, directive used.
func allowedLegacy(r *trace.Registry) {
	r.Add("legacy_name", 1) //hetlint:allow counterkey fixture exercises the suppression path
}
