// Package counterkeydag is the fixture for the sched.dag.* and
// workload.* registry names: the DAG planner's and the workload
// interpreter's counters must pass the counterkey analyzer like any
// established namespace, and near-miss spellings must still be rejected.
package counterkeydag

import (
	"hetbench/internal/analysis/testdata/src/trace"
)

// Canonical names, as in the real registry.
const (
	ctrDagLaunches        = "sched.dag.launches"
	ctrDagRebooked        = "sched.dag.rebooked"
	ctrWorkloadRuns       = "workload.runs"
	ctrWorkloadMovedBytes = "workload.moved.bytes"
	histDagKernelNs       = "hist.sched.dag.kernel.ns"
)

func good(r *trace.Registry, spec string) {
	r.Add(ctrDagLaunches, 1)
	r.Add(ctrDagRebooked, 2)
	r.Add(ctrWorkloadRuns, 1)
	r.Add(ctrWorkloadMovedBytes, 1<<20)
	r.Add("sched.dag.idle.ns", 1e3)
	r.Add("workload.kernels", 5)
	r.Add("workload."+spec, 1)
	r.Observe(histDagKernelNs, 1e3)
	r.Observe("hist.workload."+spec, 2e3)
}

func bad(r *trace.Registry, name string) {
	r.Add("dag.launches", 1)          // want `counter name "dag.launches" is outside the established namespaces`
	r.Add("Workload.Runs", 1)         // want `counter name "Workload.Runs" is not lowercase dotted`
	r.Add("workloads."+name, 1)       // want `counter prefix "workloads." is outside the established namespaces`
	r.Observe("workload.stage.ns", 1) // want `histogram name "workload.stage.ns" must start with "hist."`
	r.Observe("hist.Sched.Dag", 1)    // want `histogram name "hist.Sched.Dag" is not lowercase dotted`
	r.Observe("sched.dag."+name, 1)   // want `histogram prefix "sched.dag." must start with "hist."`
}
