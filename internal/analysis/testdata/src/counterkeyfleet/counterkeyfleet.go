// Package counterkeyfleet is the fixture for the fleet.* registry
// namespace: the cluster simulator's counters and hist.fleet.*
// histograms must pass the counterkey analyzer like any established
// namespace, and near-miss spellings must still be rejected.
package counterkeyfleet

import (
	"hetbench/internal/analysis/testdata/src/trace"
)

// Canonical fleet names, as in the real registry.
const (
	ctrFleetSubmitted = "fleet.jobs.submitted"
	ctrFleetBusyNs    = "fleet.node.busy.ns"
	histFleetQueueNs  = "hist.fleet.queue.ns"
	histFleetJobNs    = "hist.fleet.job.ns"
)

func good(r *trace.Registry, node string) {
	r.Add(ctrFleetSubmitted, 1)
	r.Add(ctrFleetBusyNs, 1e6)
	r.Add("fleet.jobs.migrated", 1)
	r.SetGauge("fleet.node.losses", 2)
	r.Add("fleet."+node, 1)
	r.Observe(histFleetQueueNs, 1e3)
	r.Observe(histFleetJobNs, 2e3)
	r.Observe("hist.fleet."+node, 3e3)
}

func bad(r *trace.Registry, name string, i int) {
	r.Add("flotilla.jobs", 1)        // want `counter name "flotilla.jobs" is outside the established namespaces`
	r.Add("Fleet.Jobs", 1)           // want `counter name "Fleet.Jobs" is not lowercase dotted`
	r.Add("fleetwide."+name, 1)      // want `counter prefix "fleetwide." is outside the established namespaces`
	r.Observe("fleet.queue.ns", 1)   // want `histogram name "fleet.queue.ns" must start with "hist."`
	r.Observe("hist.Fleet.Queue", 1) // want `histogram name "hist.Fleet.Queue" is not lowercase dotted`
	r.Observe("fleet."+name, 1)      // want `histogram prefix "fleet." must start with "hist."`
}
