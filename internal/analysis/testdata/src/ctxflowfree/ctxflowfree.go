// Package ctxflowfree is the ctxflow analyzer's out-of-scope fixture:
// its import path has no "service" segment, so root contexts here —
// normal for CLIs, tests and batch tools — produce no findings.
package ctxflowfree

import "context"

func batchMain() context.Context {
	return context.Background()
}

func scratch() context.Context {
	return context.TODO()
}
