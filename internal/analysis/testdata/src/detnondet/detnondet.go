// Package detnondet is the fixture for hetlint's determinism analyzer:
// wall-clock reads, global-PRNG draws, and map-iteration-ordered output.
package detnondet

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `\[detnondet\] time.Now reads the wall clock`
	return time.Since(start) // want `time.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(10) // want `rand.Intn draws from the global math/rand source`
}

// seededRand is the sanctioned form: constructors are fine, and methods
// on an owned *rand.Rand are not the global source.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func printMap(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside range over map writes in nondeterministic order`
	}
}

func buildFromMap(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `Builder.WriteString inside range over map writes in nondeterministic order`
	}
	return b.String()
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys in map-iteration order is nondeterministic`
	}
	return keys
}

// sortedKeys is the collect-then-sort idiom the append rule points at.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// helperSortedKeys sorts through a local sort* wrapper, as the repo's
// sortInt32-style helpers do.
func helperSortedKeys(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	return keys
}

func sortInts(v []int) { sort.Ints(v) }

// allowedWallClock carries a suppression: no finding, and the directive
// counts as used.
func allowedWallClock() time.Time {
	return time.Now() //hetlint:allow detnondet fixture exercises the suppression path
}
