// Package directives exercises hetlint's reporting about the
// //hetlint:allow directives themselves: every problem with a
// suppression is a finding of the "directive" pseudo-analyzer, so a
// suppression can never rot silently. The `// want+` markers anchor each
// expectation to the directive comment on the following line.
package directives

import "time"

// allowedClock is the well-formed, used directive: it suppresses the
// detnondet finding and draws no report of its own.
func allowedClock() time.Time {
	return time.Now() //hetlint:allow detnondet fixture exercises a valid suppression
}

func clean() {}

// want+ `\[directive\] unused //hetlint:allow counterkey directive: no counterkey finding`
//hetlint:allow counterkey nothing nearby is flagged

// want+ `\[directive\] //hetlint:allow names unknown analyzer "detnodnet"`
//hetlint:allow detnodnet suppress the typo analyzer

// want+ `\[directive\] //hetlint:allow spanleak has no reason`
//hetlint:allow spanleak

// want+ `\[directive\] unknown hetlint directive "forbid"`
//hetlint:forbid detnondet no such verb
