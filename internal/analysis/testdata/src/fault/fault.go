// Package fault is a testdata stub mirroring the shapes hetlint's
// analyzers match in the real internal/fault package.
package fault

// Kind names one injected fault class.
type Kind string

// BitFlip mirrors the real silent-corruption kind.
const BitFlip Kind = "bit-flip"

// Event reports one injected fault.
type Event struct {
	Kind Kind
	Op   string
}

// Injector stands in for the seeded fault injector.
type Injector struct{}

// Policy stands in for the resilience policy.
type Policy struct{}

// Corruptor stands in for the SDC corruptor runtimes wire up; its use
// marks a package as fault-participating for launchcheck.
type Corruptor struct{}

// SubSeed mirrors the real splitmix-style child-seed derivation seedflow
// blesses; the stub just needs the (parent, stream) shape.
func SubSeed(parent, stream int64) int64 {
	return parent*31 + stream
}
