// Package goroexit is the fixture for hetlint's join-accounting analyzer:
// every go statement must be observable at shutdown via WaitGroup
// pairing, a ctx.Done() receive, or a channel handoff the spawner
// receives.
package goroexit

import (
	"context"
	"sync"
)

func goodWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func brokenDone(cond bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine's wg.Done\(\) is not reached on every path`
		if cond {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

func goodCtx(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

func goodHandoff() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

func goodSendHandoff() int {
	out := make(chan int)
	go func() {
		out <- 1
	}()
	return <-out
}

func unaccounted() {
	go func() { // want `go statement is not join-accounted`
	}()
}

func external(f func()) {
	go f() // want `goroutine body is not visible to hetlint`
}

type pool struct {
	wg sync.WaitGroup
}

func (p *pool) run() {
	defer p.wg.Done()
}

func (p *pool) spawnNamed() {
	p.wg.Add(1)
	go p.run() // good: named callee, Done deferred in its body
	p.wg.Wait()
}
