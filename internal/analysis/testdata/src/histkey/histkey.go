// Package histkey is the fixture for hetlint's histogram-naming rule:
// names passed to Registry.Observe must be lowercase dotted constants in
// the "hist." namespace; the one dynamic form is a constant "hist."
// prefix plus a suffix.
package histkey

import (
	"fmt"

	"hetbench/internal/analysis/testdata/src/trace"
)

const histChunkNs = "hist.sched.chunk.ns"

func good(r *trace.Registry, app string) {
	r.Observe(trace.HistKernelNs, 1)
	r.Observe(histChunkNs, 2)
	r.Observe("hist.app."+app, 3)
}

func bad(r *trace.Registry, name string, i int) {
	r.Observe("kernel.ns", 1)               // want `histogram name "kernel.ns" must start with "hist."`
	r.Observe("hist.Kernel.NS", 1)          // want `histogram name "hist.Kernel.NS" is not lowercase dotted`
	r.Observe("hist", 1)                    // want `histogram name "hist" must start with "hist."`
	r.Observe(fmt.Sprintf("hist.%d", i), 1) // want `histogram name built with fmt.Sprintf on the hot path`
	r.Observe(name, 1)                      // want `histogram name is not a string constant`
	r.Observe("sched."+name, 1)             // want `histogram prefix "sched." must start with "hist."`
}

// allowedLegacy carries a suppression: no finding, directive used.
func allowedLegacy(r *trace.Registry) {
	r.Observe("latency_us", 1) //hetlint:allow counterkey fixture exercises the suppression path
}
