// Package launchcheck is the fixture for hetlint's fault-handling
// analyzer in a participating package (it calls SetFaultInjector and
// LaunchKernelChecked).
package launchcheck

import (
	"hetbench/internal/analysis/testdata/src/fault"
	"hetbench/internal/analysis/testdata/src/sim"
)

func setup(m *sim.Machine) {
	m.SetFaultInjector(&fault.Injector{}, fault.Policy{})
}

func discardedResult(m *sim.Machine) {
	m.LaunchKernelChecked(sim.OnAccelerator, "daxpy", 1e6) // want `LaunchKernelChecked result discarded`
}

func blankEvent(m *sim.Machine) sim.Result {
	res, _ := m.LaunchKernelChecked(sim.OnAccelerator, "daxpy", 1e6) // want `fault.Event from LaunchKernelChecked assigned to _`
	return res
}

func handled(m *sim.Machine) sim.Result {
	res, ev := m.LaunchKernelChecked(sim.OnAccelerator, "daxpy", 1e6)
	if ev != nil {
		record(ev)
	}
	return res
}

func record(ev *fault.Event) {}

func bareAccel(m *sim.Machine) {
	_ = m.LaunchKernel(sim.OnAccelerator, "daxpy", 1e6) // want `bare LaunchKernel in a fault-participating package bypasses the injector`
}

// hostLaunch is exempt: the injector only perturbs the accelerator.
func hostLaunch(m *sim.Machine) sim.Result {
	return m.LaunchKernel(sim.OnHost, "reduce", 1e5)
}

// allowedReplay carries a suppression: no finding, directive used.
func allowedReplay(m *sim.Machine) {
	_ = m.LaunchKernel(sim.OnAccelerator, "replay", 1e6) //hetlint:allow launchcheck fixture exercises the suppression path
}
