// Package launchcheckcorr is the fixture for launchcheck's third
// participation trigger: merely wiring a fault.Corruptor makes the
// package fault-participating, so bare accelerator launches are illegal
// even without SetFaultInjector or LaunchKernelChecked calls.
package launchcheckcorr

import (
	"hetbench/internal/analysis/testdata/src/fault"
	"hetbench/internal/analysis/testdata/src/sim"
)

var corr fault.Corruptor

func bare(m *sim.Machine) {
	_ = m.LaunchKernel(sim.OnAccelerator, "daxpy", 1e6) // want `bare LaunchKernel in a fault-participating package`
}
