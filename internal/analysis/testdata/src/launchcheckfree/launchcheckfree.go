// Package launchcheckfree is the negative fixture for launchcheck: this
// package never opts into fault injection (no SetFaultInjector, no
// LaunchKernelChecked, no fault.Corruptor), so its bare accelerator
// launches are fine and the analyzer must stay silent.
package launchcheckfree

import "hetbench/internal/analysis/testdata/src/sim"

func bareAccel(m *sim.Machine) sim.Result {
	return m.LaunchKernel(sim.OnAccelerator, "daxpy", 1e6)
}

func bareHost(m *sim.Machine) sim.Result {
	return m.LaunchKernel(sim.OnHost, "reduce", 1e5)
}
