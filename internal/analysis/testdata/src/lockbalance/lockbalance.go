// Package lockbalance is the fixture for hetlint's mutex-balance
// analyzer: a Lock/RLock must reach its matching Unlock/RUnlock on every
// control-flow path out of the acquiring function.
package lockbalance

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

func (s *store) goodDefer(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func (s *store) goodExplicit(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

func (s *store) goodBranches(k string) int {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		return 0
	}
	s.mu.Unlock()
	return v
}

func (s *store) leakyReturn(k string) (int, bool) {
	s.mu.Lock() // want `s.mu.Lock\(\) does not reach s.mu.Unlock\(\) on every path`
	v, ok := s.m[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

func (s *store) goodRead(k string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.m[k]
}

func (s *store) leakyRead(k string) int {
	s.rw.RLock() // want `s.rw.RLock\(\) does not reach s.rw.RUnlock\(\) on every path`
	if v, ok := s.m[k]; ok {
		return v
	}
	s.rw.RUnlock()
	return 0
}

func (s *store) wrongUnlock(k string) int {
	s.rw.Lock() // want `s.rw.Lock\(\) does not reach s.rw.Unlock\(\) on every path`
	v := s.m[k]
	s.rw.RUnlock()
	return v
}

// panicPath is exempt on the panicking branch: the invariant is moot on
// a crash, and the surviving path unlocks.
func (s *store) panicPath(k string) int {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		panic("missing")
	}
	s.mu.Unlock()
	return v
}

// lockedAccessor releases on both arms through a helper-free explicit
// pattern mirroring service.Close.
func (s *store) lockedAccessor(keys []string) int {
	total := 0
	s.mu.Lock()
	for _, k := range keys {
		total += s.m[k]
	}
	s.mu.Unlock()
	return total
}
