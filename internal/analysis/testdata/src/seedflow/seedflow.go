// Package seedflow is the fixture for hetlint's interprocedural
// seed-derivation analyzer: PRNG seeds and fault.SubSeed parents must
// flow from SubSeed, seed-named sources, or seed parameters — and a
// blessing that rests on a parameter moves the obligation to every
// in-package caller.
package seedflow

import (
	"math/rand"
	"time"

	"hetbench/internal/analysis/testdata/src/fault"
)

type config struct {
	Seed int64
}

func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `NewSource seed derives from the wall clock \(time.Now\)`
}

func literalSeed() rand.Source {
	return rand.NewSource(42) // want `NewSource seed is the ad-hoc literal 42`
}

func flowedSeed(cfg config) rand.Source {
	return rand.NewSource(fault.SubSeed(cfg.Seed, 1)) // good: derived from a seed-named field
}

func localChain(cfg config) rand.Source {
	seed := cfg.Seed
	return rand.NewSource(seed) // good: local traced to a seed-named field
}

func localLiteral() rand.Source {
	n := int64(99)
	return rand.NewSource(n) // want `NewSource seed is the ad-hoc literal 99`
}

func badParent() int64 {
	return fault.SubSeed(7, 1) // want `fault.SubSeed parent is the ad-hoc literal 7`
}

func chainedParent(cfg config) int64 {
	return fault.SubSeed(fault.SubSeed(cfg.Seed, 2), 3) // good: SubSeed of SubSeed
}

func drawnSeed(rng *rand.Rand) rand.Source {
	return rand.NewSource(rng.Int63()) // want `NewSource seed derives from a PRNG draw`
}

// mk is innocent: the seed is a parameter, so every caller below owes a
// flowed seed at its call site.
func mk(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func goodCaller(cfg config) *rand.Rand {
	return mk(fault.SubSeed(cfg.Seed, 4)) // good: flowed at the call site
}

func clockCaller() *rand.Rand {
	return mk(time.Now().UnixNano()) // want `seed parameter "seed" of mk derives from the wall clock \(time.Now\)`
}

func literalCaller() *rand.Rand {
	return mk(1234) // want `seed parameter "seed" of mk is the ad-hoc literal 1234`
}

// wrap forwards its parameter into mk, so the obligation propagates one
// hop further: wrap's callers owe a flowed seed too.
func wrap(s int64) *rand.Rand {
	return mk(s)
}

func deepClean(cfg config) *rand.Rand {
	return wrap(fault.SubSeed(cfg.Seed, 5)) // good: two-hop flow
}

func deepDirty() *rand.Rand {
	return wrap(rand.Int63()) // want `seed parameter "s" of wrap derives from the global math/rand source \(rand.Int63\)`
}
