// Package service is the fixture for hetlint's ctxflow analyzer: inside
// a service package, request handlers must thread the caller's context
// so disconnects and deadlines cancel in-flight work; conjuring a fresh
// root context severs that chain.
package service

import "context"

type request struct {
	ctx context.Context
}

func handle(r request) {
	run(r.ctx)                        // good: the request's own context
	run(context.WithoutCancel(r.ctx)) // good: deliberately detached, values kept
	run(context.Background())         // want `context.Background\(\) severs cancellation from the request`
	run(context.TODO())               // want `context.TODO\(\) severs cancellation from the request`
}

// daemonRoot carries a suppression: the daemon's own lifetime context is
// the one sanctioned root.
func daemonRoot() context.Context {
	return context.Background() //hetlint:allow ctxflow process-lifetime root for the daemon, not a request path
}

func run(ctx context.Context) { _ = ctx }
