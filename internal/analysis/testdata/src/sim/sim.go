// Package sim is a testdata stub mirroring the shapes hetlint's
// analyzers match in the real internal/sim package: the Machine's span
// and launch methods. Signatures are simplified — the analyzers match by
// type and method name, not full signature.
package sim

import "hetbench/internal/analysis/testdata/src/fault"

// Target selects which side of the machine runs a kernel.
type Target int

// Targets, mirroring the real iota order (OnHost must be 0).
const (
	OnHost Target = iota
	OnAccelerator
)

// Result stands in for the timing breakdown of one launch.
type Result struct {
	TimeNs float64
}

// ActiveSpan is an open hierarchical span.
type ActiveSpan struct{}

// End closes the span.
func (ActiveSpan) End() {}

// Machine is the simulated platform stub.
type Machine struct{}

// StartSpan opens a phase span.
func (m *Machine) StartSpan(name string) ActiveSpan { return ActiveSpan{} }

// StartRun opens the app-run span.
func (m *Machine) StartRun(name string) ActiveSpan { return ActiveSpan{} }

// StartIteration opens one timestep span.
func (m *Machine) StartIteration(i int) ActiveSpan { return ActiveSpan{} }

// LaunchKernel is the bare (injector-blind) launch path.
func (m *Machine) LaunchKernel(t Target, name string, cost float64) Result {
	return Result{TimeNs: cost}
}

// LaunchKernelChecked is the fault-aware launch path.
func (m *Machine) LaunchKernelChecked(t Target, name string, cost float64) (Result, *fault.Event) {
	return Result{TimeNs: cost}, nil
}

// SetFaultInjector marks the machine (and, for launchcheck, the calling
// package) as fault-participating.
func (m *Machine) SetFaultInjector(inj *fault.Injector, pol fault.Policy) {}
