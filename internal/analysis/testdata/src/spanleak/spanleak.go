// Package spanleak is the fixture for hetlint's span-balance analyzer:
// every Start* span must reach End on all control-flow paths.
package spanleak

import (
	"errors"

	"hetbench/internal/analysis/testdata/src/sim"
)

var errEarly = errors.New("early")

func work() {}

func tooHot(i int) bool { return i > 3 }

func discarded(m *sim.Machine) {
	m.StartSpan("phase") // want `result of StartSpan discarded`
}

func blank(m *sim.Machine) {
	_ = m.StartRun("app") // want `result of StartRun discarded`
}

func deferred(m *sim.Machine) {
	sp := m.StartSpan("phase")
	defer sp.End()
	work()
}

func straightLine(m *sim.Machine) {
	sp := m.StartSpan("phase")
	work()
	sp.End()
}

func leakOnError(m *sim.Machine, fail bool) error {
	sp := m.StartSpan("phase") // want `span sp from StartSpan is not closed on every path`
	if fail {
		return errEarly
	}
	sp.End()
	return nil
}

func endsInBothBranches(m *sim.Machine, cond bool) {
	sp := m.StartSpan("phase")
	if cond {
		sp.End()
	} else {
		work()
		sp.End()
	}
}

func perIteration(m *sim.Machine, n int) {
	for i := 0; i < n; i++ {
		it := m.StartIteration(i)
		work()
		it.End()
	}
}

func leakOnBreak(m *sim.Machine, n int) {
	for i := 0; i < n; i++ {
		it := m.StartIteration(i) // want `span it from StartIteration is not closed on every path`
		if tooHot(i) {
			break
		}
		it.End()
	}
}

func ifInitLeak(m *sim.Machine, cond bool) {
	if sp := m.StartSpan("phase"); cond { // want `span sp from StartSpan is not closed on every path`
		sp.End()
	}
}

func ifInitBoth(m *sim.Machine, cond bool) {
	if sp := m.StartSpan("phase"); cond {
		sp.End()
	} else {
		sp.End()
	}
}

// panicPath is exempt: a crashing run has no trace to balance.
func panicPath(m *sim.Machine, ok bool) {
	sp := m.StartSpan("phase")
	if !ok {
		panic("bad input")
	}
	sp.End()
}

// allowedLeak carries a suppression: no finding, directive used.
func allowedLeak(m *sim.Machine, fail bool) {
	sp := m.StartSpan("phase") //hetlint:allow spanleak fixture exercises the suppression path
	if fail {
		return
	}
	sp.End()
}
