// Package trace is a testdata stub mirroring the counter registry
// hetlint's counterkey analyzer matches in the real internal/trace
// package.
package trace

// Canonical counter-name constants, as in the real registry.
const (
	CtrKernelNs = "kernel.ns"
	// CtrFaultPrefix prefixes the per-kind injected-fault counters.
	CtrFaultPrefix = "fault."
)

// Registry is the counter registry stub.
type Registry struct{}

// Add accumulates v into the named counter.
func (r *Registry) Add(name string, v float64) {}

// SetGauge records a point-in-time value.
func (r *Registry) SetGauge(name string, v float64) {}

// HistKernelNs is a histogram-name constant, as in the real registry.
const HistKernelNs = "hist.kernel.ns"

// Observe adds one value to the named histogram.
func (r *Registry) Observe(name string, v float64) {}
