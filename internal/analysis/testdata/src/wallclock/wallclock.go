// Package wallclock is the fixture for hetlint's call-graph wall-clock
// analyzer: a helper that reads time.Now/Since taints every value flowing
// from it, and wallclock reports the flow-mediated sinks — returns and
// ordered result output — that detnondet's per-expression rule misses.
package wallclock

import (
	"fmt"
	"io"
	"time"
)

// elapsed reads the wall clock directly. The time.Since call itself is
// detnondet's finding; wallclock's contribution is tainting elapsed so
// its callers below are caught.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func viaLocal(start time.Time) time.Duration {
	d := time.Since(start)
	return d // want `return value derives from the wall clock through d`
}

func viaHelper(start time.Time) time.Duration {
	return elapsed(start) // want `return value derives from the wall clock through elapsed`
}

func viaChain(start time.Time) float64 {
	ms := float64(viaLocal(start).Milliseconds())
	return ms // want `return value derives from the wall clock through ms`
}

func report(w io.Writer, start time.Time) {
	fmt.Fprintf(w, "took %v\n", elapsed(start)) // want `fmt.Fprintf argument derives from the wall clock through elapsed`
}

func named(start time.Time) (d time.Duration) {
	d = elapsed(start)
	return // want `return carries a wall-clock-derived value`
}

// cleanVirtual works purely in virtual time: no taint, no finding.
func cleanVirtual(nowNS int64) int64 {
	d := nowNS + 5
	return d
}

// sideEffectOnly calls a tainted helper but never lets the value reach a
// result path; wallclock stays quiet (the time.Since inside elapsed is
// still detnondet's business).
func sideEffectOnly(start time.Time) {
	_ = elapsed(start)
}
