package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock deepens detnondet's per-expression wall-clock rule into a
// package-internal call-graph taint analysis for the result packages (any
// import-path segment equal to sim, fleet, fault, workload or sched). A
// function whose return value derives from time.Now or time.Since —
// directly, through local variables, or through calls to other tainted
// functions in the same package — taints every caller. WallClock reports
// the *flow-mediated* sinks detnondet cannot see:
//
//   - a return statement whose result carries taint through a local
//     variable or a tainted helper call (the direct `return time.Since(t)`
//     is detnondet's finding, not wallclock's);
//   - an ordered-writer call (fmt.Fprintf, WriteString, …) whose argument
//     carries such taint.
//
// The analysis is package-local: calls into other packages and through
// interfaces are not tracked, and nested function literals are opaque.
var WallClock = &Analyzer{
	Name:     "wallclock",
	Doc:      "traces wall-clock taint through package-internal helpers into returns and ordered result output",
	Severity: SeverityError,
	Run:      runWallClock,
}

// clockFn is one declaration in the taint fixpoint.
type clockFn struct {
	obj          *types.Func
	decl         *ast.FuncDecl
	namedResults map[types.Object]bool
	local        map[types.Object]bool // locals carrying clock taint (final round)
}

type clockScan struct {
	pass    *Pass
	info    *types.Info
	decls   []*clockFn
	tainted map[*types.Func]bool
}

func runWallClock(p *Pass) {
	if !scopedTo(p.Pkg.Path, "wallclock", "sim", "fleet", "fault", "workload", "sched") {
		return
	}
	w := &clockScan{pass: p, info: p.Pkg.Info, tainted: make(map[*types.Func]bool)}
	w.collect()
	w.fixpoint()
	w.report()
}

func (w *clockScan) collect() {
	for _, f := range w.pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := w.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cf := &clockFn{obj: obj, decl: fd, namedResults: make(map[types.Object]bool)}
			if fd.Type.Results != nil {
				for _, field := range fd.Type.Results.List {
					for _, name := range field.Names {
						if o := w.info.Defs[name]; o != nil {
							cf.namedResults[o] = true
						}
					}
				}
			}
			w.decls = append(w.decls, cf)
		}
	}
}

// fixpoint grows the tainted-function set until stable: each round
// recomputes every untainted declaration's local dataflow against the
// current set and marks it tainted if a return carries the clock.
func (w *clockScan) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, cf := range w.decls {
			if w.tainted[cf.obj] {
				continue
			}
			cf.local = w.localTaint(cf)
			if w.returnsClock(cf) {
				w.tainted[cf.obj] = true
				changed = true
			}
		}
	}
	// One final dataflow round so untainted functions' local sets reflect
	// the complete tainted-function set when reporting.
	for _, cf := range w.decls {
		cf.local = w.localTaint(cf)
	}
}

// localTaint computes the declaration's clock-tainted locals to a local
// fixpoint (assignment chains: t := time.Now(); u := t; …).
func (w *clockScan) localTaint(cf *clockFn) map[types.Object]bool {
	local := make(map[types.Object]bool)
	mark := func(lhs ast.Expr) bool {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return false
		}
		obj := w.info.Defs[id]
		if obj == nil {
			obj = w.info.Uses[id]
		}
		if obj == nil || local[obj] {
			return false
		}
		local[obj] = true
		return true
	}
	for stable := false; !stable; {
		stable = true
		ast.Inspect(cf.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if w.clockExpr(n.Rhs[i], local) && mark(lhs) {
							stable = false
						}
					}
				} else if len(n.Rhs) == 1 && w.clockExpr(n.Rhs[0], local) {
					for _, lhs := range n.Lhs {
						if mark(lhs) {
							stable = false
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					var rhs ast.Expr
					if len(n.Values) == len(n.Names) {
						rhs = n.Values[i]
					} else if len(n.Values) == 1 {
						rhs = n.Values[0]
					}
					if rhs != nil && w.clockExpr(rhs, local) && mark(name) {
						stable = false
					}
				}
			}
			return true
		})
	}
	return local
}

// returnsClock reports whether some return path carries clock taint.
func (w *clockScan) returnsClock(cf *clockFn) bool {
	found := false
	inspectSkipFuncLits(cf.decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		if len(ret.Results) == 0 {
			// Naked return: tainted named results escape here.
			for o := range cf.namedResults {
				if cf.local[o] {
					found = true
				}
			}
			return true
		}
		for _, r := range ret.Results {
			if w.clockExpr(r, cf.local) {
				found = true
			}
		}
		return true
	})
	return found
}

// clockExpr reports whether e carries clock taint from any source:
// a direct time.Now/Since call, a call to a tainted package function, or
// a tainted local. Function literals are opaque.
func (w *clockScan) clockExpr(e ast.Expr, local map[types.Object]bool) bool {
	found := false
	inspectSkipFuncLits(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObj(w.info, n)
			if isPkgFunc(obj, "time", "Now", "Since") {
				found = true
			}
			if fn, ok := obj.(*types.Func); ok && w.tainted[fn] {
				found = true
			}
		case *ast.Ident:
			if obj := w.info.Uses[n]; obj != nil && local[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// flowTaint reports whether e carries clock taint *through dataflow* — a
// tainted helper call or a tainted local — and names the carrier. Direct
// time.Now/Since in e itself is detnondet's finding, not wallclock's.
func (w *clockScan) flowTaint(e ast.Expr, local map[types.Object]bool) (string, bool) {
	name, found := "", false
	inspectSkipFuncLits(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn, ok := calleeObj(w.info, n).(*types.Func); ok && w.tainted[fn] {
				name, found = fn.Name(), true
			}
		case *ast.Ident:
			if obj := w.info.Uses[n]; obj != nil && local[obj] {
				name, found = n.Name, true
			}
		}
		return !found
	})
	return name, found
}

// report walks every declaration's sinks with the final taint sets.
func (w *clockScan) report() {
	for _, cf := range w.decls {
		inspectSkipFuncLits(cf.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				if len(n.Results) == 0 {
					for o := range cf.namedResults {
						if cf.local[o] {
							w.pass.Reportf(n.Pos(), "return carries a wall-clock-derived value (named result tainted via time.Now/Since); results must derive from the seed and the virtual clocks")
							break
						}
					}
					return true
				}
				for _, r := range n.Results {
					if carrier, ok := w.flowTaint(r, cf.local); ok {
						w.pass.Reportf(r.Pos(), "return value derives from the wall clock through %s; results must derive from the seed and the virtual clocks", carrier)
					}
				}
			case *ast.CallExpr:
				sink, ok := orderedWriteCall(w.info, n)
				if !ok {
					return true
				}
				for _, arg := range n.Args {
					if carrier, ok := w.flowTaint(arg, cf.local); ok {
						w.pass.Reportf(arg.Pos(), "%s argument derives from the wall clock through %s; result output must derive from the virtual clocks", sink, carrier)
					}
				}
			}
			return true
		})
	}
}
