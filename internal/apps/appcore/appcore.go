// Package appcore holds the vocabulary shared by the proxy applications:
// the run-result record every implementation returns, precision helpers,
// and the conversion from cache-simulator measurements to the timing
// model's (MissRate, Coalesce) memory traits.
package appcore

import (
	"fmt"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim/cache"
	"hetbench/internal/sim/device"
	"hetbench/internal/sim/timing"
)

// Result is the outcome of running one application under one programming
// model on one machine.
type Result struct {
	App     string
	Model   modelapi.Name
	Machine string
	// Precision the run was timed at.
	Precision timing.Precision

	// ElapsedNs is total simulated time; KernelNs and TransferNs are the
	// device-compute and data-movement shares (the paper's Figures 8a/9a
	// compare kernel-only time for read-benchmark).
	ElapsedNs  float64
	KernelNs   float64
	TransferNs float64
	// FaultNs is virtual time lost to injected faults and their recovery
	// (zero unless the run executed under internal/fault injection).
	FaultNs float64

	// Checksum is an application-defined digest of the computed output,
	// used to cross-verify implementations against the serial reference.
	Checksum float64
	// Kernels is the number of distinct device kernels the
	// implementation used (Table I).
	Kernels int
}

// SpeedupOver returns baseline.ElapsedNs / r.ElapsedNs — the paper's
// speedup metric against the OpenMP run.
func (r Result) SpeedupOver(baseline Result) float64 {
	if r.ElapsedNs <= 0 {
		return 0
	}
	return baseline.ElapsedNs / r.ElapsedNs
}

// String summarizes the result for logs.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s on %s (%s): %.3f ms (kernel %.3f, xfer %.3f), checksum %g",
		r.App, r.Model, r.Machine, r.Precision,
		r.ElapsedNs/1e6, r.KernelNs/1e6, r.TransferNs/1e6, r.Checksum)
}

// EltBytes returns the element size for a precision (4 or 8).
func EltBytes(p timing.Precision) float64 {
	if p == timing.Double {
		return 8
	}
	return 4
}

// Flops splits n floating-point operations into (sp, dp) by precision —
// the tally helper every kernel body uses.
func Flops(p timing.Precision, n float64) (sp, dp float64) {
	if p == timing.Double {
		return 0, n
	}
	return n, 0
}

// Streams approximates how many independent wavefront positions walk a
// data structure concurrently on a device: each GPU CU keeps several
// waves resident (GCN supports up to 40; 8 is a typical active set under
// register pressure). Trace generators interleave this many access
// streams so LLC measurements reflect real occupancy rather than a single
// serial walk.
func Streams(dev *device.Device) int {
	return dev.ComputeUnits * 8
}

// Traits replays a sampled address trace (byte addresses, each touching
// accessBytes) through the device's last-level cache and converts the
// outcome into the timing model's memory traits:
//
//   - missRate: the fraction of requested bytes that DRAM must supply,
//   - coalesce: the efficiency lost to fetching whole lines for partial
//     use (scattered accesses fetch 64 bytes to deliver 8).
//
// The per-access cache miss rate is also returned for Table I reporting.
func Traits(dev *device.Device, addrs []uint64, accessBytes int) (missRate, coalesce, accessMissRate float64) {
	if len(addrs) == 0 || accessBytes <= 0 {
		return 0, 1, 0
	}
	cfg := cache.Config{SizeBytes: dev.L2SizeBytes, LineBytes: dev.CacheLineBytes, Ways: dev.L2Ways}
	c := cache.New(cfg)
	for _, a := range addrs {
		c.AccessRange(a, accessBytes)
	}
	st := c.Stats()
	accessMissRate = st.MissRate()
	requested := float64(len(addrs) * accessBytes)
	fetched := float64(st.Misses) * float64(dev.CacheLineBytes)
	ratio := fetched / requested
	if ratio <= 1 {
		return ratio, 1, accessMissRate
	}
	return 1, 1 / ratio, accessMissRate
}
