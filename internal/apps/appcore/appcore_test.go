package appcore

import (
	"math"
	"testing"
	"testing/quick"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim/device"
	"hetbench/internal/sim/timing"
)

func TestEltBytesAndFlops(t *testing.T) {
	if EltBytes(timing.Single) != 4 || EltBytes(timing.Double) != 8 {
		t.Error("EltBytes wrong")
	}
	sp, dp := Flops(timing.Single, 10)
	if sp != 10 || dp != 0 {
		t.Errorf("Flops single = %g/%g", sp, dp)
	}
	sp, dp = Flops(timing.Double, 10)
	if sp != 0 || dp != 10 {
		t.Errorf("Flops double = %g/%g", sp, dp)
	}
}

func TestTraitsStreaming(t *testing.T) {
	dev := device.R9280X()
	// Pure streaming at 8 B: every byte requested reaches DRAM once →
	// missRate 1, coalesce 1.
	trace := make([]uint64, 1<<16)
	for i := range trace {
		trace[i] = uint64(i * 8)
	}
	miss, coal, acc := Traits(dev, trace, 8)
	if math.Abs(miss-1) > 0.02 || coal != 1 {
		t.Errorf("streaming traits = %g/%g, want 1/1", miss, coal)
	}
	// Per-access miss rate for 8 B accesses on 64 B lines ≈ 1/8.
	if acc < 0.11 || acc > 0.14 {
		t.Errorf("per-access miss = %g, want ≈0.125", acc)
	}
}

func TestTraitsScatteredGather(t *testing.T) {
	dev := device.R9280X()
	// Strided 8 B reads, one per 4 KB page over a region far beyond the
	// L2: every access fetches a whole line for 8 useful bytes.
	trace := make([]uint64, 1<<15)
	for i := range trace {
		trace[i] = uint64(i) * 4096
	}
	miss, coal, acc := Traits(dev, trace, 8)
	if miss != 1 {
		t.Errorf("scattered missRate = %g, want 1", miss)
	}
	if math.Abs(coal-8.0/64.0) > 0.01 {
		t.Errorf("scattered coalesce = %g, want 0.125 (8/64)", coal)
	}
	if acc < 0.99 {
		t.Errorf("per-access miss = %g, want ≈1", acc)
	}
}

func TestTraitsCacheResident(t *testing.T) {
	dev := device.R9280X()
	// A 64 KB working set hammered repeatedly: after warmup everything
	// hits → low missRate.
	var trace []uint64
	for pass := 0; pass < 8; pass++ {
		for a := uint64(0); a < 64<<10; a += 8 {
			trace = append(trace, a)
		}
	}
	miss, coal, _ := Traits(dev, trace, 8)
	if miss > 0.2 {
		t.Errorf("resident missRate = %g, want small", miss)
	}
	if coal != 1 {
		t.Errorf("coalesce = %g, want 1", coal)
	}
}

func TestTraitsDegenerate(t *testing.T) {
	dev := device.R9280X()
	if m, c, a := Traits(dev, nil, 8); m != 0 || c != 1 || a != 0 {
		t.Error("empty trace traits wrong")
	}
	if m, c, _ := Traits(dev, []uint64{0}, 0); m != 0 || c != 1 {
		t.Error("zero access size traits wrong")
	}
}

func TestQuickTraitsBounds(t *testing.T) {
	dev := device.A10_7850K()
	f := func(seed int64, n uint8) bool {
		trace := make([]uint64, int(n)+1)
		s := uint64(seed)
		for i := range trace {
			s = s*6364136223846793005 + 1
			trace[i] = s % (1 << 26)
		}
		miss, coal, acc := Traits(dev, trace, 8)
		return miss >= 0 && miss <= 1 && coal > 0 && coal <= 1 && acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestResultHelpers(t *testing.T) {
	base := Result{App: "x", Model: modelapi.OpenMP, ElapsedNs: 100}
	r := Result{App: "x", Model: modelapi.OpenCL, Machine: "m", ElapsedNs: 25, KernelNs: 20, TransferNs: 5, Checksum: 7}
	if got := r.SpeedupOver(base); got != 4 {
		t.Errorf("speedup = %g, want 4", got)
	}
	if got := (Result{}).SpeedupOver(base); got != 0 {
		t.Errorf("degenerate speedup = %g, want 0", got)
	}
	s := r.String()
	for _, want := range []string{"x", "OpenCL", "checksum"} {
		if !containsFold(s, want) {
			t.Errorf("Result.String() missing %q: %s", want, s)
		}
	}
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			a, b := s[i+j], sub[j]
			if a >= 'A' && a <= 'Z' {
				a += 32
			}
			if b >= 'A' && b <= 'Z' {
				b += 32
			}
			if a != b {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestStreams(t *testing.T) {
	if got := Streams(device.R9280X()); got != 256 {
		t.Errorf("Streams(R9 280X) = %d, want 256 (32 CU × 8)", got)
	}
	if got := Streams(device.A10_7850K()); got != 64 {
		t.Errorf("Streams(APU) = %d, want 64", got)
	}
}
