// Package comd implements the CoMD molecular-dynamics proxy application:
// Lennard-Jones atoms on an FCC lattice, link-cell neighbor search, and
// velocity-Verlet integration. Matching the paper's Table I, the device
// side consists of exactly 3 kernels — ljForce, advanceVelocity and
// advancePosition — with force computation taking >90% of the time, and
// the application is compute-bound with mediocre data locality (26% LLC
// miss rate).
//
// The force kernel exists in two forms: a flat per-atom gather (what the
// OpenACC compiler can express) and a tiled form that stages each cell's
// atoms through the local data store (the optimization that "improved the
// performance of CoMD by almost 3×" under C++ AMP, Section VI-C).
package comd

import (
	"fmt"
	"math"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// AppName identifies CoMD in results.
const AppName = "CoMD"

// Reduced Lennard-Jones units.
const (
	cutoff    = 2.5    // interaction cutoff (σ)
	latticeA  = 1.5874 // FCC lattice constant at equilibrium density
	dtStep    = 0.002  // velocity-Verlet timestep (τ)
	cellsKMax = 64     // max atoms per link cell the tiled kernel holds
)

// Config sizes a run: `-x -y -z` unit cells as in the paper's command line
// `./CoMD -x 60 -y 60 -z 60` (4 atoms per FCC cell).
type Config struct {
	Nx, Ny, Nz int
	Iters      int
	// FunctionalIters: leading iterations that execute physics; the rest
	// replay measured kernel costs. Zero = all functional.
	FunctionalIters int
}

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if c.Nx < 2 || c.Ny < 2 || c.Nz < 2 {
		return fmt.Errorf("comd: lattice %dx%dx%d must be ≥2 per dim", c.Nx, c.Ny, c.Nz)
	}
	if c.Iters < 1 {
		return fmt.Errorf("comd: Iters=%d must be ≥1", c.Iters)
	}
	if c.FunctionalIters < 0 {
		return fmt.Errorf("comd: FunctionalIters=%d must be ≥0", c.FunctionalIters)
	}
	return nil
}

func (c Config) functionalIters() int {
	if c.FunctionalIters == 0 || c.FunctionalIters > c.Iters {
		return c.Iters
	}
	return c.FunctionalIters
}

// NumAtoms returns 4·Nx·Ny·Nz.
func (c Config) NumAtoms() int { return 4 * c.Nx * c.Ny * c.Nz }

// State is the particle system plus link-cell structures.
type State struct {
	Cfg Config
	// Box dimensions (periodic).
	Lx, Ly, Lz float64

	// Per-atom fields.
	X, Y, Z    []float64
	Vx, Vy, Vz []float64
	Fx, Fy, Fz []float64
	PE         []float64 // per-atom potential energy (half-counted pairs)

	// Link cells: CellOf[i] is atom i's cell; CellStart/CellAtoms is the
	// CSR cell→atoms map; CellNeighbors lists 27 neighbor cells per cell.
	NCx, NCy, NCz int
	CellOf        []int32
	CellStart     []int32
	CellAtoms     []int32
	CellNeighbors []int32
}

// fcc basis offsets within one unit cell.
var fccBasis = [4][3]float64{{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}}

// NewState builds the FCC lattice with small deterministic thermal noise
// and zero net momentum.
func NewState(cfg Config) *State {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.NumAtoms()
	s := &State{
		Cfg: cfg,
		Lx:  float64(cfg.Nx) * latticeA,
		Ly:  float64(cfg.Ny) * latticeA,
		Lz:  float64(cfg.Nz) * latticeA,
		X:   make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		Vx: make([]float64, n), Vy: make([]float64, n), Vz: make([]float64, n),
		Fx: make([]float64, n), Fy: make([]float64, n), Fz: make([]float64, n),
		PE: make([]float64, n),
	}
	// Deterministic LCG for velocities.
	rng := uint64(12345)
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11)/float64(1<<53) - 0.5
	}
	i := 0
	for cz := 0; cz < cfg.Nz; cz++ {
		for cy := 0; cy < cfg.Ny; cy++ {
			for cx := 0; cx < cfg.Nx; cx++ {
				for _, b := range fccBasis {
					s.X[i] = (float64(cx) + b[0]) * latticeA
					s.Y[i] = (float64(cy) + b[1]) * latticeA
					s.Z[i] = (float64(cz) + b[2]) * latticeA
					s.Vx[i] = 0.05 * next()
					s.Vy[i] = 0.05 * next()
					s.Vz[i] = 0.05 * next()
					i++
				}
			}
		}
	}
	// Remove net momentum.
	var mx, my, mz float64
	for i := 0; i < n; i++ {
		mx += s.Vx[i]
		my += s.Vy[i]
		mz += s.Vz[i]
	}
	for i := 0; i < n; i++ {
		s.Vx[i] -= mx / float64(n)
		s.Vy[i] -= my / float64(n)
		s.Vz[i] -= mz / float64(n)
	}

	s.NCx = max(3, int(s.Lx/cutoff))
	s.NCy = max(3, int(s.Ly/cutoff))
	s.NCz = max(3, int(s.Lz/cutoff))
	s.CellOf = make([]int32, n)
	s.buildNeighborTable()
	s.RebuildCells()
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (s *State) numCells() int { return s.NCx * s.NCy * s.NCz }

func (s *State) cellIndex(x, y, z float64) int32 {
	wrap := func(v, l float64, n int) int {
		c := int(v / l * float64(n))
		if c < 0 {
			c = 0
		}
		if c >= n {
			c = n - 1
		}
		return c
	}
	cx := wrap(x, s.Lx, s.NCx)
	cy := wrap(y, s.Ly, s.NCy)
	cz := wrap(z, s.Lz, s.NCz)
	return int32((cz*s.NCy+cy)*s.NCx + cx)
}

func (s *State) buildNeighborTable() {
	nc := s.numCells()
	s.CellNeighbors = make([]int32, 27*nc)
	idx := 0
	for cz := 0; cz < s.NCz; cz++ {
		for cy := 0; cy < s.NCy; cy++ {
			for cx := 0; cx < s.NCx; cx++ {
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							nx := (cx + dx + s.NCx) % s.NCx
							ny := (cy + dy + s.NCy) % s.NCy
							nz := (cz + dz + s.NCz) % s.NCz
							s.CellNeighbors[idx] = int32((nz*s.NCy+ny)*s.NCx + nx)
							idx++
						}
					}
				}
			}
		}
	}
}

// RebuildCells reassigns atoms to link cells (host-side bookkeeping, as in
// CoMD's redistributeAtoms; periodic and cheap relative to force work).
func (s *State) RebuildCells() {
	n := len(s.X)
	nc := s.numCells()
	counts := make([]int32, nc+1)
	for i := 0; i < n; i++ {
		c := s.cellIndex(s.X[i], s.Y[i], s.Z[i])
		s.CellOf[i] = c
		counts[c+1]++
	}
	s.CellStart = make([]int32, nc+1)
	for c := 0; c < nc; c++ {
		s.CellStart[c+1] = s.CellStart[c] + counts[c+1]
	}
	s.CellAtoms = make([]int32, n)
	fill := make([]int32, nc)
	for i := 0; i < n; i++ {
		c := s.CellOf[i]
		s.CellAtoms[s.CellStart[c]+fill[c]] = int32(i)
		fill[c]++
	}
}

// minImage applies the periodic minimum-image convention.
func minImage(d, l float64) float64 {
	if d > l/2 {
		return d - l
	}
	if d < -l/2 {
		return d + l
	}
	return d
}

// ljForceAtom computes the LJ force and energy on atom i against all
// neighbors within the cutoff, returning (fx, fy, fz, pe, pairsVisited).
// The potential is the truncated-and-shifted 12-6 LJ so that energy is
// continuous at the cutoff (bounded drift under Verlet integration).
func (s *State) ljForceAtom(i int) (fx, fy, fz, pe float64, visited int) {
	const rc2 = cutoff * cutoff
	// energy shift: 4(rc^-12 - rc^-6)
	ir6 := 1 / (rc2 * rc2 * rc2)
	eShift := 4 * (ir6*ir6 - ir6)

	xi, yi, zi := s.X[i], s.Y[i], s.Z[i]
	ci := s.CellOf[i]
	for k := 0; k < 27; k++ {
		cell := s.CellNeighbors[int(ci)*27+k]
		lo, hi := s.CellStart[cell], s.CellStart[cell+1]
		for a := lo; a < hi; a++ {
			j := s.CellAtoms[a]
			if int(j) == i {
				continue
			}
			dx := minImage(xi-s.X[j], s.Lx)
			dy := minImage(yi-s.Y[j], s.Ly)
			dz := minImage(zi-s.Z[j], s.Lz)
			r2 := dx*dx + dy*dy + dz*dz
			visited++
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			inv2 := 1 / r2
			inv6 := inv2 * inv2 * inv2
			// F/r = 24(2 r^-12 - r^-6)/r²
			fOverR := 24 * (2*inv6*inv6 - inv6) * inv2
			fx += fOverR * dx
			fy += fOverR * dy
			fz += fOverR * dz
			pe += 0.5 * (4*(inv6*inv6-inv6) - eShift)
		}
	}
	return fx, fy, fz, pe, visited
}

// TotalEnergy returns kinetic + potential energy (unit mass atoms).
func (s *State) TotalEnergy() float64 {
	ke, pe := 0.0, 0.0
	for i := range s.X {
		ke += 0.5 * (s.Vx[i]*s.Vx[i] + s.Vy[i]*s.Vy[i] + s.Vz[i]*s.Vz[i])
		pe += s.PE[i]
	}
	return ke + pe
}

// TotalMomentum returns the (conserved) net momentum magnitude.
func (s *State) TotalMomentum() float64 {
	var mx, my, mz float64
	for i := range s.X {
		mx += s.Vx[i]
		my += s.Vy[i]
		mz += s.Vz[i]
	}
	return math.Sqrt(mx*mx + my*my + mz*mz)
}

// ---------------------------------------------------------------------
// Characterization.

// Kernel names (Table I: "3 (LJ)").
const (
	KForce    = "ljForce"
	KVelocity = "advanceVelocity"
	KPosition = "advancePosition"
)

// forceTrace builds the force kernel's address trace: the neighbor-cell
// position reads of a sample of atoms, interleaved across `streams`
// concurrent positions to mimic the compute units walking distant parts of
// the box simultaneously (what actually determines GPU LLC behaviour).
func (s *State) forceTrace(elt, streams int) []uint64 {
	n := len(s.X)
	perStream := n / streams
	if perStream == 0 {
		perStream = 1
	}
	sample := 1 << 13
	if sample > n {
		sample = n
	}
	var trace []uint64
	for step := 0; len(trace) < sample*80; step++ {
		emitted := false
		for w := 0; w < streams; w++ {
			idx := w*perStream + step
			if idx >= n || step >= perStream {
				continue
			}
			emitted = true
			i := s.CellAtoms[idx] // cell-sorted execution order
			c := s.CellOf[i]
			for k := 0; k < 27; k++ {
				cell := s.CellNeighbors[int(c)*27+k]
				for b := s.CellStart[cell]; b < s.CellStart[cell+1]; b++ {
					trace = append(trace, uint64(s.CellAtoms[b])*uint64(3*elt))
				}
			}
		}
		if !emitted {
			break
		}
	}
	return trace
}

// Specs builds the three kernel specs with traits measured on the
// machine's accelerator LLC from the real link-cell gather pattern.
func (s *State) Specs(m *sim.Machine, prec timing.Precision) map[string]modelapi.KernelSpec {
	elt := int(appcore.EltBytes(prec))
	trace := s.forceTrace(elt, concurrentStreams(m))
	fMiss, fCoal, _ := appcore.Traits(m.Accelerator(), trace, 3*elt)

	stream := make([]uint64, 1<<15)
	for i := range stream {
		stream[i] = uint64(i * elt)
	}
	sMiss, sCoal, _ := appcore.Traits(m.Accelerator(), stream, elt)

	return map[string]modelapi.KernelSpec{
		KForce:    {Name: KForce, Class: modelapi.Irregular, MissRate: fMiss, Coalesce: fCoal},
		KVelocity: {Name: KVelocity, Class: modelapi.Streaming, MissRate: sMiss, Coalesce: sCoal},
		KPosition: {Name: KPosition, Class: modelapi.Streaming, MissRate: sMiss, Coalesce: sCoal},
	}
}

// MeasuredMissRate reports the per-access LLC miss rate of the force
// gather (the Table I number: 26%).
func (s *State) MeasuredMissRate(m *sim.Machine, prec timing.Precision) float64 {
	elt := int(appcore.EltBytes(prec))
	trace := s.forceTrace(elt, concurrentStreams(m))
	_, _, acc := appcore.Traits(m.Accelerator(), trace, 3*elt)
	return acc
}

// concurrentStreams approximates how many independent wavefront positions
// walk the box at once: each CU keeps several waves resident (GCN runs up
// to 40; 8 is a typical active set under register pressure).
func concurrentStreams(m *sim.Machine) int {
	return m.Accelerator().ComputeUnits * 8
}
