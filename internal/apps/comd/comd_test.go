package comd

import (
	"math"
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/models/opencl"
	"hetbench/internal/models/openmp"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func smallCfg() Config { return Config{Nx: 4, Ny: 4, Nz: 4, Iters: 10} }

func TestLatticeSetup(t *testing.T) {
	s := NewState(smallCfg())
	if len(s.X) != 256 {
		t.Fatalf("atoms = %d, want 256 (4·4³)", len(s.X))
	}
	// All atoms inside the box.
	for i := range s.X {
		if s.X[i] < 0 || s.X[i] >= s.Lx || s.Y[i] < 0 || s.Y[i] >= s.Ly || s.Z[i] < 0 || s.Z[i] >= s.Lz {
			t.Fatalf("atom %d outside box", i)
		}
	}
	// Zero net momentum after initialization.
	if p := s.TotalMomentum(); p > 1e-10 {
		t.Errorf("net momentum = %g, want ≈0", p)
	}
	// Link cells cover every atom exactly once.
	if got := int(s.CellStart[s.numCells()]); got != len(s.X) {
		t.Errorf("cells cover %d atoms, want %d", got, len(s.X))
	}
}

func TestForceSymmetry(t *testing.T) {
	// Newton's third law: with all forces computed, net force ≈ 0.
	s := NewState(smallCfg())
	var fx, fy, fz float64
	for i := range s.X {
		a, b, c, _, _ := s.ljForceAtom(i)
		fx += a
		fy += b
		fz += c
	}
	if math.Abs(fx)+math.Abs(fy)+math.Abs(fz) > 1e-8 {
		t.Errorf("net force = (%g,%g,%g), want ≈0", fx, fy, fz)
	}
}

func TestFCCEquilibriumForcesSmall(t *testing.T) {
	// On a perfect FCC lattice at the equilibrium constant, per-atom
	// forces are near zero by symmetry (every atom is a lattice point).
	cfg := smallCfg()
	s := NewState(cfg)
	// Rebuild positions without velocity noise: forces depend only on
	// positions, which are exactly the lattice.
	fx, fy, fz, _, visited := s.ljForceAtom(37)
	if visited == 0 {
		t.Fatal("force loop visited no neighbors")
	}
	f := math.Sqrt(fx*fx + fy*fy + fz*fz)
	if f > 1e-8 {
		t.Errorf("lattice-point force = %g, want ≈0 by symmetry", f)
	}
}

func TestEnergyConservation(t *testing.T) {
	p := NewProblem(Config{Nx: 4, Ny: 4, Nz: 4, Iters: 50}, timing.Double)
	m := sim.NewAPU()
	s := NewState(p.Cfg)
	specs := s.Specs(m, p.Precision)
	// Need initial PE for the t=0 energy: compute forces once.
	for i := range s.X {
		fx, fy, fz, pe, _ := s.ljForceAtom(i)
		s.Fx[i], s.Fy[i], s.Fz[i], s.PE[i] = fx, fy, fz, pe
	}
	e0 := s.TotalEnergy()
	p.run(m, s, specs, &ompDriver{rt: openmp.New(m)}, false)
	e1 := s.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.01 {
		t.Errorf("energy drift over 50 steps = %.4f (E %g → %g), want <1%%", drift, e0, e1)
	}
	if pm := s.TotalMomentum(); pm > 1e-8 {
		t.Errorf("momentum after run = %g, want conserved ≈0", pm)
	}
}

func TestAllModelsAgree(t *testing.T) {
	p := NewProblem(smallCfg(), timing.Double)
	var ref float64
	models := []modelapi.Name{modelapi.OpenMP, modelapi.OpenCL, modelapi.CppAMP, modelapi.OpenACC}
	for i, model := range models {
		m := sim.NewDGPU()
		r := p.Run(m, model)
		if r.Kernels != 3 {
			t.Errorf("%s: kernels = %d, want 3 (Table I)", model, r.Kernels)
		}
		if i == 0 {
			ref = r.Checksum
		} else if math.Abs(r.Checksum-ref) > 1e-9*math.Abs(ref) {
			t.Errorf("%s: checksum %g, want %g", model, r.Checksum, ref)
		}
	}
}

// Figure 8c/9c shape: OpenACC worst on both architectures (scalar
// fallback); OpenCL best; compute-bound so the dGPU scales far beyond the
// APU; DP much slower than SP.
func TestCoMDShapes(t *testing.T) {
	cfg := Config{Nx: 6, Ny: 6, Nz: 6, Iters: 5}
	dp := NewProblem(cfg, timing.Double)

	base := dp.RunOpenMP(sim.NewAPU())
	for _, machine := range []func() *sim.Machine{sim.NewAPU, sim.NewDGPU} {
		cl := dp.RunOpenCL(machine())
		amp := dp.RunCppAMP(machine())
		acc := dp.RunOpenACC(machine())
		sCL, sAMP, sACC := cl.SpeedupOver(base), amp.SpeedupOver(base), acc.SpeedupOver(base)
		if !(sCL > sAMP && sAMP > sACC) {
			t.Errorf("%s: ordering CL %.2f > AMP %.2f > ACC %.2f violated", cl.Machine, sCL, sAMP, sACC)
		}
	}

	// Compute-bound: dGPU ≫ APU for OpenCL.
	clAPU := dp.RunOpenCL(sim.NewAPU())
	clDGPU := dp.RunOpenCL(sim.NewDGPU())
	if r := clAPU.ElapsedNs / clDGPU.ElapsedNs; r < 3 {
		t.Errorf("dGPU/APU CoMD advantage = %.2f×, want large (compute-bound)", r)
	}

	// SP vs DP: the APU's 1/16 DP rate must show a bigger gap than the
	// dGPU's 1/4 (Section VI-A).
	sp := NewProblem(cfg, timing.Single)
	gapAPU := dp.RunOpenCL(sim.NewAPU()).KernelNs / sp.RunOpenCL(sim.NewAPU()).KernelNs
	gapDGPU := dp.RunOpenCL(sim.NewDGPU()).KernelNs / sp.RunOpenCL(sim.NewDGPU()).KernelNs
	if gapAPU <= gapDGPU {
		t.Errorf("DP/SP gap APU %.2f not above dGPU %.2f", gapAPU, gapDGPU)
	}
	if gapDGPU < 1.3 {
		t.Errorf("dGPU DP/SP gap = %.2f, want ≥1.3 (1/4 DP rate)", gapDGPU)
	}
}

// Section VI-C: tiling (LDS staging) improves the force kernel by ≈3×.
// Needs enough atoms that launch overhead does not dominate.
func TestTilingAblation(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 16, Nz: 16, Iters: 2}
	p := NewProblem(cfg, timing.Single)

	run := func(tiled bool) float64 {
		m := sim.NewDGPU()
		s := NewState(cfg)
		specs := s.Specs(m, p.Precision)
		ctx := opencl.NewContext(m)
		q := ctx.NewQueue()
		cells := ctx.CreateBuffer("comd.cells", p.groups(s)[3].bytes)
		p.run(m, s, specs, &clDriver{q: q, cells: cells}, tiled)
		return m.KernelNs()
	}
	flat := run(false)
	tiled := run(true)
	if speedup := flat / tiled; speedup < 1.5 {
		t.Errorf("tiling speedup = %.2f×, want substantial (paper ≈3×)", speedup)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Nx: 1, Ny: 4, Nz: 4, Iters: 1},
		{Nx: 4, Ny: 4, Nz: 4, Iters: 0},
		{Nx: 4, Ny: 4, Nz: 4, Iters: 1, FunctionalIters: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if (Config{Nx: 3, Ny: 3, Nz: 3}).NumAtoms() != 108 {
		t.Error("NumAtoms wrong")
	}
}

func TestMeasuredMissRateBand(t *testing.T) {
	// Needs a footprint well beyond the 768 KB L2 (the paper ran
	// 60³×4 ≈ 864k atoms; 24³×4 ≈ 55k atoms × 24 B ≈ 1.3 MB suffices
	// once concurrent-CU interleaving is modeled).
	s := NewState(Config{Nx: 24, Ny: 24, Nz: 24, Iters: 1})
	miss := s.MeasuredMissRate(sim.NewDGPU(), timing.Double)
	// Table I: CoMD 26% — moderate locality. Accept a generous band but
	// require it clearly above LULESH-like locality.
	if miss < 0.05 || miss > 0.6 {
		t.Errorf("CoMD measured LLC miss rate = %.3f, want moderate (Table I: 0.26)", miss)
	}
}
