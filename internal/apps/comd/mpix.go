package comd

import (
	"fmt"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/mpix"
	"hetbench/internal/sim"
)

// MPIXResult summarizes a multi-node MPI+OpenCL CoMD run.
type MPIXResult struct {
	Ranks             int
	ElapsedNs         float64
	ComputeNs, CommNs float64
	HaloBytes         int64
}

// RunMPIX strong-scales the molecular-dynamics box across the cluster
// with a slab decomposition along z (CoMD's actual decomposition is the
// same idea in 3-D): each rank integrates its atoms with the X-model
// kernels and exchanges one link-cell layer of atom positions with each
// face neighbor every step, periodically joining an energy allreduce.
func (p *Problem) RunMPIX(c *mpix.Cluster) MPIXResult {
	ranks := c.Size()
	if p.Cfg.Nz%ranks != 0 && ranks > 1 {
		panic(fmt.Sprintf("comd: Nz=%d not divisible into %d slabs", p.Cfg.Nz, ranks))
	}

	// Record the global problem's kernel costs once.
	rec := sim.NewDGPU()
	rec.EnableCostLog()
	fnCfg := p.Cfg
	fnCfg.Iters, fnCfg.FunctionalIters = 1, 1
	fn := NewProblem(fnCfg, p.Precision)
	fn.RunOpenCL(rec)
	log := rec.CostLog()

	// One iteration of per-rank kernel time at 1/P atoms.
	iter := sim.NewDGPU()
	for _, lc := range log {
		cost := lc.Cost
		cost.Items = (cost.Items + ranks - 1) / ranks
		iter.LaunchKernel(lc.Target, lc.Name, cost)
	}
	iterNs := iter.KernelNs()

	// Halo: one link-cell layer of atoms per face — positions and ids.
	elt := int64(appcore.EltBytes(p.Precision))
	atomsPerLayer := int64(4 * p.Cfg.Nx * p.Cfg.Ny) // ≈ one cell layer at FCC density
	haloBytes := atomsPerLayer * (3*elt + 4)

	const reduceEvery = 10
	var compute, comm float64
	for it := 0; it < p.Cfg.Iters; it++ {
		before := c.MaxTimeNs()
		for r := 0; r < ranks; r++ {
			c.Rank(r).AdvanceNs(iterNs)
		}
		mid := c.MaxTimeNs()
		// Periodic slabs: even/odd phases, wrap-around neighbor.
		if ranks > 1 {
			for phase := 0; phase < 2; phase++ {
				for r := phase; r < ranks; r += 2 {
					c.Sendrecv(r, (r+1)%ranks, haloBytes)
				}
			}
		}
		if it%reduceEvery == reduceEvery-1 {
			c.Allreduce(elt)
		}
		after := c.MaxTimeNs()
		compute += mid - before
		comm += after - mid
	}

	return MPIXResult{
		Ranks:     ranks,
		ElapsedNs: c.MaxTimeNs(),
		ComputeNs: compute,
		CommNs:    comm,
		HaloBytes: haloBytes,
	}
}

// Efficiency returns strong-scaling parallel efficiency against the
// single-rank reference.
func (r MPIXResult) Efficiency(single MPIXResult) float64 {
	if r.ElapsedNs <= 0 || single.ElapsedNs <= 0 {
		return 0
	}
	return single.ElapsedNs / (float64(r.Ranks) * r.ElapsedNs)
}

// CommFraction returns the communication share of the run.
func (r MPIXResult) CommFraction() float64 {
	total := r.ComputeNs + r.CommNs
	if total <= 0 {
		return 0
	}
	return r.CommNs / total
}

// StrongScaling runs the problem at each rank count.
func (p *Problem) StrongScaling(rankCounts []int, newMachine func() *sim.Machine, fabric mpix.Fabric) []MPIXResult {
	var out []MPIXResult
	for _, n := range rankCounts {
		c := mpix.NewCluster(n, newMachine, fabric)
		out = append(out, p.RunMPIX(c))
	}
	return out
}
