package comd

import (
	"testing"

	"hetbench/internal/models/mpix"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func TestCoMDStrongScaling(t *testing.T) {
	// Big enough that the force kernel dominates the per-launch floor;
	// the cost log comes from a single functional step.
	p := NewProblem(Config{Nx: 24, Ny: 24, Nz: 24, Iters: 8, FunctionalIters: 1}, timing.Single)
	results := p.StrongScaling([]int{1, 2, 4, 8}, sim.NewDGPU, mpix.DefaultFabric())

	// Compute-bound with a small halo: CoMD strong-scales better than
	// LULESH at the same rank counts — efficiency at 8 ranks stays
	// meaningful and elapsed time keeps dropping.
	for i := 1; i < len(results); i++ {
		if results[i].ElapsedNs >= results[i-1].ElapsedNs {
			t.Errorf("time not dropping: ranks %d → %d gives %.3f → %.3f ms",
				results[i-1].Ranks, results[i].Ranks,
				results[i-1].ElapsedNs/1e6, results[i].ElapsedNs/1e6)
		}
	}
	for _, r := range results {
		if eff := r.Efficiency(results[0]); eff > 1.0001 || eff <= 0 {
			t.Errorf("ranks=%d: efficiency %.3f out of range", r.Ranks, eff)
		}
		if r.CommFraction() < 0 || r.CommFraction() > 1 {
			t.Errorf("ranks=%d: comm fraction %.3f", r.Ranks, r.CommFraction())
		}
	}
	if results[0].CommFraction() > 0.05 {
		t.Errorf("1-rank comm fraction = %.3f, want ≈0", results[0].CommFraction())
	}
}

func TestCoMDMPIXPanicsOnIndivisibleSlabs(t *testing.T) {
	p := NewProblem(Config{Nx: 4, Ny: 4, Nz: 5, Iters: 2, FunctionalIters: 1}, timing.Single)
	defer func() {
		if recover() == nil {
			t.Error("indivisible slab count did not panic")
		}
	}()
	p.RunMPIX(mpix.NewCluster(2, sim.NewDGPU, mpix.DefaultFabric()))
}
