package comd

import (
	"math"
	"testing"
	"testing/quick"

	"hetbench/internal/models/openmp"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func TestMinImage(t *testing.T) {
	const L = 10.0
	cases := []struct{ d, want float64 }{
		{0, 0},
		{3, 3},
		{-3, -3},
		{6, -4}, // wraps to the nearer image
		{-6, 4},
		{4.999, 4.999},
	}
	for _, c := range cases {
		if got := minImage(c.d, L); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("minImage(%g) = %g, want %g", c.d, got, c.want)
		}
	}
}

func TestQuickMinImageBounds(t *testing.T) {
	// minImage's domain is differences of in-box coordinates, |d| < L.
	f := func(a int16) bool {
		l := 7.3
		d := (float64(a) / 32768) * l * 0.999
		m := minImage(d, l)
		return m >= -l/2-1e-12 && m <= l/2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Atoms across the periodic boundary must interact: the force on a
// lattice-edge atom vanishes only because its periodic neighbors balance
// the interior ones. Deleting periodicity would leave it unbalanced, so
// a balanced edge atom is direct evidence the wrap works.
func TestPeriodicNeighborsBalanceEdgeAtoms(t *testing.T) {
	s := NewState(Config{Nx: 4, Ny: 4, Nz: 4, Iters: 1})
	// Atom 0 sits at the origin corner — every one of its neighbor
	// shells is reached through the periodic wrap.
	fx, fy, fz, pe, visited := s.ljForceAtom(0)
	if visited < 100 {
		t.Fatalf("corner atom visited only %d neighbors; wrap broken", visited)
	}
	if f := math.Sqrt(fx*fx + fy*fy + fz*fz); f > 1e-8 {
		t.Errorf("corner atom force = %g; periodic images unbalanced", f)
	}
	if pe >= 0 {
		t.Errorf("corner atom PE = %g, want negative (bound lattice)", pe)
	}
}

func TestCellIndexWraps(t *testing.T) {
	s := NewState(Config{Nx: 4, Ny: 4, Nz: 4, Iters: 1})
	// Positions at or beyond the box edge must clamp to valid cells.
	if c := s.cellIndex(s.Lx-1e-12, 0, 0); c < 0 || int(c) >= s.numCells() {
		t.Errorf("edge position mapped to cell %d", c)
	}
	if c := s.cellIndex(0, 0, 0); c != 0 {
		t.Errorf("origin mapped to cell %d, want 0", c)
	}
	// Every cell's neighbor list has exactly 27 entries in range.
	for c := 0; c < s.numCells(); c++ {
		for k := 0; k < 27; k++ {
			n := s.CellNeighbors[c*27+k]
			if n < 0 || int(n) >= s.numCells() {
				t.Fatalf("cell %d neighbor %d out of range: %d", c, k, n)
			}
		}
	}
}

// Positions stay in the box after many integration steps.
func TestPositionsStayInBox(t *testing.T) {
	p := NewProblem(Config{Nx: 4, Ny: 4, Nz: 4, Iters: 30}, timing.Double)
	m := sim.NewAPU()
	s := NewState(p.Cfg)
	specs := s.Specs(m, p.Precision)
	p.run(m, s, specs, &ompDriver{rt: openmp.New(m)}, false)
	for i := range s.X {
		if s.X[i] < 0 || s.X[i] >= s.Lx || s.Y[i] < 0 || s.Y[i] >= s.Ly || s.Z[i] < 0 || s.Z[i] >= s.Lz {
			t.Fatalf("atom %d escaped the box: (%g,%g,%g)", i, s.X[i], s.Y[i], s.Z[i])
		}
	}
}
