package comd

import (
	"fmt"
	"math"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/cppamp"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/models/openacc"
	"hetbench/internal/models/opencl"
	"hetbench/internal/models/openmp"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// rebuildEvery is the link-cell redistribution interval in steps. Atoms
// move ≈ v·dt·rebuildEvery ≈ 1e-3 σ between rebuilds, far below the cell
// slack, so the force computation remains exact.
const rebuildEvery = 10

// Problem couples a configuration with a precision.
type Problem struct {
	Cfg       Config
	Precision timing.Precision
}

// NewProblem validates and wraps a configuration.
func NewProblem(cfg Config, prec timing.Precision) *Problem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Problem{Cfg: cfg, Precision: prec}
}

type arrayGroup struct {
	name  string
	bytes int64
}

func (p *Problem) groups(s *State) []arrayGroup {
	n := int64(len(s.X))
	nc := int64(s.numCells())
	elt := int64(appcore.EltBytes(p.Precision))
	return []arrayGroup{
		{"comd.pos", 3 * n * elt},
		{"comd.vel", 3 * n * elt},
		{"comd.force", 4 * n * elt}, // forces + per-atom PE
		{"comd.cells", (2*n + nc + 1 + 27*nc) * 4},
	}
}

// bodies builds the three kernel bodies. tiled selects the LDS-staged
// force tally (OpenCL/C++ AMP); the flat form re-reads every neighbor from
// global memory (all OpenACC can express, and the OpenMP baseline).
func (p *Problem) bodies(s *State, tiled bool) (force, velHalf, position func(*exec.WorkItem)) {
	elt := appcore.EltBytes(p.Precision)
	n := len(s.X)
	// Average atoms per cell: the LDS reuse factor for the tiled form.
	reuse := float64(n) / float64(s.numCells())
	if reuse < 1 {
		reuse = 1
	}
	if reuse > cellsKMax {
		reuse = cellsKMax
	}

	// Un-tiled gathers issue one scattered vector load per neighbor, and
	// lane divergence makes the hardware replay each such instruction
	// several times; staging the cell's atoms through the LDS (tiles)
	// turns them into coalesced loads. This is the mechanism behind the
	// paper's "exposing parallelism in the form of tiles improved the
	// performance of CoMD by almost 3×".
	const divergenceReplay = 3.0
	force = func(w *exec.WorkItem) {
		i := w.Global
		fx, fy, fz, pe, visited := s.ljForceAtom(i)
		s.Fx[i], s.Fy[i], s.Fz[i], s.PE[i] = fx, fy, fz, pe
		flops := float64(visited)*14 + 30
		sp, dp := appcore.Flops(p.Precision, flops)
		loads := float64(visited) * 3 * elt
		instrs := float64(visited)*18 + 40
		var lds float64
		if tiled {
			// Neighbor positions staged once per tile and reused.
			lds = loads
			loads = loads/reuse + 8*elt
		} else {
			instrs *= divergenceReplay
		}
		w.Tally(exec.Counters{
			SPFlops: sp, DPFlops: dp,
			LoadBytes:  loads,
			StoreBytes: 4 * elt,
			LDSBytes:   lds,
			Instrs:     instrs,
		})
	}
	dt := dtStep
	velHalf = func(w *exec.WorkItem) {
		i := w.Global
		s.Vx[i] += 0.5 * dt * s.Fx[i]
		s.Vy[i] += 0.5 * dt * s.Fy[i]
		s.Vz[i] += 0.5 * dt * s.Fz[i]
		sp, dp := appcore.Flops(p.Precision, 9)
		w.Tally(exec.Counters{SPFlops: sp, DPFlops: dp, LoadBytes: 6 * elt, StoreBytes: 3 * elt, Instrs: 16})
	}
	position = func(w *exec.WorkItem) {
		i := w.Global
		wrap := func(x, l float64) float64 {
			x = math.Mod(x, l)
			if x < 0 {
				x += l
			}
			return x
		}
		s.X[i] = wrap(s.X[i]+dt*s.Vx[i], s.Lx)
		s.Y[i] = wrap(s.Y[i]+dt*s.Vy[i], s.Ly)
		s.Z[i] = wrap(s.Z[i]+dt*s.Vz[i], s.Lz)
		sp, dp := appcore.Flops(p.Precision, 12)
		w.Tally(exec.Counters{SPFlops: sp, DPFlops: dp, LoadBytes: 6 * elt, StoreBytes: 3 * elt, Instrs: 24})
	}
	return force, velHalf, position
}

// driver abstracts per-model launching and the periodic cell re-upload.
type driver interface {
	launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem))
	uploadCells(bytes int64)
}

type ompDriver struct{ rt *openmp.Runtime }

func (d *ompDriver) launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) {
	d.rt.Launch(spec, n, functional, body)
}
func (d *ompDriver) uploadCells(int64) {}

type clDriver struct {
	q     *opencl.Queue
	cells *opencl.Buffer
}

func (d *clDriver) launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) {
	d.q.LaunchFunc(spec, n, functional, body)
}
func (d *clDriver) uploadCells(int64) { d.q.EnqueueWriteBuffer(d.cells) }

type ampDriver struct {
	rt    *cppamp.Runtime
	views []*cppamp.ArrayView
	cells *cppamp.ArrayView
}

func (d *ampDriver) launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) {
	d.rt.Launch(spec, cppamp.NewExtent(n), d.views, functional, body)
}
func (d *ampDriver) uploadCells(int64) { d.cells.HostWrite() } // restaged at next launch

type accDriver struct{ rt *openacc.Runtime }

func (d *accDriver) launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) {
	d.rt.Launch(spec, n, nil, functional, body)
}
func (d *accDriver) uploadCells(bytes int64) { d.rt.UpdateDevice("comd.cells", bytes) }

// run executes the velocity-Verlet loop under the given driver. Each
// timestep is wrapped in an iteration span on the machine's tracer.
func (p *Problem) run(m *sim.Machine, s *State, specs map[string]modelapi.KernelSpec, d driver, tiled bool) {
	force, velHalf, position := p.bodies(s, tiled)
	n := len(s.X)
	fn := p.Cfg.functionalIters()
	cellBytes := p.groups(s)[3].bytes

	// Initial forces.
	d.launch(specs[KForce], n, true, force)
	for it := 0; it < p.Cfg.Iters; it++ {
		functional := it < fn
		sp := m.StartIteration(it)
		d.launch(specs[KVelocity], n, functional, velHalf)
		d.launch(specs[KPosition], n, functional, position)
		if functional && it%rebuildEvery == rebuildEvery-1 {
			s.RebuildCells()
			d.uploadCells(cellBytes)
		}
		d.launch(specs[KForce], n, functional, force)
		d.launch(specs[KVelocity], n, functional, velHalf)
		sp.End()
	}
}

func (p *Problem) result(m *sim.Machine, model modelapi.Name, s *State) appcore.Result {
	return appcore.Result{
		App: AppName, Model: model, Machine: m.Name(), Precision: p.Precision,
		ElapsedNs: m.ElapsedNs(), KernelNs: m.KernelNs(), TransferNs: m.TransferNs(), FaultNs: m.FaultNs(),
		Checksum: s.TotalEnergy(), Kernels: 3,
	}
}

// RunOpenMP is the 4-core CPU baseline (flat force loop).
func (p *Problem) RunOpenMP(m *sim.Machine) appcore.Result {
	m.ResetClock()
	s := NewState(p.Cfg)
	p.run(m, s, s.Specs(m, p.Precision), &ompDriver{rt: openmp.New(m)}, false)
	return p.result(m, modelapi.OpenMP, s)
}

// RunOpenCL stages atoms once and uses the tiled, LDS-staged force kernel.
func (p *Problem) RunOpenCL(m *sim.Machine) appcore.Result {
	m.ResetClock()
	s := NewState(p.Cfg)
	ctx := opencl.NewContext(m)
	q := ctx.NewQueue()
	var cells *opencl.Buffer
	for _, g := range p.groups(s) {
		buf := ctx.CreateBuffer(g.name, g.bytes)
		q.EnqueueWriteBuffer(buf)
		if g.name == "comd.cells" {
			cells = buf
		}
	}
	p.run(m, s, s.Specs(m, p.Precision), &clDriver{q: q, cells: cells}, true)
	q.EnqueueReadBuffer(ctx.CreateBuffer("comd.force", p.groups(s)[2].bytes))
	q.Finish()
	return p.result(m, modelapi.OpenCL, s)
}

// RunOpenCLFlat is the un-tiled OpenCL variant (no LDS staging), kept for
// the Section VI-C tiling ablation.
func (p *Problem) RunOpenCLFlat(m *sim.Machine) appcore.Result {
	m.ResetClock()
	s := NewState(p.Cfg)
	ctx := opencl.NewContext(m)
	q := ctx.NewQueue()
	var cells *opencl.Buffer
	for _, g := range p.groups(s) {
		buf := ctx.CreateBuffer(g.name, g.bytes)
		q.EnqueueWriteBuffer(buf)
		if g.name == "comd.cells" {
			cells = buf
		}
	}
	p.run(m, s, s.Specs(m, p.Precision), &clDriver{q: q, cells: cells}, false)
	return p.result(m, modelapi.OpenCL, s)
}

// RunCppAMP uses tile_static staging for the force kernel (the 3×
// improvement the paper credits to tiling, Section VI-C).
func (p *Problem) RunCppAMP(m *sim.Machine) appcore.Result {
	m.ResetClock()
	s := NewState(p.Cfg)
	rt := cppamp.New(m)
	var views []*cppamp.ArrayView
	var cells *cppamp.ArrayView
	for _, g := range p.groups(s) {
		v := rt.NewArrayView(g.name, g.bytes)
		views = append(views, v)
		if g.name == "comd.cells" {
			cells = v
		}
	}
	p.run(m, s, s.Specs(m, p.Precision), &ampDriver{rt: rt, views: views, cells: cells}, true)
	views[2].Synchronize() // forces + energies
	return p.result(m, modelapi.CppAMP, s)
}

// RunOpenACC annotates the flat loops; the compiler cannot tile or use the
// LDS (Figure 11), and the irregular force loop falls back to mostly
// scalar code (Section VI-A's CoMD result).
func (p *Problem) RunOpenACC(m *sim.Machine) appcore.Result {
	m.ResetClock()
	s := NewState(p.Cfg)
	rt := openacc.New(m)
	var clauses []openacc.Clause
	for _, g := range p.groups(s) {
		clauses = append(clauses, openacc.Copy(g.name, g.bytes))
	}
	region := rt.Data(clauses...)
	p.run(m, s, s.Specs(m, p.Precision), &accDriver{rt: rt}, false)
	region.End()
	return p.result(m, modelapi.OpenACC, s)
}

// Run dispatches by model name, wrapping the whole run in a trace span.
func (p *Problem) Run(m *sim.Machine, model modelapi.Name) appcore.Result {
	m.ResetClock()
	sp := m.StartRun(AppName + "/" + string(model))
	defer sp.End()
	switch model {
	case modelapi.OpenMP:
		return p.RunOpenMP(m)
	case modelapi.OpenCL:
		return p.RunOpenCL(m)
	case modelapi.CppAMP:
		return p.RunCppAMP(m)
	case modelapi.OpenACC:
		return p.RunOpenACC(m)
	default:
		panic(fmt.Sprintf("comd: no implementation for %s", model))
	}
}
