package lulesh

import (
	"fmt"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/cppamp"
	"hetbench/internal/models/hc"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/models/openacc"
	"hetbench/internal/models/opencl"
	"hetbench/internal/models/openmp"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// AppName identifies LULESH in results.
const AppName = "LULESH"

// Problem is a generated Sedov instance ready to run under any model.
type Problem struct {
	Cfg       Config
	Precision timing.Precision
	Mesh      *Mesh
}

// NewProblem builds the mesh for a configuration.
func NewProblem(cfg Config, prec timing.Precision) *Problem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Problem{Cfg: cfg, Precision: prec, Mesh: NewMesh(cfg.S)}
}

// ---------------------------------------------------------------------
// Data groups: the device allocations each implementation moves around.

type arrayGroup struct {
	name  string
	bytes int64
}

func (p *Problem) groups() []arrayGroup {
	nn, ne := int64(p.Mesh.NumNode), int64(p.Mesh.NumElem)
	elt := int64(appcore.EltBytes(p.Precision))
	nPart := (ne + reduceBlk - 1) / reduceBlk
	return []arrayGroup{
		{"lulesh.nodal", 13 * nn * elt},                      // x,y,z, velocities, accels, forces, mass
		{"lulesh.elem", 22 * ne * elt},                       // e,p,q,v,... and EOS temporaries
		{"lulesh.qgrad", 3 * ne * elt},                       // delv_xi/eta/zeta
		{"lulesh.phi", 3 * ne * elt},                         // limiter outputs
		{"lulesh.corner", 24 * ne * elt},                     // per-corner force scratch
		{"lulesh.connect", (8*ne+nn+1+8*ne+6*ne)*4 + 3*nn*4}, // int32 topology
		{"lulesh.partials", nPart * elt},
	}
}

func (p *Problem) group(name string) arrayGroup {
	for _, g := range p.groups() {
		if g.name == name {
			return g
		}
	}
	panic("lulesh: unknown array group " + name)
}

// ---------------------------------------------------------------------
// Characterization: kernel specs with traits measured on the machine.

// specs builds the per-kernel memory traits by replaying realistic address
// traces (built from the actual mesh connectivity) through the
// accelerator's LLC model.
func (p *Problem) specs(m *sim.Machine) *[NumKernels]modelapi.KernelSpec {
	dev := m.Accelerator()
	elt := int(appcore.EltBytes(p.Precision))
	mesh := p.Mesh
	ne, nn := mesh.NumElem, mesh.NumNode

	// Distinct base addresses per array keep the trace honest about
	// conflict behaviour.
	base := func(i int) uint64 { return uint64(i) * 64 << 20 }

	sampleElems := ne
	if sampleElems > 1<<15 {
		sampleElems = 1 << 15
	}

	// Gather trace: element loop reading 8 nodes from 3 coordinate
	// arrays plus its own element record.
	var gather []uint64
	for e := 0; e < sampleElems; e++ {
		for c := 0; c < 8; c++ {
			n := uint64(mesh.Nodelist[e*8+c])
			gather = append(gather, base(0)+n*uint64(elt))
			gather = append(gather, base(1)+n*uint64(elt))
			gather = append(gather, base(2)+n*uint64(elt))
		}
		gather = append(gather, base(3)+uint64(e)*uint64(elt))
	}
	gMiss, gCoal, _ := appcore.Traits(dev, gather, elt)

	// Node-gather trace (AddNodeForces): node loop reading its corners.
	var nodeGather []uint64
	sampleNodes := nn
	if sampleNodes > 1<<15 {
		sampleNodes = 1 << 15
	}
	for n := 0; n < sampleNodes; n++ {
		lo, hi := mesh.NodeElemStart[n], mesh.NodeElemStart[n+1]
		for i := lo; i < hi; i++ {
			nodeGather = append(nodeGather, base(4)+uint64(mesh.NodeElemCorner[i])*uint64(elt))
		}
	}
	nMiss, nCoal, _ := appcore.Traits(dev, nodeGather, elt)

	// Streaming trace.
	stream := make([]uint64, 1<<16)
	for i := range stream {
		stream[i] = base(5) + uint64(i*elt)
	}
	sMiss, sCoal, _ := appcore.Traits(dev, stream, elt)

	var out [NumKernels]modelapi.KernelSpec
	for id := KernelID(0); id < NumKernels; id++ {
		meta := Kernels[id]
		spec := modelapi.KernelSpec{Name: meta.Name, Class: meta.Class}
		switch {
		case id == KAddNodeForces:
			spec.MissRate, spec.Coalesce = nMiss, nCoal
		case meta.Class == modelapi.Regular:
			spec.MissRate, spec.Coalesce = gMiss, gCoal
		default:
			spec.MissRate, spec.Coalesce = sMiss, sCoal
		}
		out[id] = spec
	}
	return &out
}

// MeasuredTraits reports the aggregate per-access LLC miss rate of the
// application's dominant access patterns on a device — the Table I
// characterization number.
func (p *Problem) MeasuredTraits(m *sim.Machine) (missRate float64) {
	dev := m.Accelerator()
	elt := int(appcore.EltBytes(p.Precision))
	mesh := p.Mesh
	sample := mesh.NumElem
	if sample > 1<<15 {
		sample = 1 << 15
	}
	var trace []uint64
	base := func(i int) uint64 { return uint64(i) * 64 << 20 }
	for e := 0; e < sample; e++ {
		for c := 0; c < 8; c++ {
			n := uint64(mesh.Nodelist[e*8+c])
			trace = append(trace, base(0)+n*uint64(elt))
		}
		trace = append(trace, base(1)+uint64(e)*uint64(elt))
		trace = append(trace, base(2)+uint64(e)*uint64(elt))
	}
	_, _, acc := appcore.Traits(dev, trace, elt)
	return acc
}

// ---------------------------------------------------------------------
// Per-model drivers.

type ompDriver struct {
	rt         *openmp.Runtime
	specs      *[NumKernels]modelapi.KernelSpec
	functional bool
}

func (d *ompDriver) launch(id KernelID, n int, body func(*exec.WorkItem)) {
	d.rt.Launch(d.specs[id], n, d.functional, body)
}
func (d *ompDriver) readback(int64) {}

type clDriver struct {
	q          *opencl.Queue
	specs      *[NumKernels]modelapi.KernelSpec
	partials   *opencl.Buffer
	functional bool
}

func (d *clDriver) launch(id KernelID, n int, body func(*exec.WorkItem)) {
	d.q.LaunchFunc(d.specs[id], n, d.functional, body)
}
func (d *clDriver) readback(int64) { d.q.EnqueueReadBuffer(d.partials) }

type ampDriver struct {
	rt         *cppamp.Runtime
	specs      *[NumKernels]modelapi.KernelSpec
	all        []*cppamp.ArrayView
	qgradViews []*cppamp.ArrayView // the CPU-fallback kernel's capture set
	partials   *cppamp.ArrayView
	fallback   bool // true on machines where the CLAMP bug bites (dGPU)
	functional bool
}

func (d *ampDriver) launch(id KernelID, n int, body func(*exec.WorkItem)) {
	if id == KQRegion && d.fallback {
		// The 28th kernel that CLAMP v0.6 could not compile for the
		// discrete GPU: runs on the CPU, forcing its captured views to
		// round-trip every iteration.
		d.rt.LaunchHostFallback(d.specs[id], n, d.qgradViews, d.functional, body)
		return
	}
	d.rt.Launch(d.specs[id], cppamp.NewExtent(n), d.all, d.functional, body)
}
func (d *ampDriver) readback(int64) { d.partials.Synchronize() }

type accDriver struct {
	rt         *openacc.Runtime
	specs      *[NumKernels]modelapi.KernelSpec
	partBytes  int64
	functional bool
}

func (d *accDriver) launch(id KernelID, n int, body func(*exec.WorkItem)) {
	// Arrays are device-resident via the enclosing data region.
	d.rt.Launch(d.specs[id], n, nil, d.functional, body)
}
func (d *accDriver) readback(bytes int64) { d.rt.UpdateHost("lulesh.partials", bytes) }

// ---------------------------------------------------------------------
// Run functions, one per model.

type runDriver interface {
	driver
	setFunctional(bool)
}

func (d *ompDriver) setFunctional(f bool) { d.functional = f }
func (d *clDriver) setFunctional(f bool)  { d.functional = f }
func (d *ampDriver) setFunctional(f bool) { d.functional = f }
func (d *accDriver) setFunctional(f bool) { d.functional = f }

// iterate runs the timestep loop: the leading FunctionalIters steps
// execute the physics, the rest replay measured kernel costs. Each
// timestep is wrapped in an iteration span on the machine's tracer.
func (p *Problem) iterate(m *sim.Machine, st *stepper, d runDriver) {
	fn := p.Cfg.functionalIters()
	for it := 0; it < p.Cfg.Iters; it++ {
		d.setFunctional(it < fn)
		sp := m.StartIteration(it)
		st.step(d)
		sp.End()
	}
}

func (p *Problem) result(m *sim.Machine, model modelapi.Name, s *State) appcore.Result {
	return appcore.Result{
		App: AppName, Model: model, Machine: m.Name(), Precision: p.Precision,
		ElapsedNs: m.ElapsedNs(), KernelNs: m.KernelNs(), TransferNs: m.TransferNs(), FaultNs: m.FaultNs(),
		Checksum: s.TotalEnergy(), Kernels: int(NumKernels),
	}
}

// RunOpenMP runs the 4-core CPU baseline.
func (p *Problem) RunOpenMP(m *sim.Machine) appcore.Result {
	m.ResetClock()
	s := NewState(p.Mesh)
	st := newStepper(s, p.Precision)
	d := &ompDriver{rt: openmp.New(m), specs: p.specs(m)}
	p.iterate(m, st, d)
	return p.result(m, modelapi.OpenMP, s)
}

// RunOpenCL stages the state explicitly, runs 28 NDRange launches per
// iteration, reads the small constraint partials each step and the state
// once at the end — the hand-tuned data movement the paper credits for
// OpenCL's discrete-GPU wins.
func (p *Problem) RunOpenCL(m *sim.Machine) appcore.Result {
	m.ResetClock()
	s := NewState(p.Mesh)
	st := newStepper(s, p.Precision)
	ctx := opencl.NewContext(m).WithCoexec()
	q := ctx.NewQueue()
	ctx.Bind("lulesh.e", s.E)

	var partials *opencl.Buffer
	for _, g := range p.groups() {
		buf := ctx.CreateBuffer(g.name, g.bytes)
		switch g.name {
		case "lulesh.corner":
			// device scratch: allocated, never copied
		case "lulesh.partials":
			partials = buf
		default:
			q.EnqueueWriteBuffer(buf)
		}
	}
	d := &clDriver{q: q, specs: p.specs(m), partials: partials}
	p.iterate(m, st, d)
	// Final results home.
	q.EnqueueReadBuffer(ctx.CreateBuffer("lulesh.elem", p.group("lulesh.elem").bytes))
	q.EnqueueReadBuffer(ctx.CreateBuffer("lulesh.nodal", p.group("lulesh.nodal").bytes))
	q.Finish()
	return p.result(m, modelapi.OpenCL, s)
}

// RunCppAMP wraps the state in array_views. On the APU everything is
// zero-copy; on the discrete GPU the CLAMP compiler bug forces the
// monotonic-Q limiter kernel onto the CPU, and its captured views
// round-trip every iteration (Section VI-A's LULESH discussion).
func (p *Problem) RunCppAMP(m *sim.Machine) appcore.Result {
	m.ResetClock()
	s := NewState(p.Mesh)
	st := newStepper(s, p.Precision)
	rt := cppamp.New(m).WithCoexec()
	rt.Bind("lulesh.e", s.E)

	views := map[string]*cppamp.ArrayView{}
	var all []*cppamp.ArrayView
	for _, g := range p.groups() {
		v := rt.NewArrayView(g.name, g.bytes)
		views[g.name] = v
		all = append(all, v)
	}
	d := &ampDriver{
		rt:         rt,
		specs:      p.specs(m),
		all:        all,
		qgradViews: []*cppamp.ArrayView{views["lulesh.qgrad"], views["lulesh.phi"]},
		partials:   views["lulesh.partials"],
		fallback:   !m.Unified(),
	}
	p.iterate(m, st, d)
	views["lulesh.elem"].Synchronize()
	views["lulesh.nodal"].Synchronize()
	return p.result(m, modelapi.CppAMP, s)
}

// RunOpenACC uses a structured data region around the whole timestep loop
// (the hand-tuned form the paper's implementations used) with a per-
// iteration `update host` of the constraint partials.
func (p *Problem) RunOpenACC(m *sim.Machine) appcore.Result {
	m.ResetClock()
	s := NewState(p.Mesh)
	st := newStepper(s, p.Precision)
	rt := openacc.New(m).WithCoexec()
	rt.Bind("lulesh.e", s.E)

	var clauses []openacc.Clause
	for _, g := range p.groups() {
		switch g.name {
		case "lulesh.corner", "lulesh.qgrad", "lulesh.phi", "lulesh.partials":
			clauses = append(clauses, openacc.Create(g.name, g.bytes))
		case "lulesh.connect":
			clauses = append(clauses, openacc.Copyin(g.name, g.bytes))
		default:
			clauses = append(clauses, openacc.Copy(g.name, g.bytes))
		}
	}
	region := rt.Data(clauses...)
	d := &accDriver{rt: rt, specs: p.specs(m), partBytes: p.group("lulesh.partials").bytes}
	p.iterate(m, st, d)
	region.End()
	return p.result(m, modelapi.OpenACC, s)
}

// hcDriver launches through the Heterogeneous Compute runtime: single
// source like AMP, but explicit raw-pointer data management like OpenCL,
// plus async staging that overlaps the first timesteps.
type hcDriver struct {
	rt         *hc.Runtime
	specs      *[NumKernels]modelapi.KernelSpec
	partBytes  int64
	functional bool
}

func (d *hcDriver) launch(id KernelID, n int, body func(*exec.WorkItem)) {
	d.rt.LaunchCached(d.specs[id], n, d.functional, body)
}
func (d *hcDriver) readback(bytes int64) { d.rt.CopyBack("lulesh.partials", bytes) }
func (d *hcDriver) setFunctional(f bool) { d.functional = f }

// RunHC is the Section VII model: the initial state upload is
// asynchronous and hides behind the first timesteps' kernels, the
// per-iteration readback is explicit and minimal, and no view semantics
// ever re-copy the state. It is the "best of both worlds" configuration
// the paper closes with.
func (p *Problem) RunHC(m *sim.Machine) appcore.Result {
	m.ResetClock()
	s := NewState(p.Mesh)
	st := newStepper(s, p.Precision)
	rt := hc.New(m)
	for _, g := range p.groups() {
		switch g.name {
		case "lulesh.corner", "lulesh.partials":
			// device scratch
		default:
			rt.CopyAsync(g.name, g.bytes)
		}
	}
	d := &hcDriver{rt: rt, specs: p.specs(m), partBytes: p.group("lulesh.partials").bytes}
	p.iterate(m, st, d)
	rt.Wait()
	rt.CopyBack("lulesh.elem", p.group("lulesh.elem").bytes)
	rt.CopyBack("lulesh.nodal", p.group("lulesh.nodal").bytes)
	r := p.result(m, modelapi.HC, s)
	return r
}

// Run dispatches by model name, wrapping the whole run in a trace span.
func (p *Problem) Run(m *sim.Machine, model modelapi.Name) appcore.Result {
	m.ResetClock()
	sp := m.StartRun(AppName + "/" + string(model))
	defer sp.End()
	switch model {
	case modelapi.OpenMP:
		return p.RunOpenMP(m)
	case modelapi.OpenCL:
		return p.RunOpenCL(m)
	case modelapi.CppAMP:
		return p.RunCppAMP(m)
	case modelapi.OpenACC:
		return p.RunOpenACC(m)
	default:
		panic(fmt.Sprintf("lulesh: no implementation for %s", model))
	}
}
