package lulesh

import (
	"math"
	"testing"
	"testing/quick"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/models/openmp"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func smallCfg() Config { return Config{S: 8, Iters: 10} }

func TestMeshConnectivity(t *testing.T) {
	m := NewMesh(4)
	if m.NumElem != 64 || m.NumNode != 125 {
		t.Fatalf("mesh sizes = %d elems / %d nodes, want 64/125", m.NumElem, m.NumNode)
	}
	// Every element has 8 distinct nodes in range.
	for e := 0; e < m.NumElem; e++ {
		seen := map[int32]bool{}
		for c := 0; c < 8; c++ {
			n := m.Nodelist[e*8+c]
			if n < 0 || int(n) >= m.NumNode {
				t.Fatalf("elem %d corner %d: node %d out of range", e, c, n)
			}
			if seen[n] {
				t.Fatalf("elem %d repeats node %d", e, n)
			}
			seen[n] = true
		}
	}
	// CSR adjacency covers all 8·NumElem corners exactly once.
	if got := int(m.NodeElemStart[m.NumNode]); got != 8*m.NumElem {
		t.Errorf("corner adjacency covers %d, want %d", got, 8*m.NumElem)
	}
	// The interior node touches 8 elements, the origin corner node 1.
	if deg := m.NodeElemStart[1] - m.NodeElemStart[0]; deg != 1 {
		t.Errorf("corner node degree = %d, want 1", deg)
	}
	// Neighbors: interior element has 6 distinct neighbors; corner
	// element 0 has itself on the -x,-y,-z sides.
	if m.Lxim[0] != 0 || m.Letam[0] != 0 || m.Lzetam[0] != 0 {
		t.Error("boundary element must neighbor itself on outer faces")
	}
	if m.Lxip[0] != 1 {
		t.Errorf("elem 0 +x neighbor = %d, want 1", m.Lxip[0])
	}
	// Symmetry sets: (S+1)² nodes each.
	if len(m.SymmX) != 25 || len(m.SymmY) != 25 || len(m.SymmZ) != 25 {
		t.Errorf("symmetry set sizes %d/%d/%d, want 25", len(m.SymmX), len(m.SymmY), len(m.SymmZ))
	}
}

func TestHexVolumeUnitCube(t *testing.T) {
	px := [8]float64{0, 1, 1, 0, 0, 1, 1, 0}
	py := [8]float64{0, 0, 1, 1, 0, 0, 1, 1}
	pz := [8]float64{0, 0, 0, 0, 1, 1, 1, 1}
	if v := hexVolume(&px, &py, &pz); math.Abs(v-1) > 1e-12 {
		t.Errorf("unit cube volume = %g, want 1", v)
	}
	// Scaling by 2 in x doubles the volume.
	for i := range px {
		px[i] *= 2
	}
	if v := hexVolume(&px, &py, &pz); math.Abs(v-2) > 1e-12 {
		t.Errorf("stretched volume = %g, want 2", v)
	}
}

func TestQuickHexVolumeScaling(t *testing.T) {
	// Property: scaling all coordinates by s scales volume by s³.
	f := func(seed uint8) bool {
		s := 0.5 + float64(seed)/64.0
		px := [8]float64{0, 1, 1, 0, 0, 1, 1, 0}
		py := [8]float64{0, 0, 1, 1, 0, 0, 1, 1}
		pz := [8]float64{0, 0, 0, 0, 1, 1, 1, 1}
		v1 := hexVolume(&px, &py, &pz)
		for i := 0; i < 8; i++ {
			px[i] *= s
			py[i] *= s
			pz[i] *= s
		}
		v2 := hexVolume(&px, &py, &pz)
		return math.Abs(v2-v1*s*s*s) < 1e-9*math.Abs(v2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInitialState(t *testing.T) {
	s := NewState(NewMesh(6))
	// Total mass = domain volume = 1 (density 1 on the unit cube).
	mass := 0.0
	for _, m := range s.NodalMass {
		mass += m
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("total nodal mass = %g, want 1", mass)
	}
	// Reference volumes sum to 1.
	vol := 0.0
	for _, v := range s.Volo {
		vol += v
	}
	if math.Abs(vol-1) > 1e-9 {
		t.Errorf("total reference volume = %g, want 1", vol)
	}
	// The blast energy sits in element 0 only.
	if s.E[0] <= 0 {
		t.Error("no deposit in element 0")
	}
	for e := 1; e < len(s.E); e++ {
		if s.E[e] != 0 {
			t.Fatalf("element %d has initial energy", e)
		}
	}
	if s.Dt <= 0 {
		t.Error("non-positive initial dt")
	}
}

func TestPhysicsStability(t *testing.T) {
	p := NewProblem(Config{S: 8, Iters: 50}, timing.Double)
	m := sim.NewAPU()
	s := NewState(p.Mesh)
	e0 := s.TotalEnergy()
	st := newStepper(s, timing.Double)
	d := &ompDriver{rt: openmp.New(m), specs: p.specs(m), functional: true}
	for i := 0; i < 50; i++ {
		st.step(d)
	}
	// Volumes stay positive and finite.
	for e, v := range s.V {
		if !(v > 0) || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("element %d volume = %g after 50 steps", e, v)
		}
	}
	// The shock does work: kinetic energy appears.
	ke := 0.0
	for n := range s.Xd {
		ke += 0.5 * s.NodalMass[n] * (s.Xd[n]*s.Xd[n] + s.Yd[n]*s.Yd[n] + s.Zd[n]*s.Zd[n])
	}
	if ke <= 0 {
		t.Error("no kinetic energy after 50 steps; blast did not move")
	}
	// Total energy drift bounded (the reduced scheme is dissipative but
	// must not blow up or vanish).
	e1 := s.TotalEnergy()
	if e1 <= 0 || e1 > 3*e0 || e1 < e0/3 {
		t.Errorf("total energy drifted %g → %g", e0, e1)
	}
	// Time advanced.
	if s.Time <= 0 {
		t.Error("simulation time did not advance")
	}
}

func TestAllModelsAgreeAndCount28Kernels(t *testing.T) {
	p := NewProblem(smallCfg(), timing.Double)
	var ref float64
	for i, model := range []modelapi.Name{modelapi.OpenMP, modelapi.OpenCL, modelapi.CppAMP, modelapi.OpenACC} {
		for _, mk := range []func() *sim.Machine{sim.NewAPU, sim.NewDGPU} {
			m := mk()
			r := p.Run(m, model)
			if r.Kernels != 28 {
				t.Errorf("%s: kernels = %d, want 28 (Table I)", model, r.Kernels)
			}
			if i == 0 {
				ref = r.Checksum
			} else if math.Abs(r.Checksum-ref) > 1e-9*math.Abs(ref) {
				t.Errorf("%s on %s: checksum %g, want %g", model, m.Name(), r.Checksum, ref)
			}
			if r.ElapsedNs <= 0 {
				t.Errorf("%s on %s: no time charged", model, m.Name())
			}
		}
	}
}

// Figure 9b shape: on the discrete GPU, OpenCL wins and C++ AMP suffers
// from the CPU-fallback kernel's per-iteration round trips.
func TestDGPUShapeOpenCLBestAMPWorst(t *testing.T) {
	p := NewProblem(Config{S: 16, Iters: 8}, timing.Double)
	base := p.RunOpenMP(sim.NewAPU())
	cl := p.RunOpenCL(sim.NewDGPU())
	amp := p.RunCppAMP(sim.NewDGPU())
	acc := p.RunOpenACC(sim.NewDGPU())

	sCL, sAMP, sACC := cl.SpeedupOver(base), amp.SpeedupOver(base), acc.SpeedupOver(base)
	if !(sCL > sACC && sACC > sAMP) {
		t.Errorf("dGPU LULESH ordering: OpenCL %.2f, OpenACC %.2f, AMP %.2f; want CL > ACC > AMP", sCL, sACC, sAMP)
	}
	if amp.TransferNs <= cl.TransferNs {
		t.Error("AMP fallback did not inflate transfer time over OpenCL")
	}
}

// Figure 8b shape: on the APU the three models are much closer; AMP does
// not pay the fallback penalty (unified memory).
func TestAPUShapeModelsClose(t *testing.T) {
	p := NewProblem(Config{S: 16, Iters: 8}, timing.Double)
	cl := p.RunOpenCL(sim.NewAPU())
	amp := p.RunCppAMP(sim.NewAPU())
	acc := p.RunOpenACC(sim.NewAPU())
	if amp.TransferNs != 0 || acc.TransferNs != 0 || cl.TransferNs != 0 {
		t.Error("APU charged transfer time")
	}
	// AMP within 2.5× of OpenCL on the APU (paper: "similar performance").
	if r := amp.ElapsedNs / cl.ElapsedNs; r > 2.5 {
		t.Errorf("APU AMP/OpenCL = %.2f, want close", r)
	}
}

func TestReplayedIterationsMatchFunctionalTiming(t *testing.T) {
	// A run with FunctionalIters=2 must charge the same simulated time
	// per iteration as a fully functional run (same costs replayed).
	full := NewProblem(Config{S: 6, Iters: 6}, timing.Double)
	fast := NewProblem(Config{S: 6, Iters: 6, FunctionalIters: 2}, timing.Double)
	tFull := full.RunOpenCL(sim.NewDGPU()).ElapsedNs
	tFast := fast.RunOpenCL(sim.NewDGPU()).ElapsedNs
	if math.Abs(tFull-tFast) > 0.02*tFull {
		t.Errorf("replayed run time %g differs from functional %g by >2%%", tFast, tFull)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{{S: 1, Iters: 1}, {S: 8, Iters: 0}, {S: 8, Iters: 1, FunctionalIters: -1}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if got := (Config{S: 8, Iters: 5}).functionalIters(); got != 5 {
		t.Errorf("default functional iters = %d, want all (5)", got)
	}
	if got := (Config{S: 8, Iters: 5, FunctionalIters: 9}).functionalIters(); got != 5 {
		t.Errorf("clamped functional iters = %d, want 5", got)
	}
}

func TestMeasuredTraitsInTable1Band(t *testing.T) {
	p := NewProblem(Config{S: 24, Iters: 1}, timing.Double)
	miss := p.MeasuredTraits(sim.NewDGPU())
	// Table I: LULESH LLC miss rate 11% — good locality. Accept a band.
	if miss < 0.01 || miss > 0.30 {
		t.Errorf("LULESH measured LLC miss rate = %.2f, want low (Table I: 0.11)", miss)
	}
}
