// Package lulesh implements a simplified but structurally faithful port of
// the LULESH shock-hydrodynamics proxy application: the spherical Sedov
// blast problem solved with staggered-grid Lagrange hydrodynamics on a 3-D
// hexahedral mesh, decomposed into the same 28 device kernels per timestep
// that the paper reports in Table I.
//
// The physics is a reduced scheme (pressure-gradient nodal forces, viscous
// hourglass damping, scalar monotonic artificial viscosity, ideal-gas EOS
// solved with the three-pass energy/pressure iteration, Courant/hydro time
// constraints), chosen so that every kernel does the real class of work —
// 8-node gathers, corner-force scatters resolved as node-centric gathers,
// streaming EOS sweeps, min-reductions — that drives LULESH's measured
// characteristics (low LLC miss rate, balanced compute/bandwidth demand).
package lulesh

import (
	"fmt"
	"math"
)

// Config sizes one run: `-s` edge elements and `-i` iterations, matching
// the paper's command line `./LULESH -s 100 -i 100`.
type Config struct {
	// S is the mesh edge in elements (S³ elements, (S+1)³ nodes).
	S int
	// Iters is the number of timesteps.
	Iters int
	// FunctionalIters is how many leading iterations execute
	// functionally; later iterations replay measured kernel costs
	// (identical per-iteration work) to keep paper-size runs tractable.
	// Zero means all iterations are functional.
	FunctionalIters int
}

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if c.S < 2 {
		return fmt.Errorf("lulesh: S=%d must be ≥2", c.S)
	}
	if c.Iters < 1 {
		return fmt.Errorf("lulesh: Iters=%d must be ≥1", c.Iters)
	}
	if c.FunctionalIters < 0 {
		return fmt.Errorf("lulesh: FunctionalIters=%d must be ≥0", c.FunctionalIters)
	}
	return nil
}

func (c Config) functionalIters() int {
	if c.FunctionalIters == 0 || c.FunctionalIters > c.Iters {
		return c.Iters
	}
	return c.FunctionalIters
}

// Mesh is the immutable connectivity of an S³ hex mesh.
type Mesh struct {
	S       int
	NumElem int
	NumNode int
	// Nodelist holds the 8 node ids of each element, standard hex
	// ordering (local node n at (i+dx, j+dy, k+dz)).
	Nodelist []int32
	// Node→(element,corner) adjacency in CSR form: for node n, the
	// corners are NodeElemCorner[NodeElemStart[n]:NodeElemStart[n+1]],
	// each encoded as elem*8 + corner.
	NodeElemStart  []int32
	NodeElemCorner []int32
	// Element face neighbors along -x,+x,-y,+y,-z,+z (own index at the
	// boundary), used by the monotonic Q limiter.
	Lxim, Lxip, Letam, Letap, Lzetam, Lzetap []int32
	// Symmetry-plane node sets (x=0, y=0, z=0 faces of the domain).
	SymmX, SymmY, SymmZ []int32
}

// corner offsets of the standard hex ordering.
var cornerDX = [8]int{0, 1, 1, 0, 0, 1, 1, 0}
var cornerDY = [8]int{0, 0, 1, 1, 0, 0, 1, 1}
var cornerDZ = [8]int{0, 0, 0, 0, 1, 1, 1, 1}

// NewMesh builds the connectivity for an s-edge cube.
func NewMesh(s int) *Mesh {
	if s < 2 {
		panic(fmt.Sprintf("lulesh: mesh edge %d must be ≥2", s))
	}
	np := s + 1
	m := &Mesh{
		S:       s,
		NumElem: s * s * s,
		NumNode: np * np * np,
	}
	nodeIdx := func(i, j, k int) int32 { return int32((k*np+j)*np + i) }
	elemIdx := func(i, j, k int) int32 { return int32((k*s+j)*s + i) }

	m.Nodelist = make([]int32, 8*m.NumElem)
	for k := 0; k < s; k++ {
		for j := 0; j < s; j++ {
			for i := 0; i < s; i++ {
				e := int(elemIdx(i, j, k))
				for c := 0; c < 8; c++ {
					m.Nodelist[e*8+c] = nodeIdx(i+cornerDX[c], j+cornerDY[c], k+cornerDZ[c])
				}
			}
		}
	}

	// Node→corner adjacency (CSR).
	counts := make([]int32, m.NumNode+1)
	for _, n := range m.Nodelist {
		counts[n+1]++
	}
	m.NodeElemStart = make([]int32, m.NumNode+1)
	for i := 0; i < m.NumNode; i++ {
		m.NodeElemStart[i+1] = m.NodeElemStart[i] + counts[i+1]
	}
	m.NodeElemCorner = make([]int32, 8*m.NumElem)
	fill := make([]int32, m.NumNode)
	for e := 0; e < m.NumElem; e++ {
		for c := 0; c < 8; c++ {
			n := m.Nodelist[e*8+c]
			m.NodeElemCorner[m.NodeElemStart[n]+fill[n]] = int32(e*8 + c)
			fill[n]++
		}
	}

	// Face neighbors.
	m.Lxim = make([]int32, m.NumElem)
	m.Lxip = make([]int32, m.NumElem)
	m.Letam = make([]int32, m.NumElem)
	m.Letap = make([]int32, m.NumElem)
	m.Lzetam = make([]int32, m.NumElem)
	m.Lzetap = make([]int32, m.NumElem)
	at := func(i, j, k, di, dj, dk int) int32 {
		ni, nj, nk := i+di, j+dj, k+dk
		if ni < 0 || ni >= s || nj < 0 || nj >= s || nk < 0 || nk >= s {
			return elemIdx(i, j, k) // boundary: self
		}
		return elemIdx(ni, nj, nk)
	}
	for k := 0; k < s; k++ {
		for j := 0; j < s; j++ {
			for i := 0; i < s; i++ {
				e := elemIdx(i, j, k)
				m.Lxim[e] = at(i, j, k, -1, 0, 0)
				m.Lxip[e] = at(i, j, k, +1, 0, 0)
				m.Letam[e] = at(i, j, k, 0, -1, 0)
				m.Letap[e] = at(i, j, k, 0, +1, 0)
				m.Lzetam[e] = at(i, j, k, 0, 0, -1)
				m.Lzetap[e] = at(i, j, k, 0, 0, +1)
			}
		}
	}

	// Symmetry planes.
	for k := 0; k < np; k++ {
		for j := 0; j < np; j++ {
			m.SymmX = append(m.SymmX, nodeIdx(0, j, k))
			m.SymmY = append(m.SymmY, nodeIdx(j, 0, k))
			m.SymmZ = append(m.SymmZ, nodeIdx(j, k, 0))
		}
	}
	return m
}

// State is the mutable simulation state: nodal and element fields plus the
// per-kernel temporaries, each of which maps to one device allocation.
type State struct {
	Mesh *Mesh

	// Nodal fields.
	X, Y, Z       []float64 // positions
	Xd, Yd, Zd    []float64 // velocities
	Xdd, Ydd, Zdd []float64 // accelerations
	Fx, Fy, Fz    []float64 // force accumulators
	NodalMass     []float64

	// Element fields.
	E, P, Q       []float64 // energy, pressure, artificial viscosity
	V, Volo, Vnew []float64 // relative volume, reference volume, new volume
	Delv, Vdov    []float64 // volume change, volume derivative / volume
	Arealg        []float64 // characteristic length
	SS            []float64 // sound speed
	ElemMass      []float64

	// Kernel temporaries (device-resident scratch in the GPU ports).
	Sig                       []float64 // stress = -(p+q)
	FxElem, FyElem, FzElem    []float64 // corner forces, 8 per element
	VelAvgX, VelAvgY, VelAvgZ []float64
	DelvXi, DelvEta, DelvZeta []float64 // directional velocity gradients
	PhiXi, PhiEta, PhiZeta    []float64 // monotonic limiters
	EOld, POld, QOld, PHalf   []float64
	DtCour, DtHydro           []float64

	// Time integration.
	Time, Dt float64
}

// NewState initializes the Sedov problem on a unit-cube mesh: uniform
// density 1, cold everywhere, with the blast energy deposited in the
// origin element (the standard LULESH initialization).
func NewState(m *Mesh) *State {
	s := &State{Mesh: m}
	nn, ne := m.NumNode, m.NumElem
	alloc := func(n int) []float64 { return make([]float64, n) }
	s.X, s.Y, s.Z = alloc(nn), alloc(nn), alloc(nn)
	s.Xd, s.Yd, s.Zd = alloc(nn), alloc(nn), alloc(nn)
	s.Xdd, s.Ydd, s.Zdd = alloc(nn), alloc(nn), alloc(nn)
	s.Fx, s.Fy, s.Fz = alloc(nn), alloc(nn), alloc(nn)
	s.NodalMass = alloc(nn)
	s.E, s.P, s.Q = alloc(ne), alloc(ne), alloc(ne)
	s.V, s.Volo, s.Vnew = alloc(ne), alloc(ne), alloc(ne)
	s.Delv, s.Vdov = alloc(ne), alloc(ne)
	s.Arealg, s.SS, s.ElemMass = alloc(ne), alloc(ne), alloc(ne)
	s.Sig = alloc(ne)
	s.FxElem, s.FyElem, s.FzElem = alloc(8*ne), alloc(8*ne), alloc(8*ne)
	s.VelAvgX, s.VelAvgY, s.VelAvgZ = alloc(ne), alloc(ne), alloc(ne)
	s.DelvXi, s.DelvEta, s.DelvZeta = alloc(ne), alloc(ne), alloc(ne)
	s.PhiXi, s.PhiEta, s.PhiZeta = alloc(ne), alloc(ne), alloc(ne)
	s.EOld, s.POld, s.QOld, s.PHalf = alloc(ne), alloc(ne), alloc(ne), alloc(ne)
	s.DtCour, s.DtHydro = alloc(ne), alloc(ne)

	// Unit cube coordinates.
	np := m.S + 1
	h := 1.0 / float64(m.S)
	for k := 0; k < np; k++ {
		for j := 0; j < np; j++ {
			for i := 0; i < np; i++ {
				n := (k*np+j)*np + i
				s.X[n] = float64(i) * h
				s.Y[n] = float64(j) * h
				s.Z[n] = float64(k) * h
			}
		}
	}

	// Volumes and masses.
	for e := 0; e < ne; e++ {
		vol := s.elemVolume(e)
		s.Volo[e] = vol
		s.V[e] = 1
		s.Vnew[e] = 1
		s.ElemMass[e] = vol // density 1
		for c := 0; c < 8; c++ {
			s.NodalMass[m.Nodelist[e*8+c]] += vol / 8
		}
	}

	// Sedov energy deposit in the origin element (LULESH's corner blast,
	// rescaled to the unit cube).
	s.E[0] = 3.948746e-2

	// Initial timestep from the deposit's sound speed, with a generous
	// safety factor; the Courant constraint takes over after step one.
	p0 := (gammaEOS - 1) * s.E[0]
	ss0 := math.Sqrt(gammaEOS * p0)
	s.Dt = 0.02 * h / ss0
	return s
}

// elemVolume computes the (signed, positive for valid meshes) volume of
// element e from current coordinates via the divergence theorem over the
// 12 boundary triangles.
func (s *State) elemVolume(e int) float64 {
	nl := s.Mesh.Nodelist[e*8 : e*8+8]
	var px, py, pz [8]float64
	for c := 0; c < 8; c++ {
		n := nl[c]
		px[c], py[c], pz[c] = s.X[n], s.Y[n], s.Z[n]
	}
	return hexVolume(&px, &py, &pz)
}

// faces of the hex with outward orientation (counter-clockwise from
// outside), standard ordering.
var hexFaces = [6][4]int{
	{0, 3, 2, 1}, // -z
	{4, 5, 6, 7}, // +z
	{0, 1, 5, 4}, // -y
	{2, 3, 7, 6}, // +y
	{0, 4, 7, 3}, // -x
	{1, 2, 6, 5}, // +x
}

// hexVolume returns the volume of a hexahedron given its 8 corner
// coordinates, by the divergence theorem over the boundary: each quad
// face is integrated as the average of its two diagonal triangulations,
// which equals the bilinear-patch integral and — unlike a fixed diagonal
// choice — is exactly symmetric under mirror relabelings (the Sedov
// problem's axis symmetry depends on this).
func hexVolume(px, py, pz *[8]float64) float64 {
	vol := 0.0
	for _, f := range hexFaces {
		for _, tri := range [4][3]int{
			{f[0], f[1], f[2]}, {f[0], f[2], f[3]}, // diagonal 0–2
			{f[1], f[2], f[3]}, {f[1], f[3], f[0]}, // diagonal 1–3
		} {
			a, b, c := tri[0], tri[1], tri[2]
			vol += px[a]*(py[b]*pz[c]-pz[b]*py[c]) -
				py[a]*(px[b]*pz[c]-pz[b]*px[c]) +
				pz[a]*(px[b]*py[c]-py[b]*px[c])
		}
	}
	return vol / 12
}

// TotalEnergy returns internal + kinetic energy, the conservation digest
// used for verification and as the cross-model checksum.
func (s *State) TotalEnergy() float64 {
	internal := 0.0
	for e := range s.E {
		internal += s.E[e]
	}
	kinetic := 0.0
	for n := range s.Xd {
		v2 := s.Xd[n]*s.Xd[n] + s.Yd[n]*s.Yd[n] + s.Zd[n]*s.Zd[n]
		kinetic += 0.5 * s.NodalMass[n] * v2
	}
	return internal + kinetic
}
