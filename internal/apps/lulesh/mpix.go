package lulesh

import (
	"fmt"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/mpix"
	"hetbench/internal/sim"
)

// MPIXResult summarizes a multi-node MPI+OpenCL run.
type MPIXResult struct {
	Ranks int
	// ElapsedNs is the job's elapsed (slowest-rank) time.
	ElapsedNs float64
	// ComputeNs and CommNs split one rank's time.
	ComputeNs, CommNs float64
	// Efficiency is T(1)·1 / (T(P)·P) when a single-rank reference is
	// supplied to Efficiency(); zero otherwise.
	HaloBytes int64
}

// RunMPIX strong-scales the Sedov problem across the cluster with a slab
// decomposition along z — the MPI half of the paper's "MPI+X": each rank
// runs the 28 X-model kernels on its S×S×(S/P) slab, exchanges one ghost
// layer with its face neighbors each timestep, and joins the global
// minimum-timestep allreduce.
//
// Per-rank kernel time comes from replaying the measured global kernel
// costs at 1/P of the items (the kernels are element- or node-parallel,
// so the split is exact up to the surface layers); communication is
// simulated message by message on the cluster fabric.
func (p *Problem) RunMPIX(c *mpix.Cluster) MPIXResult {
	ranks := c.Size()
	if p.Cfg.S%ranks != 0 && ranks > 1 {
		panic(fmt.Sprintf("lulesh: S=%d not divisible into %d slabs", p.Cfg.S, ranks))
	}

	// Record the global problem's launch costs once (functional run).
	rec := sim.NewDGPU()
	rec.EnableCostLog()
	fnCfg := p.Cfg
	fnCfg.Iters, fnCfg.FunctionalIters = 1, 1
	fn := &Problem{Cfg: fnCfg, Precision: p.Precision, Mesh: p.Mesh}
	fn.RunOpenCL(rec)
	log := rec.CostLog()

	// One iteration of per-rank kernel time at 1/P items.
	iter := sim.NewDGPU()
	for _, lc := range log {
		cost := lc.Cost
		cost.Items = (cost.Items + ranks - 1) / ranks
		iter.LaunchKernel(lc.Target, lc.Name, cost)
	}
	iterNs := iter.KernelNs()

	// Ghost layer per face: coordinates + velocities for one node plane
	// plus the q-gradient element plane.
	elt := int64(appcore.EltBytes(p.Precision))
	np := int64(p.Cfg.S + 1)
	haloBytes := 6*np*np*elt + 3*int64(p.Cfg.S)*int64(p.Cfg.S)*elt

	var compute, comm float64
	for it := 0; it < p.Cfg.Iters; it++ {
		before := c.MaxTimeNs()
		for r := 0; r < ranks; r++ {
			c.Rank(r).AdvanceNs(iterNs)
		}
		afterCompute := c.MaxTimeNs()
		// Face exchanges between slab neighbors (non-periodic), in the
		// standard two concurrent phases: even↔odd pairs first, then
		// odd↔even — every rank joins at most one exchange per phase,
		// so the cost does not grow with the rank count.
		for phase := 0; phase < 2; phase++ {
			for r := phase; r+1 < ranks; r += 2 {
				c.Sendrecv(r, r+1, haloBytes)
			}
		}
		// Global dt reduction.
		c.Allreduce(elt)
		after := c.MaxTimeNs()
		compute += afterCompute - before
		comm += after - afterCompute
	}

	return MPIXResult{
		Ranks:     ranks,
		ElapsedNs: c.MaxTimeNs(),
		ComputeNs: compute,
		CommNs:    comm,
		HaloBytes: haloBytes,
	}
}

// Efficiency returns the strong-scaling parallel efficiency of r against
// the single-rank reference: T(1) / (P · T(P)).
func (r MPIXResult) Efficiency(single MPIXResult) float64 {
	if r.ElapsedNs <= 0 || single.ElapsedNs <= 0 {
		return 0
	}
	return single.ElapsedNs / (float64(r.Ranks) * r.ElapsedNs)
}

// CommFraction returns the communication share of the run.
func (r MPIXResult) CommFraction() float64 {
	total := r.ComputeNs + r.CommNs
	if total <= 0 {
		return 0
	}
	return r.CommNs / total
}

// StrongScaling runs the problem at every rank count and returns the
// results (the harness `scaling` experiment).
func (p *Problem) StrongScaling(rankCounts []int, newMachine func() *sim.Machine, fabric mpix.Fabric) []MPIXResult {
	var out []MPIXResult
	for _, n := range rankCounts {
		c := mpix.NewCluster(n, newMachine, fabric)
		out = append(out, p.RunMPIX(c))
	}
	return out
}

// idealSpeedup is a helper for reports: T(1)/T(P).
func idealSpeedup(results []MPIXResult, i int) float64 {
	if len(results) == 0 || results[0].ElapsedNs == 0 || results[i].ElapsedNs == 0 {
		return 0
	}
	return results[0].ElapsedNs / results[i].ElapsedNs
}

// Speedups returns T(1)/T(P) for each entry relative to the first.
func Speedups(results []MPIXResult) []float64 {
	out := make([]float64, len(results))
	for i := range results {
		out[i] = idealSpeedup(results, i)
	}
	return out
}
