package lulesh

import (
	"testing"

	"hetbench/internal/models/mpix"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func TestMPIXStrongScaling(t *testing.T) {
	p := NewProblem(Config{S: 32, Iters: 10, FunctionalIters: 1}, timing.Double)
	results := p.StrongScaling([]int{1, 2, 4, 8}, sim.NewDGPU, mpix.DefaultFabric())
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	sp := Speedups(results)
	// Speedup grows with ranks at these sizes…
	for i := 1; i < len(sp); i++ {
		if sp[i] <= sp[i-1] {
			t.Errorf("speedup not increasing: %v", sp)
			break
		}
	}
	// …but below ideal, with efficiency ≤ 1 and decreasing.
	prevEff := 1.1
	for i, r := range results {
		eff := r.Efficiency(results[0])
		if eff > 1.0001 {
			t.Errorf("ranks=%d: efficiency %.3f > 1", r.Ranks, eff)
		}
		if eff > prevEff+1e-9 {
			t.Errorf("efficiency not monotone: ranks=%d eff=%.3f prev=%.3f", r.Ranks, eff, prevEff)
		}
		prevEff = eff
		if i > 0 && r.CommFraction() <= results[i-1].CommFraction() {
			t.Errorf("comm fraction not growing with ranks: %v then %v",
				results[i-1].CommFraction(), r.CommFraction())
		}
	}
	// Single rank has zero halo traffic time but still the dt reduce is
	// free (log2(1)=0): comm ≈ 0.
	if results[0].CommFraction() > 0.01 {
		t.Errorf("1-rank comm fraction = %.3f, want ≈0", results[0].CommFraction())
	}
}

func TestMPIXPanicsOnIndivisibleSlabs(t *testing.T) {
	p := NewProblem(Config{S: 10, Iters: 2, FunctionalIters: 1}, timing.Double)
	defer func() {
		if recover() == nil {
			t.Error("indivisible slab count did not panic")
		}
	}()
	p.RunMPIX(mpix.NewCluster(3, sim.NewDGPU, mpix.DefaultFabric()))
}

func TestMPIXDegenerateHelpers(t *testing.T) {
	if (MPIXResult{}).Efficiency(MPIXResult{}) != 0 {
		t.Error("degenerate efficiency not 0")
	}
	if (MPIXResult{}).CommFraction() != 0 {
		t.Error("degenerate comm fraction not 0")
	}
	if len(Speedups(nil)) != 0 {
		t.Error("Speedups(nil) not empty")
	}
}
