package lulesh

import (
	"math"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// Material and scheme constants (LULESH defaults, reduced scheme).
const (
	gammaEOS  = 1.4   // ideal-gas gamma
	eMin      = -1e15 // energy floor
	pMin      = 0.0   // pressure floor
	ssMin     = 1e-9  // sound-speed floor squared
	hgCoef    = 0.03  // hourglass damping fraction per step
	qqCoef    = 2.0   // quadratic artificial-viscosity coefficient
	qlCoef    = 0.25  // linear artificial-viscosity coefficient
	cflFactor = 0.45  // Courant safety factor
	dvovMax   = 0.1   // max relative volume change per step
	dtGrowth  = 1.1   // max timestep growth per step
	vCut      = 1e-10 // relative-volume snap-to-one cutoff
	reduceBlk = 64    // elements per reduction work item
)

// KernelID indexes the 28 kernels of one timestep.
type KernelID int

// The 28 kernels, in launch order (Table I: "Number of Kernels: 28").
const (
	KInitStress KernelID = iota
	KIntegrateStress
	KHourglassA
	KHourglassB
	KAddNodeForces
	KAcceleration
	KAccelerationBC
	KVelocity
	KPosition
	KKinematicsVolume
	KCharLength
	KStrainRate
	KLagrangePart2
	KQGradients
	KQRegion
	KQForElems
	KEOSCopy
	KEnergy1
	KPressure1
	KEnergy2
	KPressure2
	KEnergy3
	KPressure3
	KSoundSpeed
	KUpdateVolumes
	KCourant
	KHydro
	KReduceConstraints
	NumKernels // == 28
)

// KernelMeta describes one kernel for drivers and characterization.
type KernelMeta struct {
	Name  string
	Class modelapi.KernelClass
	// Nodal is true for node-domain kernels, false for element-domain.
	Nodal bool
}

// Kernels is the metadata table, indexed by KernelID.
var Kernels = [NumKernels]KernelMeta{
	KInitStress:        {"InitStressTermsForElems", modelapi.Streaming, false},
	KIntegrateStress:   {"IntegrateStressForElems", modelapi.Regular, false},
	KHourglassA:        {"CalcHourglassControlForElems", modelapi.Regular, false},
	KHourglassB:        {"CalcFBHourglassForceForElems", modelapi.Regular, false},
	KAddNodeForces:     {"AddNodeForcesFromElems", modelapi.Regular, true},
	KAcceleration:      {"CalcAccelerationForNodes", modelapi.Streaming, true},
	KAccelerationBC:    {"ApplyAccelerationBoundaryConditions", modelapi.Streaming, true},
	KVelocity:          {"CalcVelocityForNodes", modelapi.Streaming, true},
	KPosition:          {"CalcPositionForNodes", modelapi.Streaming, true},
	KKinematicsVolume:  {"CalcKinematicsForElems", modelapi.Regular, false},
	KCharLength:        {"CalcElemCharacteristicLength", modelapi.Streaming, false},
	KStrainRate:        {"CalcElemVelocityGradient", modelapi.Streaming, false},
	KLagrangePart2:     {"CalcLagrangeElementsPart2", modelapi.Streaming, false},
	KQGradients:        {"CalcMonotonicQGradientsForElems", modelapi.Regular, false},
	KQRegion:           {"CalcMonotonicQRegionForElems", modelapi.Regular, false},
	KQForElems:         {"CalcQForElems", modelapi.Streaming, false},
	KEOSCopy:           {"EvalEOSForElemsCopy", modelapi.Streaming, false},
	KEnergy1:           {"CalcEnergyForElemsPass1", modelapi.Streaming, false},
	KPressure1:         {"CalcPressureForElemsPass1", modelapi.Streaming, false},
	KEnergy2:           {"CalcEnergyForElemsPass2", modelapi.Streaming, false},
	KPressure2:         {"CalcPressureForElemsPass2", modelapi.Streaming, false},
	KEnergy3:           {"CalcEnergyForElemsPass3", modelapi.Streaming, false},
	KPressure3:         {"CalcPressureForElemsPass3", modelapi.Streaming, false},
	KSoundSpeed:        {"CalcSoundSpeedForElems", modelapi.Streaming, false},
	KUpdateVolumes:     {"UpdateVolumesForElems", modelapi.Streaming, false},
	KCourant:           {"CalcCourantConstraintForElems", modelapi.Streaming, false},
	KHydro:             {"CalcHydroConstraintForElems", modelapi.Streaming, false},
	KReduceConstraints: {"ReduceTimeConstraints", modelapi.Streaming, false},
}

// driver abstracts the per-model launch and data-movement glue so one
// step() implementation serves every programming model.
type driver interface {
	// launch runs (or replays) kernel id over n items.
	launch(id KernelID, n int, body func(*exec.WorkItem))
	// readback charges the per-iteration device→host copy of the
	// time-constraint partials (free on OpenMP/APU).
	readback(bytes int64)
}

// stepper binds state, precision and the tally helpers.
type stepper struct {
	s    *State
	prec timing.Precision
	elt  float64 // modeled element size in bytes (4 or 8)
	// nPartials is the reduction-output length.
	nPartials int
	partials  []float64
}

func newStepper(s *State, prec timing.Precision) *stepper {
	np := (s.Mesh.NumElem + reduceBlk - 1) / reduceBlk
	return &stepper{s: s, prec: prec, elt: appcore.EltBytes(prec), nPartials: np, partials: make([]float64, np)}
}

// tally builds a Counters with precision-scaled flops and bytes.
func (st *stepper) tally(flops, loadWords, storeWords, instrs float64) exec.Counters {
	sp, dp := appcore.Flops(st.prec, flops)
	return exec.Counters{
		SPFlops: sp, DPFlops: dp,
		LoadBytes:  loadWords * st.elt,
		StoreBytes: storeWords * st.elt,
		Instrs:     instrs,
	}
}

// step advances one timestep through the 28 kernels.
func (st *stepper) step(d driver) {
	s := st.s
	m := s.Mesh
	ne, nn := m.NumElem, m.NumNode
	dt := s.Dt

	// ---------------- Lagrange nodal phase ----------------

	// 1. Stress from pressure and viscosity.
	d.launch(KInitStress, ne, func(w *exec.WorkItem) {
		e := w.Global
		s.Sig[e] = -s.P[e] - s.Q[e]
		w.Tally(st.tally(2, 2, 1, 6))
	})

	// 2. Integrate stress: corner forces from face-area vectors.
	d.launch(KIntegrateStress, ne, func(w *exec.WorkItem) {
		e := w.Global
		nl := m.Nodelist[e*8 : e*8+8]
		var px, py, pz [8]float64
		for c := 0; c < 8; c++ {
			n := nl[c]
			px[c], py[c], pz[c] = s.X[n], s.Y[n], s.Z[n]
		}
		var fx, fy, fz [8]float64
		sig := s.Sig[e]
		for _, f := range hexFaces {
			// area vector = 0.5 * (d1 × d2), outward.
			d1x := px[f[2]] - px[f[0]]
			d1y := py[f[2]] - py[f[0]]
			d1z := pz[f[2]] - pz[f[0]]
			d2x := px[f[3]] - px[f[1]]
			d2y := py[f[3]] - py[f[1]]
			d2z := pz[f[3]] - pz[f[1]]
			ax := 0.5 * (d1y*d2z - d1z*d2y)
			ay := 0.5 * (d1z*d2x - d1x*d2z)
			az := 0.5 * (d1x*d2y - d1y*d2x)
			// corner force: -sig = p+q pushes outward; quarter per node.
			cfx, cfy, cfz := -sig*ax/4, -sig*ay/4, -sig*az/4
			for _, c := range f {
				fx[c] += cfx
				fy[c] += cfy
				fz[c] += cfz
			}
		}
		for c := 0; c < 8; c++ {
			s.FxElem[e*8+c] = fx[c]
			s.FyElem[e*8+c] = fy[c]
			s.FzElem[e*8+c] = fz[c]
		}
		w.Tally(st.tally(160, 26, 24, 260))
	})

	// 3. Hourglass control A: element-average velocity.
	d.launch(KHourglassA, ne, func(w *exec.WorkItem) {
		e := w.Global
		nl := m.Nodelist[e*8 : e*8+8]
		var ax, ay, az float64
		for c := 0; c < 8; c++ {
			n := nl[c]
			ax += s.Xd[n]
			ay += s.Yd[n]
			az += s.Zd[n]
		}
		s.VelAvgX[e] = ax / 8
		s.VelAvgY[e] = ay / 8
		s.VelAvgZ[e] = az / 8
		w.Tally(st.tally(27, 25, 3, 60))
	})

	// 4. Hourglass control B: damping corner forces toward the mean.
	d.launch(KHourglassB, ne, func(w *exec.WorkItem) {
		e := w.Global
		nl := m.Nodelist[e*8 : e*8+8]
		mc := hgCoef * s.ElemMass[e] / 8 / dt
		for c := 0; c < 8; c++ {
			n := nl[c]
			s.FxElem[e*8+c] -= mc * (s.Xd[n] - s.VelAvgX[e])
			s.FyElem[e*8+c] -= mc * (s.Yd[n] - s.VelAvgY[e])
			s.FzElem[e*8+c] -= mc * (s.Zd[n] - s.VelAvgZ[e])
		}
		w.Tally(st.tally(75, 55, 24, 130))
	})

	// 5. Gather corner forces to nodes.
	d.launch(KAddNodeForces, nn, func(w *exec.WorkItem) {
		n := w.Global
		lo, hi := m.NodeElemStart[n], m.NodeElemStart[n+1]
		var fx, fy, fz float64
		for i := lo; i < hi; i++ {
			c := m.NodeElemCorner[i]
			fx += s.FxElem[c]
			fy += s.FyElem[c]
			fz += s.FzElem[c]
		}
		s.Fx[n], s.Fy[n], s.Fz[n] = fx, fy, fz
		w.Tally(st.tally(24, 26, 3, 60))
	})

	// 6. Acceleration.
	d.launch(KAcceleration, nn, func(w *exec.WorkItem) {
		n := w.Global
		im := 1 / s.NodalMass[n]
		s.Xdd[n] = s.Fx[n] * im
		s.Ydd[n] = s.Fy[n] * im
		s.Zdd[n] = s.Fz[n] * im
		w.Tally(st.tally(4, 4, 3, 10))
	})

	// 7. Symmetry-plane boundary conditions.
	d.launch(KAccelerationBC, len(m.SymmX)+len(m.SymmY)+len(m.SymmZ), func(w *exec.WorkItem) {
		i := w.Global
		switch {
		case i < len(m.SymmX):
			s.Xdd[m.SymmX[i]] = 0
		case i < len(m.SymmX)+len(m.SymmY):
			s.Ydd[m.SymmY[i-len(m.SymmX)]] = 0
		default:
			s.Zdd[m.SymmZ[i-len(m.SymmX)-len(m.SymmY)]] = 0
		}
		w.Tally(st.tally(0, 1, 1, 5))
	})

	// 8. Velocity update.
	d.launch(KVelocity, nn, func(w *exec.WorkItem) {
		n := w.Global
		s.Xd[n] += s.Xdd[n] * dt
		s.Yd[n] += s.Ydd[n] * dt
		s.Zd[n] += s.Zdd[n] * dt
		w.Tally(st.tally(6, 6, 3, 12))
	})

	// 9. Position update.
	d.launch(KPosition, nn, func(w *exec.WorkItem) {
		n := w.Global
		s.X[n] += s.Xd[n] * dt
		s.Y[n] += s.Yd[n] * dt
		s.Z[n] += s.Zd[n] * dt
		w.Tally(st.tally(6, 6, 3, 12))
	})

	// ---------------- Lagrange element phase ----------------

	// 10. Kinematics: new volumes.
	d.launch(KKinematicsVolume, ne, func(w *exec.WorkItem) {
		e := w.Global
		vol := s.elemVolume(e)
		vn := vol / s.Volo[e]
		s.Delv[e] = vn - s.V[e]
		s.Vnew[e] = vn
		w.Tally(st.tally(110, 26, 2, 180))
	})

	// 11. Characteristic length.
	d.launch(KCharLength, ne, func(w *exec.WorkItem) {
		e := w.Global
		s.Arealg[e] = math.Cbrt(s.Vnew[e] * s.Volo[e])
		w.Tally(st.tally(8, 2, 1, 14))
	})

	// 12. Volume derivative (strain-rate trace).
	d.launch(KStrainRate, ne, func(w *exec.WorkItem) {
		e := w.Global
		s.Vdov[e] = s.Delv[e] / (s.Vnew[e] * dt)
		w.Tally(st.tally(2, 2, 1, 8))
	})

	// 13. Part 2: snap near-unity volumes.
	d.launch(KLagrangePart2, ne, func(w *exec.WorkItem) {
		e := w.Global
		if math.Abs(s.Vnew[e]-1) < vCut {
			s.Vnew[e] = 1
		}
		w.Tally(st.tally(1, 1, 1, 6))
	})

	// 14. Monotonic Q gradients: face-to-face velocity differences.
	d.launch(KQGradients, ne, func(w *exec.WorkItem) {
		e := w.Global
		nl := m.Nodelist[e*8 : e*8+8]
		faceAvg := func(f [4]int, v []float64) float64 {
			return (v[nl[f[0]]] + v[nl[f[1]]] + v[nl[f[2]]] + v[nl[f[3]]]) / 4
		}
		s.DelvXi[e] = faceAvg(hexFaces[5], s.Xd) - faceAvg(hexFaces[4], s.Xd)
		s.DelvEta[e] = faceAvg(hexFaces[3], s.Yd) - faceAvg(hexFaces[2], s.Yd)
		s.DelvZeta[e] = faceAvg(hexFaces[1], s.Zd) - faceAvg(hexFaces[0], s.Zd)
		w.Tally(st.tally(21, 26, 3, 60))
	})

	// 15. Monotonic Q limiter from face neighbors. (This is the kernel
	// that fell back to the CPU under the CLAMP compiler bug on the
	// discrete GPU.)
	limiter := func(own, below, above float64) float64 {
		const eps = 1e-36
		if math.Abs(own) < eps {
			return 0
		}
		rm := below / own
		rp := above / own
		phi := math.Min(rm, rp)
		if phi < 0 {
			phi = 0
		}
		if phi > 1 {
			phi = 1
		}
		return phi
	}
	d.launch(KQRegion, ne, func(w *exec.WorkItem) {
		e := w.Global
		s.PhiXi[e] = limiter(s.DelvXi[e], s.DelvXi[m.Lxim[e]], s.DelvXi[m.Lxip[e]])
		s.PhiEta[e] = limiter(s.DelvEta[e], s.DelvEta[m.Letam[e]], s.DelvEta[m.Letap[e]])
		s.PhiZeta[e] = limiter(s.DelvZeta[e], s.DelvZeta[m.Lzetam[e]], s.DelvZeta[m.Lzetap[e]])
		w.Tally(st.tally(24, 15, 3, 60))
	})

	// 16. Artificial viscosity.
	d.launch(KQForElems, ne, func(w *exec.WorkItem) {
		e := w.Global
		if s.Vdov[e] < 0 {
			rho := 1 / s.Vnew[e]
			l := s.Arealg[e]
			phi := (s.PhiXi[e] + s.PhiEta[e] + s.PhiZeta[e]) / 3
			dv := -s.Vdov[e] * l
			s.Q[e] = rho * (qqCoef*dv*dv + qlCoef*dv*s.SS[e]) * (1 - phi)
		} else {
			s.Q[e] = 0
		}
		w.Tally(st.tally(12, 8, 1, 26))
	})

	// 17–24. EOS pipeline.
	d.launch(KEOSCopy, ne, func(w *exec.WorkItem) {
		e := w.Global
		s.EOld[e], s.POld[e], s.QOld[e] = s.E[e], s.P[e], s.Q[e]
		w.Tally(st.tally(0, 3, 3, 8))
	})
	d.launch(KEnergy1, ne, func(w *exec.WorkItem) {
		e := w.Global
		en := s.EOld[e] - 0.5*s.Delv[e]*(s.POld[e]+s.QOld[e])
		s.E[e] = math.Max(en, eMin)
		w.Tally(st.tally(5, 4, 1, 12))
	})
	d.launch(KPressure1, ne, func(w *exec.WorkItem) {
		e := w.Global
		vhalf := 0.5 * (s.V[e] + s.Vnew[e])
		s.PHalf[e] = math.Max((gammaEOS-1)*s.E[e]/vhalf, pMin)
		w.Tally(st.tally(5, 3, 1, 12))
	})
	d.launch(KEnergy2, ne, func(w *exec.WorkItem) {
		e := w.Global
		en := s.E[e] - 0.5*s.Delv[e]*(s.PHalf[e]-s.POld[e])*0.5
		s.E[e] = math.Max(en, eMin)
		w.Tally(st.tally(6, 4, 1, 12))
	})
	d.launch(KPressure2, ne, func(w *exec.WorkItem) {
		e := w.Global
		s.P[e] = math.Max((gammaEOS-1)*s.E[e]/s.Vnew[e], pMin)
		w.Tally(st.tally(4, 2, 1, 10))
	})
	d.launch(KEnergy3, ne, func(w *exec.WorkItem) {
		e := w.Global
		if math.Abs(s.E[e]) < 1e-30 {
			s.E[e] = 0
		}
		s.E[e] = math.Max(s.E[e], eMin)
		w.Tally(st.tally(2, 1, 1, 8))
	})
	d.launch(KPressure3, ne, func(w *exec.WorkItem) {
		e := w.Global
		s.P[e] = math.Max((gammaEOS-1)*s.E[e]/s.Vnew[e], pMin)
		w.Tally(st.tally(4, 2, 1, 10))
	})
	d.launch(KSoundSpeed, ne, func(w *exec.WorkItem) {
		e := w.Global
		s.SS[e] = math.Sqrt(math.Max(gammaEOS*s.P[e]*s.Vnew[e], ssMin))
		w.Tally(st.tally(7, 2, 1, 14))
	})

	// 25. Commit volumes.
	d.launch(KUpdateVolumes, ne, func(w *exec.WorkItem) {
		e := w.Global
		v := s.Vnew[e]
		if math.Abs(v-1) < vCut {
			v = 1
		}
		s.V[e] = v
		w.Tally(st.tally(1, 1, 1, 6))
	})

	// ---------------- Time constraints ----------------

	// 26–27. Per-element constraints.
	d.launch(KCourant, ne, func(w *exec.WorkItem) {
		e := w.Global
		s.DtCour[e] = s.Arealg[e] / math.Max(s.SS[e], 1e-20)
		w.Tally(st.tally(2, 2, 1, 8))
	})
	d.launch(KHydro, ne, func(w *exec.WorkItem) {
		e := w.Global
		s.DtHydro[e] = dvovMax / (math.Abs(s.Vdov[e]) + 1e-20)
		w.Tally(st.tally(3, 1, 1, 8))
	})

	// 28. Block-min reduction into partials, then host min.
	d.launch(KReduceConstraints, st.nPartials, func(w *exec.WorkItem) {
		i := w.Global
		lo := i * reduceBlk
		hi := lo + reduceBlk
		if hi > ne {
			hi = ne
		}
		mn := math.Inf(1)
		for e := lo; e < hi; e++ {
			c := math.Min(cflFactor*s.DtCour[e], s.DtHydro[e])
			if c < mn {
				mn = c
			}
		}
		st.partials[i] = mn
		w.Tally(st.tally(3*reduceBlk, 2*reduceBlk, 1, 4*reduceBlk))
	})

	// Per-iteration readback of the partial mins (small).
	d.readback(int64(st.nPartials) * int64(st.elt))

	// Host-side final min and dt update.
	newDt := math.Inf(1)
	for _, v := range st.partials {
		if v < newDt {
			newDt = v
		}
	}
	if !math.IsInf(newDt, 1) && newDt > 0 {
		if newDt > dtGrowth*s.Dt {
			newDt = dtGrowth * s.Dt
		}
		s.Dt = newDt
	}
	s.Time += s.Dt
}
