package lulesh

import (
	"math"
	"testing"

	"hetbench/internal/models/openmp"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// The Sedov problem is symmetric under permutation of the coordinate
// axes (corner deposit, symmetric mesh, symmetric BCs): after any number
// of steps, swapping x↔y must map the solution onto itself with the
// velocity components swapped.
func TestSedovAxisSymmetry(t *testing.T) {
	const S = 6
	p := NewProblem(Config{S: S, Iters: 1}, timing.Double)
	m := sim.NewAPU()
	s := NewState(p.Mesh)
	st := newStepper(s, timing.Double)
	d := &ompDriver{rt: openmp.New(m), specs: p.specs(m), functional: true}
	for i := 0; i < 20; i++ {
		st.step(d)
	}
	np := S + 1
	node := func(i, j, k int) int { return (k*np+j)*np + i }
	for k := 0; k < np; k++ {
		for j := 0; j < np; j++ {
			for i := 0; i < np; i++ {
				a, b := node(i, j, k), node(j, i, k)
				if d := math.Abs(s.Xd[a] - s.Yd[b]); d > 1e-9*(math.Abs(s.Xd[a])+1e-300) && d > 1e-15 {
					t.Fatalf("x↔y symmetry broken at (%d,%d,%d): xd=%g vs yd=%g", i, j, k, s.Xd[a], s.Yd[b])
				}
				if d := math.Abs(s.Zd[a] - s.Zd[b]); d > 1e-9*(math.Abs(s.Zd[a])+1e-300) && d > 1e-15 {
					t.Fatalf("z symmetry broken at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	// Element energy symmetric too: E(i,j,k) == E(j,i,k).
	elem := func(i, j, k int) int { return (k*S+j)*S + i }
	for k := 0; k < S; k++ {
		for j := 0; j < S; j++ {
			for i := 0; i < S; i++ {
				a, b := elem(i, j, k), elem(j, i, k)
				if d := math.Abs(s.E[a] - s.E[b]); d > 1e-9*math.Abs(s.E[a])+1e-15 {
					t.Fatalf("energy symmetry broken at (%d,%d,%d): %g vs %g", i, j, k, s.E[a], s.E[b])
				}
			}
		}
	}
}

// With zero velocities everywhere, the kinematics kernels must report
// unchanged volumes and zero strain rates.
func TestQuiescentStateIsStationary(t *testing.T) {
	p := NewProblem(Config{S: 4, Iters: 1}, timing.Double)
	m := sim.NewAPU()
	s := NewState(p.Mesh)
	s.E[0] = 0 // remove the deposit: nothing should move
	st := newStepper(s, timing.Double)
	d := &ompDriver{rt: openmp.New(m), specs: p.specs(m), functional: true}
	for i := 0; i < 5; i++ {
		st.step(d)
	}
	for e := range s.V {
		if math.Abs(s.V[e]-1) > 1e-12 {
			t.Fatalf("element %d volume drifted to %g with no energy", e, s.V[e])
		}
	}
	for n := range s.Xd {
		if s.Xd[n] != 0 || s.Yd[n] != 0 || s.Zd[n] != 0 {
			t.Fatalf("node %d moved with no energy", n)
		}
	}
}

// The blast front must move outward: after enough steps, elements near
// the origin have gained energy/pressure relative to far elements.
func TestBlastPropagatesOutward(t *testing.T) {
	const S = 8
	p := NewProblem(Config{S: S, Iters: 1}, timing.Double)
	m := sim.NewAPU()
	s := NewState(p.Mesh)
	st := newStepper(s, timing.Double)
	d := &ompDriver{rt: openmp.New(m), specs: p.specs(m), functional: true}
	for i := 0; i < 60; i++ {
		st.step(d)
	}
	// Neighbor of the origin element along +x picked up pressure; the
	// far corner is still quiet.
	if s.P[1] <= 0 {
		t.Errorf("element 1 pressure = %g, want > 0 (front reached it)", s.P[1])
	}
	far := S*S*S - 1
	if s.P[far] > s.P[1]*0.5 {
		t.Errorf("far corner pressure %g vs near %g: front arrived too fast", s.P[far], s.P[1])
	}
	// The origin element expanded (volume > 1).
	if s.V[0] <= 1 {
		t.Errorf("origin element volume = %g, want expansion > 1", s.V[0])
	}
}

func TestHCMatchesOtherModels(t *testing.T) {
	p := NewProblem(Config{S: 8, Iters: 6, FunctionalIters: 2}, timing.Double)
	ref := p.RunOpenCL(sim.NewDGPU())
	hc := p.RunHC(sim.NewDGPU())
	if math.Abs(hc.Checksum-ref.Checksum) > 1e-9*math.Abs(ref.Checksum) {
		t.Errorf("HC checksum %g != OpenCL %g", hc.Checksum, ref.Checksum)
	}
	// HC must not be slower than C++ AMP on the dGPU (no fallback, no
	// view round-trips).
	amp := p.RunCppAMP(sim.NewDGPU())
	if hc.ElapsedNs >= amp.ElapsedNs {
		t.Errorf("HC %.2fms not faster than AMP %.2fms", hc.ElapsedNs/1e6, amp.ElapsedNs/1e6)
	}
}
