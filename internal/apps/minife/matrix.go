// Package minife implements the miniFE finite-element proxy application:
// assemble a sparse linear system from hexahedral elements on a 3-D
// structured mesh, then solve it with an un-preconditioned conjugate-
// gradient iteration whose device side is the paper's three kernels —
// SpMV (CSR-Adaptive on OpenCL/C++ AMP, scalar CSR under OpenACC), axpy
// (waxpby) and dot — making it the memory-bandwidth-bound member of the
// suite (Table I: 39% LLC miss rate, 0.88 IPC).
package minife

import (
	"fmt"
	"math"
)

// Config sizes a run: `-nx -ny -nz` elements per dimension, as in the
// paper's `./miniFE -nx 100 -ny 100 -nz 100`.
type Config struct {
	Nx, Ny, Nz int
	// MaxIters bounds the CG iteration (miniFE default 200).
	MaxIters int
	// Tol is the relative residual target.
	Tol float64
	// FunctionalIters: leading CG iterations that execute real math;
	// later iterations replay measured kernel costs (timing-only, for
	// paper-scale runs). Zero = all functional.
	FunctionalIters int
}

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if c.Nx < 2 || c.Ny < 2 || c.Nz < 2 {
		return fmt.Errorf("minife: mesh %dx%dx%d must be ≥2 per dim", c.Nx, c.Ny, c.Nz)
	}
	if c.MaxIters < 1 {
		return fmt.Errorf("minife: MaxIters=%d must be ≥1", c.MaxIters)
	}
	if c.Tol < 0 {
		return fmt.Errorf("minife: Tol=%g must be ≥0", c.Tol)
	}
	if c.FunctionalIters < 0 {
		return fmt.Errorf("minife: FunctionalIters=%d must be ≥0", c.FunctionalIters)
	}
	return nil
}

func (c Config) functionalIters() int {
	if c.FunctionalIters == 0 || c.FunctionalIters > c.MaxIters {
		return c.MaxIters
	}
	return c.FunctionalIters
}

// NumRows returns the unknown count ((nx+1)(ny+1)(nz+1) nodes).
func (c Config) NumRows() int { return (c.Nx + 1) * (c.Ny + 1) * (c.Nz + 1) }

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	NumRows int
	RowPtr  []int32
	Cols    []int32
	Vals    []float64
}

// NNZ returns the stored-nonzero count.
func (a *CSR) NNZ() int { return len(a.Cols) }

// MulRow computes (A·x)[row].
func (a *CSR) MulRow(row int, x []float64) float64 {
	sum := 0.0
	for i := a.RowPtr[row]; i < a.RowPtr[row+1]; i++ {
		sum += a.Vals[i] * x[a.Cols[i]]
	}
	return sum
}

// hexStiffness is the 8×8 element stiffness matrix of the Laplace
// operator on a unit cube (trilinear elements, exact integration). The
// analytic entries depend only on the Manhattan distance between local
// nodes: diagonal 1/3, face-adjacent 0, edge-adjacent -1/12, and the
// body diagonal -1/12... using the standard result:
//
//	K[i][j] = (1/36h)·k(d) with k(0)=12, k(1)=0, k(2)=-3, k(3)=-3  (h=1)
//
// scaled so that row sums are zero (pure Neumann element); the assembled
// system adds a mass shift to stay positive definite.
var hexStiffness = buildHexStiffness()

func buildHexStiffness() (k [8][8]float64) {
	dx := [8]int{0, 1, 1, 0, 0, 1, 1, 0}
	dy := [8]int{0, 0, 1, 1, 0, 0, 1, 1}
	dz := [8]int{0, 0, 0, 0, 1, 1, 1, 1}
	// Exact trilinear Laplace stiffness on the unit cube: with σ =
	// number of differing coordinates between local nodes i and j,
	// K = (1/36)·{σ0: 12, σ1: 0, σ2: -3, σ3: -3} … this has zero row
	// sums and is symmetric.
	w := [4]float64{12, 0, -3, -3}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			d := 0
			if dx[i] != dx[j] {
				d++
			}
			if dy[i] != dy[j] {
				d++
			}
			if dz[i] != dz[j] {
				d++
			}
			k[i][j] = w[d] / 36
		}
	}
	return k
}

// massShift keeps the assembled operator positive definite (a Helmholtz
// term, standing in for miniFE's Dirichlet boundary rows).
const massShift = 0.1

// Assemble builds the CSR system A·x = b by summing element stiffness
// contributions (the "generated and assembled into a sparse matrix"
// phase of miniFE) plus a mass shift on the diagonal. b is the unit
// source vector.
func Assemble(cfg Config) (*CSR, []float64) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	npx, npy := cfg.Nx+1, cfg.Ny+1
	rows := cfg.NumRows()
	node := func(i, j, k int) int32 { return int32((k*npy+j)*npx + i) }

	dx := [8]int{0, 1, 1, 0, 0, 1, 1, 0}
	dy := [8]int{0, 0, 1, 1, 0, 0, 1, 1}
	dz := [8]int{0, 0, 0, 0, 1, 1, 1, 1}

	// Structured 27-point stencil: build per-row column sets directly.
	type entry struct {
		col int32
		val float64
	}
	rowsAcc := make([]map[int32]float64, rows)
	for r := range rowsAcc {
		rowsAcc[r] = make(map[int32]float64, 27)
	}
	for ez := 0; ez < cfg.Nz; ez++ {
		for ey := 0; ey < cfg.Ny; ey++ {
			for ex := 0; ex < cfg.Nx; ex++ {
				var n [8]int32
				for c := 0; c < 8; c++ {
					n[c] = node(ex+dx[c], ey+dy[c], ez+dz[c])
				}
				for i := 0; i < 8; i++ {
					acc := rowsAcc[n[i]]
					for j := 0; j < 8; j++ {
						acc[n[j]] += hexStiffness[i][j]
					}
				}
			}
		}
	}

	a := &CSR{NumRows: rows, RowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		acc := rowsAcc[r]
		acc[int32(r)] += massShift
		// Deterministic column order.
		cols := make([]int32, 0, len(acc))
		for c := range acc {
			cols = append(cols, c)
		}
		sortInt32(cols)
		for _, c := range cols {
			a.Cols = append(a.Cols, c)
			a.Vals = append(a.Vals, acc[c])
		}
		a.RowPtr[r+1] = int32(len(a.Cols))
	}

	// Spatially varying source (a constant b would be an eigenvector of
	// the shifted operator and CG would converge in one step).
	b := make([]float64, rows)
	for i := range b {
		b[i] = 1 + 0.5*math.Sin(float64(i)*0.37)
	}
	return a, b
}

func sortInt32(s []int32) {
	// insertion sort: rows have ≤27 entries
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// Residual returns ‖b − A·x‖₂.
func Residual(a *CSR, x, b []float64) float64 {
	sum := 0.0
	for r := 0; r < a.NumRows; r++ {
		d := b[r] - a.MulRow(r, x)
		sum += d * d
	}
	return math.Sqrt(sum)
}
