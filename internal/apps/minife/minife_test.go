package minife

import (
	"math"
	"testing"
	"testing/quick"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func smallCfg() Config { return Config{Nx: 8, Ny: 8, Nz: 8, MaxIters: 200, Tol: 1e-8} }

func TestStiffnessMatrixProperties(t *testing.T) {
	k := hexStiffness
	for i := 0; i < 8; i++ {
		// Symmetry.
		for j := 0; j < 8; j++ {
			if k[i][j] != k[j][i] {
				t.Fatalf("stiffness not symmetric at (%d,%d)", i, j)
			}
		}
		// Zero row sums (pure Laplace element).
		sum := 0.0
		for j := 0; j < 8; j++ {
			sum += k[i][j]
		}
		if math.Abs(sum) > 1e-14 {
			t.Fatalf("row %d sum = %g, want 0", i, sum)
		}
		if k[i][i] <= 0 {
			t.Fatalf("diagonal %d not positive", i)
		}
	}
}

func TestAssembly(t *testing.T) {
	a, b := Assemble(Config{Nx: 4, Ny: 4, Nz: 4, MaxIters: 1})
	if a.NumRows != 125 || len(b) != 125 {
		t.Fatalf("rows = %d, want 125", a.NumRows)
	}
	// Interior node: 27-point stencil.
	// node (2,2,2) of a 5³ grid = (2*5+2)*5+2 = 62.
	row := 62
	if got := int(a.RowPtr[row+1] - a.RowPtr[row]); got != 27 {
		t.Errorf("interior row nnz = %d, want 27", got)
	}
	// Corner node: 8 entries.
	if got := int(a.RowPtr[1] - a.RowPtr[0]); got != 8 {
		t.Errorf("corner row nnz = %d, want 8", got)
	}
	// Symmetric positive definite-ish: diagonal dominance direction —
	// row sums equal the mass shift.
	for r := 0; r < a.NumRows; r++ {
		sum := 0.0
		diag := 0.0
		for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
			sum += a.Vals[i]
			if int(a.Cols[i]) == r {
				diag = a.Vals[i]
			}
		}
		if math.Abs(sum-massShift) > 1e-12 {
			t.Fatalf("row %d sum = %g, want %g", r, sum, massShift)
		}
		if diag <= 0 {
			t.Fatalf("row %d diagonal %g not positive", r, diag)
		}
		// Columns sorted (CSR invariant for the adaptive kernel).
		for i := a.RowPtr[r] + 1; i < a.RowPtr[r+1]; i++ {
			if a.Cols[i-1] >= a.Cols[i] {
				t.Fatalf("row %d columns unsorted", r)
			}
		}
	}
}

func TestQuickSpMVMatchesDense(t *testing.T) {
	a, _ := Assemble(Config{Nx: 3, Ny: 3, Nz: 3, MaxIters: 1})
	n := a.NumRows
	f := func(seed int64) bool {
		x := make([]float64, n)
		s := uint64(seed)
		for i := range x {
			s = s*6364136223846793005 + 1
			x[i] = float64(s>>40) / float64(1<<24)
		}
		// Dense reference for a few rows.
		for _, r := range []int{0, n / 2, n - 1} {
			want := 0.0
			for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
				want += a.Vals[i] * x[a.Cols[i]]
			}
			if math.Abs(a.MulRow(r, x)-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCGConverges(t *testing.T) {
	p := NewProblem(smallCfg(), timing.Double)
	r := p.RunOpenMP(sim.NewAPU())
	if r.Residual > 1e-6 {
		t.Errorf("CG residual = %g after %d iters, want converged", r.Residual, r.Iterations)
	}
	if r.Iterations < 5 || r.Iterations >= 200 {
		t.Errorf("CG iterations = %d, want reasonable convergence", r.Iterations)
	}
	if r.Kernels != 3 {
		t.Errorf("kernels = %d, want 3 (Table I)", r.Kernels)
	}
}

func TestAllModelsAgree(t *testing.T) {
	p := NewProblem(smallCfg(), timing.Double)
	var ref SolveResult
	for i, model := range []modelapi.Name{modelapi.OpenMP, modelapi.OpenCL, modelapi.CppAMP, modelapi.OpenACC} {
		r := p.Run(sim.NewDGPU(), model)
		if i == 0 {
			ref = r
			continue
		}
		if r.Iterations != ref.Iterations {
			t.Errorf("%s: %d iterations, want %d", model, r.Iterations, ref.Iterations)
		}
		if math.Abs(r.Checksum-ref.Checksum) > 1e-9*math.Abs(ref.Checksum) {
			t.Errorf("%s: checksum %g, want %g", model, r.Checksum, ref.Checksum)
		}
	}
}

// Figure 8e shape: on the APU everyone shares the same DRAM, so OpenCL
// and C++ AMP only match OpenMP, while OpenACC's scalar SpMV is a
// slowdown (< 1×).
func TestAPUShape(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 16, Nz: 16, MaxIters: 30, Tol: 0}
	p := NewProblem(cfg, timing.Double)
	base := p.RunOpenMP(sim.NewAPU())
	cl := p.RunOpenCL(sim.NewAPU())
	acc := p.RunOpenACC(sim.NewAPU())

	sCL := cl.SpeedupOver(base.Result)
	if sCL < 0.5 || sCL > 3 {
		t.Errorf("APU OpenCL speedup = %.2f, want ≈1 (same memory bandwidth)", sCL)
	}
	sACC := acc.SpeedupOver(base.Result)
	if sACC >= 1 {
		t.Errorf("APU OpenACC speedup = %.2f, want < 1 (paper: slowdown)", sACC)
	}
}

// Figure 9e shape: the dGPU's bandwidth lets OpenCL/AMP scale; OpenACC
// stays worst. Uses a mesh large enough that kernels dominate per-
// iteration PCIe latency.
func TestDGPUShape(t *testing.T) {
	cfg := Config{Nx: 40, Ny: 40, Nz: 40, MaxIters: 30, Tol: 0, FunctionalIters: 2}
	p := NewProblem(cfg, timing.Double)
	base := p.RunOpenMP(sim.NewAPU())
	cl := p.RunOpenCL(sim.NewDGPU())
	amp := p.RunCppAMP(sim.NewDGPU())
	acc := p.RunOpenACC(sim.NewDGPU())

	sCL, sAMP, sACC := cl.SpeedupOver(base.Result), amp.SpeedupOver(base.Result), acc.SpeedupOver(base.Result)
	if !(sCL > sACC && sAMP > sACC) {
		t.Errorf("dGPU: OpenACC %.2f not the slowest (CL %.2f, AMP %.2f)", sACC, sCL, sAMP)
	}
	// Bandwidth-bound scaling: OpenCL on the dGPU must clearly beat its
	// APU self.
	clAPU := p.RunOpenCL(sim.NewAPU())
	if cl.KernelNs >= clAPU.KernelNs {
		t.Error("dGPU OpenCL kernels not faster than APU (bandwidth-bound app)")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Nx: 1, Ny: 4, Nz: 4, MaxIters: 10},
		{Nx: 4, Ny: 4, Nz: 4, MaxIters: 0},
		{Nx: 4, Ny: 4, Nz: 4, MaxIters: 10, Tol: -1},
		{Nx: 4, Ny: 4, Nz: 4, MaxIters: 10, FunctionalIters: -2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestMeasuredMissRateBand(t *testing.T) {
	// 40³ elements → ≈1.8M nonzeros (22 MB of matrix data), well past
	// the 768 KB LLC as in the paper's 100³ runs. Our structured
	// 27-point mesh has better x-vector locality than the paper's
	// measured 39% (EXPERIMENTS.md discusses the gap); the test pins
	// the streaming floor: matrix data must always come from DRAM.
	p := NewProblem(Config{Nx: 40, Ny: 40, Nz: 40, MaxIters: 1}, timing.Double)
	miss := p.MeasuredMissRate(sim.NewDGPU())
	if miss < 0.05 || miss > 0.7 {
		t.Errorf("miniFE measured LLC miss rate = %.3f, want moderate (Table I: 0.39)", miss)
	}
}

func TestResidualFunction(t *testing.T) {
	a, b := Assemble(Config{Nx: 3, Ny: 3, Nz: 3, MaxIters: 1})
	x := make([]float64, a.NumRows)
	// x = 0 → residual = ‖b‖.
	want := 0.0
	for _, v := range b {
		want += v * v
	}
	want = math.Sqrt(want)
	if got := Residual(a, x, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("Residual(0) = %g, want %g", got, want)
	}
}
