package minife

import (
	"fmt"
	"math"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/cppamp"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/models/openacc"
	"hetbench/internal/models/opencl"
	"hetbench/internal/models/openmp"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// AppName identifies miniFE in results.
const AppName = "miniFE"

// dotBlock is the per-work-item reduction block for dot products.
const dotBlock = 256

// Kernel names (Table I: 3 kernels).
const (
	KSpMV = "matvec"
	KAxpy = "waxpby"
	KDot  = "dot"
)

// Coalescing constants for the two SpMV strategies. CSR-Adaptive reads
// row data in coalesced blocks (Greathouse & Daga, SC'14 — reference [15]
// of the paper); the scalar row-per-thread CSR that directive compilers
// generate wastes most of each memory transaction on lane-divergent row
// walks ("specialized sparse matrix operations cannot be easily expressed
// at a high level", Section VI-A).
const (
	coalesceAdaptive = 0.95
	coalesceScalar   = 0.35
)

// Problem is an assembled system ready to solve under any model.
type Problem struct {
	Cfg       Config
	Precision timing.Precision
	A         *CSR
	B         []float64
}

// NewProblem assembles the FE system.
func NewProblem(cfg Config, prec timing.Precision) *Problem {
	a, b := Assemble(cfg)
	return &Problem{Cfg: cfg, Precision: prec, A: a, B: b}
}

// SolveResult captures the solver outcome alongside the timing result.
type SolveResult struct {
	appcore.Result
	Iterations int
	Residual   float64
}

// specs builds kernel specs with traits measured on the machine;
// adaptive selects the CSR-Adaptive SpMV (OpenCL/C++ AMP) versus the
// scalar row-per-thread form (OpenACC, OpenMP host loop).
func (p *Problem) specs(m *sim.Machine, adaptive bool) map[string]modelapi.KernelSpec {
	dev := m.Accelerator()
	elt := int(appcore.EltBytes(p.Precision))
	streams := appcore.Streams(dev)

	// SpMV trace: interleaved row walks (val/col streams) plus x-vector
	// gathers through the real column structure.
	rows := p.A.NumRows
	perStream := rows / streams
	if perStream == 0 {
		perStream = 1
	}
	valBase := uint64(0)
	colBase := uint64(1) << 33
	xBase := uint64(1) << 34
	var trace []uint64
	for step := 0; step < perStream && len(trace) < 1<<19; step++ {
		for w := 0; w < streams; w++ {
			r := w*perStream + step
			if r >= rows {
				continue
			}
			for i := p.A.RowPtr[r]; i < p.A.RowPtr[r+1]; i++ {
				trace = append(trace, valBase+uint64(i)*uint64(elt))
				trace = append(trace, colBase+uint64(i)*4)
				trace = append(trace, xBase+uint64(p.A.Cols[i])*uint64(elt))
			}
		}
	}
	sMiss, _, _ := appcore.Traits(dev, trace, elt)

	stream := make([]uint64, 1<<15)
	for i := range stream {
		stream[i] = uint64(i * elt)
	}
	vMiss, vCoal, _ := appcore.Traits(dev, stream, elt)

	spmv := modelapi.KernelSpec{Name: KSpMV, MissRate: sMiss}
	if adaptive {
		spmv.Class, spmv.Coalesce = modelapi.Regular, coalesceAdaptive
	} else {
		spmv.Class, spmv.Coalesce = modelapi.Irregular, coalesceScalar
	}
	return map[string]modelapi.KernelSpec{
		KSpMV: spmv,
		KAxpy: {Name: KAxpy, Class: modelapi.Streaming, MissRate: vMiss, Coalesce: vCoal},
		KDot:  {Name: KDot, Class: modelapi.Streaming, MissRate: vMiss, Coalesce: vCoal},
	}
}

// MeasuredMissRate reports the SpMV per-access LLC miss rate (Table I: 39%).
func (p *Problem) MeasuredMissRate(m *sim.Machine) float64 {
	dev := m.Accelerator()
	elt := int(appcore.EltBytes(p.Precision))
	streams := appcore.Streams(dev)
	rows := p.A.NumRows
	perStream := rows / streams
	if perStream == 0 {
		perStream = 1
	}
	var trace []uint64
	for step := 0; step < perStream && len(trace) < 1<<19; step++ {
		for w := 0; w < streams; w++ {
			r := w*perStream + step
			if r >= rows {
				continue
			}
			for i := p.A.RowPtr[r]; i < p.A.RowPtr[r+1]; i++ {
				trace = append(trace, uint64(i)*uint64(elt))
				trace = append(trace, (uint64(1)<<33)+uint64(i)*4)
				trace = append(trace, (uint64(1)<<34)+uint64(p.A.Cols[i])*uint64(elt))
			}
		}
	}
	_, _, acc := appcore.Traits(dev, trace, elt)
	return acc
}

// driver abstracts per-model launching plus the per-iteration readback of
// dot partials.
type driver interface {
	launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem))
	readback(bytes int64)
}

type ompDriver struct{ rt *openmp.Runtime }

func (d *ompDriver) launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) {
	d.rt.Launch(spec, n, functional, body)
}
func (d *ompDriver) readback(int64) {}

type clDriver struct {
	q        *opencl.Queue
	partials *opencl.Buffer
}

func (d *clDriver) launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) {
	d.q.LaunchFunc(spec, n, functional, body)
}
func (d *clDriver) readback(int64) { d.q.EnqueueReadBuffer(d.partials) }

type ampDriver struct {
	rt       *cppamp.Runtime
	views    []*cppamp.ArrayView
	partials *cppamp.ArrayView
}

func (d *ampDriver) launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) {
	d.rt.Launch(spec, cppamp.NewExtent(n), d.views, functional, body)
}
func (d *ampDriver) readback(int64) { d.partials.Synchronize() }

type accDriver struct{ rt *openacc.Runtime }

func (d *accDriver) launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) {
	d.rt.Launch(spec, n, nil, functional, body)
}
func (d *accDriver) readback(bytes int64) { d.rt.UpdateHost("minife.partials", bytes) }

// spmvForm selects the SpMV tally form: CSR-Adaptive with LDS staging
// (OpenCL/C++ AMP), the lane-divergent scalar row walk a directive
// compiler emits on a GPU (OpenACC), or the plain host row loop (OpenMP).
type spmvForm int

const (
	spmvAdaptive spmvForm = iota
	spmvScalarGPU
	spmvHost
)

// solve runs CG through the given driver. form picks the SpMV tally
// variant. Returns (iterations, final residual norm, x checksum).
func (p *Problem) solve(m *sim.Machine, d driver, specs map[string]modelapi.KernelSpec, form spmvForm) (int, float64, float64) {
	a := p.A
	n := a.NumRows
	elt := appcore.EltBytes(p.Precision)
	nPart := (n + dotBlock - 1) / dotBlock
	partBytes := int64(nPart) * int64(elt)

	x := make([]float64, n)
	r := make([]float64, n)
	pv := make([]float64, n)
	ap := make([]float64, n)
	partial := make([]float64, nPart)

	copy(r, p.B) // x0 = 0 → r = b
	copy(pv, r)

	hostSum := func() float64 {
		s := 0.0
		for _, v := range partial {
			s += v
		}
		return s
	}

	// Kernel bodies. avgNNZ drives the SpMV tallies.
	spmv := func(w *exec.WorkItem) {
		row := w.Global
		ap[row] = a.MulRow(row, pv)
		nnz := float64(a.RowPtr[row+1] - a.RowPtr[row])
		sp, dp := appcore.Flops(p.Precision, 2*nnz)
		loads := 8 + nnz*(4+2*elt) // rowptr + cols + vals + x gathers
		instrs := 4 * nnz
		var lds float64
		switch form {
		case spmvAdaptive:
			lds = nnz * elt // row block staged via LDS
			instrs = 3 * nnz
		case spmvScalarGPU:
			instrs = 8 * nnz // lane-divergent row walk replays
		case spmvHost:
			// plain prefetched row loop: no divergence, no LDS
		}
		w.Tally(exec.Counters{SPFlops: sp, DPFlops: dp, LoadBytes: loads, StoreBytes: elt, LDSBytes: lds, Instrs: instrs})
	}
	dotBody := func(v1, v2 []float64) func(*exec.WorkItem) {
		return func(w *exec.WorkItem) {
			lo := w.Global * dotBlock
			hi := lo + dotBlock
			if hi > n {
				hi = n
			}
			s := 0.0
			for i := lo; i < hi; i++ {
				s += v1[i] * v2[i]
			}
			partial[w.Global] = s
			sp, dp := appcore.Flops(p.Precision, 2*dotBlock)
			w.Tally(exec.Counters{SPFlops: sp, DPFlops: dp, LoadBytes: 2 * dotBlock * elt, StoreBytes: elt, Instrs: 3 * dotBlock})
		}
	}
	axpyBody := func(f func(i int)) func(*exec.WorkItem) {
		return func(w *exec.WorkItem) {
			f(w.Global)
			sp, dp := appcore.Flops(p.Precision, 2)
			w.Tally(exec.Counters{SPFlops: sp, DPFlops: dp, LoadBytes: 2 * elt, StoreBytes: elt, Instrs: 6})
		}
	}

	fn := p.Cfg.functionalIters()

	// Initial rr.
	d.launch(specs[KDot], nPart, true, dotBody(r, r))
	d.readback(partBytes)
	rr := hostSum()
	rr0 := rr

	iters := 0
	for it := 0; it < p.Cfg.MaxIters; it++ {
		functional := it < fn
		iters++

		sp := m.StartIteration(it)
		converged := func() bool {
			d.launch(specs[KSpMV], n, functional, spmv)
			d.launch(specs[KDot], nPart, functional, dotBody(pv, ap))
			d.readback(partBytes)
			pap := hostSum()
			if pap == 0 {
				return true
			}
			alpha := rr / pap

			d.launch(specs[KAxpy], n, functional, axpyBody(func(i int) { x[i] += alpha * pv[i] }))
			d.launch(specs[KAxpy], n, functional, axpyBody(func(i int) { r[i] -= alpha * ap[i] }))

			d.launch(specs[KDot], nPart, functional, dotBody(r, r))
			d.readback(partBytes)
			rrNew := hostSum()

			if functional && p.Cfg.Tol > 0 && math.Sqrt(rrNew) <= p.Cfg.Tol*math.Sqrt(rr0) {
				rr = rrNew
				return true
			}
			beta := rrNew / rr
			rr = rrNew
			d.launch(specs[KAxpy], n, functional, axpyBody(func(i int) { pv[i] = r[i] + beta*pv[i] }))
			return false
		}()
		sp.End()
		if converged {
			break
		}
	}

	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return iters, math.Sqrt(rr), sum
}

func (p *Problem) result(m *sim.Machine, model modelapi.Name, iters int, res, sum float64) SolveResult {
	return SolveResult{
		Result: appcore.Result{
			App: AppName, Model: model, Machine: m.Name(), Precision: p.Precision,
			ElapsedNs: m.ElapsedNs(), KernelNs: m.KernelNs(), TransferNs: m.TransferNs(), FaultNs: m.FaultNs(),
			Checksum: sum, Kernels: 3,
		},
		Iterations: iters,
		Residual:   res,
	}
}

func (p *Problem) matrixBytes() (mat, vecs int64) {
	elt := int64(appcore.EltBytes(p.Precision))
	mat = int64(p.A.NNZ())*(4+elt) + int64(p.A.NumRows+1)*4
	vecs = 4 * int64(p.A.NumRows) * elt // x, r, p, Ap
	return mat, vecs
}

// RunOpenMP is the CPU baseline. The host row loop streams each row's
// data through hardware prefetchers, so it takes the well-coalesced spec
// (the GPU lane-divergence waste of scalar CSR does not apply to a CPU)
// with the flat tally form.
func (p *Problem) RunOpenMP(m *sim.Machine) SolveResult {
	m.ResetClock()
	specs := p.specs(m, true)
	iters, res, sum := p.solve(m, &ompDriver{rt: openmp.New(m)}, specs, spmvHost)
	return p.result(m, modelapi.OpenMP, iters, res, sum)
}

// RunOpenCL uses the CSR-Adaptive SpMV with explicit staging.
func (p *Problem) RunOpenCL(m *sim.Machine) SolveResult {
	m.ResetClock()
	ctx := opencl.NewContext(m).WithCoexec()
	q := ctx.NewQueue()
	mat, vecs := p.matrixBytes()
	q.EnqueueWriteBuffer(ctx.CreateBuffer("minife.matrix", mat))
	q.EnqueueWriteBuffer(ctx.CreateBuffer("minife.vectors", vecs))
	elt := int64(appcore.EltBytes(p.Precision))
	nPart := int64((p.A.NumRows + dotBlock - 1) / dotBlock)
	partials := ctx.CreateBuffer("minife.partials", nPart*elt)
	iters, res, sum := p.solve(m, &clDriver{q: q, partials: partials}, p.specs(m, true), spmvAdaptive)
	q.EnqueueReadBuffer(ctx.CreateBuffer("minife.x", int64(p.A.NumRows)*elt))
	q.Finish()
	return p.result(m, modelapi.OpenCL, iters, res, sum)
}

// RunCppAMP uses tiled CSR-Adaptive via tile_static staging.
func (p *Problem) RunCppAMP(m *sim.Machine) SolveResult {
	m.ResetClock()
	rt := cppamp.New(m).WithCoexec()
	mat, vecs := p.matrixBytes()
	elt := int64(appcore.EltBytes(p.Precision))
	nPart := int64((p.A.NumRows + dotBlock - 1) / dotBlock)
	views := []*cppamp.ArrayView{
		rt.NewArrayView("minife.matrix", mat),
		rt.NewArrayView("minife.vectors", vecs),
		rt.NewArrayView("minife.partials", nPart*elt),
	}
	d := &ampDriver{rt: rt, views: views, partials: views[2]}
	iters, res, sum := p.solve(m, d, p.specs(m, true), spmvAdaptive)
	for _, v := range views {
		v.Synchronize()
	}
	return p.result(m, modelapi.CppAMP, iters, res, sum)
}

// RunOpenACC uses a data region; the compiler generates scalar
// row-per-thread CSR ("the compiler is unable to recognize and take
// advantage of the complicated memory access patterns") — the paper's
// explanation for the OpenACC slowdown on miniFE.
func (p *Problem) RunOpenACC(m *sim.Machine) SolveResult {
	m.ResetClock()
	rt := openacc.New(m).WithCoexec()
	mat, vecs := p.matrixBytes()
	elt := int64(appcore.EltBytes(p.Precision))
	nPart := int64((p.A.NumRows + dotBlock - 1) / dotBlock)
	region := rt.Data(
		openacc.Copyin("minife.matrix", mat),
		openacc.Copy("minife.vectors", vecs),
		openacc.Create("minife.partials", nPart*elt),
	)
	iters, res, sum := p.solve(m, &accDriver{rt: rt}, p.specs(m, false), spmvScalarGPU)
	region.End()
	return p.result(m, modelapi.OpenACC, iters, res, sum)
}

// accConservativeDriver launches every kernels region with its own data
// clauses and no enclosing data region: the PGI-era default the paper
// describes in Section III-B, where each region conservatively copies its
// arrays in and out. Kept for the data-directive ablation.
type accConservativeDriver struct {
	rt       *openacc.Runtime
	matrix   openacc.Clause
	vectors  openacc.Clause
	partials openacc.Clause
}

func (d *accConservativeDriver) launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) {
	uses := []openacc.Clause{d.vectors}
	if spec.Name == KSpMV {
		uses = append(uses, d.matrix)
	}
	if spec.Name == KDot {
		uses = append(uses, d.partials)
	}
	d.rt.Launch(spec, n, uses, functional, body)
}
func (d *accConservativeDriver) readback(bytes int64) { d.rt.UpdateHost("minife.partials", bytes) }

// RunOpenACCConservative runs the CG solve without the hand-placed data
// region: every kernels region pays its own copies (Section III-B's
// motivation for the data directive).
func (p *Problem) RunOpenACCConservative(m *sim.Machine) SolveResult {
	m.ResetClock()
	rt := openacc.New(m)
	mat, vecs := p.matrixBytes()
	elt := int64(appcore.EltBytes(p.Precision))
	nPart := int64((p.A.NumRows + dotBlock - 1) / dotBlock)
	d := &accConservativeDriver{
		rt:       rt,
		matrix:   openacc.Copyin("minife.matrix", mat),
		vectors:  openacc.Copy("minife.vectors", vecs),
		partials: openacc.Copyout("minife.partials", nPart*elt),
	}
	iters, res, sum := p.solve(m, d, p.specs(m, false), spmvScalarGPU)
	return p.result(m, modelapi.OpenACC, iters, res, sum)
}

// Run dispatches by model name.
func (p *Problem) Run(m *sim.Machine, model modelapi.Name) SolveResult {
	m.ResetClock()
	sp := m.StartRun(AppName + "/" + string(model))
	defer sp.End()
	switch model {
	case modelapi.OpenMP:
		return p.RunOpenMP(m)
	case modelapi.OpenCL:
		return p.RunOpenCL(m)
	case modelapi.CppAMP:
		return p.RunCppAMP(m)
	case modelapi.OpenACC:
		return p.RunOpenACC(m)
	default:
		panic(fmt.Sprintf("minife: no implementation for %s", model))
	}
}
