// Package readmem implements the paper's read-memory micro-benchmark
// (Section III, Figures 3–6): stream through a buffer summing blocks of 64
// contiguous elements and write each block's sum to an output buffer. It is
// the calibration workload — "an apt choice to understand the quality of
// code generation by the compilers" — and is memory-bandwidth bound.
//
// One implementation exists per programming model, each phrased in that
// model's idiom, all verified against the serial reference.
package readmem

import (
	"fmt"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/cppamp"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/models/openacc"
	"hetbench/internal/models/opencl"
	"hetbench/internal/models/openmp"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// BlockSize is the number of contiguous elements summed per output word
// ("The block size of 64 is used for our experiments").
const BlockSize = 64

// AppName identifies the benchmark in results.
const AppName = "read-benchmark"

// Config sizes one run.
type Config struct {
	// Blocks is the number of output elements; the input has
	// Blocks × BlockSize elements. The paper streams hundreds of MB; the
	// default harness size is 1<<18 blocks (128 MB in double precision).
	Blocks    int
	Precision timing.Precision
}

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if c.Blocks <= 0 {
		return fmt.Errorf("readmem: Blocks %d must be positive", c.Blocks)
	}
	return nil
}

// Problem is a generated instance.
type Problem struct {
	Cfg Config
	In  []float64
}

// NewProblem builds a deterministic instance.
func NewProblem(cfg Config) *Problem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	in := make([]float64, cfg.Blocks*BlockSize)
	for i := range in {
		in[i] = float64(i%17) * 0.25
	}
	return &Problem{Cfg: cfg, In: in}
}

// ReferenceSums computes the expected output serially (Figure 3a).
func (p *Problem) ReferenceSums() []float64 {
	out := make([]float64, p.Cfg.Blocks)
	for i := 0; i < len(p.In); i += BlockSize {
		sum := 0.0
		for j := 0; j < BlockSize; j++ {
			sum += p.In[i+j]
		}
		out[i/BlockSize] = sum
	}
	return out
}

// checksum digests an output vector.
func checksum(out []float64) float64 {
	s := 0.0
	for _, v := range out {
		s += v
	}
	return s
}

// spec builds the kernel spec with traits measured on the machine's
// accelerator LLC: a pure streaming pass.
func (p *Problem) spec(m *sim.Machine) modelapi.KernelSpec {
	elt := int(appcore.EltBytes(p.Cfg.Precision))
	// Sampled trace: one pass over (a window of) the input.
	const sample = 1 << 16
	addrs := make([]uint64, sample)
	for i := range addrs {
		addrs[i] = uint64(i * elt)
	}
	miss, coal, _ := appcore.Traits(m.Accelerator(), addrs, elt)
	return modelapi.KernelSpec{Name: "read-blocksum", Class: modelapi.Streaming, MissRate: miss, Coalesce: coal}
}

// body is the common kernel body: one work item sums one block
// (Figure 4b). The tally charges BlockSize loads plus one store at the
// configured precision.
func (p *Problem) body(out []float64) func(*exec.WorkItem) {
	elt := appcore.EltBytes(p.Cfg.Precision)
	sp, dp := appcore.Flops(p.Cfg.Precision, BlockSize)
	return func(w *exec.WorkItem) {
		sum := 0.0
		st := w.Global * BlockSize
		for j := 0; j < BlockSize; j++ {
			sum += p.In[st+j]
		}
		out[w.Global] = sum
		w.Tally(exec.Counters{
			SPFlops: sp, DPFlops: dp,
			LoadBytes:  elt * BlockSize,
			StoreBytes: elt,
			Instrs:     2*BlockSize + 4,
		})
	}
}

func (p *Problem) bytesIn() int64 {
	return int64(len(p.In)) * int64(appcore.EltBytes(p.Cfg.Precision))
}

func (p *Problem) bytesOut() int64 {
	return int64(p.Cfg.Blocks) * int64(appcore.EltBytes(p.Cfg.Precision))
}

func (p *Problem) result(m *sim.Machine, model modelapi.Name, sum float64) appcore.Result {
	return appcore.Result{
		App: AppName, Model: model, Machine: m.Name(), Precision: p.Cfg.Precision,
		ElapsedNs: m.ElapsedNs(), KernelNs: m.KernelNs(), TransferNs: m.TransferNs(), FaultNs: m.FaultNs(),
		Checksum: sum, Kernels: 1,
	}
}

// RunOpenMP is the Figure 3b port: the serial loop plus one pragma.
func (p *Problem) RunOpenMP(m *sim.Machine) appcore.Result {
	m.ResetClock()
	rt := openmp.New(m)
	out := make([]float64, p.Cfg.Blocks)
	rt.ParallelFor(p.spec(m), p.Cfg.Blocks, p.body(out))
	return p.result(m, modelapi.OpenMP, checksum(out))
}

// RunOpenCL is the Figure 4 implementation: explicit buffers, staging and
// an NDRange launch.
func (p *Problem) RunOpenCL(m *sim.Machine) appcore.Result {
	m.ResetClock()
	ctx := opencl.NewContext(m).WithCoexec()
	q := ctx.NewQueue()
	bufIn := ctx.CreateBuffer("read.in", p.bytesIn())
	bufOut := ctx.CreateBuffer("read.out", p.bytesOut())
	q.EnqueueWriteBuffer(bufIn)
	out := make([]float64, p.Cfg.Blocks)
	ctx.Bind("read.out", out)
	k := ctx.CreateKernel(p.spec(m), p.body(out)).SetArgs(bufIn, bufOut)
	q.EnqueueNDRange(k, p.Cfg.Blocks, BlockSize)
	q.EnqueueReadBuffer(bufOut)
	q.Finish()
	return p.result(m, modelapi.OpenCL, checksum(out))
}

// RunCppAMP is the Figure 6 implementation: array_views and a
// parallel_for_each over a tiled extent.
func (p *Problem) RunCppAMP(m *sim.Machine) appcore.Result {
	m.ResetClock()
	rt := cppamp.New(m).WithCoexec()
	avIn := rt.NewArrayView("read.in", p.bytesIn())
	avOut := rt.NewArrayView("read.out", p.bytesOut())
	out := make([]float64, p.Cfg.Blocks)
	rt.Bind("read.out", out)
	ext := cppamp.NewExtent(p.Cfg.Blocks)
	rt.ParallelForEach(p.spec(m), ext, []*cppamp.ArrayView{avIn, avOut}, p.body(out))
	avOut.Synchronize()
	return p.result(m, modelapi.CppAMP, checksum(out))
}

// RunOpenACC is the Figure 5 implementation: a kernels-loop with the
// paper's exact clauses — `gang(size/BLOCKSIZE) vector(BLOCKSIZE)` — and
// data movement left to the compiler.
func (p *Problem) RunOpenACC(m *sim.Machine) appcore.Result {
	m.ResetClock()
	rt := openacc.New(m).WithCoexec()
	out := make([]float64, p.Cfg.Blocks)
	rt.Bind("read.out", out)
	uses := []openacc.Clause{
		openacc.Copyin("read.in", p.bytesIn()),
		openacc.Copyout("read.out", p.bytesOut()),
	}
	gang := (p.Cfg.Blocks + BlockSize - 1) / BlockSize
	rt.LoopGV(p.spec(m), p.Cfg.Blocks, gang, BlockSize, uses, p.body(out))
	return p.result(m, modelapi.OpenACC, checksum(out))
}

// Run dispatches by model name.
func (p *Problem) Run(m *sim.Machine, model modelapi.Name) appcore.Result {
	m.ResetClock()
	sp := m.StartRun(AppName + "/" + string(model))
	defer sp.End()
	switch model {
	case modelapi.OpenMP:
		return p.RunOpenMP(m)
	case modelapi.OpenCL:
		return p.RunOpenCL(m)
	case modelapi.CppAMP:
		return p.RunCppAMP(m)
	case modelapi.OpenACC:
		return p.RunOpenACC(m)
	default:
		panic(fmt.Sprintf("readmem: no implementation for %s", model))
	}
}
