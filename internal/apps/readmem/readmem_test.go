package readmem

import (
	"math"
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func cfg() Config { return Config{Blocks: 1 << 12, Precision: timing.Double} }

func TestAllModelsMatchReference(t *testing.T) {
	p := NewProblem(cfg())
	ref := p.ReferenceSums()
	want := 0.0
	for _, v := range ref {
		want += v
	}
	for _, model := range []modelapi.Name{modelapi.OpenMP, modelapi.OpenCL, modelapi.CppAMP, modelapi.OpenACC} {
		for _, m := range []*sim.Machine{sim.NewAPU(), sim.NewDGPU()} {
			r := p.Run(m, model)
			if math.Abs(r.Checksum-want) > 1e-9*math.Abs(want) {
				t.Errorf("%s on %s: checksum %g, want %g", model, m.Name(), r.Checksum, want)
			}
			if r.ElapsedNs <= 0 {
				t.Errorf("%s on %s: no time charged", model, m.Name())
			}
			if r.Kernels != 1 {
				t.Errorf("%s: kernels = %d, want 1 (Table I)", model, r.Kernels)
			}
		}
	}
}

// The paper's kernel-quality anchor (Figures 8a/9a): OpenCL fastest,
// C++ AMP ≈1.3× slower, OpenACC ≈2× slower, kernel time only. Uses a
// large instance so launch overhead does not dilute the ratios.
func TestKernelTimeRatios(t *testing.T) {
	p := NewProblem(Config{Blocks: 1 << 17, Precision: timing.Double})
	m := sim.NewDGPU()
	cl := p.RunOpenCL(m).KernelNs
	amp := p.RunCppAMP(m).KernelNs
	acc := p.RunOpenACC(m).KernelNs
	if r := amp / cl; r < 1.15 || r > 1.45 {
		t.Errorf("AMP/OpenCL kernel ratio = %.2f, want ≈1.3", r)
	}
	if r := acc / cl; r < 1.7 || r > 2.3 {
		t.Errorf("ACC/OpenCL kernel ratio = %.2f, want ≈2", r)
	}
}

// Memory-boundedness: on the dGPU the OpenCL kernel must be classified as
// bandwidth-limited, and the kernel-only speedup over OpenMP should be
// roughly the bandwidth ratio (an order of magnitude, per Section VI-A —
// the paper excludes data-transfer time for this benchmark).
func TestMemoryBoundSpeedupShape(t *testing.T) {
	p := NewProblem(Config{Blocks: 1 << 17, Precision: timing.Double})
	apu, dgpu := sim.NewAPU(), sim.NewDGPU()
	base := p.RunOpenMP(apu)
	clAPU := p.RunOpenCL(sim.NewAPU())
	clDGPU := p.RunOpenCL(dgpu)

	sAPU := base.KernelNs / clAPU.KernelNs
	sDGPU := base.KernelNs / clDGPU.KernelNs
	if sDGPU <= sAPU {
		t.Errorf("dGPU speedup %.2f not above APU speedup %.2f (bandwidth ratio)", sDGPU, sAPU)
	}
	// APU OpenCL and OpenMP share the same DRAM: speedup near 1-2×.
	if sAPU < 0.5 || sAPU > 4 {
		t.Errorf("APU read-benchmark speedup = %.2f, want ≈1 (same memory)", sAPU)
	}
	// dGPU has ~8× the bandwidth.
	if sDGPU < 3 {
		t.Errorf("dGPU read-benchmark speedup = %.2f, want large", sDGPU)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Blocks: 0}).Validate(); err == nil {
		t.Error("zero blocks accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewProblem with bad config did not panic")
		}
	}()
	NewProblem(Config{Blocks: -1})
}

func TestRunUnknownModelPanics(t *testing.T) {
	p := NewProblem(cfg())
	defer func() {
		if recover() == nil {
			t.Error("unknown model did not panic")
		}
	}()
	p.Run(sim.NewAPU(), modelapi.Name("CUDA"))
}

func TestSinglePrecisionFasterOrEqual(t *testing.T) {
	sp := NewProblem(Config{Blocks: 1 << 12, Precision: timing.Single})
	dp := NewProblem(cfg())
	tSP := sp.RunOpenCL(sim.NewDGPU()).KernelNs
	tDP := dp.RunOpenCL(sim.NewDGPU()).KernelNs
	// Half the bytes: SP should be meaningfully faster on a
	// bandwidth-bound kernel.
	if tSP >= tDP {
		t.Errorf("SP kernel (%g) not faster than DP (%g)", tSP, tDP)
	}
}
