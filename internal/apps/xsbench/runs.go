package xsbench

import (
	"fmt"
	"math"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/cppamp"
	"hetbench/internal/models/hc"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/models/openacc"
	"hetbench/internal/models/opencl"
	"hetbench/internal/models/openmp"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

// lookupsPerItem batches queries per work item so functional execution of
// paper-scale lookup counts stays tractable while the modeled work is
// charged per lookup.
const lookupsPerItem = 8

// body returns the lookup kernel body: each work item performs
// lookupsPerItem queries and accumulates a verification sum, tallying the
// binary-search probes and nuclide gathers it actually performed.
func (p *Problem) body(partial []float64) func(*exec.WorkItem) {
	elt := appcore.EltBytes(p.Precision)
	logUnion := math.Log2(float64(len(p.UnionEnergy)))
	logNuclide := math.Log2(float64(p.Cfg.GridPoints))
	return func(w *exec.WorkItem) {
		var out [NumXS]float64
		sum := 0.0
		visited := 0
		for k := 0; k < lookupsPerItem; k++ {
			i := w.Global*lookupsPerItem + k
			energy, mat := p.lookupInputs(i)
			visited += p.LookupMacroXS(energy, mat, &out)
			sum += out[0]
		}
		partial[w.Global] = sum
		// Work: binary-search probes + per-nuclide gathers and
		// 5-channel interpolation. The unionized structure searches
		// once per lookup and reads an index pointer per nuclide; the
		// nuclide-grid structure searches once per nuclide visited.
		var probes, idxBytes float64
		if p.Cfg.Grid == UnionizedGrid {
			probes = float64(lookupsPerItem) * logUnion
			idxBytes = float64(visited) * 4
		} else {
			probes = float64(visited) * logNuclide
		}
		flops := float64(visited) * (4 + 3*NumXS)
		sp, dp := appcore.Flops(p.Precision, flops)
		w.Tally(exec.Counters{
			SPFlops: sp, DPFlops: dp,
			LoadBytes:  probes*elt + idxBytes + float64(visited)*2*(1+NumXS)*elt,
			StoreBytes: elt,
			Instrs:     probes*6 + float64(visited)*30,
		})
	}
}

func (p *Problem) items() int {
	return (p.Cfg.Lookups + lookupsPerItem - 1) / lookupsPerItem
}

func (p *Problem) checksum(partial []float64) float64 {
	s := 0.0
	for _, v := range partial {
		s += v
	}
	return s
}

func (p *Problem) result(m *sim.Machine, model modelapi.Name, sum float64) appcore.Result {
	return appcore.Result{
		App: AppName, Model: model, Machine: m.Name(), Precision: p.Precision,
		ElapsedNs: m.ElapsedNs(), KernelNs: m.KernelNs(), TransferNs: m.TransferNs(), FaultNs: m.FaultNs(),
		Checksum: sum, Kernels: 1,
	}
}

// RunOpenMP is the CPU baseline.
func (p *Problem) RunOpenMP(m *sim.Machine) appcore.Result {
	m.ResetClock()
	rt := openmp.New(m)
	partial := make([]float64, p.items())
	rt.ParallelFor(p.Specs(m), p.items(), p.body(partial))
	return p.result(m, modelapi.OpenMP, p.checksum(partial))
}

// RunOpenCL stages the lookup table once (the dominant transfer on the
// discrete GPU: 240 MB for `-s small`), launches the kernel, and reads
// back only the small result vector — the explicit-staging advantage.
func (p *Problem) RunOpenCL(m *sim.Machine) appcore.Result {
	m.ResetClock()
	ctx := opencl.NewContext(m)
	q := ctx.NewQueue()
	table := ctx.CreateBuffer("xs.table", p.Cfg.TableBytes(p.Precision))
	results := ctx.CreateBuffer("xs.results", int64(p.items())*int64(appcore.EltBytes(p.Precision)))
	q.EnqueueWriteBuffer(table)
	partial := make([]float64, p.items())
	k := ctx.CreateKernel(p.Specs(m), p.body(partial))
	q.EnqueueNDRange(k, p.items(), 64)
	q.EnqueueReadBuffer(results)
	q.Finish()
	return p.result(m, modelapi.OpenCL, p.checksum(partial))
}

// RunCppAMP wraps the table in an array_view. CLAMP v0.6 performs no
// read-only analysis, so when the host touches results after the kernel,
// the destructor-time synchronization drags the whole (conservatively
// "written") table back across PCIe too — the mechanism behind OpenCL's
// "improvement of up to 2× over the other programming models" here.
func (p *Problem) RunCppAMP(m *sim.Machine) appcore.Result {
	m.ResetClock()
	rt := cppamp.New(m)
	table := rt.NewArrayView("xs.table", p.Cfg.TableBytes(p.Precision))
	results := rt.NewArrayView("xs.results", int64(p.items())*int64(appcore.EltBytes(p.Precision)))
	partial := make([]float64, p.items())
	views := []*cppamp.ArrayView{table, results}
	rt.ParallelForEach(p.Specs(m), cppamp.NewExtent(p.items()), views, p.body(partial))
	// Host reads results → every captured view synchronizes.
	for _, v := range views {
		v.Synchronize()
	}
	return p.result(m, modelapi.CppAMP, p.checksum(partial))
}

// RunOpenACC uses a data region with copyin for the table (the hand-tuned
// directive form); the gap to OpenCL on the dGPU is the code generator's
// poor handling of the irregular gather loop.
func (p *Problem) RunOpenACC(m *sim.Machine) appcore.Result {
	m.ResetClock()
	rt := openacc.New(m)
	region := rt.Data(
		openacc.Copyin("xs.table", p.Cfg.TableBytes(p.Precision)),
		openacc.Copyout("xs.results", int64(p.items())*int64(appcore.EltBytes(p.Precision))),
	)
	partial := make([]float64, p.items())
	rt.Loop(p.Specs(m), p.items(), nil, p.body(partial))
	region.End()
	return p.result(m, modelapi.OpenACC, p.checksum(partial))
}

// RunHC runs the Section VII Heterogeneous Compute model: single-source
// kernel plus an *asynchronous* table upload that overlaps the lookup
// kernel ("asynchronous kernel launches which help in overlapping kernel
// execution with data-transfers, resulting in further speedup").
func (p *Problem) RunHC(m *sim.Machine) appcore.Result {
	m.ResetClock()
	rt := hc.New(m)
	partial := make([]float64, p.items())
	rt.CopyAsync("xs.table", p.Cfg.TableBytes(p.Precision))
	rt.Launch(p.Specs(m), p.items(), p.body(partial))
	rt.Wait()
	rt.CopyBack("xs.results", int64(p.items())*int64(appcore.EltBytes(p.Precision)))
	return p.result(m, modelapi.HC, p.checksum(partial))
}

// Run dispatches by model name.
func (p *Problem) Run(m *sim.Machine, model modelapi.Name) appcore.Result {
	m.ResetClock()
	sp := m.StartRun(AppName + "/" + string(model))
	defer sp.End()
	switch model {
	case modelapi.OpenMP:
		return p.RunOpenMP(m)
	case modelapi.OpenCL:
		return p.RunOpenCL(m)
	case modelapi.CppAMP:
		return p.RunCppAMP(m)
	case modelapi.OpenACC:
		return p.RunOpenACC(m)
	default:
		panic(fmt.Sprintf("xsbench: no implementation for %s", model))
	}
}
