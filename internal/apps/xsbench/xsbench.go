// Package xsbench implements the XSBench proxy application: macroscopic
// neutron cross-section lookups against a Hoogenboom-Martin-style reactor
// data set. A synthetic data generator reproduces the paper's structure —
// per-nuclide pointwise cross-section grids, a unionized energy grid with
// per-nuclide index pointers (the memory hog: the paper's `-s small`
// lookup table is 240 MB), and 12 materials with nuclide compositions.
//
// The device side is a single kernel (Table I): for each random
// (energy, material) pair, binary-search the unionized grid, then gather
// and interpolate the five cross sections of every nuclide in the
// material. The access pattern is as hostile as proxy apps get — the
// paper measures a 53% LLC miss rate and 0.14 IPC.
package xsbench

import (
	"fmt"
	"math"
	"sort"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// AppName identifies XSBench in results.
const AppName = "XSBench"

// NumXS is the number of cross-section channels per grid point (total,
// elastic, absorption, fission, nu-fission).
const NumXS = 5

// NumMaterials matches the H-M benchmark's 12 reactor materials.
const NumMaterials = 12

// GridType selects XSBench's lookup data structure.
type GridType int

const (
	// UnionizedGrid is the default: one sorted union of all nuclide
	// energy grids plus a per-nuclide index array — one binary search
	// per lookup, at a huge memory cost (the paper's 240 MB table).
	UnionizedGrid GridType = iota
	// NuclideGridOnly drops the index array: every nuclide in the
	// material is binary-searched separately. ~6× smaller tables,
	// ~n_nuclides× the search work — XSBench's classic memory/compute
	// trade, exercised by the `gridtype` ablation.
	NuclideGridOnly
)

// String names the grid type.
func (g GridType) String() string {
	if g == NuclideGridOnly {
		return "nuclide-grid"
	}
	return "unionized"
}

// Config sizes a run.
type Config struct {
	// Nuclides and GridPoints define the data set; the paper's `-s
	// small` is 68 nuclides × 11,303 points (≈240 MB with the unionized
	// index grid).
	Nuclides   int
	GridPoints int
	// Lookups is the number of (energy, material) queries.
	Lookups int
	// Grid selects the lookup structure (default UnionizedGrid).
	Grid GridType
}

// PaperSmall returns the paper's `-s small` configuration.
func PaperSmall() Config {
	return Config{Nuclides: 68, GridPoints: 11303, Lookups: 15_000_000}
}

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if c.Nuclides < 1 || c.GridPoints < 2 || c.Lookups < 1 {
		return fmt.Errorf("xsbench: invalid config %+v", c)
	}
	return nil
}

// TableBytes returns the resident data-set size: nuclide grids plus —
// for the unionized structure — the union energy grid and its per-nuclide
// index pointers.
func (c Config) TableBytes(prec timing.Precision) int64 {
	elt := int64(appcore.EltBytes(prec))
	nGrid := int64(c.Nuclides) * int64(c.GridPoints)
	nuclideGrids := nGrid * (1 + NumXS) * elt // energy + 5 XS
	if c.Grid == NuclideGridOnly {
		return nuclideGrids
	}
	unionEnergies := nGrid * elt
	indexGrid := nGrid * int64(c.Nuclides) * 4 // int32 pointers
	return nuclideGrids + unionEnergies + indexGrid
}

// Problem holds the generated data set.
type Problem struct {
	Cfg       Config
	Precision timing.Precision

	// NuclideEnergy[n][g] is nuclide n's sorted energy grid;
	// NuclideXS[n][g*NumXS+c] its cross sections.
	NuclideEnergy [][]float64
	NuclideXS     [][]float64
	// UnionEnergy is the sorted union of all nuclide grids; UnionIndex
	// gives, per union point, each nuclide's grid position just below it.
	UnionEnergy []float64
	UnionIndex  []int32 // len = len(UnionEnergy) * Nuclides
	// Material compositions: nuclide ids and number densities.
	MatNuclides [][]int32
	MatDensity  [][]float64
}

// NewProblem generates the synthetic H-M data set deterministically.
func NewProblem(cfg Config, prec timing.Precision) *Problem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Problem{Cfg: cfg, Precision: prec}
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng>>11) / float64(1<<53)
	}

	// Per-nuclide grids: sorted random energies in (0,1), smooth-ish XS.
	p.NuclideEnergy = make([][]float64, cfg.Nuclides)
	p.NuclideXS = make([][]float64, cfg.Nuclides)
	for n := 0; n < cfg.Nuclides; n++ {
		eg := make([]float64, cfg.GridPoints)
		for g := range eg {
			eg[g] = next()
		}
		sort.Float64s(eg)
		// Guarantee full coverage of the lookup domain.
		eg[0], eg[len(eg)-1] = 0, 1
		xs := make([]float64, cfg.GridPoints*NumXS)
		for g := 0; g < cfg.GridPoints; g++ {
			base := 1 + math.Sin(float64(n)+eg[g]*20)*0.5
			for c := 0; c < NumXS; c++ {
				xs[g*NumXS+c] = base * (1 + 0.1*float64(c))
			}
		}
		p.NuclideEnergy[n] = eg
		p.NuclideXS[n] = xs
	}

	// Unionized grid.
	total := cfg.Nuclides * cfg.GridPoints
	p.UnionEnergy = make([]float64, 0, total)
	for n := range p.NuclideEnergy {
		p.UnionEnergy = append(p.UnionEnergy, p.NuclideEnergy[n]...)
	}
	sort.Float64s(p.UnionEnergy)
	p.UnionIndex = make([]int32, len(p.UnionEnergy)*cfg.Nuclides)
	// Two-pointer sweep: for each union point, each nuclide's bracketing
	// lower index.
	ptr := make([]int32, cfg.Nuclides)
	for u, e := range p.UnionEnergy {
		for n := 0; n < cfg.Nuclides; n++ {
			eg := p.NuclideEnergy[n]
			for int(ptr[n])+1 < len(eg) && eg[ptr[n]+1] <= e {
				ptr[n]++
			}
			p.UnionIndex[u*cfg.Nuclides+n] = ptr[n]
		}
	}

	// Materials: H-M-like sizes (fuel has the most nuclides).
	sizes := materialSizes(cfg.Nuclides)
	p.MatNuclides = make([][]int32, NumMaterials)
	p.MatDensity = make([][]float64, NumMaterials)
	for m := 0; m < NumMaterials; m++ {
		k := sizes[m]
		ids := make([]int32, k)
		dens := make([]float64, k)
		for i := 0; i < k; i++ {
			ids[i] = int32(int(next()*float64(cfg.Nuclides))) % int32(cfg.Nuclides)
			dens[i] = 0.1 + next()
		}
		p.MatNuclides[m] = ids
		p.MatDensity[m] = dens
	}
	return p
}

// materialSizes apportions nuclide counts across the 12 materials in
// H-M-like proportions (fuel ≈ half the nuclide set, others small).
func materialSizes(nuclides int) [NumMaterials]int {
	var s [NumMaterials]int
	frac := [NumMaterials]float64{0.5, 0.08, 0.06, 0.06, 0.4, 0.3, 0.1, 0.05, 0.06, 0.1, 0.1, 0.13}
	for i, f := range frac {
		s[i] = int(f * float64(nuclides))
		if s[i] < 1 {
			s[i] = 1
		}
	}
	return s
}

// LookupMacroXS computes the macroscopic cross sections for (energy, mat)
// using the configured grid structure; both structures produce identical
// results (the nuclide-grid path just finds each bracketing index by its
// own binary search). Reports how many nuclides were visited.
func (p *Problem) LookupMacroXS(energy float64, mat int, out *[NumXS]float64) int {
	var u int
	if p.Cfg.Grid == UnionizedGrid {
		// One binary search: largest union index with energy ≤ query.
		u = sort.SearchFloat64s(p.UnionEnergy, energy)
		if u > 0 {
			u--
		}
	}
	for c := range out {
		out[c] = 0
	}
	ids := p.MatNuclides[mat]
	dens := p.MatDensity[mat]
	for i, n := range ids {
		var g int
		if p.Cfg.Grid == UnionizedGrid {
			g = int(p.UnionIndex[u*p.Cfg.Nuclides+int(n)])
		} else {
			g = p.nuclideLowerBound(int(n), energy)
		}
		eg := p.NuclideEnergy[n]
		if g+1 >= len(eg) {
			g = len(eg) - 2
		}
		e0, e1 := eg[g], eg[g+1]
		f := 0.0
		if e1 > e0 {
			f = (energy - e0) / (e1 - e0)
		}
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		xs := p.NuclideXS[n]
		d := dens[i]
		for c := 0; c < NumXS; c++ {
			lo, hi := xs[g*NumXS+c], xs[(g+1)*NumXS+c]
			out[c] += d * (lo + f*(hi-lo))
		}
	}
	return len(ids)
}

// nuclideLowerBound returns the largest index g with
// NuclideEnergy[n][g] ≤ energy (the per-nuclide binary search of the
// nuclide-grid structure).
func (p *Problem) nuclideLowerBound(n int, energy float64) int {
	g := sort.SearchFloat64s(p.NuclideEnergy[n], energy)
	if g > 0 && (g == len(p.NuclideEnergy[n]) || p.NuclideEnergy[n][g] != energy) {
		g--
	}
	return g
}

// lookupInputs deterministically generates the i-th (energy, material)
// query, biased toward fuel like XSBench's picker.
func (p *Problem) lookupInputs(i int) (float64, int) {
	h := uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	energy := float64(h>>11) / float64(1<<53)
	m := int((h>>3)%100) % NumMaterials
	// H-M lookup distribution favors fuel (material 0).
	if (h>>13)%100 < 40 {
		m = 0
	}
	return energy, m
}

// Trace builds a sampled address trace of the lookup kernel for LLC
// characterization: the binary-search probes of the union grid plus the
// scattered index-grid and nuclide-grid reads.
func (p *Problem) Trace(samples int) []uint64 {
	elt := uint64(appcore.EltBytes(p.Precision))
	nGrid := uint64(p.Cfg.Nuclides) * uint64(p.Cfg.GridPoints)
	unionBase := uint64(0)
	indexBase := nGrid * elt
	nuclideBase := indexBase + nGrid*uint64(p.Cfg.Nuclides)*4

	var trace []uint64
	for i := 0; i < samples; i++ {
		energy, mat := p.lookupInputs(i)
		rec := (1 + NumXS) * elt
		if p.Cfg.Grid == UnionizedGrid {
			// One binary search over the union grid.
			lo, hi := 0, len(p.UnionEnergy)
			for lo < hi {
				mid := (lo + hi) / 2
				trace = append(trace, unionBase+uint64(mid)*elt)
				if p.UnionEnergy[mid] < energy {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			u := lo
			if u > 0 {
				u--
			}
			for _, n := range p.MatNuclides[mat] {
				// index-grid pointer
				trace = append(trace, indexBase+(uint64(u)*uint64(p.Cfg.Nuclides)+uint64(n))*4)
				g := uint64(p.UnionIndex[u*p.Cfg.Nuclides+int(n)])
				off := nuclideBase + uint64(n)*uint64(p.Cfg.GridPoints)*rec
				trace = append(trace, off+g*rec, off+(g+1)*rec)
			}
			continue
		}
		// Nuclide-grid structure: one binary search per nuclide, no
		// index array.
		for _, n := range p.MatNuclides[mat] {
			eg := p.NuclideEnergy[n]
			off := nuclideBase + uint64(n)*uint64(p.Cfg.GridPoints)*rec
			lo, hi := 0, len(eg)
			for lo < hi {
				mid := (lo + hi) / 2
				trace = append(trace, off+uint64(mid)*rec)
				if eg[mid] < energy {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			g := uint64(p.nuclideLowerBound(int(n), energy))
			trace = append(trace, off+g*rec, off+(g+1)*rec)
		}
	}
	return trace
}

// Specs builds the single kernel's spec from a trace replay on the
// machine's accelerator LLC.
func (p *Problem) Specs(m *sim.Machine) modelapi.KernelSpec {
	elt := int(appcore.EltBytes(p.Precision))
	miss, coal, _ := appcore.Traits(m.Accelerator(), p.Trace(4096), elt)
	return modelapi.KernelSpec{Name: "macroXSLookup", Class: modelapi.Irregular, MissRate: miss, Coalesce: coal}
}

// MeasuredMissRate reports the per-access LLC miss rate (Table I: 53%).
func (p *Problem) MeasuredMissRate(m *sim.Machine) float64 {
	elt := int(appcore.EltBytes(p.Precision))
	_, _, acc := appcore.Traits(m.Accelerator(), p.Trace(4096), elt)
	return acc
}
