package xsbench

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

func smallCfg() Config { return Config{Nuclides: 16, GridPoints: 512, Lookups: 20000} }

func TestDataSetStructure(t *testing.T) {
	p := NewProblem(smallCfg(), timing.Double)
	// Nuclide grids sorted, covering [0,1].
	for n, eg := range p.NuclideEnergy {
		if !sort.Float64sAreSorted(eg) {
			t.Fatalf("nuclide %d grid unsorted", n)
		}
		if eg[0] != 0 || eg[len(eg)-1] != 1 {
			t.Fatalf("nuclide %d grid does not span [0,1]", n)
		}
	}
	// Union grid sorted with the right length.
	if len(p.UnionEnergy) != 16*512 {
		t.Fatalf("union grid len %d, want %d", len(p.UnionEnergy), 16*512)
	}
	if !sort.Float64sAreSorted(p.UnionEnergy) {
		t.Fatal("union grid unsorted")
	}
	// Materials present with nonzero compositions.
	if len(p.MatNuclides) != NumMaterials {
		t.Fatalf("materials = %d, want %d", len(p.MatNuclides), NumMaterials)
	}
	for m := range p.MatNuclides {
		if len(p.MatNuclides[m]) == 0 {
			t.Fatalf("material %d empty", m)
		}
	}
}

// The index grid must agree with a direct per-nuclide binary search.
func TestUnionIndexCorrect(t *testing.T) {
	p := NewProblem(Config{Nuclides: 8, GridPoints: 128, Lookups: 1}, timing.Double)
	for u := 0; u < len(p.UnionEnergy); u += 97 {
		e := p.UnionEnergy[u]
		for n := 0; n < p.Cfg.Nuclides; n++ {
			eg := p.NuclideEnergy[n]
			want := sort.SearchFloat64s(eg, e)
			// SearchFloat64s returns first ≥ e; our index is last ≤ e.
			if want < len(eg) && eg[want] == e {
				// exact hit: index points at it
			} else {
				want--
			}
			if want < 0 {
				want = 0
			}
			got := int(p.UnionIndex[u*p.Cfg.Nuclides+n])
			if got != want {
				t.Fatalf("union %d nuclide %d: index %d, want %d", u, n, got, want)
			}
		}
	}
}

// Interpolated XS at an exact grid point equals the stored value.
func TestLookupInterpolatesExactPoints(t *testing.T) {
	p := NewProblem(Config{Nuclides: 4, GridPoints: 64, Lookups: 1}, timing.Double)
	n := 2
	g := 13
	e := p.NuclideEnergy[n][g]
	// Material holding only nuclide n with density 1.
	p.MatNuclides[0] = []int32{int32(n)}
	p.MatDensity[0] = []float64{1}
	var out [NumXS]float64
	p.LookupMacroXS(e, 0, &out)
	for c := 0; c < NumXS; c++ {
		want := p.NuclideXS[n][g*NumXS+c]
		if math.Abs(out[c]-want) > 1e-12 {
			t.Fatalf("channel %d: %g, want %g", c, out[c], want)
		}
	}
}

func TestQuickLookupBounds(t *testing.T) {
	p := NewProblem(Config{Nuclides: 6, GridPoints: 64, Lookups: 1}, timing.Double)
	f := func(seed uint32) bool {
		e := float64(seed) / float64(1<<32)
		mat := int(seed) % NumMaterials
		var out [NumXS]float64
		p.LookupMacroXS(e, mat, &out)
		// Macro XS must be positive and finite: all nuclide XS are
		// in (0.4, 1.9) and densities in (0.1, 1.1).
		for _, v := range out {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPaperSmallTableIs240MB(t *testing.T) {
	bytes := PaperSmall().TableBytes(timing.Double)
	mb := float64(bytes) / (1 << 20)
	if mb < 200 || mb > 280 {
		t.Errorf("paper-small table = %.0f MB, want ≈240 (paper Section VI-A)", mb)
	}
}

func TestAllModelsAgree(t *testing.T) {
	p := NewProblem(smallCfg(), timing.Double)
	var ref float64
	for i, model := range []modelapi.Name{modelapi.OpenMP, modelapi.OpenCL, modelapi.CppAMP, modelapi.OpenACC} {
		r := p.Run(sim.NewDGPU(), model)
		if r.Kernels != 1 {
			t.Errorf("%s: kernels = %d, want 1 (Table I)", model, r.Kernels)
		}
		if i == 0 {
			ref = r.Checksum
		} else if math.Abs(r.Checksum-ref) > 1e-9*math.Abs(ref) {
			t.Errorf("%s: checksum %g, want %g", model, r.Checksum, ref)
		}
	}
}

// Figure 8d/9d shapes: AMP best on the APU; OpenCL ~2× the others on the
// dGPU (table transfer dominates; AMP pays it twice).
func TestXSBenchShapes(t *testing.T) {
	// Bigger table so the transfer matters, modest lookups for speed.
	cfg := Config{Nuclides: 32, GridPoints: 2048, Lookups: 60000}
	p := NewProblem(cfg, timing.Double)

	// APU: AMP wins (HSA pointers beat Catalyst OpenCL on this
	// irregular kernel).
	clAPU := p.RunOpenCL(sim.NewAPU())
	ampAPU := p.RunCppAMP(sim.NewAPU())
	accAPU := p.RunOpenACC(sim.NewAPU())
	if !(ampAPU.ElapsedNs < clAPU.ElapsedNs && ampAPU.ElapsedNs < accAPU.ElapsedNs) {
		t.Errorf("APU: AMP %.3fms not best (CL %.3fms, ACC %.3fms)",
			ampAPU.ElapsedNs/1e6, clAPU.ElapsedNs/1e6, accAPU.ElapsedNs/1e6)
	}

	// dGPU: OpenCL best; AMP pays the table transfer twice.
	clD := p.RunOpenCL(sim.NewDGPU())
	ampD := p.RunCppAMP(sim.NewDGPU())
	accD := p.RunOpenACC(sim.NewDGPU())
	if !(clD.ElapsedNs < ampD.ElapsedNs && clD.ElapsedNs < accD.ElapsedNs) {
		t.Errorf("dGPU: OpenCL %.3fms not best (AMP %.3fms, ACC %.3fms)",
			clD.ElapsedNs/1e6, ampD.ElapsedNs/1e6, accD.ElapsedNs/1e6)
	}
	if ampD.TransferNs < 1.8*clD.TransferNs {
		t.Errorf("dGPU AMP transfer %.3fms not ≈2× OpenCL's %.3fms",
			ampD.TransferNs/1e6, clD.TransferNs/1e6)
	}
	// AMP must be worse on the dGPU than the APU *relative to OpenCL*
	// ("C++ AMP resulted in poor performance on the discrete GPU ...
	// atypical for a compute bound application").
	relAPU := ampAPU.ElapsedNs / clAPU.ElapsedNs
	relD := ampD.ElapsedNs / clD.ElapsedNs
	if relD <= relAPU {
		t.Errorf("AMP/OpenCL ratio dGPU %.2f not above APU %.2f", relD, relAPU)
	}
}

func TestMeasuredMissRateHigh(t *testing.T) {
	// Table I: 53% — the worst locality in the suite. The data set must
	// exceed the LLC for this to show.
	p := NewProblem(Config{Nuclides: 32, GridPoints: 4096, Lookups: 1}, timing.Double)
	miss := p.MeasuredMissRate(sim.NewDGPU())
	if miss < 0.3 {
		t.Errorf("XSBench measured LLC miss rate = %.3f, want high (Table I: 0.53)", miss)
	}
}

// Both grid structures must produce bit-identical lookups (the
// nuclide-grid binary search finds the same bracketing interval the
// unionized index encodes).
func TestGridTypesAgree(t *testing.T) {
	cfgU := Config{Nuclides: 12, GridPoints: 256, Lookups: 5000}
	cfgN := cfgU
	cfgN.Grid = NuclideGridOnly
	pu := NewProblem(cfgU, timing.Double)
	pn := NewProblem(cfgN, timing.Double)
	for i := 0; i < 2000; i++ {
		e, mat := pu.lookupInputs(i)
		var a, b [NumXS]float64
		pu.LookupMacroXS(e, mat, &a)
		pn.LookupMacroXS(e, mat, &b)
		if a != b {
			t.Fatalf("lookup %d: unionized %v != nuclide-grid %v", i, a, b)
		}
	}
	// End-to-end checksums agree too.
	ru := pu.RunOpenCL(sim.NewDGPU())
	rn := pn.RunOpenCL(sim.NewDGPU())
	if math.Abs(ru.Checksum-rn.Checksum) > 1e-9*math.Abs(ru.Checksum) {
		t.Errorf("checksums differ: %g vs %g", ru.Checksum, rn.Checksum)
	}
}

func TestGridTypeTableSizes(t *testing.T) {
	cfg := PaperSmall()
	union := cfg.TableBytes(timing.Double)
	cfg.Grid = NuclideGridOnly
	nuc := cfg.TableBytes(timing.Double)
	if nuc*3 > union {
		t.Errorf("nuclide-grid table %d not ≪ unionized %d", nuc, union)
	}
	if UnionizedGrid.String() == "" || NuclideGridOnly.String() == "" {
		t.Error("GridType.String empty")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Nuclides: 0, GridPoints: 10, Lookups: 1},
		{Nuclides: 1, GridPoints: 1, Lookups: 1},
		{Nuclides: 1, GridPoints: 10, Lookups: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}
