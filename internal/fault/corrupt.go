package fault

import (
	"math"
	"sync"
)

// FlipBit flips the top mantissa bit of v — roughly a ±50% perturbation on
// a normal float64, large enough that an end-to-end checksum catches it,
// small enough not to blow a simulation up into Inf. Flipping a zero
// yields a denormal that vanishes back into a sum; like real silent data
// corruption, a flip in dead data is masked.
func FlipBit(v float64) float64 {
	return math.Float64frombits(math.Float64bits(v) ^ (1 << 51))
}

// Corruptor tracks the live output arrays a runtime may silently corrupt
// when the injector draws BitFlip. Runtimes expose a Bind method so
// applications can register the Go slices backing their device buffers;
// with nothing bound a bit flip lands in untracked scratch and is masked.
type Corruptor struct {
	mu      sync.Mutex
	targets []corruptTarget
}

type corruptTarget struct {
	name string
	data []float64
}

// Bind registers one array as a corruption target. Binding the same name
// again replaces the slice (apps re-bind per run with fresh allocations).
func (c *Corruptor) Bind(name string, data []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.targets {
		if c.targets[i].name == name {
			c.targets[i].data = data
			return
		}
	}
	c.targets = append(c.targets, corruptTarget{name: name, data: data})
}

// Corrupt flips one bit in one element of one bound array, choosing the
// victim deterministically from the injector's PRNG. It reports what was
// hit; ok is false when nothing is bound (the flip is masked).
func (c *Corruptor) Corrupt(inj *Injector) (name string, index int, ok bool) {
	if inj == nil {
		return "", 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var live []corruptTarget
	for _, t := range c.targets {
		if len(t.data) > 0 {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return "", 0, false
	}
	t := live[inj.Pick(len(live))]
	i := inj.Pick(len(t.data))
	t.data[i] = FlipBit(t.data[i])
	return t.name, i, true
}
