// Package fault is the deterministic fault injector for the simulated
// heterogeneous system. It perturbs the machine at its three choke points —
// kernel launches (transient failure, watchdog-exceeding hang, silent
// single-element corruption), PCIe transfers (CRC failure forcing
// retransmission) and whole-device loss (the accelerator disappears for a
// window of virtual time) — so the harness and the programming-model
// runtimes can be exercised against an unreliable platform.
//
// Everything is seeded: one Injector draws from one PRNG in a fixed order,
// so a run with the same seed, workload and policy reproduces the same
// fault sequence bit for bit. The package has no simulator dependencies;
// sim.Machine consults an attached Injector from its launch and transfer
// paths, and with no injector attached those paths pay a single nil check.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Kind names one injected fault class.
type Kind string

// Fault kinds.
const (
	// None means the operation proceeds cleanly.
	None Kind = ""
	// LaunchFail is a transient kernel-launch failure: the driver rejects
	// the launch after charging its fixed launch overhead.
	LaunchFail Kind = "launch-fail"
	// Hang is a kernel that never completes; the victim burns virtual time
	// until the watchdog deadline kills it.
	Hang Kind = "hang"
	// BitFlip is silent data corruption: the kernel completes normally and
	// on time, but one element of a bound output array has a flipped bit.
	// Nothing reports it — only end-to-end checksum validation can.
	BitFlip Kind = "bit-flip"
	// TransferCorrupt is a PCIe transfer that fails its CRC check: the
	// payload time was spent, and the transfer must be retransmitted.
	TransferCorrupt Kind = "transfer-corrupt"
	// DeviceLost removes the accelerator for a window of virtual time;
	// launches and transfers during the window fail immediately.
	DeviceLost Kind = "device-lost"
)

// Kinds lists the injectable fault kinds in presentation order.
func Kinds() []Kind {
	return []Kind{LaunchFail, Hang, BitFlip, TransferCorrupt, DeviceLost}
}

// Event reports one injected fault to the caller that suffered it.
type Event struct {
	Kind Kind
	Op   string // kernel or transfer name
}

// Error implements error so runtimes can thread events through error paths.
func (e *Event) Error() string {
	return fmt.Sprintf("fault: %s on %s", e.Kind, e.Op)
}

// maxRate bounds every per-operation probability so retry loops terminate
// quickly; a system failing more than 3 operations in 4 is not "degraded",
// it is broken, and the experiments sweep far below this.
const maxRate = 0.75

// Config sets the per-operation fault probabilities and the seed.
// The zero value injects nothing.
type Config struct {
	// Seed initializes the injector's PRNG; runs with equal seeds, rates
	// and workloads are bit-reproducible.
	Seed int64

	// Per kernel-launch probabilities. They are mutually exclusive per
	// draw, so their sum must stay ≤ maxRate.
	LaunchFailRate float64
	HangRate       float64
	BitFlipRate    float64
	DeviceLossRate float64

	// TransferCorruptRate is the per-PCIe-transfer CRC-failure probability.
	TransferCorruptRate float64

	// DeviceLossNs is how long a lost accelerator stays gone in virtual
	// time. Zero selects DefaultDeviceLossNs.
	DeviceLossNs float64
}

// DefaultDeviceLossNs is the device-loss window used when Config leaves it
// zero: 400 µs of virtual time, long enough that a default backoff schedule
// only just rides it out.
const DefaultDeviceLossNs = 400e3

// Validate reports malformed configurations.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"LaunchFailRate", c.LaunchFailRate},
		{"HangRate", c.HangRate},
		{"BitFlipRate", c.BitFlipRate},
		{"DeviceLossRate", c.DeviceLossRate},
		{"TransferCorruptRate", c.TransferCorruptRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > maxRate || math.IsNaN(r.v) {
			return fmt.Errorf("fault: %s %g outside [0, %g]", r.name, r.v, maxRate)
		}
	}
	if sum := c.LaunchFailRate + c.HangRate + c.BitFlipRate + c.DeviceLossRate; sum > maxRate {
		return fmt.Errorf("fault: launch fault rates sum to %g, above %g", sum, maxRate)
	}
	if c.DeviceLossNs < 0 || math.IsNaN(c.DeviceLossNs) {
		return fmt.Errorf("fault: DeviceLossNs %g must be ≥0", c.DeviceLossNs)
	}
	return nil
}

// Enabled reports whether any fault can ever fire.
func (c Config) Enabled() bool {
	return c.LaunchFailRate > 0 || c.HangRate > 0 || c.BitFlipRate > 0 ||
		c.DeviceLossRate > 0 || c.TransferCorruptRate > 0
}

func (c Config) deviceLossNs() float64 {
	if c.DeviceLossNs > 0 {
		return c.DeviceLossNs
	}
	return DefaultDeviceLossNs
}

// Injector draws fault decisions from a seeded PRNG. It is safe for
// concurrent use; decisions are serialized, so a single-threaded run with
// a fixed seed is deterministic.
type Injector struct {
	mu          sync.Mutex
	cfg         Config
	rng         *rand.Rand
	counts      map[Kind]int64
	lostUntilNs float64
}

// New builds an injector, panicking on an invalid configuration (rates are
// experiment constants; use Config.Validate first for untrusted input).
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: make(map[Kind]int64),
	}
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cfg
}

// Launch draws the fate of one accelerator kernel launch at virtual time
// nowNs. During a device-loss window every launch fails with DeviceLost;
// otherwise one uniform draw partitions into the configured launch faults.
func (i *Injector) Launch(nowNs float64) Kind {
	i.mu.Lock()
	defer i.mu.Unlock()
	if nowNs < i.lostUntilNs {
		i.counts[DeviceLost]++
		return DeviceLost
	}
	u := i.rng.Float64()
	p := i.cfg.DeviceLossRate
	if u < p {
		i.lostUntilNs = nowNs + i.cfg.deviceLossNs()
		i.counts[DeviceLost]++
		return DeviceLost
	}
	if p += i.cfg.LaunchFailRate; u < p {
		i.counts[LaunchFail]++
		return LaunchFail
	}
	if p += i.cfg.HangRate; u < p {
		i.counts[Hang]++
		return Hang
	}
	if p += i.cfg.BitFlipRate; u < p {
		i.counts[BitFlip]++
		return BitFlip
	}
	return None
}

// Transfer draws the fate of one PCIe transfer at virtual time nowNs:
// TransferCorrupt (CRC failure, retransmit) or None. Device loss is not
// drawn here — the machine consults LostUntilNs and waits the window out.
func (i *Injector) Transfer(nowNs float64) Kind {
	_ = nowNs
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.rng.Float64() < i.cfg.TransferCorruptRate {
		i.counts[TransferCorrupt]++
		return TransferCorrupt
	}
	return None
}

// LostUntilNs returns the virtual time at which a lost device returns
// (0 when the device has never been lost).
func (i *Injector) LostUntilNs() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.lostUntilNs
}

// ResetWindow clears any open device-loss window. The machine calls it
// when its virtual clock resets, so a window opened late in one run cannot
// leak into the next run's fresh clock.
func (i *Injector) ResetWindow() {
	i.mu.Lock()
	i.lostUntilNs = 0
	i.mu.Unlock()
}

// Pick draws a uniform index in [0, n) from the injector's PRNG — the
// deterministic victim selector for bit flips.
func (i *Injector) Pick(n int) int {
	if n <= 0 {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Intn(n)
}

// Count returns how many faults of one kind have been injected.
func (i *Injector) Count(k Kind) int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts[k]
}

// Total returns the total number of injected faults.
func (i *Injector) Total() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	var n int64
	for _, v := range i.counts {
		n += v
	}
	return n
}

// Counts returns the per-kind injection tally in a deterministic order.
func (i *Injector) Counts() []struct {
	Kind  Kind
	Count int64
} {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]struct {
		Kind  Kind
		Count int64
	}, 0, len(i.counts))
	for k, v := range i.counts {
		out = append(out, struct {
			Kind  Kind
			Count int64
		}{k, v})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Kind < out[b].Kind })
	return out
}
