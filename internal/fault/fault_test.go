package fault

import (
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"typical", Config{Seed: 1, LaunchFailRate: 0.1, HangRate: 0.05, BitFlipRate: 0.05, TransferCorruptRate: 0.1, DeviceLossRate: 0.01}, true},
		{"negative rate", Config{LaunchFailRate: -0.1}, false},
		{"rate above cap", Config{TransferCorruptRate: 0.9}, false},
		{"launch sum above cap", Config{LaunchFailRate: 0.3, HangRate: 0.3, BitFlipRate: 0.3}, false},
		{"nan rate", Config{HangRate: math.NaN()}, false},
		{"negative loss window", Config{DeviceLossNs: -1}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !(Config{HangRate: 0.1}).Enabled() {
		t.Fatal("nonzero hang rate reports disabled")
	}
}

// TestDeterminism: two injectors with the same seed draw identical fault
// sequences; a different seed diverges.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, LaunchFailRate: 0.2, HangRate: 0.1, BitFlipRate: 0.1, TransferCorruptRate: 0.2, DeviceLossRate: 0.02}
	draw := func(seed int64) []Kind {
		c := cfg
		c.Seed = seed
		inj := New(c)
		var out []Kind
		now := 0.0
		for i := 0; i < 500; i++ {
			out = append(out, inj.Launch(now))
			out = append(out, inj.Transfer(now))
			now += 1e4
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := draw(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 1000-draw sequences")
	}
}

func TestLaunchRates(t *testing.T) {
	inj := New(Config{Seed: 3, LaunchFailRate: 0.25})
	const n = 10000
	fails := 0
	for i := 0; i < n; i++ {
		if k := inj.Launch(float64(i) * 1e3); k == LaunchFail {
			fails++
		} else if k != None {
			t.Fatalf("unexpected kind %q with only LaunchFailRate set", k)
		}
	}
	got := float64(fails) / n
	if got < 0.2 || got > 0.3 {
		t.Fatalf("LaunchFail rate %g far from configured 0.25", got)
	}
	if inj.Count(LaunchFail) != int64(fails) {
		t.Fatalf("Count(LaunchFail) = %d, want %d", inj.Count(LaunchFail), fails)
	}
	if inj.Total() != int64(fails) {
		t.Fatalf("Total() = %d, want %d", inj.Total(), fails)
	}
}

// TestDeviceLossWindow: once the device drops, every launch inside the
// window fails with DeviceLost; after the window the device returns; and
// ResetWindow clears a pending loss.
func TestDeviceLossWindow(t *testing.T) {
	inj := New(Config{Seed: 1, DeviceLossRate: maxRate, DeviceLossNs: 1000})
	if k := inj.Launch(0); k != DeviceLost {
		t.Fatalf("first draw %q, want certain device loss", k)
	}
	until := inj.LostUntilNs()
	if until != 1000 {
		t.Fatalf("LostUntilNs = %g, want 1000", until)
	}
	if k := inj.Launch(999); k != DeviceLost {
		t.Fatalf("launch inside loss window = %q, want DeviceLost", k)
	}
	// Past the window edge the device is back until the rate re-draws a
	// loss, which then opens a new window from the draw time.
	now := 1000.0
	for inj.Launch(now) != DeviceLost {
		now += 10
	}
	if got := inj.LostUntilNs(); got != now+1000 {
		t.Fatalf("new window ends at %g, want %g", got, now+1000)
	}
	inj.ResetWindow()
	if inj.LostUntilNs() != 0 {
		t.Fatal("ResetWindow did not clear the loss window")
	}
}

func TestPolicyBackoff(t *testing.T) {
	p := Policy{MaxAttempts: 4, BackoffBaseNs: 100, BackoffFactor: 2, BackoffMaxNs: 500, WatchdogNs: 1}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []float64{100, 200, 400, 500, 500}
	for i, w := range want {
		if got := p.BackoffNs(i + 1); got != w {
			t.Errorf("BackoffNs(%d) = %g, want %g", i+1, got, w)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("DefaultPolicy invalid: %v", err)
	}
	bad := []Policy{
		{MaxAttempts: 0, BackoffFactor: 2, BackoffMaxNs: 1, WatchdogNs: 1},
		{MaxAttempts: 1, BackoffBaseNs: -1, BackoffFactor: 2, WatchdogNs: 1},
		{MaxAttempts: 1, BackoffFactor: 0.5, WatchdogNs: 1},
		{MaxAttempts: 1, BackoffBaseNs: 10, BackoffFactor: 1, BackoffMaxNs: 5, WatchdogNs: 1},
		{MaxAttempts: 1, BackoffFactor: 1, WatchdogNs: 0},
		{MaxAttempts: 1, BackoffFactor: 1, WatchdogNs: 1, MaxRunRedos: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d validated", i)
		}
	}
}

func TestFlipBitDetectableAndInvolutive(t *testing.T) {
	for _, v := range []float64{1.0, -3.75, 1e-12, 12345.678} {
		f := FlipBit(v)
		if f == v {
			t.Errorf("FlipBit(%g) did not change the value", v)
		}
		if FlipBit(f) != v {
			t.Errorf("FlipBit not involutive at %g", v)
		}
		if math.IsInf(f, 0) || math.IsNaN(f) {
			t.Errorf("FlipBit(%g) = %g is not finite", v, f)
		}
	}
}

func TestCorruptor(t *testing.T) {
	inj := New(Config{Seed: 9})
	var c Corruptor
	if _, _, ok := c.Corrupt(inj); ok {
		t.Fatal("corrupting with nothing bound reported ok")
	}
	data := []float64{1, 2, 3, 4}
	orig := append([]float64(nil), data...)
	c.Bind("out", data)
	name, idx, ok := c.Corrupt(inj)
	if !ok || name != "out" {
		t.Fatalf("Corrupt = (%q, %d, %v), want a hit on \"out\"", name, idx, ok)
	}
	changed := 0
	for i := range data {
		if data[i] != orig[i] {
			changed++
			if i != idx {
				t.Errorf("element %d changed but Corrupt reported index %d", i, idx)
			}
		}
	}
	if changed != 1 {
		t.Fatalf("%d elements changed, want exactly 1", changed)
	}
	// Re-binding replaces the slice rather than appending a duplicate.
	fresh := []float64{5}
	c.Bind("out", fresh)
	if _, _, ok := c.Corrupt(inj); !ok {
		t.Fatal("corrupt after re-bind failed")
	}
	if fresh[0] == 5 {
		t.Fatal("re-bound slice was not the corruption target")
	}
}

// SubSeed must be pure, spread adjacent (parent, stream) pairs apart, and
// never return the zero "use the default" sentinel.
func TestSubSeed(t *testing.T) {
	if SubSeed(42, 7) != SubSeed(42, 7) {
		t.Fatal("SubSeed is not deterministic")
	}
	seen := make(map[int64]struct{})
	for parent := int64(0); parent < 4; parent++ {
		for stream := int64(0); stream < 256; stream++ {
			s := SubSeed(parent, stream)
			if s == 0 {
				t.Fatalf("SubSeed(%d, %d) = 0", parent, stream)
			}
			if _, dup := seen[s]; dup {
				t.Fatalf("SubSeed(%d, %d) collides with an earlier pair", parent, stream)
			}
			seen[s] = struct{}{}
		}
	}
}
