package fault

import "fmt"

// Policy is the resilience policy the harness attaches alongside an
// Injector: how often a runtime retries a failed launch, how backoff grows
// in virtual time, how long the watchdog lets a hung kernel sit, and how
// many whole-run redos the harness spends on silently corrupted results
// before running with injection disabled.
type Policy struct {
	// MaxAttempts is the total number of accelerator attempts per kernel
	// launch (first try + retries). A launch that fails MaxAttempts times
	// degrades gracefully to the host CPU.
	MaxAttempts int

	// BackoffBaseNs is the virtual-time wait before the first retry;
	// successive waits multiply by BackoffFactor up to BackoffMaxNs.
	BackoffBaseNs float64
	BackoffFactor float64
	BackoffMaxNs  float64

	// WatchdogNs is the virtual time a hung kernel burns before the
	// watchdog kills it and hands the launch back for retry.
	WatchdogNs float64

	// MaxRunRedos bounds how many times the harness re-runs a whole
	// application run whose checksum disagrees with the golden output
	// (silent corruption escaped to the result). After the budget is spent
	// the harness runs once with injection disabled so every experiment
	// terminates with correct numerics.
	MaxRunRedos int
}

// DefaultPolicy returns the policy the experiments use: four attempts with
// 50 µs → 2 ms exponential backoff, a 1 ms watchdog, and four run redos.
// The backoff schedule sums to ~350 µs over three retries, so it just
// outlasts the default 400 µs device-loss window on the final attempt —
// shorter losses are ridden out, longer ones degrade to the CPU.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:   4,
		BackoffBaseNs: 50e3,
		BackoffFactor: 2,
		BackoffMaxNs:  2e6,
		WatchdogNs:    1e6,
		MaxRunRedos:   4,
	}
}

// Validate reports unusable policies.
func (p Policy) Validate() error {
	switch {
	case p.MaxAttempts < 1:
		return fmt.Errorf("fault: policy MaxAttempts %d must be ≥1", p.MaxAttempts)
	case p.BackoffBaseNs < 0:
		return fmt.Errorf("fault: policy BackoffBaseNs %g must be ≥0", p.BackoffBaseNs)
	case p.BackoffFactor < 1:
		return fmt.Errorf("fault: policy BackoffFactor %g must be ≥1", p.BackoffFactor)
	case p.BackoffMaxNs < p.BackoffBaseNs:
		return fmt.Errorf("fault: policy BackoffMaxNs %g below BackoffBaseNs %g", p.BackoffMaxNs, p.BackoffBaseNs)
	case p.WatchdogNs <= 0:
		return fmt.Errorf("fault: policy WatchdogNs %g must be positive", p.WatchdogNs)
	case p.MaxRunRedos < 0:
		return fmt.Errorf("fault: policy MaxRunRedos %d must be ≥0", p.MaxRunRedos)
	}
	return nil
}

// BackoffNs returns the virtual-time wait before retry `attempt` (1-based):
// BackoffBaseNs·BackoffFactor^(attempt−1), capped at BackoffMaxNs.
func (p Policy) BackoffNs(attempt int) float64 {
	ns := p.BackoffBaseNs
	for i := 1; i < attempt; i++ {
		ns *= p.BackoffFactor
		if ns >= p.BackoffMaxNs {
			return p.BackoffMaxNs
		}
	}
	if ns > p.BackoffMaxNs {
		return p.BackoffMaxNs
	}
	return ns
}
