package fault

// SubSeed derives the stream-th child seed from a parent seed with a
// splitmix64 finalization step, so subsystems that need many independent
// deterministic PRNG streams (one injector per fleet node, one generator
// per trace) can spread one run-wide seed without the streams aliasing:
// adjacent parents and adjacent streams land far apart in seed space.
// SubSeed is a pure function — equal (parent, stream) pairs always give
// the same child — and never returns 0, so the result is safe to use
// where a zero seed means "default".
func SubSeed(parent, stream int64) int64 {
	z := uint64(parent)*0x9e3779b97f4a7c15 + uint64(stream)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		return 1
	}
	return s
}
