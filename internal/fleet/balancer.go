package fleet

import (
	"fmt"

	"hetbench/internal/sched"
)

// balancer decides which node accepts a job. place returns nil when no
// node is eligible (caller sheds or reroutes). Implementations must be
// deterministic: equal cluster state and job always yield the same node,
// with ties broken toward the lower node ID.
type balancer interface {
	place(t float64, j Job, c *Cluster) *Node
}

// newBalancer maps the shared scheduling policy enum onto its
// cluster-granularity implementation.
func newBalancer(p sched.Policy, nodes []*Node) balancer {
	switch p {
	case sched.Static:
		rates := make([]float64, len(nodes))
		for i, n := range nodes {
			rates[i] = n.baseRate
		}
		return &staticBalancer{
			shares: sched.Shares(rates),
			credit: make([]float64, len(nodes)),
		}
	case sched.Dynamic:
		return dynamicBalancer{}
	case sched.HGuided:
		return hguidedBalancer{}
	default:
		panic(fmt.Sprintf("fleet: unknown policy %v", p))
	}
}

// staticBalancer is weighted round-robin: the cluster-scale analogue of
// the static partitioner's fixed split. Each node earns credit at its
// sched.Shares-proportional rate and the most-credited eligible node
// takes the job — so over a long trace, node i serves share[i] of the
// stream regardless of how well that matches the actual job costs
// (exactly the static policy's failure mode the experiments expose).
type staticBalancer struct {
	shares []float64
	credit []float64
}

func (b *staticBalancer) place(t float64, j Job, c *Cluster) *Node {
	for i, s := range b.shares {
		b.credit[i] += s
	}
	var best *Node
	for i, n := range c.nodes {
		if !c.eligible(n, t) {
			continue
		}
		if best == nil || b.credit[i] > b.credit[best.ID] {
			best = n
		}
	}
	if best != nil {
		b.credit[best.ID] -= 1
	}
	return best
}

// dynamicBalancer is least-loaded placement: the job goes to the
// eligible node with the earliest predicted finish, where the prediction
// is the node's queue drain time plus the job's analytic service time on
// that node — the cluster-scale analogue of the dynamic policy's
// "whichever queue frees first" chunk assignment.
type dynamicBalancer struct{}

func (dynamicBalancer) place(t float64, j Job, c *Cluster) *Node {
	var best *Node
	bestDone := 0.0
	for _, n := range c.nodes {
		if !c.eligible(n, t) {
			continue
		}
		start := t
		if n.availNs > start {
			start = n.availNs
		}
		done := start + c.serviceNs(n, j)
		if best == nil || done < bestDone {
			best, bestDone = n, done
		}
	}
	return best
}

// hguidedBalancer is feedback-guided placement: like dynamic, but the
// service-time prediction uses the node's learned EWMA throughput
// instead of the analytic model, so the balancer adapts when a node's
// delivered rate drifts from nominal (e.g. a queue full of oversized
// irregular jobs). The in-machine HGuided policy shrinks chunks using
// rate-proportional shares; at cluster granularity the same learned
// rates steer whole jobs.
type hguidedBalancer struct{}

func (hguidedBalancer) place(t float64, j Job, c *Cluster) *Node {
	var best *Node
	bestDone := 0.0
	for _, n := range c.nodes {
		if !c.eligible(n, t) {
			continue
		}
		start := t
		if n.availNs > start {
			start = n.availNs
		}
		done := start + float64(j.Items)/n.ewmaRate
		if best == nil || done < bestDone {
			best, bestDone = n, done
		}
	}
	return best
}
