// Package fleet simulates a cluster of heterogeneous nodes — mixed APU
// and dGPU machines, each wrapping the single-machine roofline simulator
// in internal/sim — fed by deterministic, seedable job-arrival traces.
//
// The package is the cluster-granularity analogue of internal/sched: where
// the co-execution scheduler carves one kernel launch between the two
// devices inside a machine, the fleet balancer places whole jobs across
// hundreds-to-thousands of machines. The same three policies apply, and
// the static balancer reuses sched.Shares, the exact proportional-split
// rule the in-machine partitioner runs on:
//
//   - Static: weighted round-robin by each node's roofline rate on a
//     reference kernel (the cluster-scale static partition).
//   - Dynamic: least-loaded — each job goes to the node with the earliest
//     predicted finish, computed from the analytic service time.
//   - HGuided: like Dynamic but predictions use per-node throughput
//     learned online from completed jobs (an EWMA), so the balancer adapts
//     when a node's effective speed drifts from its nominal rate.
//
// Arrivals come from open-loop generators (Generate): a Poisson process
// or a bursty ON-OFF modulated Poisson process, both pure functions of a
// TraceSpec. Each node serves its bounded FIFO queue in virtual time;
// service times come from the node's own timing model, so an APU and a
// dGPU disagree about the same job exactly as the single-machine
// experiments say they should (the dGPU additionally pays PCIe staging).
//
// Faults: each node carries its own fault.Injector (seeded with
// fault.SubSeed so streams never alias). A device-loss window makes the
// node ineligible until it ends and evicts every queued and in-flight
// job; evicted jobs migrate to surviving nodes — paying a rebooking
// penalty and abandoning any partially-completed service — but are never
// shed, generalizing the chunk-migration path inside internal/sched.
//
// Outputs are tail-latency-first: per-job queue-wait and sojourn
// histograms (hist.fleet.queue.ns, hist.fleet.job.ns) with p50/p95/p99,
// plus per-node utilization and the fleet.* counters in the trace
// registry. Everything is virtual time and seeded pseudo-randomness, so
// a Run is bit-reproducible for a given (Config, trace) pair.
package fleet
