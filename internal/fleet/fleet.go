package fleet

import (
	"container/heap"
	"fmt"

	"hetbench/internal/fault"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
	"hetbench/internal/trace"
)

// NodeKind selects a node's machine configuration.
type NodeKind int

const (
	// APU is an integrated-GPU node (unified memory, no PCIe staging).
	APU NodeKind = iota
	// DGPU is a discrete-GPU node: faster kernels, but every job pays
	// PCIe staging for its working set.
	DGPU
)

// String names the kind.
func (k NodeKind) String() string {
	if k == DGPU {
		return "dGPU"
	}
	return "APU"
}

// Node is one cluster member: a machine, its bounded FIFO queue and its
// private fault stream.
type Node struct {
	// ID is the node's index in the cluster (0-based, stable).
	ID int
	// Kind is the node's machine configuration.
	Kind NodeKind
	// Machine is the node's single-machine simulator; its timing models
	// price every job the node serves.
	Machine *sim.Machine

	inj     *fault.Injector
	pending []*booking // queued + in-flight, in booking order
	availNs float64    // when the queue drains (virtual ns)
	lostNs  float64    // end of the current device-loss window

	baseRate float64 // analytic items/ns on the reference job
	ewmaRate float64 // learned items/ns (HGuided feedback)

	busyNs   float64
	wastedNs float64
	jobs     int
	losses   int
}

// booking is one job's (possibly re-made) reservation on a node's queue.
type booking struct {
	job      Job
	node     *Node
	startNs  float64
	doneNs   float64
	svcNs    float64
	seq      int
	canceled bool
}

// bookingHeap orders live bookings by completion time, sequence-number
// tie-broken so equal times pop in booking order — the property that
// keeps the event loop bit-deterministic.
type bookingHeap []*booking

func (h bookingHeap) Len() int { return len(h) }
func (h bookingHeap) Less(i, j int) bool {
	if h[i].doneNs != h[j].doneNs {
		return h[i].doneNs < h[j].doneNs
	}
	return h[i].seq < h[j].seq
}
func (h bookingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bookingHeap) Push(x interface{}) { *h = append(*h, x.(*booking)) }
func (h *bookingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	b := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return b
}

// DefaultQueueCap bounds each node's pending queue (in-flight job
// included) when Config.QueueCap is zero.
const DefaultQueueCap = 16

// DefaultMigrationPenaltyNs is the rebooking cost a migrated job pays on
// its new node: job state must be re-staged and the launch re-issued.
const DefaultMigrationPenaltyNs = 50e3

// Config parameterizes a Cluster.
type Config struct {
	// APUs and DGPUs count the nodes of each kind; nodes are numbered
	// APUs-first. At least one node is required.
	APUs, DGPUs int

	// Policy selects the placement balancer — the same policy enum the
	// in-machine co-execution scheduler uses, applied at cluster
	// granularity.
	Policy sched.Policy

	// QueueCap bounds each node's pending queue (default DefaultQueueCap).
	// A job offered when every eligible node is full is shed.
	QueueCap int

	// Seed seeds the per-node fault streams (via fault.SubSeed, so node
	// streams never alias each other or the trace generator's stream).
	Seed int64

	// DeviceLossRate is each admission's probability of knocking the
	// chosen node out for a device-loss window (see internal/fault).
	// Zero disables fault injection.
	DeviceLossRate float64
	// DeviceLossNs is the loss-window length (default: the fault
	// package's DefaultDeviceLossNs).
	DeviceLossNs float64

	// MigrationPenaltyNs is added to a migrated job's restart on its new
	// node (default DefaultMigrationPenaltyNs).
	MigrationPenaltyNs float64

	// Metrics, when non-nil, receives the fleet.* counters and the
	// hist.fleet.* histograms in addition to the Result — the hook the
	// harness uses to publish a run into an experiment's trace capture.
	Metrics *trace.Registry

	// NewMachine, when non-nil, overrides machine construction (the
	// harness injects cell-scoped machines here). Default: sim.NewAPU
	// and sim.NewDGPU.
	NewMachine func(NodeKind) *sim.Machine
}

// Validate reports an unusable config.
func (c Config) Validate() error {
	switch {
	case c.APUs < 0 || c.DGPUs < 0:
		return fmt.Errorf("fleet: negative node counts (%d APUs, %d dGPUs)", c.APUs, c.DGPUs)
	case c.APUs+c.DGPUs == 0:
		return fmt.Errorf("fleet: cluster needs at least one node")
	case c.QueueCap < 0:
		return fmt.Errorf("fleet: QueueCap %d must be non-negative", c.QueueCap)
	case c.MigrationPenaltyNs < 0:
		return fmt.Errorf("fleet: MigrationPenaltyNs %g must be non-negative", c.MigrationPenaltyNs)
	}
	// Reuse the fault package's own rate/window validation.
	fc := fault.Config{DeviceLossRate: c.DeviceLossRate, DeviceLossNs: c.DeviceLossNs}
	if err := fc.Validate(); err != nil {
		return err
	}
	return nil
}

// refJob is the reference job used to compute each node's nominal rate:
// one streaming kernel at the class's base size. Placement predictions
// for real jobs always use the job's own cost; the reference rate only
// seeds the static shares and the HGuided EWMA.
var refJob = Job{Class: ClassStream, Items: classBaseItems[ClassStream]}

// Cluster is a single-use fleet simulation: build with New, feed one
// trace to Run, read the Result. Nodes accumulate state across a run, so
// reuse requires a fresh Cluster.
type Cluster struct {
	cfg      Config
	nodes    []*Node
	bal      balancer
	seq      int
	events   bookingHeap
	svcCache map[svcKey]float64

	queueHist   *trace.Histogram
	sojournHist *trace.Histogram

	submitted int
	completed int
	migrated  int
	shed      int
	losses    int
	horizonNs float64
}

// svcKey memoizes analytic service times: nodes of one kind price a
// (class, items) pair identically.
type svcKey struct {
	kind  NodeKind
	class Class
	items int
}

// New builds a cluster. It panics on an invalid config, matching the
// substrate packages' constructor contract.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MigrationPenaltyNs == 0 {
		cfg.MigrationPenaltyNs = DefaultMigrationPenaltyNs
	}
	newMachine := cfg.NewMachine
	if newMachine == nil {
		newMachine = func(k NodeKind) *sim.Machine {
			if k == DGPU {
				return sim.NewDGPU()
			}
			return sim.NewAPU()
		}
	}
	c := &Cluster{
		cfg:         cfg,
		svcCache:    make(map[svcKey]float64),
		queueHist:   &trace.Histogram{},
		sojournHist: &trace.Histogram{},
	}
	for i := 0; i < cfg.APUs+cfg.DGPUs; i++ {
		kind := APU
		if i >= cfg.APUs {
			kind = DGPU
		}
		n := &Node{ID: i, Kind: kind, Machine: newMachine(kind)}
		n.inj = fault.New(fault.Config{
			Seed:           fault.SubSeed(cfg.Seed, int64(i)+1),
			DeviceLossRate: cfg.DeviceLossRate,
			DeviceLossNs:   cfg.DeviceLossNs,
		})
		c.nodes = append(c.nodes, n)
	}
	// Nominal rate on the reference job; dGPU staging included, so the
	// shares reflect delivered (not peak) throughput.
	for _, n := range c.nodes {
		n.baseRate = float64(refJob.Items) / c.serviceNs(n, refJob)
		n.ewmaRate = n.baseRate
	}
	c.bal = newBalancer(cfg.Policy, c.nodes)
	return c
}

// Nodes exposes the cluster's nodes (for tests and reporting).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// machineServiceNs prices job j on machine m: the accelerator roofline
// on the job's kernel cost, plus PCIe staging of the working set on
// discrete machines. Pure.
func machineServiceNs(m *sim.Machine, j Job) float64 {
	cost := j.Cost()
	t := m.AcceleratorModel().Kernel(cost).TimeNs
	if link := m.Link(); link != nil {
		in := int64(float64(cost.Items) * cost.LoadBytes)
		out := int64(float64(cost.Items) * cost.StoreBytes)
		t += (link.TransferTimeUs(in) + link.TransferTimeUs(out)) * 1e3
	}
	return t
}

// serviceNs prices job j on node n, memoized per (kind, class, items):
// nodes of one kind price a job identically.
func (c *Cluster) serviceNs(n *Node, j Job) float64 {
	key := svcKey{kind: n.Kind, class: j.Class, items: j.Items}
	if t, ok := c.svcCache[key]; ok {
		return t
	}
	t := machineServiceNs(n.Machine, j)
	c.svcCache[key] = t
	return t
}

// CapacityPerSec estimates the aggregate service capacity (jobs per
// second of virtual time) of a fleet of the given composition under the
// given job mix, pricing each class at its base size. Load sweeps use it
// to express arrival rates as a fraction of saturation; it is a nominal
// figure (job-size dispersion and placement skew shave real throughput),
// but a deterministic one.
func CapacityPerSec(apus, dgpus int, mix JobMix) float64 {
	shares := mix.classShares()
	kindRate := func(m *sim.Machine) float64 {
		mean := 0.0
		for ci, w := range shares {
			if w <= 0 {
				continue
			}
			class := Class(ci)
			mean += w * machineServiceNs(m, Job{Class: class, Items: classBaseItems[class]})
		}
		if mean <= 0 {
			return 0
		}
		return 1e9 / mean
	}
	total := 0.0
	if apus > 0 {
		total += float64(apus) * kindRate(sim.NewAPU())
	}
	if dgpus > 0 {
		total += float64(dgpus) * kindRate(sim.NewDGPU())
	}
	return total
}

// eligible reports whether n can accept a normal admission at time t.
func (c *Cluster) eligible(n *Node, t float64) bool {
	return t >= n.lostNs && len(n.pending) < c.cfg.QueueCap
}

// Run feeds the trace (arrival order) through the cluster and returns
// the aggregate result. Single-threaded and purely virtual-time, so a
// run is a deterministic function of (Config, jobs).
func (c *Cluster) Run(jobs []Job) Result {
	for _, j := range jobs {
		c.drainUntil(j.ArriveNs)
		c.submitted++
		c.admit(j.ArriveNs, j, false)
	}
	c.drainUntil(maxFloat)
	return c.finish()
}

// maxFloat drains every remaining event.
const maxFloat = 0x1p1023

// drainUntil completes every booking due at or before t, in completion
// order, applying the HGuided feedback before any later placement sees
// the node again.
func (c *Cluster) drainUntil(t float64) {
	for len(c.events) > 0 {
		b := c.events[0]
		if b.canceled {
			heap.Pop(&c.events)
			continue
		}
		if b.doneNs > t {
			return
		}
		heap.Pop(&c.events)
		c.complete(b)
	}
}

// complete retires one booking: frees its queue slot, credits the node,
// feeds the EWMA and records the job's latency.
func (c *Cluster) complete(b *booking) {
	n := b.node
	for i, p := range n.pending {
		if p == b {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			break
		}
	}
	n.busyNs += b.svcNs
	n.jobs++
	obs := float64(b.job.Items) / b.svcNs
	n.ewmaRate = ewmaAlpha*obs + (1-ewmaAlpha)*n.ewmaRate
	c.completed++
	if b.doneNs > c.horizonNs {
		c.horizonNs = b.doneNs
	}
	wait := b.startNs - b.job.ArriveNs
	sojourn := b.doneNs - b.job.ArriveNs
	c.queueHist.Observe(wait)
	c.sojournHist.Observe(sojourn)
	if reg := c.cfg.Metrics; reg != nil {
		reg.Observe(trace.HistFleetQueueNs, wait)
		reg.Observe(trace.HistFleetJobNs, sojourn)
	}
}

// ewmaAlpha is the HGuided feedback gain: heavy enough to track a
// drifting node within a few jobs, light enough not to thrash on one
// outlier.
const ewmaAlpha = 0.25

// admit places one job at time t. Normal admissions (migrated=false) may
// draw a device-loss fault on the chosen node and may be shed when every
// node is full or lost. Migration rebookings (migrated=true) draw no
// faults and are never shed — a lost job degrades to a late job, never
// to a dropped one.
func (c *Cluster) admit(t float64, j Job, migrated bool) {
	n := c.bal.place(t, j, c)
	if n == nil {
		if !migrated {
			c.shed++
			return
		}
		n = c.emergencyNode(t, j)
	}
	if !migrated && c.cfg.DeviceLossRate > 0 {
		if kind := n.inj.Launch(t); kind == fault.DeviceLost {
			c.loseNode(n, t)
			// The triggering job still runs — reroute it like a migrant
			// (no second fault draw), after the evictees it displaced.
			c.migrated++
			c.admit(t, j, true)
			return
		}
	}
	start := t
	if n.availNs > start {
		start = n.availNs
	}
	if n.lostNs > start {
		start = n.lostNs
	}
	if migrated {
		start += c.cfg.MigrationPenaltyNs
	}
	svc := c.serviceNs(n, j)
	b := &booking{job: j, node: n, startNs: start, doneNs: start + svc, svcNs: svc, seq: c.seq}
	c.seq++
	n.pending = append(n.pending, b)
	n.availNs = b.doneNs
	heap.Push(&c.events, b)
}

// loseNode opens n's device-loss window at time t and evicts every
// pending booking: queued jobs rebook whole, the in-flight job abandons
// its partial service (counted as wasted node time). Evictees re-enter
// placement oldest-first so the rebooking order is deterministic.
func (c *Cluster) loseNode(n *Node, t float64) {
	c.losses++
	n.losses++
	n.lostNs = n.inj.LostUntilNs()
	evicted := n.pending
	n.pending = nil
	n.availNs = n.lostNs
	for _, b := range evicted {
		b.canceled = true
		if b.startNs < t {
			n.wastedNs += t - b.startNs
		}
	}
	for _, b := range evicted {
		c.migrated++
		c.admit(t, b.job, true)
	}
}

// emergencyNode picks the rebooking target when no node is eligible:
// the earliest predicted finish over all nodes, queue caps ignored and
// lost nodes allowed (the job waits out the loss window). Ties break to
// the lower node ID.
func (c *Cluster) emergencyNode(t float64, j Job) *Node {
	var best *Node
	bestDone := 0.0
	for _, n := range c.nodes {
		start := t
		if n.availNs > start {
			start = n.availNs
		}
		if n.lostNs > start {
			start = n.lostNs
		}
		done := start + c.serviceNs(n, j)
		if best == nil || done < bestDone {
			best, bestDone = n, done
		}
	}
	return best
}

// NodeStats is one node's per-run summary.
type NodeStats struct {
	ID       int
	Kind     NodeKind
	Jobs     int     // jobs completed on this node
	BusyNs   float64 // virtual time spent serving completed jobs
	WastedNs float64 // partial service abandoned to migration
	Losses   int     // device-loss windows opened here
	Util     float64 // BusyNs over the run horizon
}

// Result aggregates one cluster run.
type Result struct {
	Submitted  int // jobs offered to the cluster
	Completed  int // jobs that finished service
	Migrated   int // rebookings forced by node losses
	Shed       int // normal admissions rejected (all nodes full or lost)
	NodeLosses int // device-loss windows opened

	// HorizonNs is the virtual time of the last completion — the run's
	// utilization denominator.
	HorizonNs float64
	// Queue is the per-job queue-wait distribution (arrival to final
	// service start, migration penalties included).
	Queue *trace.Histogram
	// Sojourn is the per-job total-latency distribution (arrival to
	// completion).
	Sojourn *trace.Histogram
	// Nodes holds per-node summaries in node-ID order.
	Nodes []NodeStats
}

// MeanUtil is the fleet-wide mean node utilization over the run horizon.
func (r Result) MeanUtil() float64 {
	if len(r.Nodes) == 0 {
		return 0
	}
	sum := 0.0
	for _, n := range r.Nodes {
		sum += n.Util
	}
	return sum / float64(len(r.Nodes))
}

// finish assembles the Result and publishes the fleet.* counters.
func (c *Cluster) finish() Result {
	r := Result{
		Submitted:  c.submitted,
		Completed:  c.completed,
		Migrated:   c.migrated,
		Shed:       c.shed,
		NodeLosses: c.losses,
		HorizonNs:  c.horizonNs,
		Queue:      c.queueHist.Clone(),
		Sojourn:    c.sojournHist.Clone(),
	}
	var busy, wasted float64
	for _, n := range c.nodes {
		util := 0.0
		if c.horizonNs > 0 {
			util = n.busyNs / c.horizonNs
		}
		r.Nodes = append(r.Nodes, NodeStats{
			ID: n.ID, Kind: n.Kind, Jobs: n.jobs,
			BusyNs: n.busyNs, WastedNs: n.wastedNs,
			Losses: n.losses, Util: util,
		})
		busy += n.busyNs
		wasted += n.wastedNs
	}
	if reg := c.cfg.Metrics; reg != nil {
		reg.Add(trace.CtrFleetSubmitted, float64(r.Submitted))
		reg.Add(trace.CtrFleetCompleted, float64(r.Completed))
		reg.Add(trace.CtrFleetMigrated, float64(r.Migrated))
		reg.Add(trace.CtrFleetShed, float64(r.Shed))
		reg.Add(trace.CtrFleetNodeLosses, float64(r.NodeLosses))
		reg.Add(trace.CtrFleetBusyNs, busy)
		reg.Add(trace.CtrFleetWastedNs, wasted)
	}
	return r
}
