package fleet

import (
	"reflect"
	"testing"

	"hetbench/internal/sched"
	"hetbench/internal/trace"
)

func testCluster(policy sched.Policy, lossRate float64) Config {
	return Config{
		APUs: 3, DGPUs: 1,
		Policy:         policy,
		Seed:           7,
		DeviceLossRate: lossRate,
	}
}

// testJobs generates a moderate-load trace: per-class service times are
// O(100µs–3ms) on the test cluster's four nodes, so 4000 jobs/s keeps
// utilization well below saturation while still building real queues.
func testJobs(n int) []Job {
	return Generate(TraceSpec{
		Shape: Poisson, Jobs: n, RatePerSec: 4e3,
		Mix: JobMix{Stream: 2, Compute: 1, Irregular: 1}, Seed: 7,
	})
}

// A fault-free run completes every job, sheds nothing and reports
// consistent per-node accounting.
func TestRunCompletesAll(t *testing.T) {
	for _, policy := range []sched.Policy{sched.Static, sched.Dynamic, sched.HGuided} {
		jobs := testJobs(500)
		r := New(testCluster(policy, 0)).Run(jobs)
		if r.Submitted != len(jobs) || r.Completed != len(jobs) {
			t.Fatalf("%v: submitted %d completed %d, want %d each", policy, r.Submitted, r.Completed, len(jobs))
		}
		if r.Shed != 0 || r.Migrated != 0 || r.NodeLosses != 0 {
			t.Fatalf("%v: fault-free run shed %d migrated %d losses %d", policy, r.Shed, r.Migrated, r.NodeLosses)
		}
		nodeJobs := 0
		for _, n := range r.Nodes {
			nodeJobs += n.Jobs
			if n.Util < 0 || n.Util > 1 {
				t.Errorf("%v: node %d utilization %g outside [0,1]", policy, n.ID, n.Util)
			}
		}
		if nodeJobs != len(jobs) {
			t.Errorf("%v: per-node jobs sum to %d, want %d", policy, nodeJobs, len(jobs))
		}
		if got := r.Sojourn.Count(); got != uint64(len(jobs)) {
			t.Errorf("%v: sojourn histogram holds %d observations, want %d", policy, got, len(jobs))
		}
		if r.Queue.Quantile(0.99) > r.Sojourn.Quantile(0.99) {
			t.Errorf("%v: queue p99 %g above sojourn p99 %g", policy, r.Queue.Quantile(0.99), r.Sojourn.Quantile(0.99))
		}
	}
}

// Equal (Config, trace) pairs reproduce the identical Result.
func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		return New(testCluster(sched.HGuided, 0.02)).Run(testJobs(800))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal configs and traces produced different results")
	}
	if a.NodeLosses == 0 {
		t.Fatal("loss-rate 0.02 run injected no device losses (test is vacuous)")
	}
}

// Device loss degrades jobs, never drops them: every submitted job still
// completes, migrations happen, and the tail is worse than fault-free.
func TestDeviceLossMigratesNotLoses(t *testing.T) {
	jobs := testJobs(800)
	clean := New(testCluster(sched.Dynamic, 0)).Run(jobs)
	faulty := New(testCluster(sched.Dynamic, 0.02)).Run(jobs)
	if faulty.NodeLosses == 0 || faulty.Migrated == 0 {
		t.Fatalf("loss run opened %d windows, migrated %d jobs; want both > 0", faulty.NodeLosses, faulty.Migrated)
	}
	// Every admitted job completes: migration degrades, never drops.
	if faulty.Completed+faulty.Shed != faulty.Submitted {
		t.Fatalf("loss run: completed %d + shed %d != submitted %d", faulty.Completed, faulty.Shed, faulty.Submitted)
	}
	if faulty.Completed <= faulty.Migrated {
		t.Fatalf("only %d completions for %d migrations", faulty.Completed, faulty.Migrated)
	}
	// Degradation shows in the exact mean (quantiles are bucketed, so a
	// modest shift can land in the same bucket).
	if faulty.Sojourn.Mean() <= clean.Sojourn.Mean() {
		t.Errorf("loss run mean sojourn %g not above fault-free mean %g", faulty.Sojourn.Mean(), clean.Sojourn.Mean())
	}
	wasted := 0.0
	for _, n := range faulty.Nodes {
		wasted += n.WastedNs
	}
	if wasted <= 0 {
		t.Error("migrations abandoned no partial service (expected wasted time > 0)")
	}
}

// A single-node cluster with a tiny queue must shed overload instead of
// queueing without bound.
func TestOverloadSheds(t *testing.T) {
	cfg := Config{APUs: 1, Policy: sched.Dynamic, QueueCap: 2, Seed: 1}
	jobs := Generate(TraceSpec{Shape: Bursty, Jobs: 400, RatePerSec: 5e5, Seed: 1})
	r := New(cfg).Run(jobs)
	if r.Shed == 0 {
		t.Fatal("overloaded single node shed nothing")
	}
	if r.Completed+r.Shed != r.Submitted {
		t.Fatalf("completed %d + shed %d != submitted %d", r.Completed, r.Shed, r.Submitted)
	}
}

// The dynamic balancer must exploit node affinity: dGPU nodes win
// flop-bound jobs despite PCIe staging, APU nodes win bandwidth-bound
// jobs because staging dominates them. A single-class trace therefore
// concentrates on the matching kind.
func TestDynamicExploitsAffinity(t *testing.T) {
	share := func(mix JobMix) float64 {
		jobs := Generate(TraceSpec{Shape: Poisson, Jobs: 600, RatePerSec: 4e3, Mix: mix, Seed: 7})
		r := New(testCluster(sched.Dynamic, 0)).Run(jobs)
		dgpu := 0
		for _, n := range r.Nodes {
			if n.Kind == DGPU {
				dgpu += n.Jobs
			}
		}
		return float64(dgpu) / float64(r.Completed)
	}
	computeShare := share(JobMix{Compute: 1})
	streamShare := share(JobMix{Stream: 1})
	if computeShare <= streamShare {
		t.Errorf("dGPU served %.0f%% of compute jobs but %.0f%% of stream jobs; want compute-leaning",
			100*computeShare, 100*streamShare)
	}
}

// With Metrics set, the run publishes the fleet.* counters and both
// histograms into the registry, matching the Result exactly.
func TestMetricsPublishing(t *testing.T) {
	reg := &trace.Registry{}
	cfg := testCluster(sched.Static, 0.02)
	cfg.Metrics = reg
	r := New(cfg).Run(testJobs(400))
	checks := []struct {
		name string
		want int
	}{
		{trace.CtrFleetSubmitted, r.Submitted},
		{trace.CtrFleetCompleted, r.Completed},
		{trace.CtrFleetMigrated, r.Migrated},
		{trace.CtrFleetShed, r.Shed},
		{trace.CtrFleetNodeLosses, r.NodeLosses},
	}
	for _, c := range checks {
		if got := reg.Get(c.name); got != float64(c.want) {
			t.Errorf("%s = %g, want %d", c.name, got, c.want)
		}
	}
	if reg.Get(trace.CtrFleetBusyNs) <= 0 {
		t.Errorf("%s not published", trace.CtrFleetBusyNs)
	}
	h := reg.Hist(trace.HistFleetJobNs)
	if h == nil || h.Count() != r.Sojourn.Count() {
		t.Errorf("registry %s does not match result (got %v)", trace.HistFleetJobNs, h)
	}
	if q := reg.Hist(trace.HistFleetQueueNs); q == nil || q.Count() != r.Queue.Count() {
		t.Errorf("registry %s does not match result", trace.HistFleetQueueNs)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{},
		{APUs: -1, DGPUs: 2},
		{APUs: 1, QueueCap: -3},
		{APUs: 1, MigrationPenaltyNs: -1},
		{APUs: 1, DeviceLossRate: -0.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New did not panic on an invalid config")
			}
		}()
		New(Config{})
	}()
}
