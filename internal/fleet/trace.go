package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"hetbench/internal/fault"
	"hetbench/internal/sched"
	"hetbench/internal/sim/timing"
)

// Class buckets jobs by the kernel family they run, mirroring the
// workload classes the single-machine experiments sweep: bandwidth-bound
// streaming, flop-bound compute, and divergent gather/scatter kernels.
type Class int

const (
	// ClassStream is a memory-bound streaming kernel (read-benchmark
	// shaped): long contiguous loads, almost no reuse.
	ClassStream Class = iota
	// ClassCompute is a flop-bound kernel (NBody shaped): high arithmetic
	// intensity, cache-friendly traffic.
	ClassCompute
	// ClassIrregular is a divergent gather kernel: scattered accesses
	// (poor coalescing) and derated vector efficiency.
	ClassIrregular
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassStream:
		return "stream"
	case ClassCompute:
		return "compute"
	case ClassIrregular:
		return "irregular"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// classBaseItems is each class's nominal work size before the per-job
// size multiplier; sizes differ so the job mix exercises both
// under-occupied and saturated nodes.
var classBaseItems = [...]int{
	ClassStream:    1 << 15,
	ClassCompute:   1 << 14,
	ClassIrregular: 1 << 13,
}

// Cost returns the job's kernel cost: the class's per-item work shape at
// the job's item count. Pure, so every layer (placement prediction,
// booking, reporting) prices the same job identically.
func (j Job) Cost() timing.KernelCost {
	switch j.Class {
	case ClassCompute:
		return timing.KernelCost{
			Items: j.Items, SPFlops: 32768, LoadBytes: 32, StoreBytes: 8,
			Instrs: 8200, MissRate: 0.2, Coalesce: 1, VecEff: 1,
		}
	case ClassIrregular:
		return timing.KernelCost{
			Items: j.Items, SPFlops: 256, LoadBytes: 96, StoreBytes: 32,
			Instrs: 400, MissRate: 0.7, Coalesce: 0.25, VecEff: 0.8,
		}
	default: // ClassStream
		return timing.KernelCost{
			Items: j.Items, SPFlops: 64, LoadBytes: 512, StoreBytes: 8,
			Instrs: 132, MissRate: 0.9, Coalesce: 1, VecEff: 1,
		}
	}
}

// Job is one unit of cluster work: a kernel launch request arriving at a
// point in virtual time.
type Job struct {
	// ID is the job's position in its trace (0-based, arrival order).
	ID int
	// ArriveNs is the arrival time in virtual nanoseconds from trace start.
	ArriveNs float64
	// Class selects the kernel family (see Cost).
	Class Class
	// Items is the launch's global work size, wavefront-aligned.
	Items int
}

// Shape selects the arrival process of a trace.
type Shape int

const (
	// Poisson is an open-loop memoryless arrival process at the spec's
	// mean rate: exponential interarrivals, no correlation.
	Poisson Shape = iota
	// Bursty is an ON-OFF modulated Poisson process: exponential ON
	// windows arriving at burstFactor times the mean rate, separated by
	// exponential OFF windows sized so the long-run rate matches the
	// spec. Same mean load as Poisson, much heavier queueing tail.
	Bursty
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// ParseShape parses a Shape name as written by String.
func ParseShape(s string) (Shape, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "bursty":
		return Bursty, nil
	}
	return 0, fmt.Errorf("fleet: unknown trace shape %q (want poisson or bursty)", s)
}

// burstFactor is the ON-window rate multiplier of the bursty shape; the
// OFF windows are sized (factor-1)× the ON windows so the long-run mean
// rate is unchanged.
const burstFactor = 4

// burstMeanOnJobs sizes the expected number of arrivals inside one ON
// window; with the OFF window this fixes the burst period.
const burstMeanOnJobs = 32

// JobMix weights the three job classes; Generate normalizes the weights
// with sched.Shares, so only ratios matter. The zero value means equal
// weights.
type JobMix struct {
	Stream, Compute, Irregular float64
}

// classShares normalizes the mix into per-class probabilities.
func (m JobMix) classShares() []float64 {
	return sched.Shares([]float64{m.Stream, m.Compute, m.Irregular})
}

// TraceSpec parameterizes one deterministic arrival trace.
type TraceSpec struct {
	// Shape selects the arrival process.
	Shape Shape
	// Jobs is the trace length.
	Jobs int
	// RatePerSec is the long-run mean arrival rate in jobs per second of
	// virtual time.
	RatePerSec float64
	// Mix weights the job classes (zero value: all streaming).
	Mix JobMix
	// Seed seeds the trace's private PRNG stream. Equal specs generate
	// equal traces on every platform and at any concurrency.
	Seed int64
}

// Validate reports an unusable spec.
func (s TraceSpec) Validate() error {
	switch {
	case s.Jobs < 0:
		return fmt.Errorf("fleet: trace Jobs %d must be non-negative", s.Jobs)
	case !(s.RatePerSec > 0) && s.Jobs > 0: // NaN-safe
		return fmt.Errorf("fleet: trace RatePerSec %g must be positive", s.RatePerSec)
	case s.Shape != Poisson && s.Shape != Bursty:
		return fmt.Errorf("fleet: unknown trace shape %d", int(s.Shape))
	}
	return nil
}

// wavefront aligns job sizes to whole wavefronts, matching the alignment
// guarantee of the in-machine scheduler's chunking.
const wavefront = 64

// maxJobItems caps the size multiplier's lognormal tail so one outlier
// job cannot dominate a whole trace.
const maxJobItems = 1 << 20

// Generate materializes the trace: spec.Jobs jobs in non-decreasing
// arrival order. It is a pure function of the spec — a private PRNG
// stream is derived from the seed with fault.SubSeed, every draw happens
// in one fixed sequence, and no global state is touched — so concurrent
// generators are race-free and bit-identical to serial ones.
func Generate(spec TraceSpec) []Job {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(fault.SubSeed(spec.Seed, traceStream)))
	jobs := make([]Job, 0, spec.Jobs)
	shares := spec.Mix.classShares()
	rateNs := spec.RatePerSec / 1e9 // arrivals per virtual ns

	emit := func(t float64) {
		j := Job{ID: len(jobs), ArriveNs: t}
		// Class: one uniform draw against the cumulative mix.
		u := rng.Float64()
		acc := 0.0
		for ci, w := range shares {
			acc += w
			if u < acc {
				j.Class = Class(ci)
				break
			}
		}
		// Size: lognormal multiplier around the class base, aligned to
		// whole wavefronts and capped.
		mult := math.Exp(0.5 * rng.NormFloat64())
		items := int(float64(classBaseItems[j.Class])*mult + 0.5)
		items = (items + wavefront - 1) / wavefront * wavefront
		if items < wavefront {
			items = wavefront
		}
		if items > maxJobItems {
			items = maxJobItems
		}
		j.Items = items
		jobs = append(jobs, j)
	}

	switch spec.Shape {
	case Bursty:
		onRate := rateNs * burstFactor
		meanOnNs := burstMeanOnJobs / onRate
		meanOffNs := meanOnNs * (burstFactor - 1)
		t := rng.ExpFloat64() * meanOffNs // open in an OFF window
		for len(jobs) < spec.Jobs {
			end := t + rng.ExpFloat64()*meanOnNs
			for len(jobs) < spec.Jobs {
				t += rng.ExpFloat64() / onRate
				if t >= end {
					break
				}
				emit(t)
			}
			t = end + rng.ExpFloat64()*meanOffNs
		}
	default: // Poisson
		t := 0.0
		for len(jobs) < spec.Jobs {
			t += rng.ExpFloat64() / rateNs
			emit(t)
		}
	}
	return jobs
}

// traceStream is the SubSeed stream id reserved for trace generation, so
// a trace and a same-seeded cluster draw from unrelated PRNG sequences.
// Node injectors use streams 1..n (see New).
const traceStream = -1

// ArrivalOffsets converts the spec's trace into wall-clock dispatch
// offsets for a live load generator: job i should be sent ArrivalOffsets[i]
// after the run starts. Virtual nanoseconds map 1:1 onto wall
// nanoseconds, so RatePerSec becomes real requests per second and the
// same seed that drove a simulation replays the same arrival process
// against a running hetbenchd.
func ArrivalOffsets(spec TraceSpec) []time.Duration {
	jobs := Generate(spec)
	out := make([]time.Duration, len(jobs))
	for i, j := range jobs {
		out[i] = time.Duration(j.ArriveNs)
	}
	return out
}
