package fleet

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func testSpec(shape Shape) TraceSpec {
	return TraceSpec{
		Shape:      shape,
		Jobs:       4000,
		RatePerSec: 2e5,
		Mix:        JobMix{Stream: 2, Compute: 1, Irregular: 1},
		Seed:       42,
	}
}

// Equal specs generate equal traces; different seeds diverge.
func TestGenerateDeterministic(t *testing.T) {
	for _, shape := range []Shape{Poisson, Bursty} {
		a := Generate(testSpec(shape))
		b := Generate(testSpec(shape))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: equal specs generated different traces", shape)
		}
		other := testSpec(shape)
		other.Seed = 43
		if reflect.DeepEqual(a, Generate(other)) {
			t.Errorf("%v: different seeds generated identical traces", shape)
		}
	}
}

// Concurrent generators must be race-free and bit-identical to a serial
// one — the contract that lets runner cells regenerate a shared trace
// instead of synchronizing on one copy. Run under -race.
func TestGenerateParallelMatchesSerial(t *testing.T) {
	for _, shape := range []Shape{Poisson, Bursty} {
		want := Generate(testSpec(shape))
		const workers = 8
		got := make([][]Job, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				got[w] = Generate(testSpec(shape))
			}(w)
		}
		wg.Wait()
		for w, trace := range got {
			if !reflect.DeepEqual(trace, want) {
				t.Errorf("%v: worker %d trace differs from serial generation", shape, w)
			}
		}
	}
}

// Traces must respect the spec: length, ordering, alignment, class mix
// and (approximately) the requested mean rate for both shapes.
func TestGenerateShape(t *testing.T) {
	for _, shape := range []Shape{Poisson, Bursty} {
		spec := testSpec(shape)
		jobs := Generate(spec)
		if len(jobs) != spec.Jobs {
			t.Fatalf("%v: generated %d jobs, want %d", shape, len(jobs), spec.Jobs)
		}
		counts := map[Class]int{}
		prev := 0.0
		for i, j := range jobs {
			if j.ID != i {
				t.Fatalf("%v: job %d has ID %d", shape, i, j.ID)
			}
			if j.ArriveNs < prev {
				t.Fatalf("%v: job %d arrives at %g before predecessor at %g", shape, i, j.ArriveNs, prev)
			}
			prev = j.ArriveNs
			if j.Items < wavefront || j.Items%wavefront != 0 || j.Items > maxJobItems {
				t.Fatalf("%v: job %d has unaligned size %d", shape, i, j.Items)
			}
			counts[j.Class]++
		}
		// Mean rate within 15% of the spec (both shapes share the long-run rate).
		span := jobs[len(jobs)-1].ArriveNs
		rate := float64(len(jobs)) / span * 1e9
		if math.Abs(rate-spec.RatePerSec)/spec.RatePerSec > 0.15 {
			t.Errorf("%v: achieved rate %.0f/s, want ~%.0f/s", shape, rate, spec.RatePerSec)
		}
		// Mix 2:1:1 within loose bounds.
		if counts[ClassStream] < counts[ClassCompute] || counts[ClassStream] < counts[ClassIrregular] {
			t.Errorf("%v: class counts %v do not reflect the 2:1:1 mix", shape, counts)
		}
		for c, n := range counts {
			if n == 0 {
				t.Errorf("%v: class %v never generated", shape, c)
			}
		}
	}
}

// Bursty traces concentrate arrivals: the maximum arrivals seen in any
// short window should clearly exceed Poisson's under the same mean rate.
func TestBurstyIsBurstier(t *testing.T) {
	window := 1e9 / testSpec(Poisson).RatePerSec * 8 // ~8 mean interarrivals
	peak := func(jobs []Job) int {
		best, lo := 0, 0
		for hi := range jobs {
			for jobs[hi].ArriveNs-jobs[lo].ArriveNs > window {
				lo++
			}
			if n := hi - lo + 1; n > best {
				best = n
			}
		}
		return best
	}
	pp := peak(Generate(testSpec(Poisson)))
	bp := peak(Generate(testSpec(Bursty)))
	if bp <= pp {
		t.Errorf("bursty peak %d jobs/window not above poisson peak %d", bp, pp)
	}
}

func TestParseShape(t *testing.T) {
	for _, shape := range []Shape{Poisson, Bursty} {
		got, err := ParseShape(shape.String())
		if err != nil || got != shape {
			t.Errorf("ParseShape(%q) = %v, %v", shape.String(), got, err)
		}
	}
	if _, err := ParseShape("diurnal"); err == nil {
		t.Error("ParseShape accepted an unknown shape")
	}
}

// ArrivalOffsets must replay the exact virtual trace as wall offsets.
func TestArrivalOffsets(t *testing.T) {
	spec := testSpec(Poisson)
	spec.Jobs = 100
	jobs := Generate(spec)
	offs := ArrivalOffsets(spec)
	if len(offs) != len(jobs) {
		t.Fatalf("got %d offsets, want %d", len(offs), len(jobs))
	}
	for i := range offs {
		if float64(offs[i]) != math.Trunc(jobs[i].ArriveNs) {
			t.Fatalf("offset %d = %v, want %g ns", i, offs[i], jobs[i].ArriveNs)
		}
	}
}

func TestTraceSpecValidate(t *testing.T) {
	for _, bad := range []TraceSpec{
		{Shape: Poisson, Jobs: -1, RatePerSec: 1},
		{Shape: Poisson, Jobs: 10},
		{Shape: Shape(9), Jobs: 10, RatePerSec: 1},
		{Shape: Poisson, Jobs: 10, RatePerSec: math.NaN()},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}
