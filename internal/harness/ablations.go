package harness

import (
	"fmt"
	"io"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/apps/comd"
	"hetbench/internal/apps/xsbench"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// HCCell is one row of the Section VII ablation.
type HCCell struct {
	App                             string
	Model                           modelapi.Name
	ElapsedMs, KernelMs, TransferMs float64
}

// AblationHCData runs XSBench (one big upfront transfer) and LULESH
// (iterative, the AMP fallback victim) on the discrete GPU under all four
// GPU models including HC: the async-overlap model must beat C++ AMP and
// OpenACC and approach (or beat) OpenCL, because uploads hide behind
// kernels and no compiler-managed copies ever recur.
func AblationHCData(scale Scale) []HCCell {
	w := newWorkloads(scale, timing.Double)
	var out []HCCell
	add := func(app string, model modelapi.Name, run func(*sim.Machine) appcore.Result) {
		m := sim.NewDGPU()
		r := run(m)
		out = append(out, HCCell{
			App: app, Model: model,
			ElapsedMs: r.ElapsedNs / 1e6, KernelMs: r.KernelNs / 1e6, TransferMs: r.TransferNs / 1e6,
		})
	}
	add("XSBench", modelapi.OpenCL, w.Xsbench.RunOpenCL)
	add("XSBench", modelapi.CppAMP, w.Xsbench.RunCppAMP)
	add("XSBench", modelapi.OpenACC, w.Xsbench.RunOpenACC)
	add("XSBench", modelapi.HC, w.Xsbench.RunHC)
	add("LULESH", modelapi.OpenCL, w.Lulesh.RunOpenCL)
	add("LULESH", modelapi.CppAMP, w.Lulesh.RunCppAMP)
	add("LULESH", modelapi.OpenACC, w.Lulesh.RunOpenACC)
	add("LULESH", modelapi.HC, w.Lulesh.RunHC)
	return out
}

// RunAblationHC renders the Section VII comparison.
func RunAblationHC(scale Scale, w io.Writer) error {
	t := report.NewTable("XSBench and LULESH on the R9 280X: HC's async transfers vs the 2015 models",
		"Application", "Model", "Elapsed ms", "Kernel ms", "Transfer ms (charged)")
	for _, c := range AblationHCData(scale) {
		t.AddRowf(c.App, string(c.Model), fmt.Sprintf("%.2f", c.ElapsedMs), fmt.Sprintf("%.2f", c.KernelMs), fmt.Sprintf("%.2f", c.TransferMs))
	}
	_, err := t.WriteTo(w)
	return err
}

// AblationTilesData returns (flat, tiled) CoMD OpenCL kernel times on the
// dGPU in ms — the Section VI-C "tiles gave ≈3×" claim. Uses a dedicated
// instance large enough that the force kernel dominates launch overhead.
func AblationTilesData(scale Scale) (flatMs, tiledMs float64) {
	cfg := comd.Config{Nx: 16, Ny: 16, Nz: 16, Iters: 3, FunctionalIters: 1}
	if scale == ScalePaper {
		cfg.Nx, cfg.Ny, cfg.Nz = 24, 24, 24
	}
	p := comd.NewProblem(cfg, timing.Single)
	flat := p.RunOpenCLFlat(sim.NewDGPU())
	tiled := p.RunOpenCL(sim.NewDGPU())
	return flat.KernelNs / 1e6, tiled.KernelNs / 1e6
}

// RunAblationTiles renders the tiling ablation.
func RunAblationTiles(scale Scale, w io.Writer) error {
	flat, tiled := AblationTilesData(scale)
	t := report.NewTable("CoMD force kernel on the R9 280X: LDS tiling (Section VI-C, paper: ≈3×)",
		"Variant", "Kernel ms", "Speedup")
	t.AddRowf("flat (no tiles)", fmt.Sprintf("%.3f", flat), "1.00")
	t.AddRowf("tiled (tile_static)", fmt.Sprintf("%.3f", tiled), fmt.Sprintf("%.2f", flat/tiled))
	_, err := t.WriteTo(w)
	return err
}

// GridTypeCell is one row of the XSBench grid-structure ablation.
type GridTypeCell struct {
	Grid                            string
	TableMB                         float64
	ElapsedMs, KernelMs, TransferMs float64
}

// AblationGridTypeData compares XSBench's unionized grid (one search,
// huge table) with the nuclide-grid structure (per-nuclide searches, ~6×
// smaller table) under OpenCL on the discrete GPU — the memory/compute
// trade behind the paper's aside that "the next step in the lookup-table
// size was 5 GB".
func AblationGridTypeData(scale Scale) []GridTypeCell {
	base := xsbench.Config{Nuclides: 32, GridPoints: 2048, Lookups: 100_000}
	if scale == ScaleDefault {
		base = xsbench.Config{Nuclides: 48, GridPoints: 4096, Lookups: 500_000}
	}
	if scale == ScalePaper {
		base = xsbench.PaperSmall()
	}
	var out []GridTypeCell
	for _, grid := range []xsbench.GridType{xsbench.UnionizedGrid, xsbench.NuclideGridOnly} {
		cfg := base
		cfg.Grid = grid
		p := xsbench.NewProblem(cfg, timing.Double)
		m := sim.NewDGPU()
		r := p.RunOpenCL(m)
		out = append(out, GridTypeCell{
			Grid:       grid.String(),
			TableMB:    float64(cfg.TableBytes(timing.Double)) / (1 << 20),
			ElapsedMs:  r.ElapsedNs / 1e6,
			KernelMs:   r.KernelNs / 1e6,
			TransferMs: r.TransferNs / 1e6,
		})
	}
	return out
}

// RunAblationGridType renders the grid-structure ablation.
func RunAblationGridType(scale Scale, w io.Writer) error {
	t := report.NewTable("XSBench grid structures on the R9 280X (OpenCL): memory vs search work",
		"Grid", "Table MB", "Elapsed ms", "Kernel ms", "Transfer ms")
	for _, c := range AblationGridTypeData(scale) {
		t.AddRowf(c.Grid, fmt.Sprintf("%.0f", c.TableMB), fmt.Sprintf("%.2f", c.ElapsedMs),
			fmt.Sprintf("%.2f", c.KernelMs), fmt.Sprintf("%.2f", c.TransferMs))
	}
	_, err := t.WriteTo(w)
	return err
}

// AblationDataRegionData returns miniFE OpenACC transfer volumes on the
// dGPU with and without the hand-placed data region (ms elapsed, MB
// moved).
func AblationDataRegionData(scale Scale) (withMs, withoutMs float64, withMB, withoutMB float64) {
	w := newWorkloads(scale, timing.Double)
	m1 := sim.NewDGPU()
	r1 := w.Minife.RunOpenACC(m1)
	st1 := m1.Link().Stats()
	m2 := sim.NewDGPU()
	r2 := w.Minife.RunOpenACCConservative(m2)
	st2 := m2.Link().Stats()
	toMB := func(b int64) float64 { return float64(b) / (1 << 20) }
	return r1.ElapsedNs / 1e6, r2.ElapsedNs / 1e6,
		toMB(st1.BytesToDevice + st1.BytesFromDevice),
		toMB(st2.BytesToDevice + st2.BytesFromDevice)
}

// RunAblationDataRegion renders the data-directive ablation.
func RunAblationDataRegion(scale Scale, w io.Writer) error {
	withMs, withoutMs, withMB, withoutMB := AblationDataRegionData(scale)
	t := report.NewTable("miniFE OpenACC on the R9 280X: the `data` directive (Section III-B)",
		"Variant", "Elapsed ms", "PCIe traffic MB")
	t.AddRowf("with data region", fmt.Sprintf("%.2f", withMs), fmt.Sprintf("%.1f", withMB))
	t.AddRowf("per-region copies", fmt.Sprintf("%.2f", withoutMs), fmt.Sprintf("%.1f", withoutMB))
	t.AddRowf("penalty", fmt.Sprintf("%.2fx", withoutMs/withMs), fmt.Sprintf("%.1fx", withoutMB/withMB))
	_, err := t.WriteTo(w)
	return err
}
