package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/apps/comd"
	"hetbench/internal/apps/xsbench"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// HCCell is one row of the Section VII ablation.
type HCCell struct {
	App                             string
	Model                           modelapi.Name
	ElapsedMs, KernelMs, TransferMs float64
}

// AblationHCData runs XSBench (one big upfront transfer) and LULESH
// (iterative, the AMP fallback victim) on the discrete GPU under all four
// GPU models including HC: the async-overlap model must beat C++ AMP and
// OpenACC and approach (or beat) OpenCL, because uploads hide behind
// kernels and no compiler-managed copies ever recur.
func AblationHCData(ctx context.Context, scale Scale) ([]HCCell, error) {
	// One runner cell per (app, model) row, each with its own workloads
	// and machine; the row order matches the serial table.
	combos := []struct {
		app   string
		model modelapi.Name
		run   func(w *workloads, m *sim.Machine) appcore.Result
	}{
		{"XSBench", modelapi.OpenCL, func(w *workloads, m *sim.Machine) appcore.Result { return w.Xsbench().RunOpenCL(m) }},
		{"XSBench", modelapi.CppAMP, func(w *workloads, m *sim.Machine) appcore.Result { return w.Xsbench().RunCppAMP(m) }},
		{"XSBench", modelapi.OpenACC, func(w *workloads, m *sim.Machine) appcore.Result { return w.Xsbench().RunOpenACC(m) }},
		{"XSBench", modelapi.HC, func(w *workloads, m *sim.Machine) appcore.Result { return w.Xsbench().RunHC(m) }},
		{"LULESH", modelapi.OpenCL, func(w *workloads, m *sim.Machine) appcore.Result { return w.Lulesh().RunOpenCL(m) }},
		{"LULESH", modelapi.CppAMP, func(w *workloads, m *sim.Machine) appcore.Result { return w.Lulesh().RunCppAMP(m) }},
		{"LULESH", modelapi.OpenACC, func(w *workloads, m *sim.Machine) appcore.Result { return w.Lulesh().RunOpenACC(m) }},
		{"LULESH", modelapi.HC, func(w *workloads, m *sim.Machine) appcore.Result { return w.Lulesh().RunHC(m) }},
	}
	return runner.Map(ctx, "hc", len(combos), func(cx *runner.Ctx, i int) HCCell {
		c := combos[i]
		w := newWorkloads(scale, timing.Double)
		r := c.run(w, cx.Machine(sim.NewDGPU))
		return HCCell{
			App: c.app, Model: c.model,
			ElapsedMs: r.ElapsedNs / 1e6, KernelMs: r.KernelNs / 1e6, TransferMs: r.TransferNs / 1e6,
		}
	})
}

// RunAblationHC renders the Section VII comparison.
func RunAblationHC(ctx context.Context, scale Scale, w io.Writer) error {
	t := report.NewTable("XSBench and LULESH on the R9 280X: HC's async transfers vs the 2015 models",
		"Application", "Model", "Elapsed ms", "Kernel ms", "Transfer ms (charged)")
	cells, err := AblationHCData(ctx, scale)
	if err != nil {
		return err
	}
	for _, c := range cells {
		t.AddRowf(c.App, string(c.Model), fmt.Sprintf("%.2f", c.ElapsedMs), fmt.Sprintf("%.2f", c.KernelMs), fmt.Sprintf("%.2f", c.TransferMs))
	}
	_, err = t.WriteTo(w)
	return err
}

// AblationTilesData returns (flat, tiled) CoMD OpenCL kernel times on the
// dGPU in ms — the Section VI-C "tiles gave ≈3×" claim. Uses a dedicated
// instance large enough that the force kernel dominates launch overhead.
func AblationTilesData(ctx context.Context, scale Scale) (flatMs, tiledMs float64, err error) {
	cfg := comd.Config{Nx: 16, Ny: 16, Nz: 16, Iters: 3, FunctionalIters: 1}
	if scale == ScalePaper {
		cfg.Nx, cfg.Ny, cfg.Nz = 24, 24, 24
	}
	// Two independent cells: the flat and tiled variants share nothing
	// but the (immutable) problem configuration.
	ms, err := runner.Map(ctx, "tiles", 2, func(cx *runner.Ctx, i int) float64 {
		p := comd.NewProblem(cfg, timing.Single)
		m := cx.Machine(sim.NewDGPU)
		if i == 0 {
			return p.RunOpenCLFlat(m).KernelNs / 1e6
		}
		return p.RunOpenCL(m).KernelNs / 1e6
	})
	if err != nil {
		return 0, 0, err
	}
	return ms[0], ms[1], nil
}

// RunAblationTiles renders the tiling ablation.
func RunAblationTiles(ctx context.Context, scale Scale, w io.Writer) error {
	flat, tiled, err := AblationTilesData(ctx, scale)
	if err != nil {
		return err
	}
	t := report.NewTable("CoMD force kernel on the R9 280X: LDS tiling (Section VI-C, paper: ≈3×)",
		"Variant", "Kernel ms", "Speedup")
	t.AddRowf("flat (no tiles)", fmt.Sprintf("%.3f", flat), "1.00")
	t.AddRowf("tiled (tile_static)", fmt.Sprintf("%.3f", tiled), fmt.Sprintf("%.2f", flat/tiled))
	_, err = t.WriteTo(w)
	return err
}

// GridTypeCell is one row of the XSBench grid-structure ablation.
type GridTypeCell struct {
	Grid                            string
	TableMB                         float64
	ElapsedMs, KernelMs, TransferMs float64
}

// AblationGridTypeData compares XSBench's unionized grid (one search,
// huge table) with the nuclide-grid structure (per-nuclide searches, ~6×
// smaller table) under OpenCL on the discrete GPU — the memory/compute
// trade behind the paper's aside that "the next step in the lookup-table
// size was 5 GB".
func AblationGridTypeData(ctx context.Context, scale Scale) ([]GridTypeCell, error) {
	base := xsbench.Config{Nuclides: 32, GridPoints: 2048, Lookups: 100_000}
	if scale == ScaleDefault {
		base = xsbench.Config{Nuclides: 48, GridPoints: 4096, Lookups: 500_000}
	}
	if scale == ScalePaper {
		base = xsbench.PaperSmall()
	}
	grids := []xsbench.GridType{xsbench.UnionizedGrid, xsbench.NuclideGridOnly}
	return runner.Map(ctx, "gridtype", len(grids), func(cx *runner.Ctx, i int) GridTypeCell {
		cfg := base
		cfg.Grid = grids[i]
		p := xsbench.NewProblem(cfg, timing.Double)
		r := p.RunOpenCL(cx.Machine(sim.NewDGPU))
		return GridTypeCell{
			Grid:       grids[i].String(),
			TableMB:    float64(cfg.TableBytes(timing.Double)) / (1 << 20),
			ElapsedMs:  r.ElapsedNs / 1e6,
			KernelMs:   r.KernelNs / 1e6,
			TransferMs: r.TransferNs / 1e6,
		}
	})
}

// RunAblationGridType renders the grid-structure ablation.
func RunAblationGridType(ctx context.Context, scale Scale, w io.Writer) error {
	t := report.NewTable("XSBench grid structures on the R9 280X (OpenCL): memory vs search work",
		"Grid", "Table MB", "Elapsed ms", "Kernel ms", "Transfer ms")
	cells, err := AblationGridTypeData(ctx, scale)
	if err != nil {
		return err
	}
	for _, c := range cells {
		t.AddRowf(c.Grid, fmt.Sprintf("%.0f", c.TableMB), fmt.Sprintf("%.2f", c.ElapsedMs),
			fmt.Sprintf("%.2f", c.KernelMs), fmt.Sprintf("%.2f", c.TransferMs))
	}
	_, err = t.WriteTo(w)
	return err
}

// AblationDataRegionData returns miniFE OpenACC transfer volumes on the
// dGPU with and without the hand-placed data region (ms elapsed, MB
// moved).
func AblationDataRegionData(ctx context.Context, scale Scale) (withMs, withoutMs float64, withMB, withoutMB float64, err error) {
	type cell struct{ ms, mb float64 }
	out, err := runner.Map(ctx, "dataregion", 2, func(cx *runner.Ctx, i int) cell {
		w := newWorkloads(scale, timing.Double)
		m := cx.Machine(sim.NewDGPU)
		var r appcore.Result
		if i == 0 {
			r = w.Minife().RunOpenACC(m).Result
		} else {
			r = w.Minife().RunOpenACCConservative(m).Result
		}
		st := m.Link().Stats()
		return cell{ms: r.ElapsedNs / 1e6, mb: float64(st.BytesToDevice+st.BytesFromDevice) / (1 << 20)}
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return out[0].ms, out[1].ms, out[0].mb, out[1].mb, nil
}

// RunAblationDataRegion renders the data-directive ablation.
func RunAblationDataRegion(ctx context.Context, scale Scale, w io.Writer) error {
	withMs, withoutMs, withMB, withoutMB, err := AblationDataRegionData(ctx, scale)
	if err != nil {
		return err
	}
	t := report.NewTable("miniFE OpenACC on the R9 280X: the `data` directive (Section III-B)",
		"Variant", "Elapsed ms", "PCIe traffic MB")
	t.AddRowf("with data region", fmt.Sprintf("%.2f", withMs), fmt.Sprintf("%.1f", withMB))
	t.AddRowf("per-region copies", fmt.Sprintf("%.2f", withoutMs), fmt.Sprintf("%.1f", withoutMB))
	t.AddRowf("penalty", fmt.Sprintf("%.2fx", withoutMs/withMs), fmt.Sprintf("%.1fx", withoutMB/withMB))
	_, err = t.WriteTo(w)
	return err
}
