package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// Machines parses a -device flag value into machine constructors.
func Machines(device string) ([]func() *sim.Machine, error) {
	switch device {
	case "apu":
		return []func() *sim.Machine{sim.NewAPU}, nil
	case "dgpu":
		return []func() *sim.Machine{sim.NewDGPU}, nil
	case "both", "":
		return []func() *sim.Machine{sim.NewAPU, sim.NewDGPU}, nil
	default:
		return nil, fmt.Errorf("unknown device %q (apu|dgpu|both)", device)
	}
}

// ParsePrecision parses a -precision flag value.
func ParsePrecision(s string) (timing.Precision, error) {
	switch s {
	case "single", "sp":
		return timing.Single, nil
	case "double", "dp", "":
		return timing.Double, nil
	default:
		return 0, fmt.Errorf("unknown precision %q (single|double)", s)
	}
}

// RunApp runs one app under OpenMP + the three GPU models on each machine
// and prints a per-model comparison table — the shared body of the
// per-application command-line tools.
func RunApp(ctx context.Context, w io.Writer, appName string, machines []func() *sim.Machine,
	run func(m *sim.Machine, model modelapi.Name) appcore.Result) error {

	// The OpenMP baseline is machine-independent (it always runs on the
	// APU's CPU cores), so compute it once, not once per machine; each
	// machine's model comparison is then an independent runner cell.
	base := run(sim.NewAPU(), modelapi.OpenMP)
	cells := make([]runner.Cell, len(machines))
	for i, mk := range machines {
		mk := mk
		cells[i] = runner.Cell{Label: "app/" + appName, Run: func(cx *runner.Ctx) error {
			machine := cx.Machine(mk)
			t := report.NewTable(
				fmt.Sprintf("%s on %s (baseline: 4-core OpenMP, %.3f ms)", appName, machine.Name(), base.ElapsedNs/1e6),
				"Model", "Elapsed ms", "Kernel ms", "Transfer ms", "Speedup", "Checksum")
			t.AddRowf("OpenMP", fmt.Sprintf("%.3f", base.ElapsedNs/1e6),
				fmt.Sprintf("%.3f", base.KernelNs/1e6), "0.000", "1.00", fmt.Sprintf("%g", base.Checksum))
			for _, model := range modelapi.All() {
				r := run(cx.Machine(mk), model)
				t.AddRowf(string(model),
					fmt.Sprintf("%.3f", r.ElapsedNs/1e6),
					fmt.Sprintf("%.3f", r.KernelNs/1e6),
					fmt.Sprintf("%.3f", r.TransferNs/1e6),
					fmt.Sprintf("%.2f", r.SpeedupOver(base)),
					fmt.Sprintf("%g", r.Checksum))
			}
			if _, err := t.WriteTo(cx.Out); err != nil {
				return err
			}
			fmt.Fprintln(cx.Out)
			return nil
		}}
	}
	_, err := runner.Run(ctx, w, cells)
	return err
}
