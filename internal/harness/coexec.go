package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/apps/lulesh"
	"hetbench/internal/apps/minife"
	"hetbench/internal/apps/readmem"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// coexecPartitioners is the row set of the co-execution sweep: the
// accelerator-only baseline, the roofline-derived static split plus two
// deliberately skewed fixed fractions (so the adaptive policies have a
// "worst static" to beat), and the two adaptive policies.
func coexecPartitioners() []struct {
	Label string
	Cfg   *sched.Config
} {
	return []struct {
		Label string
		Cfg   *sched.Config
	}{
		{"gpu-only", nil},
		{"static", &sched.Config{Policy: sched.Static}},
		{"static25", &sched.Config{Policy: sched.Static, HostFraction: 0.25}},
		{"static75", &sched.Config{Policy: sched.Static, HostFraction: 0.75}},
		{"dynamic", &sched.Config{Policy: sched.Dynamic}},
		{"hguided", &sched.Config{Policy: sched.HGuided}},
	}
}

// CoexecCell is one (machine, app, partitioner) cell of the co-execution
// sweep, run under OpenCL (the yardstick model).
type CoexecCell struct {
	Machine   string
	App       string
	Partition string

	Result appcore.Result
	// BaselineNs is the same app's gpu-only elapsed time on this machine,
	// the denominator of Speedup.
	BaselineNs float64

	Stats sched.Stats
}

// Speedup is the cell's gain over running the accelerator alone.
func (c CoexecCell) Speedup() float64 {
	if c.Result.ElapsedNs <= 0 {
		return 0
	}
	return c.BaselineNs / c.Result.ElapsedNs
}

// CoexecData sweeps readmem, LULESH and miniFE across the partitioners on
// both machines. The partitioners draw no randomness, so the sweep is
// bit-reproducible under any run-wide seed; Seed() is still threaded into
// each scheduler so future stochastic policies inherit the contract.
func CoexecData(ctx context.Context, scale Scale) ([]CoexecCell, error) {
	apps := []struct {
		name string
		run  func(w *workloads, m *sim.Machine) appcore.Result
	}{
		{readmem.AppName, func(w *workloads, m *sim.Machine) appcore.Result { return w.Readmem().Run(m, modelapi.OpenCL) }},
		{lulesh.AppName, func(w *workloads, m *sim.Machine) appcore.Result { return w.Lulesh().Run(m, modelapi.OpenCL) }},
		{minife.AppName, func(w *workloads, m *sim.Machine) appcore.Result { return w.Minife().Run(m, modelapi.OpenCL).Result }},
	}
	machines := []struct {
		name string
		mk   func() *sim.Machine
	}{
		{"APU", sim.NewAPU},
		{"dGPU", sim.NewDGPU},
	}
	// One runner cell per (machine, app), machine-major like the serial
	// sweep: the gpu-only baseline is every partitioner's denominator, so
	// the partitioner loop stays inside the cell that computed it.
	type combo struct{ mach, app int }
	var combos []combo
	for mi := range machines {
		for ai := range apps {
			combos = append(combos, combo{mi, ai})
		}
	}
	groups, err := runner.Map(ctx, "coexec", len(combos), func(cx *runner.Ctx, i int) []CoexecCell {
		mach, app := machines[combos[i].mach], apps[combos[i].app]
		w := newWorkloads(scale, timing.Double)
		baseline := app.run(w, cx.Machine(mach.mk))
		var cells []CoexecCell
		for _, p := range coexecPartitioners() {
			cell := CoexecCell{
				Machine: mach.name, App: app.name, Partition: p.Label,
				BaselineNs: baseline.ElapsedNs,
			}
			if p.Cfg == nil {
				cell.Result = baseline
			} else {
				cfg := *p.Cfg
				cfg.Seed = Seed()
				s := sched.New(cfg)
				m := cx.Machine(mach.mk)
				m.SetCoexec(s)
				cell.Result = app.run(w, m)
				cell.Stats = s.Stats()
			}
			cells = append(cells, cell)
		}
		return cells
	})
	if err != nil {
		return nil, err
	}
	var cells []CoexecCell
	for _, g := range groups {
		cells = append(cells, g...)
	}
	return cells, nil
}

// RunCoexec is the coexec experiment: one table per machine comparing the
// partitioners' makespans against the accelerator-only baseline, with the
// host's share of the iteration space and the chunk/migration tallies.
func RunCoexec(ctx context.Context, scale Scale, w io.Writer) error {
	cells, err := CoexecData(ctx, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "CPU+accelerator co-execution under OpenCL costs (seed %d; the partitioners are\n", Seed())
	fmt.Fprintln(w, "deterministic, so equal seeds give bit-identical sweeps). Irregular kernels —")
	fmt.Fprintln(w, "miniFE's SpMV stays eligible here because OpenCL uses CSR-Adaptive — run split;")
	fmt.Fprintln(w, "speedup is vs the same app on the accelerator alone.")
	fmt.Fprintln(w)
	for _, mach := range []string{"APU", "dGPU"} {
		t := report.NewTable("Co-execution on the "+mach,
			"App", "Partitioner", "Elapsed ms", "Kernel ms", "Host share", "Chunks", "Migrated", "Speedup")
		for _, c := range cells {
			if c.Machine != mach {
				continue
			}
			share := "-"
			if c.Partition != "gpu-only" {
				share = fmt.Sprintf("%.0f%%", c.Stats.HostShare()*100)
			}
			t.AddRowf(c.App, c.Partition,
				fmt.Sprintf("%.3f", c.Result.ElapsedNs/1e6),
				fmt.Sprintf("%.3f", c.Result.KernelNs/1e6),
				share, c.Stats.Chunks, c.Stats.Migrated,
				fmt.Sprintf("%.2f×", c.Speedup()))
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "The skewed static splits (static25/static75) show the cost of guessing the device")
	fmt.Fprintln(w, "ratio wrong; the adaptive policies stay near the best split without knowing the")
	fmt.Fprintln(w, "rates ahead of time, paying at most a few percent of chunking overhead for it.")
	return nil
}
