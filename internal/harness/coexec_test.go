package harness

import (
	"bytes"
	"strings"
	"testing"

	"hetbench/internal/apps/readmem"
)

// findCell pulls one (machine, app, partitioner) cell out of a sweep.
func findCell(t *testing.T, cells []CoexecCell, machine, app, part string) CoexecCell {
	t.Helper()
	for _, c := range cells {
		if c.Machine == machine && c.App == app && c.Partition == part {
			return c
		}
	}
	t.Fatalf("no cell for %s/%s/%s", machine, app, part)
	return CoexecCell{}
}

// The ISSUE acceptance criterion: on the memory-bound readmem workload the
// dynamic partitioner's simulated time beats the worst static split on both
// machines.
func TestCoexecDynamicBeatsWorstStatic(t *testing.T) {
	cells := must(CoexecData(bg, ScaleSmoke))
	for _, mach := range []string{"APU", "dGPU"} {
		worst := 0.0
		for _, part := range []string{"static", "static25", "static75"} {
			if ns := findCell(t, cells, mach, readmem.AppName, part).Result.ElapsedNs; ns > worst {
				worst = ns
			}
		}
		dyn := findCell(t, cells, mach, readmem.AppName, "dynamic").Result.ElapsedNs
		if dyn >= worst {
			t.Errorf("%s: dynamic readmem %.0f ns did not beat worst static %.0f ns", mach, dyn, worst)
		}
	}
}

// Every scheduled cell must actually split work (both stats populated and
// all launched items accounted for somewhere) without breaking the app:
// the checksum must match the gpu-only baseline's.
func TestCoexecCellsSplitAndStayCorrect(t *testing.T) {
	cells := must(CoexecData(bg, ScaleSmoke))
	for _, c := range cells {
		if c.Partition == "gpu-only" {
			continue
		}
		if c.Stats.Splits == 0 || c.Stats.HostItems+c.Stats.AccelItems == 0 {
			t.Errorf("%s/%s/%s: no splits recorded: %+v", c.Machine, c.App, c.Partition, c.Stats)
		}
		base := findCell(t, cells, c.Machine, c.App, "gpu-only")
		if c.Result.Checksum != base.Result.Checksum {
			t.Errorf("%s/%s/%s: checksum %g != gpu-only %g",
				c.Machine, c.App, c.Partition, c.Result.Checksum, base.Result.Checksum)
		}
	}
}

// Two sweeps under the same seed and scale must be identical cell by cell —
// the coexec experiment's -seed determinism contract.
func TestCoexecDeterminism(t *testing.T) {
	a := must(CoexecData(bg, ScaleSmoke))
	b := must(CoexecData(bg, ScaleSmoke))
	if len(a) != len(b) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cell %d differs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

// RunCoexec renders one table per machine and mentions the seed contract.
func TestRunCoexecOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := RunCoexec(bg, ScaleSmoke, &buf); err != nil {
		t.Fatalf("RunCoexec: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Co-execution on the APU", "Co-execution on the dGPU", "seed", "hguided", "dynamic", "gpu-only"} {
		if !strings.Contains(out, want) {
			t.Errorf("coexec output missing %q", want)
		}
	}
}
