package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench"
	"hetbench/internal/fault"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
	"hetbench/internal/workload"
)

// dagSchedules is the row set of the DAG sweep: the serialized
// single-device baseline every speedup is measured against, the three
// DAG-planner policies, and the dynamic policy re-run with the
// accelerator lost at t=0 (so the rebooking path shows up in the output).
func dagSchedules() []struct {
	Label  string
	Policy sched.Policy
	Serial bool
	Loss   bool
} {
	return []struct {
		Label  string
		Policy sched.Policy
		Serial bool
		Loss   bool
	}{
		{"serial", 0, true, false},
		{"static", sched.Static, false, false},
		{"dynamic", sched.Dynamic, false, false},
		{"hguided", sched.HGuided, false, false},
		{"dyn+loss", sched.Dynamic, false, true},
	}
}

// DagCell is one (machine, spec, model, schedule) cell of the DAG sweep.
type DagCell struct {
	Machine  string
	Spec     string
	Model    modelapi.Name
	Schedule string

	Result workload.Result
	// BaselineNs is the serialized run's elapsed time for the same
	// (machine, spec, model), the denominator of Speedup.
	BaselineNs float64
	// Faults counts injected device losses on the dyn+loss row.
	Faults int64
}

// Speedup is the cell's gain over the serialized single-device baseline.
func (c DagCell) Speedup() float64 {
	if c.Result.ElapsedNs <= 0 {
		return 0
	}
	return c.BaselineNs / c.Result.ElapsedNs
}

// dagIterations maps the run scale to the outer-loop count: smoke runs
// each DAG once, small twice, and the full scales honor each spec's own
// iteration count.
func dagIterations(scale Scale) int {
	switch scale {
	case ScaleSmoke:
		return 1
	case ScaleSmall:
		return 2
	default:
		return 0 // the spec's declared count
	}
}

// dagPrograms loads and compiles the shipped specs once per cell worker.
func dagPrograms() ([]*workload.Program, error) {
	var progs []*workload.Program
	for _, path := range hetbench.SpecPaths() {
		data, err := hetbench.SpecFS.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		spec, err := workload.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", path, err)
		}
		prog, err := spec.Compile()
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", path, err)
		}
		progs = append(progs, prog)
	}
	return progs, nil
}

// DagData sweeps the four shipped workload specs across the three GPU
// models and the DAG schedules on both machines. The planner policies
// draw no randomness; the only seeded element is the dyn+loss row's fault
// stream, keyed off the run-wide seed with per-cell strides — so equal
// seeds give bit-identical sweeps at any worker count.
func DagData(ctx context.Context, scale Scale) ([]DagCell, error) {
	machines := []struct {
		name string
		mk   func() *sim.Machine
	}{
		{"APU", sim.NewAPU},
		{"dGPU", sim.NewDGPU},
	}
	// One runner cell per (machine, spec), machine-major: the serialized
	// baseline is every schedule's denominator, so the model × schedule
	// loops stay inside the cell that computed it.
	progs, err := dagPrograms()
	if err != nil {
		return nil, err
	}
	type combo struct{ mach, spec int }
	var combos []combo
	for mi := range machines {
		for si := range progs {
			combos = append(combos, combo{mi, si})
		}
	}
	iters := dagIterations(scale)
	groups, err := runner.Map(ctx, "dag", len(combos), func(cx *runner.Ctx, i int) []DagCell {
		mach, prog := machines[combos[i].mach], progs[combos[i].spec]
		var cells []DagCell
		for _, model := range modelapi.All() {
			var baselineNs float64
			for _, sc := range dagSchedules() {
				cell := DagCell{
					Machine: mach.name, Spec: prog.Spec.Name,
					Model: model, Schedule: sc.Label,
				}
				m := cx.Machine(mach.mk)
				opt := workload.Options{Model: model, Iterations: iters}
				if !sc.Serial {
					opt.Planner = sched.NewDag(sched.Config{Policy: sc.Policy, Seed: Seed()})
				}
				var inj *fault.Injector
				if sc.Loss {
					// Lose the accelerator at t=0 for 40% of the baseline
					// run: kernels issued inside the window rebook on the
					// host, later ones return to the accelerator.
					inj = fault.New(fault.Config{
						Seed:           cellSeed(combos[i].mach, combos[i].spec),
						DeviceLossRate: 0.5,
						DeviceLossNs:   0.4 * baselineNs,
					})
					for inj.LostUntilNs() == 0 {
						inj.Launch(0)
					}
					m.SetFaultInjector(inj, fault.DefaultPolicy())
				}
				cell.Result = workload.Execute(m, prog, opt)
				if sc.Serial {
					baselineNs = cell.Result.ElapsedNs
				}
				cell.BaselineNs = baselineNs
				if inj != nil {
					cell.Faults = inj.Count(fault.DeviceLost)
				}
				cells = append(cells, cell)
			}
		}
		return cells
	})
	if err != nil {
		return nil, err
	}
	var cells []DagCell
	for _, g := range groups {
		cells = append(cells, g...)
	}
	return cells, nil
}

// RunDag is the dag experiment: one table per machine sweeping spec ×
// model × schedule, with the data each model's staging strategy moved and
// the speedup over serialized single-device execution.
func RunDag(ctx context.Context, scale Scale, w io.Writer) error {
	cells, err := DagData(ctx, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Declarative multi-kernel workloads (specs/*.json) under the DAG-aware scheduler\n")
	fmt.Fprintf(w, "(seed %d; the planners are deterministic, so equal seeds give bit-identical\n", Seed())
	fmt.Fprintln(w, "sweeps). serial runs every kernel on one device in topo order; the DAG policies")
	fmt.Fprintln(w, "overlap independent kernels across both devices, staging priced per edge by each")
	fmt.Fprintln(w, "model's transfer strategy. dyn+loss loses the accelerator at t=0 (Reb = kernels")
	fmt.Fprintln(w, "rebooked host-ward); speedup is vs serial for the same spec and model.")
	fmt.Fprintln(w)
	type key struct {
		mach, spec string
		model      modelapi.Name
	}
	for _, mach := range []string{"APU", "dGPU"} {
		t := report.NewTable("DAG scheduling on the "+mach,
			"Spec", "Model", "Schedule", "Elapsed ms", "Moved MB", "Host k", "Accel k", "Reb", "Speedup")
		for _, c := range cells {
			if c.Machine != mach {
				continue
			}
			t.AddRowf(c.Spec, string(c.Model), c.Schedule,
				fmt.Sprintf("%.3f", c.Result.ElapsedNs/1e6),
				fmt.Sprintf("%.1f", float64(c.Result.MovedBytes)/1e6),
				c.Result.HostKernels, c.Result.AccelKernels, c.Result.Rebooked,
				fmt.Sprintf("%.2f×", c.Speedup()))
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	// The acceptance line: the best fault-free DAG win over serial.
	best := DagCell{}
	for _, c := range cells {
		if c.Schedule == "serial" || c.Schedule == "dyn+loss" {
			continue
		}
		if best.Result.ElapsedNs == 0 || c.Speedup() > best.Speedup() {
			best = c
		}
	}
	fmt.Fprintf(w, "Best DAG win over serialized execution: %s/%s under %s (%s): %.2f×.\n",
		best.Spec, best.Machine, best.Model, best.Schedule, best.Speedup())
	fmt.Fprintln(w, "Chains (mlp) cannot beat serial — there is nothing to overlap — while forked")
	fmt.Fprintln(w, "pipelines (sobel, 3mm) gain whenever the slower device's kernel time hides")
	fmt.Fprintln(w, "inside the faster device's busy window.")
	return nil
}
