package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestDagSweepShape pins the sweep's structure: 2 machines × 4 specs ×
// 3 models × 5 schedules, every cell carrying its serialized baseline.
func TestDagSweepShape(t *testing.T) {
	cells := must(DagData(bg, ScaleSmoke))
	if want := 2 * 4 * 3 * 5; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.BaselineNs <= 0 {
			t.Errorf("%s/%s/%s/%s has no baseline", c.Machine, c.Spec, c.Model, c.Schedule)
		}
		if c.Result.Kernels == 0 || c.Result.HostKernels+c.Result.AccelKernels != c.Result.Kernels {
			t.Errorf("%s/%s/%s/%s kernel accounting off: %+v", c.Machine, c.Spec, c.Model, c.Schedule, c.Result)
		}
	}
}

// TestDagBeatsSerialSomewhere locks the acceptance criterion into the
// test suite: at least one fault-free DAG cell beats its serialized
// baseline, and the dyn+loss rows actually exercise rebooking.
func TestDagBeatsSerialSomewhere(t *testing.T) {
	cells := must(DagData(bg, ScaleSmoke))
	wins, rebooked := 0, 0
	for _, c := range cells {
		switch c.Schedule {
		case "serial":
		case "dyn+loss":
			rebooked += c.Result.Rebooked
		default:
			if c.Speedup() > 1.001 {
				wins++
			}
		}
	}
	if wins == 0 {
		t.Error("no DAG schedule beat serialized execution in any cell")
	}
	if rebooked == 0 {
		t.Error("no kernel was ever rebooked on the dyn+loss rows")
	}
}

// TestDagRunDeterministic renders the experiment twice and demands
// byte-identical output (the double-run diff CI performs, in-process).
func TestDagRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := RunDag(bg, ScaleSmoke, &a); err != nil {
		t.Fatal(err)
	}
	if err := RunDag(bg, ScaleSmoke, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two identical-seed runs rendered different output")
	}
	if !strings.Contains(a.String(), "Best DAG win over serialized execution") {
		t.Error("output is missing the acceptance summary line")
	}
}
