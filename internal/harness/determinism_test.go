package harness

import (
	"bytes"
	"reflect"
	"testing"

	"hetbench/internal/harness/runner"
	"hetbench/internal/trace"
)

// The -race companion to the golden suite: the three seeded sweeps that
// mix fault injection, co-execution and DAG scheduling with per-cell
// machines run under a trace capture at one worker and at eight. The
// rendered bytes, the folded span and process counts, and the full
// counter registry must all match — the merge is deterministic, not
// merely race-free.
func TestParallelSweepsMatchSerialUnderCapture(t *testing.T) {
	type snapshot struct {
		out   string
		spans int
		procs []string
		ctrs  map[string]float64
	}
	render := func(jobs int) snapshot {
		old := runner.Jobs()
		runner.SetJobs(jobs)
		defer runner.SetJobs(old)
		capture := trace.New()
		runner.SetCapture(capture)
		defer runner.SetCapture(nil)
		var buf bytes.Buffer
		if err := RunCoexec(bg, ScaleSmoke, &buf); err != nil {
			t.Fatal(err)
		}
		if err := RunFaults(bg, ScaleSmoke, &buf); err != nil {
			t.Fatal(err)
		}
		if err := RunDag(bg, ScaleSmoke, &buf); err != nil {
			t.Fatal(err)
		}
		return snapshot{buf.String(), capture.Len(), capture.Processes(), capture.Metrics().Snapshot()}
	}
	serial := render(1)
	parallel := render(8)
	if serial.out != parallel.out {
		t.Error("rendered output differs between one and eight workers")
	}
	if serial.spans == 0 || serial.spans != parallel.spans {
		t.Errorf("folded span counts differ: %d serial vs %d parallel", serial.spans, parallel.spans)
	}
	if !reflect.DeepEqual(serial.procs, parallel.procs) {
		t.Errorf("process lists differ:\nserial:   %v\nparallel: %v", serial.procs, parallel.procs)
	}
	if len(serial.ctrs) == 0 || !reflect.DeepEqual(serial.ctrs, parallel.ctrs) {
		t.Errorf("counter registries differ:\nserial:   %v\nparallel: %v", serial.ctrs, parallel.ctrs)
	}
}
