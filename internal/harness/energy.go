package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/power"
	"hetbench/internal/sim/timing"
)

// EnergyRow is one (app, device) energy-to-solution measurement.
type EnergyRow struct {
	App     string
	Machine string
	TimeMs  float64
	EnergyJ float64
	AvgW    float64
}

// EnergyData runs every app under OpenCL on both machines and integrates
// device energy over the simulated activity: idle power across the whole
// run, dynamic power during kernels, DRAM energy per filtered byte, and
// PCIe energy per transferred byte. This is the extension behind the
// paper's opening motivation — heterogeneous devices exist to maximize
// performance under power budgets — answering which device wins on
// energy-to-solution, not just time.
func EnergyData(ctx context.Context, scale Scale) ([]EnergyRow, error) {
	// One runner cell per (app, machine) measurement, app-major so the
	// merged rows keep the serial sweep's order (the winner table pairs
	// consecutive rows).
	type combo struct {
		app string
		mk  func() *sim.Machine
	}
	var combos []combo
	for _, app := range AppNames {
		for _, mk := range []func() *sim.Machine{sim.NewAPU, sim.NewDGPU} {
			combos = append(combos, combo{app, mk})
		}
	}
	return runner.Map(ctx, "energy", len(combos), func(cx *runner.Ctx, i int) EnergyRow {
		w := newWorkloads(scale, timing.Double)
		r, _ := w.runnerByName(combos[i].app)
		m := cx.Machine(combos[i].mk)
		m.EnableCostLog()
		res := r.run(m, modelapi.OpenCL)

		dev := m.Accelerator()
		prof := power.ProfileFor(dev)
		model := timing.NewModel(dev)

		// Replay kernel costs for busy time and DRAM traffic.
		var busyNs, dramBytes float64
		for _, lc := range m.CostLog() {
			if lc.Target != sim.OnAccelerator {
				continue
			}
			kr := model.Kernel(lc.Cost)
			busyNs += kr.TimeNs
			dramBytes += kr.DRAMBytes
		}
		energy := prof.KernelEnergyJ(busyNs, dev.CoreClockMHz, dev.CoreClockMHz, dramBytes)
		// Idle power while not computing (transfers, host phases).
		idleNs := res.ElapsedNs - busyNs
		if idleNs > 0 {
			energy += prof.IdleW * idleNs / 1e9
		}
		if !m.Unified() {
			st := m.Link().Stats()
			energy += power.TransferEnergyJ(st.BytesToDevice + st.BytesFromDevice)
		}
		avgW := 0.0
		if res.ElapsedNs > 0 {
			avgW = energy / (res.ElapsedNs / 1e9)
		}
		return EnergyRow{
			App: r.name, Machine: m.Name(),
			TimeMs: res.ElapsedNs / 1e6, EnergyJ: energy, AvgW: avgW,
		}
	})
}

// RunEnergy renders the energy comparison.
func RunEnergy(ctx context.Context, scale Scale, w io.Writer) error {
	rows, err := EnergyData(ctx, scale)
	if err != nil {
		return err
	}
	t := report.NewTable("Energy to solution under OpenCL (device power only, DP)",
		"Application", "Device", "Time ms", "Energy J", "Avg W")
	for _, r := range rows {
		t.AddRowf(r.App, r.Machine,
			fmt.Sprintf("%.2f", r.TimeMs), fmt.Sprintf("%.3f", r.EnergyJ), fmt.Sprintf("%.0f", r.AvgW))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	// Per-app winner summary.
	t2 := report.NewTable("\nEnergy winner per application", "Application", "Winner", "Energy ratio (dGPU/APU)")
	for i := 0; i+1 < len(rows); i += 2 {
		apu, dgpu := rows[i], rows[i+1]
		winner := "APU"
		if dgpu.EnergyJ < apu.EnergyJ {
			winner = "dGPU"
		}
		t2.AddRowf(apu.App, winner, fmt.Sprintf("%.2f", dgpu.EnergyJ/apu.EnergyJ))
	}
	_, err = t2.WriteTo(w)
	return err
}
