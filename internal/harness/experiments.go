package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/apps/comd"
	"hetbench/internal/apps/lulesh"
	"hetbench/internal/apps/minife"
	"hetbench/internal/apps/xsbench"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/device"
	"hetbench/internal/sim/timing"
	"hetbench/internal/sloc"
)

// appRunner adapts one app to a uniform (machine, model) → result call.
type appRunner struct {
	name string
	run  func(m *sim.Machine, model modelapi.Name) appcore.Result
	// kernelOnly marks apps the paper compares by kernel time (the
	// read-benchmark: "data-transfer times, if any, were left out").
	kernelOnly bool
	// missRate measures the app's per-access LLC miss rate on a machine.
	missRate func(m *sim.Machine) float64
	kernels  int
}

func (w *workloads) runners() []appRunner {
	return []appRunner{
		{
			name:       "read-benchmark",
			run:        func(m *sim.Machine, md modelapi.Name) appcore.Result { return w.Readmem().Run(m, md) },
			kernelOnly: true,
			missRate: func(m *sim.Machine) float64 {
				// Streaming: per-access miss is elt/line by construction.
				return appcore.EltBytes(w.Readmem().Cfg.Precision) / float64(m.Accelerator().CacheLineBytes)
			},
			kernels: 1,
		},
		{
			name:     "LULESH",
			run:      func(m *sim.Machine, md modelapi.Name) appcore.Result { return w.Lulesh().Run(m, md) },
			missRate: func(m *sim.Machine) float64 { return w.Lulesh().MeasuredTraits(m) },
			kernels:  28,
		},
		{
			name:     "CoMD",
			run:      func(m *sim.Machine, md modelapi.Name) appcore.Result { return w.Comd().Run(m, md) },
			missRate: func(m *sim.Machine) float64 { return comdMiss(w, m) },
			kernels:  3,
		},
		{
			name:     "XSBench",
			run:      func(m *sim.Machine, md modelapi.Name) appcore.Result { return w.Xsbench().Run(m, md) },
			missRate: func(m *sim.Machine) float64 { return w.Xsbench().MeasuredMissRate(m) },
			kernels:  1,
		},
		{
			name:     "miniFE",
			run:      func(m *sim.Machine, md modelapi.Name) appcore.Result { return w.Minife().Run(m, md).Result },
			missRate: func(m *sim.Machine) float64 { return w.Minife().MeasuredMissRate(m) },
			kernels:  3,
		},
	}
}

// runnerByName finds one app adapter; ok is false for unknown names.
func (w *workloads) runnerByName(name string) (appRunner, bool) {
	for _, r := range w.runners() {
		if r.name == name {
			return r, true
		}
	}
	return appRunner{}, false
}

func comdMiss(w *workloads, m *sim.Machine) float64 {
	s := comd.NewState(w.Comd().Cfg)
	return s.MeasuredMissRate(m, w.Comd().Precision)
}

// ---------------------------------------------------------------------
// Table I.

// Table1Row is one measured characterization row.
type Table1Row struct {
	App         string
	MissRate    float64
	IPC         float64
	Kernels     int
	Boundedness string
}

// Table1Data measures the characterization on the simulated R9 280X
// running the hand-tuned OpenCL implementations (the paper's setup).
// LLC miss rates use fixed characterization instances whose footprints
// exceed the 768 KB L2 regardless of the timing-run scale, because a
// cache-resident toy instance would report vacuous 0% rates.
func Table1Data(ctx context.Context, scale Scale) ([]Table1Row, error) {
	char := characterizationMissRates()
	// Table I lists only the four proxy applications (not read-benchmark);
	// one runner cell per app, each with its own workloads and machine.
	apps := []string{"LULESH", "CoMD", "XSBench", "miniFE"}
	return runner.Map(ctx, "table1", len(apps), func(cx *runner.Ctx, i int) Table1Row {
		w := newWorkloads(scale, timing.Double)
		r, _ := w.runnerByName(apps[i])
		m := cx.Machine(sim.NewDGPU)
		res := r.run(m, modelapi.OpenCL)
		return Table1Row{
			App:         r.name,
			MissRate:    char[r.name],
			IPC:         m.IPC(),
			Kernels:     res.Kernels,
			Boundedness: m.Boundedness(),
		}
	})
}

// characterizationMissRates measures per-access LLC miss rates on
// paper-representative footprints (trace replay only — no timing runs).
func characterizationMissRates() map[string]float64 {
	m := sim.NewDGPU()
	out := map[string]float64{}
	out["LULESH"] = lulesh.NewProblem(lulesh.Config{S: 48, Iters: 1}, timing.Double).MeasuredTraits(m)
	out["CoMD"] = comd.NewState(comd.Config{Nx: 24, Ny: 24, Nz: 24, Iters: 1}).MeasuredMissRate(m, timing.Double)
	out["XSBench"] = xsbench.NewProblem(xsbench.Config{Nuclides: 32, GridPoints: 4096, Lookups: 1}, timing.Double).MeasuredMissRate(m)
	out["miniFE"] = minife.NewProblem(minife.Config{Nx: 40, Ny: 40, Nz: 40, MaxIters: 1}, timing.Double).MeasuredMissRate(m)
	return out
}

// RunTable1 renders Table I.
func RunTable1(ctx context.Context, scale Scale, w io.Writer) error {
	t := report.NewTable("", "Application", "LLC Miss Rate", "IPC", "Kernels", "Boundedness", "Paper (miss/IPC/bound)")
	paper := map[string]string{
		"LULESH":  "11% / 0.65 / Balanced",
		"CoMD":    "26% / 0.69 / Compute",
		"XSBench": "53% / 0.14 / Compute",
		"miniFE":  "39% / 0.88 / Memory",
	}
	rows, err := Table1Data(ctx, scale)
	if err != nil {
		return err
	}
	for _, r := range rows {
		t.AddRowf(r.App, fmt.Sprintf("%.0f%%", r.MissRate*100), r.IPC, r.Kernels, r.Boundedness, paper[r.App])
	}
	_, err = t.WriteTo(w)
	return err
}

// RunTable2 renders the hardware catalog (Table II).
func RunTable2(_ context.Context, _ Scale, w io.Writer) error {
	dgpu, apu, cpu := device.R9280X(), device.A10_7850K(), device.HostCPU()
	t := report.NewTable("", "Name", "AMD Radeon R9 280X", "AMD A10-7850K (GPU)", "Host CPU")
	row := func(label string, f func(*device.Device) string) {
		t.AddRow(label, f(dgpu), f(apu), f(cpu))
	}
	row("Stream Processors", func(d *device.Device) string { return fmt.Sprintf("%d", d.TotalLanes()) })
	row("Compute Units", func(d *device.Device) string { return fmt.Sprintf("%d", d.ComputeUnits) })
	row("Core Clock (MHz)", func(d *device.Device) string { return fmt.Sprintf("%d", d.CoreClockMHz) })
	row("Memory Bus", func(d *device.Device) string { return d.MemKind.String() })
	row("Peak Bandwidth (GB/s)", func(d *device.Device) string { return fmt.Sprintf("%.0f", d.PeakBandwidthGBs) })
	row("Peak SP (GFLOPS)", func(d *device.Device) string { return fmt.Sprintf("%.0f", d.PeakSPGflops()) })
	row("Peak DP (GFLOPS)", func(d *device.Device) string { return fmt.Sprintf("%.0f", d.PeakDPGflops()) })
	row("Local Memory (KB/CU)", func(d *device.Device) string { return fmt.Sprintf("%d", d.LDSPerCUBytes>>10) })
	row("Unified Memory", func(d *device.Device) string {
		if d.UnifiedMemory {
			return "yes"
		}
		return "no"
	})
	_, err := t.WriteTo(w)
	return err
}

// RunTable3 renders the compiler table (Table III).
func RunTable3(_ context.Context, _ Scale, w io.Writer) error {
	t := report.NewTable("", "Programming Model", "Compiler", "Transfer Strategy")
	for _, n := range []modelapi.Name{modelapi.OpenCL, modelapi.CppAMP, modelapi.OpenACC} {
		p := modelapi.ProfileFor(n)
		t.AddRow(string(n), p.Compiler, p.Strategy.String())
	}
	_, err := t.WriteTo(w)
	return err
}

// RunTable4 renders the paper's SLOC table plus this repository's own
// counted per-app implementation sizes (methodology demonstration).
func RunTable4(_ context.Context, _ Scale, w io.Writer) error {
	t := report.NewTable("Paper-measured lines changed from serial (SLOCCount)",
		"Application", "OpenMP", "OpenCL", "C++ AMP", "OpenACC")
	for _, r := range sloc.Table4() {
		t.AddRowf(r.App, r.OpenMP, r.OpenCL, r.CppAMP, r.OpenACC)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	t2 := report.NewTable("\nThis repository's implementations (logical Go SLOC per app package)",
		"Package", "SLOC", "Files")
	for _, dir := range []string{"readmem", "lulesh", "comd", "xsbench", "minife"} {
		total, files, err := sloc.CountDir("internal/apps/"+dir, ".go")
		if err != nil {
			// Running outside the repo root: report and continue.
			t2.AddRow(dir, "n/a", "n/a")
			continue
		}
		t2.AddRowf(dir, total, len(files))
	}
	_, err := t2.WriteTo(w)
	return err
}

// RunFig11 renders the optimization-feature matrix.
func RunFig11(_ context.Context, _ Scale, w io.Writer) error {
	t := report.NewTable("", "Model", "Vectorization", "Local Data Store", "Fine-grained Sync", "Explicit Unroll", "Reducing Code Motion")
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, row := range modelapi.FeatureMatrix() {
		t.AddRow(string(row.Model), mark(row.Vectorization), mark(row.LocalDataStore),
			mark(row.FineGrainedSync), mark(row.ExplicitUnroll), mark(row.ReduceCodeMotion))
	}
	_, err := t.WriteTo(w)
	return err
}
