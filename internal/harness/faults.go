package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/fault"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// FaultRates is the sweep of composite fault intensities the experiment
// covers; 0 is the fault-free control column.
var FaultRates = []float64{0, 0.01, 0.03, 0.08}

// faultConfig derives the per-choke-point rates from one composite
// intensity knob. Launch rejections and transfer CRC failures are the
// common transients; hangs and silent flips are a quarter as likely, and
// whole-device loss is the rare catastrophic case.
func faultConfig(rate float64, cellSeed int64) fault.Config {
	return fault.Config{
		Seed:                cellSeed,
		LaunchFailRate:      rate,
		HangRate:            rate / 4,
		BitFlipRate:         rate / 4,
		TransferCorruptRate: rate,
		DeviceLossRate:      rate / 16,
		DeviceLossNs:        fault.DefaultDeviceLossNs,
	}
}

// FaultCell is one (model, rate) cell of the resilience sweep.
type FaultCell struct {
	Model modelapi.Name
	Rate  float64
	// Seed is the cell's sub-seed, derived deterministically from the
	// run-wide Seed so every cell draws an independent fault stream.
	Seed int64

	// Result is the final (correct) run; CleanNs the model's fault-free
	// elapsed time; TotalNs the elapsed time summed over every attempt
	// including whole-run redos after silent corruption.
	Result  appcore.Result
	CleanNs float64
	TotalNs float64

	// Redos counts whole-run re-executions forced by a checksum mismatch;
	// Correct reports whether the final checksum matched the golden value
	// (the resilience layer guarantees it does).
	Redos   int
	Correct bool

	Stats    sim.ResilienceStats
	Injected int64
}

// OverheadPct is the cell's recovery overhead: extra virtual time spent
// relative to the model's fault-free run, as a percentage.
func (c FaultCell) OverheadPct() float64 {
	if c.CleanNs <= 0 {
		return 0
	}
	return (c.TotalNs - c.CleanNs) / c.CleanNs * 100
}

// cellSeed spreads the run-wide seed across sweep cells with distinct odd
// strides so no two cells share a fault stream.
func cellSeed(mi, ri int) int64 {
	return Seed() + int64(mi+1)*100003 + int64(ri+1)*9973
}

// FaultsData runs LULESH under each GPU model on the dGPU across the
// fault-rate sweep. Every cell completes with a checksum equal to the
// model's fault-free golden value: transient faults are absorbed by
// retry/backoff, hangs by the watchdog, persistent device loss by host
// fallback, and silent corruption by golden-checksum redo.
func FaultsData(ctx context.Context, scale Scale) ([]FaultCell, error) {
	pol := fault.DefaultPolicy()
	models := modelapi.All()
	// One runner cell per model: the model's fault-free run is the golden
	// reference every rate in the sweep shares, so the rate loop stays
	// inside the cell rather than recomputing the clean run per rate.
	// Each fault cell still derives its own injector seed from (mi, ri),
	// so the streams are identical to the serial sweep's.
	groups, err := runner.Map(ctx, "faults", len(models), func(cx *runner.Ctx, mi int) []FaultCell {
		model := models[mi]
		w := newWorkloads(scale, timing.Double)
		clean := w.Lulesh().Run(cx.Machine(sim.NewDGPU), model)
		cells := make([]FaultCell, 0, len(FaultRates))
		for ri, rate := range FaultRates {
			cell := FaultCell{
				Model: model, Rate: rate, Seed: cellSeed(mi, ri),
				CleanNs: clean.ElapsedNs, Correct: true,
			}
			if rate == 0 {
				cell.Result, cell.TotalNs = clean, clean.ElapsedNs
				cells = append(cells, cell)
				continue
			}
			m := cx.Machine(sim.NewDGPU)
			inj := fault.New(faultConfig(rate, cell.Seed))
			m.SetFaultInjector(inj, pol)
			cell.Result, cell.TotalNs, cell.Redos, cell.Correct = runResilient(
				m, pol, clean.Checksum,
				func() appcore.Result { return w.Lulesh().Run(m, model) },
			)
			cell.Stats = m.Resilience()
			cell.Injected = inj.Total()
			cells = append(cells, cell)
		}
		return cells
	})
	if err != nil {
		return nil, err
	}
	out := make([]FaultCell, 0, len(models)*len(FaultRates))
	for _, g := range groups {
		out = append(out, g...)
	}
	return out, nil
}

// runResilient executes one app run under fault injection until its
// checksum matches the golden value. Launch-level recovery lives in the
// runtimes; what remains at run level is silent data corruption, which
// only an end-to-end checksum can see — a mismatch forces a whole-run
// redo. After MaxRunRedos mismatches the injector is detached and one
// final fault-free run guarantees termination with correct numerics. It
// returns the final result, the elapsed time summed over all attempts,
// the redo count and whether the final checksum matched.
func runResilient(m *sim.Machine, pol fault.Policy, golden float64, run func() appcore.Result) (appcore.Result, float64, int, bool) {
	total := 0.0
	for redo := 0; redo <= pol.MaxRunRedos; redo++ {
		res := run()
		total += res.ElapsedNs
		if res.Checksum == golden {
			return res, total, redo, true
		}
		if t := m.Tracer(); t != nil {
			t.Metrics().Add(trace.CtrSDCRedos, 1)
		}
	}
	m.ClearFaultInjector()
	res := run()
	total += res.ElapsedNs
	return res, total, pol.MaxRunRedos + 1, res.Checksum == golden
}

// RunFaults is the faults experiment: the per-model resilience sweep as a
// table, exposing the per-model recovery-cost contrast — OpenCL re-stages
// only staged buffers, C++ AMP re-syncs its whole capture set, OpenACC
// re-copies the whole kernels region — plus the fallback and redo tallies.
func RunFaults(ctx context.Context, scale Scale, w io.Writer) error {
	cells, err := FaultsData(ctx, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "LULESH on the R9 280X under seeded fault injection (seed %d, policy: %d attempts, %g µs watchdog).\n",
		Seed(), fault.DefaultPolicy().MaxAttempts, fault.DefaultPolicy().WatchdogNs/1e3)
	fmt.Fprintln(w, "Every cell completes with the fault-free checksum; overhead is extra time vs the clean run.")
	fmt.Fprintln(w)
	t := report.NewTable("Resilience sweep",
		"Model", "Rate", "Status", "Overhead", "Fault ms", "Retries", "Watchdog", "Fallbacks", "Retransmit", "Redos", "Injected")
	for _, c := range cells {
		status := "ok"
		if !c.Correct {
			status = "MISMATCH"
		}
		t.AddRowf(string(c.Model),
			fmt.Sprintf("%.2f", c.Rate),
			status,
			fmt.Sprintf("%.1f%%", c.OverheadPct()),
			fmt.Sprintf("%.3f", c.Result.FaultNs/1e6),
			c.Stats.Retries, c.Stats.WatchdogKills, c.Stats.Fallbacks, c.Stats.Retransmits,
			c.Redos, c.Injected)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Recovery cost is model-shaped: OpenCL re-stages only the failed kernel's staged buffers,")
	fmt.Fprintln(w, "C++ AMP conservatively re-syncs every captured view, and OpenACC re-copies the whole")
	fmt.Fprintln(w, "kernels region — the same data-management contrast the paper measures fault-free.")
	return nil
}
