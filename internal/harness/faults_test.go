package harness

import (
	"bytes"
	"testing"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/fault"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// Acceptance: under the injected fault-rate sweep, every model's run
// completes with the fault-free golden checksum — recovery by retry,
// watchdog, fallback or redo, never a wrong number.
func TestFaultsSweepCompletesWithGoldenChecksums(t *testing.T) {
	cells := must(FaultsData(bg, ScaleSmoke))
	if want := 3 * len(FaultRates); len(cells) != want {
		t.Fatalf("%d cells, want %d", len(cells), want)
	}
	injectedAtTop := int64(0)
	for _, c := range cells {
		if !c.Correct {
			t.Errorf("%s at rate %.2f: final checksum did not match golden", c.Model, c.Rate)
		}
		if c.Rate == 0 {
			if c.Stats.Retries != 0 || c.Injected != 0 || c.Result.FaultNs != 0 {
				t.Errorf("%s control cell saw faults: %+v", c.Model, c.Stats)
			}
			if c.OverheadPct() != 0 {
				t.Errorf("%s control cell has %.1f%% overhead", c.Model, c.OverheadPct())
			}
		} else {
			if c.TotalNs < c.CleanNs {
				t.Errorf("%s at rate %.2f: faulty run faster than clean (%.0f < %.0f ns)",
					c.Model, c.Rate, c.TotalNs, c.CleanNs)
			}
		}
		if c.Rate == FaultRates[len(FaultRates)-1] {
			injectedAtTop += c.Injected
		}
	}
	if injectedAtTop == 0 {
		t.Error("top fault rate injected nothing across all models")
	}
}

// Acceptance: the sweep is bit-reproducible under a fixed seed and
// diverges under a different one.
func TestFaultsReproducibleUnderSeed(t *testing.T) {
	old := Seed()
	defer SetSeed(old)

	render := func(s int64) string {
		SetSeed(s)
		var buf bytes.Buffer
		if err := RunFaults(bg, ScaleSmoke, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(1), render(1)
	if a != b {
		t.Fatal("two runs with seed 1 produced different output")
	}
	if c := render(2); c == a {
		t.Fatal("seed 2 reproduced seed 1's output exactly")
	}
}

// Silent corruption is invisible to launch-level recovery; runResilient
// catches it against the golden checksum and redoes the run, detaching the
// injector as a last resort — completion with correct numerics is
// guaranteed.
func TestRunResilientRedoesSilentCorruption(t *testing.T) {
	w := newWorkloads(ScaleSmoke, timing.Double)
	golden := w.Readmem().RunOpenCL(sim.NewDGPU()).Checksum
	pol := fault.DefaultPolicy()

	sawRedo := false
	for s := int64(1); s <= 8; s++ {
		m := sim.NewDGPU()
		m.SetFaultInjector(fault.New(fault.Config{Seed: s, BitFlipRate: 0.75}), pol)
		res, total, redos, correct := runResilient(m, pol, golden,
			func() appcore.Result { return w.Readmem().RunOpenCL(m) })
		if !correct || res.Checksum != golden {
			t.Fatalf("seed %d: runResilient returned wrong checksum %g, want %g", s, res.Checksum, golden)
		}
		if total < res.ElapsedNs {
			t.Fatalf("seed %d: total %g ns less than final attempt %g ns", s, total, res.ElapsedNs)
		}
		if redos > 0 {
			sawRedo = true
		}
	}
	if !sawRedo {
		t.Error("no seed in 1..8 forced a redo at a 0.75 bit-flip rate")
	}
}

// The smoke scale builds complete (toy-sized) workloads on demand.
func TestSmokeWorkloads(t *testing.T) {
	w := newWorkloads(ScaleSmoke, timing.Double)
	if w.Readmem() == nil || w.Lulesh() == nil || w.Comd() == nil || w.Xsbench() == nil || w.Minife() == nil {
		t.Fatal("smoke workloads incomplete")
	}
}

// Lazy workloads build each app exactly once and honor the per-app config
// overrides the Figure 7 sweep installs.
func TestWorkloadsLazyAndOverridable(t *testing.T) {
	w := newWorkloads(ScaleSmoke, timing.Double)
	if w.lulesh != nil || w.comd != nil {
		t.Fatal("workloads built apps eagerly")
	}
	if p := w.Lulesh(); p != w.Lulesh() {
		t.Error("Lulesh() rebuilt the problem on second call")
	}
	if w.comd != nil {
		t.Error("Lulesh() built CoMD as a side effect")
	}

	f7 := fig7Workloads(ScaleSmoke)
	if got := f7.Lulesh().Cfg.Iters; got != 2 {
		t.Errorf("fig7 LULESH override not applied: Iters = %d, want 2", got)
	}
	if got := f7.Minife().Cfg.MaxIters; got != 5 {
		t.Errorf("fig7 miniFE override not applied: MaxIters = %d, want 5", got)
	}
}
