package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/apps/comd"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/sloc"
)

// Figure 7 sweep points (the paper's axes).
var (
	fig7CoreMHz = []int{200, 300, 400, 500, 600, 700, 800, 900, 1000}
	fig7MemMHz  = []int{480, 590, 700, 810, 920, 1030, 1140, 1250}
)

// fig7Workloads builds the sweep instances: few iterations (only relative
// kernel time matters) but large enough bodies that launch overhead does
// not flatten the curves.
func fig7Workloads(scale Scale) *workloads {
	w := newWorkloads(scale, timing.Single)
	lcfg := luleshConfig(scale)
	lcfg.Iters, lcfg.FunctionalIters = 2, 1
	w.luleshCfg = &lcfg
	ccfg := comdFig7Cfg(scale)
	w.comdCfg = &ccfg
	mcfg := minifeConfig(scale)
	mcfg.MaxIters, mcfg.FunctionalIters = 5, 1
	w.minifeCfg = &mcfg
	return w
}

func comdFig7Cfg(scale Scale) comd.Config {
	c := comd.Config{Nx: 16, Ny: 16, Nz: 16, Iters: 2, FunctionalIters: 1}
	if scale == ScalePaper {
		c.Nx, c.Ny, c.Nz = 24, 24, 24
	}
	return c
}

// Fig7Data sweeps one app over the frequency grid and returns one series
// per memory frequency, x = core MHz, y = performance normalized to the
// (200 MHz, 480 MHz) corner. Performance is kernel-rate (the paper holds
// the PCIe path constant across the sweep). The app executes functionally
// once to record its launch-cost log, which is then replayed against each
// clock pair — kernel costs do not depend on clocks, only their times do.
func Fig7Data(scale Scale, app string) ([]*report.Series, error) {
	return fig7Data(nil, scale, app)
}

// fig7Data is Fig7Data inside one runner cell (nil cx = direct call).
// The clock-point replays are cheap relative to the recording run, so
// they stay inside the app's cell rather than fanning out further.
func fig7Data(cx *runner.Ctx, scale Scale, app string) ([]*report.Series, error) {
	w := fig7Workloads(scale)
	target, ok := w.runnerByName(app)
	if !ok {
		return nil, fmt.Errorf("harness: fig7: unknown app %q", app)
	}

	rec := cx.Machine(sim.NewDGPU)
	rec.EnableCostLog()
	target.run(rec, modelapi.OpenCL)
	log := rec.CostLog()

	timeAt := func(core, mem int) float64 {
		m := sim.NewDGPU()
		m.AcceleratorModel().SetCoreClock(core)
		m.AcceleratorModel().SetMemClock(mem)
		for _, lc := range log {
			// Replay machines never carry an injector: the clock sweep
			// re-charges recorded costs, it does not re-run the workload.
			m.LaunchKernel(lc.Target, lc.Name, lc.Cost) //hetlint:allow launchcheck fault-free replay of a recorded cost log
		}
		return m.KernelNs()
	}

	base := timeAt(fig7CoreMHz[0], fig7MemMHz[0])
	var out []*report.Series
	for _, mem := range fig7MemMHz {
		s := &report.Series{Name: fmt.Sprintf("%d MHz", mem)}
		for _, core := range fig7CoreMHz {
			s.X = append(s.X, float64(core))
			s.Y = append(s.Y, base/timeAt(core, mem))
		}
		out = append(out, s)
	}
	return out, nil
}

// RunFig7 renders all five sub-figures, one runner cell per app.
func RunFig7(ctx context.Context, scale Scale, w io.Writer) error {
	cells := make([]runner.Cell, len(AppNames))
	for i, app := range AppNames {
		app := app
		cells[i] = runner.Cell{Label: "fig7/" + app, Run: func(cx *runner.Ctx) error {
			series, err := fig7Data(cx, scale, app)
			if err != nil {
				return err
			}
			fig := &report.Figure{
				Title:  fmt.Sprintf("Figure 7 (%s): normalized performance, series = memory frequency", app),
				XLabel: "core MHz",
				YLabel: "perf / perf(200 MHz core, 480 MHz mem)",
				Series: series,
			}
			if _, err := fig.WriteTo(cx.Out); err != nil {
				return err
			}
			fmt.Fprintln(cx.Out)
			return nil
		}}
	}
	_, err := runner.Run(ctx, w, cells)
	return err
}

// ---------------------------------------------------------------------
// Figures 8 and 9.

// SpeedupCell is one bar of Figures 8/9.
type SpeedupCell struct {
	App       string
	Model     modelapi.Name
	Precision timing.Precision
	Speedup   float64
	// Time splits of the model run (ms), for drill-down.
	KernelMs, TransferMs float64
}

// SpeedupData runs 3 models × {SP, DP} × 5 apps against the OpenMP
// baseline on the given machine constructor (Figure 8: sim.NewAPU,
// Figure 9: sim.NewDGPU).
func SpeedupData(ctx context.Context, scale Scale, newMachine func() *sim.Machine) ([]SpeedupCell, error) {
	// One runner cell per (precision, app): the cell runs the OpenMP
	// baseline plus all three models, so the baseline is computed once per
	// app without sharing state across cells. Cell order (precision-major,
	// paper app order) reproduces the serial sweep's row order.
	type combo struct {
		prec timing.Precision
		app  string
	}
	var combos []combo
	for _, prec := range []timing.Precision{timing.Single, timing.Double} {
		for _, app := range AppNames {
			combos = append(combos, combo{prec, app})
		}
	}
	groups, err := runner.Map(ctx, "speedup", len(combos), func(cx *runner.Ctx, i int) []SpeedupCell {
		c := combos[i]
		w := newWorkloads(scale, c.prec)
		r, _ := w.runnerByName(c.app)
		base := r.run(cx.Machine(sim.NewAPU), modelapi.OpenMP)
		baseT := base.ElapsedNs
		if r.kernelOnly {
			baseT = base.KernelNs
		}
		var out []SpeedupCell
		for _, model := range modelapi.All() {
			res := r.run(cx.Machine(newMachine), model)
			t := res.ElapsedNs
			if r.kernelOnly {
				t = res.KernelNs
			}
			sp := 0.0
			if t > 0 {
				sp = baseT / t
			}
			out = append(out, SpeedupCell{
				App: r.name, Model: model, Precision: c.prec, Speedup: sp,
				KernelMs: res.KernelNs / 1e6, TransferMs: res.TransferNs / 1e6,
			})
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	var out []SpeedupCell
	for _, g := range groups {
		out = append(out, g...)
	}
	return out, nil
}

func renderSpeedups(title string, cells []SpeedupCell, w io.Writer) error {
	t := report.NewTable(title, "Application", "Model", "SP speedup", "DP speedup", "DP kernel ms", "DP transfer ms")
	type key struct {
		app   string
		model modelapi.Name
	}
	sp := map[key]SpeedupCell{}
	dp := map[key]SpeedupCell{}
	for _, c := range cells {
		k := key{c.App, c.Model}
		if c.Precision == timing.Single {
			sp[k] = c
		} else {
			dp[k] = c
		}
	}
	for _, app := range AppNames {
		for _, model := range modelapi.All() {
			k := key{app, model}
			t.AddRowf(app, string(model),
				fmt.Sprintf("%.2f", sp[k].Speedup),
				fmt.Sprintf("%.2f", dp[k].Speedup),
				fmt.Sprintf("%.3f", dp[k].KernelMs),
				fmt.Sprintf("%.3f", dp[k].TransferMs))
		}
	}
	_, err := t.WriteTo(w)
	return err
}

// RunFig8 renders the APU speedups.
func RunFig8(ctx context.Context, scale Scale, w io.Writer) error {
	cells, err := SpeedupData(ctx, scale, sim.NewAPU)
	if err != nil {
		return err
	}
	return renderSpeedups("Speedup vs 4-core OpenMP on the A10-7850K APU (read-benchmark: kernel time only)",
		cells, w)
}

// RunFig9 renders the discrete-GPU speedups.
func RunFig9(ctx context.Context, scale Scale, w io.Writer) error {
	cells, err := SpeedupData(ctx, scale, sim.NewDGPU)
	if err != nil {
		return err
	}
	return renderSpeedups("Speedup vs 4-core OpenMP on the R9 280X discrete GPU (read-benchmark: kernel time only)",
		cells, w)
}

// ---------------------------------------------------------------------
// Figure 10.

// ProductivityRow is one app's Eq. 1 productivity per model.
type ProductivityRow struct {
	App                     string
	OpenCL, CppAMP, OpenACC float64
}

// ProductivityData computes Figure 10 for one machine: Eq. 1 with
// double-precision runtimes and the paper's Table IV line counts.
func ProductivityData(ctx context.Context, scale Scale, newMachine func() *sim.Machine) ([]ProductivityRow, error) {
	lines := map[string]sloc.Table4Row{}
	for _, r := range sloc.Table4() {
		lines[r.App] = r
	}
	return runner.Map(ctx, "productivity", len(AppNames), func(cx *runner.Ctx, i int) ProductivityRow {
		w := newWorkloads(scale, timing.Double)
		r, _ := w.runnerByName(AppNames[i])
		base := r.run(cx.Machine(sim.NewAPU), modelapi.OpenMP)
		baseT := base.ElapsedNs
		if r.kernelOnly {
			baseT = base.KernelNs
		}
		l := lines[r.name]
		row := ProductivityRow{App: r.name}
		for _, model := range modelapi.All() {
			res := r.run(cx.Machine(newMachine), model)
			t := res.ElapsedNs
			if r.kernelOnly {
				t = res.KernelNs
			}
			var ml int
			switch model {
			case modelapi.OpenCL:
				ml = l.OpenCL
			case modelapi.CppAMP:
				ml = l.CppAMP
			case modelapi.OpenACC:
				ml = l.OpenACC
			}
			p := sloc.Productivity(baseT, t, ml, l.OpenMP)
			switch model {
			case modelapi.OpenCL:
				row.OpenCL = p
			case modelapi.CppAMP:
				row.CppAMP = p
			case modelapi.OpenACC:
				row.OpenACC = p
			}
		}
		return row
	})
}

// HarmonicMeans returns the per-model harmonic means of a productivity
// table (the paper's "Har. Mean" bars).
func HarmonicMeans(rows []ProductivityRow) (cl, amp, acc float64) {
	var a, b, c []float64
	for _, r := range rows {
		a = append(a, r.OpenCL)
		b = append(b, r.CppAMP)
		c = append(c, r.OpenACC)
	}
	return sloc.HarmonicMean(a), sloc.HarmonicMean(b), sloc.HarmonicMean(c)
}

// RunFig10 renders productivity on both machines.
func RunFig10(ctx context.Context, scale Scale, w io.Writer) error {
	for _, sub := range []struct {
		title string
		mk    func() *sim.Machine
	}{
		{"Figure 10a: productivity on the A10-7850K APU (Eq. 1, double precision)", sim.NewAPU},
		{"Figure 10b: productivity on the R9 280X discrete GPU (Eq. 1, double precision)", sim.NewDGPU},
	} {
		rows, err := ProductivityData(ctx, scale, sub.mk)
		if err != nil {
			return err
		}
		t := report.NewTable(sub.title, "Application", "OpenCL", "C++ AMP", "OpenACC")
		for _, r := range rows {
			t.AddRowf(r.App, fmt.Sprintf("%.2f", r.OpenCL), fmt.Sprintf("%.2f", r.CppAMP), fmt.Sprintf("%.2f", r.OpenACC))
		}
		cl, amp, acc := HarmonicMeans(rows)
		t.AddRowf("Har. Mean", fmt.Sprintf("%.2f", cl), fmt.Sprintf("%.2f", amp), fmt.Sprintf("%.2f", acc))
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
