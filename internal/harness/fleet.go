package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/fault"
	"hetbench/internal/fleet"
	"hetbench/internal/harness/runner"
	"hetbench/internal/report"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
)

// fleetPolicies is the placement-policy sweep: the same three policies
// the in-machine co-execution scheduler offers, applied at cluster
// granularity.
var fleetPolicies = []sched.Policy{sched.Static, sched.Dynamic, sched.HGuided}

// FleetLoads is the arrival-rate sweep, expressed as a fraction of the
// fleet's nominal capacity (fleet.CapacityPerSec): a comfortable load
// and a near-saturation one where queueing dominates the tail.
var FleetLoads = []float64{0.5, 0.9}

// fleetShapes is the arrival-process sweep.
var fleetShapes = []fleet.Shape{fleet.Poisson, fleet.Bursty}

// fleetJobMix is the job-class blend every fleet trace draws from:
// streaming-heavy with compute and irregular minorities, so APU and dGPU
// nodes each have jobs they win.
var fleetJobMix = fleet.JobMix{Stream: 2, Compute: 1, Irregular: 1}

// FleetMix is one fleet composition in the sweep.
type FleetMix struct {
	Name        string
	APUs, DGPUs int
}

// fleetMixes scales two compositions — integrated-heavy and balanced —
// from 4 nodes at smoke scale to 512 at paper scale.
func fleetMixes(scale Scale) []FleetMix {
	mult := map[Scale]int{ScaleSmoke: 1, ScaleSmall: 4, ScaleDefault: 16, ScalePaper: 128}[scale]
	if mult == 0 {
		mult = 16
	}
	return []FleetMix{
		{"apu-heavy", 3 * mult, 1 * mult},
		{"balanced", 2 * mult, 2 * mult},
	}
}

// fleetJobCount sizes the traces per scale: long enough that steady
// state dominates warmup, short enough that smoke runs finish instantly.
func fleetJobCount(scale Scale) int {
	switch scale {
	case ScaleSmoke:
		return 120
	case ScaleSmall:
		return 1200
	case ScalePaper:
		return 40000
	default:
		return 6000
	}
}

// FleetCell is one (mix, shape, load, policy) cell of the fleet sweep.
type FleetCell struct {
	Mix        string
	Nodes      int
	Shape      fleet.Shape
	Load       float64
	RatePerSec float64
	Policy     sched.Policy
	Result     fleet.Result
}

// fleetNewMachine adapts the cell context into the fleet's machine
// factory so every node's machine attaches to the cell's capture tracer
// (when one is active) exactly like single-machine experiments do.
func fleetNewMachine(cx *runner.Ctx) func(fleet.NodeKind) *sim.Machine {
	return func(k fleet.NodeKind) *sim.Machine {
		if k == fleet.DGPU {
			return cx.Machine(sim.NewDGPU)
		}
		return cx.Machine(sim.NewAPU)
	}
}

// fleetConfig assembles a cluster config bound to the cell's tracer.
func fleetConfig(cx *runner.Ctx, mix FleetMix, policy sched.Policy, seed int64, lossRate float64) fleet.Config {
	cfg := fleet.Config{
		APUs: mix.APUs, DGPUs: mix.DGPUs,
		Policy:         policy,
		Seed:           seed,
		DeviceLossRate: lossRate,
		NewMachine:     fleetNewMachine(cx),
	}
	if tr := cx.Machine(sim.NewAPU).Tracer(); tr != nil {
		cfg.Metrics = tr.Metrics()
	}
	return cfg
}

// FleetSweepData runs the arrival-rate × placement-policy × fleet-mix
// sweep. One runner cell per (mix, shape, load) point: the three
// policies inside a cell share one trace and one seed, so they face the
// identical job stream and fault environment and differ only in
// placement.
func FleetSweepData(ctx context.Context, scale Scale) ([]FleetCell, error) {
	mixes := fleetMixes(scale)
	nShapes, nLoads := len(fleetShapes), len(FleetLoads)
	cells := len(mixes) * nShapes * nLoads
	groups, err := runner.Map(ctx, "fleet", cells, func(cx *runner.Ctx, ci int) []FleetCell {
		mix := mixes[ci/(nShapes*nLoads)]
		shape := fleetShapes[(ci/nLoads)%nShapes]
		load := FleetLoads[ci%nLoads]
		seed := fault.SubSeed(Seed(), int64(100+ci))
		rate := load * fleet.CapacityPerSec(mix.APUs, mix.DGPUs, fleetJobMix)
		jobs := fleet.Generate(fleet.TraceSpec{
			Shape: shape, Jobs: fleetJobCount(scale), RatePerSec: rate,
			Mix: fleetJobMix, Seed: seed,
		})
		out := make([]FleetCell, 0, len(fleetPolicies))
		for _, policy := range fleetPolicies {
			r := fleet.New(fleetConfig(cx, mix, policy, seed, 0)).Run(jobs)
			out = append(out, FleetCell{
				Mix: mix.Name, Nodes: mix.APUs + mix.DGPUs,
				Shape: shape, Load: load, RatePerSec: rate,
				Policy: policy, Result: r,
			})
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	out := make([]FleetCell, 0, cells*len(fleetPolicies))
	for _, g := range groups {
		out = append(out, g...)
	}
	return out, nil
}

// FleetLossRates is the device-loss sweep: a fault-free control, a
// noticeable rate and a hostile one.
var FleetLossRates = []float64{0, 0.02, 0.05}

// FleetFaultCell is one row of the device-loss table: the balanced fleet
// under dynamic placement at one loss rate.
type FleetFaultCell struct {
	LossRate float64
	Result   fleet.Result
}

// FleetFaultsData sweeps device-loss rates on the balanced fleet at 0.7
// load under dynamic placement. All three cells share the trace seed, so
// the job stream is identical and only the fault draws differ.
func FleetFaultsData(ctx context.Context, scale Scale) ([]FleetFaultCell, error) {
	mix := fleetMixes(scale)[1] // balanced
	njobs := fleetJobCount(scale)
	groups, err := runner.Map(ctx, "fleet-faults", len(FleetLossRates), func(cx *runner.Ctx, fi int) []FleetFaultCell {
		seed := fault.SubSeed(Seed(), 500)
		rate := 0.7 * fleet.CapacityPerSec(mix.APUs, mix.DGPUs, fleetJobMix)
		jobs := fleet.Generate(fleet.TraceSpec{
			Shape: fleet.Poisson, Jobs: njobs, RatePerSec: rate,
			Mix: fleetJobMix, Seed: seed,
		})
		r := fleet.New(fleetConfig(cx, mix, sched.Dynamic, seed, FleetLossRates[fi])).Run(jobs)
		return []FleetFaultCell{{LossRate: FleetLossRates[fi], Result: r}}
	})
	if err != nil {
		return nil, err
	}
	out := make([]FleetFaultCell, 0, len(FleetLossRates))
	for _, g := range groups {
		out = append(out, g...)
	}
	return out, nil
}

// RunFleet is the fleet experiment: cluster-scale load balancing with
// tail latency and utilization as the first-class outputs, plus the
// device-loss migration table.
func RunFleet(ctx context.Context, scale Scale, w io.Writer) error {
	sweep, err := FleetSweepData(ctx, scale)
	if err != nil {
		return err
	}
	faults, err := FleetFaultsData(ctx, scale)
	if err != nil {
		return err
	}
	mixes := fleetMixes(scale)
	fmt.Fprintf(w, "Simulated fleets of mixed APU/dGPU nodes (%s: %d nodes, %s: %d) under seeded open-loop\n",
		mixes[0].Name, mixes[0].APUs+mixes[0].DGPUs, mixes[1].Name, mixes[1].APUs+mixes[1].DGPUs)
	fmt.Fprintf(w, "arrival traces of %d jobs (seed %d, mix stream:compute:irregular = 2:1:1). Load is the\n",
		fleetJobCount(scale), Seed())
	fmt.Fprintln(w, "arrival rate as a fraction of nominal fleet capacity; policies place whole jobs across")
	fmt.Fprintln(w, "nodes with the same rules the in-machine scheduler uses to place chunks across devices.")
	fmt.Fprintln(w)

	t := report.NewTable("Fleet sweep",
		"Mix", "Shape", "Load", "Policy", "p50 ms", "p95 ms", "p99 ms", "Queue p99 ms", "Util", "Shed")
	for _, c := range sweep {
		r := c.Result
		t.AddRowf(c.Mix, c.Shape.String(),
			fmt.Sprintf("%.1f", c.Load),
			c.Policy.String(),
			fmt.Sprintf("%.2f", r.Sojourn.Quantile(0.50)/1e6),
			fmt.Sprintf("%.2f", r.Sojourn.Quantile(0.95)/1e6),
			fmt.Sprintf("%.2f", r.Sojourn.Quantile(0.99)/1e6),
			fmt.Sprintf("%.2f", r.Queue.Quantile(0.99)/1e6),
			fmt.Sprintf("%.0f%%", 100*r.MeanUtil()),
			r.Shed)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Static placement fixes each node's share up front, so bursty arrivals and mixed job")
	fmt.Fprintln(w, "costs land on whichever node the round-robin reaches next — the tail pays for it.")
	fmt.Fprintln(w, "Dynamic places by predicted finish and HGuided by learned per-node throughput; both")
	fmt.Fprintln(w, "route bandwidth-bound jobs away from PCIe-staged dGPU nodes and flop-bound jobs onto")
	fmt.Fprintln(w, "them, the cluster-scale version of the paper's co-execution affinity.")
	fmt.Fprintln(w)

	ft := report.NewTable("Device loss and migration (balanced fleet, dynamic placement, load 0.7)",
		"Loss rate", "Submitted", "Completed", "Shed", "Migrated", "Losses", "Wasted ms", "Mean ms", "p99 ms")
	for _, c := range faults {
		r := c.Result
		wasted := 0.0
		for _, n := range r.Nodes {
			wasted += n.WastedNs
		}
		ft.AddRowf(fmt.Sprintf("%.2f", c.LossRate),
			r.Submitted, r.Completed, r.Shed, r.Migrated, r.NodeLosses,
			fmt.Sprintf("%.3f", wasted/1e6),
			fmt.Sprintf("%.2f", r.Sojourn.Mean()/1e6),
			fmt.Sprintf("%.2f", r.Sojourn.Quantile(0.99)/1e6))
	}
	if _, err := ft.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "A lost node evicts its queued and in-flight jobs; the balancer rebooks them on the")
	fmt.Fprintln(w, "survivors (abandoning any partial service as wasted time), so device loss degrades")
	fmt.Fprintln(w, "latency instead of losing work: every admitted job completes at every loss rate.")
	return nil
}
