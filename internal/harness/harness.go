// Package harness wires the proxy applications, programming-model
// runtimes and simulated machines into the paper's experiments: one
// registered Experiment per table and figure (plus the ablations), each
// regenerating its artifact as an ASCII table or series grid.
package harness

import (
	"context"
	"fmt"
	"io"
	"sort"

	"hetbench/internal/apps/comd"
	"hetbench/internal/apps/lulesh"
	"hetbench/internal/apps/minife"
	"hetbench/internal/apps/readmem"
	"hetbench/internal/apps/xsbench"
	"hetbench/internal/sim/timing"
)

// Scale selects problem sizes: Small for tests, Default for interactive
// runs, Paper for the paper's command-line sizes (slow: the full LULESH
// -s 100 -i 100 workload runs functionally for a sample of iterations and
// replays the measured kernel costs for the rest).
type Scale int

// Scales.
const (
	ScaleSmall Scale = iota
	ScaleDefault
	ScalePaper
	// ScaleSmoke is the tiniest runnable size: CI determinism checks and
	// quick plumbing tests, not a scale whose numbers mean anything.
	ScaleSmoke
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "smoke":
		return ScaleSmoke, nil
	case "small":
		return ScaleSmall, nil
	case "default", "":
		return ScaleDefault, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("harness: unknown scale %q (smoke|small|default|paper)", s)
	}
}

// seed is the run-wide PRNG seed: every randomized subsystem (today the
// fault injector; nothing else in the harness draws randomness) derives
// its stream deterministically from it, so two runs with the same seed,
// scale and experiment are bit-identical. The default matches the
// documented `-seed 1`.
var seed int64 = 1

// SetSeed installs the run-wide seed (the cmd/hetbench -seed flag).
func SetSeed(s int64) { seed = s }

// Seed returns the run-wide seed.
func Seed() int64 { return seed }

// AppNames in paper order.
var AppNames = []string{
	readmem.AppName, lulesh.AppName, comd.AppName, xsbench.AppName, minife.AppName,
}

// Per-app scale configurations. Scales:
//   - Smoke is deliberately toy-sized: it exists so CI can run an
//     experiment quickly and byte-diff the output in seconds, not to
//     reproduce any paper phenomenon.
//   - Small still has to be big enough that device kernels dominate the
//     fixed launch (8 µs) and PCIe setup costs — the paper's phenomena
//     vanish on toy sizes. Iteration counts amortize the one-time staging
//     the way the paper's -i 100 runs do.
//   - Paper matches the Table I command lines: LULESH -s 100 -i 100;
//     CoMD -x 60 -y 60 -z 60; XSBench -s small; miniFE -nx/-ny/-nz 100.
func readmemConfig(scale Scale, prec timing.Precision) readmem.Config {
	blocks := map[Scale]int{ScaleSmoke: 1 << 12, ScaleSmall: 1 << 15, ScaleDefault: 1 << 17, ScalePaper: 1 << 21}
	return readmem.Config{Blocks: blocks[scale], Precision: prec}
}

func luleshConfig(scale Scale) lulesh.Config {
	switch scale {
	case ScaleSmoke:
		return lulesh.Config{S: 16, Iters: 8, FunctionalIters: 1}
	case ScaleSmall:
		return lulesh.Config{S: 32, Iters: 30, FunctionalIters: 1}
	case ScalePaper:
		return lulesh.Config{S: 100, Iters: 100, FunctionalIters: 2}
	default:
		return lulesh.Config{S: 48, Iters: 50, FunctionalIters: 2}
	}
}

func comdConfig(scale Scale) comd.Config {
	switch scale {
	case ScaleSmoke:
		return comd.Config{Nx: 6, Ny: 6, Nz: 6, Iters: 6, FunctionalIters: 1}
	case ScaleSmall:
		return comd.Config{Nx: 8, Ny: 8, Nz: 8, Iters: 12, FunctionalIters: 1}
	case ScalePaper:
		return comd.Config{Nx: 60, Ny: 60, Nz: 60, Iters: 100, FunctionalIters: 1}
	default:
		return comd.Config{Nx: 12, Ny: 12, Nz: 12, Iters: 20, FunctionalIters: 2}
	}
}

func xsbenchConfig(scale Scale) xsbench.Config {
	switch scale {
	case ScaleSmoke:
		return xsbench.Config{Nuclides: 16, GridPoints: 512, Lookups: 20_000}
	case ScaleSmall:
		return xsbench.Config{Nuclides: 32, GridPoints: 2048, Lookups: 100_000}
	case ScalePaper:
		return xsbench.PaperSmall()
	default:
		return xsbench.Config{Nuclides: 48, GridPoints: 4096, Lookups: 500_000}
	}
}

func minifeConfig(scale Scale) minife.Config {
	switch scale {
	case ScaleSmoke:
		return minife.Config{Nx: 24, Ny: 24, Nz: 24, MaxIters: 10, Tol: 0, FunctionalIters: 1}
	case ScaleSmall:
		return minife.Config{Nx: 48, Ny: 48, Nz: 48, MaxIters: 30, Tol: 0, FunctionalIters: 2}
	case ScalePaper:
		return minife.Config{Nx: 100, Ny: 100, Nz: 100, MaxIters: 200, Tol: 0, FunctionalIters: 2}
	default:
		return minife.Config{Nx: 64, Ny: 64, Nz: 64, MaxIters: 60, Tol: 0, FunctionalIters: 2}
	}
}

// workloads builds the five apps at a scale and precision, constructing
// each app's Problem lazily on first use — an experiment cell that runs
// one app pays construction (and, at paper scale, memory) for one app
// only. A workloads value belongs to a single goroutine (one experiment
// cell); it is not safe for concurrent use, and the parallel runner gives
// every cell its own instead of sharing one.
type workloads struct {
	scale Scale
	prec  timing.Precision

	// Optional per-app config overrides applied at first build (the
	// Figure 7 sweep trims iteration counts); nil means the scale default.
	luleshCfg *lulesh.Config
	comdCfg   *comd.Config
	minifeCfg *minife.Config

	readmem *readmem.Problem
	lulesh  *lulesh.Problem
	comd    *comd.Problem
	xsbench *xsbench.Problem
	minife  *minife.Problem
}

func newWorkloads(scale Scale, prec timing.Precision) *workloads {
	switch scale {
	case ScaleSmoke, ScaleSmall, ScaleDefault, ScalePaper:
	default:
		panic(fmt.Sprintf("harness: unknown scale %d", scale))
	}
	return &workloads{scale: scale, prec: prec}
}

// Readmem returns the read-benchmark instance, building it on first use.
func (w *workloads) Readmem() *readmem.Problem {
	if w.readmem == nil {
		w.readmem = readmem.NewProblem(readmemConfig(w.scale, w.prec))
	}
	return w.readmem
}

// Lulesh returns the LULESH instance, building it on first use.
func (w *workloads) Lulesh() *lulesh.Problem {
	if w.lulesh == nil {
		cfg := luleshConfig(w.scale)
		if w.luleshCfg != nil {
			cfg = *w.luleshCfg
		}
		w.lulesh = lulesh.NewProblem(cfg, w.prec)
	}
	return w.lulesh
}

// Comd returns the CoMD instance, building it on first use.
func (w *workloads) Comd() *comd.Problem {
	if w.comd == nil {
		cfg := comdConfig(w.scale)
		if w.comdCfg != nil {
			cfg = *w.comdCfg
		}
		w.comd = comd.NewProblem(cfg, w.prec)
	}
	return w.comd
}

// Xsbench returns the XSBench instance, building it on first use.
func (w *workloads) Xsbench() *xsbench.Problem {
	if w.xsbench == nil {
		w.xsbench = xsbench.NewProblem(xsbenchConfig(w.scale), w.prec)
	}
	return w.xsbench
}

// Minife returns the miniFE instance, building it on first use.
func (w *workloads) Minife() *minife.Problem {
	if w.minife == nil {
		cfg := minifeConfig(w.scale)
		if w.minifeCfg != nil {
			cfg = *w.minifeCfg
		}
		w.minife = minife.NewProblem(cfg, w.prec)
	}
	return w.minife
}

// Experiment is one regenerable paper artifact. Run honors ctx: a
// canceled context stops the experiment at the next cell boundary (the
// runner skips unstarted cells), which is how hetbenchd aborts work for
// disconnected clients.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(ctx context.Context, scale Scale, w io.Writer) error
}

// Registry returns all experiments keyed by ID.
func Registry() map[string]Experiment {
	exps := []Experiment{
		{"table1", "Table I: Characteristics of Proxy Applications",
			"LLC miss rate, IPC, kernel count and boundedness, measured on the simulated R9 280X", RunTable1},
		{"table2", "Table II: Hardware Specification of Accelerators",
			"device catalog", RunTable2},
		{"table3", "Table III: Compilers Used for Programming Models",
			"compiler profiles", RunTable3},
		{"table4", "Table IV: Source Lines of Code Changed",
			"paper-measured SLOC plus this repo's own counted implementations", RunTable4},
		{"fig7", "Figure 7: Performance vs core and memory frequency",
			"5 apps × core 200–1000 MHz × memory 480–1250 MHz, OpenCL on the dGPU", RunFig7},
		{"fig8", "Figure 8: Speedups on the A10-7850K APU",
			"5 apps × 3 models × {SP, DP} vs 4-core OpenMP", RunFig8},
		{"fig9", "Figure 9: Speedups on the R9 280X discrete GPU",
			"5 apps × 3 models × {SP, DP} vs 4-core OpenMP", RunFig9},
		{"fig10", "Figure 10: Productivity (Eq. 1)",
			"double precision, APU and dGPU, with harmonic means", RunFig10},
		{"fig11", "Figure 11: Optimizations allowed by each model",
			"feature matrix", RunFig11},
		{"hc", "Ablation: Heterogeneous Compute (Section VII)",
			"XSBench under HC's async transfers vs the other models on the dGPU", RunAblationHC},
		{"tiles", "Ablation: CoMD tiling (Section VI-C)",
			"LDS-tiled vs flat force kernel", RunAblationTiles},
		{"dataregion", "Ablation: OpenACC data directive (Section III-B)",
			"miniFE kernels regions with and without an enclosing data region on the dGPU", RunAblationDataRegion},
		{"gridtype", "Ablation: XSBench grid structures",
			"unionized grid (one search, 240 MB-class table) vs nuclide grids (per-nuclide searches, ~6× smaller)", RunAblationGridType},
		{"scaling", "Extension: MPI+X strong scaling",
			"LULESH slab decomposition across a simulated InfiniBand cluster of R9 280X nodes", RunScaling},
		{"profile", "Extension: per-kernel profiles",
			"LULESH's 28 kernels ranked by time under each model (exposes the C++ AMP fallback)", RunProfile},
		{"roofline", "Extension: roofline placement",
			"arithmetic intensity vs attainable throughput for all five apps on the dGPU", RunRoofline},
		{"energy", "Extension: energy to solution",
			"device energy (idle + DVFS dynamic + DRAM + PCIe) per app, APU vs dGPU", RunEnergy},
		{"trace", "Extension: structured trace timelines",
			"LULESH under each GPU model on the dGPU: per-iteration Gantt charts, span aggregates and run counters (exposes the C++ AMP CPU-fallback kernel)", RunTrace},
		{"faults", "Extension: fault injection and resilience",
			"LULESH under each GPU model on the dGPU across a seeded fault-rate sweep: completed-run rate, recovery overhead, retries, watchdog kills and host fallbacks per model", RunFaults},
		{"coexec", "Extension: CPU+accelerator co-execution",
			"readmem, LULESH and miniFE split across host CPU and accelerator on both machines under static, dynamic and HGuided partitioning, vs the accelerator alone", RunCoexec},
		{"perfbaseline", "Extension: perf baseline and latency distributions",
			"per-app kernel/transfer latency quantiles plus fault-recovery and chunk-service distributions; the runner workout behind BENCH_runner.json (-bench-out)", RunPerfBaseline},
		{"dag", "Extension: declarative DAG workloads",
			"the four shipped workload specs (sobel, canny, 3mm, mlp) under spec × model × machine × schedule: serialized baseline vs the DAG-aware planner overlapping independent kernels on both devices, with staging priced per edge and device-loss rebooking", RunDag},
		{"fleet", "Extension: cluster-scale fleet simulation",
			"fleets of mixed APU/dGPU nodes under seeded arrival traces: arrival rate × placement policy × fleet mix with p50/p95/p99 tail latency, node utilization and device-loss migration", RunFleet},
	}
	m := make(map[string]Experiment, len(exps))
	for _, e := range exps {
		m[e.ID] = e
	}
	return m
}

// IDs returns the experiment ids in presentation order.
func IDs() []string {
	ids := make([]string, 0)
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment in order, stopping at the first
// failure or once ctx is canceled.
func RunAll(ctx context.Context, scale Scale, w io.Writer) error {
	order := []string{"table1", "table2", "table3", "table4", "fig7", "fig8", "fig9", "fig10", "fig11", "hc", "tiles", "dataregion", "gridtype", "scaling", "profile", "roofline", "energy", "trace", "faults", "coexec", "dag", "perfbaseline", "fleet"}
	reg := Registry()
	for _, id := range order {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("harness: %s: %w", id, err)
		}
		e := reg[id]
		fmt.Fprintf(w, "=== %s — %s ===\n", e.ID, e.Title)
		if err := e.Run(ctx, scale, w); err != nil {
			return fmt.Errorf("harness: %s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
