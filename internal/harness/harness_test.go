package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// bg is the context threaded through Data calls in tests; none of these
// sweeps is ever canceled here.
var bg = context.Background()

// must unwraps a (value, error) pair from a Data sweep that cannot fail
// under an uncanceled context; a panic here fails the test with a stack.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"table1", "table2", "table3", "table4", "fig7", "fig8", "fig9", "fig10", "fig11", "hc", "tiles", "dataregion", "gridtype", "scaling", "profile", "roofline", "energy", "trace", "faults", "coexec", "dag", "perfbaseline", "fleet"}
	for _, id := range want {
		e, ok := reg[id]
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		if e.Run == nil || e.Title == "" || e.Description == "" {
			t.Errorf("experiment %q incomplete", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
}

func TestParseScale(t *testing.T) {
	cases := []struct {
		in   string
		want Scale
		ok   bool
	}{
		{"smoke", ScaleSmoke, true},
		{"small", ScaleSmall, true},
		{"default", ScaleDefault, true},
		{"", ScaleDefault, true},
		{"paper", ScalePaper, true},
		{"huge", 0, false},
		{"Small", 0, false}, // scales are case-sensitive
		{"paper ", 0, false},
		{"smol", 0, false},
	}
	for _, c := range cases {
		got, err := ParseScale(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseScale(%q) accepted, want error", c.in)
		}
	}
}

// Table I: kernel counts must match the paper exactly; miss-rate ordering
// must hold (XSBench worst, LULESH best); boundedness classes must match.
func TestTable1Shapes(t *testing.T) {
	rows := must(Table1Data(bg, ScaleSmall))
	if len(rows) != 4 {
		t.Fatalf("Table I rows = %d, want 4", len(rows))
	}
	byApp := map[string]Table1Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	if byApp["LULESH"].Kernels != 28 || byApp["CoMD"].Kernels != 3 || byApp["XSBench"].Kernels != 1 || byApp["miniFE"].Kernels != 3 {
		t.Errorf("kernel counts wrong: %+v", rows)
	}
	if !(byApp["XSBench"].MissRate > byApp["CoMD"].MissRate && byApp["CoMD"].MissRate > byApp["LULESH"].MissRate) {
		t.Errorf("miss-rate ordering violated: XSBench %.2f, CoMD %.2f, LULESH %.2f",
			byApp["XSBench"].MissRate, byApp["CoMD"].MissRate, byApp["LULESH"].MissRate)
	}
	if byApp["miniFE"].Boundedness != "Memory" {
		t.Errorf("miniFE boundedness = %s, want Memory", byApp["miniFE"].Boundedness)
	}
	if byApp["CoMD"].Boundedness != "Compute" {
		t.Errorf("CoMD boundedness = %s, want Compute", byApp["CoMD"].Boundedness)
	}
	// XSBench has the lowest IPC (Table I: 0.14).
	for _, app := range []string{"LULESH", "CoMD", "miniFE"} {
		if byApp["XSBench"].IPC >= byApp[app].IPC {
			t.Errorf("XSBench IPC %.3f not below %s's %.3f", byApp["XSBench"].IPC, app, byApp[app].IPC)
		}
	}
}

// Figure 7 shapes at the extremes of the grid.
func TestFig7Shapes(t *testing.T) {
	get := func(app string) []float64 {
		series, err := Fig7Data(ScaleSmall, app)
		if err != nil {
			t.Fatal(err)
		}
		// Return [lowMem@lowCore, lowMem@highCore, highMem@lowCore, highMem@highCore].
		lo, hi := series[0], series[len(series)-1]
		return []float64{lo.Y[0], lo.Y[len(lo.Y)-1], hi.Y[0], hi.Y[len(hi.Y)-1]}
	}

	// read-benchmark: memory-bound — at high core clock, raising memory
	// frequency is the big lever; at 200 MHz core it is nearly flat.
	rb := get("read-benchmark")
	if rb[3]/rb[1] < 1.5 {
		t.Errorf("read-benchmark: mem 480→1250 at 1000 MHz core = %.2f×, want ≥1.5", rb[3]/rb[1])
	}
	if rb[2]/rb[0] > 1.4 {
		t.Errorf("read-benchmark: mem sweep at 200 MHz core = %.2f×, want ≈flat", rb[2]/rb[0])
	}

	// CoMD: compute-bound — core scaling strong, memory scaling ≈nil.
	cm := get("CoMD")
	if cm[1]/cm[0] < 2 {
		t.Errorf("CoMD: core 200→1000 = %.2f×, want ≥2", cm[1]/cm[0])
	}
	if cm[3]/cm[1] > 1.2 {
		t.Errorf("CoMD: mem sweep at full core = %.2f×, want ≈flat", cm[3]/cm[1])
	}

	// XSBench: compute/latency-bound — scales with core.
	xs := get("XSBench")
	if xs[1]/xs[0] < 1.5 {
		t.Errorf("XSBench: core scaling = %.2f×, want ≥1.5", xs[1]/xs[0])
	}

	// LULESH: balanced — both axes matter.
	lu := get("LULESH")
	if lu[1]/lu[0] < 1.3 {
		t.Errorf("LULESH: core scaling = %.2f×, want >1.3 (balanced)", lu[1]/lu[0])
	}
	if lu[3]/lu[1] < 1.1 {
		t.Errorf("LULESH: mem scaling at full core = %.2f×, want >1.1 (balanced)", lu[3]/lu[1])
	}

	// miniFE: memory-bound at high core clocks.
	mf := get("miniFE")
	if mf[3]/mf[1] < 1.3 {
		t.Errorf("miniFE: mem scaling at full core = %.2f×, want ≥1.3", mf[3]/mf[1])
	}
}

// Figures 8/9 headline orderings.
func TestSpeedupShapes(t *testing.T) {
	apu := must(SpeedupData(bg, ScaleSmall, sim.NewAPU))
	dgpu := must(SpeedupData(bg, ScaleSmall, sim.NewDGPU))

	find := func(cells []SpeedupCell, app string, model modelapi.Name, prec timing.Precision) SpeedupCell {
		for _, c := range cells {
			if c.App == app && c.Model == model && c.Precision == prec {
				return c
			}
		}
		t.Fatalf("cell %s/%s/%v missing", app, model, prec)
		return SpeedupCell{}
	}

	// Every dGPU OpenCL SP speedup ≥ its APU counterpart for the
	// compute-bound app (CoMD) — performance portability upward.
	if d, a := find(dgpu, "CoMD", modelapi.OpenCL, timing.Single), find(apu, "CoMD", modelapi.OpenCL, timing.Single); d.Speedup <= a.Speedup {
		t.Errorf("CoMD OpenCL: dGPU %.1f not above APU %.1f", d.Speedup, a.Speedup)
	}
	// dGPU: OpenCL best on every app (DP).
	for _, app := range AppNames {
		cl := find(dgpu, app, modelapi.OpenCL, timing.Double).Speedup
		for _, model := range []modelapi.Name{modelapi.CppAMP, modelapi.OpenACC} {
			if s := find(dgpu, app, model, timing.Double).Speedup; s > cl {
				t.Errorf("dGPU %s: %s %.2f beats OpenCL %.2f", app, model, s, cl)
			}
		}
	}
	// APU: C++ AMP wins XSBench (the paper's HSA observation).
	if amp, cl := find(apu, "XSBench", modelapi.CppAMP, timing.Double), find(apu, "XSBench", modelapi.OpenCL, timing.Double); amp.Speedup <= cl.Speedup {
		t.Errorf("APU XSBench: AMP %.2f not above OpenCL %.2f", amp.Speedup, cl.Speedup)
	}
	// APU miniFE: OpenACC is a slowdown (<1), OpenCL ≈ OpenMP.
	if s := find(apu, "miniFE", modelapi.OpenACC, timing.Double).Speedup; s >= 1 {
		t.Errorf("APU miniFE OpenACC speedup = %.2f, want <1", s)
	}
	// SP ≥ DP on the flops-bound app (the 1/4 dGPU DP rate bites; on
	// bandwidth- or transfer-bound apps the CPU baseline's own DP
	// penalty offsets it, as in the paper's near-equal XSBench bars).
	for _, app := range []string{"CoMD"} {
		for _, model := range modelapi.All() {
			sp := find(dgpu, app, model, timing.Single).Speedup
			dp := find(dgpu, app, model, timing.Double).Speedup
			if dp > sp*1.1 {
				t.Errorf("dGPU %s/%s: DP speedup %.2f above SP %.2f", app, model, dp, sp)
			}
		}
	}
}

// Figure 10 headline: C++ AMP most productive on the APU (harmonic mean);
// OpenCL most productive on the dGPU.
func TestProductivityShapes(t *testing.T) {
	apu := must(ProductivityData(bg, ScaleSmall, sim.NewAPU))
	cl, amp, acc := HarmonicMeans(apu)
	if !(amp > cl) {
		t.Errorf("APU harmonic means: AMP %.2f not above OpenCL %.2f (ACC %.2f)", amp, cl, acc)
	}
	// Figure 10b's direction: OpenCL's productivity standing improves
	// sharply when moving APU → dGPU (its speedup advantage outgrows its
	// line-count cost). With Table IV's 10–160× line ratios, Eq. 1
	// cannot rank OpenCL's harmonic mean first outright (EXPERIMENTS.md
	// discusses this against the paper's own numbers), so we assert the
	// relative shift plus a concrete per-app win.
	dgpu := must(ProductivityData(bg, ScaleSmall, sim.NewDGPU))
	cl2, amp2, _ := HarmonicMeans(dgpu)
	if (cl2 / amp2) <= 1.3*(cl/amp) {
		t.Errorf("OpenCL/AMP productivity ratio did not improve APU→dGPU: %.3f → %.3f", cl/amp, cl2/amp2)
	}
	for _, r := range dgpu {
		if r.App == "LULESH" && r.OpenCL <= r.CppAMP {
			t.Errorf("dGPU LULESH productivity: OpenCL %.2f not above AMP %.2f (similar line counts, big speedup gap)", r.OpenCL, r.CppAMP)
		}
	}
	// Paper: "C++ AMP ... is as much as 3× more productive for XSBench
	// on the APU" — require a clear XSBench productivity win for AMP.
	for _, r := range apu {
		if r.App == "XSBench" && r.CppAMP < 2*r.OpenCL {
			t.Errorf("APU XSBench productivity: AMP %.2f not ≫ OpenCL %.2f", r.CppAMP, r.OpenCL)
		}
	}
}

func TestAblationShapes(t *testing.T) {
	// HC beats AMP and OpenACC on both dGPU apps and is at least
	// competitive with OpenCL (async overlap hides uploads; no
	// compiler-managed copies recur).
	cells := must(AblationHCData(bg, ScaleSmall))
	for _, app := range []string{"XSBench", "LULESH"} {
		byModel := map[modelapi.Name]HCCell{}
		for _, c := range cells {
			if c.App == app {
				byModel[c.Model] = c
			}
		}
		hcRes := byModel[modelapi.HC]
		if hcRes.ElapsedMs == 0 {
			t.Fatalf("%s: HC row missing", app)
		}
		if hcRes.ElapsedMs >= byModel[modelapi.CppAMP].ElapsedMs {
			t.Errorf("%s: HC %.2fms not faster than AMP %.2fms", app, hcRes.ElapsedMs, byModel[modelapi.CppAMP].ElapsedMs)
		}
		if hcRes.ElapsedMs > byModel[modelapi.OpenCL].ElapsedMs*1.05 {
			t.Errorf("%s: HC %.2fms worse than OpenCL %.2fms", app, hcRes.ElapsedMs, byModel[modelapi.OpenCL].ElapsedMs)
		}
	}

	// Tiling speedup is substantial.
	flat, tiled, err := AblationTilesData(bg, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if flat/tiled < 1.5 {
		t.Errorf("tiling ablation speedup = %.2f, want ≥1.5", flat/tiled)
	}

	// Data region slashes PCIe traffic.
	withMs, withoutMs, withMB, withoutMB, err := AblationDataRegionData(bg, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if withoutMB <= withMB*2 {
		t.Errorf("conservative copies moved %.1f MB vs %.1f MB with region; want ≫", withoutMB, withMB)
	}
	if withoutMs <= withMs {
		t.Errorf("conservative run %.2fms not slower than data-region run %.2fms", withoutMs, withMs)
	}

	// Grid-structure trade: the nuclide grid moves far less data but
	// does more search work in the kernel.
	grids := must(AblationGridTypeData(bg, ScaleSmall))
	if len(grids) != 2 {
		t.Fatalf("gridtype rows = %d", len(grids))
	}
	union, nuc := grids[0], grids[1]
	if nuc.TableMB*3 > union.TableMB {
		t.Errorf("nuclide table %.0f MB not ≪ unionized %.0f MB", nuc.TableMB, union.TableMB)
	}
	if nuc.TransferMs >= union.TransferMs {
		t.Errorf("nuclide transfer %.2f ms not below unionized %.2f ms", nuc.TransferMs, union.TransferMs)
	}
	if nuc.KernelMs <= union.KernelMs {
		t.Errorf("nuclide kernel %.2f ms not above unionized %.2f ms (extra searches)", nuc.KernelMs, union.KernelMs)
	}
}

func TestCLIHelpers(t *testing.T) {
	if ms, err := Machines("both"); err != nil || len(ms) != 2 {
		t.Errorf("Machines(both) = %d, %v", len(ms), err)
	}
	if ms, err := Machines("apu"); err != nil || len(ms) != 1 || !ms[0]().Unified() {
		t.Errorf("Machines(apu) wrong")
	}
	if ms, err := Machines("dgpu"); err != nil || len(ms) != 1 || ms[0]().Unified() {
		t.Errorf("Machines(dgpu) wrong")
	}
	if _, err := Machines("tpu"); err == nil {
		t.Error("Machines(tpu) accepted")
	}
	if p, err := ParsePrecision("single"); err != nil || p != timing.Single {
		t.Error("ParsePrecision(single) wrong")
	}
	if p, err := ParsePrecision(""); err != nil || p != timing.Double {
		t.Error("ParsePrecision default wrong")
	}
	if _, err := ParsePrecision("half"); err == nil {
		t.Error("ParsePrecision(half) accepted")
	}
}

func TestRunAppRenders(t *testing.T) {
	w := newWorkloads(ScaleSmall, timing.Double)
	var buf bytes.Buffer
	machines, _ := Machines("both")
	err := RunApp(bg, &buf, "read-benchmark", machines, func(m *sim.Machine, md modelapi.Name) appcore.Result {
		return w.Readmem().Run(m, md)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"APU", "R9 280X", "OpenMP", "OpenCL", "Speedup", "Checksum"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunApp output missing %q", want)
		}
	}
}

func TestProfileData(t *testing.T) {
	p := ProfileData(ScaleSmall, modelapi.CppAMP)
	if p.KernelNs <= 0 || len(p.Kernels) < 10 {
		t.Fatalf("profile: %d kernel rows, kernel total %g", len(p.Kernels), p.KernelNs)
	}
	// Within each class, shares sum to ≈1 and rows sort descending.
	for _, rows := range [][]KernelProfileRow{p.Kernels, p.Transfers} {
		sum := 0.0
		for i, r := range rows {
			sum += r.Share
			if i > 0 && r.TotalMs > rows[i-1].TotalMs+1e-9 {
				t.Error("profile rows not sorted by time")
				break
			}
		}
		if len(rows) > 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("profile shares sum to %g", sum)
		}
	}
	// Kernel rows must not contain transfers, and vice versa.
	for _, r := range p.Kernels {
		if r.Kind != "kernel" {
			t.Errorf("kernel row %q has kind %s", r.Name, r.Kind)
		}
	}
	// Under C++ AMP on the dGPU, the CPU-fallback kernel must dominate the
	// kernel profile and its per-iteration round trips must make the
	// transfer class substantial relative to kernel time.
	foundFallback := false
	for _, r := range p.Kernels[:3] {
		if strings.Contains(r.Name, "(cpu-fallback)") {
			foundFallback = true
		}
	}
	if !foundFallback {
		t.Error("AMP kernel profile top-3 does not surface the CPU-fallback kernel")
	}
	if len(p.Transfers) == 0 || p.TransferNs <= 0 {
		t.Fatal("AMP profile records no transfers")
	}
}

func TestRooflineData(t *testing.T) {
	rows := must(RooflineData(bg, ScaleSmall))
	if len(rows) != 5 {
		t.Fatalf("roofline rows = %d", len(rows))
	}
	byApp := map[string]RooflineRow{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.AchievedGflops <= 0 || r.AttainableGflops <= 0 {
			t.Errorf("%s: non-positive throughput", r.App)
		}
		if r.AchievedGflops > r.AttainableGflops*1.05 {
			t.Errorf("%s: achieved %.0f exceeds attainable %.0f", r.App, r.AchievedGflops, r.AttainableGflops)
		}
	}
	if byApp["read-benchmark"].Bound != "memory" {
		t.Error("read-benchmark not memory-regime on the roofline")
	}
	if byApp["CoMD"].Bound != "compute" {
		t.Error("CoMD not compute-regime on the roofline")
	}
	// CoMD has the highest arithmetic intensity in the suite.
	for _, app := range []string{"read-benchmark", "miniFE"} {
		if byApp["CoMD"].IntensityFlopsPerByte <= byApp[app].IntensityFlopsPerByte {
			t.Errorf("CoMD intensity %.2f not above %s's %.2f",
				byApp["CoMD"].IntensityFlopsPerByte, app, byApp[app].IntensityFlopsPerByte)
		}
	}
}

func TestEnergyData(t *testing.T) {
	rows := must(EnergyData(bg, ScaleSmall))
	if len(rows) != 10 {
		t.Fatalf("energy rows = %d, want 10 (5 apps × 2 devices)", len(rows))
	}
	for _, r := range rows {
		if r.EnergyJ <= 0 || r.TimeMs <= 0 {
			t.Errorf("%s/%s: non-positive energy or time", r.App, r.Machine)
		}
		// Average power bounded by idle and board power of the device.
		var lo, hi float64
		if r.Machine == sim.NewAPU().Name() {
			lo, hi = 5, 80
		} else {
			lo, hi = 30, 280
		}
		if r.AvgW < lo || r.AvgW > hi {
			t.Errorf("%s/%s: avg power %.0f W outside [%g, %g]", r.App, r.Machine, r.AvgW, lo, hi)
		}
	}
	// CoMD (compute-bound, big dGPU speedup) must be more
	// energy-efficient on the dGPU despite its board power.
	var comdAPU, comdDGPU float64
	for _, r := range rows {
		if r.App == "CoMD" {
			if r.Machine == sim.NewAPU().Name() {
				comdAPU = r.EnergyJ
			} else {
				comdDGPU = r.EnergyJ
			}
		}
	}
	if comdDGPU >= comdAPU {
		t.Errorf("CoMD energy: dGPU %.3f J not below APU %.3f J", comdDGPU, comdAPU)
	}
}

// Every experiment renders without error and produces output.
func TestRunAllRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(bg, ScaleSmall, &buf); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I", "R9 280X", "CLAMP", "read-benchmark", "Figure 7", "Har. Mean",
		"Vectorization", "tile_static", "data region",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
	if len(out) < 4000 {
		t.Errorf("RunAll output suspiciously short: %d bytes", len(out))
	}
}
