package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/fault"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// perfBaselineFaultRate is the composite fault intensity of the
// baseline's resilience cell — high enough that every recovery path
// (retry, backoff, watchdog, retransmit) contributes samples to the
// hist.fault.recovery.ns distribution.
const perfBaselineFaultRate = 0.05

// RunPerfBaseline is the perfbaseline experiment: one traced cell per
// proxy app (OpenCL on the dGPU) plus a fault-injection cell and a
// co-execution cell, each printing its latency-distribution quantiles.
// Everything on stdout derives from virtual clocks and merged histogram
// buckets, so the output is byte-identical at any -jobs — while the
// run itself is a representative runner workout whose wall-clock stats
// feed BENCH_runner.json via `hetbench -exp perfbaseline -bench-out`.
func RunPerfBaseline(ctx context.Context, scale Scale, w io.Writer) error {
	fmt.Fprintln(w, "Latency distributions per cell (virtual-clock ns, log-bucketed histograms; quantiles are")
	fmt.Fprintln(w, "bucket upper bounds clamped to the observed range, deterministic at any -jobs).")
	fmt.Fprintln(w)

	apps := []string{"read-benchmark", "LULESH", "CoMD", "XSBench", "miniFE"}
	cells := make([]runner.Cell, 0, len(apps)+2)
	for _, app := range apps {
		app := app
		cells = append(cells, runner.Cell{Label: "perfbaseline/" + app, Run: func(cx *runner.Ctx) error {
			w := newWorkloads(scale, timing.Double)
			r, ok := w.runnerByName(app)
			if !ok {
				return fmt.Errorf("unknown app %q", app)
			}
			m := sim.NewDGPU()
			t := trace.New()
			m.SetTracer(t)
			res := r.run(m, modelapi.OpenCL)
			fmt.Fprintf(cx.Out, "--- %s (OpenCL, dGPU): %.3f ms elapsed ---\n", app, res.ElapsedNs/1e6)
			if err := histTable(cx.Out, fmt.Sprintf("%s — latency distributions", app), t.Metrics()); err != nil {
				return err
			}
			fmt.Fprintln(cx.Out)
			return nil
		}})
	}

	cells = append(cells, runner.Cell{Label: "perfbaseline/faults", Run: func(cx *runner.Ctx) error {
		w := newWorkloads(scale, timing.Double)
		pol := fault.DefaultPolicy()
		m := sim.NewDGPU()
		t := trace.New()
		m.SetTracer(t)
		clean := w.Lulesh().Run(m, modelapi.OpenCL)
		mf := sim.NewDGPU()
		mf.SetTracer(t)
		inj := fault.New(faultConfig(perfBaselineFaultRate, cellSeed(7, 7)))
		mf.SetFaultInjector(inj, pol)
		_, totalNs, _, _ := runResilient(mf, pol, clean.Checksum,
			func() appcore.Result { return w.Lulesh().Run(mf, modelapi.OpenCL) })
		fmt.Fprintf(cx.Out, "--- LULESH under fault rate %.2f (OpenCL, dGPU): %.3f ms total, %d faults injected ---\n",
			perfBaselineFaultRate, totalNs/1e6, inj.Total())
		if err := histTable(cx.Out, "faults — latency distributions", t.Metrics()); err != nil {
			return err
		}
		fmt.Fprintln(cx.Out)
		return nil
	}})

	cells = append(cells, runner.Cell{Label: "perfbaseline/coexec", Run: func(cx *runner.Ctx) error {
		w := newWorkloads(scale, timing.Double)
		cfg := sched.Config{Policy: sched.Dynamic, Seed: Seed()}
		s := sched.New(cfg)
		m := sim.NewDGPU()
		t := trace.New()
		m.SetTracer(t)
		m.SetCoexec(s)
		res := w.Lulesh().Run(m, modelapi.OpenCL)
		fmt.Fprintf(cx.Out, "--- LULESH co-executed (dynamic split, dGPU): %.3f ms elapsed ---\n", res.ElapsedNs/1e6)
		if err := histTable(cx.Out, "coexec — latency distributions", t.Metrics()); err != nil {
			return err
		}
		fmt.Fprintln(cx.Out)
		return nil
	}})

	_, err := runner.Run(ctx, w, cells)
	return err
}
