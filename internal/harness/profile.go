package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// KernelProfileRow is one name's aggregate from the trace. Share is the
// fraction of that row's own resource class — kernel time for kernels,
// transfer time for transfers — so compute and the PCIe link are not
// conflated into one meaningless total.
type KernelProfileRow struct {
	Name    string
	Kind    trace.Kind
	Calls   int
	TotalMs float64
	Bound   string
	Share   float64
}

// Profile is the per-kernel/per-transfer drill-down of one traced run.
type Profile struct {
	Kernels    []KernelProfileRow
	Transfers  []KernelProfileRow
	KernelNs   float64
	TransferNs float64
}

func profileRows(aggs []trace.Agg) []KernelProfileRow {
	total := trace.TotalNs(aggs)
	rows := make([]KernelProfileRow, 0, len(aggs))
	for _, a := range aggs {
		share := 0.0
		if total > 0 {
			share = a.TotalNs / total
		}
		rows = append(rows, KernelProfileRow{
			Name: a.Name, Kind: a.Kind, Calls: a.Calls,
			TotalMs: a.TotalNs / 1e6, Bound: a.Bound, Share: share,
		})
	}
	return rows
}

// ProfileData runs LULESH under one model on the dGPU with a fresh tracer
// attached and aggregates per-kernel and per-transfer time separately —
// the drill-down that exposes, e.g., the C++ AMP CPU-fallback kernel and
// the per-iteration round trips it induces.
func ProfileData(scale Scale, model modelapi.Name) Profile {
	w := newWorkloads(scale, timing.Double)
	// The profile aggregates a dedicated tracer rather than the cell's
	// capture tracer: its spans are measurement scaffolding, not run
	// output (the machine carries one tracer, and the dedicated one wins
	// exactly as in the serial harness).
	m := sim.NewDGPU()
	m.SetTracer(trace.New())
	w.Lulesh().Run(m, model)

	spans := m.Tracer().Spans()
	kernels := trace.Aggregate(spans, trace.KindKernel)
	transfers := trace.Aggregate(spans, trace.KindTransfer)
	return Profile{
		Kernels:    profileRows(kernels),
		Transfers:  profileRows(transfers),
		KernelNs:   trace.TotalNs(kernels),
		TransferNs: trace.TotalNs(transfers),
	}
}

func profileTable(w io.Writer, title string, rows []KernelProfileRow, limit int) error {
	t := report.NewTable(title, "Name", "Calls", "Total ms", "Share", "Bound")
	if len(rows) < limit {
		limit = len(rows)
	}
	for _, r := range rows[:limit] {
		t.AddRowf(r.Name, r.Calls, fmt.Sprintf("%.3f", r.TotalMs), fmt.Sprintf("%.1f%%", r.Share*100), r.Bound)
	}
	_, err := t.WriteTo(w)
	return err
}

// RunProfile renders the per-kernel and per-transfer profiles for all
// three GPU models, one runner cell per model.
func RunProfile(ctx context.Context, scale Scale, w io.Writer) error {
	models := modelapi.All()
	cells := make([]runner.Cell, len(models))
	for i, model := range models {
		model := model
		cells[i] = runner.Cell{Label: "profile/" + string(model), Run: func(cx *runner.Ctx) error {
			p := ProfileData(scale, model)
			if err := profileTable(cx.Out,
				fmt.Sprintf("LULESH on the R9 280X under %s — top kernels (kernel total %.2f ms)", model, p.KernelNs/1e6),
				p.Kernels, 10); err != nil {
				return err
			}
			if len(p.Transfers) > 0 {
				if err := profileTable(cx.Out,
					fmt.Sprintf("LULESH on the R9 280X under %s — transfers (transfer total %.2f ms)", model, p.TransferNs/1e6),
					p.Transfers, 5); err != nil {
					return err
				}
			}
			fmt.Fprintln(cx.Out)
			return nil
		}}
	}
	_, err := runner.Run(ctx, w, cells)
	return err
}

// RooflineRow characterizes one app on the dGPU: arithmetic intensity,
// achieved and attainable throughput.
type RooflineRow struct {
	App string
	// IntensityFlopsPerByte is flops per byte of DRAM traffic.
	IntensityFlopsPerByte float64
	AchievedGflops        float64
	AttainableGflops      float64
	// Bound is "memory" left of the ridge, "compute" right of it.
	Bound string
}

// RooflineData replays each app's cost log on the dGPU and places it on
// the classic roofline: attainable = min(peak, intensity × bandwidth).
func RooflineData(ctx context.Context, scale Scale) ([]RooflineRow, error) {
	return runner.Map(ctx, "roofline", len(AppNames), func(cx *runner.Ctx, i int) RooflineRow {
		w := newWorkloads(scale, timing.Single)
		r, _ := w.runnerByName(AppNames[i])
		m := cx.Machine(sim.NewDGPU)
		m.EnableCostLog()
		r.run(m, modelapi.OpenCL)

		var flops, dram float64
		for _, lc := range m.CostLog() {
			if lc.Target != sim.OnAccelerator {
				continue
			}
			items := float64(lc.Cost.Items)
			flops += items * (lc.Cost.SPFlops + lc.Cost.DPFlops)
			coal := lc.Cost.Coalesce
			if coal == 0 {
				coal = 1
			}
			dram += items * (lc.Cost.LoadBytes + lc.Cost.StoreBytes) * lc.Cost.MissRate / coal
		}
		if dram == 0 {
			dram = 1
		}
		dev := m.Accelerator()
		intensity := flops / dram
		bwRoof := intensity * dev.PeakBandwidthGBs
		peak := dev.PeakSPGflops()
		attainable := peak
		bound := "compute"
		if bwRoof < peak {
			attainable = bwRoof
			bound = "memory"
		}
		achieved := flops / m.KernelNs() // flops/ns = Gflops
		return RooflineRow{
			App:                   r.name,
			IntensityFlopsPerByte: intensity,
			AchievedGflops:        achieved,
			AttainableGflops:      attainable,
			Bound:                 bound,
		}
	})
}

// RunRoofline renders the roofline table.
func RunRoofline(ctx context.Context, scale Scale, w io.Writer) error {
	t := report.NewTable("Roofline placement on the R9 280X (SP, OpenCL, DRAM-filtered traffic)",
		"Application", "Flops/DRAM-byte", "Achieved GFLOPS", "Attainable GFLOPS", "Regime")
	rows, err := RooflineData(ctx, scale)
	if err != nil {
		return err
	}
	for _, r := range rows {
		t.AddRowf(r.App,
			fmt.Sprintf("%.2f", r.IntensityFlopsPerByte),
			fmt.Sprintf("%.0f", r.AchievedGflops),
			fmt.Sprintf("%.0f", r.AttainableGflops),
			r.Bound)
	}
	_, err = t.WriteTo(w)
	return err
}
