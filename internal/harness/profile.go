package harness

import (
	"fmt"
	"io"
	"sort"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// KernelProfileRow is one kernel's aggregate from the event log.
type KernelProfileRow struct {
	Name    string
	Calls   int
	TotalMs float64
	Bound   string
	Share   float64
}

// ProfileData runs LULESH under one model on the dGPU with the event log
// enabled and aggregates per-kernel time — the drill-down that exposes,
// e.g., the C++ AMP CPU-fallback kernel eating the run.
func ProfileData(scale Scale, model modelapi.Name) ([]KernelProfileRow, float64) {
	w := newWorkloads(scale, timing.Double)
	m := sim.NewDGPU()
	m.EnableEventLog(true)
	w.Lulesh.Run(m, model)

	type agg struct {
		calls int
		ns    float64
		bound string
	}
	byName := map[string]*agg{}
	var totalNs float64
	for _, ev := range m.Events() {
		key := string(ev.Kind)
		if ev.Kind == sim.EvKernel {
			key = ev.Name
		} else {
			key = "(transfer " + string(ev.Kind) + ")"
		}
		a := byName[key]
		if a == nil {
			a = &agg{}
			byName[key] = a
		}
		a.calls++
		a.ns += ev.TimeNs
		if ev.Bound != "" {
			a.bound = ev.Bound
		}
		totalNs += ev.TimeNs
	}

	rows := make([]KernelProfileRow, 0, len(byName))
	for name, a := range byName {
		rows = append(rows, KernelProfileRow{
			Name: name, Calls: a.calls, TotalMs: a.ns / 1e6, Bound: a.bound,
			Share: a.ns / totalNs,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].TotalMs > rows[j].TotalMs })
	return rows, totalNs
}

// RunProfile renders the per-kernel profiles for all three GPU models.
func RunProfile(scale Scale, w io.Writer) error {
	for _, model := range modelapi.All() {
		rows, totalNs := ProfileData(scale, model)
		t := report.NewTable(
			fmt.Sprintf("LULESH on the R9 280X under %s — top kernels (total %.2f ms)", model, totalNs/1e6),
			"Kernel", "Calls", "Total ms", "Share", "Bound")
		limit := 10
		if len(rows) < limit {
			limit = len(rows)
		}
		for _, r := range rows[:limit] {
			t.AddRowf(r.Name, r.Calls, fmt.Sprintf("%.3f", r.TotalMs), fmt.Sprintf("%.1f%%", r.Share*100), r.Bound)
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RooflineRow characterizes one app on the dGPU: arithmetic intensity,
// achieved and attainable throughput.
type RooflineRow struct {
	App string
	// IntensityFlopsPerByte is flops per byte of DRAM traffic.
	IntensityFlopsPerByte float64
	AchievedGflops        float64
	AttainableGflops      float64
	// Bound is "memory" left of the ridge, "compute" right of it.
	Bound string
}

// RooflineData replays each app's cost log on the dGPU and places it on
// the classic roofline: attainable = min(peak, intensity × bandwidth).
func RooflineData(scale Scale) []RooflineRow {
	w := newWorkloads(scale, timing.Single)
	var out []RooflineRow
	for _, r := range w.runners() {
		m := sim.NewDGPU()
		m.EnableCostLog()
		r.run(m, modelapi.OpenCL)

		var flops, dram float64
		for _, lc := range m.CostLog() {
			if lc.Target != sim.OnAccelerator {
				continue
			}
			items := float64(lc.Cost.Items)
			flops += items * (lc.Cost.SPFlops + lc.Cost.DPFlops)
			coal := lc.Cost.Coalesce
			if coal == 0 {
				coal = 1
			}
			dram += items * (lc.Cost.LoadBytes + lc.Cost.StoreBytes) * lc.Cost.MissRate / coal
		}
		if dram == 0 {
			dram = 1
		}
		dev := m.Accelerator()
		intensity := flops / dram
		bwRoof := intensity * dev.PeakBandwidthGBs
		peak := dev.PeakSPGflops()
		attainable := peak
		bound := "compute"
		if bwRoof < peak {
			attainable = bwRoof
			bound = "memory"
		}
		achieved := flops / m.KernelNs() // flops/ns = Gflops
		out = append(out, RooflineRow{
			App:                   r.name,
			IntensityFlopsPerByte: intensity,
			AchievedGflops:        achieved,
			AttainableGflops:      attainable,
			Bound:                 bound,
		})
	}
	return out
}

// RunRoofline renders the roofline table.
func RunRoofline(scale Scale, w io.Writer) error {
	t := report.NewTable("Roofline placement on the R9 280X (SP, OpenCL, DRAM-filtered traffic)",
		"Application", "Flops/DRAM-byte", "Achieved GFLOPS", "Attainable GFLOPS", "Regime")
	for _, r := range RooflineData(scale) {
		t.AddRowf(r.App,
			fmt.Sprintf("%.2f", r.IntensityFlopsPerByte),
			fmt.Sprintf("%.0f", r.AchievedGflops),
			fmt.Sprintf("%.0f", r.AttainableGflops),
			r.Bound)
	}
	_, err := t.WriteTo(w)
	return err
}
