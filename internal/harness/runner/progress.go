package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"hetbench/internal/trace"
)

// Event is one progress notification from the worker pool. Events carry
// wall-clock durations and are therefore nondeterministic; they exist
// for humans and dashboards watching a run, never for experiment
// output (which stays a function of the seed and virtual clocks).
type Event struct {
	// Type is one of "run-start", "cell-start", "cell-done", "run-done".
	Type string
	// Cell and Label identify the cell for cell-scoped events.
	Cell  int
	Label string
	// Err is the cell's error, non-nil only on a failed "cell-done".
	Err error
	// CellDur is the finished cell's wall time ("cell-done" only).
	CellDur time.Duration

	// Pool-wide tallies at the moment of the event.
	Started int
	Done    int
	Failed  int
	Total   int
	Jobs    int

	// Elapsed is wall time since the pool started; ETA estimates the
	// remaining wall time from the mean cell duration so far and the
	// worker count (zero until the first cell finishes).
	Elapsed time.Duration
	ETA     time.Duration

	// P50/P95/P99 are the per-cell wall-time quantiles so far.
	P50, P95, P99 time.Duration
}

// ProgressSink receives pool progress events. Emit is called from the
// worker goroutines under the tracker's lock, so implementations need
// no further synchronization against each other but must not block for
// long. A nil sink (the default) costs the hot path nothing.
type ProgressSink interface {
	Emit(Event)
}

// progress is the run-wide sink, installed by cmd/hetbench's -progress
// and -progress-log flags.
var progress ProgressSink

// SetProgress installs (or, with nil, removes) the run-wide progress
// sink. Like SetJobs/SetCapture it is read once per Run call.
func SetProgress(s ProgressSink) {
	mu.Lock()
	defer mu.Unlock()
	progress = s
}

// Progress returns the installed progress sink, if any.
func Progress() ProgressSink {
	mu.Lock()
	defer mu.Unlock()
	return progress
}

// progTracker serializes event emission for one Run and maintains the
// tallies and the per-cell wall-time histogram the events carry. A nil
// tracker (no sink installed) makes every method a branch-and-return,
// keeping the no-progress hot path allocation-free.
type progTracker struct {
	mu      sync.Mutex
	sink    ProgressSink
	total   int
	jobs    int
	started int
	done    int
	failed  int
	start   time.Time
	hist    trace.Histogram
}

// newProgTracker returns nil when no sink is installed, so callers pay
// only a nil check per cell.
func newProgTracker(sink ProgressSink, total, jobs int) *progTracker {
	if sink == nil {
		return nil
	}
	return &progTracker{
		sink:  sink,
		total: total,
		jobs:  jobs,
		start: time.Now(), //hetlint:allow detnondet progress events are wall-clock by design, never experiment output
	}
}

// fill stamps the tallies, elapsed time, quantiles and ETA onto an
// event. Caller holds p.mu.
func (p *progTracker) fill(ev *Event) {
	ev.Started, ev.Done, ev.Failed = p.started, p.done, p.failed
	ev.Total, ev.Jobs = p.total, p.jobs
	ev.Elapsed = time.Since(p.start) //hetlint:allow detnondet progress events are wall-clock by design, never experiment output
	if p.hist.Count() > 0 {
		ev.P50 = time.Duration(p.hist.Quantile(0.50))
		ev.P95 = time.Duration(p.hist.Quantile(0.95))
		ev.P99 = time.Duration(p.hist.Quantile(0.99))
		remaining := p.total - p.done
		if remaining > 0 {
			perWorker := (remaining + p.jobs - 1) / p.jobs
			ev.ETA = time.Duration(p.hist.Mean() * float64(perWorker))
		}
	}
}

func (p *progTracker) runStart() {
	if p == nil {
		return
	}
	p.mu.Lock()
	ev := Event{Type: "run-start"}
	p.fill(&ev)
	p.sink.Emit(ev)
	p.mu.Unlock()
}

func (p *progTracker) cellStart(i int, label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.started++
	ev := Event{Type: "cell-start", Cell: i, Label: label}
	p.fill(&ev)
	p.sink.Emit(ev)
	p.mu.Unlock()
}

func (p *progTracker) cellDone(i int, label string, d time.Duration, err error) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	if err != nil {
		p.failed++
	}
	p.hist.Observe(float64(d))
	ev := Event{Type: "cell-done", Cell: i, Label: label, CellDur: d, Err: err}
	p.fill(&ev)
	p.sink.Emit(ev)
	p.mu.Unlock()
}

func (p *progTracker) runDone() {
	if p == nil {
		return
	}
	p.mu.Lock()
	ev := Event{Type: "run-done"}
	p.fill(&ev)
	p.sink.Emit(ev)
	p.mu.Unlock()
}

// TTYSink renders pool progress as a single line redrawn in place with
// carriage returns — the `hetbench -progress` view. It assumes the
// writer is a terminal (cmd/hetbench points it at stderr) and finishes
// the line with a newline on "run-done".
type TTYSink struct {
	W io.Writer
}

// Emit implements ProgressSink.
func (s *TTYSink) Emit(ev Event) {
	switch ev.Type {
	case "cell-start", "cell-done", "run-start":
		running := ev.Started - ev.Done
		line := fmt.Sprintf("\r[%d/%d] %d running", ev.Done, ev.Total, running)
		if ev.Failed > 0 {
			line += fmt.Sprintf(", %d FAILED", ev.Failed)
		}
		if ev.Done > 0 {
			line += fmt.Sprintf(" | cell p50 %.1fms p99 %.1fms", ms(ev.P50), ms(ev.P99))
		}
		if ev.ETA > 0 {
			line += fmt.Sprintf(" | eta %.1fs", ev.ETA.Seconds())
		}
		if ev.Type == "cell-done" && ev.Label != "" {
			line += " | " + ev.Label
		}
		// Pad to blot out a longer previous line.
		fmt.Fprintf(s.W, "%-78s", line)
	case "run-done":
		line := fmt.Sprintf("\r[%d/%d] done in %.1fs", ev.Done, ev.Total, ev.Elapsed.Seconds())
		if ev.Failed > 0 {
			line += fmt.Sprintf(", %d FAILED", ev.Failed)
		}
		if ev.Done > 0 {
			line += fmt.Sprintf(" | cell p50 %.1fms p99 %.1fms", ms(ev.P50), ms(ev.P99))
		}
		fmt.Fprintf(s.W, "%-78s\n", line)
	}
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// progressRecord is the JSONL wire form of an Event: durations in
// milliseconds, the error flattened to a string.
type progressRecord struct {
	Type      string  `json:"type"`
	Cell      int     `json:"cell,omitempty"`
	Label     string  `json:"label,omitempty"`
	Error     string  `json:"error,omitempty"`
	CellMs    float64 `json:"cell_ms,omitempty"`
	Started   int     `json:"started"`
	Done      int     `json:"done"`
	Failed    int     `json:"failed,omitempty"`
	Total     int     `json:"total"`
	Jobs      int     `json:"jobs"`
	ElapsedMs float64 `json:"elapsed_ms"`
	EtaMs     float64 `json:"eta_ms,omitempty"`
	P50Ms     float64 `json:"p50_ms,omitempty"`
	P95Ms     float64 `json:"p95_ms,omitempty"`
	P99Ms     float64 `json:"p99_ms,omitempty"`
}

// JSONLSink appends one JSON object per event — the `-progress-log`
// machine-readable feed. Lines are written whole under a lock, so a
// tail -f reader never sees a torn record.
type JSONLSink struct {
	mu sync.Mutex
	W  io.Writer
}

// Emit implements ProgressSink.
func (s *JSONLSink) Emit(ev Event) {
	rec := progressRecord{
		Type: ev.Type, Cell: ev.Cell, Label: ev.Label,
		CellMs:  ms(ev.CellDur),
		Started: ev.Started, Done: ev.Done, Failed: ev.Failed,
		Total: ev.Total, Jobs: ev.Jobs,
		ElapsedMs: ms(ev.Elapsed), EtaMs: ms(ev.ETA),
		P50Ms: ms(ev.P50), P95Ms: ms(ev.P95), P99Ms: ms(ev.P99),
	}
	if ev.Err != nil {
		rec.Error = ev.Err.Error()
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.mu.Lock()
	s.W.Write(b)
	s.mu.Unlock()
}

// MultiSink fans each event out to every sink in order.
type MultiSink []ProgressSink

// Emit implements ProgressSink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}
