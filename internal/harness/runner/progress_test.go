package runner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordSink collects every event for assertions.
type recordSink struct {
	mu     sync.Mutex
	events []Event
}

func (s *recordSink) Emit(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// withProgress installs a sink for one test and removes it after.
func withProgress(t *testing.T, s ProgressSink) {
	t.Helper()
	SetProgress(s)
	t.Cleanup(func() { SetProgress(nil) })
}

func TestProgressEventSequence(t *testing.T) {
	withJobs(t, 2)
	sink := &recordSink{}
	withProgress(t, sink)
	failure := errors.New("boom")
	cells := make([]Cell, 5)
	for i := range cells {
		i := i
		cells[i] = Cell{Label: fmt.Sprintf("cell-%d", i), Run: func(cx *Ctx) error {
			time.Sleep(time.Millisecond)
			if i == 3 {
				return failure
			}
			return nil
		}}
	}
	if _, err := Run(context.Background(), nil, cells); !errors.Is(err, failure) {
		t.Fatalf("Run error = %v, want %v", err, failure)
	}
	evs := sink.events
	if len(evs) != 2+2*len(cells) {
		t.Fatalf("got %d events, want %d:\n%+v", len(evs), 2+2*len(cells), evs)
	}
	if evs[0].Type != "run-start" || evs[len(evs)-1].Type != "run-done" {
		t.Fatalf("event bracket = %q ... %q", evs[0].Type, evs[len(evs)-1].Type)
	}
	var starts, dones, fails int
	for _, ev := range evs {
		if ev.Total != len(cells) || ev.Jobs != 2 {
			t.Fatalf("event %+v lost total/jobs", ev)
		}
		switch ev.Type {
		case "cell-start":
			starts++
		case "cell-done":
			dones++
			if ev.CellDur <= 0 {
				t.Errorf("cell-done %d carries no duration", ev.Cell)
			}
			if ev.Err != nil {
				fails++
				if ev.Cell != 3 {
					t.Errorf("failure attributed to cell %d, want 3", ev.Cell)
				}
			}
		}
	}
	if starts != 5 || dones != 5 || fails != 1 {
		t.Errorf("starts/dones/fails = %d/%d/%d, want 5/5/1", starts, dones, fails)
	}
	final := evs[len(evs)-1]
	if final.Done != 5 || final.Failed != 1 || final.P50 <= 0 {
		t.Errorf("run-done = %+v, want done 5, failed 1, positive p50", final)
	}
}

func TestTTYSinkRendersLine(t *testing.T) {
	withJobs(t, 1)
	var buf bytes.Buffer
	withProgress(t, &TTYSink{W: &buf})
	cells := []Cell{
		{Label: "a", Run: func(cx *Ctx) error { time.Sleep(time.Millisecond); return nil }},
		{Label: "b", Run: func(cx *Ctx) error { return nil }},
	}
	if _, err := Run(context.Background(), nil, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\r") {
		t.Error("TTY sink never redrew the line with \\r")
	}
	if !strings.Contains(out, "[2/2] done") {
		t.Errorf("TTY output missing completion line:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("TTY sink did not finish the line with a newline")
	}
}

func TestJSONLSinkEmitsParsableLines(t *testing.T) {
	withJobs(t, 4)
	var buf bytes.Buffer
	withProgress(t, &JSONLSink{W: &buf})
	cells := make([]Cell, 3)
	for i := range cells {
		cells[i] = Cell{Label: fmt.Sprintf("c%d", i), Run: func(cx *Ctx) error {
			time.Sleep(time.Millisecond)
			return nil
		}}
	}
	if _, err := Run(context.Background(), nil, cells); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	var sawDone bool
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		if rec["type"] == "run-done" {
			sawDone = true
			if rec["done"] != float64(3) || rec["jobs"] != float64(4) {
				t.Errorf("run-done record = %v", rec)
			}
		}
	}
	if lines != 2+2*len(cells) || !sawDone {
		t.Errorf("got %d JSONL lines (sawDone=%v), want %d", lines, sawDone, 2+2*len(cells))
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	withJobs(t, 1)
	a, b := &recordSink{}, &recordSink{}
	withProgress(t, MultiSink{a, b})
	if _, err := Run(context.Background(), nil, []Cell{{Run: func(cx *Ctx) error { return nil }}}); err != nil {
		t.Fatal(err)
	}
	if len(a.events) == 0 || len(a.events) != len(b.events) {
		t.Errorf("fan-out uneven: %d vs %d events", len(a.events), len(b.events))
	}
}

// With no sink installed the tracker is nil and every per-cell progress
// call must be a branch-and-return: zero allocations on the hot path.
func TestNilProgressTrackerAllocs(t *testing.T) {
	var p *progTracker
	if avg := testing.AllocsPerRun(1000, func() {
		p.runStart()
		p.cellStart(0, "label")
		p.cellDone(0, "label", time.Millisecond, nil)
		p.runDone()
	}); avg != 0 {
		t.Errorf("nil progress tracker allocates %.1f/op, want 0", avg)
	}
}

// Stats carries the per-cell wall-time distribution and renders its
// quantiles.
func TestStatsCellQuantiles(t *testing.T) {
	ResetStats()
	withJobs(t, 2)
	cells := make([]Cell, 6)
	for i := range cells {
		cells[i] = Cell{Run: func(cx *Ctx) error {
			time.Sleep(time.Millisecond)
			return nil
		}}
	}
	stats, err := Run(context.Background(), nil, cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.CellNs.Count(); got != 6 {
		t.Fatalf("stats.CellNs.Count() = %d, want 6", got)
	}
	if stats.CellQuantile(0.5) < time.Millisecond {
		t.Errorf("cell p50 %v below the 1ms sleep floor", stats.CellQuantile(0.5))
	}
	if s := stats.String(); !strings.Contains(s, "cell p50") || !strings.Contains(s, "p99") {
		t.Errorf("Stats.String() lacks cell quantiles: %q", s)
	}
	if tot := TotalStats(); tot.CellNs.Count() != 6 {
		t.Errorf("TotalStats().CellNs.Count() = %d, want 6", tot.CellNs.Count())
	}
}
