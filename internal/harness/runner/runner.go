// Package runner executes an experiment's independent cells on a bounded
// worker pool and merges their results in deterministic cell order, so an
// experiment's output is byte-identical to the serial run regardless of
// how many workers execute it.
//
// The contract each cell must honor is isolation: a cell builds every
// sim.Machine, tracer and fault injector it needs through its own Ctx and
// shares no mutable state with other cells. The runner supplies the rest
// of the determinism story — cell outputs are buffered privately and
// concatenated in cell-index order, per-cell tracers are folded into the
// run-wide capture tracer in the same order, and the first error in cell
// order wins — so `hetbench -jobs 32` and `-jobs 1` emit the same bytes
// and the same trace.
//
// Runs are cancelable: Run and Map take a context.Context, cells observe
// it through Ctx.Context, and cells that have not started when the
// context is canceled are skipped with ctx.Err(). A panicking cell fails
// with ErrCellPanic instead of killing the pool, so one bad cell degrades
// the run rather than the process.
package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"hetbench/internal/sim"
	"hetbench/internal/trace"
)

// Cell is one independent unit of an experiment: it writes its slice of
// the experiment's output to cx.Out and builds machines via cx.Machine.
type Cell struct {
	// Label names the cell in error messages ("coexec/dGPU/LULESH").
	Label string
	Run   func(cx *Ctx) error
}

// ErrCellPanic marks a cell failure caused by a recovered panic. The
// pool survives: the panic fails only its own cell, the run is reported
// degraded through Stats.Panics, and every other cell completes.
var ErrCellPanic = errors.New("cell panicked")

// Ctx is one cell's private execution context.
type Ctx struct {
	// Index is the cell's position in the experiment's cell slice — the
	// position its output and trace occupy after the deterministic merge.
	Index int
	// Out buffers the cell's rendered output; Run concatenates the
	// buffers in cell order once every cell has finished.
	Out *bytes.Buffer

	// ctx is the run's context; long-running cells poll it through
	// Context so client disconnects and deadlines cancel in-flight work.
	ctx context.Context

	// tracer is the cell's private tracer, non-nil only while a run-wide
	// capture is installed (the -trace flag).
	tracer *trace.Tracer
}

// Context returns the run's context. Long-running cells should poll it
// between phases and return its Err to honor cancellation. A nil
// receiver or a Ctx built outside Run (direct Data calls from tests)
// yields a background context, so cells need no nil checks.
func (cx *Ctx) Context() context.Context {
	if cx == nil || cx.ctx == nil {
		return context.Background()
	}
	return cx.ctx
}

// Machine builds one cell-private machine. When a run-wide trace capture
// is active the machine attaches to the cell's private tracer (folded
// into the capture in cell order at merge time) instead of a tracer
// shared across concurrent cells — that sharing is exactly what would
// make span order depend on goroutine interleaving. A nil receiver is
// allowed so experiment helpers can run outside any cell (direct calls
// from tests); it degenerates to plain construction.
func (cx *Ctx) Machine(mk func() *sim.Machine) *sim.Machine {
	m := mk()
	if cx != nil && cx.tracer != nil && m.Tracer() == nil {
		m.SetTracer(cx.tracer)
	}
	return m
}

// jobs/capture are run-wide knobs (the cmd/hetbench -jobs and -trace
// flags). They are read once per Run call, so flipping them mid-run does
// not tear a merge.
var (
	mu      sync.Mutex
	jobs    = DefaultJobs()
	capture *trace.Tracer
	total   Stats
)

// DefaultJobs is the worker count used when none is configured: the
// HETBENCH_JOBS environment variable if set to a positive integer
// (CI pins it to exercise both serial and parallel schedules), else
// GOMAXPROCS.
func DefaultJobs() int {
	if s := os.Getenv("HETBENCH_JOBS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// SetJobs bounds the worker pool; n < 1 restores the default.
func SetJobs(n int) {
	mu.Lock()
	defer mu.Unlock()
	if n < 1 {
		jobs = DefaultJobs()
		return
	}
	jobs = n
}

// Jobs returns the configured worker bound.
func Jobs() int {
	mu.Lock()
	defer mu.Unlock()
	return jobs
}

// SetCapture installs (or, with nil, removes) the run-wide tracer that
// cell tracers fold into. While a capture is installed, every Ctx gets a
// private tracer and Ctx.Machine attaches machines to it.
func SetCapture(t *trace.Tracer) {
	mu.Lock()
	defer mu.Unlock()
	capture = t
}

// Capture returns the installed run-wide tracer, if any.
func Capture() *trace.Tracer {
	mu.Lock()
	defer mu.Unlock()
	return capture
}

// Stats summarizes one Run (or, via TotalStats, all runs so far).
type Stats struct {
	Cells int
	Jobs  int
	// Panics counts cells that failed by panicking (recovered into
	// ErrCellPanic). A non-zero count marks the run degraded: the pool
	// survived, but some cells produced no result.
	Panics int
	// Wall is the pool's elapsed time; Serial is the sum of per-cell
	// times — the serial-run estimate the speedup compares against.
	Wall   time.Duration
	Serial time.Duration
	// CellNs is the distribution of per-cell wall times. It is observed
	// directly (never through a trace.Registry), because wall-clock
	// samples must stay out of the deterministic capture path; like Wall
	// and Serial it only ever reaches stderr reports and BENCH files.
	CellNs trace.Histogram
}

// Speedup is the serial-estimate-over-wall ratio.
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Serial) / float64(s.Wall)
}

// CellQuantile returns the q-quantile of the per-cell wall-time
// distribution.
func (s *Stats) CellQuantile(q float64) time.Duration {
	return time.Duration(s.CellNs.Quantile(q))
}

// String renders the stats as the one-line -v report.
func (s Stats) String() string {
	if s.Cells == 0 {
		return "runner: 0 cells"
	}
	line := fmt.Sprintf("runner: %d cells on %d workers: wall %.1fms, serial estimate %.1fms, speedup %.2fx",
		s.Cells, s.Jobs, float64(s.Wall)/1e6, float64(s.Serial)/1e6, s.Speedup())
	if s.CellNs.Count() > 0 {
		line += fmt.Sprintf(", cell p50 %.1fms p99 %.1fms",
			float64(s.CellQuantile(0.50))/1e6, float64(s.CellQuantile(0.99))/1e6)
	}
	if s.Panics > 0 {
		line += fmt.Sprintf(", %d PANICKED", s.Panics)
	}
	return line
}

func addTotal(s Stats) {
	mu.Lock()
	defer mu.Unlock()
	total.Cells += s.Cells
	total.Panics += s.Panics
	total.Wall += s.Wall
	total.Serial += s.Serial
	if s.Jobs > total.Jobs {
		total.Jobs = s.Jobs
	}
	total.CellNs.Merge(&s.CellNs)
}

// TotalStats returns stats accumulated over every Run since ResetStats;
// Wall sums the pools' elapsed times (Run calls do not overlap in the
// CLI, so the sum is the experiment's runner-time).
func TotalStats() Stats {
	mu.Lock()
	defer mu.Unlock()
	return total
}

// ResetStats clears the run-wide accumulator.
func ResetStats() {
	mu.Lock()
	defer mu.Unlock()
	total = Stats{}
}

// safeRun invokes one cell with panic containment: a panic becomes an
// ErrCellPanic-wrapped error carrying the panic value and stack, failing
// the one cell while the rest of the pool keeps running.
func safeRun(c Cell, cx *Ctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v\n%s", ErrCellPanic, r, debug.Stack())
		}
	}()
	return c.Run(cx)
}

// Run executes the cells on the bounded pool and, after all of them
// finish, replays their effects in cell order: output buffers are
// concatenated into w (nil w discards output — the Map pattern, where
// cells communicate through their closure), per-cell tracers fold into
// the capture tracer, and the first error in cell order is returned.
//
// Cancellation is cooperative at cell granularity: once ctx is canceled,
// cells that have not yet started are skipped and fail with ctx.Err();
// cells already executing observe the same context through Ctx.Context.
// Skipped cells are excluded from the Serial estimate and the per-cell
// histogram, so stats describe only work actually performed. A nil ctx
// is treated as context.Background().
func Run(ctx context.Context, w io.Writer, cells []Cell) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	nJobs := Jobs()
	capTracer := Capture()
	prog := newProgTracker(Progress(), len(cells), nJobs)
	ctxs := make([]*Ctx, len(cells))
	errs := make([]error, len(cells))
	durs := make([]time.Duration, len(cells))
	ran := make([]bool, len(cells))
	// The pool's wall-clock stats feed the -v speedup report only; every
	// experiment result stays a function of the seed and virtual clocks.
	start := time.Now() //hetlint:allow detnondet pool wall-clock stats are reported, never part of results
	prog.runStart()
	sem := make(chan struct{}, nJobs)
	var wg sync.WaitGroup
	for i := range cells {
		cx := &Ctx{Index: i, Out: &bytes.Buffer{}, ctx: ctx}
		if capTracer != nil {
			cx.tracer = trace.New()
		}
		ctxs[i] = cx
		wg.Add(1)
		go func(i int, cx *Ctx) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			prog.cellStart(i, cells[i].Label)
			if err := ctx.Err(); err != nil {
				// Canceled before this cell started: fail it without
				// invoking it, but still emit the progress event so the
				// sink's tallies stay balanced.
				errs[i] = err
				prog.cellDone(i, cells[i].Label, 0, err)
				return
			}
			ran[i] = true
			t0 := time.Now() //hetlint:allow detnondet per-cell wall time feeds the serial-estimate stat only
			errs[i] = safeRun(cells[i], cx)
			durs[i] = time.Since(t0) //hetlint:allow detnondet per-cell wall time feeds the serial-estimate stat only
			prog.cellDone(i, cells[i].Label, durs[i], errs[i])
		}(i, cx)
	}
	wg.Wait()
	prog.runDone()
	stats := Stats{Cells: len(cells), Jobs: nJobs, Wall: time.Since(start)} //hetlint:allow detnondet pool wall-clock stats are reported, never part of results
	for i, d := range durs {
		if !ran[i] {
			continue
		}
		stats.Serial += d
		stats.CellNs.Observe(float64(d))
		if errors.Is(errs[i], ErrCellPanic) {
			stats.Panics++
		}
	}
	addTotal(stats)

	// Replay effects in cell order. Every executed cell's tracer folds
	// into the capture — failed cells included, whose partial spans and
	// counters are exactly what a postmortem needs — while output is
	// written only for the error-free prefix, so w never observes bytes
	// from after a failure point. The first error in cell order wins.
	var firstErr error
	for i, cx := range ctxs {
		if capTracer != nil && ran[i] {
			capTracer.Fold(cx.tracer)
		}
		if firstErr != nil {
			continue
		}
		if errs[i] != nil {
			firstErr = fmt.Errorf("runner: cell %d (%s): %w", i, cells[i].Label, errs[i])
			continue
		}
		if w != nil {
			if _, err := w.Write(cx.Out.Bytes()); err != nil {
				firstErr = err
			}
		}
	}
	return stats, firstErr
}

// Map runs f over indices 0..n-1 as pool cells and returns the results
// in index order — the shape of every Data-style sweep, where cells
// compute values instead of rendering text. The closures themselves are
// infallible, but the run can still fail by cancellation or panic, in
// which case Map returns a nil slice and the pool's first error.
func Map[T any](ctx context.Context, label string, n int, f func(cx *Ctx, i int) T) ([]T, error) {
	out := make([]T, n)
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell{
			Label: fmt.Sprintf("%s[%d]", label, i),
			Run: func(cx *Ctx) error {
				out[i] = f(cx, i)
				return nil
			},
		}
	}
	if _, err := Run(ctx, nil, cells); err != nil {
		return nil, err
	}
	return out, nil
}
