package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// kernelCost is a minimal valid launch cost for tracer-plumbing tests.
func kernelCost(items int) timing.KernelCost {
	return timing.KernelCost{
		Items: items, SPFlops: 4, LoadBytes: 16, StoreBytes: 8,
		Instrs: 10, MissRate: 0.2, Coalesce: 1,
	}
}

// withJobs pins the worker bound for one test and restores it after.
func withJobs(t *testing.T, n int) {
	t.Helper()
	old := Jobs()
	SetJobs(n)
	t.Cleanup(func() { SetJobs(old) })
}

// Output must be concatenated in cell order no matter how the pool
// schedules the cells; the later cells finish first here by construction.
func TestRunMergesInCellOrder(t *testing.T) {
	withJobs(t, 8)
	const n = 16
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell{Label: fmt.Sprintf("cell-%d", i), Run: func(cx *Ctx) error {
			// Early cells sleep longest, so completion order is reversed.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			fmt.Fprintf(cx.Out, "cell %02d\n", i)
			return nil
		}}
	}
	var buf bytes.Buffer
	stats, err := Run(context.Background(), &buf, cells)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&want, "cell %02d\n", i)
	}
	if buf.String() != want.String() {
		t.Errorf("merged output out of cell order:\n%s", buf.String())
	}
	if stats.Cells != n || stats.Jobs != 8 {
		t.Errorf("stats = %+v, want %d cells on 8 workers", stats, n)
	}
	if stats.Serial < stats.Wall {
		t.Errorf("serial estimate %v below wall %v", stats.Serial, stats.Wall)
	}
}

// The pool must never run more than the configured number of cells at
// once.
func TestRunBoundsConcurrency(t *testing.T) {
	withJobs(t, 3)
	var active, peak atomic.Int64
	cells := make([]Cell, 24)
	for i := range cells {
		cells[i] = Cell{Run: func(cx *Ctx) error {
			cur := active.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			active.Add(-1)
			return nil
		}}
	}
	if _, err := Run(context.Background(), nil, cells); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent cells, want at most 3", p)
	}
}

// The first error in cell order wins, even when a later-indexed cell
// fails first in wall time.
func TestRunFirstErrorInCellOrder(t *testing.T) {
	withJobs(t, 4)
	errA, errB := errors.New("cell 1 failed"), errors.New("cell 3 failed")
	cells := []Cell{
		{Label: "ok", Run: func(cx *Ctx) error { return nil }},
		{Label: "slow-fail", Run: func(cx *Ctx) error { time.Sleep(5 * time.Millisecond); return errA }},
		{Label: "ok", Run: func(cx *Ctx) error { return nil }},
		{Label: "fast-fail", Run: func(cx *Ctx) error { return errB }},
	}
	_, err := Run(context.Background(), nil, cells)
	if !errors.Is(err, errA) {
		t.Fatalf("Run error = %v, want the cell-order-first %v", err, errA)
	}
	if !strings.Contains(err.Error(), "slow-fail") {
		t.Errorf("error %q does not name the failing cell", err)
	}
}

// Regression for the error-path accounting bug: a failing cell's tracer
// must still fold into the capture (its partial spans and counters are
// the postmortem), and the cell still counts in Stats. The old merge
// loop returned at the first error, dropping the failing cell's tracer
// and every later cell's.
func TestRunErrorCellStillFoldsTracerAndCounts(t *testing.T) {
	withJobs(t, 2)
	cap := trace.New()
	SetCapture(cap)
	defer SetCapture(nil)
	boom := errors.New("boom")
	cells := []Cell{
		{Label: "ok", Run: func(cx *Ctx) error {
			m := cx.Machine(sim.NewDGPU)
			m.LaunchKernel(sim.OnAccelerator, "k-ok", kernelCost(1000))
			return nil
		}},
		{Label: "fails-after-launch", Run: func(cx *Ctx) error {
			m := cx.Machine(sim.NewDGPU)
			m.LaunchKernel(sim.OnAccelerator, "k-fail", kernelCost(2000))
			return boom
		}},
		{Label: "ok-after-failure", Run: func(cx *Ctx) error {
			m := cx.Machine(sim.NewDGPU)
			m.LaunchKernel(sim.OnAccelerator, "k-late", kernelCost(3000))
			return nil
		}},
	}
	stats, err := Run(context.Background(), nil, cells)
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if stats.Cells != 3 || stats.CellNs.Count() != 3 {
		t.Errorf("stats = %+v, want all 3 cells counted (CellNs n=%d)", stats, stats.CellNs.Count())
	}
	var names []string
	for _, sp := range cap.Spans() {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"k-ok", "k-fail", "k-late"} {
		if !strings.Contains(joined, want) {
			t.Errorf("capture is missing spans from %q; folded spans: %v", want, names)
		}
	}
}

// Canceling the run context skips cells that have not started: they fail
// with ctx.Err(), are excluded from the serial estimate, and the first
// error in cell order reports the cancellation.
func TestRunCancellationSkipsPendingCells(t *testing.T) {
	withJobs(t, 1) // serialize so cancellation lands between cells
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	cells := make([]Cell, 8)
	for i := range cells {
		cells[i] = Cell{Label: fmt.Sprintf("cell-%d", i), Run: func(cx *Ctx) error {
			if started.Add(1) == 2 {
				cancel() // cancel while cell 1 is in flight
			}
			return nil
		}}
	}
	stats, err := Run(ctx, nil, cells)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 8 {
		t.Errorf("all %d cells ran despite cancellation", n)
	}
	if stats.CellNs.Count() != uint64(started.Load()) {
		t.Errorf("CellNs counted %d cells, want only the %d that ran",
			stats.CellNs.Count(), started.Load())
	}
	if stats.Cells != 8 {
		t.Errorf("stats.Cells = %d, want 8 (scheduled count)", stats.Cells)
	}
}

// Cells observe the run context through Ctx.Context, so in-flight work
// can return early on cancellation; nil receivers and plain Ctx values
// degrade to a background context.
func TestCtxContextPlumbing(t *testing.T) {
	withJobs(t, 1)
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	var got any
	cells := []Cell{{Run: func(cx *Ctx) error {
		got = cx.Context().Value(key{})
		return nil
	}}}
	if _, err := Run(ctx, nil, cells); err != nil {
		t.Fatal(err)
	}
	if got != "v" {
		t.Errorf("cell saw context value %v, want v", got)
	}
	var nilCx *Ctx
	if nilCx.Context() == nil || (&Ctx{}).Context() == nil {
		t.Error("nil/zero Ctx.Context() must degrade to a background context, not nil")
	}
}

// A panicking cell fails with ErrCellPanic, marks the run degraded via
// Stats.Panics, and leaves every other cell's result intact — the pool
// survives its worst cell.
func TestRunPanicRecovery(t *testing.T) {
	withJobs(t, 4)
	var ok atomic.Int64
	cells := make([]Cell, 6)
	for i := range cells {
		i := i
		cells[i] = Cell{Label: fmt.Sprintf("cell-%d", i), Run: func(cx *Ctx) error {
			if i == 2 {
				panic("injected cell panic")
			}
			ok.Add(1)
			return nil
		}}
	}
	stats, err := Run(context.Background(), nil, cells)
	if !errors.Is(err, ErrCellPanic) {
		t.Fatalf("Run error = %v, want ErrCellPanic", err)
	}
	if !strings.Contains(err.Error(), "injected cell panic") {
		t.Errorf("error %q does not carry the panic value", err)
	}
	if stats.Panics != 1 {
		t.Errorf("stats.Panics = %d, want 1", stats.Panics)
	}
	if got := ok.Load(); got != 5 {
		t.Errorf("%d healthy cells completed, want 5 — the panic must not kill the pool", got)
	}
	if !strings.Contains(stats.String(), "1 PANICKED") {
		t.Errorf("Stats.String() = %q does not flag the degraded run", stats.String())
	}
}

// Map returns results in index order.
func TestMapOrdersResults(t *testing.T) {
	withJobs(t, 8)
	got, err := Map(context.Background(), "square", 20, func(cx *Ctx, i int) int {
		time.Sleep(time.Duration(20-i) * time.Millisecond)
		return i * i
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// Map surfaces pool failures (a canceled context) instead of panicking.
func TestMapReturnsPoolError(t *testing.T) {
	withJobs(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := Map(ctx, "canceled", 4, func(cx *Ctx, i int) int { return i })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map error = %v, want context.Canceled", err)
	}
	if got != nil {
		t.Errorf("Map returned results %v alongside an error", got)
	}
}

// With a capture installed, machines built through the Ctx trace into
// per-cell tracers that fold into the capture in cell order — so the
// merged span set is identical at any worker count.
func TestCaptureFoldsDeterministically(t *testing.T) {
	// histSummary renders the merged histograms bit-for-bit (quantiles,
	// sums, counts) so any worker-count-dependent fold order shows up.
	histSummary := func(reg *trace.Registry) string {
		var b strings.Builder
		for _, name := range reg.HistNames() {
			h := reg.Hist(name)
			fmt.Fprintf(&b, "%s: n=%d sum=%b min=%b max=%b q50=%b q95=%b q99=%b\n",
				name, h.Count(), h.Sum(), h.Min(), h.Max(),
				h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
		return b.String()
	}
	render := func(jobs int) ([]trace.Span, []string, map[string]float64, string) {
		withJobs(t, jobs)
		cap := trace.New()
		SetCapture(cap)
		defer SetCapture(nil)
		cells := make([]Cell, 6)
		for i := range cells {
			i := i
			cells[i] = Cell{Run: func(cx *Ctx) error {
				m := cx.Machine(sim.NewDGPU)
				m.LaunchKernel(sim.OnAccelerator, fmt.Sprintf("k%d", i), kernelCost(1000*(i+1)))
				return nil
			}}
		}
		if _, err := Run(context.Background(), nil, cells); err != nil {
			t.Fatal(err)
		}
		return cap.Spans(), cap.Processes(), cap.Metrics().Snapshot(), histSummary(cap.Metrics())
	}
	spans1, procs1, ctrs1, hists1 := render(1)
	spans8, procs8, ctrs8, hists8 := render(8)
	if len(spans1) != len(spans8) {
		t.Fatalf("span count differs: %d serial vs %d parallel", len(spans1), len(spans8))
	}
	for i := range spans1 {
		if spans1[i] != spans8[i] {
			t.Fatalf("span %d differs:\nserial:   %+v\nparallel: %+v", i, spans1[i], spans8[i])
		}
	}
	if fmt.Sprint(procs1) != fmt.Sprint(procs8) {
		t.Errorf("process lists differ: %v vs %v", procs1, procs8)
	}
	if len(ctrs1) == 0 || fmt.Sprint(ctrs1) != fmt.Sprint(ctrs8) {
		t.Errorf("counter registries differ: %v vs %v", ctrs1, ctrs8)
	}
	if hists1 == "" || hists1 != hists8 {
		t.Errorf("merged histograms differ across worker counts:\nserial:\n%sparallel:\n%s", hists1, hists8)
	}
}

// Without a capture, Ctx.Machine is plain construction, and a nil Ctx
// (direct Data calls from tests) is tolerated.
func TestMachineWithoutCapture(t *testing.T) {
	cx := &Ctx{Out: &bytes.Buffer{}}
	if m := cx.Machine(sim.NewAPU); m.Tracer() != nil {
		t.Error("machine picked up a tracer with no capture installed")
	}
	var nilCx *Ctx
	if m := nilCx.Machine(sim.NewDGPU); m == nil || m.Tracer() != nil {
		t.Error("nil Ctx did not degenerate to plain construction")
	}
}

func TestSetJobsDefaultAndStats(t *testing.T) {
	withJobs(t, 5)
	if Jobs() != 5 {
		t.Fatalf("Jobs() = %d after SetJobs(5)", Jobs())
	}
	SetJobs(0)
	if Jobs() != DefaultJobs() {
		t.Errorf("SetJobs(0) did not restore the default %d", DefaultJobs())
	}

	s := Stats{Cells: 4, Jobs: 2, Wall: 50 * time.Millisecond, Serial: 100 * time.Millisecond}
	if got := s.Speedup(); got != 2 {
		t.Errorf("Speedup = %g, want 2", got)
	}
	if !strings.Contains(s.String(), "4 cells") {
		t.Errorf("Stats.String() = %q", s.String())
	}

	ResetStats()
	withJobs(t, 2)
	Run(context.Background(), nil, []Cell{{Run: func(cx *Ctx) error { return nil }}})
	Run(context.Background(), nil, []Cell{{Run: func(cx *Ctx) error { return nil }}})
	if tot := TotalStats(); tot.Cells != 2 {
		t.Errorf("TotalStats().Cells = %d after two 1-cell runs", tot.Cells)
	}
}

// CellQuantile on the empty distribution is zero for every q; with a
// single cell, every quantile collapses to that cell's duration.
func TestCellQuantileEmptyAndSingle(t *testing.T) {
	var empty Stats
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if d := empty.CellQuantile(q); d != 0 {
			t.Errorf("empty Stats.CellQuantile(%g) = %v, want 0", q, d)
		}
	}

	var single Stats
	single.CellNs.Observe(float64(7 * time.Millisecond))
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if d := single.CellQuantile(q); d != 7*time.Millisecond {
			t.Errorf("single-cell CellQuantile(%g) = %v, want 7ms", q, d)
		}
	}
}
