package runner

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// kernelCost is a minimal valid launch cost for tracer-plumbing tests.
func kernelCost(items int) timing.KernelCost {
	return timing.KernelCost{
		Items: items, SPFlops: 4, LoadBytes: 16, StoreBytes: 8,
		Instrs: 10, MissRate: 0.2, Coalesce: 1,
	}
}

// withJobs pins the worker bound for one test and restores it after.
func withJobs(t *testing.T, n int) {
	t.Helper()
	old := Jobs()
	SetJobs(n)
	t.Cleanup(func() { SetJobs(old) })
}

// Output must be concatenated in cell order no matter how the pool
// schedules the cells; the later cells finish first here by construction.
func TestRunMergesInCellOrder(t *testing.T) {
	withJobs(t, 8)
	const n = 16
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell{Label: fmt.Sprintf("cell-%d", i), Run: func(cx *Ctx) error {
			// Early cells sleep longest, so completion order is reversed.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			fmt.Fprintf(cx.Out, "cell %02d\n", i)
			return nil
		}}
	}
	var buf bytes.Buffer
	stats, err := Run(&buf, cells)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&want, "cell %02d\n", i)
	}
	if buf.String() != want.String() {
		t.Errorf("merged output out of cell order:\n%s", buf.String())
	}
	if stats.Cells != n || stats.Jobs != 8 {
		t.Errorf("stats = %+v, want %d cells on 8 workers", stats, n)
	}
	if stats.Serial < stats.Wall {
		t.Errorf("serial estimate %v below wall %v", stats.Serial, stats.Wall)
	}
}

// The pool must never run more than the configured number of cells at
// once.
func TestRunBoundsConcurrency(t *testing.T) {
	withJobs(t, 3)
	var active, peak atomic.Int64
	cells := make([]Cell, 24)
	for i := range cells {
		cells[i] = Cell{Run: func(cx *Ctx) error {
			cur := active.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			active.Add(-1)
			return nil
		}}
	}
	if _, err := Run(nil, cells); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent cells, want at most 3", p)
	}
}

// The first error in cell order wins, even when a later-indexed cell
// fails first in wall time.
func TestRunFirstErrorInCellOrder(t *testing.T) {
	withJobs(t, 4)
	errA, errB := errors.New("cell 1 failed"), errors.New("cell 3 failed")
	cells := []Cell{
		{Label: "ok", Run: func(cx *Ctx) error { return nil }},
		{Label: "slow-fail", Run: func(cx *Ctx) error { time.Sleep(5 * time.Millisecond); return errA }},
		{Label: "ok", Run: func(cx *Ctx) error { return nil }},
		{Label: "fast-fail", Run: func(cx *Ctx) error { return errB }},
	}
	_, err := Run(nil, cells)
	if !errors.Is(err, errA) {
		t.Fatalf("Run error = %v, want the cell-order-first %v", err, errA)
	}
	if !strings.Contains(err.Error(), "slow-fail") {
		t.Errorf("error %q does not name the failing cell", err)
	}
}

// Map returns results in index order.
func TestMapOrdersResults(t *testing.T) {
	withJobs(t, 8)
	got := Map("square", 20, func(cx *Ctx, i int) int {
		time.Sleep(time.Duration(20-i) * time.Millisecond)
		return i * i
	})
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// With a capture installed, machines built through the Ctx trace into
// per-cell tracers that fold into the capture in cell order — so the
// merged span set is identical at any worker count.
func TestCaptureFoldsDeterministically(t *testing.T) {
	// histSummary renders the merged histograms bit-for-bit (quantiles,
	// sums, counts) so any worker-count-dependent fold order shows up.
	histSummary := func(reg *trace.Registry) string {
		var b strings.Builder
		for _, name := range reg.HistNames() {
			h := reg.Hist(name)
			fmt.Fprintf(&b, "%s: n=%d sum=%b min=%b max=%b q50=%b q95=%b q99=%b\n",
				name, h.Count(), h.Sum(), h.Min(), h.Max(),
				h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
		return b.String()
	}
	render := func(jobs int) ([]trace.Span, []string, map[string]float64, string) {
		withJobs(t, jobs)
		cap := trace.New()
		SetCapture(cap)
		defer SetCapture(nil)
		cells := make([]Cell, 6)
		for i := range cells {
			i := i
			cells[i] = Cell{Run: func(cx *Ctx) error {
				m := cx.Machine(sim.NewDGPU)
				m.LaunchKernel(sim.OnAccelerator, fmt.Sprintf("k%d", i), kernelCost(1000*(i+1)))
				return nil
			}}
		}
		if _, err := Run(nil, cells); err != nil {
			t.Fatal(err)
		}
		return cap.Spans(), cap.Processes(), cap.Metrics().Snapshot(), histSummary(cap.Metrics())
	}
	spans1, procs1, ctrs1, hists1 := render(1)
	spans8, procs8, ctrs8, hists8 := render(8)
	if len(spans1) != len(spans8) {
		t.Fatalf("span count differs: %d serial vs %d parallel", len(spans1), len(spans8))
	}
	for i := range spans1 {
		if spans1[i] != spans8[i] {
			t.Fatalf("span %d differs:\nserial:   %+v\nparallel: %+v", i, spans1[i], spans8[i])
		}
	}
	if fmt.Sprint(procs1) != fmt.Sprint(procs8) {
		t.Errorf("process lists differ: %v vs %v", procs1, procs8)
	}
	if len(ctrs1) == 0 || fmt.Sprint(ctrs1) != fmt.Sprint(ctrs8) {
		t.Errorf("counter registries differ: %v vs %v", ctrs1, ctrs8)
	}
	if hists1 == "" || hists1 != hists8 {
		t.Errorf("merged histograms differ across worker counts:\nserial:\n%sparallel:\n%s", hists1, hists8)
	}
}

// Without a capture, Ctx.Machine is plain construction, and a nil Ctx
// (direct Data calls from tests) is tolerated.
func TestMachineWithoutCapture(t *testing.T) {
	cx := &Ctx{Out: &bytes.Buffer{}}
	if m := cx.Machine(sim.NewAPU); m.Tracer() != nil {
		t.Error("machine picked up a tracer with no capture installed")
	}
	var nilCx *Ctx
	if m := nilCx.Machine(sim.NewDGPU); m == nil || m.Tracer() != nil {
		t.Error("nil Ctx did not degenerate to plain construction")
	}
}

func TestSetJobsDefaultAndStats(t *testing.T) {
	withJobs(t, 5)
	if Jobs() != 5 {
		t.Fatalf("Jobs() = %d after SetJobs(5)", Jobs())
	}
	SetJobs(0)
	if Jobs() != DefaultJobs() {
		t.Errorf("SetJobs(0) did not restore the default %d", DefaultJobs())
	}

	s := Stats{Cells: 4, Jobs: 2, Wall: 50 * time.Millisecond, Serial: 100 * time.Millisecond}
	if got := s.Speedup(); got != 2 {
		t.Errorf("Speedup = %g, want 2", got)
	}
	if !strings.Contains(s.String(), "4 cells") {
		t.Errorf("Stats.String() = %q", s.String())
	}

	ResetStats()
	withJobs(t, 2)
	Run(nil, []Cell{{Run: func(cx *Ctx) error { return nil }}})
	Run(nil, []Cell{{Run: func(cx *Ctx) error { return nil }}})
	if tot := TotalStats(); tot.Cells != 2 {
		t.Errorf("TotalStats().Cells = %d after two 1-cell runs", tot.Cells)
	}
}
