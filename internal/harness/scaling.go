package harness

import (
	"context"
	"fmt"
	"io"

	"hetbench/internal/apps/lulesh"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/mpix"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// scalingRankCounts are the cluster sizes the extension sweeps.
var scalingRankCounts = []int{1, 2, 4, 8, 16, 32}

// ScalingData strong-scales LULESH across a simulated InfiniBand cluster
// of discrete-GPU nodes — the MPI half of the paper's MPI+X stack
// (extension beyond the paper's single-node evaluation).
func ScalingData(ctx context.Context, scale Scale) ([]lulesh.MPIXResult, error) {
	cfg := lulesh.Config{S: 32, Iters: 10, FunctionalIters: 1}
	switch scale {
	case ScaleDefault:
		cfg = lulesh.Config{S: 64, Iters: 20, FunctionalIters: 1}
	case ScalePaper:
		cfg = lulesh.Config{S: 96, Iters: 50, FunctionalIters: 1} // 96 divides all rank counts
	}
	// One runner cell per cluster size: each rank-count measurement builds
	// its own problem and machines, so the sweep scales with host cores.
	return runner.Map(ctx, "scaling", len(scalingRankCounts), func(cx *runner.Ctx, i int) lulesh.MPIXResult {
		p := lulesh.NewProblem(cfg, timing.Double)
		mk := func() *sim.Machine { return cx.Machine(sim.NewDGPU) }
		return p.StrongScaling([]int{scalingRankCounts[i]}, mk, mpix.DefaultFabric())[0]
	})
}

// RunScaling renders the strong-scaling table.
func RunScaling(ctx context.Context, scale Scale, w io.Writer) error {
	results, err := ScalingData(ctx, scale)
	if err != nil {
		return err
	}
	sp := lulesh.Speedups(results)
	t := report.NewTable("LULESH MPI+OpenCL strong scaling (slab decomposition, FDR-class fabric)",
		"Ranks", "Time/run ms", "Speedup", "Efficiency", "Comm share")
	for i, r := range results {
		t.AddRowf(r.Ranks,
			fmt.Sprintf("%.3f", r.ElapsedNs/1e6),
			fmt.Sprintf("%.2f", sp[i]),
			fmt.Sprintf("%.2f", r.Efficiency(results[0])),
			fmt.Sprintf("%.1f%%", r.CommFraction()*100))
	}
	_, err = t.WriteTo(w)
	return err
}
