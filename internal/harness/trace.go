package harness

import (
	"context"
	"fmt"
	"io"
	"sort"

	"hetbench/internal/apps/appcore"
	"hetbench/internal/harness/runner"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/report"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// ModelTrace is one model's fully-traced LULESH run on the dGPU.
type ModelTrace struct {
	Model  modelapi.Name
	Result appcore.Result
	Tracer *trace.Tracer
}

// modelTrace runs LULESH under one GPU model on the dGPU with a fresh
// dedicated tracer, the unit of both TraceData and the trace experiment's
// runner cells.
func modelTrace(scale Scale, model modelapi.Name) ModelTrace {
	w := newWorkloads(scale, timing.Double)
	m := sim.NewDGPU()
	t := trace.New()
	m.SetTracer(t)
	res := w.Lulesh().Run(m, model)
	return ModelTrace{Model: model, Result: res, Tracer: t}
}

// TraceData runs LULESH under each GPU model on the dGPU with a fresh
// tracer per model, so the three span sets can be compared side by side.
func TraceData(ctx context.Context, scale Scale) ([]ModelTrace, error) {
	models := modelapi.All()
	return runner.Map(ctx, "trace", len(models), func(cx *runner.Ctx, i int) ModelTrace {
		return modelTrace(scale, models[i])
	})
}

// lastIteration returns the last completed iteration span, the timeline's
// representative steady-state window (the leading functional iterations
// pay one-time staging; the replayed tail is what the paper measures).
func lastIteration(spans []trace.Span) (trace.Span, bool) {
	var best trace.Span
	found := false
	for _, s := range spans {
		if s.Kind != trace.KindIteration {
			continue
		}
		if !found || s.StartNs > best.StartNs {
			best = s
			found = true
		}
	}
	return best, found
}

// timelineBars are the spans rendered per iteration window; beyond this
// the ASCII chart stops being readable.
const timelineBars = 20

// iterationTimeline renders one iteration's kernel/transfer spans as an
// ASCII Gantt chart, longest operations first when clipping.
func iterationTimeline(title string, it trace.Span, spans []trace.Span) *report.Timeline {
	var ops []trace.Span
	for _, s := range spans {
		if s.Kind != trace.KindKernel && s.Kind != trace.KindTransfer {
			continue
		}
		if s.StartNs < it.StartNs || s.StartNs >= it.EndNs() {
			continue
		}
		ops = append(ops, s)
	}
	if len(ops) > timelineBars {
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].DurNs > ops[j].DurNs })
		ops = ops[:timelineBars]
	}
	ops = trace.ByStart(ops)
	tl := report.NewTimeline(title, it.StartNs, it.EndNs())
	for _, s := range ops {
		label := s.Name
		if s.Dir != "" {
			label = fmt.Sprintf("%s (%s, %s)", s.Name, s.Dir, report.Bytes(s.Bytes))
		}
		tl.Add(s.Track, label, s.StartNs, s.DurNs)
	}
	return tl
}

// RunTrace is the trace experiment: LULESH under all three GPU models on
// the R9 280X, each rendered as a representative-iteration timeline plus
// aggregate kernel/transfer tables and the run's counter registry. The
// C++ AMP timeline shows the CPU-fallback kernel and the per-iteration
// view round trips it induces dominating the step.
func RunTrace(ctx context.Context, scale Scale, w io.Writer) error {
	models := modelapi.All()
	cells := make([]runner.Cell, len(models))
	for i, model := range models {
		model := model
		cells[i] = runner.Cell{Label: "trace/" + string(model), Run: func(cx *runner.Ctx) error {
			mt := modelTrace(scale, model)
			out := cx.Out
			spans := mt.Tracer.Spans()
			fmt.Fprintf(out, "--- LULESH on the R9 280X under %s: %.3f ms elapsed (kernel %.3f ms, transfer %.3f ms) ---\n\n",
				mt.Model, mt.Result.ElapsedNs/1e6, mt.Result.KernelNs/1e6, mt.Result.TransferNs/1e6)

			if it, ok := lastIteration(spans); ok {
				tl := iterationTimeline(
					fmt.Sprintf("%s — iteration %q (top %d operations)", mt.Model, it.Name, timelineBars),
					it, spans)
				if _, err := tl.WriteTo(out); err != nil {
					return err
				}
				fmt.Fprintln(out)
			}

			kernels := trace.Aggregate(spans, trace.KindKernel)
			if err := aggTable(out, fmt.Sprintf("%s — kernels by total time", mt.Model), kernels, 8); err != nil {
				return err
			}
			if transfers := trace.Aggregate(spans, trace.KindTransfer); len(transfers) > 0 {
				if err := aggTable(out, fmt.Sprintf("%s — transfers by total time", mt.Model), transfers, 5); err != nil {
					return err
				}
			}

			if err := counterTable(out, fmt.Sprintf("%s — run counters", mt.Model), mt.Tracer.Metrics()); err != nil {
				return err
			}
			if err := histTable(out, fmt.Sprintf("%s — latency distributions", mt.Model), mt.Tracer.Metrics()); err != nil {
				return err
			}
			fmt.Fprintln(out)
			return nil
		}}
	}
	_, err := runner.Run(ctx, w, cells)
	return err
}

func aggTable(w io.Writer, title string, aggs []trace.Agg, limit int) error {
	total := trace.TotalNs(aggs)
	t := report.NewTable(title, "Name", "Calls", "Total ms", "Share", "Bytes", "Bound")
	if len(aggs) < limit {
		limit = len(aggs)
	}
	for _, a := range aggs[:limit] {
		share := 0.0
		if total > 0 {
			share = a.TotalNs / total
		}
		t.AddRowf(a.Name, a.Calls,
			fmt.Sprintf("%.3f", a.TotalNs/1e6),
			fmt.Sprintf("%.1f%%", share*100),
			report.Bytes(a.Bytes), a.Bound)
	}
	_, err := t.WriteTo(w)
	return err
}

// counterRows picks the registry counters worth a table row, in
// presentation order.
var counterRows = []struct{ name, label, unit string }{
	{trace.CtrKernelLaunches, "kernel launches", ""},
	{trace.CtrKernelNs, "kernel time", "ms"},
	{trace.CtrTransferCount, "transfers", ""},
	{trace.CtrTransferNs, "transfer time", "ms"},
	{trace.CtrBytesH2D, "bytes h2d", "B"},
	{trace.CtrBytesD2H, "bytes d2h", "B"},
	{trace.CtrDRAMBytes, "DRAM traffic", "B"},
	{trace.CtrLDSBytes, "LDS traffic", "B"},
	{trace.CtrEnergyJ, "energy", "J"},
	// Resilience counters: zero (and therefore hidden) unless the run
	// executed under fault injection.
	{trace.CtrFaultNs, "fault time", "ms"},
	{trace.CtrRetries, "retries", ""},
	{trace.CtrBackoffNs, "backoff time", "ms"},
	{trace.CtrWatchdogKills, "watchdog kills", ""},
	{trace.CtrFallbacks, "host fallbacks", ""},
	{trace.CtrRetransmits, "retransmits", ""},
	{trace.CtrSDCRedos, "SDC redos", ""},
}

// histLabels maps the registry's histogram names to table labels, in
// presentation order. Unknown names render under their raw name after
// these.
var histLabels = []struct{ name, label string }{
	{trace.HistKernelNs, "kernel latency"},
	{trace.HistTransferNs, "transfer latency"},
	{trace.HistChunkNs, "chunk service time"},
	{trace.HistFaultNs, "fault recovery"},
}

// histTable renders the registry's latency histograms as quantile rows.
// The quantiles are pure functions of merged bucket counts over
// virtual-clock durations, so the table is deterministic at any worker
// count.
func histTable(w io.Writer, title string, reg *trace.Registry) error {
	names := reg.HistNames()
	if len(names) == 0 {
		return nil
	}
	label := make(map[string]string, len(histLabels))
	order := make(map[string]int, len(histLabels))
	for i, h := range histLabels {
		label[h.name] = h.label
		order[h.name] = i
	}
	sort.SliceStable(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return names[i] < names[j]
	})
	t := report.NewTable(title, "Distribution", "Count", "p50 ms", "p95 ms", "p99 ms", "Max ms")
	for _, name := range names {
		h := reg.Hist(name)
		if h == nil || h.Count() == 0 {
			continue
		}
		lbl := label[name]
		if lbl == "" {
			lbl = name
		}
		t.AddRowf(lbl, h.Count(),
			fmt.Sprintf("%.3f", h.Quantile(0.50)/1e6),
			fmt.Sprintf("%.3f", h.Quantile(0.95)/1e6),
			fmt.Sprintf("%.3f", h.Quantile(0.99)/1e6),
			fmt.Sprintf("%.3f", h.Max()/1e6))
	}
	_, err := t.WriteTo(w)
	return err
}

func counterTable(w io.Writer, title string, reg *trace.Registry) error {
	t := report.NewTable(title, "Counter", "Value")
	for _, c := range counterRows {
		v := reg.Get(c.name)
		if v == 0 {
			continue
		}
		var val string
		switch c.unit {
		case "ms":
			val = fmt.Sprintf("%.3f ms", v/1e6)
		case "B":
			val = report.Bytes(int64(v))
		case "J":
			val = fmt.Sprintf("%.4f J", v)
		default:
			val = fmt.Sprintf("%.0f", v)
		}
		t.AddRowf(c.label, val)
	}
	_, err := t.WriteTo(w)
	return err
}
