package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// The counter registry must agree with the Machine's legacy accumulators
// across a Figure 8-style sweep (every app × GPU model on the APU at
// small scale): the two are independent tallies of the same virtual clock.
func TestRegistryMatchesMachineCounters(t *testing.T) {
	w := newWorkloads(ScaleSmall, timing.Double)
	for _, r := range w.runners() {
		for _, model := range modelapi.All() {
			m := sim.NewAPU()
			tr := trace.New()
			m.SetTracer(tr)
			r.run(m, model)

			reg := tr.Metrics()
			if got, want := reg.Get(trace.CtrKernelNs), m.KernelNs(); !approxEq(got, want) {
				t.Errorf("%s/%s: kernel.ns = %g, machine says %g", r.name, model, got, want)
			}
			if got, want := reg.Get(trace.CtrTransferNs), m.TransferNs(); !approxEq(got, want) {
				t.Errorf("%s/%s: transfer.ns = %g, machine says %g", r.name, model, got, want)
			}
			if m.KernelNs() > 0 && reg.Get(trace.CtrKernelLaunches) == 0 {
				t.Errorf("%s/%s: kernel time with no recorded launches", r.name, model)
			}
		}
	}
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// The trace experiment must surface the AMP CPU-fallback kernel and its
// induced PCIe round trips in the rendered timelines.
func TestRunTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTrace(bg, ScaleSmall, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"OpenCL", "C++ AMP", "OpenACC", // all three models rendered
		"(cpu-fallback)",  // the fallback kernel is visible
		"accelerator",     // timeline tracks
		"pcie",            //
		"run counters",    // registry table
		"kernel launches", //
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
}

// TraceData gives each model its own tracer with a full span hierarchy:
// run → iteration → kernel/transfer.
func TestTraceData(t *testing.T) {
	data := must(TraceData(bg, ScaleSmall))
	if len(data) != len(modelapi.All()) {
		t.Fatalf("TraceData returned %d models", len(data))
	}
	for _, mt := range data {
		spans := mt.Tracer.Spans()
		kinds := map[trace.Kind]int{}
		for _, s := range spans {
			kinds[s.Kind]++
		}
		if kinds[trace.KindRun] != 1 {
			t.Errorf("%s: run spans = %d, want 1", mt.Model, kinds[trace.KindRun])
		}
		if kinds[trace.KindIteration] == 0 || kinds[trace.KindKernel] == 0 {
			t.Errorf("%s: span kinds %v lack iterations/kernels", mt.Model, kinds)
		}
		// Iteration spans must parent into the run span.
		var runID uint64
		for _, s := range spans {
			if s.Kind == trace.KindRun {
				runID = s.ID
			}
		}
		for _, s := range spans {
			if s.Kind == trace.KindIteration && s.Parent != runID {
				t.Errorf("%s: iteration %q parent = %d, want run %d", mt.Model, s.Name, s.Parent, runID)
				break
			}
		}
	}
}
