package cppamp

import (
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

func coexecBody(out []float64) func(*exec.WorkItem) {
	return func(w *exec.WorkItem) {
		out[w.Global] = float64(w.Global)
		w.Tally(exec.Counters{SPFlops: 1, LoadBytes: 8, StoreBytes: 8, Instrs: 4})
	}
}

// A streaming parallel_for_each on a WithCoexec runtime routes through the
// planner; an Irregular one stays single-device.
func TestCoexecRouting(t *testing.T) {
	m := sim.NewDGPU()
	s := sched.New(sched.Config{Policy: sched.HGuided})
	m.SetCoexec(s)
	rt := New(m).WithCoexec()
	const n = 1 << 12
	out := make([]float64, n)
	av := rt.NewArrayView("coexec.out", int64(n)*8)
	rt.ParallelForEach(spec(), NewExtent(n), []*ArrayView{av}, coexecBody(out))
	if st := s.Stats(); st.Splits != 1 || st.HostItems+st.AccelItems != n {
		t.Fatalf("streaming kernel not split: %+v", st)
	}
	for i := range out {
		if out[i] != float64(i) {
			t.Fatalf("out[%d] = %g after co-executed launch", i, out[i])
		}
	}

	irr := modelapi.KernelSpec{Name: "gather", Class: modelapi.Irregular, MissRate: 0.9, Coalesce: 0.25}
	rt.ParallelForEach(irr, NewExtent(n), []*ArrayView{av}, coexecBody(out))
	if st := s.Stats(); st.Splits != 1 {
		t.Fatalf("irregular kernel was split: %+v", st)
	}
}

// WithCoexec without a planner must be timing-identical to the default.
func TestCoexecWithoutPlannerIsIdentical(t *testing.T) {
	run := func(opt bool) float64 {
		m := sim.NewDGPU()
		rt := New(m)
		if opt {
			rt = rt.WithCoexec()
		}
		const n = 1 << 12
		out := make([]float64, n)
		av := rt.NewArrayView("coexec.out", int64(n)*8)
		rt.ParallelForEach(spec(), NewExtent(n), []*ArrayView{av}, coexecBody(out))
		return m.ElapsedNs()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("WithCoexec with no planner changed timing: %g vs %g ns", a, b)
	}
}
