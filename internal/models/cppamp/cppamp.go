// Package cppamp is the C++ AMP-like runtime: extents, tiles,
// parallel_for_each with closure capture, and array_view data management.
//
// The data-management semantics are the crux of the paper's discrete-GPU
// findings: an ArrayView copies itself to the device when a kernel captures
// it while the host copy is fresh, and — because the CLAMP-era compiler
// performs no read-only analysis — it must be assumed written, so host
// access or Synchronize copies it back. The programmer cannot suppress
// either copy (no discard_data in CLAMP v0.6), which is exactly the
// "compilers do not optimally manage the data-transfers" behaviour the
// paper measures. On the APU every copy is free (unified memory).
package cppamp

import (
	"fmt"

	"hetbench/internal/fault"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// Runtime binds the AMP model to a machine (an accelerator_view).
type Runtime struct {
	machine *sim.Machine
	profile *modelapi.Profile
	cache   map[string]exec.Counters
	corrupt fault.Corruptor
	coexec  bool
}

// New returns an AMP runtime for the machine.
func New(machine *sim.Machine) *Runtime {
	return &Runtime{
		machine: machine,
		profile: modelapi.ProfileOn(modelapi.CppAMP, machine.Unified()),
		cache:   make(map[string]exec.Counters),
	}
}

// Machine returns the bound machine.
func (r *Runtime) Machine() *sim.Machine { return r.machine }

// WithCoexec opts this runtime's streaming and regular kernels into
// CPU+accelerator co-execution whenever a planner is attached to the
// machine (sim.Machine.SetCoexec); without one, launches are unchanged.
// Irregular kernels always stay single-device.
func (r *Runtime) WithCoexec() *Runtime {
	r.coexec = true
	return r
}

// Bind registers an output array as a silent-corruption target (see
// fault.Corruptor). Apps re-bind per run.
func (r *Runtime) Bind(name string, data []float64) { r.corrupt.Bind(name, data) }

// Extent is a 1-D iteration domain (extent<1> in AMP).
type Extent struct{ Size int }

// NewExtent builds an extent of n threads.
func NewExtent(n int) Extent {
	if n <= 0 {
		panic(fmt.Sprintf("cppamp: invalid extent %d", n))
	}
	return Extent{Size: n}
}

// TiledExtent is an extent divided into tiles (extent.tile<N>()).
type TiledExtent struct {
	Extent
	Tile int
}

// TileBy divides the extent into tiles of the given size; the extent must
// be tile-divisible, as AMP requires.
func (e Extent) TileBy(tile int) TiledExtent {
	if tile <= 0 || e.Size%tile != 0 {
		panic(fmt.Sprintf("cppamp: extent %d not divisible into tiles of %d", e.Size, tile))
	}
	return TiledExtent{Extent: e, Tile: tile}
}

// ArrayView wraps host data for device use (array_view<T,1>). The tracked
// state drives transfer accounting on discrete machines.
type ArrayView struct {
	rt    *Runtime
	name  string
	bytes int64
	// where the fresh copy lives
	onDevice bool
}

// NewArrayView wraps a host allocation of the given size.
func (r *Runtime) NewArrayView(name string, bytes int64) *ArrayView {
	if bytes < 0 {
		panic(fmt.Sprintf("cppamp: negative view size %d", bytes))
	}
	return &ArrayView{rt: r, name: name, bytes: bytes}
}

// Bytes returns the wrapped allocation size.
func (v *ArrayView) Bytes() int64 { return v.bytes }

// OnDevice reports where the fresh copy currently lives.
func (v *ArrayView) OnDevice() bool { return v.onDevice }

// Synchronize brings the data back to the host (array_view::synchronize),
// paying a device-to-host transfer if the device copy is fresh.
func (v *ArrayView) Synchronize() float64 {
	if !v.onDevice {
		return 0
	}
	v.onDevice = false
	return v.rt.machine.TransferFromDevice(v.name, v.bytes)
}

// HostWrite marks the host copy as modified (CPU code wrote through the
// view), forcing the next capturing kernel to re-copy it to the device.
// It synchronizes first if the fresh copy is on the device.
func (v *ArrayView) HostWrite() float64 {
	t := v.Synchronize()
	return t
}

// stageIn copies the view to the device if the fresh copy is on the host.
func (v *ArrayView) stageIn() float64 {
	if v.onDevice {
		return 0
	}
	v.onDevice = true
	return v.rt.machine.TransferToDevice(v.name, v.bytes)
}

// ParallelForEach launches a simple kernel over the extent
// (parallel_for_each with a restrict(amp) lambda). views lists every
// ArrayView the lambda captures; each is staged to the device as needed
// and left device-fresh afterwards (conservatively assumed written).
func (r *Runtime) ParallelForEach(spec modelapi.KernelSpec, ext Extent, views []*ArrayView, body func(*exec.WorkItem)) timing.Result {
	r.stageAll(views)
	res := exec.Run(ext.Size, body)
	per := res.Counters.PerItem(ext.Size)
	r.cache[spec.Name] = per
	cost := spec.Cost(r.profile, ext.Size, per)
	return r.launchResilient(spec, ext.Size, per, cost, views)
}

// Launch runs the kernel functionally when functional is true (or when no
// cost is cached), otherwise replays the cached cost with the same view-
// staging semantics.
func (r *Runtime) Launch(spec modelapi.KernelSpec, ext Extent, views []*ArrayView, functional bool, body func(*exec.WorkItem)) timing.Result {
	per, ok := r.cache[spec.Name]
	if functional || !ok {
		return r.ParallelForEach(spec, ext, views, body)
	}
	return r.Replay(spec, ext.Size, views, per)
}

// ParallelForEachTiled launches a tiled kernel with tile_static storage of
// ldsFloats float64 words and barrier-delimited phases
// (tiled_index + tile_barrier in AMP).
func (r *Runtime) ParallelForEachTiled(spec modelapi.KernelSpec, ext TiledExtent, ldsFloats int, views []*ArrayView, phases ...exec.Phase) timing.Result {
	r.stageAll(views)
	res := exec.RunTiled(ext.Size, ext.Tile, ldsFloats, phases...)
	per := res.Counters.PerItem(ext.Size)
	cost := spec.Cost(r.profile, ext.Size, per)
	return r.launchResilient(spec, ext.Size, per, cost, views)
}

// Replay charges another launch with previously measured per-item counters
// (views are still staged, preserving transfer semantics).
func (r *Runtime) Replay(spec modelapi.KernelSpec, n int, views []*ArrayView, per exec.Counters) timing.Result {
	r.stageAll(views)
	return r.launchResilient(spec, n, per, spec.Cost(r.profile, n, per), views)
}

func (r *Runtime) stageAll(views []*ArrayView) {
	for _, v := range views {
		v.stageIn()
	}
}

// launchResilient issues one device launch under the machine's fault
// policy. AMP's recovery cost follows its conservative data management:
// after a failed launch the runtime cannot prove which captured views the
// aborted kernel dirtied, so every captured view's device copy is
// invalidated and re-staged before the retry — the whole capture set
// round-trips, not just what the kernel needed (compare the OpenCL
// runtime, which re-stages only staged argument buffers). After the retry
// budget the launch degrades to the host CPU, which under AMP semantics
// synchronizes every view back and leaves the next device kernel to pay
// the re-staging. With no injector attached this is LaunchKernel plus a
// nil check.
func (r *Runtime) launchResilient(spec modelapi.KernelSpec, n int, per exec.Counters, cost timing.KernelCost, views []*ArrayView) timing.Result {
	m := r.machine
	if r.coexec && spec.Class != modelapi.Irregular {
		hostCost := spec.Cost(modelapi.ProfileFor(modelapi.OpenMP), n, per)
		if res, ok := m.LaunchKernelSplit(spec.Name, cost, hostCost); ok {
			return res
		}
	}
	res, ev := m.LaunchKernelChecked(sim.OnAccelerator, spec.Name, cost)
	if ev == nil {
		return res
	}
	pol := m.FaultPolicy()
	for attempt := 1; ; attempt++ {
		if ev.Kind == fault.BitFlip {
			r.corrupt.Corrupt(m.FaultInjector())
			return res
		}
		if attempt >= pol.MaxAttempts {
			break
		}
		m.ChargeBackoffNs(spec.Name, pol.BackoffNs(attempt))
		// Conservative invalidation: assume every captured view was
		// dirtied by the aborted launch and re-sync it all.
		for _, v := range views {
			v.onDevice = false
		}
		r.stageAll(views)
		res, ev = m.LaunchKernelChecked(sim.OnAccelerator, spec.Name, cost)
		if ev == nil {
			return res
		}
	}
	m.NoteFallback(spec.Name)
	for _, v := range views {
		v.Synchronize()
	}
	hostCost := spec.Cost(modelapi.ProfileFor(modelapi.OpenMP), n, per)
	return m.LaunchKernel(sim.OnHost, spec.Name+"(cpu-fallback)", hostCost)
}

// HostFallback runs a kernel on the host CPU instead of the GPU — the
// paper's LULESH situation, where one of 28 kernels would not compile
// under CLAMP on the discrete GPU ("we were able to implement only 27 out
// of the 28 kernels ... one kernel was implemented on the CPU which led to
// data-transfer overhead").
//
// Every captured view must round-trip: device→host before the CPU code
// runs, then the host copies are stale-on-device so the next GPU kernel
// pays host→device again (handled by stageIn).
func (r *Runtime) HostFallback(spec modelapi.KernelSpec, n int, views []*ArrayView, body func(*exec.WorkItem)) timing.Result {
	for _, v := range views {
		v.Synchronize()
	}
	res := exec.Run(n, body)
	per := res.Counters.PerItem(n)
	r.cache["host:"+spec.Name] = per
	cost := spec.Cost(modelapi.ProfileFor(modelapi.OpenMP), n, per)
	return r.machine.LaunchKernel(sim.OnHost, spec.Name+"(cpu-fallback)", cost)
}

// LaunchHostFallback is the launch-or-replay form of HostFallback; replays
// still pay the view round-trips every call (the whole point of the
// paper's LULESH observation).
func (r *Runtime) LaunchHostFallback(spec modelapi.KernelSpec, n int, views []*ArrayView, functional bool, body func(*exec.WorkItem)) timing.Result {
	per, ok := r.cache["host:"+spec.Name]
	if functional || !ok {
		return r.HostFallback(spec, n, views, body)
	}
	for _, v := range views {
		v.Synchronize()
	}
	cost := spec.Cost(modelapi.ProfileFor(modelapi.OpenMP), n, per)
	return r.machine.LaunchKernel(sim.OnHost, spec.Name+"(cpu-fallback)", cost)
}
