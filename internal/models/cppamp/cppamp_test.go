package cppamp

import (
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

func spec() modelapi.KernelSpec {
	return modelapi.KernelSpec{Name: "pfe", Class: modelapi.Streaming, MissRate: 0.8, Coalesce: 1}
}

// Figure 6 flow: wrap data in views, parallel_for_each over an extent,
// synchronize. Views must stage in once and sync back once on the dGPU.
func TestViewSyncSemanticsOnDGPU(t *testing.T) {
	m := sim.NewDGPU()
	rt := New(m)
	const n = 1 << 12
	in := rt.NewArrayView("in", n*64*8)
	out := rt.NewArrayView("out", n*8)

	data := make([]float64, n*64)
	res := make([]float64, n)
	for i := range data {
		data[i] = 0.5
	}
	body := func(w *exec.WorkItem) {
		sum := 0.0
		for j := 0; j < 64; j++ {
			sum += data[w.Global*64+j]
		}
		res[w.Global] = sum
		w.Tally(exec.Counters{SPFlops: 64, LoadBytes: 512, StoreBytes: 8, Instrs: 130})
	}

	rt.ParallelForEach(spec(), NewExtent(n), []*ArrayView{in, out}, body)
	if !in.OnDevice() || !out.OnDevice() {
		t.Fatal("views not device-fresh after launch")
	}
	st := m.Link().Stats()
	if st.TransfersToDevice != 2 {
		t.Errorf("staged %d views, want 2", st.TransfersToDevice)
	}

	// Second launch: no re-staging (device already fresh).
	rt.ParallelForEach(spec(), NewExtent(n), []*ArrayView{in, out}, body)
	if m.Link().Stats().TransfersToDevice != 2 {
		t.Error("second launch re-staged device-fresh views")
	}

	// Synchronize copies back; both views (no read-only analysis in
	// CLAMP 0.6) must round-trip if the host touches them.
	if tns := out.Synchronize(); tns <= 0 {
		t.Error("synchronize of device-fresh view cost nothing on dGPU")
	}
	if out.OnDevice() {
		t.Error("view still device-fresh after Synchronize")
	}
	if out.Synchronize() != 0 {
		t.Error("second Synchronize not free")
	}
	if res[0] != 32 {
		t.Errorf("functional result %g, want 32", res[0])
	}

	// Host write invalidates: next launch re-stages.
	in.HostWrite()
	rt.ParallelForEach(spec(), NewExtent(n), []*ArrayView{in, out}, body)
	if m.Link().Stats().TransfersToDevice < 4 {
		t.Error("host-dirty views not re-staged")
	}
}

func TestAPUCopiesFree(t *testing.T) {
	rt := New(sim.NewAPU())
	v := rt.NewArrayView("v", 1<<20)
	rt.ParallelForEach(spec(), NewExtent(256), []*ArrayView{v}, func(w *exec.WorkItem) {
		w.Tally(exec.Counters{SPFlops: 1, Instrs: 1})
	})
	if v.Synchronize() != 0 {
		t.Error("APU synchronize cost time")
	}
	if rt.Machine().TransferNs() != 0 {
		t.Error("APU charged transfer time")
	}
}

func TestTiledParallelForEach(t *testing.T) {
	rt := New(sim.NewAPU())
	const tile, groups = 64, 8
	ext := NewExtent(tile * groups).TileBy(tile)
	out := make([]float64, tile*groups)
	r := rt.ParallelForEachTiled(
		modelapi.KernelSpec{Name: "tiled", Class: modelapi.Regular, MissRate: 0.3, Coalesce: 1},
		ext, tile, nil,
		func(g *exec.Group, l int) {
			g.LDS[l] = 1
			g.Tally(exec.Counters{LDSBytes: 8, Instrs: 1})
		},
		func(g *exec.Group, l int) {
			s := 0.0
			for i := 0; i < g.Size; i++ {
				s += g.LDS[i]
			}
			out[g.GlobalID(l)] = s
			g.Tally(exec.Counters{SPFlops: tile, LDSBytes: 8 * tile, StoreBytes: 8, Instrs: tile})
		},
	)
	for i, v := range out {
		if v != tile {
			t.Fatalf("out[%d] = %g, want %d (barrier broken)", i, v, tile)
		}
	}
	if r.TimeNs <= 0 {
		t.Error("no time charged")
	}
}

// The LULESH compiler-bug path: a host-fallback kernel forces all captured
// views to round-trip every iteration on the dGPU.
func TestHostFallbackForcesRoundTrips(t *testing.T) {
	m := sim.NewDGPU()
	rt := New(m)
	v := rt.NewArrayView("forces", 8<<20)

	gpu := func(w *exec.WorkItem) { w.Tally(exec.Counters{SPFlops: 10, Instrs: 10}) }
	cpu := func(w *exec.WorkItem) { w.Tally(exec.Counters{SPFlops: 10, Instrs: 10}) }

	views := []*ArrayView{v}
	for iter := 0; iter < 3; iter++ {
		rt.ParallelForEach(spec(), NewExtent(1024), views, gpu)
		rt.HostFallback(modelapi.KernelSpec{Name: "k28", Class: modelapi.Regular, MissRate: 0.2, Coalesce: 1}, 1024, views, cpu)
	}
	st := m.Link().Stats()
	// Each iteration: h2d before the GPU kernel (view host-fresh after
	// fallback) and d2h before the CPU kernel.
	if st.TransfersToDevice != 3 || st.TransfersFromDevice != 3 {
		t.Errorf("round trips = %d/%d, want 3/3", st.TransfersToDevice, st.TransfersFromDevice)
	}
}

func TestReplayPreservesStaging(t *testing.T) {
	m := sim.NewDGPU()
	rt := New(m)
	v := rt.NewArrayView("v", 4096)
	per := exec.Counters{SPFlops: 2, LoadBytes: 8, Instrs: 4}
	rt.Replay(spec(), 1024, []*ArrayView{v}, per)
	if m.Link().Stats().TransfersToDevice != 1 {
		t.Error("Replay did not stage the view")
	}
	before := m.ElapsedNs()
	rt.Replay(spec(), 1024, []*ArrayView{v}, per)
	if m.ElapsedNs() <= before {
		t.Error("Replay charged no kernel time")
	}
}

func TestConstructorPanics(t *testing.T) {
	rt := New(sim.NewAPU())
	cases := []func(){
		func() { NewExtent(0) },
		func() { NewExtent(100).TileBy(7) }, // not divisible
		func() { NewExtent(100).TileBy(0) },
		func() { rt.NewArrayView("v", -1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAccessors(t *testing.T) {
	m := sim.NewAPU()
	rt := New(m)
	if rt.Machine() != m {
		t.Error("Machine() wrong")
	}
	v := rt.NewArrayView("v", 128)
	if v.Bytes() != 128 {
		t.Error("Bytes() wrong")
	}
}
