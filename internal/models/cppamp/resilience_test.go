package cppamp

import (
	"testing"

	"hetbench/internal/fault"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

// AMP's conservative recovery: a retry re-stages every captured view, not
// just the one the kernel needed — the full capture set round-trips.
func TestRetryResyncsAllCapturedViews(t *testing.T) {
	m := sim.NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 4, LaunchFailRate: 0.5}), fault.DefaultPolicy())
	rt := New(m)
	const n = 256
	out := make([]float64, n)
	views := []*ArrayView{
		rt.NewArrayView("a", n*8),
		rt.NewArrayView("b", n*8),
		rt.NewArrayView("c", n*8),
	}
	h2dBefore := m.Link().Stats().TransfersToDevice
	for i := 0; i < 40; i++ {
		rt.ParallelForEach(spec(), NewExtent(n), views, func(w *exec.WorkItem) {
			out[w.Global] = 3
			w.Tally(exec.Counters{StoreBytes: 8, Instrs: 1})
		})
	}
	rs := m.Resilience()
	if rs.Retries == 0 {
		t.Fatal("no retries at a 0.5 launch-failure rate over 40 launches")
	}
	h2d := m.Link().Stats().TransfersToDevice - h2dBefore
	// First launch stages 3 views; every retry re-stages all 3.
	if want := 3 + 3*rs.Retries; h2d < want {
		t.Errorf("%d h2d transfers for %d retries, want at least %d (all views re-sync per retry)", h2d, rs.Retries, want)
	}
	for i := range out {
		if out[i] != 3 {
			t.Fatalf("out[%d] = %g after retries, want 3", i, out[i])
		}
	}
}

// Fallback under persistent device loss synchronizes every view back to
// the host and runs there; views end host-fresh.
func TestFallbackSynchronizesViews(t *testing.T) {
	m := sim.NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 1, DeviceLossRate: 0.75, DeviceLossNs: 1e15}), fault.DefaultPolicy())
	rt := New(m)
	const n = 64
	out := make([]float64, n)
	v := rt.NewArrayView("v", n*8)
	for i := 0; i < 50 && m.Resilience().Fallbacks == 0; i++ {
		r := rt.ParallelForEach(spec(), NewExtent(n), []*ArrayView{v}, func(w *exec.WorkItem) {
			out[w.Global] = 1
			w.Tally(exec.Counters{StoreBytes: 8, Instrs: 1})
		})
		if r.TimeNs <= 0 {
			t.Fatal("resilient launch returned a zero result")
		}
	}
	if m.Resilience().Fallbacks == 0 {
		t.Fatal("persistent device loss never fell back to the host")
	}
	if v.OnDevice() {
		t.Error("view still device-fresh after host fallback")
	}
}

// A bit flip lands in a bound output array; the launch itself succeeds.
func TestBitFlipHitsBoundArray(t *testing.T) {
	m := sim.NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 2, BitFlipRate: 0.75}), fault.DefaultPolicy())
	rt := New(m)
	const n = 64
	out := make([]float64, n)
	rt.Bind("out", out)
	inj := m.FaultInjector()
	for i := 0; i < 100 && inj.Count(fault.BitFlip) == 0; i++ {
		rt.ParallelForEach(spec(), NewExtent(n), nil, func(w *exec.WorkItem) {
			out[w.Global] = 1
			w.Tally(exec.Counters{StoreBytes: 8, Instrs: 1})
		})
	}
	if inj.Count(fault.BitFlip) == 0 {
		t.Fatal("no bit flip drawn")
	}
	bad := 0
	for _, v := range out {
		if v != 1 {
			bad++
		}
	}
	if bad == 0 {
		t.Error("bit flip did not corrupt the bound output")
	}
}
