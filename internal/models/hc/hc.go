// Package hc models Heterogeneous Compute, the Section VII successor
// model: single-source kernels (AMP-style closures), raw pointers without
// buffer wrappers, and — its headline feature — programmer-controlled
// *asynchronous* data transfers that overlap kernel execution
// ("asynchronous kernel launches which help in overlapping kernel
// execution with data-transfers, resulting in further speedup").
//
// Overlap is modeled exactly: async transfer time is banked and drained by
// subsequent kernel time; only the un-hidden remainder is charged to the
// machine clock when the program synchronizes.
package hc

import (
	"fmt"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// Runtime binds the HC model to a machine.
type Runtime struct {
	machine *sim.Machine
	profile *modelapi.Profile
	// pendingNs is banked async-transfer time not yet hidden or charged.
	pendingNs float64
	cache     map[string]exec.Counters
}

// New returns an HC runtime for the machine.
func New(machine *sim.Machine) *Runtime {
	return &Runtime{
		machine: machine,
		profile: modelapi.ProfileFor(modelapi.HC),
		cache:   make(map[string]exec.Counters),
	}
}

// Machine returns the bound machine.
func (r *Runtime) Machine() *sim.Machine { return r.machine }

// Copy synchronously moves bytes to the device (am_copy).
func (r *Runtime) Copy(name string, bytes int64) float64 {
	return r.machine.TransferToDevice(name, bytes)
}

// CopyBack synchronously moves bytes to the host.
func (r *Runtime) CopyBack(name string, bytes int64) float64 {
	return r.machine.TransferFromDevice(name, bytes)
}

// CopyAsync starts a host→device transfer that overlaps subsequent kernel
// launches. The PCIe ledger records it now; its time is charged only to
// the extent later kernels fail to hide it (see Launch/Wait).
func (r *Runtime) CopyAsync(name string, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("hc: negative async copy %d", bytes))
	}
	if r.machine.Unified() {
		return
	}
	// Record traffic on the ledger without advancing the machine clock:
	// ask the link directly.
	us := r.machine.Link().ToDevice(bytes)
	r.pendingNs += us * 1e3
}

// Launch runs a kernel; its execution hides banked async-transfer time.
func (r *Runtime) Launch(spec modelapi.KernelSpec, n int, body func(*exec.WorkItem)) timing.Result {
	res := exec.Run(n, body)
	per := res.Counters.PerItem(n)
	r.cache[spec.Name] = per
	return r.charge(spec, n, per)
}

// LaunchCached is the launch-or-replay form used by iterative apps:
// functional calls execute the body and refresh the cached cost, replay
// calls charge the cached cost. Both hide pending async transfers.
func (r *Runtime) LaunchCached(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) timing.Result {
	per, ok := r.cache[spec.Name]
	if functional || !ok {
		return r.Launch(spec, n, body)
	}
	return r.charge(spec, n, per)
}

func (r *Runtime) charge(spec modelapi.KernelSpec, n int, per exec.Counters) timing.Result {
	cost := spec.Cost(r.profile, n, per)
	result := r.machine.LaunchKernel(sim.OnAccelerator, spec.Name, cost)
	r.pendingNs -= result.TimeNs
	if r.pendingNs < 0 {
		r.pendingNs = 0
	}
	return result
}

// Wait synchronizes outstanding async transfers, charging whatever kernel
// execution did not hide, and returns that un-hidden time in ns.
func (r *Runtime) Wait() float64 {
	t := r.pendingNs
	r.pendingNs = 0
	if t > 0 {
		r.machine.AddTransferTime("hc-async-wait", t)
	}
	return t
}

// Pending returns the banked, not-yet-hidden async transfer time (tests).
func (r *Runtime) Pending() float64 { return r.pendingNs }
