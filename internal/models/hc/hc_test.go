package hc

import (
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

func spec() modelapi.KernelSpec {
	return modelapi.KernelSpec{Name: "hck", Class: modelapi.Regular, MissRate: 0.3, Coalesce: 1}
}

func heavyBody(w *exec.WorkItem) {
	w.Tally(exec.Counters{SPFlops: 500, LoadBytes: 16, Instrs: 520})
}

func TestSyncCopiesChargeClock(t *testing.T) {
	m := sim.NewDGPU()
	rt := New(m)
	rt.Copy("in", 1<<20)
	rt.CopyBack("out", 1<<20)
	if m.TransferNs() <= 0 {
		t.Error("sync copies charged nothing")
	}
	st := m.Link().Stats()
	if st.TransfersToDevice != 1 || st.TransfersFromDevice != 1 {
		t.Error("ledger wrong")
	}
}

// The Section VII claim: overlapping transfers with kernels hides transfer
// time. An async copy followed by enough kernel work must cost less than
// the same program with synchronous copies.
func TestAsyncOverlapHidesTransferTime(t *testing.T) {
	const bytes = 16 << 20

	mSync := sim.NewDGPU()
	rtSync := New(mSync)
	rtSync.Copy("table", bytes)
	for i := 0; i < 30; i++ {
		rtSync.Launch(spec(), 1<<20, heavyBody)
	}
	syncTotal := mSync.ElapsedNs()

	mAsync := sim.NewDGPU()
	rtAsync := New(mAsync)
	rtAsync.CopyAsync("table", bytes)
	for i := 0; i < 30; i++ {
		rtAsync.Launch(spec(), 1<<20, heavyBody)
	}
	hidden := rtAsync.Wait()
	asyncTotal := mAsync.ElapsedNs()

	if hidden != 0 {
		t.Errorf("transfer not fully hidden: %g ns left", hidden)
	}
	if asyncTotal >= syncTotal {
		t.Errorf("async total %g >= sync total %g", asyncTotal, syncTotal)
	}
	// Ledger still records the traffic.
	if mAsync.Link().Stats().BytesToDevice != bytes {
		t.Error("async traffic missing from ledger")
	}
}

func TestUnhiddenRemainderCharged(t *testing.T) {
	m := sim.NewDGPU()
	rt := New(m)
	rt.CopyAsync("big", 512<<20) // ≈85 ms of PCIe time
	rt.Launch(spec(), 1<<12, heavyBody)
	left := rt.Wait()
	if left <= 0 {
		t.Fatal("tiny kernel hid an 85 ms transfer")
	}
	if m.TransferNs() < left {
		t.Error("un-hidden remainder not charged to the clock")
	}
	if rt.Pending() != 0 {
		t.Error("pending not cleared by Wait")
	}
}

func TestAsyncFreeOnAPU(t *testing.T) {
	m := sim.NewAPU()
	rt := New(m)
	rt.CopyAsync("x", 1<<20)
	if rt.Pending() != 0 {
		t.Error("APU banked async transfer time")
	}
	if rt.Wait() != 0 {
		t.Error("APU Wait charged time")
	}
}

func TestNegativeAsyncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative async copy did not panic")
		}
	}()
	New(sim.NewDGPU()).CopyAsync("bad", -1)
}

func TestMachineAccessor(t *testing.T) {
	m := sim.NewDGPU()
	if New(m).Machine() != m {
		t.Error("Machine() wrong")
	}
}
