// Package modelapi defines the vocabulary shared by all programming-model
// runtimes: model names, kernel classes, compiler profiles (the calibrated
// per-compiler code-generation quality and data-management strategy), and
// the Figure 11 optimization-feature matrix.
package modelapi

import "fmt"

// Name identifies a programming model.
type Name string

// The models the paper compares, plus the Section VII successor.
const (
	OpenMP  Name = "OpenMP"
	OpenCL  Name = "OpenCL"
	CppAMP  Name = "C++ AMP"
	OpenACC Name = "OpenACC"
	HC      Name = "HC"
)

// All returns the GPU models in the paper's presentation order.
func All() []Name { return []Name{OpenCL, CppAMP, OpenACC} }

// KernelClass captures how demanding a kernel is on the code generator.
// The emerging models' compilers degrade as kernels get more irregular —
// the paper's central code-quality observation.
type KernelClass int

const (
	// Streaming kernels are unit-stride loops (read-benchmark, axpy).
	Streaming KernelClass = iota
	// Regular kernels have structured but non-trivial bodies (LULESH
	// node/element updates, FE assembly).
	Regular
	// Irregular kernels have data-dependent control flow or gathers
	// (CoMD force loops, XSBench lookups, SpMV).
	Irregular
)

// String names the kernel class.
func (k KernelClass) String() string {
	switch k {
	case Streaming:
		return "streaming"
	case Regular:
		return "regular"
	case Irregular:
		return "irregular"
	default:
		return fmt.Sprintf("KernelClass(%d)", int(k))
	}
}

// TransferStrategy describes how a runtime moves data to a discrete GPU.
type TransferStrategy int

const (
	// ExplicitTransfers: the programmer stages exactly what is needed,
	// when it is needed (OpenCL, HC).
	ExplicitTransfers TransferStrategy = iota
	// ViewSyncTransfers: array_view-style demand sync with conservative
	// write-back (C++ AMP): captured views copy in when host-dirty;
	// written views copy back at each synchronization point.
	ViewSyncTransfers
	// RegionCopyTransfers: directive-style region copies (OpenACC):
	// without an enclosing data region, every kernels region copies its
	// arrays in on entry and out on exit.
	RegionCopyTransfers
	// NoTransfers: host execution (OpenMP) or unified memory.
	NoTransfers
)

// String names the strategy.
func (t TransferStrategy) String() string {
	switch t {
	case ExplicitTransfers:
		return "explicit"
	case ViewSyncTransfers:
		return "view-sync"
	case RegionCopyTransfers:
		return "region-copy"
	case NoTransfers:
		return "none"
	default:
		return fmt.Sprintf("TransferStrategy(%d)", int(t))
	}
}

// Features is the Figure 11 optimization matrix for one model.
type Features struct {
	Vectorization    bool
	LocalDataStore   bool
	FineGrainedSync  bool
	ExplicitUnroll   bool
	ReduceCodeMotion bool
}

// Profile is the calibrated description of one model's compiler/runtime.
// Every constant here is either a paper-documented behaviour (features,
// strategies, fallbacks) or a calibration to a paper-measured ratio,
// annotated with its source.
type Profile struct {
	Name     Name
	Compiler string // Table III entry

	// Code-generation quality by kernel class: ALU vectorization
	// efficiency and achieved-bandwidth efficiency relative to
	// hand-tuned OpenCL.
	VecEff map[KernelClass]float64
	MemEff map[KernelClass]float64

	// ScalarFallback lists kernel classes whose loops this compiler
	// fails to map onto vector lanes at all (OpenACC on CoMD's force
	// loop: "the compiler's inability to expose vector-parallelism").
	// Affected kernels execute with a large serial fraction.
	ScalarFallback map[KernelClass]float64 // class → serial fraction

	Strategy TransferStrategy
	Features Features
}

// VecEffFor returns the ALU efficiency for a kernel class (default 1).
func (p *Profile) VecEffFor(c KernelClass) float64 {
	if v, ok := p.VecEff[c]; ok {
		return v
	}
	return 1
}

// MemEffFor returns the bandwidth efficiency for a kernel class (default 1).
func (p *Profile) MemEffFor(c KernelClass) float64 {
	if v, ok := p.MemEff[c]; ok {
		return v
	}
	return 1
}

// SerialFractionFor returns the scalar-fallback serial fraction (default 0).
func (p *Profile) SerialFractionFor(c KernelClass) float64 {
	return p.ScalarFallback[c]
}

// Profiles returns the calibrated profile set, keyed by model name.
//
// Calibration sources (paper Section VI):
//   - read-benchmark kernel-only times: OpenCL best; C++ AMP 1.3× slower,
//     OpenACC 2× slower (Fig 8a/9a discussion) → streaming MemEff
//     1/1.3≈0.77 and 1/2=0.5.
//   - CoMD: "OpenACC demonstrated the worst performance ... compiler's
//     inability to expose vector-parallelism" → Irregular scalar fallback;
//     "exposing parallelism in the form of tiles improved the performance
//     of CoMD by almost 3×" under C++ AMP → AMP supports LDS tiling.
//   - miniFE: "specialized sparse matrix operations cannot be easily
//     expressed ... compiler unable to recognize the complicated access
//     patterns" → OpenACC Irregular MemEff low.
//   - Figure 11 reproduces the feature matrix verbatim.
func Profiles() map[Name]*Profile {
	return map[Name]*Profile{
		OpenMP: {
			Name:     OpenMP,
			Compiler: "GCC 4.8 -fopenmp (baseline)",
			VecEff:   map[KernelClass]float64{Streaming: 1, Regular: 0.9, Irregular: 0.7},
			MemEff:   map[KernelClass]float64{},
			Strategy: NoTransfers,
			Features: Features{Vectorization: true},
		},
		OpenCL: {
			Name:     OpenCL,
			Compiler: "AMD Catalyst driver v14.6",
			VecEff:   map[KernelClass]float64{Streaming: 1, Regular: 1, Irregular: 1},
			MemEff:   map[KernelClass]float64{Streaming: 1, Regular: 1, Irregular: 1},
			Strategy: ExplicitTransfers,
			Features: Features{
				Vectorization: true, LocalDataStore: true, FineGrainedSync: true,
				ExplicitUnroll: true, ReduceCodeMotion: true,
			},
		},
		CppAMP: {
			Name:     CppAMP,
			Compiler: "CLAMP v0.6.0",
			VecEff:   map[KernelClass]float64{Streaming: 0.95, Regular: 0.85, Irregular: 0.75},
			MemEff:   map[KernelClass]float64{Streaming: 0.77, Regular: 0.8, Irregular: 0.8},
			Strategy: ViewSyncTransfers,
			Features: Features{
				Vectorization: true, LocalDataStore: true, FineGrainedSync: true,
			},
		},
		OpenACC: {
			Name:     OpenACC,
			Compiler: "PGI v14.10 with AMD Catalyst driver v14.6",
			VecEff:   map[KernelClass]float64{Streaming: 0.9, Regular: 0.7, Irregular: 0.5},
			MemEff:   map[KernelClass]float64{Streaming: 0.5, Regular: 0.6, Irregular: 0.35},
			ScalarFallback: map[KernelClass]float64{
				// CoMD-style neighbor loops: most of the inner loop
				// stays scalar.
				Irregular: 0.85,
			},
			Strategy: RegionCopyTransfers,
			Features: Features{Vectorization: true},
		},
		HC: {
			Name:     HC,
			Compiler: "HCC (prototype, Section VII)",
			VecEff:   map[KernelClass]float64{Streaming: 1, Regular: 0.95, Irregular: 0.9},
			MemEff:   map[KernelClass]float64{Streaming: 0.95, Regular: 0.95, Irregular: 0.9},
			Strategy: ExplicitTransfers,
			Features: Features{
				Vectorization: true, LocalDataStore: true, FineGrainedSync: true,
				ReduceCodeMotion: true,
			},
		},
	}
}

// ProfileFor returns the calibrated profile for a model, or panics for an
// unknown name (a programming error: names are package constants).
func ProfileFor(n Name) *Profile {
	p, ok := Profiles()[n]
	if !ok {
		panic(fmt.Sprintf("modelapi: unknown model %q", n))
	}
	return p
}

// ProfileOn returns the profile adjusted for the executing machine's
// memory architecture. On unified-memory (HSA) machines two documented
// effects flip the irregular-kernel balance (the paper's XSBench-on-APU
// result, Section VI-A: "on architectures which do not impose data-
// transfer requirements, the emerging programming models generate better
// low-level code"):
//
//   - CLAMP on the HSA stack dereferences raw flat pointers, so its
//     gather-heavy kernels stop paying the array_view indirection —
//     irregular MemEff rises to 1.
//   - The Catalyst OpenCL path on the APU still routes random accesses
//     through buffer translation, costing irregular bandwidth (0.8).
func ProfileOn(n Name, unified bool) *Profile {
	p := ProfileFor(n)
	if !unified {
		return p
	}
	switch n {
	case CppAMP:
		p.MemEff[Irregular] = 1.0
		p.VecEff[Irregular] = 0.85
	case OpenCL:
		p.MemEff[Irregular] = 0.8
	}
	return p
}

// FeatureMatrix returns Figure 11's rows in paper order:
// OpenCL, OpenACC, C++ AMP.
func FeatureMatrix() []struct {
	Model Name
	Features
} {
	rows := []Name{OpenCL, OpenACC, CppAMP}
	out := make([]struct {
		Model Name
		Features
	}, len(rows))
	for i, n := range rows {
		out[i].Model = n
		out[i].Features = ProfileFor(n).Features
	}
	return out
}
