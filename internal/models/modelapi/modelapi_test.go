package modelapi

import (
	"testing"

	"hetbench/internal/sim/exec"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	for _, n := range []Name{OpenMP, OpenCL, CppAMP, OpenACC, HC} {
		p, ok := ps[n]
		if !ok {
			t.Fatalf("no profile for %s", n)
		}
		if p.Name != n {
			t.Errorf("profile name %s under key %s", p.Name, n)
		}
		if p.Compiler == "" {
			t.Errorf("%s: missing compiler string (Table III)", n)
		}
		for _, c := range []KernelClass{Streaming, Regular, Irregular} {
			v, m := p.VecEffFor(c), p.MemEffFor(c)
			if v <= 0 || v > 1 {
				t.Errorf("%s/%s: VecEff %g outside (0,1]", n, c, v)
			}
			if m <= 0 || m > 1 {
				t.Errorf("%s/%s: MemEff %g outside (0,1]", n, c, m)
			}
			if sf := p.SerialFractionFor(c); sf < 0 || sf >= 1 {
				t.Errorf("%s/%s: serial fraction %g outside [0,1)", n, c, sf)
			}
		}
	}
}

// Calibration anchors from the paper's read-benchmark discussion:
// OpenCL 1×, C++ AMP ≈1/1.3, OpenACC ≈1/2 on streaming kernels.
func TestStreamingCalibration(t *testing.T) {
	cl := ProfileFor(OpenCL).MemEffFor(Streaming)
	amp := ProfileFor(CppAMP).MemEffFor(Streaming)
	acc := ProfileFor(OpenACC).MemEffFor(Streaming)
	if cl != 1 {
		t.Errorf("OpenCL streaming MemEff = %g, want 1", cl)
	}
	if r := cl / amp; r < 1.25 || r > 1.35 {
		t.Errorf("OpenCL/AMP streaming ratio = %g, want ≈1.3", r)
	}
	if r := cl / acc; r < 1.9 || r > 2.1 {
		t.Errorf("OpenCL/ACC streaming ratio = %g, want ≈2", r)
	}
}

func TestCompilerQualityOrdering(t *testing.T) {
	// On every class: OpenCL ≥ C++ AMP ≥ OpenACC (Section VI
	// observations: "C++ AMP outperformed OpenACC in most cases").
	for _, c := range []KernelClass{Streaming, Regular, Irregular} {
		cl, amp, acc := ProfileFor(OpenCL), ProfileFor(CppAMP), ProfileFor(OpenACC)
		if !(cl.VecEffFor(c) >= amp.VecEffFor(c) && amp.VecEffFor(c) >= acc.VecEffFor(c)) {
			t.Errorf("%s: VecEff ordering violated", c)
		}
		if !(cl.MemEffFor(c) >= amp.MemEffFor(c) && amp.MemEffFor(c) >= acc.MemEffFor(c)) {
			t.Errorf("%s: MemEff ordering violated", c)
		}
	}
	// OpenACC's CoMD failure: a large scalar fraction on irregular loops.
	if sf := ProfileFor(OpenACC).SerialFractionFor(Irregular); sf < 0.5 {
		t.Errorf("OpenACC irregular serial fraction = %g, want large", sf)
	}
	if sf := ProfileFor(CppAMP).SerialFractionFor(Irregular); sf != 0 {
		t.Errorf("C++ AMP irregular serial fraction = %g, want 0", sf)
	}
}

// Figure 11 feature matrix, row by row.
func TestFeatureMatrixMatchesFigure11(t *testing.T) {
	rows := FeatureMatrix()
	if len(rows) != 3 {
		t.Fatalf("feature matrix has %d rows, want 3", len(rows))
	}
	byName := map[Name]Features{}
	for _, r := range rows {
		byName[r.Model] = r.Features
	}
	ocl := byName[OpenCL]
	if !(ocl.Vectorization && ocl.LocalDataStore && ocl.FineGrainedSync && ocl.ExplicitUnroll && ocl.ReduceCodeMotion) {
		t.Errorf("OpenCL row = %+v, want all ✓", ocl)
	}
	acc := byName[OpenACC]
	if !(acc.Vectorization && !acc.LocalDataStore && !acc.FineGrainedSync && !acc.ExplicitUnroll && !acc.ReduceCodeMotion) {
		t.Errorf("OpenACC row = %+v, want ✓ only vectorization", acc)
	}
	amp := byName[CppAMP]
	if !(amp.Vectorization && amp.LocalDataStore && amp.FineGrainedSync && !amp.ExplicitUnroll && !amp.ReduceCodeMotion) {
		t.Errorf("C++ AMP row = %+v, want ✓✓✓✗✗", amp)
	}
}

func TestTransferStrategies(t *testing.T) {
	want := map[Name]TransferStrategy{
		OpenCL:  ExplicitTransfers,
		CppAMP:  ViewSyncTransfers,
		OpenACC: RegionCopyTransfers,
		OpenMP:  NoTransfers,
		HC:      ExplicitTransfers,
	}
	for n, s := range want {
		if got := ProfileFor(n).Strategy; got != s {
			t.Errorf("%s strategy = %v, want %v", n, got, s)
		}
	}
}

func TestProfileForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown model did not panic")
		}
	}()
	ProfileFor(Name("CUDA"))
}

func TestStringers(t *testing.T) {
	for _, c := range []KernelClass{Streaming, Regular, Irregular, KernelClass(9)} {
		if c.String() == "" {
			t.Error("empty KernelClass string")
		}
	}
	for _, s := range []TransferStrategy{ExplicitTransfers, ViewSyncTransfers, RegionCopyTransfers, NoTransfers, TransferStrategy(9)} {
		if s.String() == "" {
			t.Error("empty TransferStrategy string")
		}
	}
	if got := All(); len(got) != 3 || got[0] != OpenCL {
		t.Errorf("All() = %v", got)
	}
}

func TestKernelSpecValidateAndCost(t *testing.T) {
	good := KernelSpec{Name: "k", Class: Streaming, MissRate: 0.5, Coalesce: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []KernelSpec{
		{Name: "", MissRate: 0.5, Coalesce: 1},
		{Name: "k", MissRate: -0.1, Coalesce: 1},
		{Name: "k", MissRate: 1.1, Coalesce: 1},
		{Name: "k", MissRate: 0.5, Coalesce: 0},
		{Name: "k", MissRate: 0.5, Coalesce: 1.2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}

	per := exec.Counters{SPFlops: 3, LoadBytes: 16, StoreBytes: 8, Instrs: 12}
	cost := good.Cost(ProfileFor(OpenACC), 1000, per)
	if cost.Items != 1000 || cost.SPFlops != 3 || cost.LoadBytes != 16 {
		t.Errorf("cost work fields wrong: %+v", cost)
	}
	if cost.VecEff != ProfileFor(OpenACC).VecEffFor(Streaming) {
		t.Error("cost did not take profile VecEff")
	}
	if cost.MemEff != ProfileFor(OpenACC).MemEffFor(Streaming) {
		t.Error("cost did not take profile MemEff")
	}
	if err := cost.Validate(); err != nil {
		t.Errorf("assembled cost invalid: %v", err)
	}
}
