package modelapi

import (
	"fmt"

	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// KernelSpec carries the per-kernel information a runtime needs beyond the
// body itself: an identifying name, the code-generation difficulty class,
// and the measured memory traits of its access pattern.
type KernelSpec struct {
	Name  string
	Class KernelClass
	// MissRate is the kernel's LLC miss rate, measured by replaying its
	// access pattern through sim/cache (see each app's characterization).
	MissRate float64
	// Coalesce is the wavefront coalescing efficiency in (0,1].
	Coalesce float64
}

// Validate reports malformed specs.
func (s KernelSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("modelapi: kernel spec missing name")
	case s.MissRate < 0 || s.MissRate > 1:
		return fmt.Errorf("modelapi: kernel %s MissRate %g outside [0,1]", s.Name, s.MissRate)
	case s.Coalesce <= 0 || s.Coalesce > 1:
		return fmt.Errorf("modelapi: kernel %s Coalesce %g outside (0,1]", s.Name, s.Coalesce)
	}
	return nil
}

// Cost assembles the timing-model input for a launch of n items whose
// measured per-item work is per, compiled by the given profile.
func (s KernelSpec) Cost(p *Profile, n int, per exec.Counters) timing.KernelCost {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return timing.KernelCost{
		Items:          n,
		SPFlops:        per.SPFlops,
		DPFlops:        per.DPFlops,
		LoadBytes:      per.LoadBytes,
		StoreBytes:     per.StoreBytes,
		LDSBytes:       per.LDSBytes,
		Instrs:         per.Instrs,
		MissRate:       s.MissRate,
		Coalesce:       s.Coalesce,
		VecEff:         p.VecEffFor(s.Class),
		MemEff:         p.MemEffFor(s.Class),
		SerialFraction: p.SerialFractionFor(s.Class),
	}
}
