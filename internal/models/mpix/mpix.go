// Package mpix models the "MPI" half of the paper's MPI+X framing
// (Section I: "Heterogeneous computing systems are programmed using a
// combination of programming models referred to as MPI+X"). The paper
// studies the X on a single node; this package supplies the inter-node
// substrate so the repository covers the whole stack: a cluster of
// simulated machines joined by a fabric, with per-rank virtual clocks and
// the message-passing primitives HPC codes actually use — point-to-point
// sends, neighbor exchange, allreduce and barrier.
//
// Clock semantics are discrete-event: a message completes no earlier than
// both endpoints have reached its start, plus fabric latency and payload
// time; collectives synchronize to the slowest participant. That is
// enough to study strong scaling and the surface-to-volume communication
// costs of domain decomposition.
package mpix

import (
	"fmt"
	"math"

	"hetbench/internal/sim"
)

// Fabric is the inter-node network.
type Fabric struct {
	Name string
	// LatencyUs is the one-way small-message latency.
	LatencyUs float64
	// BandwidthGBs is the per-link payload bandwidth.
	BandwidthGBs float64
}

// DefaultFabric returns a 2014-era FDR InfiniBand-class network
// (≈1.3 µs latency, ≈6 GB/s per direction).
func DefaultFabric() Fabric {
	return Fabric{Name: "FDR InfiniBand", LatencyUs: 1.3, BandwidthGBs: 6}
}

// Validate reports unusable fabrics.
func (f Fabric) Validate() error {
	if f.LatencyUs < 0 || f.BandwidthGBs <= 0 {
		return fmt.Errorf("mpix: invalid fabric %+v", f)
	}
	return nil
}

// transferNs is the wire time for one message.
func (f Fabric) transferNs(bytes int64) float64 {
	return f.LatencyUs*1e3 + float64(bytes)/f.BandwidthGBs
}

// Cluster is a set of ranks, each bound to its own simulated machine.
type Cluster struct {
	fabric Fabric
	ranks  []*Rank
	// stats
	messages  int64
	bytesSent int64
}

// Rank is one MPI process with its node and virtual clock.
type Rank struct {
	ID      int
	machine *sim.Machine
	clockNs float64
}

// Machine returns the rank's node.
func (r *Rank) Machine() *sim.Machine { return r.machine }

// TimeNs returns the rank's virtual clock.
func (r *Rank) TimeNs() float64 { return r.clockNs }

// AdvanceNs adds local work time (compute, I/O) to the rank's clock.
func (r *Rank) AdvanceNs(ns float64) {
	if ns < 0 {
		panic(fmt.Sprintf("mpix: negative advance %g", ns))
	}
	r.clockNs += ns
}

// NewCluster builds n ranks whose machines come from newMachine.
func NewCluster(n int, newMachine func() *sim.Machine, fabric Fabric) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("mpix: cluster size %d must be positive", n))
	}
	if err := fabric.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{fabric: fabric}
	for i := 0; i < n; i++ {
		c.ranks = append(c.ranks, &Rank{ID: i, machine: newMachine()})
	}
	return c
}

// Size returns the rank count.
func (c *Cluster) Size() int { return len(c.ranks) }

// Rank returns rank i.
func (c *Cluster) Rank(i int) *Rank {
	if i < 0 || i >= len(c.ranks) {
		panic(fmt.Sprintf("mpix: rank %d out of range [0,%d)", i, len(c.ranks)))
	}
	return c.ranks[i]
}

// Fabric returns the network description.
func (c *Cluster) Fabric() Fabric { return c.fabric }

// Messages and BytesSent report fabric traffic since construction.
func (c *Cluster) Messages() int64 { return c.messages }

// BytesSent reports total payload bytes.
func (c *Cluster) BytesSent() int64 { return c.bytesSent }

// Send moves bytes from rank `from` to rank `to`. The matching receive
// completes when both sides have arrived and the wire time has passed;
// the sender proceeds after handing the message off (eager/rendezvous
// blend: sender pays latency, receiver pays latency + payload).
func (c *Cluster) Send(from, to int, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("mpix: negative message size %d", bytes))
	}
	if from == to {
		panic("mpix: self-send")
	}
	s, r := c.Rank(from), c.Rank(to)
	start := math.Max(s.clockNs, r.clockNs)
	s.clockNs = start + c.fabric.LatencyUs*1e3
	r.clockNs = start + c.fabric.transferNs(bytes)
	c.messages++
	c.bytesSent += bytes
}

// Sendrecv is the symmetric neighbor exchange (MPI_Sendrecv): both ranks
// send `bytes` to each other; both complete at the same instant. The two
// payloads share the duplex fabric, so the cost is one latency plus one
// payload time.
func (c *Cluster) Sendrecv(a, b int, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("mpix: negative message size %d", bytes))
	}
	if a == b {
		panic("mpix: self-exchange")
	}
	ra, rb := c.Rank(a), c.Rank(b)
	start := math.Max(ra.clockNs, rb.clockNs)
	done := start + c.fabric.transferNs(bytes)
	ra.clockNs, rb.clockNs = done, done
	c.messages += 2
	c.bytesSent += 2 * bytes
}

// Allreduce combines `bytes` across all ranks (recursive doubling:
// ⌈log2(n)⌉ rounds of pairwise exchange). All ranks leave at the same
// time — the slowest arrival plus the reduction rounds.
func (c *Cluster) Allreduce(bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("mpix: negative reduce size %d", bytes))
	}
	n := len(c.ranks)
	start := 0.0
	for _, r := range c.ranks {
		start = math.Max(start, r.clockNs)
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	done := start + rounds*c.fabric.transferNs(bytes)
	for _, r := range c.ranks {
		r.clockNs = done
	}
	if n > 1 {
		c.messages += int64(rounds) * int64(n)
		c.bytesSent += int64(rounds) * int64(n) * bytes
	}
}

// Barrier synchronizes all ranks (an allreduce of nothing).
func (c *Cluster) Barrier() { c.Allreduce(0) }

// MaxTimeNs returns the slowest rank's clock — the job's elapsed time.
func (c *Cluster) MaxTimeNs() float64 {
	t := 0.0
	for _, r := range c.ranks {
		t = math.Max(t, r.clockNs)
	}
	return t
}

// MinTimeNs returns the fastest rank's clock (for imbalance metrics).
func (c *Cluster) MinTimeNs() float64 {
	if len(c.ranks) == 0 {
		return 0
	}
	t := math.Inf(1)
	for _, r := range c.ranks {
		t = math.Min(t, r.clockNs)
	}
	return t
}
