package mpix

import (
	"math"
	"testing"
	"testing/quick"

	"hetbench/internal/sim"
)

func cluster(n int) *Cluster { return NewCluster(n, sim.NewDGPU, DefaultFabric()) }

func TestConstruction(t *testing.T) {
	c := cluster(4)
	if c.Size() != 4 {
		t.Fatalf("size = %d", c.Size())
	}
	for i := 0; i < 4; i++ {
		r := c.Rank(i)
		if r.ID != i || r.Machine() == nil || r.TimeNs() != 0 {
			t.Errorf("rank %d malformed", i)
		}
	}
	if c.Fabric().Name == "" {
		t.Error("fabric unnamed")
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewCluster(0, sim.NewAPU, DefaultFabric()) },
		func() { NewCluster(2, sim.NewAPU, Fabric{LatencyUs: -1, BandwidthGBs: 1}) },
		func() { NewCluster(2, sim.NewAPU, Fabric{LatencyUs: 1, BandwidthGBs: 0}) },
		func() { cluster(2).Rank(5) },
		func() { cluster(2).Send(0, 0, 8) },
		func() { cluster(2).Send(0, 1, -8) },
		func() { cluster(2).Sendrecv(1, 1, 8) },
		func() { cluster(2).Allreduce(-1) },
		func() { cluster(2).Rank(0).AdvanceNs(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSendClockSemantics(t *testing.T) {
	c := cluster(2)
	c.Rank(0).AdvanceNs(1000) // sender is behind nothing; receiver at 0
	c.Send(0, 1, 6000)        // 6 KB at 6 GB/s = 1000 ns + 1300 ns latency
	// Receiver completes at max(1000,0) + 1300 + 1000 = 3300.
	if got := c.Rank(1).TimeNs(); math.Abs(got-3300) > 1 {
		t.Errorf("receiver clock = %g, want 3300", got)
	}
	// Sender proceeds after latency only.
	if got := c.Rank(0).TimeNs(); math.Abs(got-2300) > 1 {
		t.Errorf("sender clock = %g, want 2300", got)
	}
	if c.Messages() != 1 || c.BytesSent() != 6000 {
		t.Errorf("stats = %d msgs / %d bytes", c.Messages(), c.BytesSent())
	}
}

func TestSendWaitsForLateReceiver(t *testing.T) {
	c := cluster(2)
	c.Rank(1).AdvanceNs(10_000) // receiver busy
	c.Send(0, 1, 0)
	if got := c.Rank(1).TimeNs(); got < 10_000+1300-1 {
		t.Errorf("receiver clock = %g, message arrived before it was ready", got)
	}
}

func TestSendrecvSymmetric(t *testing.T) {
	c := cluster(2)
	c.Rank(0).AdvanceNs(500)
	c.Sendrecv(0, 1, 6000)
	a, b := c.Rank(0).TimeNs(), c.Rank(1).TimeNs()
	if a != b {
		t.Errorf("exchange left clocks unequal: %g vs %g", a, b)
	}
	if a < 500+1300+1000-1 {
		t.Errorf("exchange too fast: %g", a)
	}
}

func TestAllreduceSynchronizesToSlowest(t *testing.T) {
	c := cluster(8)
	c.Rank(3).AdvanceNs(50_000)
	c.Allreduce(8)
	want := 50_000 + 3*(1300+8.0/6.0) // log2(8)=3 rounds
	for i := 0; i < 8; i++ {
		if got := c.Rank(i).TimeNs(); math.Abs(got-want) > 1 {
			t.Fatalf("rank %d clock = %g, want %g", i, got, want)
		}
	}
}

func TestAllreduceRoundsScaleLogarithmically(t *testing.T) {
	t2, t16 := cluster(2), cluster(16)
	t2.Allreduce(8)
	t16.Allreduce(8)
	// 1 round vs 4 rounds.
	if r := t16.MaxTimeNs() / t2.MaxTimeNs(); math.Abs(r-4) > 0.01 {
		t.Errorf("allreduce 16/2 rank cost ratio = %g, want 4 (log2 rounds)", r)
	}
}

func TestBarrierAndMinMax(t *testing.T) {
	c := cluster(4)
	c.Rank(2).AdvanceNs(7000)
	if c.MinTimeNs() != 0 || c.MaxTimeNs() != 7000 {
		t.Errorf("min/max = %g/%g", c.MinTimeNs(), c.MaxTimeNs())
	}
	c.Barrier()
	if c.MinTimeNs() != c.MaxTimeNs() {
		t.Error("barrier left ranks unsynchronized")
	}
}

func TestQuickClocksNeverRegress(t *testing.T) {
	f := func(ops []uint8) bool {
		c := cluster(4)
		prev := make([]float64, 4)
		for _, op := range ops {
			a, b := int(op)%4, (int(op)/4)%4
			switch {
			case op%3 == 0 && a != b:
				c.Send(a, b, int64(op)*64)
			case op%3 == 1 && a != b:
				c.Sendrecv(a, b, int64(op)*64)
			default:
				c.Allreduce(8)
			}
			for i := 0; i < 4; i++ {
				now := c.Rank(i).TimeNs()
				if now < prev[i]-1e-9 {
					return false
				}
				prev[i] = now
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
