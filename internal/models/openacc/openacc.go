// Package openacc is the directive-style runtime: `#pragma acc kernels
// loop` regions with gang/vector clauses, and `#pragma acc data` regions
// that decouple data movement from compute.
//
// Transfer semantics follow the paper's description of the PGI-era
// behaviour: without an enclosing data region, each kernels region
// conservatively copies its arrays to the device on entry and back on exit
// — cheap on the APU, ruinous across PCIe. A Data region hoists the copies
// (the "data directive ... particularly useful on discrete GPUs").
//
// The code generator is the weakest of the three models (Figure 11 and
// Section VI): no local-data-store access, no barriers, and the gang/
// vector mapping fails to vectorize irregular loops (the CoMD result),
// which the profile models as a large scalar fraction.
package openacc

import (
	"fmt"

	"hetbench/internal/fault"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// Runtime binds the OpenACC model to a machine.
type Runtime struct {
	machine *sim.Machine
	profile *modelapi.Profile
	// open data regions, innermost last; arrays present in any open
	// region are device-resident and not re-copied by kernels regions.
	regions []*DataRegion
	cache   map[string]exec.Counters
	corrupt fault.Corruptor
	coexec  bool
}

// New returns an OpenACC runtime for the machine.
func New(machine *sim.Machine) *Runtime {
	return &Runtime{
		machine: machine,
		profile: modelapi.ProfileOn(modelapi.OpenACC, machine.Unified()),
		cache:   make(map[string]exec.Counters),
	}
}

// Machine returns the bound machine.
func (r *Runtime) Machine() *sim.Machine { return r.machine }

// WithCoexec opts this runtime's streaming and regular loops into
// CPU+accelerator co-execution whenever a planner is attached to the
// machine (sim.Machine.SetCoexec); without one, launches are unchanged.
// Irregular loops always stay single-device — the directive compiler's
// scalar fallback makes the host share worthless there.
func (r *Runtime) WithCoexec() *Runtime {
	r.coexec = true
	return r
}

// Bind registers an output array as a silent-corruption target (see
// fault.Corruptor). Apps re-bind per run.
func (r *Runtime) Bind(name string, data []float64) { r.corrupt.Bind(name, data) }

// Intent is a data clause kind.
type Intent int

// Data clause intents (subset of the OpenACC 2.0 clauses the paper's
// applications use).
const (
	// IntentCopy copies to the device on entry and back on exit.
	IntentCopy Intent = iota
	// IntentCopyin copies to the device on entry only.
	IntentCopyin
	// IntentCopyout allocates on entry and copies back on exit.
	IntentCopyout
	// IntentCreate allocates device storage with no copies.
	IntentCreate
)

// Clause names one array and how it moves.
type Clause struct {
	Name   string
	Bytes  int64
	Intent Intent
}

// Copy builds a copy clause.
func Copy(name string, bytes int64) Clause { return Clause{name, bytes, IntentCopy} }

// Copyin builds a copyin clause.
func Copyin(name string, bytes int64) Clause { return Clause{name, bytes, IntentCopyin} }

// Copyout builds a copyout clause.
func Copyout(name string, bytes int64) Clause { return Clause{name, bytes, IntentCopyout} }

// Create builds a create clause.
func Create(name string, bytes int64) Clause { return Clause{name, bytes, IntentCreate} }

func (c Clause) validate() error {
	if c.Name == "" {
		return fmt.Errorf("openacc: clause with empty array name")
	}
	if c.Bytes < 0 {
		return fmt.Errorf("openacc: clause %s with negative size %d", c.Name, c.Bytes)
	}
	return nil
}

// DataRegion is an open `#pragma acc data` structured region.
type DataRegion struct {
	rt      *Runtime
	clauses []Clause
	closed  bool
}

// Data opens a data region: entry copies happen now, exit copies at End.
func (r *Runtime) Data(clauses ...Clause) *DataRegion {
	for _, c := range clauses {
		if err := c.validate(); err != nil {
			panic(err)
		}
		if c.Intent == IntentCopy || c.Intent == IntentCopyin {
			r.machine.TransferToDevice(c.Name, c.Bytes)
		}
	}
	reg := &DataRegion{rt: r, clauses: clauses}
	r.regions = append(r.regions, reg)
	return reg
}

// End closes the region, performing exit copies. Regions must close in
// LIFO order (structured-block semantics); violating that panics.
func (d *DataRegion) End() {
	if d.closed {
		panic("openacc: data region closed twice")
	}
	r := d.rt
	if len(r.regions) == 0 || r.regions[len(r.regions)-1] != d {
		panic("openacc: data regions must close innermost-first")
	}
	r.regions = r.regions[:len(r.regions)-1]
	d.closed = true
	for _, c := range d.clauses {
		if c.Intent == IntentCopy || c.Intent == IntentCopyout {
			r.machine.TransferFromDevice(c.Name, c.Bytes)
		}
	}
}

// present reports whether an array is device-resident via any open region.
func (r *Runtime) present(name string) bool {
	for _, reg := range r.regions {
		for _, c := range reg.clauses {
			if c.Name == name {
				return true
			}
		}
	}
	return false
}

// Loop is a kernels-loop region: `#pragma acc kernels loop gang(G)
// vector(V)` over n iterations. uses declares the arrays the loop
// touches; any not covered by an open data region are conservatively
// copied in before and out after the launch (the compiler cannot prove
// read-onlyness across the region).
func (r *Runtime) Loop(spec modelapi.KernelSpec, n int, uses []Clause, body func(*exec.WorkItem)) timing.Result {
	res := exec.Run(n, body)
	per := res.Counters.PerItem(n)
	r.cache[spec.Name] = per
	return r.finishLoop(spec, n, uses, per)
}

// Launch runs the loop functionally when functional is true (or when no
// cost is cached), otherwise replays the cached cost with the same
// per-region transfer semantics.
func (r *Runtime) Launch(spec modelapi.KernelSpec, n int, uses []Clause, functional bool, body func(*exec.WorkItem)) timing.Result {
	per, ok := r.cache[spec.Name]
	if functional || !ok {
		return r.Loop(spec, n, uses, body)
	}
	return r.Replay(spec, n, uses, per)
}

// Replay charges another launch with previously measured per-item
// counters, preserving the per-region transfer semantics.
func (r *Runtime) Replay(spec modelapi.KernelSpec, n int, uses []Clause, per exec.Counters) timing.Result {
	return r.finishLoop(spec, n, uses, per)
}

// LoopGV is a kernels-loop with explicit `gang(G) vector(V)` clauses
// (Figure 5's `gang(size/BLOCKSIZE) vector(BLOCKSIZE)`). The vector
// length maps to wavefront lanes: a V that is not a multiple of the
// 64-lane wavefront leaves lanes idle — the paper's "OpenACC also proved
// challenging in terms of mapping the parallelism to appropriately use
// GPU vector cores". gang×vector must cover n.
func (r *Runtime) LoopGV(spec modelapi.KernelSpec, n, gang, vector int, uses []Clause, body func(*exec.WorkItem)) timing.Result {
	if gang <= 0 || vector <= 0 {
		panic(fmt.Sprintf("openacc: gang(%d) vector(%d) must be positive", gang, vector))
	}
	if gang*vector < n {
		panic(fmt.Sprintf("openacc: gang(%d)×vector(%d) < loop count %d", gang, vector, n))
	}
	res := exec.Run(n, body)
	per := res.Counters.PerItem(n)
	r.cache[spec.Name] = per

	wf := r.machine.Accelerator().WavefrontSize
	rounded := (vector + wf - 1) / wf * wf
	util := float64(vector) / float64(rounded)
	return r.finishLoopDerated(spec, n, uses, per, util)
}

func (r *Runtime) finishLoop(spec modelapi.KernelSpec, n int, uses []Clause, per exec.Counters) timing.Result {
	return r.finishLoopDerated(spec, n, uses, per, 1)
}

func (r *Runtime) finishLoopDerated(spec modelapi.KernelSpec, n int, uses []Clause, per exec.Counters, util float64) timing.Result {
	for _, c := range uses {
		if err := c.validate(); err != nil {
			panic(err)
		}
		if !r.present(c.Name) && (c.Intent == IntentCopy || c.Intent == IntentCopyin) {
			r.machine.TransferToDevice(c.Name, c.Bytes)
		}
	}
	cost := spec.Cost(r.profile, n, per)
	if util > 0 && util < 1 {
		// Idle lanes inside partially-filled wavefronts.
		cost.VecEff *= util
	}
	result := r.launchResilient(spec, n, per, cost, uses)
	for _, c := range uses {
		if !r.present(c.Name) && (c.Intent == IntentCopy || c.Intent == IntentCopyout) {
			r.machine.TransferFromDevice(c.Name, c.Bytes)
		}
	}
	return result
}

// launchResilient issues one device launch under the machine's fault
// policy. The directive model has the coarsest recovery granularity of the
// three runtimes: the generated runtime tracks data at region scope, so
// after a failed launch it re-establishes the whole kernels region —
// every copy/copyin clause of every open data region plus the loop's own
// non-present input clauses is copied to the device again before the
// retry. Host fallback round-trips the full region: all device-resident
// region arrays come back to the host, the loop runs on the CPU, and the
// region's inputs are pushed down again to restore device residency. With
// no injector attached this is LaunchKernel plus a nil check.
func (r *Runtime) launchResilient(spec modelapi.KernelSpec, n int, per exec.Counters, cost timing.KernelCost, uses []Clause) timing.Result {
	m := r.machine
	if r.coexec && spec.Class != modelapi.Irregular {
		hostCost := spec.Cost(modelapi.ProfileFor(modelapi.OpenMP), n, per)
		if res, ok := m.LaunchKernelSplit(spec.Name, cost, hostCost); ok {
			return res
		}
	}
	res, ev := m.LaunchKernelChecked(sim.OnAccelerator, spec.Name, cost)
	if ev == nil {
		return res
	}
	pol := m.FaultPolicy()
	for attempt := 1; ; attempt++ {
		if ev.Kind == fault.BitFlip {
			r.corrupt.Corrupt(m.FaultInjector())
			return res
		}
		if attempt >= pol.MaxAttempts {
			break
		}
		m.ChargeBackoffNs(spec.Name, pol.BackoffNs(attempt))
		r.restageRegion(uses)
		res, ev = m.LaunchKernelChecked(sim.OnAccelerator, spec.Name, cost)
		if ev == nil {
			return res
		}
	}
	m.NoteFallback(spec.Name)
	for _, c := range r.regionAndUses(uses) {
		if c.Intent != IntentCreate {
			m.TransferFromDevice(c.Name+"(fallback-sync)", c.Bytes)
		}
	}
	hostCost := spec.Cost(modelapi.ProfileFor(modelapi.OpenMP), n, per)
	res = m.LaunchKernel(sim.OnHost, spec.Name+"(cpu-fallback)", hostCost)
	r.restageRegion(uses)
	return res
}

// restageRegion re-copies the whole kernels region to the device: every
// input clause (copy/copyin) of every open data region plus the loop's own
// non-present input clauses.
func (r *Runtime) restageRegion(uses []Clause) {
	for _, reg := range r.regions {
		for _, c := range reg.clauses {
			if c.Intent == IntentCopy || c.Intent == IntentCopyin {
				r.machine.TransferToDevice(c.Name+"(restage)", c.Bytes)
			}
		}
	}
	for _, c := range uses {
		if !r.present(c.Name) && (c.Intent == IntentCopy || c.Intent == IntentCopyin) {
			r.machine.TransferToDevice(c.Name+"(restage)", c.Bytes)
		}
	}
}

// regionAndUses returns every clause in scope for one kernels region: the
// open data regions' clauses followed by the loop's own non-present uses.
func (r *Runtime) regionAndUses(uses []Clause) []Clause {
	var out []Clause
	for _, reg := range r.regions {
		out = append(out, reg.clauses...)
	}
	for _, c := range uses {
		if !r.present(c.Name) {
			out = append(out, c)
		}
	}
	return out
}

// UpdateHost is `#pragma acc update host(...)`: refresh a host copy of a
// device-resident array mid-region (used for per-iteration convergence or
// time-constraint checks).
func (r *Runtime) UpdateHost(name string, bytes int64) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("openacc: negative update host size %d", bytes))
	}
	return r.machine.TransferFromDevice(name, bytes)
}

// UpdateDevice is `#pragma acc update device(...)`.
func (r *Runtime) UpdateDevice(name string, bytes int64) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("openacc: negative update device size %d", bytes))
	}
	return r.machine.TransferToDevice(name, bytes)
}

// OpenRegions returns the number of open data regions (for tests).
func (r *Runtime) OpenRegions() int { return len(r.regions) }
