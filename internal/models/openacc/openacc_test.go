package openacc

import (
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

func spec() modelapi.KernelSpec {
	return modelapi.KernelSpec{Name: "loop", Class: modelapi.Streaming, MissRate: 0.8, Coalesce: 1}
}

func body(out []float64) func(*exec.WorkItem) {
	return func(w *exec.WorkItem) {
		out[w.Global] = float64(w.Global) * 2
		w.Tally(exec.Counters{SPFlops: 1, StoreBytes: 8, Instrs: 3})
	}
}

// Figure 5 semantics: a kernels-loop outside any data region copies its
// arrays in and out around every launch on the dGPU.
func TestConservativeRegionCopies(t *testing.T) {
	m := sim.NewDGPU()
	rt := New(m)
	out := make([]float64, 1024)
	uses := []Clause{Copy("out", 8192)}
	for i := 0; i < 3; i++ {
		rt.Loop(spec(), len(out), uses, body(out))
	}
	st := m.Link().Stats()
	if st.TransfersToDevice != 3 || st.TransfersFromDevice != 3 {
		t.Errorf("per-launch copies = %d in / %d out, want 3/3", st.TransfersToDevice, st.TransfersFromDevice)
	}
	if out[10] != 20 {
		t.Errorf("functional result wrong: out[10] = %g", out[10])
	}
}

// The data directive hoists copies out of the loop — the Section III-B
// optimization that is "particularly useful on discrete GPUs".
func TestDataRegionHoistsCopies(t *testing.T) {
	m := sim.NewDGPU()
	rt := New(m)
	out := make([]float64, 1024)

	region := rt.Data(Copy("out", 8192))
	for i := 0; i < 5; i++ {
		rt.Loop(spec(), len(out), []Clause{Copy("out", 8192)}, body(out))
	}
	region.End()

	st := m.Link().Stats()
	if st.TransfersToDevice != 1 || st.TransfersFromDevice != 1 {
		t.Errorf("with data region: %d in / %d out, want 1/1", st.TransfersToDevice, st.TransfersFromDevice)
	}
	if rt.OpenRegions() != 0 {
		t.Error("region still open after End")
	}
}

func TestClauseIntents(t *testing.T) {
	m := sim.NewDGPU()
	rt := New(m)
	out := make([]float64, 64)
	uses := []Clause{
		Copyin("in", 4096),
		Copyout("res", 512),
		Create("scratch", 1<<20),
	}
	rt.Loop(spec(), 64, uses, body(out))
	st := m.Link().Stats()
	if st.TransfersToDevice != 1 {
		t.Errorf("copyin count = %d, want 1 (create/copyout must not copy in)", st.TransfersToDevice)
	}
	if st.TransfersFromDevice != 1 {
		t.Errorf("copyout count = %d, want 1 (copyin/create must not copy out)", st.TransfersFromDevice)
	}
	if st.BytesToDevice != 4096 || st.BytesFromDevice != 512 {
		t.Errorf("bytes = %d/%d, want 4096/512", st.BytesToDevice, st.BytesFromDevice)
	}
}

func TestAPUCopiesFree(t *testing.T) {
	m := sim.NewAPU()
	rt := New(m)
	out := make([]float64, 64)
	rt.Loop(spec(), 64, []Clause{Copy("out", 512)}, body(out))
	if m.TransferNs() != 0 {
		t.Error("APU charged transfer time")
	}
}

func TestRegionLIFO(t *testing.T) {
	rt := New(sim.NewDGPU())
	outer := rt.Data(Copyin("a", 64))
	inner := rt.Data(Copyin("b", 64))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("closing outer before inner did not panic")
			}
		}()
		outer.End()
	}()
	inner.End()
	outer.End()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double End did not panic")
			}
		}()
		inner.End()
	}()
}

func TestReplayKeepsTransferSemantics(t *testing.T) {
	m := sim.NewDGPU()
	rt := New(m)
	per := exec.Counters{SPFlops: 1, StoreBytes: 8, Instrs: 3}
	rt.Replay(spec(), 1024, []Clause{Copy("x", 8192)}, per)
	st := m.Link().Stats()
	if st.TransfersToDevice != 1 || st.TransfersFromDevice != 1 {
		t.Error("Replay skipped region copies")
	}
}

func TestScalarFallbackSlowsIrregularLoops(t *testing.T) {
	// The CoMD effect: the same work as an irregular loop runs much
	// slower under OpenACC than under hand-tuned OpenCL semantics.
	m1, m2 := sim.NewAPU(), sim.NewAPU()
	rt := New(m1)
	work := func(w *exec.WorkItem) {
		w.Tally(exec.Counters{SPFlops: 200, LoadBytes: 64, Instrs: 250})
	}
	irr := modelapi.KernelSpec{Name: "force", Class: modelapi.Irregular, MissRate: 0.26, Coalesce: 0.5}
	rt.Loop(irr, 1<<16, nil, work)
	accTime := m1.ElapsedNs()

	// Reference: identical cost under the OpenCL profile.
	cost := irr.Cost(modelapi.ProfileFor(modelapi.OpenCL), 1<<16, exec.Counters{SPFlops: 200, LoadBytes: 64, Instrs: 250})
	clTime := m2.LaunchKernel(sim.OnAccelerator, "force", cost).TimeNs
	if accTime < 3*clTime {
		t.Errorf("OpenACC irregular loop only %.1f× slower than OpenCL, want ≥3× (scalar fallback)", accTime/clTime)
	}
}

func TestLoopGVVectorMapping(t *testing.T) {
	work := func(w *exec.WorkItem) {
		w.Tally(exec.Counters{SPFlops: 300, LoadBytes: 8, Instrs: 330})
	}
	s := modelapi.KernelSpec{Name: "gv", Class: modelapi.Regular, MissRate: 0.05, Coalesce: 1}
	const n = 1 << 16

	run := func(vector int) float64 {
		m := sim.NewDGPU()
		rt := New(m)
		rt.LoopGV(s, n, (n+vector-1)/vector, vector, nil, work)
		return m.KernelNs()
	}
	full := run(64)   // full wavefronts
	half := run(32)   // half-filled wavefronts: ~2× slower ALU
	multi := run(128) // two full wavefronts per gang: no penalty
	if r := half / full; r < 1.5 {
		t.Errorf("vector(32)/vector(64) = %.2f, want ≈2 (idle lanes)", r)
	}
	if r := multi / full; r > 1.1 {
		t.Errorf("vector(128)/vector(64) = %.2f, want ≈1", r)
	}
}

func TestLoopGVPanics(t *testing.T) {
	rt := New(sim.NewDGPU())
	body := func(*exec.WorkItem) {}
	s := spec()
	cases := []func(){
		func() { rt.LoopGV(s, 64, 0, 64, nil, body) },
		func() { rt.LoopGV(s, 64, 1, 0, nil, body) },
		func() { rt.LoopGV(s, 1024, 2, 64, nil, body) }, // 2×64 < 1024
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestClauseValidation(t *testing.T) {
	rt := New(sim.NewAPU())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty clause name did not panic")
			}
		}()
		rt.Data(Clause{Name: "", Bytes: 64, Intent: IntentCopy})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative clause size did not panic")
			}
		}()
		rt.Loop(spec(), 64, []Clause{{Name: "x", Bytes: -1, Intent: IntentCopy}}, func(w *exec.WorkItem) {})
	}()
}

func TestMachineAccessor(t *testing.T) {
	m := sim.NewAPU()
	if New(m).Machine() != m {
		t.Error("Machine() wrong")
	}
}
