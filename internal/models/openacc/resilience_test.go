package openacc

import (
	"testing"

	"hetbench/internal/fault"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

// The directive model's coarse recovery: a retry re-copies every input
// clause of the enclosing data region, even arrays the failed loop never
// touched.
func TestRetryRecopiesWholeRegion(t *testing.T) {
	m := sim.NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 4, LaunchFailRate: 0.5}), fault.DefaultPolicy())
	rt := New(m)
	const n = 256
	out := make([]float64, n)

	// Region holds 3 input arrays; each loop uses only one of them.
	reg := rt.Data(
		Copyin("a", n*8),
		Copyin("b", n*8),
		Copy("c", n*8),
	)
	h2dBefore := m.Link().Stats().TransfersToDevice
	for i := 0; i < 40; i++ {
		rt.Loop(spec(), n, []Clause{Copy("c", n*8)}, body(out))
	}
	reg.End()
	rs := m.Resilience()
	if rs.Retries == 0 {
		t.Fatal("no retries at a 0.5 launch-failure rate over 40 launches")
	}
	h2d := m.Link().Stats().TransfersToDevice - h2dBefore
	// Every retry re-establishes all 3 region inputs.
	if want := 3 * rs.Retries; h2d < want {
		t.Errorf("%d h2d transfers for %d retries, want at least %d (whole-region re-copy)", h2d, rs.Retries, want)
	}
	for i := range out {
		if out[i] != float64(i)*2 {
			t.Fatalf("out[%d] = %g after retried loops, want %d", i, out[i], i*2)
		}
	}
}

// Fallback under persistent device loss round-trips the region and runs
// the loop on the host; the launch still returns a positive result.
func TestFallbackRoundTripsRegion(t *testing.T) {
	m := sim.NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 1, DeviceLossRate: 0.75, DeviceLossNs: 1e15}), fault.DefaultPolicy())
	rt := New(m)
	const n = 64
	out := make([]float64, n)
	reg := rt.Data(Copy("c", n*8))
	d2hBefore := m.Link().Stats().TransfersFromDevice
	for i := 0; i < 50 && m.Resilience().Fallbacks == 0; i++ {
		if r := rt.Loop(spec(), n, nil, body(out)); r.TimeNs <= 0 {
			t.Fatal("resilient launch returned a zero result")
		}
	}
	if m.Resilience().Fallbacks == 0 {
		t.Fatal("persistent device loss never fell back to the host")
	}
	if m.Link().Stats().TransfersFromDevice == d2hBefore {
		t.Error("fallback did not synchronize the region back to the host")
	}
	reg.End()
}

// A bit flip lands in a bound output array without charging fault time.
func TestBitFlipHitsBoundArray(t *testing.T) {
	m := sim.NewDGPU()
	m.SetFaultInjector(fault.New(fault.Config{Seed: 2, BitFlipRate: 0.75}), fault.DefaultPolicy())
	rt := New(m)
	const n = 64
	out := make([]float64, n)
	rt.Bind("out", out)
	inj := m.FaultInjector()
	for i := 0; i < 100 && inj.Count(fault.BitFlip) == 0; i++ {
		rt.Loop(spec(), n, nil, func(w *exec.WorkItem) {
			out[w.Global] = 1
			w.Tally(exec.Counters{StoreBytes: 8, Instrs: 1})
		})
	}
	if inj.Count(fault.BitFlip) == 0 {
		t.Fatal("no bit flip drawn")
	}
	bad := 0
	for _, v := range out {
		if v != 1 {
			bad++
		}
	}
	if bad == 0 {
		t.Error("bit flip did not corrupt the bound output")
	}
	if m.FaultNs() != 0 {
		t.Error("silent corruption charged fault time")
	}
}
