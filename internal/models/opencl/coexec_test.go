package opencl

import (
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

// body is a trivial streaming kernel body for coexec routing tests.
func coexecBody(out []float64) func(*exec.WorkItem) {
	return func(w *exec.WorkItem) {
		out[w.Global] = float64(w.Global)
		w.Tally(exec.Counters{SPFlops: 1, LoadBytes: 8, StoreBytes: 8, Instrs: 4})
	}
}

// A streaming kernel on a WithCoexec context routes through the attached
// planner and still computes the right answer (the scheduler is a timing
// construct; functional execution is untouched).
func TestCoexecRoutesStreamingKernel(t *testing.T) {
	m := sim.NewDGPU()
	s := sched.New(sched.Config{Policy: sched.Dynamic})
	m.SetCoexec(s)
	ctx := NewContext(m).WithCoexec()
	q := ctx.NewQueue()
	const n = 1 << 12
	out := make([]float64, n)
	k := ctx.CreateKernel(spec(), coexecBody(out))
	q.EnqueueNDRange(k, n, 64)
	if st := s.Stats(); st.Splits != 1 || st.HostItems+st.AccelItems != n {
		t.Fatalf("streaming kernel not split: %+v", st)
	}
	for i := range out {
		if out[i] != float64(i) {
			t.Fatalf("out[%d] = %g after co-executed launch", i, out[i])
		}
	}
}

// Irregular kernels stay single-device even under WithCoexec.
func TestCoexecSkipsIrregularKernel(t *testing.T) {
	m := sim.NewDGPU()
	s := sched.New(sched.Config{Policy: sched.Dynamic})
	m.SetCoexec(s)
	ctx := NewContext(m).WithCoexec()
	q := ctx.NewQueue()
	out := make([]float64, 1<<10)
	irr := modelapi.KernelSpec{Name: "gather", Class: modelapi.Irregular, MissRate: 0.9, Coalesce: 0.25}
	k := ctx.CreateKernel(irr, coexecBody(out))
	q.EnqueueNDRange(k, len(out), 64)
	if st := s.Stats(); st.Splits != 0 {
		t.Fatalf("irregular kernel was split: %+v", st)
	}
}

// WithCoexec without an attached planner must not change timing at all —
// the opt-in is free until a scheduler exists.
func TestCoexecWithoutPlannerIsIdentical(t *testing.T) {
	run := func(opt bool) float64 {
		m := sim.NewDGPU()
		ctx := NewContext(m)
		if opt {
			ctx = ctx.WithCoexec()
		}
		q := ctx.NewQueue()
		out := make([]float64, 1<<12)
		q.EnqueueNDRange(ctx.CreateKernel(spec(), coexecBody(out)), len(out), 64)
		return m.ElapsedNs()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("WithCoexec with no planner changed timing: %g vs %g ns", a, b)
	}
}
