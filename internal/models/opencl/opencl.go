// Package opencl is the explicit, low-level runtime: contexts, command
// queues, buffers with programmer-managed staging, and NDRange kernel
// launches with optional work-group tiling and local-data-store use — the
// traditional model the paper treats as the performance yardstick.
//
// The API mirrors the host-side structure of Figure 4a: create buffers,
// copy data to the device (a real PCIe cost on the discrete machine, free
// on the APU), set arguments by closure capture, launch, and copy back.
package opencl

import (
	"fmt"

	"hetbench/internal/fault"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// Context owns buffers and kernels for one machine, as in clCreateContext.
type Context struct {
	machine *sim.Machine
	profile *modelapi.Profile
	cache   map[string]exec.Counters
	corrupt fault.Corruptor
	coexec  bool
}

// NewContext initializes the runtime for a machine (the InitCl() of
// Figure 4a collapses to this).
func NewContext(machine *sim.Machine) *Context {
	return &Context{
		machine: machine,
		profile: modelapi.ProfileOn(modelapi.OpenCL, machine.Unified()),
		cache:   make(map[string]exec.Counters),
	}
}

// Machine returns the bound machine.
func (c *Context) Machine() *sim.Machine { return c.machine }

// WithCoexec opts this context's streaming and regular kernels into
// CPU+accelerator co-execution whenever a planner is attached to the
// machine (sim.Machine.SetCoexec); without one, launches are unchanged.
// Irregular kernels always stay single-device, matching the paper's
// observation that generated code quality collapses on them.
func (c *Context) WithCoexec() *Context {
	c.coexec = true
	return c
}

// Bind registers an output array as a silent-corruption target: when the
// fault injector flips a bit in a kernel's output, the flip lands in a
// bound slice (see fault.Corruptor). Apps re-bind per run.
func (c *Context) Bind(name string, data []float64) { c.corrupt.Bind(name, data) }

// Buffer is a device allocation (cl_mem). The simulator keeps one copy of
// the data (the Go slice owned by the application); Buffer tracks the
// allocation size so transfers are charged faithfully. staged records that
// the program explicitly wrote the buffer to the device, which is exactly
// the set the resilience layer re-stages after a launch failure — the
// explicit model's recovery advantage.
type Buffer struct {
	ctx    *Context
	name   string
	bytes  int64
	staged bool
}

// CreateBuffer allocates a device buffer of the given size.
func (c *Context) CreateBuffer(name string, bytes int64) *Buffer {
	if bytes < 0 {
		panic(fmt.Sprintf("opencl: negative buffer size %d", bytes))
	}
	return &Buffer{ctx: c, name: name, bytes: bytes}
}

// Bytes returns the allocation size.
func (b *Buffer) Bytes() int64 { return b.bytes }

// Queue is an in-order command queue. The simulated machine is synchronous,
// so enqueue operations complete (and charge time) immediately; Finish is
// kept for API fidelity.
type Queue struct {
	ctx *Context
}

// NewQueue creates a command queue.
func (c *Context) NewQueue() *Queue { return &Queue{ctx: c} }

// EnqueueWriteBuffer stages a buffer's contents into device memory:
// a PCIe transfer on the discrete machine, free on the APU (the paper's
// "the host-code ... is much simpler without the need for ... staging
// data" advantage).
func (q *Queue) EnqueueWriteBuffer(b *Buffer) float64 {
	b.staged = true
	return q.ctx.machine.TransferToDevice(b.name, b.bytes)
}

// EnqueueReadBuffer copies a buffer's contents back to the host.
func (q *Queue) EnqueueReadBuffer(b *Buffer) float64 {
	return q.ctx.machine.TransferFromDevice(b.name, b.bytes)
}

// Finish blocks until the queue drains (a no-op on the synchronous
// simulator, present for API fidelity).
func (q *Queue) Finish() {}

// Kernel is a compiled device function. Exactly one of body or phases is
// set: simple kernels give a per-item body; tiled kernels give barrier-
// delimited phases with an LDS allocation.
type Kernel struct {
	ctx    *Context
	spec   modelapi.KernelSpec
	body   func(*exec.WorkItem)
	phases []exec.Phase
	lds    int

	// Unroll marks the kernel as hand-unrolled (an OpenCL-only tuning
	// knob per Figure 11): the dynamic instruction count drops.
	Unroll bool

	// args are the buffers bound with SetArgs; the resilience layer
	// re-stages the staged ones between retry attempts.
	args []*Buffer

	// lastPer holds the most recent functional launch's per-item
	// counters so ReplayNDRange can re-charge without re-executing.
	lastPer   exec.Counters
	lastValid bool
}

// SetArgs binds the kernel's buffer arguments (clSetKernelArg). Argument
// binding is what lets the resilience layer re-stage precisely the failed
// kernel's staged inputs — and nothing else — after a transient fault.
func (k *Kernel) SetArgs(bufs ...*Buffer) *Kernel {
	k.args = bufs
	return k
}

// CreateKernel compiles a simple (non-tiled) kernel.
func (c *Context) CreateKernel(spec modelapi.KernelSpec, body func(*exec.WorkItem)) *Kernel {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if body == nil {
		panic("opencl: nil kernel body")
	}
	return &Kernel{ctx: c, spec: spec, body: body}
}

// CreateTiledKernel compiles a kernel that uses work-group local memory
// (ldsFloats float64 words per group) and barrier-delimited phases.
func (c *Context) CreateTiledKernel(spec modelapi.KernelSpec, ldsFloats int, phases ...exec.Phase) *Kernel {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if len(phases) == 0 {
		panic("opencl: tiled kernel needs phases")
	}
	return &Kernel{ctx: c, spec: spec, phases: phases, lds: ldsFloats}
}

// Spec returns the kernel's spec.
func (k *Kernel) Spec() modelapi.KernelSpec { return k.spec }

// EnqueueNDRange launches the kernel over global work items (local sets
// the work-group size for tiled kernels; simple kernels ignore it) and
// returns the simulated timing.
func (q *Queue) EnqueueNDRange(k *Kernel, global, local int) timing.Result {
	var res exec.Result
	if k.phases != nil {
		res = exec.RunTiled(global, local, k.lds, k.phases...)
	} else {
		res = exec.Run(global, k.body)
	}
	per := res.Counters.PerItem(global)
	if k.Unroll {
		// Hand-unrolling removes loop-control overhead: fewer dynamic
		// instructions for the same flops/bytes.
		per.Instrs *= 0.75
	}
	k.lastPer, k.lastValid = per, true
	cost := k.spec.Cost(q.ctx.profile, global, per)
	return q.ctx.launchResilient(k.spec, global, per, cost, k.args)
}

// Launch runs the kernel functionally when functional is true (or when it
// has never executed), otherwise replays its measured cost.
func (q *Queue) Launch(k *Kernel, global, local int, functional bool) timing.Result {
	if functional || !k.lastValid {
		return q.EnqueueNDRange(k, global, local)
	}
	return q.ReplayNDRange(k, global)
}

// LaunchFunc is the closure-per-call form of Launch for kernels whose body
// captures loop-varying state (e.g. the timestep): the cost cache is keyed
// by spec name on the context, and non-functional calls replay it.
func (q *Queue) LaunchFunc(spec modelapi.KernelSpec, global int, functional bool, body func(*exec.WorkItem)) timing.Result {
	per, ok := q.ctx.cache[spec.Name]
	if functional || !ok {
		res := exec.Run(global, body)
		per = res.Counters.PerItem(global)
		q.ctx.cache[spec.Name] = per
	}
	cost := spec.Cost(q.ctx.profile, global, per)
	return q.ctx.launchResilient(spec, global, per, cost, nil)
}

// ReplayNDRange charges another launch with the counters measured by the
// most recent EnqueueNDRange, without functional re-execution. It panics
// if the kernel has never run functionally.
func (q *Queue) ReplayNDRange(k *Kernel, global int) timing.Result {
	if !k.lastValid {
		panic(fmt.Sprintf("opencl: ReplayNDRange(%s) before any functional launch", k.spec.Name))
	}
	cost := k.spec.Cost(q.ctx.profile, global, k.lastPer)
	return q.ctx.launchResilient(k.spec, global, k.lastPer, cost, k.args)
}

// ---------------------------------------------------------------------
// Resilience.

// launchResilient issues one device launch under the machine's fault
// policy: transient failures (launch rejection, watchdog-killed hang,
// device loss) are retried with exponential backoff, restaging the
// kernel's staged argument buffers before each retry — the explicit
// model's recovery cost is exactly the buffers the programmer staged, no
// more. A silent bit flip is routed to the context's corruptor (detected
// later by end-to-end checksum). When the retry budget is exhausted the
// launch degrades gracefully to the host CPU. With no injector attached
// this is LaunchKernel plus one nil check.
func (c *Context) launchResilient(spec modelapi.KernelSpec, global int, per exec.Counters, cost timing.KernelCost, args []*Buffer) timing.Result {
	m := c.machine
	if c.coexec && spec.Class != modelapi.Irregular {
		hostCost := spec.Cost(modelapi.ProfileFor(modelapi.OpenMP), global, per)
		if res, ok := m.LaunchKernelSplit(spec.Name, cost, hostCost); ok {
			return res
		}
	}
	r, ev := m.LaunchKernelChecked(sim.OnAccelerator, spec.Name, cost)
	if ev == nil {
		return r
	}
	pol := m.FaultPolicy()
	for attempt := 1; ; attempt++ {
		if ev.Kind == fault.BitFlip {
			// The launch completed; the corruption surfaces at the run's
			// end-to-end checksum, not here.
			c.corrupt.Corrupt(m.FaultInjector())
			return r
		}
		if attempt >= pol.MaxAttempts {
			break
		}
		m.ChargeBackoffNs(spec.Name, pol.BackoffNs(attempt))
		for _, b := range args {
			if b != nil && b.staged {
				m.TransferToDevice(b.name+"(restage)", b.bytes)
			}
		}
		r, ev = m.LaunchKernelChecked(sim.OnAccelerator, spec.Name, cost)
		if ev == nil {
			return r
		}
	}
	// Retry budget exhausted: degrade gracefully to the host CPU. The
	// explicit model round-trips the kernel's staged buffers — results
	// must land back on the device so subsequent kernels see them.
	m.NoteFallback(spec.Name)
	for _, b := range args {
		if b != nil && b.staged {
			m.TransferFromDevice(b.name+"(fallback-sync)", b.bytes)
		}
	}
	hostCost := spec.Cost(modelapi.ProfileFor(modelapi.OpenMP), global, per)
	res := m.LaunchKernel(sim.OnHost, spec.Name+"(cpu-fallback)", hostCost)
	for _, b := range args {
		if b != nil && b.staged {
			m.TransferToDevice(b.name+"(restage)", b.bytes)
		}
	}
	return res
}
