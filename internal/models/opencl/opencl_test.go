package opencl

import (
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

func spec() modelapi.KernelSpec {
	return modelapi.KernelSpec{Name: "blocksum", Class: modelapi.Streaming, MissRate: 0.9, Coalesce: 1}
}

// The Figure 4 flow: init, buffers, copy in, launch, copy out — on both
// machines; transfers cost on the dGPU and are free on the APU.
func TestFigure4Flow(t *testing.T) {
	for _, tc := range []struct {
		machine  *sim.Machine
		freeCopy bool
	}{
		{sim.NewAPU(), true},
		{sim.NewDGPU(), false},
	} {
		ctx := NewContext(tc.machine)
		q := ctx.NewQueue()
		const n, block = 1 << 12, 64
		in := make([]float64, n*block)
		for i := range in {
			in[i] = 1
		}
		out := make([]float64, n)

		bufIn := ctx.CreateBuffer("in", int64(len(in)*8))
		bufOut := ctx.CreateBuffer("out", int64(len(out)*8))
		wcost := q.EnqueueWriteBuffer(bufIn)

		k := ctx.CreateKernel(spec(), func(w *exec.WorkItem) {
			sum := 0.0
			st := w.Global * block
			for j := 0; j < block; j++ {
				sum += in[st+j]
			}
			out[w.Global] = sum
			w.Tally(exec.Counters{SPFlops: block, LoadBytes: 8 * block, StoreBytes: 8, Instrs: 2 * block})
		})
		r := q.EnqueueNDRange(k, n, 64)
		rcost := q.EnqueueReadBuffer(bufOut)
		q.Finish()

		for i := range out {
			if out[i] != block {
				t.Fatalf("%s: out[%d] = %g, want %d", tc.machine.Name(), i, out[i], block)
			}
		}
		if r.TimeNs <= 0 {
			t.Errorf("%s: kernel time not positive", tc.machine.Name())
		}
		if tc.freeCopy && (wcost != 0 || rcost != 0) {
			t.Errorf("%s: transfers cost %g/%g ns, want free", tc.machine.Name(), wcost, rcost)
		}
		if !tc.freeCopy && (wcost <= 0 || rcost <= 0) {
			t.Errorf("%s: transfers cost %g/%g ns, want positive", tc.machine.Name(), wcost, rcost)
		}
		if bufIn.Bytes() != int64(len(in)*8) {
			t.Error("buffer size wrong")
		}
	}
}

func TestTiledKernelUsesLDS(t *testing.T) {
	ctx := NewContext(sim.NewDGPU())
	q := ctx.NewQueue()
	const local, groups = 64, 16
	out := make([]float64, local*groups)
	k := ctx.CreateTiledKernel(
		modelapi.KernelSpec{Name: "tiled", Class: modelapi.Regular, MissRate: 0.2, Coalesce: 1},
		local,
		func(g *exec.Group, l int) {
			g.LDS[l] = float64(l)
			g.Tally(exec.Counters{LDSBytes: 8, Instrs: 2})
		},
		func(g *exec.Group, l int) {
			sum := 0.0
			for i := 0; i < g.Size; i++ {
				sum += g.LDS[i]
			}
			out[g.GlobalID(l)] = sum
			g.Tally(exec.Counters{SPFlops: float64(g.Size), LDSBytes: float64(8 * g.Size), StoreBytes: 8, Instrs: float64(g.Size)})
		},
	)
	r := q.EnqueueNDRange(k, local*groups, local)
	want := float64(local*(local-1)) / 2
	for i, v := range out {
		if v != want {
			t.Fatalf("out[%d] = %g, want %g", i, v, want)
		}
	}
	if r.LDSNs <= 0 {
		t.Error("tiled kernel charged no LDS time")
	}
}

func TestUnrollReducesIssuePressure(t *testing.T) {
	run := func(unroll bool) float64 {
		ctx := NewContext(sim.NewDGPU())
		q := ctx.NewQueue()
		k := ctx.CreateKernel(
			modelapi.KernelSpec{Name: "issue-bound", Class: modelapi.Regular, MissRate: 0.01, Coalesce: 1},
			func(w *exec.WorkItem) {
				w.Tally(exec.Counters{SPFlops: 1, Instrs: 400})
			})
		k.Unroll = unroll
		return q.EnqueueNDRange(k, 1<<20, 64).TimeNs
	}
	plain, unrolled := run(false), run(true)
	if unrolled >= plain {
		t.Errorf("unrolled %g ns not faster than plain %g ns", unrolled, plain)
	}
}

func TestReplayMatchesFunctionalLaunch(t *testing.T) {
	ctx := NewContext(sim.NewAPU())
	q := ctx.NewQueue()
	k := ctx.CreateKernel(spec(), func(w *exec.WorkItem) {
		w.Tally(exec.Counters{SPFlops: 4, LoadBytes: 32, Instrs: 8})
	})
	r1 := q.EnqueueNDRange(k, 4096, 64)
	r2 := q.ReplayNDRange(k, 4096)
	if r1.TimeNs != r2.TimeNs {
		t.Errorf("replay time %g != functional time %g", r2.TimeNs, r1.TimeNs)
	}
}

func TestReplayBeforeRunPanics(t *testing.T) {
	ctx := NewContext(sim.NewAPU())
	q := ctx.NewQueue()
	k := ctx.CreateKernel(spec(), func(w *exec.WorkItem) {})
	defer func() {
		if recover() == nil {
			t.Error("replay-before-run did not panic")
		}
	}()
	q.ReplayNDRange(k, 64)
}

func TestConstructorPanics(t *testing.T) {
	ctx := NewContext(sim.NewAPU())
	cases := []func(){
		func() { ctx.CreateBuffer("b", -1) },
		func() { ctx.CreateKernel(spec(), nil) },
		func() { ctx.CreateKernel(modelapi.KernelSpec{}, func(w *exec.WorkItem) {}) },
		func() { ctx.CreateTiledKernel(spec(), 8) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMachineAccessor(t *testing.T) {
	m := sim.NewAPU()
	if NewContext(m).Machine() != m {
		t.Error("Machine() accessor wrong")
	}
}
