package opencl

import (
	"testing"

	"hetbench/internal/fault"
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

// newFaulty returns a dGPU context with the given fault config attached.
func newFaulty(cfg fault.Config) (*Context, *Queue, *sim.Machine) {
	m := sim.NewDGPU()
	m.SetFaultInjector(fault.New(cfg), fault.DefaultPolicy())
	ctx := NewContext(m)
	return ctx, ctx.NewQueue(), m
}

func copyKernel(ctx *Context, in, out []float64) *Kernel {
	return ctx.CreateKernel(spec(), func(w *exec.WorkItem) {
		out[w.Global] = in[w.Global] + 1
		w.Tally(exec.Counters{SPFlops: 1, LoadBytes: 8, StoreBytes: 8, Instrs: 2})
	})
}

// Transient launch failures are retried with backoff, restaging only the
// staged argument buffers, and the kernel still completes with correct
// results.
func TestRetryRestagesOnlyStagedArgs(t *testing.T) {
	ctx, q, m := newFaulty(fault.Config{Seed: 5, LaunchFailRate: 0.5})
	const n = 256
	in, out := make([]float64, n), make([]float64, n)
	bufIn := ctx.CreateBuffer("in", int64(n*8))
	bufOut := ctx.CreateBuffer("out", int64(n*8)) // never staged: output-only
	q.EnqueueWriteBuffer(bufIn)
	k := copyKernel(ctx, in, out).SetArgs(bufIn, bufOut)

	h2dBefore := m.Link().Stats().TransfersToDevice
	for i := 0; i < 40; i++ {
		q.EnqueueNDRange(k, n, 64)
	}
	rs := m.Resilience()
	if rs.Retries == 0 {
		t.Fatal("no retries at a 0.5 launch-failure rate over 40 launches")
	}
	for i := range out {
		if out[i] != 1 {
			t.Fatalf("out[%d] = %g after retries, want 1", i, out[i])
		}
	}
	restages := m.Link().Stats().TransfersToDevice - h2dBefore
	if restages == 0 {
		t.Error("retries did not restage the staged input buffer")
	}
	// Only the one staged buffer moves per retry (plus one round-trip per
	// fallback); the unstaged output buffer never moves on the retry path.
	if restages > rs.Retries+rs.Fallbacks {
		t.Errorf("%d h2d restages for %d retries + %d fallbacks; unstaged buffers must not move",
			restages, rs.Retries, rs.Fallbacks)
	}
	if m.FaultNs() <= 0 {
		t.Error("no fault time charged across retried launches")
	}
}

// A persistent device loss exhausts the retry budget and degrades to the
// host CPU; the launch still returns a positive host-side result.
func TestFallbackAfterPersistentDeviceLoss(t *testing.T) {
	ctx, q, m := newFaulty(fault.Config{Seed: 1, DeviceLossRate: 0.75, DeviceLossNs: 1e15})
	const n = 128
	in, out := make([]float64, n), make([]float64, n)
	k := copyKernel(ctx, in, out).SetArgs()
	for i := 0; i < 50 && m.Resilience().Fallbacks == 0; i++ {
		if r := q.EnqueueNDRange(k, n, 64); r.TimeNs <= 0 {
			t.Fatal("resilient launch returned a zero result")
		}
	}
	if m.Resilience().Fallbacks == 0 {
		t.Fatal("persistent device loss never fell back to the host")
	}
	for i := range out {
		if out[i] != 1 {
			t.Fatalf("out[%d] = %g after fallback, want 1", i, out[i])
		}
	}
}

// A silent bit flip perturbs exactly one element of a bound output array
// and charges no fault time — it is invisible until a checksum looks.
func TestBitFlipCorruptsBoundOutput(t *testing.T) {
	ctx, q, m := newFaulty(fault.Config{Seed: 2, BitFlipRate: 0.75})
	const n = 64
	in, out := make([]float64, n), make([]float64, n)
	ctx.Bind("out", out)
	k := copyKernel(ctx, in, out)
	inj := m.FaultInjector()
	for i := 0; i < 100 && inj.Count(fault.BitFlip) == 0; i++ {
		q.EnqueueNDRange(k, n, 64)
	}
	if inj.Count(fault.BitFlip) == 0 {
		t.Fatal("no bit flip drawn")
	}
	bad := 0
	for i := range out {
		if out[i] != 1 {
			bad++
		}
	}
	if bad == 0 {
		t.Error("bit flip did not corrupt the bound output")
	}
	if m.FaultNs() != 0 {
		t.Error("silent corruption charged fault time")
	}
}

// The LaunchFunc path (no bound args) retries with zero restaging.
func TestLaunchFuncRetriesWithoutRestage(t *testing.T) {
	ctx, _, m := newFaulty(fault.Config{Seed: 7, LaunchFailRate: 0.5})
	q := ctx.NewQueue()
	const n = 128
	out := make([]float64, n)
	sp := modelapi.KernelSpec{Name: "fn", Class: modelapi.Streaming, MissRate: 0.5, Coalesce: 1}
	h2dBefore := m.Link().Stats().TransfersToDevice
	for i := 0; i < 40; i++ {
		q.LaunchFunc(sp, n, i == 0, func(w *exec.WorkItem) {
			out[w.Global] = 2
			w.Tally(exec.Counters{StoreBytes: 8, Instrs: 1})
		})
	}
	if m.Resilience().Retries == 0 {
		t.Fatal("no retries at a 0.5 launch-failure rate")
	}
	if got := m.Link().Stats().TransfersToDevice - h2dBefore; got != 0 {
		t.Errorf("LaunchFunc retries staged %d buffers, want 0", got)
	}
}
