// Package openmp is the host-CPU baseline runtime: a `#pragma omp parallel
// for` equivalent that executes loop bodies functionally across the
// simulated CPU's cores and charges time on the machine's host timing
// model. Every speedup in the paper (Figures 8 and 9) is measured against
// this 4-core baseline.
package openmp

import (
	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
	"hetbench/internal/sim/timing"
)

// Runtime executes OpenMP-style parallel loops on a machine's host CPU.
type Runtime struct {
	machine *sim.Machine
	profile *modelapi.Profile
	cache   map[string]exec.Counters
}

// New returns a runtime bound to the machine's host CPU.
func New(machine *sim.Machine) *Runtime {
	return &Runtime{
		machine: machine,
		profile: modelapi.ProfileFor(modelapi.OpenMP),
		cache:   make(map[string]exec.Counters),
	}
}

// Machine returns the bound machine.
func (r *Runtime) Machine() *sim.Machine { return r.machine }

// ParallelFor runs body for i in [0, n) across the host cores — the
// one-pragma port of a serial loop (paper Figure 3b) — and returns the
// timing result. The body tallies its work on the WorkItem.
func (r *Runtime) ParallelFor(spec modelapi.KernelSpec, n int, body func(*exec.WorkItem)) timing.Result {
	res := exec.Run(n, body)
	per := res.Counters.PerItem(n)
	r.cache[spec.Name] = per
	cost := spec.Cost(r.profile, n, per)
	return r.machine.LaunchKernel(sim.OnHost, spec.Name, cost)
}

// Launch runs the loop functionally when functional is true (or when no
// cost has been measured yet), and otherwise replays the cached per-item
// cost — the iterative-application fast path for iterations beyond the
// functional sample.
func (r *Runtime) Launch(spec modelapi.KernelSpec, n int, functional bool, body func(*exec.WorkItem)) timing.Result {
	per, ok := r.cache[spec.Name]
	if functional || !ok {
		return r.ParallelFor(spec, n, body)
	}
	return r.Replay(spec, n, per)
}

// Replay charges the host for another launch with previously measured
// per-item counters, without functional re-execution. Iterative apps use
// it for iterations beyond the functional sample.
func (r *Runtime) Replay(spec modelapi.KernelSpec, n int, per exec.Counters) timing.Result {
	return r.machine.LaunchKernel(sim.OnHost, spec.Name, spec.Cost(r.profile, n, per))
}

// Serial runs body(i) for i in [0, n) on one core: the un-annotated loop.
// It is used for the serial-CPU reference implementations.
func (r *Runtime) Serial(spec modelapi.KernelSpec, n int, body func(*exec.WorkItem)) timing.Result {
	res := exec.Run(n, body) // functionally parallel, logically serial
	per := res.Counters.PerItem(n)
	cost := spec.Cost(r.profile, n, per)
	cost.SerialFraction = 0
	// One core: scale the modeled work up by the core count so the
	// timing model's full-device rate yields single-core time.
	host := r.machine.Host()
	scale := float64(host.ComputeUnits * host.LanesPerCU)
	cost.SPFlops *= scale
	cost.DPFlops *= scale
	cost.Instrs *= float64(host.ComputeUnits)
	return r.machine.LaunchKernel(sim.OnHost, spec.Name, cost)
}
