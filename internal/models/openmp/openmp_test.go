package openmp

import (
	"testing"

	"hetbench/internal/models/modelapi"
	"hetbench/internal/sim"
	"hetbench/internal/sim/exec"
)

func spec() modelapi.KernelSpec {
	return modelapi.KernelSpec{Name: "omp-loop", Class: modelapi.Streaming, MissRate: 0.9, Coalesce: 1}
}

func TestParallelForRunsOnHost(t *testing.T) {
	m := sim.NewAPU()
	m.EnableEventLog(true)
	rt := New(m)
	out := make([]float64, 4096)
	r := rt.ParallelFor(spec(), len(out), func(w *exec.WorkItem) {
		out[w.Global] = 1
		w.Tally(exec.Counters{SPFlops: 1, StoreBytes: 8, Instrs: 2})
	})
	if r.TimeNs <= 0 {
		t.Fatal("no time charged")
	}
	for i, v := range out {
		if v != 1 {
			t.Fatalf("out[%d] = %g, functional execution incomplete", i, v)
		}
	}
	if m.TransferNs() != 0 {
		t.Error("OpenMP charged transfer time")
	}
}

func TestSerialSlowerThanParallel(t *testing.T) {
	work := func(w *exec.WorkItem) {
		w.Tally(exec.Counters{SPFlops: 100, LoadBytes: 8, Instrs: 120})
	}
	mp, ms := sim.NewAPU(), sim.NewAPU()
	par := New(mp).ParallelFor(spec(), 1<<16, work).TimeNs
	ser := New(ms).Serial(spec(), 1<<16, work).TimeNs
	// 4 cores × SIMD: the serial loop must be several times slower on
	// this compute-bound kernel.
	if ser < 3*par {
		t.Errorf("serial/parallel = %.2f, want ≥3 (4 cores + SIMD)", ser/par)
	}
}

func TestReplayMatchesParallelFor(t *testing.T) {
	per := exec.Counters{SPFlops: 10, LoadBytes: 16, Instrs: 14}
	m1, m2 := sim.NewAPU(), sim.NewAPU()
	r1 := New(m1).ParallelFor(spec(), 2048, func(w *exec.WorkItem) { w.Tally(per) })
	r2 := New(m2).Replay(spec(), 2048, per)
	if r1.TimeNs != r2.TimeNs {
		t.Errorf("replay %g != functional %g", r2.TimeNs, r1.TimeNs)
	}
}

func TestMachineAccessor(t *testing.T) {
	m := sim.NewAPU()
	if New(m).Machine() != m {
		t.Error("Machine() wrong")
	}
}

// The paper's premise: the GPU beats 4 CPU cores on parallel work. Check
// a bandwidth-bound kernel on the dGPU machine (its GDDR5 vs host DDR3).
func TestGPUBeatsOpenMPOnStreaming(t *testing.T) {
	work := func(w *exec.WorkItem) {
		w.Tally(exec.Counters{SPFlops: 64, LoadBytes: 512, StoreBytes: 8, Instrs: 130})
	}
	mCPU := sim.NewDGPU()
	tCPU := New(mCPU).ParallelFor(spec(), 1<<18, work).TimeNs

	mGPU := sim.NewDGPU()
	cost := spec().Cost(modelapi.ProfileFor(modelapi.OpenCL), 1<<18, exec.Counters{SPFlops: 64, LoadBytes: 512, StoreBytes: 8, Instrs: 130})
	tGPU := mGPU.LaunchKernel(sim.OnAccelerator, "k", cost).TimeNs
	speedup := tCPU / tGPU
	if speedup < 5 {
		t.Errorf("dGPU speedup on streaming kernel = %.1f×, want large (≈bandwidth ratio)", speedup)
	}
}
