package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// BenchSchema identifies the BENCH_*.json file format. Bump the suffix
// on breaking changes so PerfDelta can refuse to compare mismatched
// generations.
const BenchSchema = "hetbench-bench/v1"

// BenchEntry is one named measurement in a BENCH file: mean ns/op plus,
// when the producer measured them, allocations per op and the ns
// distribution quantiles.
type BenchEntry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is -1 when the producer did not measure allocations
	// (e.g. the runner suite); 0 is a meaningful measured value the CI
	// gate relies on.
	AllocsPerOp float64 `json:"allocs_per_op"`
	Count       int64   `json:"count,omitempty"` // ops or cells measured
	P50Ns       float64 `json:"p50_ns,omitempty"`
	P95Ns       float64 `json:"p95_ns,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
	MaxNs       float64 `json:"max_ns,omitempty"`
}

// BenchFile is the machine-readable perf-trajectory snapshot committed
// at the repo root (BENCH_hotpath.json, BENCH_runner.json). Commit
// metadata comes from the producer's arguments (CI passes GITHUB_SHA),
// never from inside the library, so the schema stays host-agnostic.
type BenchFile struct {
	Schema  string       `json:"schema"`
	Suite   string       `json:"suite"` // "hotpath" or "runner"
	Commit  string       `json:"commit,omitempty"`
	Date    string       `json:"date,omitempty"` // ISO 8601, producer-supplied
	Go      string       `json:"go,omitempty"`
	Jobs    int          `json:"jobs,omitempty"`
	Entries []BenchEntry `json:"entries"`
}

// Sort orders the entries by name so the serialized file is stable
// regardless of production order.
func (f *BenchFile) Sort() {
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Name < f.Entries[j].Name })
}

// Entry returns the named entry, or nil.
func (f *BenchFile) Entry(name string) *BenchEntry {
	for i := range f.Entries {
		if f.Entries[i].Name == name {
			return &f.Entries[i]
		}
	}
	return nil
}

// WriteBench serializes the file as indented JSON (sorted entries,
// trailing newline) — the committed-artifact form.
func WriteBench(w io.Writer, f *BenchFile) error {
	if f.Schema == "" {
		f.Schema = BenchSchema
	}
	f.Sort()
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteBenchFile writes the snapshot to path via WriteBench.
func WriteBenchFile(path string, f *BenchFile) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBench(out, f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ReadBench parses a BENCH file and validates its schema tag.
func ReadBench(r io.Reader) (*BenchFile, error) {
	var f BenchFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("bench: parse: %w", err)
	}
	if f.Schema != BenchSchema {
		return nil, fmt.Errorf("bench: schema %q, want %q", f.Schema, BenchSchema)
	}
	return &f, nil
}

// ReadBenchFile reads a BENCH snapshot from path.
func ReadBenchFile(path string) (*BenchFile, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f, err := ReadBench(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// BenchDelta is one entry's old-vs-new comparison.
type BenchDelta struct {
	Name         string
	OldNs, NewNs float64
	// Ratio is NewNs/OldNs (1.0 = unchanged); 0 when either side is
	// missing or the old measurement was zero.
	Ratio                float64
	OldAllocs, NewAllocs float64
	OnlyOld, OnlyNew     bool
	TimeRegressed        bool
	AllocsRegressed      bool
}

// Regressed reports whether the delta trips either gate.
func (d BenchDelta) Regressed() bool { return d.TimeRegressed || d.AllocsRegressed }

// BenchDeltaReport is the comparison of two BENCH snapshots.
type BenchDeltaReport struct {
	Suite     string
	Threshold float64
	Deltas    []BenchDelta
}

// Regressions returns the names of entries that regressed.
func (r *BenchDeltaReport) Regressions() []string {
	var out []string
	for _, d := range r.Deltas {
		if d.Regressed() {
			out = append(out, d.Name)
		}
	}
	return out
}

// PerfDelta compares two BENCH snapshots entry by entry, sorted by
// name. threshold is the tolerated fractional ns/op growth (0.2 = 20%);
// threshold <= 0 disables the time gate (report-only mode for noisy
// suites like the runner's wall-clock numbers). Allocation counts are
// deterministic, so any allocs/op increase between measured entries is
// flagged regardless of threshold.
func PerfDelta(old, cur *BenchFile, threshold float64) *BenchDeltaReport {
	rep := &BenchDeltaReport{Suite: cur.Suite, Threshold: threshold}
	names := map[string]bool{}
	for _, e := range old.Entries {
		names[e.Name] = true
	}
	for _, e := range cur.Entries {
		names[e.Name] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		oe, ne := old.Entry(name), cur.Entry(name)
		d := BenchDelta{Name: name}
		switch {
		case oe == nil:
			d.OnlyNew = true
			d.NewNs, d.NewAllocs = ne.NsPerOp, ne.AllocsPerOp
		case ne == nil:
			d.OnlyOld = true
			d.OldNs, d.OldAllocs = oe.NsPerOp, oe.AllocsPerOp
		default:
			d.OldNs, d.NewNs = oe.NsPerOp, ne.NsPerOp
			d.OldAllocs, d.NewAllocs = oe.AllocsPerOp, ne.AllocsPerOp
			if d.OldNs > 0 {
				d.Ratio = d.NewNs / d.OldNs
				if threshold > 0 && d.Ratio > 1+threshold {
					d.TimeRegressed = true
				}
			}
			if d.OldAllocs >= 0 && d.NewAllocs > d.OldAllocs {
				d.AllocsRegressed = true
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep
}

// Table renders the report as an old-vs-new comparison table.
func (r *BenchDeltaReport) Table() *Table {
	title := fmt.Sprintf("Perf delta — suite %q", r.Suite)
	if r.Threshold > 0 {
		title += fmt.Sprintf(" (gate: +%.0f%% ns/op)", r.Threshold*100)
	} else {
		title += " (report-only)"
	}
	t := NewTable(title, "Benchmark", "Old ns/op", "New ns/op", "Delta", "Old allocs", "New allocs", "Verdict")
	allocs := func(v float64) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", v)
	}
	for _, d := range r.Deltas {
		switch {
		case d.OnlyNew:
			t.AddRow(d.Name, "-", fmt.Sprintf("%.1f", d.NewNs), "new", "-", allocs(d.NewAllocs), "new entry")
		case d.OnlyOld:
			t.AddRow(d.Name, fmt.Sprintf("%.1f", d.OldNs), "-", "gone", allocs(d.OldAllocs), "-", "removed")
		default:
			verdict := "ok"
			if d.TimeRegressed {
				verdict = "REGRESSED"
			}
			if d.AllocsRegressed {
				verdict = "ALLOCS REGRESSED"
				if d.TimeRegressed {
					verdict = "REGRESSED (time+allocs)"
				}
			}
			delta := "n/a"
			if d.Ratio > 0 {
				delta = fmt.Sprintf("%+.1f%%", (d.Ratio-1)*100)
			}
			t.AddRow(d.Name, fmt.Sprintf("%.1f", d.OldNs), fmt.Sprintf("%.1f", d.NewNs),
				delta, allocs(d.OldAllocs), allocs(d.NewAllocs), verdict)
		}
	}
	return t
}
