package report

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func sampleBench(suite string, ns, allocs float64) *BenchFile {
	return &BenchFile{
		Suite:  suite,
		Commit: "abc123",
		Go:     "go1.24.0",
		Entries: []BenchEntry{
			{Name: "launch/untraced", NsPerOp: ns, AllocsPerOp: allocs},
			{Name: "launch/traced", NsPerOp: ns * 2, AllocsPerOp: allocs + 2},
		},
	}
}

func TestBenchRoundTrip(t *testing.T) {
	f := sampleBench("hotpath", 100, 0)
	// Unsorted input must serialize sorted.
	f.Entries[0], f.Entries[1] = f.Entries[1], f.Entries[0]
	var buf bytes.Buffer
	if err := WriteBench(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("serialized BENCH file lacks a trailing newline")
	}
	got, err := ReadBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema || got.Suite != "hotpath" || got.Commit != "abc123" {
		t.Errorf("round trip lost metadata: %+v", got)
	}
	if len(got.Entries) != 2 || got.Entries[0].Name != "launch/traced" {
		t.Errorf("entries not sorted on write: %+v", got.Entries)
	}
	if e := got.Entry("launch/untraced"); e == nil || e.NsPerOp != 100 {
		t.Errorf("Entry lookup = %+v", e)
	}
	if got.Entry("nope") != nil {
		t.Error("Entry returned a hit for an unknown name")
	}
}

func TestBenchFileIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteBenchFile(path, sampleBench("runner", 50, -1)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != "runner" {
		t.Errorf("suite = %q", got.Suite)
	}
	if _, err := ReadBenchFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("reading a missing file did not fail")
	}
}

func TestBenchSchemaValidation(t *testing.T) {
	_, err := ReadBench(strings.NewReader(`{"schema":"hetbench-bench/v999","suite":"hotpath"}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong-schema read error = %v", err)
	}
	if _, err := ReadBench(strings.NewReader("not json")); err == nil {
		t.Error("garbage input did not fail")
	}
}

func TestPerfDeltaGates(t *testing.T) {
	old := &BenchFile{Suite: "hotpath", Entries: []BenchEntry{
		{Name: "steady", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "slower", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "allocs", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "removed", NsPerOp: 10, AllocsPerOp: -1},
		{Name: "unmeasured", NsPerOp: 100, AllocsPerOp: -1},
	}}
	cur := &BenchFile{Suite: "hotpath", Entries: []BenchEntry{
		{Name: "steady", NsPerOp: 110, AllocsPerOp: 0}, // +10%: under the gate
		{Name: "slower", NsPerOp: 130, AllocsPerOp: 0}, // +30%: over the gate
		{Name: "allocs", NsPerOp: 100, AllocsPerOp: 1}, // new allocation: gated
		{Name: "added", NsPerOp: 5, AllocsPerOp: 0},    // new entry: reported, not gated
		{Name: "unmeasured", NsPerOp: 90, AllocsPerOp: -1},
	}}
	rep := PerfDelta(old, cur, 0.2)
	regs := rep.Regressions()
	if len(regs) != 2 || regs[0] != "allocs" || regs[1] != "slower" {
		t.Fatalf("Regressions() = %v, want [allocs slower]", regs)
	}
	byName := map[string]BenchDelta{}
	for _, d := range rep.Deltas {
		byName[d.Name] = d
	}
	if d := byName["slower"]; !d.TimeRegressed || d.AllocsRegressed {
		t.Errorf("slower = %+v, want time-only regression", d)
	}
	if d := byName["allocs"]; d.TimeRegressed || !d.AllocsRegressed {
		t.Errorf("allocs = %+v, want allocs-only regression", d)
	}
	if d := byName["steady"]; d.Regressed() {
		t.Errorf("steady regressed at +10%% under a 20%% gate: %+v", d)
	}
	if d := byName["added"]; !d.OnlyNew || d.Regressed() {
		t.Errorf("added = %+v, want only-new, not regressed", d)
	}
	if d := byName["removed"]; !d.OnlyOld {
		t.Errorf("removed = %+v, want only-old", d)
	}
	// AllocsPerOp -1 marks "not measured": never an allocs regression.
	if d := byName["unmeasured"]; d.Regressed() {
		t.Errorf("unmeasured allocs flagged: %+v", d)
	}

	// Report-only mode: the same +30% passes.
	if regs := PerfDelta(old, cur, 0).Regressions(); len(regs) != 1 || regs[0] != "allocs" {
		t.Errorf("threshold 0 Regressions() = %v, want allocs only (time gate off)", regs)
	}

	var buf bytes.Buffer
	if _, err := rep.Table().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSED", "new entry", "removed", "+30.0%", `suite "hotpath"`} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}
}

// The time gate is strictly greater-than: a run sitting exactly at the
// threshold passes, one epsilon above fails. Guards the boundary the CI
// delta step depends on.
func TestPerfDeltaExactlyAtThreshold(t *testing.T) {
	entry := func(ns float64) *BenchFile {
		return &BenchFile{Suite: "hotpath", Entries: []BenchEntry{
			{Name: "edge", NsPerOp: ns, AllocsPerOp: 2},
		}}
	}
	old := entry(100)

	// 100 → 125 under a 0.25 gate: Ratio == 1.25 exactly, not regressed.
	at := PerfDelta(old, entry(125), 0.25).Deltas[0]
	if at.Ratio != 1.25 {
		t.Fatalf("Ratio = %v, want exactly 1.25", at.Ratio)
	}
	if at.TimeRegressed {
		t.Errorf("exactly-at-threshold run flagged as regressed: %+v", at)
	}

	// The next representable step over the edge regresses.
	over := PerfDelta(old, entry(math.Nextafter(125, 126)), 0.25).Deltas[0]
	if !over.TimeRegressed {
		t.Errorf("epsilon over threshold not flagged: %+v", over)
	}

	// Allocs gate: equal passes, +1 fails, -1 (unmeasured) never fires.
	same := PerfDelta(old, entry(100), 0.25).Deltas[0]
	if same.AllocsRegressed {
		t.Errorf("equal allocs flagged: %+v", same)
	}
	bump := &BenchFile{Suite: "hotpath", Entries: []BenchEntry{{Name: "edge", NsPerOp: 100, AllocsPerOp: 3}}}
	if d := PerfDelta(old, bump, 0.25).Deltas[0]; !d.AllocsRegressed {
		t.Errorf("alloc bump not flagged: %+v", d)
	}
	oldUnmeasured := &BenchFile{Suite: "hotpath", Entries: []BenchEntry{{Name: "edge", NsPerOp: 100, AllocsPerOp: -1}}}
	if d := PerfDelta(oldUnmeasured, bump, 0.25).Deltas[0]; d.AllocsRegressed {
		t.Errorf("unmeasured-old allocs flagged: %+v", d)
	}
}
