// Package report renders experiment results as aligned ASCII tables,
// normalized series (the paper's figure format), and CSV for downstream
// plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 render %.3g, ints %d.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3g", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		case bool:
			if v {
				row = append(row, "yes")
			} else {
				row = append(row, "no")
			}
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return ""
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of (x, y) points — the paper's figure format
// (e.g. one memory-frequency series in Figure 7).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Normalize divides all Y by the series' first Y (the paper's
// "normalized performance" convention). No-op for empty or zero-leading
// series.
func (s *Series) Normalize() {
	if len(s.Y) == 0 || s.Y[0] == 0 {
		return
	}
	base := s.Y[0]
	for i := range s.Y {
		s.Y[i] /= base
	}
}

// NormalizeBy divides all Y by base.
func (s *Series) NormalizeBy(base float64) {
	if base == 0 {
		return
	}
	for i := range s.Y {
		s.Y[i] /= base
	}
}

// Figure is a set of series sharing an x-axis, rendered as a grid.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// WriteTo renders the figure as a table: one row per x, one column per
// series.
func (f *Figure) WriteTo(w io.Writer) (int64, error) {
	if len(f.Series) == 0 {
		n, err := fmt.Fprintf(w, "%s (no data)\n", f.Title)
		return int64(n), err
	}
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s  [y: %s]", f.Title, f.YLabel), headers...)
	for i := range f.Series[0].X {
		row := []string{fmt.Sprintf("%g", f.Series[0].X[i])}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.3f", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t.WriteTo(w)
}

// String renders the figure.
func (f *Figure) String() string {
	var b strings.Builder
	if _, err := f.WriteTo(&b); err != nil {
		return ""
	}
	return b.String()
}
