package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "App", "Speedup")
	tb.AddRowf("LULESH", 3.25)
	tb.AddRowf("CoMD", 12)
	s := tb.String()
	for _, want := range []string{"Demo", "App", "Speedup", "LULESH", "3.25", "CoMD", "12"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	// Alignment: header and separator rows have equal visible width.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5", len(lines))
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header/separator misaligned:\n%s", s)
	}
}

func TestAddRowfTypes(t *testing.T) {
	tb := NewTable("", "a", "b", "c", "d", "e")
	tb.AddRowf("x", 1.5, 7, int64(9), true)
	row := tb.Rows[0]
	want := []string{"x", "1.5", "7", "9", "yes"}
	for i := range want {
		if row[i] != want[i] {
			t.Errorf("cell %d = %q, want %q", i, row[i], want[i])
		}
	}
	tb.AddRowf(false, struct{}{})
	if tb.Rows[1][0] != "no" {
		t.Error("bool false not rendered")
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row padded to %d cells, want 3", len(tb.Rows[0]))
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `has "quotes"`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != `"with,comma","has ""quotes"""` {
		t.Errorf("quoted row = %q", lines[2])
	}
}

func TestSeriesNormalize(t *testing.T) {
	s := &Series{Name: "s", X: []float64{1, 2, 3}, Y: []float64{2, 4, 8}}
	s.Normalize()
	if s.Y[0] != 1 || s.Y[1] != 2 || s.Y[2] != 4 {
		t.Errorf("normalized = %v", s.Y)
	}
	s.NormalizeBy(2)
	if s.Y[2] != 2 {
		t.Errorf("NormalizeBy = %v", s.Y)
	}
	// Degenerate cases are no-ops, not panics.
	(&Series{}).Normalize()
	(&Series{Y: []float64{0, 1}}).Normalize()
	s.NormalizeBy(0)
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{
		Title:  "Fig 7a",
		XLabel: "core MHz",
		YLabel: "normalized perf",
		Series: []*Series{
			{Name: "480", X: []float64{200, 400}, Y: []float64{1, 1.9}},
			{Name: "1250", X: []float64{200, 400}, Y: []float64{1, 2.5}},
		},
	}
	s := f.String()
	for _, want := range []string{"Fig 7a", "core MHz", "480", "1250", "1.900", "2.500"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure output missing %q:\n%s", want, s)
		}
	}
	empty := &Figure{Title: "none"}
	if !strings.Contains(empty.String(), "no data") {
		t.Error("empty figure not handled")
	}
}
