package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Bytes renders a byte count with a binary-prefix unit.
func Bytes(n int64) string {
	if n == 0 {
		return ""
	}
	v := float64(n)
	for _, unit := range []string{"B", "KiB", "MiB", "GiB"} {
		if v < 1024 || unit == "GiB" {
			if unit == "B" {
				return fmt.Sprintf("%.0f %s", v, unit)
			}
			return fmt.Sprintf("%.1f %s", v, unit)
		}
		v /= 1024
	}
	return ""
}

// TimelineBar is one operation on a timeline track.
type TimelineBar struct {
	Track   string
	Label   string
	StartNs float64
	DurNs   float64
}

// Timeline renders operations against a shared virtual-time axis as an
// ASCII Gantt chart: one line per bar, positioned proportionally within
// the [start, end) window, grouped by track. It is the terminal companion
// to the Chrome-trace export.
type Timeline struct {
	Title   string
	StartNs float64
	EndNs   float64
	// Width is the number of columns for the bar area (default 60).
	Width int
	bars  []TimelineBar
}

// NewTimeline creates a timeline over the [startNs, endNs) window.
func NewTimeline(title string, startNs, endNs float64) *Timeline {
	return &Timeline{Title: title, StartNs: startNs, EndNs: endNs}
}

// Add appends one bar. Bars outside the window are clipped; fully-outside
// bars are dropped at render time.
func (tl *Timeline) Add(track, label string, startNs, durNs float64) {
	tl.bars = append(tl.bars, TimelineBar{Track: track, Label: label, StartNs: startNs, DurNs: durNs})
}

// Len returns the number of bars added.
func (tl *Timeline) Len() int { return len(tl.bars) }

// WriteTo renders the chart.
func (tl *Timeline) WriteTo(w io.Writer) (int64, error) {
	width := tl.Width
	if width <= 0 {
		width = 60
	}
	span := tl.EndNs - tl.StartNs
	if span <= 0 {
		n, err := fmt.Fprintf(w, "%s (empty window)\n", tl.Title)
		return int64(n), err
	}

	// Group bars by track in first-seen order, keep start order inside.
	trackOrder := []string{}
	byTrack := map[string][]TimelineBar{}
	for _, b := range tl.bars {
		if b.StartNs >= tl.EndNs || b.StartNs+b.DurNs < tl.StartNs {
			continue
		}
		if _, ok := byTrack[b.Track]; !ok {
			trackOrder = append(trackOrder, b.Track)
		}
		byTrack[b.Track] = append(byTrack[b.Track], b)
	}

	labelW, trackW := 0, 0
	for _, b := range tl.bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		if len(b.Track) > trackW {
			trackW = len(b.Track)
		}
	}
	if labelW > 34 {
		labelW = 34
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", tl.Title)
	fmt.Fprintf(&sb, "window %.3f–%.3f ms (%.3f ms, %d cols ⇒ %.4f ms/col)\n",
		tl.StartNs/1e6, tl.EndNs/1e6, span/1e6, width, span/1e6/float64(width))
	for _, track := range trackOrder {
		bars := byTrack[track]
		sort.SliceStable(bars, func(i, j int) bool { return bars[i].StartNs < bars[j].StartNs })
		for _, b := range bars {
			lo := int((b.StartNs - tl.StartNs) / span * float64(width))
			hi := int((b.StartNs + b.DurNs - tl.StartNs) / span * float64(width))
			if lo < 0 {
				lo = 0
			}
			if hi > width {
				hi = width
			}
			if hi <= lo {
				hi = lo + 1 // even instantaneous ops get one visible tick
			}
			if lo >= width {
				lo, hi = width-1, width
			}
			bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", width-hi)
			label := b.Label
			if len(label) > labelW {
				label = label[:labelW-1] + "…"
			}
			fmt.Fprintf(&sb, "%-*s  %-*s %9.4f ms |%s|\n", trackW, track, labelW, label, b.DurNs/1e6, bar)
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the timeline to a string.
func (tl *Timeline) String() string {
	var b strings.Builder
	if _, err := tl.WriteTo(&b); err != nil {
		return ""
	}
	return b.String()
}
