package report_test

import (
	"strings"
	"testing"

	"hetbench/internal/report"
	"hetbench/internal/sched"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// A co-executed launch produces kernel spans on both the host and the
// accelerator tracks of the same run, and the Timeline must render them as
// time-overlapping bars — both anchored at the split's start, one line per
// device. This is the Gantt view the coexec experiment leans on.
func TestTimelineRendersOverlappingDeviceSpans(t *testing.T) {
	m := sim.NewDGPU()
	tr := trace.New()
	m.SetTracer(tr)
	m.SetCoexec(sched.New(sched.Config{Policy: sched.Static}))

	cost := timing.KernelCost{
		Items: 1 << 14, SPFlops: 8, LoadBytes: 64, StoreBytes: 8,
		Instrs: 24, MissRate: 0.8, Coalesce: 0.95,
	}
	if _, ok := m.LaunchKernelSplit("axpy", cost, cost); !ok {
		t.Fatal("split launch did not run")
	}

	spans := tr.Spans()
	var host, accel []trace.Span
	for _, s := range spans {
		if !strings.HasPrefix(s.Name, "axpy#") {
			continue
		}
		switch s.Track {
		case trace.TrackHost:
			host = append(host, s)
		case trace.TrackAccelerator:
			accel = append(accel, s)
		}
	}
	if len(host) == 0 || len(accel) == 0 {
		t.Fatalf("expected chunk spans on both tracks, got host=%d accel=%d", len(host), len(accel))
	}
	// The static split starts both devices at the queue origin: the first
	// chunk on each track must overlap in time.
	h, a := host[0], accel[0]
	if h.StartNs >= a.StartNs+a.DurNs || a.StartNs >= h.StartNs+h.DurNs {
		t.Fatalf("device spans do not overlap: host [%g,%g) accel [%g,%g)",
			h.StartNs, h.StartNs+h.DurNs, a.StartNs, a.StartNs+a.DurNs)
	}

	end := h.StartNs + h.DurNs
	if e := a.StartNs + a.DurNs; e > end {
		end = e
	}
	tl := report.NewTimeline("co-executed axpy", h.StartNs, end)
	for _, s := range append(host, accel...) {
		tl.Add(s.Track, s.Name, s.StartNs, s.DurNs)
	}
	out := tl.String()

	var hostBar, accelBar string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, trace.TrackHost) && hostBar == "" {
			hostBar = l[strings.Index(l, "|"):]
		}
		if strings.HasPrefix(l, trace.TrackAccelerator) && accelBar == "" {
			accelBar = l[strings.Index(l, "|"):]
		}
	}
	if hostBar == "" || accelBar == "" {
		t.Fatalf("timeline missing a device track:\n%s", out)
	}
	// Both first chunks start at the window origin, so both bars must be
	// anchored at column 0 — the rendered picture of device overlap.
	if !strings.HasPrefix(hostBar, "|#") || !strings.HasPrefix(accelBar, "|#") {
		t.Fatalf("device bars not anchored at the split start:\n%s", out)
	}
}
