package report

import (
	"strings"
	"testing"
)

func TestTimelineRender(t *testing.T) {
	tl := NewTimeline("iteration 7", 0, 1e6)
	tl.Add("accelerator", "kernelA", 0, 4e5)
	tl.Add("accelerator", "kernelB", 4e5, 2e5)
	tl.Add("pcie", "buf (h2d)", 6e5, 4e5)
	tl.Add("pcie", "outside", 2e6, 1e5) // clipped: starts past the window
	out := tl.String()

	if !strings.Contains(out, "iteration 7") {
		t.Error("title missing")
	}
	for _, want := range []string{"kernelA", "kernelB", "buf (h2d)", "accelerator", "pcie"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "outside") {
		t.Error("bar outside the window not clipped")
	}
	// kernelA occupies the window's first 40%: its bar must start at
	// column 0 and kernelB's after it.
	lines := strings.Split(out, "\n")
	var aBar, bBar string
	for _, l := range lines {
		if strings.Contains(l, "kernelA") {
			aBar = l[strings.Index(l, "|"):]
		}
		if strings.Contains(l, "kernelB") {
			bBar = l[strings.Index(l, "|"):]
		}
	}
	if !strings.HasPrefix(aBar, "|#") {
		t.Errorf("kernelA bar not anchored at window start: %q", aBar)
	}
	if strings.HasPrefix(bBar, "|#") {
		t.Errorf("kernelB bar overlaps window start: %q", bBar)
	}
	// Proportionality: kernelA's bar is twice kernelB's.
	na, nb := strings.Count(aBar, "#"), strings.Count(bBar, "#")
	if na != 2*nb {
		t.Errorf("bar widths not proportional: A=%d B=%d", na, nb)
	}
}

func TestTimelineEmptyWindow(t *testing.T) {
	tl := NewTimeline("empty", 5, 5)
	if out := tl.String(); !strings.Contains(out, "empty window") {
		t.Errorf("degenerate window render: %q", out)
	}
}

func TestBytes(t *testing.T) {
	for n, want := range map[int64]string{
		0:       "",
		512:     "512 B",
		4096:    "4.0 KiB",
		3 << 20: "3.0 MiB",
		5 << 30: "5.0 GiB",
	} {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}
