package sched

// DAG-aware planning: placing the kernels of a multi-kernel workload on
// the two devices of a machine so that independent kernels overlap, while
// dependent kernels wait for their producers. This extends the package's
// single-kernel iteration-space splitting to whole workloads (ROADMAP
// item 2): where LaunchSplit carves one launch into chunks, a DagPlanner
// schedules many launches over the same pair of per-device virtual command
// queues (sim.DagQueue).
//
// The three policies reuse the package vocabulary at kernel granularity:
//
//   - Static places each kernel on the device with the larger Shares-
//     normalized roofline rate for that exact kernel, ignoring queue
//     state — the cheapest rule, and the one a placement file could
//     precompute.
//   - Dynamic picks, for each ready kernel in spec order, the device that
//     finishes it earliest given both queues' booked work — list
//     scheduling with earliest-finish-time placement.
//   - HGuided adds a priority: ready kernels are drained in descending
//     bottom-level order (the longest dependent chain below each kernel,
//     a HEFT-style rank), so critical-path kernels book first and the
//     short side fills around them; placement is earliest-finish-time.
//
// All three are deterministic: ties break toward the lower kernel index,
// and no randomness is drawn. The planner is fault-aware the same way the
// chunk scheduler is: a kernel about to be issued to an accelerator that
// sits inside a device-loss window is rebooked on the host (or, when the
// spec pins it to the accelerator, waits the window out).

import (
	"fmt"
	"sync"

	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// Placement constrains which device may run a DAG kernel (the workload
// spec's HeteroBench-style per-kernel device field).
type Placement int

// Placements.
const (
	// PlaceAny lets the planner choose the device.
	PlaceAny Placement = iota
	// PlaceHost pins the kernel to the host CPU.
	PlaceHost
	// PlaceAccel pins the kernel to the accelerator.
	PlaceAccel
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case PlaceAny:
		return "any"
	case PlaceHost:
		return "host"
	case PlaceAccel:
		return "accel"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// DagKernel is one node of a DAG launch: the same kernel costed for both
// devices, the indices of the kernels that must finish before it starts,
// and any placement constraint.
type DagKernel struct {
	Name  string
	Accel timing.KernelCost
	Host  timing.KernelCost
	Deps  []int
	Place Placement
}

// DagLaunch is one multi-kernel workload handed to a DagPlanner. Kernels
// reference each other by slice index; the graph must be acyclic (the
// workload compiler guarantees it — a cycle is a programming error here
// and panics).
type DagLaunch struct {
	Name    string
	Kernels []DagKernel

	// Stage, when non-nil, books the staging transfers kernel k needs
	// before it can start on the chosen device, and returns the kernel's
	// ready time after them (relative to q.StartNs()). The interpreter
	// uses it to price each model's data-movement strategy per edge; the
	// planner calls it exactly once per kernel, in booking order, after
	// the device decision and before the kernel itself is booked.
	Stage func(q *sim.DagQueue, k int, t sim.Target, readyNs float64) float64

	// OnKernel, when non-nil, observes every booking in booking order:
	// the queue pair, the kernel index, the device it booked on, and
	// whether a device-loss window rebooked it host-ward. It runs right
	// after the kernel books, so an observer may append trailing work to
	// the same device queue (OpenACC-style region-exit copies). Observers
	// must not block; they run inside the planning loop.
	OnKernel func(q *sim.DagQueue, k int, t sim.Target, rebooked bool)
}

// DagStats tallies DAG scheduling decisions over a planner's lifetime.
type DagStats struct {
	Launches     int     // DAG workloads planned
	Kernels      int     // kernels booked on either device
	Edges        int     // dependency edges honored
	HostKernels  int     // kernels run on the host CPU
	AccelKernels int     // kernels run on the accelerator
	Rebooked     int     // kernels rebooked host-ward by a device-loss window
	HostNs       float64 // host queue busy time
	AccelNs      float64 // accelerator queue busy time
	IdleNs       float64 // dependency-wait gaps on both queues
}

// DagResult describes one planned launch: its makespan and the per-kernel
// schedule (device and completion time, in kernel-index order).
type DagResult struct {
	MakespanNs float64
	Target     []sim.Target
	FinishNs   []float64
	Stats      DagStats // this launch only
}

// DagPlanner schedules DAG launches on a machine's queue pair. One
// planner may serve many launches (and machines); Stats accumulate
// across all of them. Config is reused from the chunk scheduler: only
// Policy matters here — the chunking knobs (HostFraction, Chunks,
// MinChunkItems) apply to iteration-space splitting, not to whole-kernel
// placement, and are ignored.
type DagPlanner struct {
	cfg Config

	mu    sync.Mutex
	stats DagStats
}

// NewDag builds a DAG planner, panicking on an invalid config.
func NewDag(cfg Config) *DagPlanner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DagPlanner{cfg: cfg}
}

// Config returns the planner's configuration.
func (p *DagPlanner) Config() Config { return p.cfg }

// Stats returns the lifetime decision tallies.
func (p *DagPlanner) Stats() DagStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Run schedules one DAG launch on the machine's queue pair and returns
// the schedule. The machine clock advances by the makespan.
func (p *DagPlanner) Run(m *sim.Machine, l DagLaunch) DagResult {
	n := len(l.Kernels)
	if n == 0 {
		panic(fmt.Sprintf("sched: DAG launch %q with no kernels", l.Name))
	}
	// Dependency bookkeeping: indegrees drive the ready set, successor
	// lists propagate completions.
	indeg := make([]int, n)
	succ := make([][]int, n)
	edges := 0
	for k, kern := range l.Kernels {
		for _, d := range kern.Deps {
			if d < 0 || d >= n || d == k {
				panic(fmt.Sprintf("sched: DAG launch %q kernel %d has invalid dep %d", l.Name, k, d))
			}
			indeg[k]++
			succ[d] = append(succ[d], k)
			edges++
		}
	}

	// Per-kernel roofline previews on both devices: the rates behind the
	// static Shares placement and the EFT look-ahead.
	hostNs := make([]float64, n)
	accelNs := make([]float64, n)
	for k, kern := range l.Kernels {
		hostNs[k] = m.HostModel().Kernel(kern.Host).TimeNs
		accelNs[k] = m.AcceleratorModel().Kernel(kern.Accel).TimeNs
	}

	// HGuided priority: bottom level — the kernel's own best-device time
	// plus the longest chain below it. Computed over a reverse pass; Deps
	// edges always point at earlier schedulable work, so iterating until
	// a fixed point in reverse index order is unnecessary: compute by
	// topological sweep using Kahn order from the sinks. Simpler: since
	// the graph is acyclic, a memoized recursion is exact and cheap.
	var prio []float64
	if p.cfg.Policy == HGuided {
		prio = make([]float64, n)
		state := make([]int, n) // 0 unvisited, 1 in progress, 2 done
		var bottom func(k int) float64
		bottom = func(k int) float64 {
			switch state[k] {
			case 2:
				return prio[k]
			case 1:
				panic(fmt.Sprintf("sched: DAG launch %q has a dependency cycle through kernel %d", l.Name, k))
			}
			state[k] = 1
			best := accelNs[k]
			if hostNs[k] < best {
				best = hostNs[k]
			}
			longest := 0.0
			for _, s := range succ[k] {
				if b := bottom(s); b > longest {
					longest = b
				}
			}
			prio[k] = best + longest
			state[k] = 2
			return prio[k]
		}
		for k := 0; k < n; k++ {
			bottom(k)
		}
	}

	q := m.BeginDag()
	inj := m.FaultInjector()
	finish := make([]float64, n)
	target := make([]sim.Target, n)
	booked := make([]bool, n)
	var st DagStats
	st.Launches, st.Kernels, st.Edges = 1, n, edges

	for done := 0; done < n; done++ {
		// Pick the next ready kernel deterministically: lowest index, or
		// under HGuided the highest bottom-level (ties toward the lower
		// index). A pass with no ready kernel means a cycle.
		pick := -1
		for k := 0; k < n; k++ {
			if booked[k] || indeg[k] != 0 {
				continue
			}
			if pick < 0 || (prio != nil && prio[k] > prio[pick]) {
				pick = k
			}
		}
		if pick < 0 {
			panic(fmt.Sprintf("sched: DAG launch %q has a dependency cycle (%d of %d kernels schedulable)", l.Name, done, n))
		}
		kern := l.Kernels[pick]
		ready := 0.0
		for _, d := range kern.Deps {
			if finish[d] > ready {
				ready = finish[d]
			}
		}

		t := p.placeDag(q, kern, ready, hostNs[pick], accelNs[pick])
		rebooked := false
		if t == sim.OnAccelerator && inj != nil {
			// The accelerator is inside a loss window at the instant this
			// kernel would be issued: an unconstrained kernel rebooks on
			// the host; a pinned one waits the window out.
			start := q.AvailNs(sim.OnAccelerator)
			if ready > start {
				start = ready
			}
			if until := inj.LostUntilNs(); until > q.StartNs()+start {
				if kern.Place == PlaceAccel {
					ready = until - q.StartNs()
				} else {
					t, rebooked = sim.OnHost, true
					st.Rebooked++
				}
			}
		}
		if l.Stage != nil {
			ready = l.Stage(q, pick, t, ready)
		}
		cost := kern.Accel
		if t == sim.OnHost {
			cost = kern.Host
		}
		_, fin := q.RunKernel(t, kern.Name, cost, ready)
		finish[pick], target[pick], booked[pick] = fin, t, true
		if t == sim.OnHost {
			st.HostKernels++
		} else {
			st.AccelKernels++
		}
		if l.OnKernel != nil {
			l.OnKernel(q, pick, t, rebooked)
		}
		for _, s := range succ[pick] {
			indeg[s]--
		}
	}

	st.HostNs = q.AvailNs(sim.OnHost)
	st.AccelNs = q.AvailNs(sim.OnAccelerator)
	st.IdleNs = q.IdleNs(sim.OnHost) + q.IdleNs(sim.OnAccelerator)
	wall := q.Merge()

	p.mu.Lock()
	p.stats.Launches += st.Launches
	p.stats.Kernels += st.Kernels
	p.stats.Edges += st.Edges
	p.stats.HostKernels += st.HostKernels
	p.stats.AccelKernels += st.AccelKernels
	p.stats.Rebooked += st.Rebooked
	p.stats.HostNs += st.HostNs
	p.stats.AccelNs += st.AccelNs
	p.stats.IdleNs += st.IdleNs
	p.mu.Unlock()

	if tr := m.Tracer(); tr != nil {
		reg := tr.Metrics()
		reg.Add(trace.CtrDagLaunches, 1)
		reg.Add(trace.CtrDagKernels, float64(st.Kernels))
		reg.Add(trace.CtrDagEdges, float64(st.Edges))
		reg.Add(trace.CtrDagHostKernels, float64(st.HostKernels))
		reg.Add(trace.CtrDagAccelKernels, float64(st.AccelKernels))
		reg.Add(trace.CtrDagRebooked, float64(st.Rebooked))
		reg.Add(trace.CtrDagIdleNs, st.IdleNs)
	}

	return DagResult{MakespanNs: wall, Target: target, FinishNs: finish, Stats: st}
}

// placeDag chooses the device for one ready kernel. Placement constraints
// win; otherwise Static uses the Shares-normalized roofline rates alone,
// and the adaptive policies use earliest finish time over the queue
// state (staging cost is not previewed — it is strategy-dependent and
// booked by the interpreter after the decision).
func (p *DagPlanner) placeDag(q *sim.DagQueue, kern DagKernel, ready, hostNs, accelNs float64) sim.Target {
	switch kern.Place {
	case PlaceHost:
		return sim.OnHost
	case PlaceAccel:
		return sim.OnAccelerator
	}
	switch p.cfg.Policy {
	case Static:
		items := float64(kern.Accel.Items)
		shares := Shares([]float64{items / hostNs, items / accelNs})
		if shares[0] > shares[1] {
			return sim.OnHost
		}
		return sim.OnAccelerator
	case Dynamic, HGuided:
		hStart, aStart := q.AvailNs(sim.OnHost), q.AvailNs(sim.OnAccelerator)
		if ready > hStart {
			hStart = ready
		}
		if ready > aStart {
			aStart = ready
		}
		if hStart+hostNs < aStart+accelNs {
			return sim.OnHost
		}
		return sim.OnAccelerator
	default:
		panic(fmt.Sprintf("sched: unknown policy %v", p.cfg.Policy))
	}
}
