package sched

import (
	"math/rand"
	"testing"

	"hetbench/internal/fault"
	"hetbench/internal/sim"
)

// randomDag draws a random acyclic launch: edges only point from lower to
// higher indices, so the graph is a DAG by construction; a sprinkle of
// kernels carries a placement pin.
func randomDag(rng *rand.Rand, n int) DagLaunch {
	kernels := make([]DagKernel, n)
	for k := 0; k < n; k++ {
		items := 1 + rng.Intn(1<<14)
		kernels[k] = DagKernel{
			Name:  "k",
			Accel: randomCost(rng, items),
			Host:  randomCost(rng, items),
		}
		for d := 0; d < k; d++ {
			if rng.Float64() < 0.3 {
				kernels[k].Deps = append(kernels[k].Deps, d)
			}
		}
		switch rng.Intn(8) {
		case 0:
			kernels[k].Place = PlaceHost
		case 1:
			kernels[k].Place = PlaceAccel
		}
	}
	return DagLaunch{Name: "random", Kernels: kernels}
}

// TestDagProperties drives every policy over random DAG shapes and checks
// the invariants the dag experiment rests on:
//
//   - exactly once: every kernel books on exactly one device, and the
//     booking stream agrees with Target/FinishNs and the Stats tallies;
//   - dependency order: no kernel finishes before a dependency (in-order
//     queues start each kernel no earlier than its ready time, so finish
//     times suffice), and every booking follows its deps in stream order;
//   - constraints win: pinned kernels land on their device;
//   - the makespan is the longer queue, and it never beats the critical
//     path's best-device lower bound.
func TestDagProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	machines := []func() *sim.Machine{sim.NewAPU, sim.NewDGPU}
	policies := []Policy{Static, Dynamic, HGuided}

	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		l := randomDag(rng, n)
		mk := machines[rng.Intn(len(machines))]
		for _, pol := range policies {
			var order []int
			booked := make(map[int]int, n)
			l.OnKernel = func(q *sim.DagQueue, k int, tg sim.Target, rebooked bool) {
				order = append(order, k)
				booked[k]++
				if rebooked {
					t.Errorf("policy %v: kernel %d rebooked with no injector attached", pol, k)
				}
			}
			m := mk()
			p := NewDag(Config{Policy: pol})
			res := p.Run(m, l)

			if len(order) != n {
				t.Fatalf("policy %v: booked %d of %d kernels", pol, len(order), n)
			}
			for k := 0; k < n; k++ {
				if booked[k] != 1 {
					t.Errorf("policy %v: kernel %d booked %d times", pol, k, booked[k])
				}
			}
			pos := make([]int, n)
			for i, k := range order {
				pos[k] = i
			}
			for k, kern := range l.Kernels {
				for _, d := range kern.Deps {
					if pos[d] >= pos[k] {
						t.Errorf("policy %v: kernel %d booked before its dep %d", pol, k, d)
					}
					if res.FinishNs[d] > res.FinishNs[k] {
						t.Errorf("policy %v: kernel %d finishes at %g before dep %d at %g",
							pol, k, res.FinishNs[k], d, res.FinishNs[d])
					}
				}
				switch kern.Place {
				case PlaceHost:
					if res.Target[k] != sim.OnHost {
						t.Errorf("policy %v: host-pinned kernel %d ran on %v", pol, k, res.Target[k])
					}
				case PlaceAccel:
					if res.Target[k] != sim.OnAccelerator {
						t.Errorf("policy %v: accel-pinned kernel %d ran on %v", pol, k, res.Target[k])
					}
				}
			}
			if res.Stats.HostKernels+res.Stats.AccelKernels != n {
				t.Errorf("policy %v: stats count %d+%d kernels, want %d",
					pol, res.Stats.HostKernels, res.Stats.AccelKernels, n)
			}
			if got := res.Stats.HostNs; got > res.MakespanNs+1e-9 {
				t.Errorf("policy %v: host queue %g outruns makespan %g", pol, got, res.MakespanNs)
			}
			if got := res.Stats.AccelNs; got > res.MakespanNs+1e-9 {
				t.Errorf("policy %v: accel queue %g outruns makespan %g", pol, got, res.MakespanNs)
			}
			// Lower bound: the critical path, each kernel at its faster
			// device's time, can never be beaten.
			hostM, accelM := m.HostModel(), m.AcceleratorModel()
			best := make([]float64, n)
			var bound float64
			for _, k := range order {
				h := hostM.Kernel(l.Kernels[k].Host).TimeNs
				a := accelM.Kernel(l.Kernels[k].Accel).TimeNs
				min := h
				if a < min {
					min = a
				}
				longest := 0.0
				for _, d := range l.Kernels[k].Deps {
					if best[d] > longest {
						longest = best[d]
					}
				}
				best[k] = longest + min
				if best[k] > bound {
					bound = best[k]
				}
			}
			if res.MakespanNs < bound-1e-6 {
				t.Errorf("policy %v: makespan %g beats the critical-path bound %g", pol, res.MakespanNs, bound)
			}
		}
	}
}

// TestDagDeterministic replays one launch per policy on fresh machines
// and demands bit-identical schedules.
func TestDagDeterministic(t *testing.T) {
	for _, pol := range []Policy{Static, Dynamic, HGuided} {
		rng := rand.New(rand.NewSource(23))
		l := randomDag(rng, 10)
		var first DagResult
		for i := 0; i < 5; i++ {
			res := NewDag(Config{Policy: pol}).Run(sim.NewDGPU(), l)
			if i == 0 {
				first = res
				continue
			}
			if res.MakespanNs != first.MakespanNs {
				t.Fatalf("policy %v run %d: makespan %g != %g", pol, i, res.MakespanNs, first.MakespanNs)
			}
			for k := range res.Target {
				if res.Target[k] != first.Target[k] || res.FinishNs[k] != first.FinishNs[k] {
					t.Fatalf("policy %v run %d: kernel %d schedule differs", pol, i, k)
				}
			}
		}
	}
}

// TestDagRebooking opens a device-loss window at t=0 and checks the
// fault-aware path: unconstrained kernels issued inside the window rebook
// on the host, accel-pinned kernels wait the window out instead, and
// kernels issued after the window return to the accelerator.
func TestDagRebooking(t *testing.T) {
	const windowNs = 1e6
	inj := fault.New(fault.Config{Seed: 3, DeviceLossRate: 0.5, DeviceLossNs: windowNs})
	for inj.LostUntilNs() == 0 {
		inj.Launch(0)
	}
	m := sim.NewDGPU()
	m.SetFaultInjector(inj, fault.DefaultPolicy())

	rng := rand.New(rand.NewSource(5))
	big := randomCost(rng, 1<<16)
	l := DagLaunch{
		Name: "loss",
		Kernels: []DagKernel{
			{Name: "a", Accel: big, Host: big},
			{Name: "pinned", Accel: big, Host: big, Place: PlaceAccel},
			{Name: "late", Accel: big, Host: big, Deps: []int{1}},
		},
	}
	var events []struct {
		k        int
		t        sim.Target
		rebooked bool
	}
	l.OnKernel = func(q *sim.DagQueue, k int, tg sim.Target, rebooked bool) {
		events = append(events, struct {
			k        int
			t        sim.Target
			rebooked bool
		}{k, tg, rebooked})
	}
	res := NewDag(Config{Policy: Dynamic}).Run(m, l)

	if res.Stats.Rebooked == 0 {
		t.Fatal("no kernel rebooked despite the open loss window")
	}
	if res.Target[0] != sim.OnHost {
		t.Errorf("unconstrained kernel issued in the window ran on %v, want host", res.Target[0])
	}
	if res.Target[1] != sim.OnAccelerator {
		t.Errorf("accel-pinned kernel ran on %v, want accelerator", res.Target[1])
	}
	// The pinned kernel waited the window out rather than rebooking.
	if res.FinishNs[1] < windowNs {
		t.Errorf("pinned kernel finished at %g ns, inside the %g ns loss window", res.FinishNs[1], windowNs)
	}
	for _, e := range events {
		if e.rebooked && e.t != sim.OnHost {
			t.Errorf("kernel %d reported rebooked but ran on %v", e.k, e.t)
		}
	}
	// A dependent of the pinned kernel becomes ready after the window and
	// is free to use the accelerator again.
	if res.FinishNs[2] <= res.FinishNs[1] {
		t.Errorf("dependent kernel finished at %g, not after its dep at %g", res.FinishNs[2], res.FinishNs[1])
	}
}
