package sched

import (
	"math/rand"
	"testing"

	"hetbench/internal/fault"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
)

// randomCost draws a valid kernel-cost shape: anything from tiny
// compute-bound stencils to scattered memory-bound gathers.
func randomCost(rng *rand.Rand, items int) timing.KernelCost {
	return timing.KernelCost{
		Items:          items,
		SPFlops:        rng.Float64() * 64,
		DPFlops:        rng.Float64() * 16,
		LoadBytes:      1 + rng.Float64()*512,
		StoreBytes:     rng.Float64() * 64,
		LDSBytes:       rng.Float64() * 32,
		Instrs:         1 + rng.Float64()*256,
		MissRate:       rng.Float64(),
		Coalesce:       1.0/16 + rng.Float64()*15.0/16,
		VecEff:         0.25 + rng.Float64()*0.75,
		MemEff:         0.25 + rng.Float64()*0.75,
		SerialFraction: rng.Float64() * 0.5,
	}
}

// recordedChunk is one OnChunk observation.
type recordedChunk struct {
	t        sim.Target
	n        int
	migrated bool
}

// TestPartitionProperties drives every policy over random kernel shapes and
// checks the invariants the co-execution results rest on:
//
//   - exact coverage: the booked chunks partition the iteration space (no
//     item lost, none run twice), and Stats agrees with the OnChunk stream;
//   - wavefront alignment: at most one chunk per launch carries a partial
//     wavefront (the remainder), whenever the launch spans at least one;
//   - bounded makespan: the merged wall time never exceeds the slower
//     device running the whole launch alone plus per-chunk launch slack —
//     splitting can be useless on degenerate shapes, but never ruinous.
func TestPartitionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	machines := []func() *sim.Machine{sim.NewAPU, sim.NewDGPU}
	policies := []Policy{Static, Dynamic, HGuided}

	for trial := 0; trial < 50; trial++ {
		items := 1 + rng.Intn(1<<16)
		mk := machines[rng.Intn(len(machines))]
		cost := randomCost(rng, items)
		for _, pol := range policies {
			var chunks []recordedChunk
			s := New(Config{Policy: pol, OnChunk: func(tg sim.Target, n int, mig bool) {
				chunks = append(chunks, recordedChunk{tg, n, mig})
			}})
			m := mk()
			m.SetCoexec(s)
			r, ok := m.LaunchKernelSplit("prop", cost, cost)
			if !ok {
				t.Fatalf("trial %d %v: split launch not routed", trial, pol)
			}

			// Coverage: chunks partition the launch exactly, per device and
			// in total, and the observer saw every booking.
			var sum int
			byTarget := map[sim.Target]int64{}
			offWave := 0
			wf := m.Accelerator().WavefrontSize
			for _, c := range chunks {
				if c.n <= 0 {
					t.Fatalf("trial %d %v: empty chunk booked: %+v", trial, pol, c)
				}
				if c.migrated {
					t.Fatalf("trial %d %v: chunk migrated with no fault injector", trial, pol)
				}
				sum += c.n
				byTarget[c.t] += int64(c.n)
				if c.n%wf != 0 {
					offWave++
				}
			}
			if sum != items {
				t.Fatalf("trial %d %v (%d items): chunks sum to %d", trial, pol, items, sum)
			}
			st := s.Stats()
			if st.HostItems != byTarget[sim.OnHost] || st.AccelItems != byTarget[sim.OnAccelerator] {
				t.Fatalf("trial %d %v: stats %+v disagree with observed chunks %v", trial, pol, st, byTarget)
			}
			if st.HostItems+st.AccelItems != int64(items) {
				t.Fatalf("trial %d %v: stats cover %d of %d items", trial, pol, st.HostItems+st.AccelItems, items)
			}
			if st.Chunks != len(chunks) {
				t.Fatalf("trial %d %v: OnChunk saw %d bookings, stats counted %d", trial, pol, len(chunks), st.Chunks)
			}

			// Alignment: only the remainder may be off-wavefront.
			if items >= wf && offWave > 1 {
				t.Errorf("trial %d %v (%d items, wf %d): %d chunks off wavefront alignment",
					trial, pol, items, wf, offWave)
			}

			// Makespan: each device's busy time is at most running the whole
			// launch alone plus one launch overhead per chunk (a wf-sized
			// launch bounds the fixed cost), so the merged wall time is too.
			hostAlone := m.HostModel().Kernel(cost).TimeNs
			accelAlone := m.AcceleratorModel().Kernel(cost).TimeNs
			worstAlone := hostAlone
			if accelAlone > worstAlone {
				worstAlone = accelAlone
			}
			unit := m.HostModel().Kernel(chunkCost(cost, wf)).TimeNs
			if a := m.AcceleratorModel().Kernel(chunkCost(cost, wf)).TimeNs; a > unit {
				unit = a
			}
			if bound := worstAlone + float64(st.Chunks)*unit; r.TimeNs > bound {
				t.Errorf("trial %d %v (%d items): makespan %g ns exceeds bound %g ns (alone %g, %d chunks)",
					trial, pol, items, r.TimeNs, bound, worstAlone, st.Chunks)
			}
		}
	}
}

// The OnChunk observer also reports migrations: with the accelerator inside
// a loss window, every observed chunk lands on the host flagged migrated.
func TestOnChunkReportsMigration(t *testing.T) {
	m := sim.NewDGPU()
	inj := fault.New(fault.Config{Seed: 1, DeviceLossRate: 0.75, DeviceLossNs: 1e12})
	m.SetFaultInjector(inj, fault.DefaultPolicy())
	opened := false
	for i := 0; i < 1000 && !opened; i++ {
		opened = inj.Launch(0) == fault.DeviceLost
	}
	if !opened {
		t.Fatal("no device loss drawn in 1000 tries at a 0.75 rate")
	}
	var chunks []recordedChunk
	s := New(Config{Policy: Dynamic, OnChunk: func(tg sim.Target, n int, mig bool) {
		chunks = append(chunks, recordedChunk{tg, n, mig})
	}})
	m.SetCoexec(s)
	if _, ok := m.LaunchKernelSplit("k", streamCost(1<<12), streamCost(1<<12)); !ok {
		t.Fatal("not routed")
	}
	if len(chunks) == 0 {
		t.Fatal("observer saw no chunks")
	}
	for _, c := range chunks {
		if c.t != sim.OnHost || !c.migrated {
			t.Fatalf("chunk %+v ran off-host or unflagged during a loss window", c)
		}
	}
}
