// Package sched is the co-execution scheduler: it splits one kernel
// launch's iteration space across the host CPU and the accelerator of a
// sim.Machine, in the spirit of EngineCL and Maat's CPU+GPU partitioners.
// Three policies are provided:
//
//   - Static: one chunk per device, sized by a fixed host fraction or, by
//     default, by the ratio of the two devices' roofline rates on this
//     exact kernel (each device's timing model evaluated on the full
//     launch — the same roofline the rest of the simulator runs on).
//   - Dynamic: the launch is carved into equal wavefront-aligned chunks
//     pulled from a shared queue; each chunk goes to whichever device's
//     virtual command queue finishes it earliest, so a slow device steals
//     proportionally less work.
//   - HGuided: like Dynamic but chunks shrink as the queue drains
//     (half the device's proportional share of the remainder, floored at
//     a minimum), giving big low-overhead chunks early and fine-grained
//     load balancing at the tail.
//
// The scheduler is fault-aware: when the machine's injector has the
// accelerator inside a device-loss window at the moment a chunk would be
// issued, that chunk and the rest of the pending queue migrate to the
// host instead of triggering the runtimes' whole-launch fallback path.
//
// All three policies are deterministic: they draw no randomness, so a run
// is bit-reproducible under any -seed (Config.Seed is reserved for future
// stochastic policies).
package sched

import (
	"fmt"
	"sync"

	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// Policy selects the partitioning strategy.
type Policy int

// Policies.
const (
	Static Policy = iota
	Dynamic
	HGuided
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case HGuided:
		return "hguided"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a flag string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "static":
		return Static, nil
	case "dynamic":
		return Dynamic, nil
	case "hguided":
		return HGuided, nil
	default:
		return 0, fmt.Errorf("sched: unknown policy %q (static|dynamic|hguided)", s)
	}
}

// Config parameterizes a Scheduler. The zero value is a valid Static
// scheduler with the roofline-derived fraction.
type Config struct {
	Policy Policy

	// HostFraction fixes the static policy's host share in (0,1]. Zero or
	// negative means "derive from the devices' roofline rates". Ignored by
	// the other policies.
	HostFraction float64

	// Chunks is the dynamic policy's target chunk count; the launch is cut
	// into ceil(items/Chunks) wavefront-aligned pieces. Defaults to 12.
	Chunks int

	// MinChunkItems floors the HGuided policy's shrinking chunks. Defaults
	// to one accelerator wavefront.
	MinChunkItems int

	// Seed is reserved for stochastic policies; the three shipped policies
	// are deterministic and never draw from it.
	Seed int64

	// OnChunk, when non-nil, observes every chunk the scheduler books, in
	// booking order: the device it ran on, its item count, and whether a
	// device-loss window rerouted it to the host. Observers must not block;
	// they run inside the planning loop.
	OnChunk func(t sim.Target, items int, migrated bool)
}

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if c.HostFraction > 1 {
		return fmt.Errorf("sched: HostFraction %g must be at most 1", c.HostFraction)
	}
	if c.Chunks < 0 {
		return fmt.Errorf("sched: Chunks %d must not be negative", c.Chunks)
	}
	if c.MinChunkItems < 0 {
		return fmt.Errorf("sched: MinChunkItems %d must not be negative", c.MinChunkItems)
	}
	return nil
}

// defaultChunks is the dynamic policy's chunk-count default: enough pieces
// for the fast device to steal at a fine grain, few enough that per-chunk
// bookkeeping stays negligible.
const defaultChunks = 12

// Shares normalizes device throughput rates into proportional work
// shares summing to 1 — the static-partitioning rule shared by every
// placement layer in the repo: the coexec scheduler's two-device split
// below and internal/fleet's cluster-granularity static balancer. A
// non-positive or NaN rate earns a zero share; if no rate is positive
// the shares are uniform, so a caller can always treat the result as a
// probability vector. The computation is pure float arithmetic in slice
// order, hence bit-deterministic.
func Shares(rates []float64) []float64 {
	out := make([]float64, len(rates))
	sum := 0.0
	for _, r := range rates {
		if r > 0 { // NaN-safe: NaN fails the comparison
			sum += r
		}
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, r := range rates {
		if r > 0 {
			out[i] = r / sum
		}
	}
	return out
}

// Stats tallies scheduling decisions over a Scheduler's lifetime.
type Stats struct {
	Splits     int     // launches split across the queue pair
	Chunks     int     // chunks booked on either device
	Migrated   int     // chunks rerouted to the host by a device-loss window
	HostItems  int64   // work items executed on the host CPU
	AccelItems int64   // work items executed on the accelerator
	HostNs     float64 // host queue busy time
	AccelNs    float64 // accelerator queue busy time
}

// HostShare is the fraction of work items the host executed.
func (s Stats) HostShare() float64 {
	total := s.HostItems + s.AccelItems
	if total == 0 {
		return 0
	}
	return float64(s.HostItems) / float64(total)
}

// Scheduler implements sim.CoexecPlanner. One scheduler may serve many
// launches (and machines); Stats accumulate across all of them.
type Scheduler struct {
	cfg Config

	mu    sync.Mutex
	stats Stats
}

// New builds a scheduler, panicking on an invalid config (a programming
// error, matching the substrate constructors).
func New(cfg Config) *Scheduler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Chunks == 0 {
		cfg.Chunks = defaultChunks
	}
	return &Scheduler{cfg: cfg}
}

// Config returns the scheduler's (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Stats returns the lifetime decision tallies.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// chunk is one scheduling decision: n items on target t.
type chunk struct {
	t        sim.Target
	n        int
	migrated bool
}

// LaunchSplit partitions one launch across the machine's queue pair and
// returns the merged timing (TimeNs is the makespan of the two queues).
func (s *Scheduler) LaunchSplit(m *sim.Machine, l sim.CoexecLaunch) timing.Result {
	items := l.Accel.Items
	if items <= 0 {
		panic(fmt.Sprintf("sched: split launch %q with %d items", l.Name, items))
	}
	q := m.BeginCoexec()

	// Roofline rates for this exact kernel: each device's timing model on
	// the full launch. These drive the static fraction and the HGuided
	// proportional shares.
	hostNs := m.HostModel().Kernel(l.Host).TimeNs
	accelNs := m.AcceleratorModel().Kernel(l.Accel).TimeNs
	hostRate := float64(items) / hostNs
	accelRate := float64(items) / accelNs

	// run books one decided chunk on the queue pair and tallies it. The
	// dynamic policies interleave deciding and booking because each
	// decision depends on the queue state the previous chunk left behind.
	var st Stats
	st.Splits = 1
	bound := map[string]float64{}
	var dram float64
	tracer := m.Tracer()
	run := func(c chunk) {
		cost := chunkCost(l.Accel, c.n)
		if c.t == sim.OnHost {
			cost = chunkCost(l.Host, c.n)
		}
		r := q.RunChunk(c.t, l.Name, cost)
		if tracer != nil {
			tracer.Metrics().Observe(trace.HistChunkNs, r.TimeNs)
		}
		st.Chunks++
		dram += r.DRAMBytes
		bound[r.Bound] += r.TimeNs
		if c.t == sim.OnHost {
			st.HostItems += int64(c.n)
		} else {
			st.AccelItems += int64(c.n)
		}
		if c.migrated {
			st.Migrated++
		}
		if s.cfg.OnChunk != nil {
			s.cfg.OnChunk(c.t, c.n, c.migrated)
		}
	}
	switch s.cfg.Policy {
	case Static:
		s.runStatic(m, q, items, hostRate, accelRate, run)
	case Dynamic:
		s.runDynamic(m, q, l, items, run)
	case HGuided:
		s.runHGuided(m, q, items, hostRate, accelRate, run)
	default:
		panic(fmt.Sprintf("sched: unknown policy %v", s.cfg.Policy))
	}
	st.HostNs = q.AvailNs(sim.OnHost)
	st.AccelNs = q.AvailNs(sim.OnAccelerator)
	wall := q.Merge()

	s.mu.Lock()
	s.stats.Splits += st.Splits
	s.stats.Chunks += st.Chunks
	s.stats.Migrated += st.Migrated
	s.stats.HostItems += st.HostItems
	s.stats.AccelItems += st.AccelItems
	s.stats.HostNs += st.HostNs
	s.stats.AccelNs += st.AccelNs
	s.mu.Unlock()

	if t := tracer; t != nil {
		reg := t.Metrics()
		reg.Add(trace.CtrSchedChunks, float64(st.Chunks))
		reg.Add(trace.CtrSchedHostItems, float64(st.HostItems))
		reg.Add(trace.CtrSchedAccelItems, float64(st.AccelItems))
		reg.Add(trace.CtrSchedHostNs, st.HostNs)
		reg.Add(trace.CtrSchedAccelNs, st.AccelNs)
		reg.Add(trace.CtrSchedMigrated, float64(st.Migrated))
	}

	// The merged result: the makespan, the dominant limiting resource and
	// the combined DRAM traffic of all chunks.
	major, majorNs := "mem", 0.0
	for b, ns := range bound {
		if ns > majorNs {
			major, majorNs = b, ns
		}
	}
	return timing.Result{TimeNs: wall, DRAMBytes: dram, Bound: major}
}

// runStatic carves one chunk per device with the host taking either the
// configured fraction or its roofline-proportional share. The host chunk
// snaps to the nearest wavefront multiple so at most the accelerator's
// chunk carries a partial wavefront, matching the dynamic policies'
// alignment guarantee.
func (s *Scheduler) runStatic(m *sim.Machine, q *sim.CoexecQueue, items int, hostRate, accelRate float64, run func(chunk)) {
	frac := s.cfg.HostFraction
	if frac <= 0 {
		frac = Shares([]float64{hostRate, accelRate})[0]
	}
	hostItems := int(frac*float64(items) + 0.5)
	if wf := m.Accelerator().WavefrontSize; wf > 1 && items >= wf {
		hostItems = (hostItems + wf/2) / wf * wf
	}
	if hostItems > items {
		hostItems = items
	}
	accelItems := items - hostItems
	if accelItems > 0 && accelLost(m, q) {
		// The accelerator is inside a loss window at issue time: its chunk
		// migrates to the host rather than bouncing through the runtimes'
		// retry/fallback machinery.
		run(chunk{t: sim.OnHost, n: accelItems, migrated: true})
	} else if accelItems > 0 {
		run(chunk{t: sim.OnAccelerator, n: accelItems})
	}
	if hostItems > 0 {
		run(chunk{t: sim.OnHost, n: hostItems})
	}
}

// runDynamic carves the launch into equal wavefront-aligned chunks and
// greedily assigns each to the device whose queue finishes it earliest —
// work-stealing between two in-order virtual command queues, resolved at
// plan time because the simulated queues are clairvoyant about duration.
func (s *Scheduler) runDynamic(m *sim.Machine, q *sim.CoexecQueue, l sim.CoexecLaunch, items int, run func(chunk)) {
	wf := m.Accelerator().WavefrontSize
	size := roundUp((items+s.cfg.Chunks-1)/s.cfg.Chunks, wf)
	for remaining := items; remaining > 0; {
		n := size
		if n > remaining {
			n = remaining
		}
		c := chunk{t: sim.OnAccelerator, n: n}
		if accelLost(m, q) {
			c.t, c.migrated = sim.OnHost, true
		} else {
			hFin := q.AvailNs(sim.OnHost) + q.ChunkTimeNs(sim.OnHost, chunkCost(l.Host, n))
			aFin := q.AvailNs(sim.OnAccelerator) + q.ChunkTimeNs(sim.OnAccelerator, chunkCost(l.Accel, n))
			if hFin < aFin {
				c.t = sim.OnHost
			}
		}
		run(c)
		remaining -= n
	}
}

// runHGuided assigns shrinking chunks: whenever a device frees up it
// takes half its rate-proportional share of the remaining items, floored
// at MinChunkItems — coarse chunks early (low bookkeeping), fine chunks
// at the tail (low imbalance).
func (s *Scheduler) runHGuided(m *sim.Machine, q *sim.CoexecQueue, items int, hostRate, accelRate float64, run func(chunk)) {
	wf := m.Accelerator().WavefrontSize
	minChunk := s.cfg.MinChunkItems
	if minChunk == 0 {
		minChunk = wf
	}
	shares := Shares([]float64{hostRate, accelRate})
	share := map[sim.Target]float64{
		sim.OnHost:        shares[0],
		sim.OnAccelerator: shares[1],
	}
	for remaining := items; remaining > 0; {
		c := chunk{t: sim.OnAccelerator}
		if accelLost(m, q) {
			c.t, c.migrated = sim.OnHost, true
		} else if q.AvailNs(sim.OnHost) < q.AvailNs(sim.OnAccelerator) {
			c.t = sim.OnHost
		}
		n := roundUp(int(float64(remaining)*share[c.t]/2), wf)
		if n < minChunk {
			n = minChunk
		}
		if n > remaining {
			n = remaining
		}
		c.n = n
		run(c)
		remaining -= n
	}
}

// accelLost reports whether the machine's fault injector has the
// accelerator inside a device-loss window at the instant its queue would
// issue the next chunk.
func accelLost(m *sim.Machine, q *sim.CoexecQueue) bool {
	inj := m.FaultInjector()
	if inj == nil {
		return false
	}
	return inj.LostUntilNs() > q.StartNs()+q.AvailNs(sim.OnAccelerator)
}

// chunkCost shrinks a full-launch cost to an n-item chunk; every other
// field is a per-item average, so the chunk's cost is exact.
func chunkCost(full timing.KernelCost, n int) timing.KernelCost {
	c := full
	c.Items = n
	return c
}

// roundUp rounds n up to a multiple of the wavefront size.
func roundUp(n, wf int) int {
	if wf <= 1 {
		return n
	}
	return (n + wf - 1) / wf * wf
}
