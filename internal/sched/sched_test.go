package sched

import (
	"testing"

	"hetbench/internal/fault"
	"hetbench/internal/sim"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// streamCost is a memory-bound launch shaped like the read-benchmark: the
// workload class the co-execution literature splits first.
func streamCost(items int) timing.KernelCost {
	return timing.KernelCost{
		Items: items, SPFlops: 64, LoadBytes: 512, StoreBytes: 8,
		Instrs: 132, MissRate: 0.9, Coalesce: 1, VecEff: 1,
	}
}

func launch(items int) sim.CoexecLaunch {
	return sim.CoexecLaunch{Name: "k", Accel: streamCost(items), Host: streamCost(items)}
}

// split runs one launch on a fresh machine under the config and returns
// (makespan, stats).
func split(t *testing.T, mk func() *sim.Machine, cfg Config, items int) (float64, Stats) {
	t.Helper()
	s := New(cfg)
	m := mk()
	m.SetCoexec(s)
	r, ok := m.LaunchKernelSplit("k", streamCost(items), streamCost(items))
	if !ok {
		t.Fatal("split launch not routed to the scheduler")
	}
	if got := m.ElapsedNs(); got != r.TimeNs {
		t.Fatalf("clock %g ns vs merged result %g ns", got, r.TimeNs)
	}
	return r.TimeNs, s.Stats()
}

func machines() map[string]func() *sim.Machine {
	return map[string]func() *sim.Machine{"APU": sim.NewAPU, "dGPU": sim.NewDGPU}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{Static, Dynamic, HGuided} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("round-robin"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

// Static with the roofline-derived fraction must give both devices work
// and finish no later than either device alone.
func TestStaticRooflineSplit(t *testing.T) {
	const items = 1 << 14
	for name, mk := range machines() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			accelOnly := m.AcceleratorModel().Kernel(streamCost(items)).TimeNs
			hostOnly := m.HostModel().Kernel(streamCost(items)).TimeNs
			wall, st := split(t, mk, Config{Policy: Static}, items)
			if st.HostItems == 0 || st.AccelItems == 0 {
				t.Fatalf("static split left a device idle: %+v", st)
			}
			if st.HostItems+st.AccelItems != items {
				t.Fatalf("split covers %d items, want %d", st.HostItems+st.AccelItems, items)
			}
			if wall >= accelOnly || wall >= hostOnly {
				t.Errorf("co-executed %g ns, not faster than accel-only %g / host-only %g", wall, accelOnly, hostOnly)
			}
		})
	}
}

func TestStaticFixedFraction(t *testing.T) {
	const items = 1 << 14
	_, st := split(t, sim.NewDGPU, Config{Policy: Static, HostFraction: 0.25}, items)
	if got := st.HostShare(); got < 0.24 || got > 0.26 {
		t.Errorf("host share %g, want ~0.25", got)
	}
}

// Dynamic must beat the worst fixed static split: the greedy queue never
// parks a large fraction on the slow device.
func TestDynamicBeatsWorstStatic(t *testing.T) {
	const items = 1 << 14
	for name, mk := range machines() {
		t.Run(name, func(t *testing.T) {
			worst := 0.0
			for _, frac := range []float64{0.25, 0.75} {
				wall, _ := split(t, mk, Config{Policy: Static, HostFraction: frac}, items)
				if wall > worst {
					worst = wall
				}
			}
			dyn, st := split(t, mk, Config{Policy: Dynamic}, items)
			if dyn >= worst {
				t.Errorf("dynamic %g ns not better than worst static %g ns", dyn, worst)
			}
			if st.Chunks < 2 {
				t.Errorf("dynamic booked %d chunks, want a carved queue", st.Chunks)
			}
		})
	}
}

// Chunks are wavefront-aligned except the final remainder.
func TestDynamicWavefrontAlignment(t *testing.T) {
	const items = 1<<12 + 17
	s := New(Config{Policy: Dynamic})
	m := sim.NewDGPU()
	wf := m.Accelerator().WavefrontSize
	tr := trace.New()
	m.SetTracer(tr)
	m.SetCoexec(s)
	if _, ok := m.LaunchKernelSplit("k", streamCost(items), streamCost(items)); !ok {
		t.Fatal("not routed")
	}
	var sum, offWave int
	for _, sp := range tr.Spans() {
		if sp.Kind != trace.KindKernel {
			continue
		}
		sum += sp.Items
		if sp.Items%wf != 0 {
			offWave++
		}
	}
	if sum != items {
		t.Fatalf("chunk items sum to %d, want %d", sum, items)
	}
	if offWave > 1 {
		t.Errorf("%d chunks off wavefront alignment, want at most the remainder", offWave)
	}
}

// HGuided shrinks chunks as the queue drains and still covers all items.
func TestHGuidedShrinksChunks(t *testing.T) {
	const items = 1 << 14
	s := New(Config{Policy: HGuided})
	m := sim.NewDGPU()
	tr := trace.New()
	m.SetTracer(tr)
	m.SetCoexec(s)
	if _, ok := m.LaunchKernelSplit("k", streamCost(items), streamCost(items)); !ok {
		t.Fatal("not routed")
	}
	var sizes []int
	sum := 0
	for _, sp := range tr.Spans() {
		if sp.Kind == trace.KindKernel {
			sizes = append(sizes, sp.Items)
			sum += sp.Items
		}
	}
	if sum != items {
		t.Fatalf("chunk items sum to %d, want %d", sum, items)
	}
	if len(sizes) < 3 {
		t.Fatalf("only %d chunks; hguided should carve several", len(sizes))
	}
	if first, last := sizes[0], sizes[len(sizes)-1]; last >= first {
		t.Errorf("chunks grew from %d to %d items; hguided must shrink", first, last)
	}
	// Makespan sanity: still beats the accelerator alone.
	accelOnly := sim.NewDGPU().AcceleratorModel().Kernel(streamCost(items)).TimeNs
	if got := m.ElapsedNs(); got >= accelOnly {
		t.Errorf("hguided %g ns, accel-only %g ns", got, accelOnly)
	}
}

// Two identical runs must make identical decisions — the determinism the
// coexec experiment's bit-reproducibility contract rests on.
func TestSchedulerDeterminism(t *testing.T) {
	for _, pol := range []Policy{Static, Dynamic, HGuided} {
		w1, s1 := split(t, sim.NewDGPU, Config{Policy: pol}, 1<<14)
		w2, s2 := split(t, sim.NewDGPU, Config{Policy: pol}, 1<<14)
		if w1 != w2 || s1 != s2 {
			t.Errorf("%v: runs diverge (%g vs %g ns, %+v vs %+v)", pol, w1, w2, s1, s2)
		}
	}
}

// With the accelerator inside a device-loss window, pending chunks migrate
// to the host instead of triggering the whole-launch fallback path.
func TestDeviceLossMigratesChunksToHost(t *testing.T) {
	for _, pol := range []Policy{Static, Dynamic, HGuided} {
		m := sim.NewDGPU()
		inj := fault.New(fault.Config{Seed: 1, DeviceLossRate: 0.75, DeviceLossNs: 1e12})
		m.SetFaultInjector(inj, fault.DefaultPolicy())
		// Open a loss window deterministically before the split launch.
		opened := false
		for i := 0; i < 1000 && !opened; i++ {
			opened = inj.Launch(0) == fault.DeviceLost
		}
		if !opened {
			t.Fatal("no device loss drawn in 1000 tries at a 0.75 rate")
		}
		s := New(Config{Policy: pol})
		m.SetCoexec(s)
		if _, ok := m.LaunchKernelSplit("k", streamCost(1<<12), streamCost(1<<12)); !ok {
			t.Fatal("not routed")
		}
		st := s.Stats()
		if st.AccelItems != 0 {
			t.Errorf("%v: %d items ran on a lost accelerator", pol, st.AccelItems)
		}
		if st.Migrated == 0 {
			t.Errorf("%v: no chunks recorded as migrated", pol)
		}
		if st.HostItems != 1<<12 {
			t.Errorf("%v: host ran %d items, want all %d", pol, st.HostItems, 1<<12)
		}
	}
}

// The scheduler publishes its decisions into the trace registry.
func TestSchedCounters(t *testing.T) {
	s := New(Config{Policy: Dynamic})
	m := sim.NewDGPU()
	tr := trace.New()
	m.SetTracer(tr)
	m.SetCoexec(s)
	m.LaunchKernelSplit("k", streamCost(1<<14), streamCost(1<<14))
	reg := tr.Metrics()
	st := s.Stats()
	if got := reg.Get(trace.CtrSchedChunks); got != float64(st.Chunks) {
		t.Errorf("sched.chunks counter %g vs stats %d", got, st.Chunks)
	}
	if got := reg.Get(trace.CtrSchedHostItems) + reg.Get(trace.CtrSchedAccelItems); got != 1<<14 {
		t.Errorf("item counters sum to %g, want %d", got, 1<<14)
	}
	if reg.Get(trace.CtrSchedSplits) != 1 {
		t.Errorf("sched.splits = %g, want 1", reg.Get(trace.CtrSchedSplits))
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{HostFraction: 1.5},
		{Chunks: -1},
		{MinChunkItems: -4},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New did not panic on an invalid config")
			}
		}()
		New(Config{HostFraction: 2})
	}()
}

// Shares is the proportional-split rule shared with internal/fleet: it
// must normalize, ignore junk rates, and fall back to uniform.
func TestShares(t *testing.T) {
	got := Shares([]float64{3, 1})
	if got[0] != 0.75 || got[1] != 0.25 {
		t.Errorf("Shares(3,1) = %v, want [0.75 0.25]", got)
	}
	got = Shares([]float64{2, 0, -1, 2})
	if got[0] != 0.5 || got[1] != 0 || got[2] != 0 || got[3] != 0.5 {
		t.Errorf("Shares with junk rates = %v, want [0.5 0 0 0.5]", got)
	}
	got = Shares([]float64{0, -3})
	if got[0] != 0.5 || got[1] != 0.5 {
		t.Errorf("Shares with no positive rate = %v, want uniform", got)
	}
	sum := 0.0
	for _, s := range Shares([]float64{1, 2, 3, 4, 5}) {
		sum += s
	}
	if diff := sum - 1; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Shares sum = %v, want 1", sum)
	}
}
