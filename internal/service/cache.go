package service

import (
	"container/list"
	"sync"

	"hetbench/internal/trace"
)

// resultCache is a byte-bounded LRU over completed clean results. The
// determinism contract makes entries immortal in principle (same key ⇒
// same bytes, forever), so eviction is purely about space: least
// recently used goes first once stored output exceeds the budget.
type resultCache struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element
	reg   *trace.Registry
}

type cacheEntry struct {
	key   string
	res   *Result
	bytes int64
}

// entryOverhead approximates per-entry bookkeeping (key copies, list
// element, map slot) so tiny outputs still consume budget.
const entryOverhead = 256

func newResultCache(max int64, reg *trace.Registry) *resultCache {
	return &resultCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		reg:   reg,
	}
}

// get returns the cached result and marks it recently used. Callers must
// not mutate the returned Result; Do hands out copies.
func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a clean result, evicting LRU entries to fit. A result
// larger than the whole budget is simply not cached.
func (c *resultCache) put(key string, res *Result) {
	n := int64(len(res.Output)) + entryOverhead
	if n > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Same key ⇒ same bytes by the determinism contract; just refresh.
		c.ll.MoveToFront(el)
		return
	}
	for c.size+n > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ev.key)
		c.size -= ev.bytes
		c.reg.Add(trace.CtrServiceCacheEvictions, 1)
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, bytes: n})
	c.size += n
}

// Len reports the number of cached results (tests and /metricz).
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
