package chaostest

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"hetbench/internal/harness"
	"hetbench/internal/service"
	"hetbench/internal/service/client"
	"hetbench/internal/trace"
)

// newClient builds a fast-retrying client against srv.
func newClient(srv *Server, attempts int) *client.Client {
	return client.New(srv.URL(), client.Config{
		HTTP:        srv.HTTP.Client(),
		MaxAttempts: attempts,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})
}

// waitStarted fails the test if no run starts within the deadline.
func waitStarted(t *testing.T, g *Gate) string {
	t.Helper()
	select {
	case exp := <-g.Started:
		return exp
	case <-time.After(5 * time.Second):
		t.Fatal("no run started within 5s")
		return ""
	}
}

// waitCanceled fails the test if no run observes cancellation in time.
func waitCanceled(t *testing.T, g *Gate) string {
	t.Helper()
	select {
	case exp := <-g.Canceled:
		return exp
	case <-time.After(5 * time.Second):
		t.Fatal("no run observed cancellation within 5s")
		return ""
	}
}

// TestMidRunCancellation injects a server-side deadline mid-run: the
// run's context must fire inside the (gated) experiment, the request
// must fail, and the daemon must serve the next request normally.
func TestMidRunCancellation(t *testing.T) {
	checkLeaks := LeakCheck(t)
	gate := NewGate()
	srv := NewServer(service.Options{Run: gate.Run})
	defer checkLeaks()
	defer srv.Close()
	cl := newClient(srv, 1)
	ctx := context.Background()

	_, err := cl.Run(ctx, service.RunRequest{Experiment: "hung", TimeoutMs: 30})
	if err == nil {
		t.Fatal("deadline-bounded run of a hung experiment succeeded")
	}
	if got := waitCanceled(t, gate); got != "hung" {
		t.Fatalf("canceled run = %q, want %q", got, "hung")
	}

	gate.Release(1)
	res, err := cl.Run(ctx, service.RunRequest{Experiment: "healthy"})
	if err != nil {
		t.Fatalf("daemon stopped serving after a canceled run: %v", err)
	}
	if !strings.Contains(res.Output, "gated output for healthy") {
		t.Fatalf("unexpected output: %q", res.Output)
	}
}

// TestClientDisconnect cancels the client's context while its run is in
// flight: with no other request attached, the service must cancel the
// run itself (the context reaches the experiment), and keep serving.
func TestClientDisconnect(t *testing.T) {
	checkLeaks := LeakCheck(t)
	gate := NewGate()
	srv := NewServer(service.Options{Run: gate.Run})
	defer checkLeaks()
	defer srv.Close()
	cl := newClient(srv, 1)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := cl.Run(ctx, service.RunRequest{Experiment: "abandoned"})
		errc <- err
	}()
	waitStarted(t, gate)
	cancel() // the client walks away

	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}
	if got := waitCanceled(t, gate); got != "abandoned" {
		t.Fatalf("canceled run = %q, want %q", got, "abandoned")
	}

	gate.Release(1)
	if _, err := cl.Run(context.Background(), service.RunRequest{Experiment: "after"}); err != nil {
		t.Fatalf("daemon stopped serving after a disconnect: %v", err)
	}
}

// TestDedupSurvivesOneDisconnect attaches two requests to one flight and
// disconnects the first: the run must keep going for the second.
func TestDedupSurvivesOneDisconnect(t *testing.T) {
	checkLeaks := LeakCheck(t)
	gate := NewGate()
	reg := &trace.Registry{}
	srv := NewServer(service.Options{Run: gate.Run, Registry: reg})
	defer checkLeaks()
	defer srv.Close()
	cl := newClient(srv, 1)

	ctx1, cancel1 := context.WithCancel(context.Background())
	err1 := make(chan error, 1)
	go func() {
		_, err := cl.Run(ctx1, service.RunRequest{Experiment: "shared"})
		err1 <- err
	}()
	waitStarted(t, gate)
	// Second, identical request joins the in-flight run.
	res2 := make(chan *service.Result, 1)
	err2 := make(chan error, 1)
	go func() {
		r, err := cl.Run(context.Background(), service.RunRequest{Experiment: "shared"})
		res2 <- r
		err2 <- err
	}()
	// Wait until the service has accounted the join, then drop client 1.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Get(trace.CtrServiceDedupJoined) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never joined the flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel1()
	if err := <-err1; !errors.Is(err, context.Canceled) {
		t.Fatalf("first client error = %v, want context.Canceled", err)
	}

	gate.Release(1)
	if err := <-err2; err != nil {
		t.Fatalf("surviving client failed: %v", err)
	}
	if r := <-res2; !strings.Contains(r.Output, "gated output for shared") {
		t.Fatalf("surviving client got output %q", r.Output)
	}
	select {
	case exp := <-gate.Canceled:
		t.Fatalf("run %q was canceled despite a surviving waiter", exp)
	default:
	}
}

// TestSlowReader drains a response at a trickle while other requests
// proceed: a congested client must not wedge the daemon.
func TestSlowReader(t *testing.T) {
	checkLeaks := LeakCheck(t)
	srv := NewServer(service.Options{Run: EchoRun})
	defer checkLeaks()
	defer srv.Close()

	resp, err := srv.HTTP.Client().Post(srv.URL()+"/v1/run", "application/json",
		strings.NewReader(`{"experiment":"trickle"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// While the slow read is in progress, the daemon serves others.
	cl := newClient(srv, 1)
	if _, err := cl.Run(context.Background(), service.RunRequest{Experiment: "other"}); err != nil {
		t.Fatalf("daemon wedged behind a slow reader: %v", err)
	}
	body, err := SlowRead(resp.Body, 200*time.Microsecond, 1<<20)
	if err != nil {
		t.Fatalf("slow read failed: %v", err)
	}
	if !strings.Contains(string(body), "echo output for trickle") {
		t.Fatalf("slow read lost the body: %q", body)
	}
}

// TestWorkerPanic drives the real runner pool into a cell panic: the
// request fails degraded, the healthy cells' work survives in the
// partial output, nothing is cached, and the daemon keeps serving.
func TestWorkerPanic(t *testing.T) {
	checkLeaks := LeakCheck(t)
	reg := &trace.Registry{}
	srv := NewServer(service.Options{
		Registry: reg,
		Run:      dispatchRun(map[string]service.RunFunc{"explode": PanicRun}, EchoRun),
	})
	defer checkLeaks()
	defer srv.Close()
	cl := newClient(srv, 1)
	ctx := context.Background()

	_, err := cl.Run(ctx, service.RunRequest{Experiment: "explode"})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != 500 {
		t.Fatalf("panicked run returned %v, want a 500 StatusError", err)
	}
	if !se.Degraded {
		t.Errorf("panicked run not marked degraded: %v", se)
	}
	if !strings.Contains(se.Msg, "cell panicked") {
		t.Errorf("error does not surface the panic: %q", se.Msg)
	}
	if got := reg.Get(trace.CtrServiceDegraded); got != 1 {
		t.Errorf("service.degraded = %g, want 1", got)
	}

	// The pool survived: an ordinary experiment still runs, and the
	// degraded result was not cached (a retry of "explode" re-executes).
	if _, err := cl.Run(ctx, service.RunRequest{Experiment: "fine"}); err != nil {
		t.Fatalf("daemon stopped serving after a worker panic: %v", err)
	}
	_, _ = cl.Run(ctx, service.RunRequest{Experiment: "explode"})
	if got := reg.Get(trace.CtrServiceCacheMisses); got != 3 {
		t.Errorf("cache misses = %g, want 3 (degraded results must not be cached)", got)
	}
}

// dispatchRun routes experiments to per-name run functions.
func dispatchRun(byName map[string]service.RunFunc, fallback service.RunFunc) service.RunFunc {
	return func(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error {
		if f, ok := byName[experiment]; ok {
			return f(ctx, experiment, scale, w)
		}
		return fallback(ctx, experiment, scale, w)
	}
}

// TestCacheBitIdentical asserts the robustness contract the cache leans
// on: a hit returns bytes identical to the cold run of the same key.
func TestCacheBitIdentical(t *testing.T) {
	checkLeaks := LeakCheck(t)
	reg := &trace.Registry{}
	srv := NewServer(service.Options{Run: EchoRun, Registry: reg})
	defer checkLeaks()
	defer srv.Close()
	cl := newClient(srv, 1)
	ctx := context.Background()

	req := service.RunRequest{Experiment: "pinned", Scale: "smoke", Seed: 7}
	cold, err := cl.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first run reported cached")
	}
	warm, err := cl.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second run missed the cache")
	}
	if warm.Output != cold.Output {
		t.Fatalf("cache hit bytes differ from cold run:\ncold: %q\nwarm: %q", cold.Output, warm.Output)
	}
	if warm.Key != cold.Key || warm.Key != service.Key(req) {
		t.Fatalf("key drift: cold %s, warm %s, computed %s", cold.Key, warm.Key, service.Key(req))
	}
	if hits := reg.Get(trace.CtrServiceCacheHits); hits != 1 {
		t.Errorf("service.cache.hits = %g, want 1", hits)
	}
}

// TestShutdownDrain closes the service while a run is in flight: the run
// gets its grace period, completes, and new work is refused.
func TestShutdownDrain(t *testing.T) {
	checkLeaks := LeakCheck(t)
	gate := NewGate()
	srv := NewServer(service.Options{Run: gate.Run})
	defer checkLeaks()
	defer srv.Close()
	cl := newClient(srv, 1)

	inflight := make(chan error, 1)
	go func() {
		_, err := cl.Run(context.Background(), service.RunRequest{Experiment: "draining"})
		inflight <- err
	}()
	waitStarted(t, gate)

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		closed <- srv.Svc.Close(ctx)
	}()
	// Draining refuses new work (the client does not retry 503 here).
	time.Sleep(10 * time.Millisecond)
	if _, err := cl.Run(context.Background(), service.RunRequest{Experiment: "late"}); err == nil {
		t.Fatal("draining daemon accepted new work")
	}
	gate.Release(1)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight run failed during drain: %v", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close did not drain cleanly: %v", err)
	}
}

// TestForcedDrainCancelsStragglers gives Close a deadline shorter than
// the hung run: Close must cancel it and return the deadline error
// rather than hanging.
func TestForcedDrainCancelsStragglers(t *testing.T) {
	checkLeaks := LeakCheck(t)
	gate := NewGate()
	srv := NewServer(service.Options{Run: gate.Run})
	defer checkLeaks()
	defer srv.Close()
	cl := newClient(srv, 1)

	inflight := make(chan error, 1)
	go func() {
		_, err := cl.Run(context.Background(), service.RunRequest{Experiment: "stuck"})
		inflight <- err
	}()
	waitStarted(t, gate)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Svc.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Close = %v, want context.DeadlineExceeded", err)
	}
	if got := waitCanceled(t, gate); got != "stuck" {
		t.Fatalf("canceled run = %q, want %q", got, "stuck")
	}
	if err := <-inflight; err == nil {
		t.Fatal("request against a force-drained run succeeded")
	}
}
