// Package chaostest is the failure-injection harness for hetbenchd's
// service core: controllable run functions (gated, panicking), a
// goroutine-leak checker, and a slow reader — the building blocks the
// chaos suite composes into client disconnects, mid-run cancellations,
// worker panics and shutdown drains.
package chaostest

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"time"

	"hetbench/internal/harness"
	"hetbench/internal/harness/runner"
	"hetbench/internal/service"
)

// Server couples a service core with an httptest front end.
type Server struct {
	Svc  *service.Service
	HTTP *httptest.Server
}

// NewServer starts a daemon with opts.
func NewServer(opts service.Options) *Server {
	svc := service.New(opts)
	return &Server{Svc: svc, HTTP: httptest.NewServer(svc.Handler())}
}

// URL is the daemon's base URL.
func (s *Server) URL() string { return s.HTTP.URL }

// Close tears the server down: drain the core under a short deadline
// (canceling stragglers), then close the HTTP layer.
func (s *Server) Close() {
	root := context.Background() //hetlint:allow ctxflow harness teardown has no request to inherit from
	ctx, cancel := context.WithTimeout(root, 5*time.Second)
	defer cancel()
	_ = s.Svc.Close(ctx)
	s.HTTP.CloseClientConnections()
	s.HTTP.Close()
}

// Gate is a RunFunc whose runs block until released, reporting how each
// one ended — the knob behind disconnect, cancellation and drain tests.
type Gate struct {
	// Started receives one experiment id per run that began.
	Started chan string
	// Canceled receives one experiment id per run that exited on ctx.
	Canceled chan string
	release  chan struct{}
}

// NewGate builds a gate with generous buffers.
func NewGate() *Gate {
	return &Gate{
		Started:  make(chan string, 64),
		Canceled: make(chan string, 64),
		release:  make(chan struct{}, 64),
	}
}

// Release lets n blocked (or future) runs complete.
func (g *Gate) Release(n int) {
	for i := 0; i < n; i++ {
		g.release <- struct{}{}
	}
}

// Run blocks until released or canceled; released runs write a
// deterministic line so cache identity is checkable.
func (g *Gate) Run(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error {
	g.Started <- experiment
	select {
	case <-g.release:
		fmt.Fprintf(w, "gated output for %s at scale %d\n", experiment, scale)
		return nil
	case <-ctx.Done():
		g.Canceled <- experiment
		return ctx.Err()
	}
}

// PanicRun drives the real runner with a panicking middle cell: the
// pool must recover, fail the run with runner.ErrCellPanic, and keep
// the healthy cells' output.
func PanicRun(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error {
	cells := []runner.Cell{
		{Label: "ok-0", Run: func(cx *runner.Ctx) error {
			fmt.Fprintf(cx.Out, "cell 0 of %s ok\n", experiment)
			return nil
		}},
		{Label: "boom", Run: func(cx *runner.Ctx) error {
			panic("chaostest: injected worker panic")
		}},
		{Label: "ok-2", Run: func(cx *runner.Ctx) error {
			fmt.Fprintf(cx.Out, "cell 2 of %s ok\n", experiment)
			return nil
		}},
	}
	_, err := runner.Run(ctx, w, cells)
	return err
}

// EchoRun completes immediately with deterministic output — the control
// workload for cache and bit-identity checks.
func EchoRun(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	fmt.Fprintf(w, "echo output for %s at scale %d\nsecond line\n", experiment, scale)
	return nil
}

// errorfer is the subset of testing.TB the leak checker needs, kept
// structural so this package does not import testing into non-test code.
type errorfer interface {
	Helper()
	Errorf(format string, args ...any)
}

// LeakCheck snapshots the goroutine count; the returned func asserts the
// count has returned to (near) the snapshot, polling because exiting
// goroutines unwind asynchronously. Call it before starting a server and
// defer the check after everything is closed.
func LeakCheck(t errorfer) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		var now int
		for i := 0; i < 150; i++ {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after 3s of settling\n%s", before, now, buf)
	}
}

// SlowRead drains r one byte at a time with a pause between bytes,
// simulating a congested client; returns what was read.
func SlowRead(r io.Reader, pause time.Duration, maxBytes int) ([]byte, error) {
	var out []byte
	one := make([]byte, 1)
	for len(out) < maxBytes {
		n, err := r.Read(one)
		if n > 0 {
			out = append(out, one[0])
			time.Sleep(pause)
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
