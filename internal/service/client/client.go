// Package client is hetbenchd's retrying HTTP client: exponential
// backoff with seeded jitter, Retry-After honored on shed load,
// fail-fast on caller errors, and a load-generator mode that reports
// cache-hit versus cache-miss latency quantiles.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hetbench/internal/service"
)

// Client talks to one hetbenchd. The zero value is not usable; New
// applies the defaults.
type Client struct {
	base string
	http *http.Client

	maxAttempts int
	baseBackoff time.Duration
	maxBackoff  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// Config tunes a Client; zero fields take defaults.
type Config struct {
	// HTTP overrides the transport (tests); nil uses http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts counts the first try plus retries; <= 0 means 4.
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay; <= 0 means 100ms.
	// Attempt n waits base·2ⁿ (capped by MaxBackoff) with half-width
	// jitter, or the server's Retry-After when that is longer.
	BaseBackoff time.Duration
	// MaxBackoff caps the nominal delay; <= 0 means 5s.
	MaxBackoff time.Duration
	// Seed feeds the jitter PRNG; 0 means 1 (deterministic by default,
	// matching the repo's seeded-randomness discipline).
	Seed int64
}

// New builds a client for the daemon at base (e.g. "http://localhost:8080").
func New(base string, cfg Config) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Client{
		base:        base,
		http:        cfg.HTTP,
		maxAttempts: cfg.MaxAttempts,
		baseBackoff: cfg.BaseBackoff,
		maxBackoff:  cfg.MaxBackoff,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
}

// StatusError is a non-2xx response the client did not retry away.
type StatusError struct {
	Code     int
	Msg      string
	Degraded bool
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Msg)
}

// Run submits one request, retrying shed load (429, honoring
// Retry-After), draining daemons (503) and transport errors with
// exponential backoff + jitter. Other 4xx fail immediately: resending a
// request the server called malformed cannot succeed.
func (c *Client) Run(ctx context.Context, req service.RunRequest) (*service.Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var last error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt, retryAfterOf(last))); err != nil {
				return nil, err
			}
		}
		res, retry, err := c.once(ctx, body)
		if err == nil {
			return res, nil
		}
		if !retry || ctx.Err() != nil {
			return nil, err
		}
		last = err
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", c.maxAttempts, last)
}

// retryableError carries the server's Retry-After hint through the loop.
type retryableError struct {
	err        error
	retryAfter time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

func retryAfterOf(err error) time.Duration {
	var r *retryableError
	if errors.As(err, &r) {
		return r.retryAfter
	}
	return 0
}

// once performs a single attempt; retry reports whether the failure is
// worth another try.
func (c *Client) once(ctx context.Context, body []byte) (res *service.Result, retry bool, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, true, &retryableError{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, true, &retryableError{err: err}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var out service.Result
		if err := json.Unmarshal(data, &out); err != nil {
			return nil, false, fmt.Errorf("client: bad response body: %w", err)
		}
		return &out, false, nil
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable,
		resp.StatusCode >= 500:
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return nil, true, &retryableError{
			err:        statusError(resp.StatusCode, data),
			retryAfter: time.Duration(ra) * time.Second,
		}
	default:
		return nil, false, statusError(resp.StatusCode, data)
	}
}

func statusError(code int, body []byte) *StatusError {
	var e struct {
		Error    string `json:"error"`
		Degraded bool   `json:"degraded"`
	}
	_ = json.Unmarshal(body, &e)
	if e.Error == "" {
		e.Error = string(bytes.TrimSpace(body))
	}
	return &StatusError{Code: code, Msg: e.Error, Degraded: e.Degraded}
}

// backoff computes attempt n's delay: base·2ⁿ⁻¹ capped at max, jittered
// to [d/2, d), never shorter than the server's Retry-After.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.baseBackoff << (attempt - 1)
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	c.mu.Lock()
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// sleep waits d or until ctx is done.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
