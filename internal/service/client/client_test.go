package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetbench/internal/service"
)

// scripted serves each handler in order, then repeats the last one.
func scripted(t *testing.T, steps ...http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(n.Add(1)) - 1
		if i >= len(steps) {
			i = len(steps) - 1
		}
		steps[i](w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &n
}

func ok(t *testing.T, res service.Result) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := json.NewEncoder(w).Encode(res); err != nil {
			t.Error(err)
		}
	}
}

func status(code int, body string, header map[string]string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for k, v := range header {
			w.Header().Set(k, v)
		}
		w.WriteHeader(code)
		_, _ = w.Write([]byte(body))
	}
}

func fastClient(srv *httptest.Server, attempts int) *Client {
	return New(srv.URL, Config{
		HTTP:        srv.Client(),
		MaxAttempts: attempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
}

func TestRunRetriesShedLoad(t *testing.T) {
	want := service.Result{Key: "k", Experiment: "table2", Output: "fine\n"}
	srv, calls := scripted(t,
		status(429, `{"error":"overloaded"}`, map[string]string{"Retry-After": "0"}),
		status(503, `{"error":"draining"}`, nil),
		ok(t, want),
	)
	res, err := fastClient(srv, 4).Run(context.Background(), service.RunRequest{Experiment: "table2"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != want.Output || res.Key != want.Key {
		t.Fatalf("got %+v, want %+v", res, want)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", calls.Load())
	}
}

func TestRunFailsFastOnCallerError(t *testing.T) {
	srv, calls := scripted(t, status(400, `{"error":"unknown experiment"}`, nil))
	_, err := fastClient(srv, 4).Run(context.Background(), service.RunRequest{Experiment: "nope"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("got %v, want a 400 StatusError", err)
	}
	if se.Msg != "unknown experiment" {
		t.Fatalf("Msg = %q", se.Msg)
	}
	if calls.Load() != 1 {
		t.Fatalf("a 400 was retried: %d attempts", calls.Load())
	}
}

func TestRunGivesUpAfterMaxAttempts(t *testing.T) {
	srv, calls := scripted(t, status(500, `{"error":"still broken","degraded":true}`, nil))
	_, err := fastClient(srv, 3).Run(context.Background(), service.RunRequest{Experiment: "table2"})
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 500 || !se.Degraded {
		t.Fatalf("got %v, want a degraded 500 StatusError", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", calls.Load())
	}
}

func TestRunBackoffHonorsRetryAfter(t *testing.T) {
	want := service.Result{Output: "done"}
	srv, _ := scripted(t,
		status(429, `{"error":"overloaded"}`, map[string]string{"Retry-After": "1"}),
		ok(t, want),
	)
	start := time.Now()
	res, err := fastClient(srv, 2).Run(context.Background(), service.RunRequest{Experiment: "table2"})
	if err != nil {
		t.Fatal(err)
	}
	// Nominal jittered backoff tops out at 5ms; a full second proves the
	// server's Retry-After won.
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %s, want >= 1s from Retry-After", elapsed)
	}
	if res.Output != want.Output {
		t.Fatalf("got %q", res.Output)
	}
}

func TestRunCancelableDuringBackoff(t *testing.T) {
	srv, _ := scripted(t, status(429, `{"error":"overloaded"}`, map[string]string{"Retry-After": "30"}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fastClient(srv, 4).Run(ctx, service.RunRequest{Experiment: "table2"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s; backoff sleep ignored ctx", elapsed)
	}
}

func TestBackoffGrowsAndStaysBounded(t *testing.T) {
	c := New("http://unused", Config{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond})
	prevMax := time.Duration(0)
	for attempt := 1; attempt <= 6; attempt++ {
		nominal := 10 * time.Millisecond << (attempt - 1)
		if nominal > 80*time.Millisecond || nominal <= 0 {
			nominal = 80 * time.Millisecond
		}
		d := c.backoff(attempt, 0)
		if d < nominal/2 || d >= nominal+time.Millisecond {
			t.Fatalf("attempt %d: backoff %s outside [%s, %s)", attempt, d, nominal/2, nominal)
		}
		if nominal > prevMax {
			prevMax = nominal
		}
	}
	if ra := c.backoff(1, time.Second); ra != time.Second {
		t.Fatalf("Retry-After floor ignored: %s", ra)
	}
}

func TestLoadgenSeparatesHitsFromMisses(t *testing.T) {
	// Emulate the daemon's cache: the first request per key misses,
	// repeats hit, so a 2-experiment mix over 10 requests yields 2 misses.
	var mu sync.Mutex
	seen := map[string]bool{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req service.RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		key := service.Key(req)
		mu.Lock()
		cached := seen[key]
		seen[key] = true
		mu.Unlock()
		_ = json.NewEncoder(w).Encode(service.Result{
			Key: key, Experiment: req.Experiment, Cached: cached, Output: "out\n",
		})
	}))
	t.Cleanup(srv.Close)

	rep, err := fastClient(srv, 1).Loadgen(context.Background(), LoadgenOptions{
		Requests:    10,
		Concurrency: 1, // serial so hit/miss counts are exact
		Mix: []service.RunRequest{
			{Experiment: "a", Scale: "smoke"},
			{Experiment: "b", Scale: "smoke"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Canceled != 0 {
		t.Fatalf("errors=%d canceled=%d, want 0/0", rep.Errors, rep.Canceled)
	}
	if rep.Misses != 2 || rep.Hits != 8 {
		t.Fatalf("hits=%d misses=%d, want 8/2", rep.Hits, rep.Misses)
	}
	if got := rep.HitRate(); got != 0.8 {
		t.Fatalf("hit rate %g, want 0.8", got)
	}
	if rep.HitNs.Count() != 8 || rep.MissNs.Count() != 2 {
		t.Fatalf("latency sample counts hit=%d miss=%d, want 8/2", rep.HitNs.Count(), rep.MissNs.Count())
	}
	var out strings.Builder
	if _, err := rep.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hit rate 80%") {
		t.Fatalf("report missing hit rate: %q", out.String())
	}
}

func TestLoadgenOpenLoopArrivals(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(service.Result{Key: "k", Experiment: "table2", Output: "out\n"})
	}))
	t.Cleanup(srv.Close)

	// Arrivals override Requests and pace dispatch to the offsets: with
	// the last arrival at 30ms the run cannot finish sooner, no matter
	// how fast the daemon answers.
	start := time.Now()
	rep, err := fastClient(srv, 1).Loadgen(context.Background(), LoadgenOptions{
		Requests:    99, // overridden by len(Arrivals)
		Concurrency: 2,
		Arrivals:    []time.Duration{0, 10 * time.Millisecond, 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 3 {
		t.Fatalf("requests=%d, want len(Arrivals)=3", rep.Requests)
	}
	if rep.Hits+rep.Misses != 3 || rep.Errors != 0 {
		t.Fatalf("hits=%d misses=%d errors=%d, want 3 successes", rep.Hits, rep.Misses, rep.Errors)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("run finished in %s, before the last arrival offset", elapsed)
	}
}

func TestLoadgenOpenLoopCancelable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(service.Result{Key: "k", Experiment: "table2", Output: "out\n"})
	}))
	t.Cleanup(srv.Close)

	// Cancel while the dispatcher is sleeping toward a far-future
	// arrival: the run must return promptly with ctx.Err(), not wait out
	// the trace.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fastClient(srv, 1).Loadgen(ctx, LoadgenOptions{
		Concurrency: 1,
		Arrivals:    []time.Duration{0, time.Hour},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s; dispatcher slept through it", elapsed)
	}
}

func TestLoadgenCountsChaosCancellations(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // slower than every chaos deadline
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
			return
		}
	}))
	t.Cleanup(srv.Close)

	rep, err := fastClient(srv, 1).Loadgen(context.Background(), LoadgenOptions{
		Requests:       6,
		Concurrency:    3,
		CancelFraction: 1,
		CancelAfter:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Canceled != 6 {
		t.Fatalf("canceled=%d, want all 6", rep.Canceled)
	}
	if rep.Errors != 0 {
		t.Fatalf("chaos cancellations were misfiled as errors: %d", rep.Errors)
	}
}
