package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"hetbench/internal/service"
	"hetbench/internal/trace"
)

// LoadgenOptions shapes a load-generation run.
type LoadgenOptions struct {
	// Requests is the total request count; <= 0 means 20.
	Requests int
	// Concurrency is the worker count; <= 0 means 4.
	Concurrency int
	// Mix is the request pool workers draw from (round-robin by request
	// index, so repeats produce cache hits); empty means one smoke-scale
	// table2 request.
	Mix []service.RunRequest
	// CancelFraction injects chaos: that fraction of requests (seeded
	// choice) carries a client-side context canceled after CancelAfter,
	// exercising mid-run cancellation like a disconnecting client.
	CancelFraction float64
	// CancelAfter is the chaos requests' lifetime; <= 0 means 1ms.
	CancelAfter time.Duration
	// Seed drives the chaos choices; 0 means 1.
	Seed int64
	// Arrivals, when non-empty, switches dispatch to open-loop pacing:
	// request i is dispatched Arrivals[i] after the run starts, whether
	// or not earlier requests have completed — the arrival process is
	// independent of service times, like real fleet traffic. The offsets
	// usually come from fleet.ArrivalOffsets, so the same seeded trace
	// that drove a simulation replays against a live daemon. Overrides
	// Requests with len(Arrivals); Concurrency still bounds in-flight
	// requests (dispatched-but-unclaimed requests queue).
	Arrivals []time.Duration
}

// LoadgenReport aggregates a run: outcome counts plus separate latency
// distributions for cache hits and misses.
type LoadgenReport struct {
	Requests, Errors, Canceled int
	Hits, Misses               int
	HitNs, MissNs              *trace.Histogram
}

// HitRate is the fraction of successful responses served from cache.
func (r *LoadgenReport) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// WriteTo renders the report as the -loadgen summary.
func (r *LoadgenReport) WriteTo(w io.Writer) (int64, error) {
	var n int64
	line := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	if err := line("loadgen: %d requests, %d errors, %d canceled, hit rate %.0f%% (%d hits / %d misses)\n",
		r.Requests, r.Errors, r.Canceled, r.HitRate()*100, r.Hits, r.Misses); err != nil {
		return n, err
	}
	for _, h := range []struct {
		label string
		hist  *trace.Histogram
	}{{"hit ", r.HitNs}, {"miss", r.MissNs}} {
		if h.hist == nil || h.hist.Count() == 0 {
			if err := line("  %s: no samples\n", h.label); err != nil {
				return n, err
			}
			continue
		}
		if err := line("  %s: n=%d p50=%s p90=%s p99=%s max=%s\n", h.label, h.hist.Count(),
			time.Duration(h.hist.Quantile(0.5)), time.Duration(h.hist.Quantile(0.9)),
			time.Duration(h.hist.Quantile(0.99)), time.Duration(h.hist.Max())); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Loadgen fires opts.Requests requests at the daemon through c and
// reports hit-vs-miss latency. Chaos cancellations count as Canceled,
// not Errors; any other failure is an error but does not stop the run —
// the point is to observe the daemon under sustained, partly hostile
// load.
func (c *Client) Loadgen(ctx context.Context, opts LoadgenOptions) (*LoadgenReport, error) {
	if opts.Requests <= 0 {
		opts.Requests = 20
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 4
	}
	if opts.CancelAfter <= 0 {
		opts.CancelAfter = time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if len(opts.Arrivals) > 0 {
		opts.Requests = len(opts.Arrivals)
	}
	if len(opts.Mix) == 0 {
		opts.Mix = []service.RunRequest{{Experiment: "table2", Scale: "smoke"}}
	}
	// Chaos assignment is decided up front from the seed so the workload
	// shape does not depend on goroutine interleaving.
	rng := rand.New(rand.NewSource(opts.Seed))
	chaotic := make([]bool, opts.Requests)
	for i := range chaotic {
		chaotic[i] = rng.Float64() < opts.CancelFraction
	}

	rep := &LoadgenReport{Requests: opts.Requests, HitNs: &trace.Histogram{}, MissNs: &trace.Histogram{}}
	var mu sync.Mutex
	// Open-loop pacing needs a buffered channel: an arrival happens at
	// its trace time even when every worker is busy, so dispatch must
	// never block on worker availability.
	next := make(chan int)
	if len(opts.Arrivals) > 0 {
		next = make(chan int, opts.Requests)
	}
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				req := opts.Mix[i%len(opts.Mix)]
				rctx, cancel := ctx, context.CancelFunc(func() {})
				if chaotic[i] {
					rctx, cancel = context.WithTimeout(ctx, opts.CancelAfter)
				}
				start := time.Now() //hetlint:allow detnondet loadgen measures real service latency, never experiment output
				res, err := c.Run(rctx, req)
				dur := time.Since(start) //hetlint:allow detnondet loadgen measures real service latency, never experiment output
				cancel()
				mu.Lock()
				switch {
				case err == nil && res.Cached:
					rep.Hits++
					rep.HitNs.Observe(float64(dur))
				case err == nil:
					rep.Misses++
					rep.MissNs.Observe(float64(dur))
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					rep.Canceled++
				default:
					rep.Errors++
				}
				mu.Unlock()
			}
		}()
	}
	if len(opts.Arrivals) > 0 {
		base := time.Now() //hetlint:allow detnondet loadgen paces real wall-clock arrivals, never experiment output
		for i := 0; i < opts.Requests; i++ {
			if d := time.Until(base.Add(opts.Arrivals[i])); d > 0 {
				timer := time.NewTimer(d)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					close(next)
					wg.Wait()
					return rep, ctx.Err()
				}
			}
			select {
			case next <- i:
			case <-ctx.Done():
				close(next)
				wg.Wait()
				return rep, ctx.Err()
			}
		}
		close(next)
		wg.Wait()
		return rep, nil
	}
	for i := 0; i < opts.Requests; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			close(next)
			wg.Wait()
			return rep, ctx.Err()
		}
	}
	close(next)
	wg.Wait()
	return rep, nil
}
