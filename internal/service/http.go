package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"time"

	"hetbench/internal/harness"
	"hetbench/internal/trace"
)

// maxBodyBytes bounds a run request's JSON body.
const maxBodyBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /v1/run          {"experiment","scale","seed","timeout_ms"} → Result
//	GET  /v1/experiments  registry listing
//	GET  /healthz         "ok" (200) or "draining" (503)
//	GET  /metricz         service counters, request-latency quantiles
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	return mux
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err), nil)
		return
	}
	// The request's context is the cancellation root: the client closing
	// its connection cancels it, and an explicit budget tightens it.
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	res, err := s.Do(ctx, req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrUnknownExperiment):
		httpError(w, http.StatusBadRequest, err.Error(), nil)
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error(), nil)
	case isOverloaded(err, w):
		// isOverloaded wrote the Retry-After header and the 429.
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone or out of budget; the write usually fails,
		// but a server-side timeout can still reach a live client.
		httpError(w, http.StatusServiceUnavailable, err.Error(), res)
	default:
		httpError(w, http.StatusInternalServerError, err.Error(), res)
	}
}

// isOverloaded handles the 429 path inline so the switch stays flat.
func isOverloaded(err error, w http.ResponseWriter) bool {
	var ov *OverloadedError
	if !errors.As(err, &ov) {
		return false
	}
	secs := int(ov.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	httpError(w, http.StatusTooManyRequests, err.Error(), nil)
	return true
}

// errorBody is the JSON error envelope. Degraded runs carry their
// partial output so a client can inspect the healthy prefix.
type errorBody struct {
	Error    string `json:"error"`
	Degraded bool   `json:"degraded,omitempty"`
	Output   string `json:"output,omitempty"`
}

func httpError(w http.ResponseWriter, code int, msg string, res *Result) {
	body := errorBody{Error: msg}
	if res != nil {
		body.Degraded = res.Degraded
		body.Output = res.Output
	}
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the client is the only reader; a failed write has no recovery
}

// ExperimentInfo is one /v1/experiments entry.
type ExperimentInfo struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	Description string `json:"description"`
}

func (s *Service) handleExperiments(w http.ResponseWriter, r *http.Request) {
	reg := harness.Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]ExperimentInfo, 0, len(ids))
	for _, id := range ids {
		e := reg[id]
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Description: e.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// Metrics is the /metricz document: every service.* counter, the
// request-latency quantiles, and runtime gauges the smoke tests read.
type Metrics struct {
	Counters   map[string]float64 `json:"counters"`
	RequestNs  map[string]float64 `json:"request_ns"`
	Goroutines int                `json:"goroutines"`
	CacheLen   int                `json:"cache_len"`
}

func (s *Service) handleMetricz(w http.ResponseWriter, r *http.Request) {
	m := Metrics{
		Counters:   s.reg.Snapshot(),
		RequestNs:  map[string]float64{},
		Goroutines: runtime.NumGoroutine(),
		CacheLen:   s.cache.Len(),
	}
	if h := s.reg.Hist(trace.HistServiceRequestNs); h != nil {
		m.RequestNs["count"] = float64(h.Count())
		for _, q := range []float64{0.5, 0.9, 0.99} {
			m.RequestNs[fmt.Sprintf("p%g", q*100)] = h.Quantile(q)
		}
		m.RequestNs["max"] = h.Max()
	}
	writeJSON(w, http.StatusOK, &m)
}
