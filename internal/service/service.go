// Package service is hetbenchd's core: it runs harness experiments on
// the parallel runner behind a content-addressed result cache, with
// singleflight deduplication of identical in-flight requests, a bounded
// admission queue that sheds load, and cancellation plumbed end-to-end —
// a request's context reaches cell execution, so client disconnects and
// per-request deadlines abort simulation work instead of orphaning it.
//
// Failure containment follows the runner's contract: a panicking cell
// fails its own run (marked degraded here) while the worker pool and the
// daemon keep serving; only clean, non-degraded results enter the cache,
// and the golden suite's determinism contract makes a cache hit
// bit-identical to a cold run of the same (experiment, scale, seed).
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hetbench/internal/harness"
	"hetbench/internal/harness/runner"
	"hetbench/internal/trace"
)

// RunFunc executes one experiment. The default implementation resolves
// the id in harness.Registry; chaos tests inject their own.
type RunFunc func(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error

// Options configures a Service. The zero value is usable: two concurrent
// runs, eight queued, a 64 MB cache, runs resolved from the harness
// registry.
type Options struct {
	// MaxConcurrent bounds in-flight experiment runs (not HTTP
	// connections); <= 0 means 2. Each run already parallelizes
	// internally over the runner's worker pool.
	MaxConcurrent int
	// MaxQueued bounds requests waiting for a run slot; beyond it the
	// service sheds with ErrOverloaded. <= 0 means 8.
	MaxQueued int
	// CacheBytes bounds the result cache's output bytes; <= 0 means 64 MB.
	CacheBytes int64
	// Run overrides experiment execution (tests); nil uses the registry.
	Run RunFunc
	// Registry receives the service.* counters and the request-latency
	// histogram; nil allocates a private one.
	Registry *trace.Registry
}

// Service is the daemon core. Create with New; Close drains it.
type Service struct {
	opts Options
	reg  *trace.Registry

	cache *resultCache
	sem   chan struct{} // admission slots, cap MaxConcurrent
	queue chan struct{} // queue tickets, cap MaxQueued

	mu      sync.Mutex
	flights map[string]*flight

	inflight sync.WaitGroup
	draining atomic.Bool

	gate seedGate
}

// Sentinel errors the HTTP layer maps to statuses.
var (
	// ErrDraining rejects new work during graceful shutdown (503).
	ErrDraining = errors.New("service: draining")
	// ErrUnknownExperiment rejects ids missing from the registry (400).
	ErrUnknownExperiment = errors.New("service: unknown experiment")
)

// OverloadedError sheds a request when the admission queue is full
// (429); RetryAfter is the suggested backoff.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("service: overloaded, retry after %s", e.RetryAfter)
}

// RunRequest identifies one experiment run. Jobs is deliberately absent:
// the runner's determinism contract makes output independent of worker
// count, so it is not part of a result's identity.
type RunRequest struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"` // smoke|small|default|paper; "" = default
	Seed       int64  `json:"seed"`  // 0 = 1, the documented default
	// TimeoutMs bounds the run server-side (0 = none); the client's
	// disconnect cancels regardless.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// normalize applies defaulting shared by hashing and execution.
func (r RunRequest) normalize() RunRequest {
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Scale == "" {
		r.Scale = "default"
	}
	return r
}

// Key is the content address of a request's result: a hex SHA-256 over
// the identity fields (experiment, scale, seed — never the timeout).
func Key(r RunRequest) string {
	r = r.normalize()
	h := sha256.Sum256([]byte(fmt.Sprintf("hetbench/v1|%s|%s|%d", r.Experiment, r.Scale, r.Seed)))
	return hex.EncodeToString(h[:])
}

// Result is one completed (or degraded) run.
type Result struct {
	Key        string `json:"key"`
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	Seed       int64  `json:"seed"`
	// Cached marks this response as served from the result cache; the
	// Output bytes are identical to the cold run's.
	Cached bool `json:"cached"`
	// Degraded marks a run in which a cell panicked: Output holds the
	// error-free prefix, Err the recovered panic. Degraded results are
	// never cached.
	Degraded bool   `json:"degraded,omitempty"`
	Err      string `json:"error,omitempty"`
	Output   string `json:"output"`
}

// flight is one in-progress run shared by all requests with its key.
type flight struct {
	done    chan struct{}
	res     *Result
	err     error
	waiters int                // requests still attached; 0 cancels the run
	cancel  context.CancelFunc // set once the run goroutine starts
}

// New builds a Service from opts.
func New(opts Options) *Service {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 2
	}
	if opts.MaxQueued <= 0 {
		opts.MaxQueued = 8
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 64 << 20
	}
	reg := opts.Registry
	if reg == nil {
		reg = &trace.Registry{}
	}
	return &Service{
		opts:    opts,
		reg:     reg,
		cache:   newResultCache(opts.CacheBytes, reg),
		sem:     make(chan struct{}, opts.MaxConcurrent),
		queue:   make(chan struct{}, opts.MaxQueued),
		flights: make(map[string]*flight),
	}
}

// Registry returns the service's metrics registry.
func (s *Service) Registry() *trace.Registry { return s.reg }

// Do runs (or joins, or serves from cache) the request. It returns as
// soon as ctx is done — the underlying run keeps going while any other
// request is attached to it, and is canceled when the last one leaves.
func (s *Service) Do(ctx context.Context, req RunRequest) (*Result, error) {
	start := time.Now() //hetlint:allow detnondet request latency is service telemetry, never experiment output
	defer func() {
		s.reg.Observe(trace.HistServiceRequestNs, float64(time.Since(start))) //hetlint:allow detnondet request latency is service telemetry, never experiment output
	}()
	s.reg.Add(trace.CtrServiceRequests, 1)

	if s.draining.Load() {
		return nil, ErrDraining
	}
	req = req.normalize()
	if _, err := harness.ParseScale(req.Scale); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownExperiment, err)
	}
	if s.opts.Run == nil {
		if _, ok := harness.Registry()[req.Experiment]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, req.Experiment)
		}
	}
	key := Key(req)

	if res, ok := s.cache.get(key); ok {
		s.reg.Add(trace.CtrServiceCacheHits, 1)
		hit := *res
		hit.Cached = true
		return &hit, nil
	}

	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		f.waiters++
		s.mu.Unlock()
		s.reg.Add(trace.CtrServiceDedupJoined, 1)
		return s.wait(ctx, f)
	}
	f := &flight{done: make(chan struct{}), waiters: 1}
	s.flights[key] = f
	s.mu.Unlock()
	s.reg.Add(trace.CtrServiceCacheMisses, 1)

	if err := s.admit(ctx); err != nil {
		s.finishFlight(key, f, nil, err)
		return nil, err
	}

	// The run outlives any one request: it completes for whoever is still
	// attached, so its context derives from the request's values but not
	// its cancellation — the flight refcount cancels it instead.
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	s.mu.Lock()
	f.cancel = cancel
	s.mu.Unlock()
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		defer cancel()
		defer func() { <-s.sem }()
		res, err := s.execute(runCtx, key, req)
		s.finishFlight(key, f, res, err)
	}()
	return s.wait(ctx, f)
}

// admit takes a run slot, queueing up to MaxQueued waiters and shedding
// beyond that. The queue channel's buffer is the ticket pool: a full
// buffer means MaxQueued requests are already waiting.
func (s *Service) admit(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		s.reg.Add(trace.CtrServiceShed, 1)
		return &OverloadedError{RetryAfter: s.retryAfter()}
	}
	defer func() { <-s.queue }()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.reg.Add(trace.CtrServiceCanceled, 1)
		return ctx.Err()
	}
}

// retryAfter estimates when shed load should come back: queue depth
// times the median request latency, clamped to [1s, 30s].
func (s *Service) retryAfter() time.Duration {
	p50 := time.Second
	if h := s.reg.Hist(trace.HistServiceRequestNs); h != nil && h.Count() > 0 {
		p50 = time.Duration(h.Quantile(0.5))
	}
	d := p50 * time.Duration(len(s.queue)+1)
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// wait blocks until the flight completes or ctx is done. A departing
// request detaches; the last one out cancels the run.
func (s *Service) wait(ctx context.Context, f *flight) (*Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		s.mu.Lock()
		f.waiters--
		if f.waiters == 0 && f.cancel != nil {
			f.cancel()
		}
		s.mu.Unlock()
		s.reg.Add(trace.CtrServiceCanceled, 1)
		return nil, ctx.Err()
	}
}

// finishFlight publishes the outcome and retires the key. The map delete
// and channel close happen under one lock acquisition, so no request can
// join a completed flight.
func (s *Service) finishFlight(key string, f *flight, res *Result, err error) {
	s.mu.Lock()
	f.res, f.err = res, err
	delete(s.flights, key)
	close(f.done)
	s.mu.Unlock()
}

// execute runs the experiment under the seed gate and classifies the
// outcome. Only clean results are cached.
func (s *Service) execute(ctx context.Context, key string, req RunRequest) (*Result, error) {
	if err := s.gate.acquire(ctx, req.Seed); err != nil {
		s.reg.Add(trace.CtrServiceCanceled, 1)
		return nil, err
	}
	defer s.gate.release()

	scale, _ := harness.ParseScale(req.Scale)
	run := s.opts.Run
	if run == nil {
		run = registryRun
	}
	var buf bytes.Buffer
	err := run(ctx, req.Experiment, scale, &buf)
	res := &Result{
		Key: key, Experiment: req.Experiment, Scale: req.Scale, Seed: req.Seed,
		Output: buf.String(),
	}
	if err != nil {
		s.reg.Add(trace.CtrServiceErrors, 1)
		res.Err = err.Error()
		if errors.Is(err, runner.ErrCellPanic) {
			s.reg.Add(trace.CtrServiceDegraded, 1)
			res.Degraded = true
		}
		return res, err
	}
	s.cache.put(key, res)
	return res, nil
}

// registryRun is the default RunFunc: resolve and run a harness
// experiment.
func registryRun(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error {
	e, ok := harness.Registry()[experiment]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownExperiment, experiment)
	}
	return e.Run(ctx, scale, w)
}

// Close drains the service: new requests fail with ErrDraining, in-flight
// runs get until ctx's deadline to finish, then are canceled and awaited.
// Returns nil on a clean drain, ctx.Err() if runs had to be canceled.
func (s *Service) Close(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for _, f := range s.flights {
		if f.cancel != nil {
			f.cancel()
		}
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// seedGate serializes runs across seeds: the harness seed is a process
// global, so runs under the same seed proceed concurrently while a
// request for a different seed waits for the active set to drain before
// flipping it. Within one seed the golden contract keeps concurrent runs
// deterministic.
type seedGate struct {
	mu     sync.Mutex
	seed   int64
	active int
	wake   chan struct{} // closed and replaced on each drain
}

func (g *seedGate) acquire(ctx context.Context, seed int64) error {
	for {
		g.mu.Lock()
		if g.active == 0 || g.seed == seed {
			g.seed = seed
			harness.SetSeed(seed)
			g.active++
			g.mu.Unlock()
			return nil
		}
		if g.wake == nil {
			g.wake = make(chan struct{})
		}
		wake := g.wake
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wake:
		}
	}
}

func (g *seedGate) release() {
	g.mu.Lock()
	g.active--
	if g.active == 0 && g.wake != nil {
		close(g.wake)
		g.wake = nil
	}
	g.mu.Unlock()
}
