package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetbench/internal/harness"
	"hetbench/internal/harness/runner"
	"hetbench/internal/trace"
)

// countingRun is a RunFunc that counts executions and writes out.
func countingRun(calls *atomic.Int64, out string) RunFunc {
	return func(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error {
		calls.Add(1)
		fmt.Fprint(w, out)
		return nil
	}
}

func TestKeyNormalization(t *testing.T) {
	base := Key(RunRequest{Experiment: "table2", Scale: "default", Seed: 1})
	for name, req := range map[string]RunRequest{
		"zero seed defaults to 1":   {Experiment: "table2", Scale: "default"},
		"empty scale means default": {Experiment: "table2", Seed: 1},
		"timeout is not identity":   {Experiment: "table2", Scale: "default", Seed: 1, TimeoutMs: 5000},
	} {
		if got := Key(req); got != base {
			t.Errorf("%s: key %s != %s", name, got, base)
		}
	}
	for name, req := range map[string]RunRequest{
		"experiment": {Experiment: "table3", Scale: "default", Seed: 1},
		"scale":      {Experiment: "table2", Scale: "smoke", Seed: 1},
		"seed":       {Experiment: "table2", Scale: "default", Seed: 2},
	} {
		if got := Key(req); got == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

func TestDoCachesCleanResults(t *testing.T) {
	var calls atomic.Int64
	reg := &trace.Registry{}
	s := New(Options{Run: countingRun(&calls, "stable output\n"), Registry: reg})
	ctx := context.Background()
	req := RunRequest{Experiment: "x", Scale: "smoke"}

	cold, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("run executed %d times, want 1", calls.Load())
	}
	if cold.Cached || !warm.Cached {
		t.Fatalf("cached flags: cold %v, warm %v", cold.Cached, warm.Cached)
	}
	if warm.Output != cold.Output {
		t.Fatalf("hit output %q != cold output %q", warm.Output, cold.Output)
	}
	if h, m := reg.Get(trace.CtrServiceCacheHits), reg.Get(trace.CtrServiceCacheMisses); h != 1 || m != 1 {
		t.Fatalf("hits=%g misses=%g, want 1/1", h, m)
	}
}

func TestDoRejectsUnknownExperimentAndScale(t *testing.T) {
	s := New(Options{}) // registry-backed
	ctx := context.Background()
	if _, err := s.Do(ctx, RunRequest{Experiment: "no-such-experiment"}); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("unknown experiment: %v, want ErrUnknownExperiment", err)
	}
	if _, err := s.Do(ctx, RunRequest{Experiment: "table2", Scale: "galactic"}); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("bad scale: %v, want ErrUnknownExperiment", err)
	}
}

func TestCacheEviction(t *testing.T) {
	reg := &trace.Registry{}
	// Budget fits one entry (output + entryOverhead) but not two.
	payload := strings.Repeat("x", 512)
	var calls atomic.Int64
	s := New(Options{Run: countingRun(&calls, payload), Registry: reg, CacheBytes: 1024})
	ctx := context.Background()

	if _, err := s.Do(ctx, RunRequest{Experiment: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(ctx, RunRequest{Experiment: "b"}); err != nil {
		t.Fatal(err)
	}
	if got := s.cache.Len(); got != 1 {
		t.Fatalf("cache holds %d entries, want 1 after eviction", got)
	}
	if ev := reg.Get(trace.CtrServiceCacheEvictions); ev != 1 {
		t.Fatalf("evictions = %g, want 1", ev)
	}
	// "b" is the resident entry; "a" was evicted and must re-execute.
	res, err := s.Do(ctx, RunRequest{Experiment: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("b should have survived as the most recently used entry")
	}
	if _, err := s.Do(ctx, RunRequest{Experiment: "a"}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("run executed %d times, want 3 (a, b, a-again)", calls.Load())
	}
}

func TestCacheSkipsOversizedResults(t *testing.T) {
	var calls atomic.Int64
	s := New(Options{Run: countingRun(&calls, strings.Repeat("x", 4096)), CacheBytes: 1024})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := s.Do(ctx, RunRequest{Experiment: "huge"}); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("oversized result was cached (%d executions, want 2)", calls.Load())
	}
	if s.cache.Len() != 0 {
		t.Fatalf("cache holds %d entries, want 0", s.cache.Len())
	}
}

func TestSingleflightDedup(t *testing.T) {
	reg := &trace.Registry{}
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Options{Registry: reg, Run: func(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error {
		calls.Add(1)
		close(started)
		<-release
		fmt.Fprintln(w, "joint output")
		return nil
	}})
	ctx := context.Background()
	req := RunRequest{Experiment: "shared", Scale: "smoke"}

	results := make(chan *Result, 2)
	errs := make(chan error, 2)
	go func() {
		r, err := s.Do(ctx, req)
		results <- r
		errs <- err
	}()
	<-started
	go func() {
		// Joins the in-flight run rather than starting a second one.
		r, err := s.Do(ctx, req)
		results <- r
		errs <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Get(trace.CtrServiceDedupJoined) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		if r := <-results; r.Output != "joint output\n" {
			t.Fatalf("output %q", r.Output)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("run executed %d times, want 1", calls.Load())
	}
}

func TestAdmissionSheds(t *testing.T) {
	reg := &trace.Registry{}
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s := New(Options{MaxConcurrent: 1, MaxQueued: 1, Registry: reg,
		Run: func(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error {
			started <- struct{}{}
			select {
			case <-release:
				fmt.Fprintln(w, experiment)
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}})
	ctx := context.Background()

	var wg sync.WaitGroup
	errsByExp := make(map[string]chan error)
	for _, exp := range []string{"first", "second", "third"} {
		errsByExp[exp] = make(chan error, 1)
	}
	launch := func(exp string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Do(ctx, RunRequest{Experiment: exp})
			errsByExp[exp] <- err
		}()
	}
	launch("first")
	<-started // first holds the only run slot
	launch("second")
	deadline := time.Now().Add(5 * time.Second)
	for { // second occupies the single queue ticket
		s.mu.Lock()
		queued := len(s.queue)
		s.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	launch("third")
	err := <-errsByExp["third"]
	var over *OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("third request: %v, want OverloadedError", err)
	}
	if over.RetryAfter < time.Second || over.RetryAfter > 30*time.Second {
		t.Fatalf("RetryAfter %s outside [1s, 30s]", over.RetryAfter)
	}
	if shed := reg.Get(trace.CtrServiceShed); shed != 1 {
		t.Fatalf("service.shed = %g, want 1", shed)
	}
	close(release)
	for _, exp := range []string{"first", "second"} {
		if err := <-errsByExp[exp]; err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	wg.Wait()
}

func TestQueuedRequestHonorsCancellation(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Options{MaxConcurrent: 1, MaxQueued: 4,
		Run: func(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error {
			started <- struct{}{}
			<-release
			return nil
		}})
	bg := context.Background()
	go s.Do(bg, RunRequest{Experiment: "holder"}) //nolint:errcheck
	<-started

	ctx, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel()
	if _, err := s.Do(ctx, RunRequest{Experiment: "queued"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request: %v, want context.DeadlineExceeded", err)
	}
	close(release)
	if err := s.Close(bg); err != nil {
		t.Fatal(err)
	}
}

func TestDegradedResultsAreNotCached(t *testing.T) {
	reg := &trace.Registry{}
	var calls atomic.Int64
	s := New(Options{Registry: reg, Run: func(ctx context.Context, experiment string, scale harness.Scale, w io.Writer) error {
		calls.Add(1)
		fmt.Fprintln(w, "partial work before the panic")
		return fmt.Errorf("cell boom: %w", runner.ErrCellPanic)
	}})
	ctx := context.Background()
	req := RunRequest{Experiment: "flaky"}

	for i := 0; i < 2; i++ {
		res, err := s.Do(ctx, req)
		if err == nil {
			t.Fatal("degraded run reported success")
		}
		if !res.Degraded {
			t.Fatalf("run %d not marked degraded", i)
		}
		if !strings.Contains(res.Output, "partial work") {
			t.Fatalf("partial output lost: %q", res.Output)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("degraded result was cached (%d executions, want 2)", calls.Load())
	}
	if deg := reg.Get(trace.CtrServiceDegraded); deg != 2 {
		t.Fatalf("service.degraded = %g, want 2", deg)
	}
	if s.cache.Len() != 0 {
		t.Fatal("degraded result entered the cache")
	}
}

func TestCloseRefusesNewWork(t *testing.T) {
	s := New(Options{Run: countingRun(new(atomic.Int64), "out")})
	ctx := context.Background()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(ctx, RunRequest{Experiment: "late"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Close Do: %v, want ErrDraining", err)
	}
}

func TestSeedGateSerializesSeeds(t *testing.T) {
	var g seedGate
	ctx := context.Background()
	if err := g.acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(ctx, 1); err != nil {
		t.Fatal(err) // same seed runs concurrently
	}
	acquired := make(chan struct{})
	go func() {
		if err := g.acquire(ctx, 2); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("seed 2 acquired while seed 1 was active")
	case <-time.After(20 * time.Millisecond):
	}
	g.release()
	select {
	case <-acquired:
		t.Fatal("seed 2 acquired while a seed-1 run remained")
	case <-time.After(20 * time.Millisecond):
	}
	g.release() // active drops to 0; seed 2 may proceed
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("seed 2 never acquired after the seed-1 set drained")
	}
	if got := harness.Seed(); got != 2 {
		t.Fatalf("harness seed = %d, want 2", got)
	}
	g.release()
	harness.SetSeed(1) // restore the process default for other tests
}

func TestSeedGateAcquireHonorsCancellation(t *testing.T) {
	var g seedGate
	bg := context.Background()
	if err := g.acquire(bg, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel()
	if err := g.acquire(ctx, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked acquire: %v, want context.DeadlineExceeded", err)
	}
	g.release()
	harness.SetSeed(1)
}
