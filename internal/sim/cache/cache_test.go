package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() Config { return Config{SizeBytes: 4096, LineBytes: 64, Ways: 4} }

func TestConfigValidate(t *testing.T) {
	good := []Config{
		small(),
		{SizeBytes: 768 << 10, LineBytes: 64, Ways: 16},
		{SizeBytes: 64, LineBytes: 64, Ways: 1},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 4},
		{SizeBytes: 4096, LineBytes: 0, Ways: 4},
		{SizeBytes: 4096, LineBytes: 63, Ways: 4},
		{SizeBytes: 4096, LineBytes: 64, Ways: 0},
		{SizeBytes: 4000, LineBytes: 64, Ways: 4}, // not divisible
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{SizeBytes: -1, LineBytes: 64, Ways: 4})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	if c.Access(0x1000) {
		t.Error("first access hit; want cold miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed; want hit")
	}
	// Same line, different byte.
	if !c.Access(0x103F) {
		t.Error("same-line access missed; want hit")
	}
	// Next line.
	if c.Access(0x1040) {
		t.Error("next-line access hit; want miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 4/2/2", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 4-way cache, 16 sets. Hammer one set with 5 distinct tags: the
	// least recently used must be evicted.
	c := New(small())
	setStride := uint64(16 * 64) // tags mapping to set 0
	for i := uint64(0); i < 4; i++ {
		c.Access(i * setStride)
	}
	// Touch tag 0 again so tag 1 becomes LRU.
	if !c.Access(0) {
		t.Fatal("tag 0 should hit")
	}
	// Insert a fifth tag: evicts tag 1.
	c.Access(4 * setStride)
	if !c.Access(0) {
		t.Error("tag 0 evicted; want retained (was MRU)")
	}
	if c.Access(1 * setStride) {
		t.Error("tag 1 hit; want evicted as LRU")
	}
	if c.Stats().Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestStreamingMissRate(t *testing.T) {
	// A pure streaming pass over memory much larger than the cache
	// should miss once per line: with 4-byte accesses and 64-byte
	// lines, miss rate = 1/16.
	c := New(small())
	for addr := uint64(0); addr < 1<<20; addr += 4 {
		c.Access(addr)
	}
	got := c.Stats().MissRate()
	want := 1.0 / 16.0
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("streaming miss rate = %g, want ≈%g", got, want)
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// A working set smaller than capacity must be all-hits after warmup.
	c := New(small())
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 2048; addr += 64 {
			c.Access(addr)
		}
	}
	c2 := New(small())
	// warm
	for addr := uint64(0); addr < 2048; addr += 64 {
		c2.Access(addr)
	}
	c2.Reset()
	// Reset must clear contents:
	if c2.Access(0) {
		t.Error("hit after Reset; want cold miss")
	}

	s := c.Stats()
	wantMisses := uint64(2048 / 64) // only the first pass misses
	if s.Misses != wantMisses {
		t.Errorf("misses = %d, want %d (working set fits)", s.Misses, wantMisses)
	}
}

func TestAccessRange(t *testing.T) {
	c := New(small())
	// 256 bytes spanning 5 lines when misaligned by 32.
	misses := c.AccessRange(32, 256)
	if misses != 5 {
		t.Errorf("AccessRange misses = %d, want 5", misses)
	}
	if m := c.AccessRange(32, 256); m != 0 {
		t.Errorf("second AccessRange misses = %d, want 0", m)
	}
	if m := c.AccessRange(0, 0); m != 0 {
		t.Errorf("empty range misses = %d, want 0", m)
	}
	if m := c.AccessRange(0, -4); m != 0 {
		t.Errorf("negative range misses = %d, want 0", m)
	}
}

func TestReplayMissRate(t *testing.T) {
	trace := make([]uint64, 4096)
	for i := range trace {
		trace[i] = uint64(i) * 64
	}
	// Streaming 64-byte lines over 256 KB with a 4 KB cache: all miss.
	if got := ReplayMissRate(small(), trace, 8); got != 1.0 {
		t.Errorf("streaming replay miss rate = %g, want 1.0", got)
	}
	// Empty trace.
	if got := ReplayMissRate(small(), nil, 8); got != 0 {
		t.Errorf("empty replay miss rate = %g, want 0", got)
	}
}

func TestStatsRates(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.HitRate() != 0 {
		t.Error("zero stats must have zero rates")
	}
	s = Stats{Accesses: 10, Hits: 7, Misses: 3}
	if s.MissRate() != 0.3 || s.HitRate() != 0.7 {
		t.Errorf("rates = %g/%g, want 0.3/0.7", s.MissRate(), s.HitRate())
	}
}

// Property: hits + misses == accesses, and a bigger cache never has a
// worse hit count on the same trace (LRU inclusion property holds for
// same-line-size, same-associativity stacked sizes... we check the weaker
// monotone-in-practice property on random traces with doubled capacity and
// doubled ways, which preserves the set mapping).
func TestQuickCacheInvariants(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]uint64, int(n)%512+16)
		for i := range trace {
			trace[i] = uint64(rng.Intn(1 << 16))
		}
		cSmall := New(Config{SizeBytes: 2048, LineBytes: 64, Ways: 2})
		cBig := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
		for _, a := range trace {
			cSmall.Access(a)
			cBig.Access(a)
		}
		ss, sb := cSmall.Stats(), cBig.Stats()
		if ss.Hits+ss.Misses != ss.Accesses || sb.Hits+sb.Misses != sb.Accesses {
			return false
		}
		// LRU stack property: doubling ways with same set count
		// can only add hits.
		return sb.Hits >= ss.Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSetsAndConfigAccessors(t *testing.T) {
	c := New(small())
	if c.Sets() != 16 {
		t.Errorf("Sets() = %d, want 16", c.Sets())
	}
	if c.Config() != small() {
		t.Errorf("Config() = %+v, want %+v", c.Config(), small())
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(Config{SizeBytes: 768 << 10, LineBytes: 64, Ways: 16})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 28))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(1<<16-1)])
	}
}
