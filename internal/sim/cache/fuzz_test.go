package cache

import (
	"encoding/binary"
	"testing"
)

// fuzzGeometry maps two fuzz bytes onto a valid cache geometry so the fuzzer
// explores different set counts and associativities, not just addresses.
func fuzzGeometry(g1, g2 byte) Config {
	lineBytes := 16 << (g1 % 4) // 16..128
	ways := 1 + int(g2%8)       // 1..8
	sets := 1 + int(g1/4)%96    // includes non-power-of-two set counts
	return Config{
		SizeBytes: sets * ways * lineBytes,
		LineBytes: lineBytes,
		Ways:      ways,
	}
}

// FuzzCacheAccess replays an arbitrary byte string as an address/size trace
// against a fuzz-chosen geometry and checks the simulator's invariants:
// stats always balance, an immediate re-access of a just-touched address
// hits, and AccessRange's miss count stays within the range's line count.
func FuzzCacheAccess(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{7, 255, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 2})
	f.Add([]byte{128, 33, 0, 0, 0, 0, 0, 0, 0, 64, 0, 0, 0, 0, 0, 0, 0, 64})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		cfg := fuzzGeometry(data[0], data[1])
		if err := cfg.Validate(); err != nil {
			t.Fatalf("fuzzGeometry produced invalid %+v: %v", cfg, err)
		}
		c := New(cfg)

		for rest := data[2:]; len(rest) >= 9; rest = rest[9:] {
			addr := binary.LittleEndian.Uint64(rest)
			size := int(rest[8])
			if size == 0 {
				c.Access(addr)
				if !c.Access(addr) {
					t.Fatalf("re-access of %#x missed immediately after touch", addr)
				}
				continue
			}
			// Cap addr so addr+size cannot wrap uint64.
			addr %= 1 << 48
			misses := c.AccessRange(addr, size)
			lines := int((addr+uint64(size)-1)>>c.lineShift-addr>>c.lineShift) + 1
			if misses < 0 || misses > lines {
				t.Fatalf("AccessRange(%#x, %d) = %d misses over %d lines", addr, size, misses, lines)
			}
		}

		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			t.Fatalf("stats do not balance: %+v", s)
		}
		if s.Evictions > s.Misses {
			t.Fatalf("more evictions than misses: %+v", s)
		}
		if r := s.MissRate(); r < 0 || r > 1 {
			t.Fatalf("miss rate %g out of [0,1]", r)
		}

		c.Reset()
		if c.Stats() != (Stats{}) {
			t.Fatalf("Reset left stats %+v", c.Stats())
		}
	})
}
