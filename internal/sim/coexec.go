package sim

// Co-execution: splitting one kernel's iteration space across the host CPU
// and the accelerator. The machine side is deliberately thin — it owns the
// per-device virtual command queues and the merge into the clock/ledger —
// while the partitioning policy lives behind CoexecPlanner (implemented by
// internal/sched, which imports sim; the interface keeps the dependency
// one-way, like fault.Injector).

import (
	"fmt"

	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// CoexecLaunch is one kernel launch eligible for CPU+accelerator
// co-execution: the same iteration space costed twice, once as the device
// compiler emits it and once as the host (OpenMP) compiler emits it. The
// two costs must cover the same Items; planners carve chunks by copying a
// cost and shrinking Items (every other KernelCost field is a per-item
// average, so a chunk's cost is exact).
type CoexecLaunch struct {
	Name  string
	Accel timing.KernelCost
	Host  timing.KernelCost
}

// CoexecPlanner partitions a launch across the two devices of a machine.
// Implementations call BeginCoexec, run chunks on the queue pair, and
// return the merged result.
type CoexecPlanner interface {
	LaunchSplit(m *Machine, l CoexecLaunch) timing.Result
}

// SetCoexec attaches a co-execution planner; eligible launches routed via
// LaunchKernelSplit are split across host and accelerator. Panics on nil;
// use ClearCoexec to detach.
func (m *Machine) SetCoexec(p CoexecPlanner) {
	if p == nil {
		panic("sim: SetCoexec(nil); use ClearCoexec")
	}
	m.mu.Lock()
	m.coexec = p
	m.mu.Unlock()
}

// ClearCoexec detaches the planner; subsequent launches are single-device.
func (m *Machine) ClearCoexec() {
	m.mu.Lock()
	m.coexec = nil
	m.mu.Unlock()
}

// Coexec returns the attached planner, or nil.
func (m *Machine) Coexec() CoexecPlanner {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coexec
}

// LaunchKernelSplit routes one accelerator launch through the attached
// co-execution planner. ok is false when no planner is attached — the
// caller falls through to its normal single-device path — so, like the
// fault injector, a machine without co-execution pays only a nil check.
func (m *Machine) LaunchKernelSplit(name string, accel, host timing.KernelCost) (timing.Result, bool) {
	if m.coexec == nil {
		return timing.Result{}, false
	}
	if accel.Items != host.Items {
		panic(fmt.Sprintf("sim: split launch %q costs disagree on items (%d vs %d)", name, accel.Items, host.Items))
	}
	return m.coexec.LaunchSplit(m, CoexecLaunch{Name: name, Accel: accel, Host: host}), true
}

// CoexecQueue is the pair of per-device virtual command queues backing one
// co-executed launch. Both queues open at the machine clock; chunks run
// back-to-back on their device's queue; Merge advances the machine clock
// by the longer queue, so the two devices overlap in virtual time exactly
// as the emitted spans show. A queue is used by one goroutine (the
// launching runtime); the machine mutex guards the shared ledger.
type CoexecQueue struct {
	m       *Machine
	startNs float64
	busy    [2]float64 // indexed by Target
	chunks  [2]int
}

// BeginCoexec opens a queue pair at the current virtual clock.
func (m *Machine) BeginCoexec() *CoexecQueue {
	m.mu.Lock()
	q := &CoexecQueue{m: m, startNs: m.clockNs}
	m.mu.Unlock()
	return q
}

// StartNs returns the virtual time both queues opened at.
func (q *CoexecQueue) StartNs() float64 { return q.startNs }

// AvailNs returns when the target's queue next frees up, relative to the
// queue-pair start.
func (q *CoexecQueue) AvailNs(t Target) float64 { return q.busy[t] }

// ChunkCount returns how many chunks have been booked on the target.
func (q *CoexecQueue) ChunkCount(t Target) int { return q.chunks[t] }

// chunkResult times a chunk on the target, applying the in-order queue's
// pipelining: the fixed launch/fork overhead is exposed only on a queue's
// first chunk — later chunks are enqueued while their predecessor runs, so
// their issue cost hides under it.
func (q *CoexecQueue) chunkResult(t Target, cost timing.KernelCost) timing.Result {
	model := q.m.accelModel
	if t == OnHost {
		model = q.m.hostModel
	}
	r := model.Kernel(cost)
	if q.chunks[t] > 0 {
		r.TimeNs -= r.LaunchNs
		r.LaunchNs = 0
	}
	return r
}

// ChunkTimeNs previews what a chunk would cost on the target right now
// without booking it — the planner's look-ahead for earliest-finish
// device selection.
func (q *CoexecQueue) ChunkTimeNs(t Target, cost timing.KernelCost) float64 {
	return q.chunkResult(t, cost).TimeNs
}

// RunChunk books one chunk at the tail of the target's queue and returns
// its timing. The machine clock does not advance until Merge; the chunk's
// span (when traced) is emitted at its queue position so host and
// accelerator chunks of one launch overlap on the timeline.
func (q *CoexecQueue) RunChunk(t Target, name string, cost timing.KernelCost) timing.Result {
	r := q.chunkResult(t, cost)
	m := q.m
	m.mu.Lock()
	start := q.startNs + q.busy[t]
	q.busy[t] += r.TimeNs
	q.chunks[t]++
	// Characterization accumulators see every chunk; kernelNs (added at
	// Merge) sees only the critical path, so IPC is mildly overweighted
	// while two devices overlap — acceptable for a metric the co-execution
	// experiment does not report.
	m.ipcWeighted += r.IPC * r.TimeNs
	if m.boundNs == nil {
		m.boundNs = make(map[string]float64)
	}
	m.boundNs[r.Bound] += r.TimeNs - r.LaunchNs
	if m.tracer != nil {
		side := "acc"
		if t == OnHost {
			side = "cpu"
		}
		m.emitKernelLocked(t, fmt.Sprintf("%s#%s%d", name, side, q.chunks[t]-1), cost, r, start)
	}
	m.mu.Unlock()
	return r
}

// Merge closes the queue pair: the machine clock and kernel split clock
// advance by the longer device queue (the co-executed launch's makespan),
// and the imbalance between the two queues is published as a counter.
// Returns the makespan in ns.
func (q *CoexecQueue) Merge() float64 {
	wall := q.busy[OnHost]
	if q.busy[OnAccelerator] > wall {
		wall = q.busy[OnAccelerator]
	}
	m := q.m
	m.mu.Lock()
	m.clockNs += wall
	m.kernelNs += wall
	if m.tracer != nil {
		reg := m.tracer.Metrics()
		reg.Add(trace.CtrSchedSplits, 1)
		imb := q.busy[OnHost] - q.busy[OnAccelerator]
		if imb < 0 {
			imb = -imb
		}
		reg.Add(trace.CtrSchedImbalanceNs, imb)
	}
	m.mu.Unlock()
	return wall
}
