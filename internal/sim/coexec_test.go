package sim

import (
	"strings"
	"testing"

	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// halfAndHalf splits every launch evenly — the minimal planner for
// machine-side tests (the real policies live in internal/sched).
type halfAndHalf struct{ calls int }

func (p *halfAndHalf) LaunchSplit(m *Machine, l CoexecLaunch) timing.Result {
	p.calls++
	q := m.BeginCoexec()
	h := l.Host
	h.Items = l.Host.Items / 2
	a := l.Accel
	a.Items = l.Accel.Items - h.Items
	q.RunChunk(OnAccelerator, l.Name, a)
	q.RunChunk(OnHost, l.Name, h)
	wall := q.Merge()
	return timing.Result{TimeNs: wall}
}

func TestLaunchKernelSplitWithoutPlanner(t *testing.T) {
	m := NewDGPU()
	if _, ok := m.LaunchKernelSplit("k", cost(), cost()); ok {
		t.Fatal("split launch reported ok with no planner attached")
	}
	if m.ElapsedNs() != 0 {
		t.Error("declined split launch advanced the clock")
	}
}

func TestSetCoexecRoutesLaunches(t *testing.T) {
	m := NewDGPU()
	p := &halfAndHalf{}
	m.SetCoexec(p)
	if m.Coexec() == nil {
		t.Fatal("Coexec() nil after SetCoexec")
	}
	r, ok := m.LaunchKernelSplit("k", cost(), cost())
	if !ok || p.calls != 1 {
		t.Fatalf("split launch ok=%v planner calls=%d, want routed once", ok, p.calls)
	}
	if r.TimeNs <= 0 || m.ElapsedNs() != r.TimeNs {
		t.Errorf("merged result %g ns vs clock %g ns", r.TimeNs, m.ElapsedNs())
	}
	m.ClearCoexec()
	if _, ok := m.LaunchKernelSplit("k", cost(), cost()); ok {
		t.Error("split launch still routed after ClearCoexec")
	}
}

// The queue pair must overlap the two devices: the merged clock advance is
// the longer queue, not the sum, and both clocks beat the single-device
// alternative for this even split.
func TestCoexecQueueOverlapsDevices(t *testing.T) {
	m := NewDGPU()
	q := m.BeginCoexec()
	ra := q.RunChunk(OnAccelerator, "k", cost())
	rh := q.RunChunk(OnHost, "k", cost())
	wall := q.Merge()
	longer, shorter := ra.TimeNs, rh.TimeNs
	if shorter > longer {
		longer, shorter = shorter, longer
	}
	if wall != longer {
		t.Errorf("merge advanced %g ns, want the longer queue %g ns", wall, longer)
	}
	if m.ElapsedNs() != wall || m.KernelNs() != wall {
		t.Errorf("clock %g / kernel %g ns, want both %g", m.ElapsedNs(), m.KernelNs(), wall)
	}
}

// Later chunks on one in-order queue are enqueued while their predecessor
// runs, so only the first exposes the fixed launch overhead.
func TestCoexecQueuePipelinesLaunchOverhead(t *testing.T) {
	m := NewDGPU()
	q := m.BeginCoexec()
	first := q.RunChunk(OnAccelerator, "k", cost())
	second := q.RunChunk(OnAccelerator, "k", cost())
	if first.LaunchNs <= 0 {
		t.Fatal("first chunk carries no launch overhead")
	}
	if second.LaunchNs != 0 {
		t.Errorf("second chunk still charged %g ns launch overhead", second.LaunchNs)
	}
	if got, want := first.TimeNs-second.TimeNs, first.LaunchNs; got != want {
		t.Errorf("pipelining saved %g ns, want the launch overhead %g ns", got, want)
	}
}

// Co-executed chunks must appear as overlapping spans on the two device
// tracks, both starting at the queue-pair origin.
func TestCoexecQueueEmitsOverlappingSpans(t *testing.T) {
	m := NewDGPU()
	tr := trace.New()
	m.SetTracer(tr)
	m.LaunchKernel(OnAccelerator, "warm", cost()) // offset the queue start
	q := m.BeginCoexec()
	q.RunChunk(OnAccelerator, "split", cost())
	q.RunChunk(OnHost, "split", cost())
	q.Merge()

	var host, accel *trace.Span
	for _, s := range tr.Spans() {
		s := s
		if !strings.HasPrefix(s.Name, "split#") {
			continue
		}
		switch s.Track {
		case trace.TrackHost:
			host = &s
		case trace.TrackAccelerator:
			accel = &s
		}
	}
	if host == nil || accel == nil {
		t.Fatalf("missing chunk spans (host=%v accel=%v)", host != nil, accel != nil)
	}
	if host.StartNs != accel.StartNs {
		t.Errorf("chunk spans start at %g and %g ns, want the shared queue origin", host.StartNs, accel.StartNs)
	}
	if host.StartNs != q.StartNs() || q.StartNs() <= 0 {
		t.Errorf("spans start at %g ns, want queue origin %g ns (after warmup)", host.StartNs, q.StartNs())
	}
	// Overlap: each span begins before the other ends.
	if host.StartNs >= accel.StartNs+accel.DurNs || accel.StartNs >= host.StartNs+host.DurNs {
		t.Error("host and accelerator chunks do not overlap in virtual time")
	}
	if got := tr.Metrics().Get(trace.CtrSchedSplits); got != 1 {
		t.Errorf("sched.splits = %g, want 1", got)
	}
}

func TestSetCoexecNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetCoexec(nil) did not panic")
		}
	}()
	NewDGPU().SetCoexec(nil)
}
