package sim

// DAG execution: running a multi-kernel workload whose kernels form a
// dependency graph, with independent kernels overlapping on the two
// devices. The machine side mirrors coexec.go — it owns a pair of
// per-device virtual command queues and the merge into the clock — while
// the placement policy lives in internal/sched's DagPlanner (sched imports
// sim, keeping the dependency one-way, like CoexecPlanner).
//
// A DagQueue differs from a CoexecQueue in two ways. First, kernels are
// distinct launches rather than chunks of one launch, so every booking
// pays its full launch overhead. Second, a kernel may not start before its
// dependencies finish: bookings carry a ready time, and a queue may go
// idle between kernels (the gap is tallied so schedulers can report
// dependency stalls).

import (
	"hetbench/internal/sim/timing"
)

// DagQueue is the pair of per-device in-order virtual command queues
// backing one DAG-scheduled workload. Both queues open at the machine
// clock; Merge advances the clock by the longer queue (the workload's
// makespan), so kernels on the two devices overlap in virtual time exactly
// as the emitted spans show. A queue is used by one goroutine (the
// planning loop); the machine mutex guards the shared ledger.
type DagQueue struct {
	m       *Machine
	startNs float64
	busy    [2]float64 // indexed by Target
	idle    [2]float64 // dependency-wait gaps, indexed by Target
	count   [2]int
}

// BeginDag opens a DAG queue pair at the current virtual clock.
func (m *Machine) BeginDag() *DagQueue {
	m.mu.Lock()
	q := &DagQueue{m: m, startNs: m.clockNs}
	m.mu.Unlock()
	return q
}

// StartNs returns the virtual time both queues opened at.
func (q *DagQueue) StartNs() float64 { return q.startNs }

// AvailNs returns when the target's queue next frees up, relative to the
// queue-pair start.
func (q *DagQueue) AvailNs(t Target) float64 { return q.busy[t] }

// IdleNs returns the dependency-wait time accumulated on the target's
// queue: virtual time the device sat idle because every booked kernel's
// inputs were still in flight on the other device.
func (q *DagQueue) IdleNs(t Target) float64 { return q.idle[t] }

// KernelCount returns how many kernels have been booked on the target.
func (q *DagQueue) KernelCount(t Target) int { return q.count[t] }

// KernelTimeNs previews what a kernel would cost on the target without
// booking it — the planner's look-ahead for earliest-finish placement.
// Unlike chunks of one co-executed launch, every DAG kernel is a distinct
// launch, so the preview always includes the launch overhead.
func (q *DagQueue) KernelTimeNs(t Target, cost timing.KernelCost) float64 {
	model := q.m.accelModel
	if t == OnHost {
		model = q.m.hostModel
	}
	return model.Kernel(cost).TimeNs
}

// RunKernel books one kernel at the tail of the target's queue, no earlier
// than readyNs (relative to StartNs — the latest finish of the kernel's
// dependencies). It returns the kernel's timing and its completion time
// relative to StartNs. The machine clock does not advance until Merge; the
// kernel's span (when traced) is emitted at its queue position so
// independent kernels of one workload overlap on the timeline.
func (q *DagQueue) RunKernel(t Target, name string, cost timing.KernelCost, readyNs float64) (timing.Result, float64) {
	model := q.m.accelModel
	if t == OnHost {
		model = q.m.hostModel
	}
	r := model.Kernel(cost)
	m := q.m
	m.mu.Lock()
	start := q.busy[t]
	if readyNs > start {
		q.idle[t] += readyNs - start
		start = readyNs
	}
	q.busy[t] = start + r.TimeNs
	q.count[t]++
	// Characterization accumulators see every kernel; kernelNs (added at
	// Merge) sees only the critical path, so IPC is mildly overweighted
	// while the devices overlap — same trade as the coexec queue.
	m.ipcWeighted += r.IPC * r.TimeNs
	if m.boundNs == nil {
		m.boundNs = make(map[string]float64)
	}
	m.boundNs[r.Bound] += r.TimeNs - r.LaunchNs
	if m.tracer != nil {
		m.emitKernelLocked(t, name, cost, r, q.startNs+start)
	}
	m.mu.Unlock()
	return r, start + r.TimeNs
}

// RunTransfer books one staging copy at the tail of the target's queue, no
// earlier than readyNs: the DMA for a kernel's inputs serializes ahead of
// it on its device's in-order command queue. Returns the transfer's
// completion time relative to StartNs. On unified machines the copy is
// free, like the machine's transfer helpers; across PCIe it costs link
// time and is recorded in the link's traffic ledger. DAG staging consults
// no fault injector — transfer-level faults stay on the serial path, while
// device-loss windows reach DAG execution through the planner's rebooking.
func (q *DagQueue) RunTransfer(t Target, kind EventKind, name string, bytes int64, readyNs float64) float64 {
	var ns float64
	if q.m.link != nil {
		var us float64
		if kind == EvHostToDevice {
			us = q.m.link.ToDevice(bytes)
		} else {
			us = q.m.link.FromDevice(bytes)
		}
		ns = us * 1e3
	}
	m := q.m
	m.mu.Lock()
	start := q.busy[t]
	if readyNs > start {
		q.idle[t] += readyNs - start
		start = readyNs
	}
	q.busy[t] = start + ns
	if m.tracer != nil {
		m.emitTransferLocked(kind, name, bytes, ns, q.startNs+start)
	}
	m.mu.Unlock()
	return start + ns
}

// Merge closes the queue pair: the machine clock and kernel split clock
// advance by the longer device queue — the DAG workload's makespan.
// Returns the makespan in ns. Counters describing the plan are the
// planner's to publish (see internal/sched's DagPlanner).
func (q *DagQueue) Merge() float64 {
	wall := q.busy[OnHost]
	if q.busy[OnAccelerator] > wall {
		wall = q.busy[OnAccelerator]
	}
	m := q.m
	m.mu.Lock()
	m.clockNs += wall
	m.kernelNs += wall
	m.mu.Unlock()
	return wall
}
