package device

// The catalog mirrors Table II of the paper plus the CPU host used as the
// OpenMP baseline. Constructors return fresh copies so callers may mutate
// clock fields for sweep experiments without aliasing.

// R9280X returns the AMD Radeon R9 280X discrete GPU description
// (Tahiti XT: 32 CUs, 2048 stream processors, 925 MHz, 3 GB GDDR5 at
// 1500 MHz on a 384-bit bus for 288 GB/s raw; Table II lists 258 GB/s
// deliverable, which we use as the peak at the catalog memory clock).
func R9280X() *Device {
	return &Device{
		Name:                   "AMD Radeon R9 280X",
		Kind:                   KindDiscreteGPU,
		ComputeUnits:           32,
		LanesPerCU:             64,
		WavefrontSize:          64,
		CoreClockMHz:           925,
		MemClockMHz:            1250, // top of the paper's Fig 7 sweep
		FlopsPerLanePerClock:   2,
		DPRatio:                0.25,
		MemKind:                MemGDDR5,
		MemBusBits:             384,
		PeakBandwidthGBs:       258,
		DeviceMemoryBytes:      3 << 30,
		UnifiedMemory:          false,
		L2SizeBytes:            768 << 10, // 24 × 32 KB slices on Tahiti
		L2Ways:                 16,
		CacheLineBytes:         64,
		LDSPerCUBytes:          64 << 10,
		LDSBandwidthGBs:        3790, // one 4-byte LDS op/lane/clock
		MemLatencyNs:           350,
		MaxOutstandingReqs:     80,
		KernelLaunchOverheadUs: 8,
	}
}

// A10_7850K returns the GPU side of the AMD A10-7850K APU (Kaveri: 8 GCN
// CUs = 512 stream processors at 720 MHz sharing dual-channel DDR3-2133,
// Table II lists 33 GB/s peak shared with the CPU). Table II's "768 stream
// processors / 12 compute units" counts the 4 CPU cores' resources too; the
// GPU half is 8 CUs × 64 lanes.
func A10_7850K() *Device {
	return &Device{
		Name:                   "AMD A10-7850K APU (GPU)",
		Kind:                   KindIntegratedGPU,
		ComputeUnits:           8,
		LanesPerCU:             64,
		WavefrontSize:          64,
		CoreClockMHz:           720,
		MemClockMHz:            1066, // DDR3-2133 I/O clock basis
		FlopsPerLanePerClock:   2,
		DPRatio:                1.0 / 16.0,
		MemKind:                MemDDR3,
		MemBusBits:             128,
		PeakBandwidthGBs:       33,
		DeviceMemoryBytes:      2 << 30,
		UnifiedMemory:          true,
		L2SizeBytes:            512 << 10,
		L2Ways:                 16,
		CacheLineBytes:         64,
		LDSPerCUBytes:          64 << 10,
		LDSBandwidthGBs:        737,
		MemLatencyNs:           180,
		MaxOutstandingReqs:     48,
		KernelLaunchOverheadUs: 4, // HSA user-mode queues are cheaper
	}
}

// HostCPU returns the 4-core Steamroller CPU side of the A10-7850K at
// 3.7 GHz, the paper's OpenMP baseline. LanesPerCU models 128-bit SIMD
// (4 SP lanes); DPRatio 0.5 halves throughput for doubles.
func HostCPU() *Device {
	return &Device{
		Name:                   "AMD A10-7850K CPU (4 cores)",
		Kind:                   KindCPU,
		ComputeUnits:           4,
		LanesPerCU:             4,
		WavefrontSize:          4, // SIMD-width instruction granularity
		IssuePerClock:          3, // superscalar front end
		CoreClockMHz:           3700,
		MemClockMHz:            1066,
		FlopsPerLanePerClock:   2,
		DPRatio:                0.5,
		MemKind:                MemDDR3,
		MemBusBits:             128,
		PeakBandwidthGBs:       25, // CPU-achievable share of the 33 GB/s
		DeviceMemoryBytes:      32 << 30,
		UnifiedMemory:          true,
		L2SizeBytes:            4 << 20,
		L2Ways:                 16,
		CacheLineBytes:         64,
		LDSPerCUBytes:          0,
		LDSBandwidthGBs:        0,
		MemLatencyNs:           90,
		MaxOutstandingReqs:     10,
		KernelLaunchOverheadUs: 0.5, // thread-team fork/join
	}
}

// Catalog returns all stock devices keyed by a short identifier usable on
// command lines ("r9-280x", "a10-7850k", "cpu").
func Catalog() map[string]*Device {
	return map[string]*Device{
		"r9-280x":   R9280X(),
		"a10-7850k": A10_7850K(),
		"cpu":       HostCPU(),
	}
}

// Lookup returns the stock device with the given identifier, or nil.
func Lookup(id string) *Device {
	return Catalog()[id]
}
