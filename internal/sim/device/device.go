// Package device describes the hardware platforms simulated by hetbench.
//
// A Device is a static description of one computational unit — a discrete
// GPU, the GPU side of an APU, or a multicore CPU — carrying the geometry
// (compute units, SIMD lanes), clock domains, arithmetic throughput ratios
// and memory-system parameters that the timing model consumes. The catalog
// in catalog.go mirrors Table II of the paper (AMD Radeon R9 280X and AMD
// A10-7850K).
package device

import (
	"errors"
	"fmt"
)

// Kind distinguishes the classes of device the simulator models.
type Kind int

const (
	// KindCPU is a multicore scalar/SIMD x86-style processor.
	KindCPU Kind = iota
	// KindDiscreteGPU is a GPU on the far side of a PCIe link with its
	// own high-bandwidth memory.
	KindDiscreteGPU
	// KindIntegratedGPU is the GPU half of an APU sharing host memory.
	KindIntegratedGPU
)

// String returns a human-readable name for the device kind.
func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "CPU"
	case KindDiscreteGPU:
		return "discrete GPU"
	case KindIntegratedGPU:
		return "integrated GPU"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MemKind identifies the DRAM technology attached to a device; it selects
// the bandwidth-versus-frequency curve in the memory model.
type MemKind int

const (
	// MemDDR3 is commodity host memory (dual-channel DDR3 in Table II).
	MemDDR3 MemKind = iota
	// MemGDDR5 is high-bandwidth graphics memory (384-bit GDDR5 on the
	// R9 280X).
	MemGDDR5
)

// String returns the DRAM technology name.
func (m MemKind) String() string {
	if m == MemGDDR5 {
		return "GDDR5"
	}
	return "DDR3"
}

// Device is an immutable description of one simulated processor.
// All rates are in base (non-boost) terms; the timing model applies
// frequency overrides for sweep experiments.
type Device struct {
	Name string
	Kind Kind

	// Geometry. For GPUs a compute unit is 4 SIMDs × 16 lanes = 64-wide
	// wavefronts; for CPUs ComputeUnits is the core count and LanesPerCU
	// is the SIMD width of one core (e.g. 4 for 256-bit AVX doubles).
	ComputeUnits int
	LanesPerCU   int
	// WavefrontSize is the scheduling granularity (64 on GCN GPUs,
	// 1 on CPUs).
	WavefrontSize int

	// Clocks (MHz).
	CoreClockMHz int
	MemClockMHz  int

	// FlopsPerLanePerClock is the per-lane single-precision multiply-add
	// issue rate (2 for FMA-capable hardware).
	FlopsPerLanePerClock float64
	// DPRatio is double-precision throughput relative to single
	// (1/4 on the R9 280X, 1/16 on the A10-7850K GPU, 1/2 on the CPU).
	DPRatio float64

	// Memory system.
	MemKind            MemKind
	MemBusBits         int     // DRAM bus width
	PeakBandwidthGBs   float64 // at MemClockMHz
	DeviceMemoryBytes  int64   // capacity (3 GB dGPU, shared on APU)
	UnifiedMemory      bool    // true when no staging copies are needed
	L2SizeBytes        int
	L2Ways             int
	CacheLineBytes     int
	LDSPerCUBytes      int
	LDSBandwidthGBs    float64 // aggregate local-data-store bandwidth
	MemLatencyNs       float64 // unloaded DRAM round-trip
	MaxOutstandingReqs int     // per CU, limits latency-bound bandwidth

	// IssuePerClock is how many (wavefront) instructions one compute
	// unit issues per clock: 1 on GCN front ends, ~3 on superscalar CPU
	// cores. Zero is treated as 1.
	IssuePerClock float64

	// KernelLaunchOverheadUs is the fixed host-side cost of one launch.
	KernelLaunchOverheadUs float64
}

// Validate reports a descriptive error if the device description is
// internally inconsistent or missing required fields.
func (d *Device) Validate() error {
	switch {
	case d.Name == "":
		return errors.New("device: name is empty")
	case d.ComputeUnits <= 0:
		return fmt.Errorf("device %s: ComputeUnits must be positive, got %d", d.Name, d.ComputeUnits)
	case d.LanesPerCU <= 0:
		return fmt.Errorf("device %s: LanesPerCU must be positive, got %d", d.Name, d.LanesPerCU)
	case d.WavefrontSize <= 0:
		return fmt.Errorf("device %s: WavefrontSize must be positive, got %d", d.Name, d.WavefrontSize)
	case d.CoreClockMHz <= 0:
		return fmt.Errorf("device %s: CoreClockMHz must be positive, got %d", d.Name, d.CoreClockMHz)
	case d.MemClockMHz <= 0:
		return fmt.Errorf("device %s: MemClockMHz must be positive, got %d", d.Name, d.MemClockMHz)
	case d.FlopsPerLanePerClock <= 0:
		return fmt.Errorf("device %s: FlopsPerLanePerClock must be positive", d.Name)
	case d.DPRatio <= 0 || d.DPRatio > 1:
		return fmt.Errorf("device %s: DPRatio must be in (0,1], got %g", d.Name, d.DPRatio)
	case d.PeakBandwidthGBs <= 0:
		return fmt.Errorf("device %s: PeakBandwidthGBs must be positive", d.Name)
	case d.L2SizeBytes <= 0 || d.L2Ways <= 0 || d.CacheLineBytes <= 0:
		return fmt.Errorf("device %s: L2 geometry must be positive", d.Name)
	case d.L2SizeBytes%(d.L2Ways*d.CacheLineBytes) != 0:
		return fmt.Errorf("device %s: L2 size %d not divisible by ways*line", d.Name, d.L2SizeBytes)
	case d.MemLatencyNs <= 0:
		return fmt.Errorf("device %s: MemLatencyNs must be positive", d.Name)
	case d.MaxOutstandingReqs <= 0:
		return fmt.Errorf("device %s: MaxOutstandingReqs must be positive", d.Name)
	}
	return nil
}

// PeakSPGflops returns the single-precision peak in GFLOP/s at the base
// core clock. (R9 280X: 2048 lanes × 2 × 0.925 GHz ≈ 3790 GFLOPS, matching
// Table II's 3800.)
func (d *Device) PeakSPGflops() float64 {
	return d.PeakSPGflopsAt(d.CoreClockMHz)
}

// PeakSPGflopsAt returns the single-precision peak at an overridden core
// clock in MHz.
func (d *Device) PeakSPGflopsAt(coreMHz int) float64 {
	lanes := float64(d.ComputeUnits * d.LanesPerCU)
	return lanes * d.FlopsPerLanePerClock * float64(coreMHz) / 1000.0
}

// PeakDPGflops returns the double-precision peak at the base core clock.
func (d *Device) PeakDPGflops() float64 {
	return d.PeakSPGflops() * d.DPRatio
}

// TotalLanes returns the number of hardware SIMD lanes (stream processors
// in AMD marketing terms: 2048 on the R9 280X, 512 on the A10-7850K GPU).
func (d *Device) TotalLanes() int {
	return d.ComputeUnits * d.LanesPerCU
}

// BandwidthAt scales peak DRAM bandwidth linearly with memory clock, which
// holds for DRAM in the frequency ranges the paper sweeps (480–1250 MHz).
func (d *Device) BandwidthAt(memMHz int) float64 {
	return d.PeakBandwidthGBs * float64(memMHz) / float64(d.MemClockMHz)
}

// String implements fmt.Stringer with a compact spec line.
func (d *Device) String() string {
	return fmt.Sprintf("%s (%s, %d CU × %d lanes @ %d MHz, %s %.0f GB/s)",
		d.Name, d.Kind, d.ComputeUnits, d.LanesPerCU, d.CoreClockMHz,
		d.MemKind, d.PeakBandwidthGBs)
}
