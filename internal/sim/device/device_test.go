package device

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCatalogValidates(t *testing.T) {
	for id, d := range Catalog() {
		if err := d.Validate(); err != nil {
			t.Errorf("catalog device %q invalid: %v", id, err)
		}
	}
}

func TestR9280XMatchesTable2(t *testing.T) {
	d := R9280X()
	if got := d.TotalLanes(); got != 2048 {
		t.Errorf("R9 280X stream processors = %d, want 2048", got)
	}
	// Table II: 3800 GFLOPS peak single precision (within 1%).
	if got := d.PeakSPGflops(); math.Abs(got-3800) > 0.01*3800 {
		t.Errorf("R9 280X SP peak = %.0f GFLOPS, want ≈3800", got)
	}
	if got := d.PeakDPGflops(); math.Abs(got-950) > 0.01*950 {
		t.Errorf("R9 280X DP peak = %.0f GFLOPS, want ≈950", got)
	}
	if d.UnifiedMemory {
		t.Error("discrete GPU must not report unified memory")
	}
	if d.Kind != KindDiscreteGPU {
		t.Errorf("kind = %v, want discrete GPU", d.Kind)
	}
}

func TestAPUMatchesTable2(t *testing.T) {
	d := A10_7850K()
	// Table II: 738 GFLOPS SP for the whole APU; the GPU half
	// contributes 512 lanes × 2 × 0.72 GHz ≈ 737 GFLOPS.
	if got := d.PeakSPGflops(); math.Abs(got-737) > 5 {
		t.Errorf("APU GPU SP peak = %.0f GFLOPS, want ≈737", got)
	}
	if !d.UnifiedMemory {
		t.Error("APU must report unified memory")
	}
	if d.DPRatio != 1.0/16.0 {
		t.Errorf("APU DP ratio = %g, want 1/16", d.DPRatio)
	}
	if d.PeakBandwidthGBs != 33 {
		t.Errorf("APU bandwidth = %g, want 33 GB/s", d.PeakBandwidthGBs)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Device)
	}{
		{"empty name", func(d *Device) { d.Name = "" }},
		{"zero CUs", func(d *Device) { d.ComputeUnits = 0 }},
		{"negative lanes", func(d *Device) { d.LanesPerCU = -1 }},
		{"zero wavefront", func(d *Device) { d.WavefrontSize = 0 }},
		{"zero core clock", func(d *Device) { d.CoreClockMHz = 0 }},
		{"zero mem clock", func(d *Device) { d.MemClockMHz = 0 }},
		{"zero flop rate", func(d *Device) { d.FlopsPerLanePerClock = 0 }},
		{"DP ratio > 1", func(d *Device) { d.DPRatio = 1.5 }},
		{"DP ratio zero", func(d *Device) { d.DPRatio = 0 }},
		{"zero bandwidth", func(d *Device) { d.PeakBandwidthGBs = 0 }},
		{"zero L2", func(d *Device) { d.L2SizeBytes = 0 }},
		{"L2 not divisible", func(d *Device) { d.L2SizeBytes = 1000; d.L2Ways = 16; d.CacheLineBytes = 64 }},
		{"zero latency", func(d *Device) { d.MemLatencyNs = 0 }},
		{"zero outstanding", func(d *Device) { d.MaxOutstandingReqs = 0 }},
	}
	for _, m := range mutations {
		d := R9280X()
		m.mut(d)
		if err := d.Validate(); err == nil {
			t.Errorf("Validate accepted device with %s", m.name)
		}
	}
}

func TestBandwidthScalesLinearly(t *testing.T) {
	d := R9280X()
	half := d.BandwidthAt(d.MemClockMHz / 2)
	if math.Abs(half-d.PeakBandwidthGBs/2) > 1e-9 {
		t.Errorf("bandwidth at half clock = %g, want %g", half, d.PeakBandwidthGBs/2)
	}
	if got := d.BandwidthAt(d.MemClockMHz); got != d.PeakBandwidthGBs {
		t.Errorf("bandwidth at base clock = %g, want %g", got, d.PeakBandwidthGBs)
	}
}

func TestPeakGflopsMonotoneInClock(t *testing.T) {
	d := A10_7850K()
	f := func(a, b uint16) bool {
		ca, cb := int(a%2000)+1, int(b%2000)+1
		if ca > cb {
			ca, cb = cb, ca
		}
		return d.PeakSPGflopsAt(ca) <= d.PeakSPGflopsAt(cb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLookup(t *testing.T) {
	if Lookup("r9-280x") == nil {
		t.Error("Lookup(r9-280x) = nil")
	}
	if Lookup("nonexistent") != nil {
		t.Error("Lookup(nonexistent) != nil")
	}
	// Constructors return fresh copies: mutating one must not affect the next.
	a := Lookup("cpu")
	a.CoreClockMHz = 1
	if Lookup("cpu").CoreClockMHz == 1 {
		t.Error("Lookup returns aliased devices")
	}
}

func TestStringContainsEssentials(t *testing.T) {
	s := R9280X().String()
	for _, want := range []string{"R9 280X", "discrete GPU", "32 CU", "GDDR5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	for _, k := range []Kind{KindCPU, KindDiscreteGPU, KindIntegratedGPU, Kind(99)} {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", int(k))
		}
	}
	if MemDDR3.String() != "DDR3" || MemGDDR5.String() != "GDDR5" {
		t.Error("MemKind.String wrong")
	}
}
