// Package exec is the functional execution engine of the simulator: it
// really runs kernel bodies (as Go closures) over an OpenCL-style NDRange,
// in parallel across host cores, while accumulating the operation counters
// (flops, bytes, instructions) that the timing model converts into
// simulated device time.
//
// Two kernel shapes are supported:
//
//   - Simple kernels: one function per work item, no cross-item
//     communication. Run with Run.
//   - Tiled kernels: work-groups with group-shared scratch (the local data
//     store) and barrier phases. A kernel that in OpenCL would be written
//     as "code; barrier(CLK_LOCAL_MEM_FENCE); code" is expressed as one
//     Phase per barrier-delimited region, which gives exactly the barrier
//     semantics (all items complete phase k before any starts k+1) without
//     per-item goroutines. Run with RunTiled.
//
// Counters are sharded per worker goroutine and merged at the end, so
// kernels may tally without atomics.
package exec

import (
	"fmt"
	"runtime"
	"sync"
)

// Counters aggregates the dynamic work of a launch. Fields are totals
// across all work items.
type Counters struct {
	SPFlops    float64
	DPFlops    float64
	LoadBytes  float64
	StoreBytes float64
	LDSBytes   float64
	Instrs     float64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.SPFlops += other.SPFlops
	c.DPFlops += other.DPFlops
	c.LoadBytes += other.LoadBytes
	c.StoreBytes += other.StoreBytes
	c.LDSBytes += other.LDSBytes
	c.Instrs += other.Instrs
}

// PerItem divides the totals by n work items, for the timing model's
// per-item cost fields.
func (c Counters) PerItem(n int) Counters {
	if n <= 0 {
		return Counters{}
	}
	f := 1 / float64(n)
	return Counters{
		SPFlops:    c.SPFlops * f,
		DPFlops:    c.DPFlops * f,
		LoadBytes:  c.LoadBytes * f,
		StoreBytes: c.StoreBytes * f,
		LDSBytes:   c.LDSBytes * f,
		Instrs:     c.Instrs * f,
	}
}

// WorkItem is the per-item context handed to simple kernels.
type WorkItem struct {
	// Global is the work item's global index.
	Global int
	// counters points at this worker's shard.
	counters *Counters
}

// Tally accumulates this item's work into the launch counters.
func (w *WorkItem) Tally(c Counters) { w.counters.Add(c) }

// Group is the per-work-group context handed to tiled kernel phases.
type Group struct {
	// ID is the work-group index; Size its item count.
	ID, Size int
	// LDS is the group-shared scratch (the local data store). Allocated
	// once per group with the size requested at launch.
	LDS []float64

	counters *Counters
}

// Tally accumulates work into the launch counters. Tiled kernels usually
// tally once per phase per group.
func (g *Group) Tally(c Counters) { g.counters.Add(c) }

// GlobalID returns the global index of local item l in this group.
func (g *Group) GlobalID(l int) int { return g.ID*g.Size + l }

// Phase is one barrier-delimited region of a tiled kernel. The executor
// calls it for every local index 0..Size-1 of a group; all calls of phase k
// finish before any call of phase k+1 begins (barrier semantics).
type Phase func(g *Group, local int)

// Result of a functional launch.
type Result struct {
	// Items is the number of work items executed.
	Items int
	// Groups is the number of work groups (1 per item set for Run).
	Groups int
	// Counters holds launch-total work.
	Counters Counters
}

// workers returns the parallelism for functional execution.
func workers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes a simple kernel for global work items [0, global).
// It panics for non-positive sizes — launch geometry is programmer error,
// mirroring CL_INVALID_WORK_DIMENSION.
func Run(global int, kernel func(*WorkItem)) Result {
	if global <= 0 {
		panic(fmt.Sprintf("exec: invalid global size %d", global))
	}
	nw := workers()
	shards := make([]Counters, nw)
	var wg sync.WaitGroup
	chunk := (global + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > global {
			hi = global
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			item := WorkItem{counters: &shards[w]}
			for i := lo; i < hi; i++ {
				item.Global = i
				kernel(&item)
			}
		}(w, lo, hi)
	}
	wg.Wait()

	var total Counters
	for i := range shards {
		total.Add(shards[i])
	}
	return Result{Items: global, Groups: 1, Counters: total}
}

// RunTiled executes a tiled kernel: groups of `local` items each, with
// ldsFloats float64 scratch words per group, running the given phases with
// barrier semantics between them. global must be a multiple of local
// (OpenCL's uniform work-group requirement).
func RunTiled(global, local, ldsFloats int, phases ...Phase) Result {
	switch {
	case global <= 0 || local <= 0:
		panic(fmt.Sprintf("exec: invalid sizes global=%d local=%d", global, local))
	case global%local != 0:
		panic(fmt.Sprintf("exec: global %d not a multiple of local %d", global, local))
	case ldsFloats < 0:
		panic(fmt.Sprintf("exec: negative LDS size %d", ldsFloats))
	case len(phases) == 0:
		panic("exec: tiled kernel needs at least one phase")
	}
	groups := global / local
	nw := workers()
	if nw > groups {
		nw = groups
	}
	shards := make([]Counters, nw)
	var wg sync.WaitGroup
	chunk := (groups + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > groups {
			hi = groups
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			g := Group{Size: local, counters: &shards[w]}
			if ldsFloats > 0 {
				g.LDS = make([]float64, ldsFloats)
			}
			for id := lo; id < hi; id++ {
				g.ID = id
				for _, phase := range phases {
					for l := 0; l < local; l++ {
						phase(&g, l)
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	var total Counters
	for i := range shards {
		total.Add(shards[i])
	}
	return Result{Items: global, Groups: groups, Counters: total}
}
