package exec

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunCoversAllItems(t *testing.T) {
	const n = 10_000
	seen := make([]int32, n)
	Run(n, func(w *WorkItem) {
		atomic.AddInt32(&seen[w.Global], 1)
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d executed %d times, want exactly 1", i, c)
		}
	}
}

func TestRunTalliesCounters(t *testing.T) {
	const n = 1000
	r := Run(n, func(w *WorkItem) {
		w.Tally(Counters{SPFlops: 2, LoadBytes: 8, StoreBytes: 4, Instrs: 10})
	})
	if r.Items != n {
		t.Errorf("Items = %d, want %d", r.Items, n)
	}
	c := r.Counters
	if c.SPFlops != 2*n || c.LoadBytes != 8*n || c.StoreBytes != 4*n || c.Instrs != 10*n {
		t.Errorf("counters = %+v, want exact totals", c)
	}
	per := c.PerItem(n)
	if per.SPFlops != 2 || per.LoadBytes != 8 {
		t.Errorf("PerItem = %+v, want per-item values", per)
	}
	if (Counters{SPFlops: 5}).PerItem(0) != (Counters{}) {
		t.Error("PerItem(0) must be zero")
	}
}

func TestRunComputesRealResults(t *testing.T) {
	// The read-memory pattern: block sums.
	const block, blocks = 64, 128
	in := make([]float64, block*blocks)
	for i := range in {
		in[i] = float64(i % 7)
	}
	out := make([]float64, blocks)
	Run(blocks, func(w *WorkItem) {
		sum := 0.0
		st := w.Global * block
		for j := 0; j < block; j++ {
			sum += in[st+j]
		}
		out[w.Global] = sum
	})
	for i := 0; i < blocks; i++ {
		want := 0.0
		for j := 0; j < block; j++ {
			want += in[i*block+j]
		}
		if out[i] != want {
			t.Fatalf("block %d sum = %g, want %g", i, out[i], want)
		}
	}
}

func TestRunPanicsOnBadGlobal(t *testing.T) {
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Run(%d) did not panic", n)
				}
			}()
			Run(n, func(*WorkItem) {})
		}()
	}
}

// Barrier semantics: phase 1 writes LDS, phase 2 reads every element written
// by *other* items of the group. If phases overlapped, reads would observe
// zeros.
func TestRunTiledBarrierSemantics(t *testing.T) {
	const local, groups = 64, 32
	global := local * groups
	out := make([]float64, global)
	r := RunTiled(global, local, local,
		func(g *Group, l int) {
			g.LDS[l] = float64(g.GlobalID(l) + 1)
		},
		func(g *Group, l int) {
			sum := 0.0
			for i := 0; i < g.Size; i++ {
				sum += g.LDS[i]
			}
			out[g.GlobalID(l)] = sum
			g.Tally(Counters{LDSBytes: float64(8 * g.Size)})
		},
	)
	for gid := 0; gid < groups; gid++ {
		want := 0.0
		for l := 0; l < local; l++ {
			want += float64(gid*local + l + 1)
		}
		for l := 0; l < local; l++ {
			if got := out[gid*local+l]; got != want {
				t.Fatalf("group %d item %d = %g, want %g (barrier violated)", gid, l, got, want)
			}
		}
	}
	if r.Groups != groups {
		t.Errorf("Groups = %d, want %d", r.Groups, groups)
	}
	wantLDS := float64(8 * local * local * groups)
	if math.Abs(r.Counters.LDSBytes-wantLDS) > 1e-6 {
		t.Errorf("LDS bytes = %g, want %g", r.Counters.LDSBytes, wantLDS)
	}
}

func TestRunTiledGroupIsolation(t *testing.T) {
	// Each group writes a group-specific stamp in phase 1 and verifies it
	// in phase 2; leakage across groups (shared LDS) would trip this.
	const local, groups = 16, 64
	var bad int32
	RunTiled(local*groups, local, 1,
		func(g *Group, l int) {
			if l == 0 {
				g.LDS[0] = float64(g.ID)
			}
		},
		func(g *Group, l int) {
			if g.LDS[0] != float64(g.ID) {
				atomic.AddInt32(&bad, 1)
			}
		},
	)
	if bad != 0 {
		t.Errorf("%d items observed another group's LDS", bad)
	}
}

func TestRunTiledPanics(t *testing.T) {
	cases := []struct {
		name               string
		global, local, lds int
		phases             []Phase
	}{
		{"zero global", 0, 8, 0, []Phase{func(*Group, int) {}}},
		{"zero local", 64, 0, 0, []Phase{func(*Group, int) {}}},
		{"non-multiple", 65, 8, 0, []Phase{func(*Group, int) {}}},
		{"negative lds", 64, 8, -1, []Phase{func(*Group, int) {}}},
		{"no phases", 64, 8, 0, nil},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RunTiled %s did not panic", c.name)
				}
			}()
			RunTiled(c.global, c.local, c.lds, c.phases...)
		}()
	}
}

func TestQuickRunTiledCoverage(t *testing.T) {
	f := func(a, b uint8) bool {
		local := int(a%32) + 1
		groups := int(b%16) + 1
		global := local * groups
		var count int64
		RunTiled(global, local, 0, func(g *Group, l int) {
			atomic.AddInt64(&count, 1)
		})
		return count == int64(global)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCountersAdd(t *testing.T) {
	var c Counters
	c.Add(Counters{SPFlops: 1, DPFlops: 2, LoadBytes: 3, StoreBytes: 4, LDSBytes: 5, Instrs: 6})
	c.Add(Counters{SPFlops: 1, DPFlops: 2, LoadBytes: 3, StoreBytes: 4, LDSBytes: 5, Instrs: 6})
	want := Counters{SPFlops: 2, DPFlops: 4, LoadBytes: 6, StoreBytes: 8, LDSBytes: 10, Instrs: 12}
	if c != want {
		t.Errorf("Add = %+v, want %+v", c, want)
	}
}

func BenchmarkRunSimple(b *testing.B) {
	in := make([]float64, 1<<16)
	out := make([]float64, 1<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(1<<10, func(w *WorkItem) {
			sum := 0.0
			st := w.Global * 64
			for j := 0; j < 64; j++ {
				sum += in[st+j]
			}
			out[w.Global] = sum
		})
	}
}
