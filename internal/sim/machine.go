// Package sim composes the hardware substrates (device descriptions, the
// timing model, the PCIe link) into a Machine: one simulated heterogeneous
// platform on which the programming-model runtimes execute kernels and
// transfers while a virtual clock accumulates.
//
// Two stock machines mirror the paper's Section V setup: an AMD A10-7850K
// APU (unified memory, no staging copies) and the same APU hosting an AMD
// Radeon R9 280X across PCIe.
package sim

import (
	"fmt"
	"sync"

	"hetbench/internal/sim/device"
	"hetbench/internal/sim/pcie"
	"hetbench/internal/sim/timing"
)

// Target selects which side of the machine runs a kernel.
type Target int

const (
	// OnHost runs on the CPU cores.
	OnHost Target = iota
	// OnAccelerator runs on the GPU.
	OnAccelerator
)

// EventKind classifies entries in the machine's event log.
type EventKind string

// Event kinds recorded in the log.
const (
	EvKernel       EventKind = "kernel"
	EvHostToDevice EventKind = "h2d"
	EvDeviceToHost EventKind = "d2h"
)

// Event is one logged operation with its simulated duration.
type Event struct {
	Kind   EventKind
	Name   string
	TimeNs float64
	Bytes  int64
	Bound  string // limiting resource for kernels
}

// Machine is one simulated heterogeneous platform. Methods are safe for
// concurrent use; the virtual clock serializes additions.
type Machine struct {
	name  string
	host  *device.Device
	accel *device.Device
	link  *pcie.Link // nil when memory is unified

	hostModel  *timing.Model
	accelModel *timing.Model

	mu      sync.Mutex
	clockNs float64
	// Split clocks let experiments report "kernel-only" time the way the
	// paper's Figure 8a/9a excludes data transfers.
	kernelNs   float64
	transferNs float64
	events     []Event
	logEvents  bool
	// Workload-characterization accumulators (Table I): time-weighted
	// IPC and per-bound kernel time.
	ipcWeighted float64
	boundNs     map[string]float64
	costLog     []LoggedCost
}

// NewAPU returns the A10-7850K machine: 4 CPU cores + 8 GCN CUs on one die
// with unified memory (no PCIe link, zero-cost "transfers").
func NewAPU() *Machine {
	return newMachine("APU (A10-7850K)", device.HostCPU(), device.A10_7850K(), nil)
}

// NewDGPU returns the discrete machine: the A10-7850K as host plus an
// R9 280X across PCIe 3.0 x16.
func NewDGPU() *Machine {
	return newMachine("dGPU (R9 280X)", device.HostCPU(), device.R9280X(), pcie.Default())
}

// NewCustom builds a machine from parts. link may be nil for unified
// memory; accel may equal host for a CPU-only machine.
func NewCustom(name string, host, accel *device.Device, link *pcie.Link) *Machine {
	return newMachine(name, host, accel, link)
}

func newMachine(name string, host, accel *device.Device, link *pcie.Link) *Machine {
	if err := host.Validate(); err != nil {
		panic(fmt.Sprintf("sim: bad host: %v", err))
	}
	if err := accel.Validate(); err != nil {
		panic(fmt.Sprintf("sim: bad accelerator: %v", err))
	}
	if link != nil {
		if err := link.Validate(); err != nil {
			panic(fmt.Sprintf("sim: bad link: %v", err))
		}
	}
	return &Machine{
		name:       name,
		host:       host,
		accel:      accel,
		link:       link,
		hostModel:  timing.NewModel(host),
		accelModel: timing.NewModel(accel),
	}
}

// Name returns the machine's display name.
func (m *Machine) Name() string { return m.name }

// Host returns the CPU device description.
func (m *Machine) Host() *device.Device { return m.host }

// Accelerator returns the GPU device description.
func (m *Machine) Accelerator() *device.Device { return m.accel }

// Unified reports whether host and accelerator share one memory space.
func (m *Machine) Unified() bool { return m.link == nil }

// Link returns the PCIe link, or nil on unified machines.
func (m *Machine) Link() *pcie.Link { return m.link }

// AcceleratorModel exposes the accelerator timing model (for clock sweeps).
func (m *Machine) AcceleratorModel() *timing.Model { return m.accelModel }

// HostModel exposes the host timing model.
func (m *Machine) HostModel() *timing.Model { return m.hostModel }

// EnableEventLog turns on per-operation event recording (off by default to
// keep long sweeps cheap).
func (m *Machine) EnableEventLog(on bool) {
	m.mu.Lock()
	m.logEvents = on
	m.mu.Unlock()
}

// LaunchKernel advances the virtual clock by the modeled duration of a
// kernel with the given cost on the chosen target, and returns the timing
// breakdown.
func (m *Machine) LaunchKernel(target Target, name string, cost timing.KernelCost) timing.Result {
	model := m.accelModel
	if target == OnHost {
		model = m.hostModel
	}
	r := model.Kernel(cost)
	m.mu.Lock()
	m.clockNs += r.TimeNs
	m.kernelNs += r.TimeNs
	m.ipcWeighted += r.IPC * r.TimeNs
	if m.boundNs == nil {
		m.boundNs = make(map[string]float64)
	}
	// Weight boundedness by the limiting term itself so fixed launch
	// overhead on small kernels does not masquerade as a resource bound.
	m.boundNs[r.Bound] += r.TimeNs - r.LaunchNs
	if m.costLog != nil {
		m.costLog = append(m.costLog, LoggedCost{Target: target, Name: name, Cost: cost})
	}
	if m.logEvents {
		m.events = append(m.events, Event{Kind: EvKernel, Name: name, TimeNs: r.TimeNs, Bound: r.Bound})
	}
	m.mu.Unlock()
	return r
}

// LoggedCost is one recorded kernel launch (see EnableCostLog).
type LoggedCost struct {
	Target Target
	Name   string
	Cost   timing.KernelCost
}

// EnableCostLog starts recording every kernel launch's cost so sweeps can
// replay the same launch sequence against different clock settings
// without functional re-execution (the Figure 7 driver).
func (m *Machine) EnableCostLog() {
	m.mu.Lock()
	if m.costLog == nil {
		m.costLog = make([]LoggedCost, 0, 256)
	}
	m.mu.Unlock()
}

// CostLog returns a copy of the recorded launches.
func (m *Machine) CostLog() []LoggedCost {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LoggedCost, len(m.costLog))
	copy(out, m.costLog)
	return out
}

// IPC returns the time-weighted mean instructions-per-cycle of all
// kernels launched since the last reset (the Table I metric).
func (m *Machine) IPC() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.kernelNs == 0 {
		return 0
	}
	return m.ipcWeighted / m.kernelNs
}

// Boundedness classifies the run from the per-bound kernel-time split:
// "Memory" when bandwidth dominates, "Compute" when ALU/issue dominates,
// "Balanced" otherwise (the Table I column).
func (m *Machine) Boundedness() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.kernelNs == 0 {
		return "Unknown"
	}
	total := 0.0
	for _, v := range m.boundNs {
		total += v
	}
	if total == 0 {
		return "Unknown"
	}
	mem := m.boundNs["mem"] / total
	compute := (m.boundNs["alu"] + m.boundNs["issue"] + m.boundNs["lds"]) / total
	switch {
	case mem > 0.6:
		return "Memory"
	case compute > 0.6:
		return "Compute"
	default:
		return "Balanced"
	}
}

// TransferToDevice moves bytes host→device. On unified machines it is free
// (the paper's APU advantage); across PCIe it costs link time.
func (m *Machine) TransferToDevice(name string, bytes int64) float64 {
	return m.transfer(EvHostToDevice, name, bytes)
}

// TransferFromDevice moves bytes device→host.
func (m *Machine) TransferFromDevice(name string, bytes int64) float64 {
	return m.transfer(EvDeviceToHost, name, bytes)
}

func (m *Machine) transfer(kind EventKind, name string, bytes int64) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("sim: negative transfer %d", bytes))
	}
	var ns float64
	if m.link != nil {
		var us float64
		if kind == EvHostToDevice {
			us = m.link.ToDevice(bytes)
		} else {
			us = m.link.FromDevice(bytes)
		}
		ns = us * 1e3
	}
	m.mu.Lock()
	m.clockNs += ns
	m.transferNs += ns
	if m.logEvents {
		m.events = append(m.events, Event{Kind: kind, Name: name, TimeNs: ns, Bytes: bytes})
	}
	m.mu.Unlock()
	return ns
}

// AddHostTime advances the clock for host-side serial work (e.g. the AMP
// LULESH kernel that fell back to the CPU).
func (m *Machine) AddHostTime(name string, ns float64) {
	if ns < 0 {
		panic(fmt.Sprintf("sim: negative host time %g", ns))
	}
	m.mu.Lock()
	m.clockNs += ns
	m.kernelNs += ns
	if m.logEvents {
		m.events = append(m.events, Event{Kind: EvKernel, Name: name, TimeNs: ns, Bound: "host"})
	}
	m.mu.Unlock()
}

// AddTransferTime advances the clock for data movement accounted outside
// the link helpers (e.g. the un-hidden remainder of an asynchronous
// transfer in the HC model).
func (m *Machine) AddTransferTime(name string, ns float64) {
	if ns < 0 {
		panic(fmt.Sprintf("sim: negative transfer time %g", ns))
	}
	m.mu.Lock()
	m.clockNs += ns
	m.transferNs += ns
	if m.logEvents {
		m.events = append(m.events, Event{Kind: EvHostToDevice, Name: name, TimeNs: ns})
	}
	m.mu.Unlock()
}

// ElapsedNs returns the virtual clock.
func (m *Machine) ElapsedNs() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clockNs
}

// KernelNs returns time spent in kernels only (the Figure 8a/9a metric).
func (m *Machine) KernelNs() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.kernelNs
}

// TransferNs returns time spent in data movement only.
func (m *Machine) TransferNs() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.transferNs
}

// Events returns a copy of the event log.
func (m *Machine) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// ResetClock zeroes the virtual clock, split clocks and event log (the
// PCIe ledger is left to the caller, who may want cumulative traffic).
func (m *Machine) ResetClock() {
	m.mu.Lock()
	m.clockNs, m.kernelNs, m.transferNs = 0, 0, 0
	m.ipcWeighted = 0
	m.boundNs = nil
	m.events = nil
	if m.costLog != nil {
		m.costLog = m.costLog[:0]
	}
	m.mu.Unlock()
}
