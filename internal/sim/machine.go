// Package sim composes the hardware substrates (device descriptions, the
// timing model, the PCIe link) into a Machine: one simulated heterogeneous
// platform on which the programming-model runtimes execute kernels and
// transfers while a virtual clock accumulates.
//
// Two stock machines mirror the paper's Section V setup: an AMD A10-7850K
// APU (unified memory, no staging copies) and the same APU hosting an AMD
// Radeon R9 280X across PCIe.
//
// Observability: a Machine emits structured spans and counters into an
// attached trace.Tracer (see SetTracer and the internal/trace package).
// The legacy Event log is a thin view over those spans; with no tracer
// attached the hot paths pay only a nil check.
package sim

import (
	"fmt"
	"math"
	"sync"

	"hetbench/internal/fault"
	"hetbench/internal/sim/device"
	"hetbench/internal/sim/pcie"
	"hetbench/internal/sim/power"
	"hetbench/internal/sim/timing"
	"hetbench/internal/trace"
)

// Target selects which side of the machine runs a kernel.
type Target int

const (
	// OnHost runs on the CPU cores.
	OnHost Target = iota
	// OnAccelerator runs on the GPU.
	OnAccelerator
)

// EventKind classifies entries in the machine's event log.
type EventKind string

// Event kinds recorded in the log.
const (
	EvKernel       EventKind = "kernel"
	EvHostToDevice EventKind = "h2d"
	EvDeviceToHost EventKind = "d2h"
)

// Event is one logged operation with its simulated duration. It is the
// legacy flat view; the span log underneath (Machine.Tracer) carries the
// full hierarchy and attributes.
type Event struct {
	Kind   EventKind
	Name   string
	TimeNs float64
	Bytes  int64
	Bound  string // limiting resource for kernels
}

// Machine is one simulated heterogeneous platform. Methods are safe for
// concurrent use; the virtual clock serializes additions.
type Machine struct {
	name  string
	host  *device.Device
	accel *device.Device
	link  *pcie.Link // nil when memory is unified

	hostModel  *timing.Model
	accelModel *timing.Model

	mu      sync.Mutex
	clockNs float64
	// Split clocks let experiments report "kernel-only" time the way the
	// paper's Figure 8a/9a excludes data transfers. faultNs is virtual
	// time lost to injected faults and their recovery (failed attempts,
	// watchdog waits, backoff, retransmissions) — the numerator of the
	// faults experiment's recovery-overhead metric.
	kernelNs   float64
	transferNs float64
	faultNs    float64
	// Workload-characterization accumulators (Table I): time-weighted
	// IPC and per-bound kernel time.
	ipcWeighted float64
	boundNs     map[string]float64
	costLog     []LoggedCost

	// Tracing state (all guarded by mu). proc is this machine's process
	// index in the tracer; spanMark scopes the Events view to the current
	// run; spanStack holds the open phase spans kernels parent under.
	tracer    *trace.Tracer
	proc      int
	spanMark  int
	spanStack []uint64

	// Fault-injection state (guarded by mu). With faults nil the launch
	// and transfer hot paths pay only a nil check. resStats accumulates
	// for the machine's lifetime (not reset with the clock), so a
	// multi-attempt experiment cell reads one cumulative tally.
	faults   *fault.Injector
	policy   fault.Policy
	resStats ResilienceStats

	// Co-execution planner (guarded by mu). With coexec nil the split
	// launch path pays only a nil check (see LaunchKernelSplit).
	coexec CoexecPlanner
}

// ResilienceStats tallies recovery actions taken on one machine under
// fault injection. Counts accumulate for the machine's lifetime.
type ResilienceStats struct {
	Retries       int     // kernel relaunch attempts after a transient fault
	WatchdogKills int     // hung kernels killed at the watchdog deadline
	Fallbacks     int     // launches rerouted to the host CPU
	Retransmits   int     // CRC-failed PCIe transfers resent
	DeviceWaits   int     // transfers stalled waiting out a device loss
	BackoffNs     float64 // virtual time spent in retry backoff
}

// defaultTracer, when set, is attached to every subsequently-constructed
// machine — the hook behind `hetbench -trace out.json`, which must capture
// machines the experiments construct internally.
var (
	defaultTracerMu sync.Mutex
	defaultTracer   *trace.Tracer
)

// SetDefaultTracer installs (or, with nil, removes) a tracer that every
// machine constructed afterwards attaches to.
func SetDefaultTracer(t *trace.Tracer) {
	defaultTracerMu.Lock()
	defaultTracer = t
	defaultTracerMu.Unlock()
}

// DefaultTracer returns the currently-installed default tracer, if any.
func DefaultTracer() *trace.Tracer {
	defaultTracerMu.Lock()
	defer defaultTracerMu.Unlock()
	return defaultTracer
}

// NewAPU returns the A10-7850K machine: 4 CPU cores + 8 GCN CUs on one die
// with unified memory (no PCIe link, zero-cost "transfers").
func NewAPU() *Machine {
	return newMachine("APU (A10-7850K)", device.HostCPU(), device.A10_7850K(), nil)
}

// NewDGPU returns the discrete machine: the A10-7850K as host plus an
// R9 280X across PCIe 3.0 x16.
func NewDGPU() *Machine {
	return newMachine("dGPU (R9 280X)", device.HostCPU(), device.R9280X(), pcie.Default())
}

// NewCustom builds a machine from parts. link may be nil for unified
// memory; accel may equal host for a CPU-only machine.
func NewCustom(name string, host, accel *device.Device, link *pcie.Link) *Machine {
	return newMachine(name, host, accel, link)
}

func newMachine(name string, host, accel *device.Device, link *pcie.Link) *Machine {
	if err := host.Validate(); err != nil {
		panic(fmt.Sprintf("sim: bad host: %v", err))
	}
	if err := accel.Validate(); err != nil {
		panic(fmt.Sprintf("sim: bad accelerator: %v", err))
	}
	if link != nil {
		if err := link.Validate(); err != nil {
			panic(fmt.Sprintf("sim: bad link: %v", err))
		}
	}
	m := &Machine{
		name:       name,
		host:       host,
		accel:      accel,
		link:       link,
		hostModel:  timing.NewModel(host),
		accelModel: timing.NewModel(accel),
	}
	if t := DefaultTracer(); t != nil {
		m.SetTracer(t)
	}
	return m
}

// Name returns the machine's display name.
func (m *Machine) Name() string { return m.name }

// Host returns the CPU device description.
func (m *Machine) Host() *device.Device { return m.host }

// Accelerator returns the GPU device description.
func (m *Machine) Accelerator() *device.Device { return m.accel }

// Unified reports whether host and accelerator share one memory space.
func (m *Machine) Unified() bool { return m.link == nil }

// Link returns the PCIe link, or nil on unified machines.
func (m *Machine) Link() *pcie.Link { return m.link }

// AcceleratorModel exposes the accelerator timing model (for clock sweeps).
func (m *Machine) AcceleratorModel() *timing.Model { return m.accelModel }

// HostModel exposes the host timing model.
func (m *Machine) HostModel() *timing.Model { return m.hostModel }

// ---------------------------------------------------------------------
// Tracing.

// SetTracer attaches a tracer; the machine registers itself as a process
// and emits every subsequent kernel, transfer and phase span into it.
func (m *Machine) SetTracer(t *trace.Tracer) {
	if t == nil {
		panic("sim: SetTracer(nil); tracing is off by default")
	}
	proc := t.RegisterProcess(m.name)
	m.mu.Lock()
	m.tracer = t
	m.proc = proc
	m.spanMark = t.Len()
	m.spanStack = nil
	m.mu.Unlock()
}

// Tracer returns the attached tracer, or nil.
func (m *Machine) Tracer() *trace.Tracer {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tracer
}

// Traced reports whether a tracer is attached.
func (m *Machine) Traced() bool { return m.Tracer() != nil }

// EnableEventLog turns on per-operation event recording by attaching an
// internal tracer if none is present (off by default to keep long sweeps
// cheap). The Events view reads back from the tracer's span log.
func (m *Machine) EnableEventLog(on bool) {
	if !on {
		return
	}
	if m.Tracer() == nil {
		m.SetTracer(trace.New())
	}
}

// ActiveSpan is an open hierarchical span on a machine's virtual clock.
// The zero value (returned when no tracer is attached) is a no-op.
type ActiveSpan struct {
	m       *Machine
	id      uint64
	parent  uint64
	kind    trace.Kind
	name    string
	startNs float64
}

// StartSpan opens a phase-hierarchy span (run/iteration/phase) starting at
// the current virtual clock. Spans emitted until End — kernels, transfers,
// nested phases — parent under it. Close in LIFO order.
func (m *Machine) StartSpan(kind trace.Kind, name string) ActiveSpan {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tracer == nil {
		return ActiveSpan{}
	}
	sp := ActiveSpan{
		m:       m,
		id:      m.tracer.NewSpanID(),
		parent:  m.parentLocked(),
		kind:    kind,
		name:    name,
		startNs: m.clockNs,
	}
	m.spanStack = append(m.spanStack, sp.id)
	return sp
}

// StartRun opens the app-run span ("LULESH/OpenCL").
func (m *Machine) StartRun(name string) ActiveSpan {
	return m.StartSpan(trace.KindRun, name)
}

// StartIteration opens one timestep/solver-iteration span. The label is
// only formatted when a tracer is attached, keeping untraced loops free.
func (m *Machine) StartIteration(i int) ActiveSpan {
	if m.Tracer() == nil {
		return ActiveSpan{}
	}
	return m.StartSpan(trace.KindIteration, fmt.Sprintf("iter %d", i))
}

// End closes the span at the current virtual clock and emits it.
func (s ActiveSpan) End() {
	if s.m == nil {
		return
	}
	m := s.m
	m.mu.Lock()
	dur := m.clockNs - s.startNs
	if dur < 0 {
		// The clock was reset while the span was open (apps reset at the
		// top of each Run); clamp rather than emit nonsense.
		dur = 0
	}
	// Pop this span (and anything left open above it) off the stack.
	for i := len(m.spanStack) - 1; i >= 0; i-- {
		if m.spanStack[i] == s.id {
			m.spanStack = m.spanStack[:i]
			break
		}
	}
	t, proc := m.tracer, m.proc
	m.mu.Unlock()
	if t == nil {
		return
	}
	t.Emit(trace.Span{
		ID: s.id, Parent: s.parent, Proc: proc,
		Track: trace.TrackPhases, Name: s.name, Kind: s.kind,
		StartNs: s.startNs, DurNs: dur,
	})
}

// parentLocked returns the innermost open span's ID (mu held).
func (m *Machine) parentLocked() uint64 {
	if n := len(m.spanStack); n > 0 {
		return m.spanStack[n-1]
	}
	return 0
}

// emitKernelLocked records one kernel launch's span and counters (mu held).
func (m *Machine) emitKernelLocked(target Target, name string, cost timing.KernelCost, r timing.Result, startNs float64) {
	dev, model, track := m.accel, m.accelModel, trace.TrackAccelerator
	if target == OnHost {
		dev, model, track = m.host, m.hostModel, trace.TrackHost
	}
	waves := int(math.Ceil(float64(cost.Items) / float64(dev.WavefrontSize)))
	m.tracer.Emit(trace.Span{
		Parent: m.parentLocked(), Proc: m.proc,
		Track: track, Name: name, Kind: trace.KindKernel,
		StartNs: startNs, DurNs: r.TimeNs,
		Device: dev.Name, Bound: r.Bound,
		Items: cost.Items, Wavefronts: waves,
	})

	reg := m.tracer.Metrics()
	reg.Add(trace.CtrKernelLaunches, 1)
	reg.Add(trace.CtrKernelNs, r.TimeNs)
	reg.Observe(trace.HistKernelNs, r.TimeNs)
	items := float64(cost.Items)
	traffic := items * (cost.LoadBytes + cost.StoreBytes)
	reg.Add(trace.CtrDRAMBytes, r.DRAMBytes)
	reg.Add(trace.CtrLLCMissBytes, traffic*cost.MissRate)
	reg.Add(trace.CtrLLCHitBytes, traffic*(1-cost.MissRate))
	reg.Add(trace.CtrLDSBytes, items*cost.LDSBytes)
	reg.Add(trace.CtrSPFlops, items*cost.SPFlops)
	reg.Add(trace.CtrDPFlops, items*cost.DPFlops)
	reg.Add(trace.CtrInstrs, items*cost.Instrs)
	prof := power.ProfileFor(dev)
	reg.Add(trace.CtrEnergyJ, prof.KernelEnergyJ(r.TimeNs, model.CoreClock(), dev.CoreClockMHz, r.DRAMBytes))
}

// emitTransferLocked records one transfer's span and counters (mu held).
func (m *Machine) emitTransferLocked(kind EventKind, name string, bytes int64, ns, startNs float64) {
	dir := "h2d"
	if kind == EvDeviceToHost {
		dir = "d2h"
	}
	m.tracer.Emit(trace.Span{
		Parent: m.parentLocked(), Proc: m.proc,
		Track: trace.TrackPCIe, Name: name, Kind: trace.KindTransfer,
		StartNs: startNs, DurNs: ns,
		Dir: dir, Bytes: bytes,
	})
	reg := m.tracer.Metrics()
	reg.Add(trace.CtrTransferCount, 1)
	reg.Add(trace.CtrTransferNs, ns)
	reg.Observe(trace.HistTransferNs, ns)
	if kind == EvDeviceToHost {
		reg.Add(trace.CtrBytesD2H, float64(bytes))
	} else {
		reg.Add(trace.CtrBytesH2D, float64(bytes))
	}
}

// ---------------------------------------------------------------------
// Kernels and transfers.

// LaunchKernel advances the virtual clock by the modeled duration of a
// kernel with the given cost on the chosen target, and returns the timing
// breakdown. It never consults the fault injector; runtimes that opt into
// fault injection use LaunchKernelChecked.
func (m *Machine) LaunchKernel(target Target, name string, cost timing.KernelCost) timing.Result {
	model := m.accelModel
	if target == OnHost {
		model = m.hostModel
	}
	r := model.Kernel(cost)
	m.mu.Lock()
	m.chargeKernelLocked(target, name, cost, r)
	m.mu.Unlock()
	return r
}

// chargeKernelLocked books a successful kernel launch on the clocks,
// characterization accumulators, cost log and tracer (mu held).
func (m *Machine) chargeKernelLocked(target Target, name string, cost timing.KernelCost, r timing.Result) {
	start := m.clockNs
	m.clockNs += r.TimeNs
	m.kernelNs += r.TimeNs
	m.ipcWeighted += r.IPC * r.TimeNs
	if m.boundNs == nil {
		m.boundNs = make(map[string]float64)
	}
	// Weight boundedness by the limiting term itself so fixed launch
	// overhead on small kernels does not masquerade as a resource bound.
	m.boundNs[r.Bound] += r.TimeNs - r.LaunchNs
	if m.costLog != nil {
		m.costLog = append(m.costLog, LoggedCost{Target: target, Name: name, Cost: cost})
	}
	if m.tracer != nil {
		m.emitKernelLocked(target, name, cost, r, start)
	}
}

// LaunchKernelChecked is LaunchKernel for runtimes that participate in
// fault injection: with an injector attached and the launch targeting the
// accelerator, the injector may perturb the launch. A non-nil fault.Event
// reports what happened; for LaunchFail, Hang and DeviceLost the kernel
// did not run (the zero Result is returned) and the clock has already been
// charged for the failed attempt — launch issue cost for transient
// failures and device loss, the full watchdog deadline for a hang. For
// BitFlip the launch completed normally (full Result, clock charged) but
// one output element was silently corrupted; the caller routes the event
// to its Corruptor. With no injector attached the cost over LaunchKernel
// is a single nil check.
func (m *Machine) LaunchKernelChecked(target Target, name string, cost timing.KernelCost) (timing.Result, *fault.Event) {
	if m.faults == nil || target != OnAccelerator {
		return m.LaunchKernel(target, name, cost), nil
	}
	r := m.accelModel.Kernel(cost)
	m.mu.Lock()
	defer m.mu.Unlock()
	kind := m.faults.Launch(m.clockNs)
	switch kind {
	case fault.None:
		m.chargeKernelLocked(target, name, cost, r)
		return r, nil
	case fault.BitFlip:
		// The launch itself succeeds; the corruption is silent until an
		// end-to-end check notices.
		m.chargeKernelLocked(target, name, cost, r)
		if m.tracer != nil {
			m.tracer.Metrics().Add(trace.CtrFaultPrefix+string(kind), 1)
		}
		return r, &fault.Event{Kind: kind, Op: name}
	case fault.Hang:
		// The kernel never completes; the watchdog kills it at the
		// deadline, so the full deadline is lost.
		m.resStats.WatchdogKills++
		m.chargeFaultLocked(trace.TrackAccelerator, name+" [hang]", m.policy.WatchdogNs)
		if m.tracer != nil {
			reg := m.tracer.Metrics()
			reg.Add(trace.CtrFaultPrefix+string(kind), 1)
			reg.Add(trace.CtrWatchdogKills, 1)
		}
		return timing.Result{}, &fault.Event{Kind: kind, Op: name}
	default: // LaunchFail, DeviceLost: the launch is rejected at issue.
		m.chargeFaultLocked(trace.TrackAccelerator, name+" ["+string(kind)+"]", r.LaunchNs)
		if m.tracer != nil {
			m.tracer.Metrics().Add(trace.CtrFaultPrefix+string(kind), 1)
		}
		return timing.Result{}, &fault.Event{Kind: kind, Op: name}
	}
}

// chargeFaultLocked advances the clock by ns of fault/recovery time,
// booking it on the fault split clock and, when traced, emitting a
// KindFault span plus the fault.ns counter (mu held).
func (m *Machine) chargeFaultLocked(track, name string, ns float64) {
	start := m.clockNs
	m.clockNs += ns
	m.faultNs += ns
	if m.tracer != nil {
		m.tracer.Emit(trace.Span{
			Parent: m.parentLocked(), Proc: m.proc,
			Track: track, Name: name, Kind: trace.KindFault,
			StartNs: start, DurNs: ns,
		})
		reg := m.tracer.Metrics()
		reg.Add(trace.CtrFaultNs, ns)
		reg.Observe(trace.HistFaultNs, ns)
	}
}

// LoggedCost is one recorded kernel launch (see EnableCostLog).
type LoggedCost struct {
	Target Target
	Name   string
	Cost   timing.KernelCost
}

// EnableCostLog starts recording every kernel launch's cost so sweeps can
// replay the same launch sequence against different clock settings
// without functional re-execution (the Figure 7 driver).
func (m *Machine) EnableCostLog() {
	m.mu.Lock()
	if m.costLog == nil {
		m.costLog = make([]LoggedCost, 0, 256)
	}
	m.mu.Unlock()
}

// CostLog returns a copy of the recorded launches.
func (m *Machine) CostLog() []LoggedCost {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LoggedCost, len(m.costLog))
	copy(out, m.costLog)
	return out
}

// IPC returns the time-weighted mean instructions-per-cycle of all
// kernels launched since the last reset (the Table I metric).
func (m *Machine) IPC() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.kernelNs == 0 {
		return 0
	}
	return m.ipcWeighted / m.kernelNs
}

// Boundedness classifies the run from the per-bound kernel-time split:
// "Memory" when bandwidth dominates, "Compute" when ALU/issue dominates,
// "Balanced" otherwise (the Table I column).
func (m *Machine) Boundedness() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.kernelNs == 0 {
		return "Unknown"
	}
	total := 0.0
	for _, v := range m.boundNs {
		total += v
	}
	if total == 0 {
		return "Unknown"
	}
	mem := m.boundNs["mem"] / total
	compute := (m.boundNs["alu"] + m.boundNs["issue"] + m.boundNs["lds"]) / total
	switch {
	case mem > 0.6:
		return "Memory"
	case compute > 0.6:
		return "Compute"
	default:
		return "Balanced"
	}
}

// TransferToDevice moves bytes host→device. On unified machines it is free
// (the paper's APU advantage); across PCIe it costs link time.
func (m *Machine) TransferToDevice(name string, bytes int64) float64 {
	return m.transfer(EvHostToDevice, name, bytes)
}

// TransferFromDevice moves bytes device→host.
func (m *Machine) TransferFromDevice(name string, bytes int64) float64 {
	return m.transfer(EvDeviceToHost, name, bytes)
}

// maxRetransmits caps CRC-retry loops on one transfer so a pathological
// corruption rate still terminates.
const maxRetransmits = 64

func (m *Machine) transfer(kind EventKind, name string, bytes int64) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("sim: negative transfer %d", bytes))
	}
	var ns float64
	if m.link != nil {
		var us float64
		if kind == EvHostToDevice {
			us = m.link.ToDevice(bytes)
		} else {
			us = m.link.FromDevice(bytes)
		}
		ns = us * 1e3
	}
	m.mu.Lock()
	if m.faults != nil && m.link != nil {
		// A DMA engine cannot move data while the device is gone: stall
		// until the loss window closes, booking the wait as fault time.
		if until := m.faults.LostUntilNs(); until > m.clockNs {
			m.resStats.DeviceWaits++
			m.chargeFaultLocked(trace.TrackPCIe, name+" [device-wait]", until-m.clockNs)
		}
		// Each CRC-failed attempt burns a full pass over the wire before
		// the receiver rejects it and requests retransmission.
		for i := 0; i < maxRetransmits; i++ {
			if m.faults.Transfer(m.clockNs) != fault.TransferCorrupt {
				break
			}
			m.resStats.Retransmits++
			m.chargeFaultLocked(trace.TrackPCIe, name+" [retransmit]", ns)
			if m.tracer != nil {
				reg := m.tracer.Metrics()
				reg.Add(trace.CtrFaultPrefix+string(fault.TransferCorrupt), 1)
				reg.Add(trace.CtrRetransmits, 1)
			}
		}
	}
	start := m.clockNs
	m.clockNs += ns
	m.transferNs += ns
	if m.tracer != nil {
		m.emitTransferLocked(kind, name, bytes, ns, start)
	}
	m.mu.Unlock()
	return ns
}

// AddHostTime advances the clock for host-side serial work (e.g. the AMP
// LULESH kernel that fell back to the CPU).
func (m *Machine) AddHostTime(name string, ns float64) {
	if ns < 0 {
		panic(fmt.Sprintf("sim: negative host time %g", ns))
	}
	m.mu.Lock()
	start := m.clockNs
	m.clockNs += ns
	m.kernelNs += ns
	if m.tracer != nil {
		m.tracer.Emit(trace.Span{
			Parent: m.parentLocked(), Proc: m.proc,
			Track: trace.TrackHost, Name: name, Kind: trace.KindKernel,
			StartNs: start, DurNs: ns,
			Device: m.host.Name, Bound: "host",
		})
		reg := m.tracer.Metrics()
		reg.Add(trace.CtrKernelLaunches, 1)
		reg.Add(trace.CtrKernelNs, ns)
		reg.Observe(trace.HistKernelNs, ns)
	}
	m.mu.Unlock()
}

// AddTransferTime advances the clock for data movement accounted outside
// the link helpers (e.g. the un-hidden remainder of an asynchronous
// transfer in the HC model).
func (m *Machine) AddTransferTime(name string, ns float64) {
	if ns < 0 {
		panic(fmt.Sprintf("sim: negative transfer time %g", ns))
	}
	m.mu.Lock()
	start := m.clockNs
	m.clockNs += ns
	m.transferNs += ns
	if m.tracer != nil {
		m.emitTransferLocked(EvHostToDevice, name, 0, ns, start)
	}
	m.mu.Unlock()
}

// ---------------------------------------------------------------------
// Fault injection.

// SetFaultInjector attaches a fault injector and the resilience policy
// whose machine-level parameters (the watchdog deadline) govern how
// injected faults are charged. Panics on a nil injector or invalid policy;
// use ClearFaultInjector to detach.
func (m *Machine) SetFaultInjector(inj *fault.Injector, pol fault.Policy) {
	if inj == nil {
		panic("sim: SetFaultInjector(nil); use ClearFaultInjector")
	}
	if err := pol.Validate(); err != nil {
		panic(fmt.Sprintf("sim: bad fault policy: %v", err))
	}
	m.mu.Lock()
	m.faults, m.policy = inj, pol
	m.mu.Unlock()
}

// ClearFaultInjector detaches the injector; subsequent launches and
// transfers run fault-free.
func (m *Machine) ClearFaultInjector() {
	m.mu.Lock()
	m.faults = nil
	m.mu.Unlock()
}

// FaultInjector returns the attached injector, or nil.
func (m *Machine) FaultInjector() *fault.Injector {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults
}

// FaultPolicy returns the policy attached with the injector (the zero
// Policy when none is attached).
func (m *Machine) FaultPolicy() fault.Policy {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.policy
}

// FaultNs returns the virtual time lost to injected faults and their
// recovery since the last reset.
func (m *Machine) FaultNs() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faultNs
}

// Resilience returns the machine-lifetime recovery-action tallies.
func (m *Machine) Resilience() ResilienceStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resStats
}

// ChargeBackoffNs books one retry's backoff delay: the runtime waited ns
// of virtual time before relaunching a failed kernel.
func (m *Machine) ChargeBackoffNs(name string, ns float64) {
	if ns < 0 {
		panic(fmt.Sprintf("sim: negative backoff %g", ns))
	}
	m.mu.Lock()
	m.resStats.Retries++
	m.resStats.BackoffNs += ns
	m.chargeFaultLocked(trace.TrackAccelerator, name+" [backoff]", ns)
	if m.tracer != nil {
		reg := m.tracer.Metrics()
		reg.Add(trace.CtrRetries, 1)
		reg.Add(trace.CtrBackoffNs, ns)
	}
	m.mu.Unlock()
}

// NoteFallback records that one launch was rerouted to the host CPU after
// exhausting its retry budget.
func (m *Machine) NoteFallback(name string) {
	m.mu.Lock()
	m.resStats.Fallbacks++
	if m.tracer != nil {
		m.tracer.Metrics().Add(trace.CtrFallbacks, 1)
	}
	m.mu.Unlock()
}

// ElapsedNs returns the virtual clock.
func (m *Machine) ElapsedNs() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clockNs
}

// KernelNs returns time spent in kernels only (the Figure 8a/9a metric).
func (m *Machine) KernelNs() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.kernelNs
}

// TransferNs returns time spent in data movement only.
func (m *Machine) TransferNs() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.transferNs
}

// Events returns the legacy flat event view: this machine's kernel and
// transfer spans since the last reset, in emission order. Empty unless a
// tracer is attached (see EnableEventLog / SetTracer).
func (m *Machine) Events() []Event {
	m.mu.Lock()
	t, proc, mark := m.tracer, m.proc, m.spanMark
	m.mu.Unlock()
	if t == nil {
		return nil
	}
	var out []Event
	for _, s := range t.SpansSince(mark) {
		if s.Proc != proc {
			continue
		}
		switch s.Kind {
		case trace.KindKernel:
			out = append(out, Event{Kind: EvKernel, Name: s.Name, TimeNs: s.DurNs, Bound: s.Bound})
		case trace.KindTransfer:
			kind := EvHostToDevice
			if s.Dir == "d2h" {
				kind = EvDeviceToHost
			}
			out = append(out, Event{Kind: kind, Name: s.Name, TimeNs: s.DurNs, Bytes: s.Bytes})
		}
	}
	return out
}

// ResetClock zeroes the virtual clock, split clocks and the Events view
// (the PCIe ledger is left to the caller, who may want cumulative
// traffic). Spans already emitted stay in the tracer; open phase spans
// survive a reset.
func (m *Machine) ResetClock() {
	m.mu.Lock()
	m.clockNs, m.kernelNs, m.transferNs, m.faultNs = 0, 0, 0, 0
	m.ipcWeighted = 0
	m.boundNs = nil
	if m.faults != nil {
		// A device-loss window is anchored to the virtual clock; resetting
		// the clock without closing the window would leak the outage into
		// the next (re-zeroed) run.
		m.faults.ResetWindow()
	}
	if m.tracer != nil {
		m.spanMark = m.tracer.Len()
	}
	if m.costLog != nil {
		m.costLog = m.costLog[:0]
	}
	m.mu.Unlock()
}
